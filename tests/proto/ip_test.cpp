#include "proto/ip.hpp"

#include <gtest/gtest.h>

#include <string>

#include "net/system.hpp"

namespace nectar::proto {
namespace {

constexpr std::uint8_t kTestProto = 200;

/// Write a string into a freshly allocated CAB buffer.
hw::CabAddr stage(core::CabRuntime& rt, const std::string& s) {
  hw::CabAddr a = rt.heap().alloc(s.size());
  rt.board().memory().write(a, std::span<const std::uint8_t>(
                                   reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  return a;
}

std::string read_payload(core::CabRuntime& rt, const core::Message& m, std::size_t skip) {
  std::vector<std::uint8_t> buf(m.len - skip);
  rt.board().memory().read(m.data + static_cast<hw::CabAddr>(skip), buf);
  return {buf.begin(), buf.end()};
}

struct IpFixture {
  net::NectarSystem sys{2};
  core::Mailbox& rx0;
  core::Mailbox& rx1;

  IpFixture()
      : rx0(sys.runtime(0).create_mailbox("upper-rx0")),
        rx1(sys.runtime(1).create_mailbox("upper-rx1")) {
    sys.stack(0).ip.register_protocol(kTestProto, &rx0);
    sys.stack(1).ip.register_protocol(kTestProto, &rx1);
  }
};

TEST(Ip, DeliversDatagramWithHeaderAttached) {
  IpFixture f;
  std::string got;
  IpHeader got_hdr;
  f.sys.runtime(0).fork_system("send", [&] {
    hw::CabAddr buf = stage(f.sys.runtime(0), "ip-data");
    Ip::OutputInfo info;
    info.dst = ip_of_node(1);
    info.protocol = kTestProto;
    f.sys.stack(0).ip.output(info, {}, buf, 7);
  });
  f.sys.runtime(1).fork_system("recv", [&] {
    core::Message m = f.rx1.begin_get();
    got_hdr = IpHeader::parse(f.sys.runtime(1).board().memory().view(m.data, IpHeader::kSize));
    got = read_payload(f.sys.runtime(1), m, IpHeader::kSize);
    f.rx1.end_get(m);
  });
  f.sys.engine().run();
  EXPECT_EQ(got, "ip-data");
  EXPECT_EQ(got_hdr.src, ip_of_node(0));
  EXPECT_EQ(got_hdr.dst, ip_of_node(1));
  EXPECT_EQ(got_hdr.protocol, kTestProto);
  EXPECT_EQ(got_hdr.total_len, IpHeader::kSize + 7);
  EXPECT_EQ(f.sys.stack(1).ip.datagrams_delivered(), 1u);
}

TEST(Ip, TransportHeaderTravelsInFront) {
  IpFixture f;
  std::string got;
  f.sys.runtime(0).fork_system("send", [&] {
    hw::CabAddr buf = stage(f.sys.runtime(0), "payload");
    Ip::OutputInfo info;
    info.dst = ip_of_node(1);
    info.protocol = kTestProto;
    f.sys.stack(0).ip.output(info, {'T', 'H'}, buf, 7);
  });
  f.sys.runtime(1).fork_system("recv", [&] {
    core::Message m = f.rx1.begin_get();
    got = read_payload(f.sys.runtime(1), m, IpHeader::kSize);
    f.rx1.end_get(m);
  });
  f.sys.engine().run();
  EXPECT_EQ(got, "THpayload");
}

TEST(Ip, UnregisteredProtocolDropped) {
  IpFixture f;
  f.sys.runtime(0).fork_system("send", [&] {
    hw::CabAddr buf = stage(f.sys.runtime(0), "x");
    Ip::OutputInfo info;
    info.dst = ip_of_node(1);
    info.protocol = 123;  // nobody registered
    f.sys.stack(0).ip.output(info, {}, buf, 1);
  });
  f.sys.engine().run();
  EXPECT_EQ(f.sys.stack(1).ip.dropped_no_protocol(), 1u);
  EXPECT_EQ(f.sys.stack(1).ip.datagrams_delivered(), 0u);
}

TEST(Ip, FragmentsAndReassemblesLargeDatagram) {
  // Small MTU forces fragmentation of a 4000-byte payload.
  net::NectarSystem sys(2, false, {}, /*mtu=*/1500);
  core::Mailbox& rx = sys.runtime(1).create_mailbox("upper");
  sys.stack(1).ip.register_protocol(kTestProto, &rx);

  std::string big;
  for (int i = 0; i < 4000; ++i) big.push_back(static_cast<char>('a' + i % 26));
  std::string got;
  sys.runtime(0).fork_system("send", [&] {
    hw::CabAddr buf = stage(sys.runtime(0), big);
    Ip::OutputInfo info;
    info.dst = ip_of_node(1);
    info.protocol = kTestProto;
    sys.stack(0).ip.output(info, {}, buf, big.size());
  });
  sys.runtime(1).fork_system("recv", [&] {
    core::Message m = rx.begin_get();
    got = read_payload(sys.runtime(1), m, IpHeader::kSize);
    rx.end_get(m);
  });
  sys.engine().run();
  EXPECT_EQ(sys.stack(0).ip.fragments_sent(), 3u);  // 4000/1480
  EXPECT_EQ(sys.stack(1).ip.datagrams_reassembled(), 1u);
  EXPECT_EQ(got, big);  // byte-exact across fragmentation and reassembly
}

TEST(Ip, FragmentWithTransportHeaderReassemblesExactly) {
  net::NectarSystem sys(2, false, {}, /*mtu=*/600);
  core::Mailbox& rx = sys.runtime(1).create_mailbox("upper");
  sys.stack(1).ip.register_protocol(kTestProto, &rx);
  std::string data(2000, 'q');
  std::string got;
  sys.runtime(0).fork_system("send", [&] {
    hw::CabAddr buf = stage(sys.runtime(0), data);
    Ip::OutputInfo info;
    info.dst = ip_of_node(1);
    info.protocol = kTestProto;
    sys.stack(0).ip.output(info, {'A', 'B', 'C', 'D'}, buf, data.size());
  });
  sys.runtime(1).fork_system("recv", [&] {
    core::Message m = rx.begin_get();
    got = read_payload(sys.runtime(1), m, IpHeader::kSize);
    rx.end_get(m);
  });
  sys.engine().run();
  EXPECT_EQ(got, "ABCD" + data);
}

TEST(Ip, MissingFragmentTimesOutAndFreesBuffers) {
  net::NectarSystem sys(2, false, {}, /*mtu=*/1500);
  core::Mailbox& rx = sys.runtime(1).create_mailbox("upper");
  sys.stack(1).ip.register_protocol(kTestProto, &rx);
  // Drop the second frame on the wire (deterministically).
  // frame 1 = fragment 0, frame 2 = fragment 1, frame 3 = fragment 2.
  std::string big(4000, 'z');
  sys.runtime(0).fork_system("send", [&] {
    hw::CabAddr buf = stage(sys.runtime(0), big);
    Ip::OutputInfo info;
    info.dst = ip_of_node(1);
    info.protocol = kTestProto;
    sys.stack(0).ip.output(info, {}, buf, big.size());
  });
  // Use corruption on a specific fragment: easiest deterministic approach is
  // a 100% corrupt rate window around the second frame. Instead, set a
  // corrupt rate that hits exactly one of three frames with this seed.
  sys.net().cab(0).out_link().set_corrupt_rate(0.34, 12345);
  std::size_t heap_before = sys.runtime(1).heap().bytes_in_use();
  sys.engine().run();
  if (sys.stack(1).ip.datagrams_reassembled() == 1) {
    GTEST_SKIP() << "seed corrupted no fragment; adjust seed";
  }
  EXPECT_GE(sys.stack(1).ip.reassembly_timeouts(), 1u);
  EXPECT_EQ(sys.stack(1).ip.reassembly_pending(), 0u);
  // All fragment buffers were released after the timeout.
  EXPECT_LE(sys.runtime(1).heap().bytes_in_use(), heap_before + 128);
}

TEST(Ip, CorruptedHeaderCaughtAtStartOfData) {
  IpFixture f;
  f.sys.net().cab(0).out_link().set_corrupt_rate(1.0, 5);
  f.sys.runtime(0).fork_system("send", [&] {
    hw::CabAddr buf = stage(f.sys.runtime(0), "doomed");
    Ip::OutputInfo info;
    info.dst = ip_of_node(1);
    info.protocol = kTestProto;
    f.sys.stack(0).ip.output(info, {}, buf, 6);
  });
  f.sys.engine().run();
  EXPECT_EQ(f.sys.stack(1).ip.datagrams_delivered(), 0u);
  // Dropped either by the datalink CRC or by IP's own header check.
  EXPECT_GE(f.sys.net().datalink(1).dropped_crc() + f.sys.stack(1).ip.dropped_bad_header(), 1u);
}

TEST(Ip, RouteForUnknownAddressThrows) {
  IpFixture f;
  bool threw = false;
  f.sys.runtime(0).fork_system("send", [&] {
    try {
      Ip::OutputInfo info;
      info.dst = 0xC0A80001;  // 192.168.0.1 — not in the 10/8 plan
      info.protocol = kTestProto;
      f.sys.stack(0).ip.output(info, {}, hw::kDataBase, 0);
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  f.sys.engine().run();
  EXPECT_TRUE(threw);
}

TEST(Ip, ExplicitHostRouteOverridesPlan) {
  IpFixture f;
  // 192.168.0.9 lives on node 1 per explicit route.
  f.sys.stack(0).ip.add_host_route(0xC0A80009, 1);
  std::string got;
  f.sys.runtime(0).fork_system("send", [&] {
    hw::CabAddr buf = stage(f.sys.runtime(0), "routed");
    Ip::OutputInfo info;
    info.dst = 0xC0A80009;
    info.protocol = kTestProto;
    f.sys.stack(0).ip.output(info, {}, buf, 6);
  });
  f.sys.runtime(1).fork_system("recv", [&] {
    core::Message m = f.rx1.begin_get();
    got = read_payload(f.sys.runtime(1), m, IpHeader::kSize);
    f.rx1.end_get(m);
  });
  f.sys.engine().run();
  EXPECT_EQ(got, "routed");
}

TEST(Ip, FreeWhenSentReleasesBuffer) {
  IpFixture f;
  f.sys.runtime(0).fork_system("send", [&] {
    core::Mailbox& scratch = f.sys.runtime(0).create_mailbox("scratch");
    core::Message m = scratch.begin_put(600);
    Ip::OutputInfo info;
    info.dst = ip_of_node(1);
    info.protocol = kTestProto;
    f.sys.stack(0).ip.output_msg(info, {}, m, /*free_when_sent=*/true);
  });
  f.sys.engine().run();
  // 600-byte buffer went back to the heap after transmission (only the
  // small-buffer caches of the various mailboxes may remain).
  EXPECT_LT(f.sys.runtime(0).heap().bytes_in_use(), 600u);
}

}  // namespace
}  // namespace nectar::proto
