// Scenario soak: 64 CABs on a two-level fat-tree driving a mixed workload —
// closed-loop TCP users and an open-loop RMP aggregate — through a mid-run
// fault burst (a scripted loss burst, a HUB output-port blackout, and a CAB
// crash-and-reboot). Reports SLO-style results: per-workload tail latency
// percentiles, goodput, fairness, and fault-attributed loss.
//
// There is no paper figure for this; it is the stress configuration that
// exercises every layer the paper describes (fiber, HUB crossbar, datalink,
// TCP and Nectar transports) at a scale the real 1990 installation never
// reached. The run is deterministic: the committed BENCH_scenario.json must
// reproduce byte-for-byte from `bench_scenario_soak --json`.

#include "common.hpp"
#include "scenario/engine.hpp"

namespace nectar::bench {
namespace {

// The whole experiment as a scenario config (the INI grammar of
// docs/SCENARIOS.md) so the bench doubles as a worked example.
constexpr const char* kConfig = R"(
[scenario]
name = soak64
seed = 1990
duration = 2s

[topology]
kind = fat_tree
nodes = 64
hub_ports = 16
spines = 2

# Two interactive TCP users per node pair: send 512..4096 bytes, wait until
# the stream drains, think ~5 ms. Congestion control is on (scenario
# default), so the loss burst answers with fast retransmits.
[workload]
name = tcp-closed
proto = tcp
mode = closed
users = 2
think = 5ms
size_min = 512
size_max = 4096
stride = 9

# An aggregate of 200 modeled users per node offering Poisson RMP traffic
# across the spine; overload and fault windows surface as shed/drops.
[workload]
name = rmp-open
proto = rmp
mode = open
users = 200
rate = 1
size_min = 128
size_max = 1024
stride = 17

# --- mid-run fault burst ----------------------------------------------------
# Exactly 50 frames vanish from node 5's outbound fiber...
[fault]
kind = link_drop_burst
target = node5.link
at = 800ms
count = 50

# ...then the HUB port feeding node 3 goes dark for 100 ms...
[fault]
kind = hub_blackout
target = hub0.port3
at = 1s
duration = 100ms

# ...and board 9 crashes outright, rebooting 200 ms later.
[fault]
kind = cab_crash
target = node9.cab
at = 1200ms
duration = 200ms
)";

int run(const BenchOptions& options) {
  scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::from_config(scenario::Config::parse_string(kConfig));
  if (!options.telemetry_path.empty()) {
    // --telemetry: continuous sampling + the conservation auditor. Sampling
    // is pull-based, so the soak's event stream — and the committed
    // BENCH_scenario.json — is unchanged by turning it on.
    spec.telemetry.enabled = true;
    spec.telemetry.interval = options.telemetry_interval;
    spec.telemetry.artifact = options.telemetry_path;
  }
  std::printf("scenario soak: %d nodes, %zu workloads, %zu faults, %.0f ms simulated\n",
              spec.topology.nodes, spec.workloads.size(), spec.faults.size(),
              sim::to_msec(spec.duration));

  scenario::Scenario sc(std::move(spec));
  try {
    sc.run();
  } catch (const std::exception& e) {
    // The conservation auditor failing is the one loud path out of run().
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (sc.sampler() != nullptr) {
    std::printf("telemetry: %zu samples, %zu series, %zu marks -> %s\n", sc.sampler()->samples(),
                sc.sampler()->series_count(), sc.sampler()->marks().size(),
                sc.spec().telemetry.artifact.c_str());
  }
  if (sc.auditor() != nullptr) {
    std::printf("audit: %zu invariants, %llu checks, %zu violations\n", sc.auditor()->invariants(),
                static_cast<unsigned long long>(sc.auditor()->checks_run()),
                sc.auditor()->violations().size());
  }

  std::printf("\n%-12s %10s %8s %8s %8s %10s %9s %9s %9s\n", "workload", "delivered", "shed",
              "errors", "fair", "Mbit/s", "p50 us", "p99 us", "p999 us");
  for (const auto& w : sc.workloads()) {
    const auto& h = w->latency();
    std::printf("%-12s %10llu %8llu %8llu %8.3f %10.2f %9.1f %9.1f %9.1f\n",
                w->spec().name.c_str(), static_cast<unsigned long long>(w->delivered()),
                static_cast<unsigned long long>(w->shed()),
                static_cast<unsigned long long>(w->errors()), w->fairness(),
                w->goodput_mbps(sc.spec().duration), h.p50() / sim::kMicrosecond,
                h.p99() / sim::kMicrosecond, h.p999() / sim::kMicrosecond);
  }
  std::printf("\ndrops: %llu total, %llu fault-attributed\n",
              static_cast<unsigned long long>(sc.faults().network_drops()),
              static_cast<unsigned long long>(sc.faults().total_attributed_drops()));
  for (std::size_t i = 0; i < sc.faults().records().size(); ++i) {
    const auto& r = sc.faults().records()[i];
    std::printf("  fault%zu %s at %.1f ms: %llu drops\n", i, r.spec.describe().c_str(),
                sim::to_msec(r.applied_at), static_cast<unsigned long long>(r.attributed_drops));
  }

  finish_report(options, sc.report());
  return 0;
}

}  // namespace
}  // namespace nectar::bench

int main(int argc, char** argv) {
  return nectar::bench::run(nectar::bench::parse_options(argc, argv));
}
