#pragma once

#include <memory>
#include <string>

#include "host/driver.hpp"
#include "host/netdev.hpp"
#include "host/process.hpp"
#include "host/sockets.hpp"
#include "nectarine/nectarine.hpp"
#include "net/system.hpp"

namespace nectar::host {

/// One complete Nectar installation seat: a workstation host, its CAB (from
/// a NectarSystem built with VME buses), the device driver, Nectarine, the
/// CAB-side services, and the protocol-engine socket server. This is the
/// configuration the paper's Table 1 / Fig. 6 / Fig. 8 host measurements ran
/// on.
struct HostNode {
  Host host;
  CabDriver driver;
  nectarine::HostNectarine nin;
  nectarine::CabServices services;
  SocketServer sockets;

  HostNode(net::NectarSystem& sys, int node)
      : host(sys.engine(), "host" + std::to_string(node)),
        driver(host, sys.runtime(node)),
        nin(driver),
        services(sys.runtime(node), sys.stack(node).reqresp),
        sockets(sys.runtime(node), sys.stack(node).tcp, sys.stack(node).datagram,
                sys.stack(node).rmp, &sys.stack(node).udp, &sys.stack(node).reqresp) {}
};

}  // namespace nectar::host
