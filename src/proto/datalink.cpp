#include "proto/datalink.hpp"

#include <stdexcept>

#include "obs/causal.hpp"
#include "obs/profiler.hpp"
#include "sim/costs.hpp"

namespace nectar::proto {

namespace costs = sim::costs;

Datalink::Datalink(core::CabRuntime& rt) : rt_(rt), metrics_reg_(rt.metrics()) {
  rt_.set_packet_handler([this] { process_pending(); });

  int node = node_id();
  metrics_reg_.probe(node, "datalink", "packets_sent",
                     [this] { return static_cast<std::int64_t>(packets_sent_); });
  metrics_reg_.probe(node, "datalink", "packets_received",
                     [this] { return static_cast<std::int64_t>(packets_received_); });
  metrics_reg_.probe(node, "datalink", "dropped_no_client",
                     [this] { return static_cast<std::int64_t>(dropped_no_client_); });
  metrics_reg_.probe(node, "datalink", "dropped_no_buffer",
                     [this] { return static_cast<std::int64_t>(dropped_no_buffer_); });
  metrics_reg_.probe(node, "datalink", "dropped_crc",
                     [this] { return static_cast<std::int64_t>(dropped_crc_); });
  metrics_reg_.probe(node, "datalink", "dropped_runt",
                     [this] { return static_cast<std::int64_t>(dropped_runt_); });
  packet_bytes_ =
      &rt_.metrics().histogram(node, "datalink", "packet_bytes", {64, 256, 1024, 4096, 16384});
}

void Datalink::trace_instant(const char* label) {
  obs::Tracer* t = rt_.cpu().tracer();
  if (obs::tracing(t)) t->instant(rt_.cpu().trace_track(), label);
}

void Datalink::set_route(int dst_node, hw::RouteRef route) {
  // Intern once: every frame to this destination shares the same immutable
  // route bytes instead of carrying a per-packet copy.
  routes_[dst_node] = std::move(route);
}

void Datalink::invalidate_route(int dst_node) { routes_.erase(dst_node); }

const std::vector<std::uint8_t>& Datalink::route_to(int dst_node) const {
  return route_ref(dst_node).bytes();
}

const hw::RouteRef& Datalink::route_ref(int dst_node) const {
  auto it = routes_.find(dst_node);
  if (it == routes_.end()) {
    throw std::logic_error(rt_.board().name() + ": no route to node " +
                           std::to_string(dst_node));
  }
  return it->second;
}

void Datalink::register_client(PacketType type, DatalinkClient* client) {
  clients_[static_cast<std::uint8_t>(type)] = client;
}

void Datalink::send(PacketType type, int dst_node, HeaderBufLease hdr, hw::CabAddr payload,
                    std::size_t len, sim::InplaceAction on_sent, obs::TraceContext tctx) {
  send_via(type, route_ref(dst_node), dst_node, std::move(hdr), payload, len, std::move(on_sent),
           tctx);
}

void Datalink::send_via(PacketType type, const hw::RouteRef& route, int dst_node,
                        HeaderBufLease hdr, hw::CabAddr payload, std::size_t len,
                        sim::InplaceAction on_sent, obs::TraceContext tctx) {
  std::size_t proto_len = hdr.size();
  if (proto_len + len > kMaxPayload) {
    throw std::logic_error("Datalink::send: packet exceeds maximum payload");
  }
  (void)dst_node;
  obs::CostScope scope("dl/send");
  rt_.cpu().charge(costs::kDatalinkSend);

  obs::CausalTracer* ct = tctx.valid() ? obs::CausalTracer::active() : nullptr;
  if (ct != nullptr) {
    ct->stage(tctx, "tx.datalink", "node" + std::to_string(node_id()));
    // The stamp rides the wire between the datalink header and the protocol
    // headers: real bytes, serialized and CRC'd like any others.
    obs::encode_stamp(hdr.ensure().push_front(obs::kTraceStampBytes), tctx);
    proto_len += obs::kTraceStampBytes;
  }

  DatalinkHeader dh;
  dh.type = type;
  dh.src_node = static_cast<std::uint8_t>(node_id());
  dh.length = static_cast<std::uint16_t>(proto_len + len);
  dh.traced = ct != nullptr;

  // Prepend the datalink header into the composition buffer's headroom: the
  // frame's header bytes [datalink][proto...] are already contiguous, no
  // gather copy needed.
  dh.serialize(hdr.ensure().push_front(DatalinkHeader::kSize));

  ++packets_sent_;
  packet_bytes_->observe(static_cast<std::int64_t>(proto_len + len));
  NECTAR_TRACE(trace_instant("dl.send"));
  hw::SendCallback completion;
  if (on_sent) {
    core::Cpu& cpu = rt_.cpu();
    completion = [&cpu, fn = std::move(on_sent)]() mutable { cpu.post_interrupt(std::move(fn)); };
  }
  rt_.board().dma().start_send(route, hdr.bytes(), len > 0 ? payload : hw::kDataBase, len,
                               std::move(completion), node_id(), tctx);
}

void Datalink::send_mcast(PacketType type, const hw::McastRef& mcast, HeaderBufLease hdr,
                          hw::CabAddr payload, std::size_t len, sim::InplaceAction on_sent,
                          obs::TraceContext tctx) {
  std::size_t proto_len = hdr.size();
  if (proto_len + len > kMaxPayload) {
    throw std::logic_error("Datalink::send_mcast: packet exceeds maximum payload");
  }
  obs::CostScope scope("dl/send");
  rt_.cpu().charge(costs::kDatalinkSend);

  obs::CausalTracer* ct = tctx.valid() ? obs::CausalTracer::active() : nullptr;
  if (ct != nullptr) {
    ct->stage(tctx, "tx.datalink", "node" + std::to_string(node_id()));
    obs::encode_stamp(hdr.ensure().push_front(obs::kTraceStampBytes), tctx);
    proto_len += obs::kTraceStampBytes;
  }

  DatalinkHeader dh;
  dh.type = type;
  dh.src_node = static_cast<std::uint8_t>(node_id());
  dh.length = static_cast<std::uint16_t>(proto_len + len);
  dh.traced = ct != nullptr;
  dh.serialize(hdr.ensure().push_front(DatalinkHeader::kSize));

  ++packets_sent_;
  packet_bytes_->observe(static_cast<std::int64_t>(proto_len + len));
  NECTAR_TRACE(trace_instant("dl.send"));
  hw::SendCallback completion;
  if (on_sent) {
    core::Cpu& cpu = rt_.cpu();
    completion = [&cpu, fn = std::move(on_sent)]() mutable { cpu.post_interrupt(std::move(fn)); };
  }
  rt_.board().dma().start_send_mcast(mcast, hdr.bytes(), len > 0 ? payload : hw::kDataBase, len,
                                     std::move(completion), node_id(), tctx);
}

void Datalink::discard_front() {
  rt_.board().dma().start_recv(hw::DmaController::kDiscard, 0,
                               [this](hw::FiberInFifo::ArrivedFrame, bool) {
                                 rt_.cpu().post_interrupt([this] { process_pending(); });
                               });
}

void Datalink::process_pending() {
  hw::FiberInFifo& fifo = rt_.board().in_fifo();
  hw::DmaController& dma = rt_.board().dma();
  core::Cpu& cpu = rt_.cpu();

  if (dma.recv_busy() || !fifo.has_frame()) return;

  // Stall until the datalink header has arrived in the FIFO (§2.2: the CPU
  // reads the FIFO head; the bytes may still be in flight), then parse it.
  obs::CostScope scope("dl/recv");
  cpu.charge_until(fifo.payload_available_at(DatalinkHeader::kSize));
  cpu.charge(costs::kDatalinkRecv);

  const hw::FiberInFifo::ArrivedFrame& front = fifo.front();
  obs::CausalTracer* ct = obs::CausalTracer::active();
  obs::TraceContext fctx = front.frame.trace;  // in-flight mirror (hop is current)
  auto drop_trace = [&](const char* why) {
    if (ct != nullptr && fctx.valid()) {
      ct->annotate(fctx, why);
      ct->stage(fctx, "loss.wait", "node" + std::to_string(node_id()));
    }
  };
  if (front.frame.payload.size() < DatalinkHeader::kSize) {
    ++dropped_runt_;
    drop_trace("drop.runt");
    discard_front();
    return;
  }
  DatalinkHeader dh = DatalinkHeader::parse(front.frame.payload);
  // Strip the causal-trace stamp (if flagged) riding between the datalink
  // header and the protocol bytes; the wire stamp carries the identity, the
  // frame mirror the up-to-date hop count.
  std::size_t stamp_skip = 0;
  if (dh.traced) {
    obs::TraceContext wire;
    if (dh.length < obs::kTraceStampBytes ||
        front.frame.payload.size() < DatalinkHeader::kSize + obs::kTraceStampBytes ||
        !obs::decode_stamp(front.frame.payload.bytes().subspan(DatalinkHeader::kSize), wire)) {
      ++dropped_runt_;
      drop_trace("drop.runt");
      discard_front();
      return;
    }
    stamp_skip = obs::kTraceStampBytes;
    if (!fctx.valid()) fctx = wire;
  }
  DatalinkClient* client = clients_[static_cast<std::uint8_t>(dh.type)];
  if (client == nullptr) {
    ++dropped_no_client_;
    drop_trace("drop.no_client");
    discard_front();
    return;
  }

  // Allocate the packet's data area directly in the protocol's input
  // mailbox (§4.1: "initiates DMA operations to place the data into an
  // appropriate mailbox"). Non-blocking: we are at interrupt level.
  auto msg = client->input_mailbox().begin_put_try(
      static_cast<std::uint32_t>(dh.length - stamp_skip));
  if (!msg.has_value()) {
    ++dropped_no_buffer_;
    drop_trace("drop.no_buffer");
    discard_front();
    return;
  }
  core::Message m = *msg;
  std::uint8_t src = dh.src_node;

  // The receive buffer's address range recovers the context after mailbox
  // hand-offs (headers are stripped in place; the data pointer only moves
  // forward). Always clear stale tags on the recycled range, then tag when
  // this packet is traced.
  if (ct != nullptr) ct->tag(node_id(), m.data, m.len, fctx);

  // When will the protocol header have arrived? (Computed now: the FIFO
  // front may already be popped by the time the DMA completes.)
  sim::SimTime proto_hdr_avail =
      fifo.payload_available_at(DatalinkHeader::kSize + stamp_skip + client->header_bytes());

  dma.start_recv(m.data, DatalinkHeader::kSize + stamp_skip,
                 [this, m, src, client](hw::FiberInFifo::ArrivedFrame af, bool crc_ok) {
                   rt_.cpu().post_interrupt([this, m, src, client, crc_ok] {
                     ++packets_received_;
                     NECTAR_TRACE(trace_instant("dl.recv"));
                     obs::CausalTracer* tracer = obs::CausalTracer::active();
                     obs::TraceContext rctx =
                         tracer != nullptr ? tracer->lookup(node_id(), m.data)
                                           : obs::TraceContext{};
                     if (crc_ok) {
                       if (tracer != nullptr && rctx.valid()) {
                         tracer->stage(rctx, "rx.datalink", "node" + std::to_string(node_id()));
                       }
                       obs::CausalTracer::RxScope rx(rctx);
                       client->end_of_data(m, src);
                     } else {
                       // The hardware CRC caught corruption: drop silently;
                       // reliable protocols recover by retransmission.
                       ++dropped_crc_;
                       if (tracer != nullptr && rctx.valid()) {
                         tracer->annotate(rctx, "drop.crc");
                         tracer->stage(rctx, "loss.wait", "node" + std::to_string(node_id()));
                         tracer->tag(node_id(), m.data, m.len, {});  // buffer is freed
                       }
                       client->input_mailbox().end_get(m);
                     }
                     process_pending();
                   });
                   (void)af;
                 });

  // Start-of-data upcall: overlap protocol header processing with the rest
  // of the packet's arrival (§4.1).
  if (client->header_bytes() > 0) {
    cpu.charge_until(proto_hdr_avail);
    client->start_of_data(m, src);
  }
}

}  // namespace nectar::proto
