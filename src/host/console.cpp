#include "host/console.hpp"

namespace nectar::host {

HostConsole::HostConsole(CabDriver& driver)
    : driver_(driver), buffers_(driver.cab().create_mailbox("console")) {
  // Host side: the driver's interrupt handler pulls the text across the bus
  // and acknowledges so the CAB can free the buffer.
  driver_.register_host_opcode(kOpWrite, [this](core::SignalElement e) {
    std::vector<std::uint8_t> text(e.aux);
    driver_.read_block(e.param, text);
    bytes_ += text.size();
    std::string line(text.begin(), text.end());
    if (sink_) {
      sink_(std::move(line));
    } else {
      lines_.push_back(std::move(line));
    }
    driver_.post_to_cab({kOpWriteDone, e.param, 0});
  });
  // CAB side: completion frees the buffer (interrupt level).
  driver_.cab().signals().register_opcode(kOpWriteDone, [this](core::SignalElement e) {
    auto it = outstanding_.find(e.param);
    if (it == outstanding_.end()) return;
    core::Message m = it->second;
    outstanding_.erase(it);
    buffers_.end_get(m);
  });
}

void HostConsole::print_from_cab(const std::string& text) {
  core::CabRuntime& rt = driver_.cab();
  core::Message m = buffers_.begin_put(static_cast<std::uint32_t>(text.size()));
  rt.cpu().charge(static_cast<sim::SimTime>(text.size()) * sim::costs::kCabCopyPerByte);
  rt.board().memory().write(
      m.data, std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(text.data()),
                                            text.size()));
  outstanding_[m.data] = m;
  rt.signals().post_to_host({kOpWrite, m.data, static_cast<std::uint32_t>(m.len)});
}

}  // namespace nectar::host
