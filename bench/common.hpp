#pragma once

// Shared helpers for the paper-reproduction benchmark binaries.
//
// These harnesses measure *simulated* time on the deterministic clock, so a
// run is reproducible bit for bit; wall-clock benchmarking frameworks do not
// apply. Each binary prints the rows/series of one table or figure from
// Cooper et al., SIGCOMM 1990, alongside the paper's reported values.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "host/node.hpp"
#include "net/system.hpp"

namespace nectar::bench {

inline std::vector<std::uint8_t> pattern(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(i * 131 + 7);
  return v;
}

inline double median_usec(std::vector<sim::SimTime> samples) {
  std::sort(samples.begin(), samples.end());
  return sim::to_usec(samples[samples.size() / 2]);
}

inline double mbit_per_sec(std::uint64_t bytes, sim::SimTime elapsed) {
  return static_cast<double>(bytes) * 8.0 / (static_cast<double>(elapsed) / sim::kSecond) / 1e6;
}

inline core::Message stage_message(core::Mailbox& mb, core::CabRuntime& rt,
                                   std::span<const std::uint8_t> data) {
  core::Message m = mb.begin_put(static_cast<std::uint32_t>(data.size()));
  rt.board().memory().write(m.data, data);
  return m;
}

inline void print_header(const char* title) {
  std::printf("\n=== %s ===\n", title);
  std::printf("(simulated Nectar system; see DESIGN.md for the substitution model)\n\n");
}

}  // namespace nectar::bench
