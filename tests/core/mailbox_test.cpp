#include "core/mailbox.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/cpu.hpp"
#include "core/priorities.hpp"

namespace nectar::core {
namespace {

struct Fixture {
  sim::Engine engine;
  hw::CabMemory memory;
  Cpu cpu{engine, "cab.cpu"};
  BufferHeap heap{memory};
  Mailbox mbox{cpu, heap, "test", {0, 1}};

  void write_msg(const Message& m, const std::string& s) {
    memory.write(m.data, std::span<const std::uint8_t>(
                             reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }
  std::string read_msg(const Message& m) {
    std::vector<std::uint8_t> buf(m.len);
    memory.read(m.data, buf);
    return {buf.begin(), buf.end()};
  }
};

TEST(Mailbox, TwoPhasePutGetRoundTrip) {
  Fixture f;
  std::string got;
  f.cpu.fork("writer", kSystemPriority, [&] {
    Message m = f.mbox.begin_put(5);
    f.write_msg(m, "hello");
    f.mbox.end_put(m);
  });
  f.cpu.fork("reader", kSystemPriority, [&] {
    Message m = f.mbox.begin_get();
    got = f.read_msg(m);
    f.mbox.end_get(m);
  });
  f.engine.run();
  EXPECT_EQ(got, "hello");
  EXPECT_EQ(f.mbox.puts(), 1u);
  EXPECT_EQ(f.mbox.gets(), 1u);
}

TEST(Mailbox, ReaderBlocksUntilMessageArrives) {
  Fixture f;
  sim::SimTime got_at = -1;
  f.cpu.fork("reader", kSystemPriority, [&] {
    Message m = f.mbox.begin_get();  // mailbox empty: blocks
    got_at = f.engine.now();
    f.mbox.end_get(m);
  });
  f.cpu.fork("writer", kAppPriority, [&] {
    f.cpu.sleep_until(sim::usec(500));
    Message m = f.mbox.begin_put(4);
    f.mbox.end_put(m);
  });
  f.engine.run();
  EXPECT_GE(got_at, sim::usec(500));
}

TEST(Mailbox, MessagesDeliveredInOrder) {
  Fixture f;
  std::vector<std::string> got;
  f.cpu.fork("writer", kSystemPriority, [&] {
    for (int i = 0; i < 5; ++i) {
      Message m = f.mbox.begin_put(2);
      f.write_msg(m, "m" + std::to_string(i));
      f.mbox.end_put(m);
    }
  });
  f.cpu.fork("reader", kSystemPriority, [&] {
    for (int i = 0; i < 5; ++i) {
      Message m = f.mbox.begin_get();
      got.push_back(f.read_msg(m));
      f.mbox.end_get(m);
    }
  });
  f.engine.run();
  ASSERT_EQ(got.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], "m" + std::to_string(i));
}

TEST(Mailbox, MultiplePutsOutstanding) {
  // §3.3: "space for additional messages may be reserved in the meantime".
  Fixture f;
  std::vector<std::string> got;
  f.cpu.fork("writer", kSystemPriority, [&] {
    Message a = f.mbox.begin_put(200);  // > small-buffer size: heap path
    Message b = f.mbox.begin_put(200);
    f.write_msg(b, "second");
    f.write_msg(a, "first");
    f.mbox.end_put(a);
    f.mbox.end_put(b);
  });
  f.cpu.fork("reader", kSystemPriority, [&] {
    for (int i = 0; i < 2; ++i) {
      Message m = f.mbox.begin_get();
      got.push_back(f.read_msg(m).substr(0, 6));
      f.mbox.end_get(m);
    }
  });
  f.engine.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].substr(0, 5), "first");
  EXPECT_EQ(got[1], "second");
}

TEST(Mailbox, SmallBufferCacheIsReused) {
  Fixture f;
  f.cpu.fork("t", kSystemPriority, [&] {
    Message a = f.mbox.begin_put(32);
    EXPECT_TRUE(a.from_cache);
    hw::CabAddr cached = a.data;
    f.mbox.end_put(a);
    Message g = f.mbox.begin_get();
    f.mbox.end_get(g);
    // Next small put reuses the same cached buffer.
    Message b = f.mbox.begin_put(32);
    EXPECT_TRUE(b.from_cache);
    EXPECT_EQ(b.data, cached);
    f.mbox.end_put(b);
  });
  f.engine.run();
  EXPECT_EQ(f.mbox.cache_hits(), 2u);
}

TEST(Mailbox, CacheMissFallsBackToHeap) {
  Fixture f;
  f.cpu.fork("t", kSystemPriority, [&] {
    Message a = f.mbox.begin_put(32);  // takes the cache
    Message b = f.mbox.begin_put(32);  // cache busy: heap
    EXPECT_TRUE(a.from_cache);
    EXPECT_FALSE(b.from_cache);
    f.mbox.end_put(a);
    f.mbox.end_put(b);
  });
  f.engine.run();
}

TEST(Mailbox, LargeMessagesBypassCache) {
  Fixture f;
  f.cpu.fork("t", kSystemPriority, [&] {
    Message m = f.mbox.begin_put(Mailbox::kSmallBufSize + 1);
    EXPECT_FALSE(m.from_cache);
    f.mbox.end_put(m);
  });
  f.engine.run();
}

TEST(Mailbox, EnqueueMovesWithoutCopy) {
  // §4.1: IP transfers complete datagrams to the input mailbox of the
  // higher-level protocol with Enqueue, "so no data is copied".
  Fixture f;
  Mailbox dst(f.cpu, f.heap, "dst", {0, 2});
  std::string got;
  hw::CabAddr src_addr = 0, dst_addr = 0;
  f.cpu.fork("ip", kSystemPriority, [&] {
    Message m = f.mbox.begin_put(300);
    f.write_msg(m, "datagram");
    src_addr = m.data;
    f.mbox.end_put(m);
    Message taken = f.mbox.begin_get();
    f.mbox.enqueue(taken, dst);
  });
  f.cpu.fork("tcp", kSystemPriority, [&] {
    Message m = dst.begin_get();
    got = f.read_msg(m).substr(0, 8);
    dst_addr = m.data;
    dst.end_get(m);
  });
  f.engine.run();
  EXPECT_EQ(got, "datagram");
  EXPECT_EQ(src_addr, dst_addr);  // zero-copy: same bytes, same address
  EXPECT_EQ(f.mbox.enqueues(), 1u);
}

TEST(Mailbox, AdjustStripsHeadersInPlace) {
  Fixture f;
  f.cpu.fork("t", kSystemPriority, [&] {
    Message m = f.mbox.begin_put(300);
    f.write_msg(m, "HDR:payload:TRL");
    hw::CabAddr base = m.data;
    Message stripped = Mailbox::adjust_prefix(m, 4);
    stripped = Mailbox::adjust_suffix(stripped, 4);
    EXPECT_EQ(stripped.data, base + 4);
    EXPECT_EQ(stripped.len, 300u - 8u);
    EXPECT_EQ(f.read_msg(stripped).substr(0, 7), "payload");
    // The full block is still freed correctly.
    f.mbox.end_put(stripped);
    Message g = f.mbox.begin_get();
    f.mbox.end_get(g);
  });
  f.engine.run();
  EXPECT_EQ(f.heap.bytes_in_use(), f.mbox.cache_hits() > 0 ? 128u : 0u);
}

TEST(Mailbox, AdjustBeyondLengthThrows) {
  Fixture f;
  f.cpu.fork("t", kSystemPriority, [&] {
    Message m = f.mbox.begin_put(10);
    EXPECT_THROW(Mailbox::adjust_prefix(m, 11), std::logic_error);
    EXPECT_THROW(Mailbox::adjust_suffix(m, 11), std::logic_error);
    f.mbox.end_put(m);
  });
  f.engine.run();
}

TEST(Mailbox, ReaderUpcallConvertsCrossThreadCallToLocal) {
  // §3.3: attaching the server body as a reader upcall avoids the context
  // switch of a dedicated server thread.
  Fixture f;
  std::vector<std::string> served;
  f.mbox.set_reader_upcall([&](Mailbox& mb) {
    auto m = mb.begin_get_try();
    ASSERT_TRUE(m.has_value());
    served.push_back(f.read_msg(*m));
    mb.end_get(*m);
  });
  std::uint64_t switches_before = 0, switches_after = 0;
  f.cpu.fork("client", kSystemPriority, [&] {
    switches_before = f.cpu.context_switches();
    for (int i = 0; i < 3; ++i) {
      Message m = f.mbox.begin_put(4);
      f.write_msg(m, "req" + std::to_string(i));
      f.mbox.end_put(m);
    }
    switches_after = f.cpu.context_switches();
  });
  f.engine.run();
  ASSERT_EQ(served.size(), 3u);
  EXPECT_EQ(served[0], "req0");
  EXPECT_EQ(switches_after, switches_before);  // no context switches needed
}

TEST(Mailbox, WriterBlocksWhenHeapExhaustedAndResumesOnFree) {
  sim::Engine engine;
  hw::CabMemory memory;
  Cpu cpu(engine, "cpu");
  BufferHeap small_heap(memory, hw::kDataBase, 8192);
  Mailbox mbox(cpu, small_heap, "tight", {0, 1});
  bool second_put_done = false;
  sim::SimTime put_done_at = -1;
  cpu.fork("writer", kSystemPriority, [&] {
    Message a = mbox.begin_put(6000);
    mbox.end_put(a);
    Message b = mbox.begin_put(6000);  // blocks: heap exhausted
    put_done_at = engine.now();
    mbox.end_put(b);
    second_put_done = true;
  });
  cpu.fork("reader", kAppPriority, [&] {
    cpu.sleep_until(sim::usec(400));
    Message m = mbox.begin_get();
    cpu.charge(sim::usec(10));
    mbox.end_get(m);  // frees space; writer resumes
  });
  engine.run();
  EXPECT_TRUE(second_put_done);
  EXPECT_GE(put_done_at, sim::usec(400));
}

TEST(Mailbox, TryVariantsNeverBlock) {
  Fixture f;
  f.cpu.fork("t", kSystemPriority, [&] {
    EXPECT_FALSE(f.mbox.begin_get_try().has_value());  // empty
    auto m = f.mbox.begin_put_try(40);
    ASSERT_TRUE(m.has_value());
    f.mbox.end_put(*m);
    EXPECT_TRUE(f.mbox.begin_get_try().has_value());
  });
  f.engine.run();
}

TEST(Mailbox, TryPutFailsWhenHeapFull) {
  sim::Engine engine;
  hw::CabMemory memory;
  Cpu cpu(engine, "cpu");
  BufferHeap small_heap(memory, hw::kDataBase, 2048);
  Mailbox mbox(cpu, small_heap, "tight", {0, 1});
  cpu.fork("t", kSystemPriority, [&] {
    auto a = mbox.begin_put_try(1500);
    ASSERT_TRUE(a.has_value());
    EXPECT_FALSE(mbox.begin_put_try(1500).has_value());
    mbox.end_put(*a);
  });
  engine.run();
}

TEST(Mailbox, BlockingOpsInInterruptContextThrow) {
  Fixture f;
  bool checked = false;
  f.cpu.post_interrupt([&] {
    EXPECT_THROW(f.mbox.begin_get(), std::logic_error);
    EXPECT_THROW(f.mbox.begin_put(10), std::logic_error);
    checked = true;
  });
  f.engine.run();
  EXPECT_TRUE(checked);
}

TEST(Mailbox, InterruptHandlerUsesTryVariants) {
  // §4.1 pattern: the datalink interrupt publishes into a protocol mailbox;
  // a server thread consumes.
  Fixture f;
  std::string got;
  f.cpu.fork("server", kSystemPriority, [&] {
    Message m = f.mbox.begin_get();
    got = f.read_msg(m);
    f.mbox.end_get(m);
  });
  f.engine.schedule_at(sim::usec(200), [&] {
    f.cpu.post_interrupt([&] {
      auto m = f.mbox.begin_put_try(6);
      ASSERT_TRUE(m.has_value());
      f.write_msg(*m, "packet");
      f.mbox.end_put(*m);
    });
  });
  f.engine.run();
  EXPECT_EQ(got, "packet");
}

TEST(Mailbox, NotifyHookFiresOnPublish) {
  Fixture f;
  int notifications = 0;
  f.mbox.set_notify_hook([&] { ++notifications; });
  f.cpu.fork("t", kSystemPriority, [&] {
    for (int i = 0; i < 3; ++i) {
      Message m = f.mbox.begin_put(4);
      f.mbox.end_put(m);
    }
  });
  f.engine.run();
  EXPECT_EQ(notifications, 3);
}

TEST(Mailbox, CachedBufferReturnsToOwnerAfterEnqueue) {
  Fixture f;
  Mailbox dst(f.cpu, f.heap, "dst", {0, 2});
  f.cpu.fork("t", kSystemPriority, [&] {
    Message m = f.mbox.begin_put(16);
    ASSERT_TRUE(m.from_cache);
    f.mbox.end_put(m);
    Message taken = f.mbox.begin_get();
    f.mbox.enqueue(taken, dst);
    Message got = dst.begin_get();
    dst.end_get(got);  // returns the buffer to f.mbox's cache
    Message again = f.mbox.begin_put(16);
    EXPECT_TRUE(again.from_cache);
    f.mbox.end_put(again);
  });
  f.engine.run();
}

}  // namespace
}  // namespace nectar::core
