#include "obs/span.hpp"

namespace nectar::obs {

namespace {

void put16(std::span<std::uint8_t> b, std::size_t off, std::uint16_t v) {
  b[off] = static_cast<std::uint8_t>(v >> 8);
  b[off + 1] = static_cast<std::uint8_t>(v);
}

void put32(std::span<std::uint8_t> b, std::size_t off, std::uint32_t v) {
  put16(b, off, static_cast<std::uint16_t>(v >> 16));
  put16(b, off + 2, static_cast<std::uint16_t>(v));
}

void put64(std::span<std::uint8_t> b, std::size_t off, std::uint64_t v) {
  put32(b, off, static_cast<std::uint32_t>(v >> 32));
  put32(b, off + 4, static_cast<std::uint32_t>(v));
}

std::uint16_t get16(std::span<const std::uint8_t> b, std::size_t off) {
  return static_cast<std::uint16_t>(b[off] << 8 | b[off + 1]);
}

std::uint32_t get32(std::span<const std::uint8_t> b, std::size_t off) {
  return static_cast<std::uint32_t>(get16(b, off)) << 16 | get16(b, off + 2);
}

std::uint64_t get64(std::span<const std::uint8_t> b, std::size_t off) {
  return static_cast<std::uint64_t>(get32(b, off)) << 32 | get32(b, off + 4);
}

}  // namespace

void encode_stamp(std::span<std::uint8_t> out, const TraceContext& c) {
  put16(out, 0, kTraceStampMagic);
  out[2] = c.hop;
  out[3] = 0;
  put32(out, 4, c.parent_span);
  put64(out, 8, c.trace_id);
}

bool decode_stamp(std::span<const std::uint8_t> in, TraceContext& c) {
  if (in.size() < kTraceStampBytes) return false;
  if (get16(in, 0) != kTraceStampMagic) return false;
  c.hop = in[2];
  c.parent_span = get32(in, 4);
  c.trace_id = get64(in, 8);
  return true;
}

}  // namespace nectar::obs
