#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hw/frame.hpp"
#include "sim/costs.hpp"
#include "sim/engine.hpp"

namespace nectar::obs {
class Registration;
}

namespace nectar::hw {

/// Nectar HUB: an N x N crossbar switch with I/O ports and a controller
/// (paper §2.1). CABs use source routing: each frame carries one output-port
/// byte per HUB hop, consumed as it traverses. The HUB supports both
/// packet-switching (per-frame, with virtual cut-through and per-output-port
/// contention) and circuit-switching (an input pinned to an output). Setup
/// latency through a single HUB is 700 ns.
class Hub {
 public:
  Hub(sim::Engine& engine, std::string name, int num_ports = 16,
      double bits_per_sec = sim::costs::kFiberBitsPerSec,
      sim::SimTime setup = sim::costs::kHubSetup);

  int num_ports() const { return static_cast<int>(inputs_.size()); }
  const std::string& name() const { return name_; }

  /// The sink a fiber link (or an upstream HUB output) delivers into.
  FrameSink* input(int port);

  /// Attach the element downstream of output `port` (a CAB input FIFO or
  /// another HUB's input port). `propagation` models the fiber segment.
  /// `defer_offer` moves the downstream offer from the first byte's
  /// *departure* (the sequential simulator's virtual cut-through shortcut,
  /// where the sink reacts to byte times still in flight) to its *arrival*
  /// (out_first + propagation) — the same instant a cross-shard trunk
  /// delivers at. net::Network sets it on every same-shard trunk of a
  /// sharded run so all trunks share one arrival discipline regardless of
  /// which ones cross shards; the sink must then be a HUB input (always
  /// accepts). Single-shard networks leave it false, preserving the
  /// legacy event order bit for bit.
  void attach_output(int port, FrameSink* sink,
                     sim::SimTime propagation = sim::costs::kLinkPropagation,
                     bool defer_offer = false);

  /// Attach a downstream element that lives on another simulation shard
  /// (`remote` is that shard's engine). The sink must be a HUB input port —
  /// those always accept, so no backpressure state crosses the boundary.
  /// Forwarded frames are posted through the cross-shard mailbox at their
  /// first-byte *arrival* time (out_first + propagation), which is what
  /// guarantees the coordinator's lookahead: a frame leaving now can touch
  /// the remote shard no earlier than now + propagation. `cross_key`
  /// deterministically identifies this output in the mailbox drain order;
  /// callers (net::Network) derive it from (hub id, port).
  void attach_output_remote(int port, FrameSink* sink, sim::SimTime propagation,
                            sim::Engine& remote, std::uint64_t cross_key);

  /// Circuit switching: reserve output `out` for input `in`. Frames arriving
  /// on `in` with an exhausted route are forwarded over the circuit without
  /// consuming a route byte; frames from other inputs queue until the
  /// circuit closes. Returns false if the output is already reserved.
  bool open_circuit(int in, int out);
  void close_circuit(int in);
  std::optional<int> circuit_output(int in) const;

  /// Fault injection: a blacked-out output port silently discards every
  /// frame routed to it (a dead laser / unseated port card). Frames already
  /// queued at the output are discarded too.
  void set_port_blackout(int port, bool on);
  bool port_blackout(int port) const;

  std::uint64_t frames_switched() const { return frames_switched_; }
  std::uint64_t route_errors() const { return route_errors_; }
  std::uint64_t bytes_switched() const { return bytes_switched_; }
  /// Frames offered to the routing stage (unicast + multicast originals).
  /// Conservation across the input side (audited by net::Network):
  ///   frames_in + mcast_out - mcast_in ==
  ///     route_errors + blackout_drops_preswitch + frames_switched + queued
  std::uint64_t frames_in() const { return frames_in_; }
  /// Frames the downstream sinks accepted (cross-shard posts count at post
  /// time). Output-side conservation:
  ///   frames_switched == frames_delivered + in-flight + blackout_drops_postswitch
  std::uint64_t frames_delivered() const { return frames_delivered_; }
  std::uint64_t output_delivered(int port) const;
  /// Frames between output `port`'s crossbar stage and its sink: mid-delivery
  /// plus one possibly held by downstream back-pressure.
  std::uint64_t output_in_flight(int port) const;
  /// Split of blackout_drops() around the switching stage: frames discarded
  /// before being counted in frames_switched (at enqueue, or flushed from the
  /// output queue) vs after (a held back-pressured frame flushed by the
  /// blackout). The split is what makes both conservation sums exact.
  std::uint64_t blackout_drops_preswitch() const { return blackout_pre_; }
  std::uint64_t blackout_drops_postswitch() const { return blackout_post_; }
  /// Multicast frames that reached this HUB's replication stage.
  std::uint64_t mcast_in() const { return mcast_in_; }
  /// Replicas produced by the replication stage (over all input frames).
  std::uint64_t mcast_out() const { return mcast_out_; }
  /// Replicas fanned out through output `port` — the per-port multicast
  /// replication gauge (how much of a port's traffic is tree fan-out).
  std::uint64_t output_mcast_frames(int port) const;
  /// Frames discarded by blacked-out output ports (all ports).
  std::uint64_t blackout_drops() const { return blackout_drops_; }
  /// Frames discarded by output `port` while blacked out — the per-port
  /// attribution failover tests assert against ("loss happened *here*").
  std::uint64_t output_blackout_drops(int port) const;
  /// Route errors attributable to output `port` (route byte named a port
  /// with no attached sink). Exhausted-route errors have no port and count
  /// only in route_errors().
  std::uint64_t output_route_errors(int port) const;
  /// Whether output `port` has an attached sink (fiber/CAB). Lets report
  /// writers enumerate only the real ports of a partially-populated HUB.
  bool port_attached(int port) const {
    return outputs_.at(static_cast<std::size_t>(port)).sink != nullptr;
  }
  std::size_t output_queue_depth(int port) const;
  std::size_t output_queue_highwater(int port) const;
  /// Total time output `port` spent transmitting (utilization numerator).
  sim::SimTime output_busy_time(int port) const;
  /// Total time output `port` spent head-of-line blocked by downstream
  /// back-pressure (the crossbar's contribution to tail latency).
  sim::SimTime output_blocked_time(int port) const;
  std::uint64_t output_frames(int port) const;

  /// Per-HUB probes under (node -1, "hub"): "<name>.frames_switched",
  /// "<name>.route_errors", "<name>.blackout_drops", "<name>.mcast_in" /
  /// ".mcast_out", and for each attached output port "<name>.port<p>.frames"
  /// / ".busy_ns" / ".blocked_ns" / ".queue_highwater" / ".blackout_drops" /
  /// ".route_errors" / ".mcast_frames" — how scenario reports attribute
  /// loss, queueing delay, and multicast replication to the crossbar.
  /// Opt-in via Network::register_substrate_metrics.
  void register_metrics(obs::Registration& reg) const;

 private:
  struct QueuedFrame {
    Frame frame;
    sim::SimTime first_in;
    sim::SimTime last_in;
    int in_port;
  };

  /// A frame between this output's crossbar stage and the downstream sink.
  /// Held here (not in event captures) so delivery events stay pointer-sized.
  struct Delivering {
    Frame frame;
    sim::SimTime first;  // first-byte arrival at the downstream sink
    sim::SimTime last;   // last-byte arrival at the downstream sink
  };

  struct OutputPort {
    FrameSink* sink = nullptr;
    sim::SimTime propagation = 0;
    bool defer_offer = false;         // offer at first-byte arrival, not departure
    sim::Engine* remote = nullptr;    // non-null: sink lives on this shard
    std::uint64_t cross_key = 0;      // mailbox ordering identity
    std::uint64_t cross_seq = 0;      // per-output post counter
    std::deque<QueuedFrame> queue;
    std::deque<Delivering> delivering;  // in first-byte order
    std::size_t highwater = 0;
    bool transmitting = false;
    std::optional<Frame> blocked;
    sim::SimTime blocked_span = 0;
    sim::SimTime blocked_since = 0;   // when the head frame became blocked
    sim::SimTime blocked_time = 0;    // accumulated head-of-line blocked time
    std::optional<int> reserved_by;  // circuit switching
    bool blackout = false;           // fault injection: discard everything
    std::uint64_t frames = 0;
    std::uint64_t delivered = 0;     // accepted by the downstream sink
    std::uint64_t mcast_frames = 0;  // of `frames`, how many were tree replicas
    std::uint64_t blackout_drops = 0;
    std::uint64_t route_errors = 0;
    sim::SimTime busy_time = 0;
  };

  class InputPort : public FrameSink {
   public:
    InputPort(Hub& hub, int index) : hub_(hub), index_(index) {}
    bool offer(Frame&& f, sim::SimTime first, sim::SimTime last) override;
    void set_drain_notify(std::function<void()> fn) override { notify_ = std::move(fn); }
    std::function<void()> notify_;

   private:
    Hub& hub_;
    int index_;
  };

  void route_frame(int in_port, Frame&& f, sim::SimTime first, sim::SimTime last);
  /// Replication stage: fan `f` out per its mcast tree node, one replica per
  /// edge in port order (deterministic contention), each re-entering the
  /// common output path below.
  void replicate_mcast(int in_port, Frame&& f, sim::SimTime first, sim::SimTime last);
  /// Common output-side tail shared by unicast routing and multicast
  /// replicas: validates `out`, applies blackout, queues, kicks the port.
  void enqueue_out(int in_port, int out, Frame&& f, sim::SimTime first, sim::SimTime last);
  void try_forward(int out_port);
  void deliver_front(int out_port);  // first byte reached the downstream sink
  void on_output_drain(int out_port);

  sim::Engine& engine_;
  std::string name_;
  double rate_;
  sim::SimTime setup_;
  std::vector<std::unique_ptr<InputPort>> inputs_;
  std::vector<OutputPort> outputs_;
  std::uint64_t frames_switched_ = 0;
  std::uint64_t bytes_switched_ = 0;
  std::uint64_t route_errors_ = 0;
  std::uint64_t blackout_drops_ = 0;
  std::uint64_t blackout_pre_ = 0;   // of blackout_drops_, before frames_switched_
  std::uint64_t blackout_post_ = 0;  // of blackout_drops_, after frames_switched_
  std::uint64_t frames_in_ = 0;
  std::uint64_t frames_delivered_ = 0;
  std::uint64_t mcast_in_ = 0;
  std::uint64_t mcast_out_ = 0;
};

}  // namespace nectar::hw
