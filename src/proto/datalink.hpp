#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/mailbox.hpp"
#include "core/runtime.hpp"
#include "obs/span.hpp"
#include "proto/headerbuf.hpp"
#include "proto/headers.hpp"
#include "sim/action.hpp"

namespace nectar::proto {

/// A transport protocol registered with the datalink layer.
///
/// Receive flow (paper §4.1): when a packet arrives over the fiber, the
/// datalink layer reads the datalink header at interrupt time and initiates
/// DMA into the protocol's input mailbox. Once the protocol header has
/// arrived it issues a *start-of-data* upcall (so useful work — e.g. the IP
/// header sanity check — overlaps the rest of the reception), and when the
/// whole packet is in memory an *end-of-data* upcall.
class DatalinkClient {
 public:
  virtual ~DatalinkClient() = default;

  /// Protocol header bytes guaranteed to be in memory before start_of_data.
  virtual std::size_t header_bytes() const = 0;

  /// Mailbox packets for this protocol are received into.
  virtual core::Mailbox& input_mailbox() = 0;

  /// Interrupt context; the first header_bytes() of `m` are valid, the rest
  /// of the packet is still streaming in.
  virtual void start_of_data(const core::Message& m, std::uint8_t src_node) {
    (void)m;
    (void)src_node;
  }

  /// Interrupt context; the full packet is in memory. The implementation
  /// must either publish `m` (end_put / enqueue) or release it.
  virtual void end_of_data(core::Message m, std::uint8_t src_node) = 0;
};

/// Nectar datalink layer: framing, packet-type dispatch, source-route lookup,
/// and the interrupt-time receive path described in §4.1.
class Datalink {
 public:
  /// Maximum datalink payload (protocol headers + data) per packet.
  static constexpr std::size_t kMaxPayload = 16 * 1024;

  explicit Datalink(core::CabRuntime& rt);

  Datalink(const Datalink&) = delete;
  Datalink& operator=(const Datalink&) = delete;

  core::CabRuntime& runtime() { return rt_; }
  int node_id() const { return rt_.node_id(); }

  // --- routing (source routes, §2.1) ---------------------------------------

  /// Install (or replace at runtime — failover) the route to `dst_node`.
  /// Accepts an already-interned RouteRef, a raw byte vector, or an
  /// initializer list; in-flight frames keep the route they were sent with.
  void set_route(int dst_node, hw::RouteRef route);
  /// Remove the route to `dst_node`; subsequent sends throw until a new
  /// route is installed (the control plane's "no surviving path" state).
  void invalidate_route(int dst_node);
  bool has_route(int dst_node) const { return routes_.count(dst_node) > 0; }
  const std::vector<std::uint8_t>& route_to(int dst_node) const;
  /// Interned shared route (frames reference it instead of copying).
  const hw::RouteRef& route_ref(int dst_node) const;

  // --- protocol registration --------------------------------------------------

  void register_client(PacketType type, DatalinkClient* client);

  // --- send path -----------------------------------------------------------------

  /// Transmit the headers composed in `hdr` (the datalink header is
  /// prepended here; pass `{}` when there are no protocol header bytes)
  /// followed by `len` bytes of payload from CAB data memory at `payload`.
  /// The header bytes are copied into the frame before this returns.
  /// `on_sent`, if given, runs in interrupt context after the last byte has
  /// left the fiber (protocols use it to free send buffers).
  /// `tctx`, when valid, identifies the causal trace this packet belongs to:
  /// a 16-byte stamp is prepended into the header buffer's headroom (between
  /// the datalink header and the protocol headers, flagged in the type byte)
  /// so the context rides the wire allocation-free, and the frame carries a
  /// mirror for the fabric's attribution hooks.
  void send(PacketType type, int dst_node, HeaderBufLease hdr, hw::CabAddr payload,
            std::size_t len, sim::InplaceAction on_sent = {}, obs::TraceContext tctx = {});

  /// Like send, but over an explicit source route instead of the installed
  /// table entry. The control plane uses this to probe alternate paths
  /// without disturbing the route live traffic takes. `dst_node` is only
  /// recorded for tracing; the route bytes decide where the frame goes.
  void send_via(PacketType type, const hw::RouteRef& route, int dst_node, HeaderBufLease hdr,
                hw::CabAddr payload, std::size_t len, sim::InplaceAction on_sent = {},
                obs::TraceContext tctx = {});

  /// Multicast send: one serialization out of this CAB, replicated by every
  /// HUB along `mcast`'s distribution tree (net::Network::mcast_ref). The
  /// CPU-side cost is a single send — the fan-out is the fabric's work,
  /// which is exactly the offload the collectives measure.
  void send_mcast(PacketType type, const hw::McastRef& mcast, HeaderBufLease hdr,
                  hw::CabAddr payload, std::size_t len, sim::InplaceAction on_sent = {},
                  obs::TraceContext tctx = {});

  // --- stats ------------------------------------------------------------------------

  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t packets_received() const { return packets_received_; }
  std::uint64_t dropped_no_client() const { return dropped_no_client_; }
  std::uint64_t dropped_no_buffer() const { return dropped_no_buffer_; }
  std::uint64_t dropped_crc() const { return dropped_crc_; }
  std::uint64_t dropped_runt() const { return dropped_runt_; }

 private:
  void process_pending();  // interrupt context
  void discard_front();    // interrupt context
  void trace_instant(const char* label);

  core::CabRuntime& rt_;
  std::map<int, hw::RouteRef> routes_;
  std::array<DatalinkClient*, 256> clients_{};

  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_received_ = 0;
  std::uint64_t dropped_no_client_ = 0;
  std::uint64_t dropped_no_buffer_ = 0;
  std::uint64_t dropped_crc_ = 0;
  std::uint64_t dropped_runt_ = 0;

  obs::Histogram* packet_bytes_ = nullptr;  // registry-owned send-size histogram
  obs::Registration metrics_reg_;
};

}  // namespace nectar::proto
