#include "scenario/collectives.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace nectar::scenario {

void CollectivesSpec::validate() const {
  if (mode != "cab" && mode != "host") {
    throw std::invalid_argument("collectives: unknown mode '" + mode + "' (want cab | host)");
  }
  if (op != "barrier" && op != "bcast" && op != "reduce") {
    throw std::invalid_argument("collectives: unknown op '" + op +
                                "' (want barrier | bcast | reduce)");
  }
  coll::parse_algorithm(algorithm);  // reject typos at parse time
  coll::parse_reduce_op(reduce);
  if (payload < 1 || payload > 32768) {
    throw std::invalid_argument("collectives: payload must be in [1, 32768]");
  }
  if (iterations < 0) throw std::invalid_argument("collectives: iterations must be >= 0");
  if (fanout < 1) throw std::invalid_argument("collectives: fanout must be >= 1");
  if (timeout <= 0) throw std::invalid_argument("collectives: timeout must be > 0");
  if (retransmit <= 0) throw std::invalid_argument("collectives: retransmit must be > 0");
}

CollectiveDriver::CollectiveDriver(net::Network& net, std::vector<net::NodeStack*> stacks,
                                   const CollectivesSpec& spec)
    : net_(net), stacks_(std::move(stacks)), spec_(spec) {
  spec_.validate();
  op_ = spec_.op == "barrier" ? Op::Barrier : spec_.op == "bcast" ? Op::Bcast : Op::Reduce;
  rop_ = coll::parse_reduce_op(spec_.reduce);

  const int n = net_.cab_count();
  iters_done_.assign(static_cast<std::size_t>(n), 0);
  data_errors_.assign(static_cast<std::size_t>(n), 0);
  const coll::GroupSpec gspec = make_group_spec();

  if (spec_.mode == "cab") {
    cab_.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      CabNode& cn = cab_[static_cast<std::size_t>(i)];
      net::NodeStack& st = *stacks_.at(static_cast<std::size_t>(i));
      cn.engine = std::make_unique<coll::CollectiveEngine>(net_.datalink(i));
      cn.engine->join_group(gspec);
      cn.nin = std::make_unique<nectarine::CabNectarine>(net_.runtime(i), st.datagram, st.rmp,
                                                         st.reqresp);
      cn.nin->attach_collectives(cn.engine.get());
    }
    for (int i = 0; i < n; ++i) {
      net_.runtime(i).fork_app("coll-worker", [this, i] { worker_loop(i); });
    }
  } else {
    if (net_.runtime(0).board().vme() == nullptr) {
      throw std::invalid_argument(
          "collectives: mode=host needs a VME backplane ([topology] with_vme=true)");
    }
    host_.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      HostNode& hn = host_[static_cast<std::size_t>(i)];
      // engine_of_node: under a sharded run the host CPU must live on the
      // shard that simulates its node.
      hn.host = std::make_unique<host::Host>(net_.engine_of_node(i),
                                             "host" + std::to_string(i));
      hn.driver = std::make_unique<host::CabDriver>(*hn.host, net_.runtime(i));
      hn.nin = std::make_unique<nectarine::HostNectarine>(*hn.driver);
      hn.hc = std::make_unique<coll::HostCollective>(
          *hn.nin, stacks_.at(static_cast<std::size_t>(i))->datagram, gspec);
      hn.nin->attach_collectives(hn.hc.get());
    }
    for (int i = 0; i < n; ++i) {
      host_[static_cast<std::size_t>(i)].host->run_process("coll-worker",
                                                           [this, i] { worker_loop(i); });
    }
  }
}

coll::CollectiveEngine* CollectiveDriver::engine(int node) {
  return cab_.empty() ? nullptr : cab_.at(static_cast<std::size_t>(node)).engine.get();
}

coll::HostCollective* CollectiveDriver::host(int node) {
  return host_.empty() ? nullptr : host_.at(static_cast<std::size_t>(node)).hc.get();
}

coll::GroupSpec CollectiveDriver::make_group_spec() const {
  coll::GroupSpec g;
  g.id = kGroupId;
  g.members.resize(static_cast<std::size_t>(net_.cab_count()));
  std::iota(g.members.begin(), g.members.end(), 0);
  g.root_rank = 0;
  g.algorithm = coll::parse_algorithm(spec_.algorithm);
  g.fanout = static_cast<int>(spec_.fanout);
  g.timeout = spec_.timeout;
  g.retransmit = spec_.retransmit;
  if (spec_.mode == "cab" && spec_.multicast && g.members.size() > 1) {
    g.mcast = net_.mcast_ref(g.members[static_cast<std::size_t>(g.root_rank)], g.members);
  }
  return g;
}

std::uint8_t CollectiveDriver::pattern_byte(std::int64_t iter, std::size_t offset) {
  return static_cast<std::uint8_t>((iter * 131 + static_cast<std::int64_t>(offset) * 7 + 3) &
                                   0xff);
}

std::uint64_t CollectiveDriver::contribution_of(int rank, std::int64_t iter) const {
  return (static_cast<std::uint64_t>(rank) + 1) * (static_cast<std::uint64_t>(iter) + 1);
}

std::uint64_t CollectiveDriver::expected_reduce(std::int64_t iter) const {
  std::uint64_t acc = contribution_of(0, iter);
  for (int r = 1; r < net_.cab_count(); ++r) {
    acc = coll::combine(rop_, acc, contribution_of(r, iter));
  }
  return acc;
}

bool CollectiveDriver::run_one(int node, std::int64_t iter, std::vector<std::uint8_t>& buf) {
  const int rank = node;  // members are 0..n-1 in node order
  const std::size_t slot = static_cast<std::size_t>(node);
  bool ok = true;
  switch (op_) {
    case Op::Barrier:
      ok = cab_.empty() ? host_[slot].nin->coll_barrier(kGroupId)
                        : cab_[slot].nin->coll_barrier(kGroupId);
      break;
    case Op::Bcast: {
      if (rank == 0) {
        for (std::size_t j = 0; j < buf.size(); ++j) buf[j] = pattern_byte(iter, j);
      } else {
        std::fill(buf.begin(), buf.end(), 0);
      }
      ok = cab_.empty() ? host_[slot].nin->coll_bcast(kGroupId, buf)
                        : cab_[slot].nin->coll_bcast(kGroupId, buf);
      if (ok && rank != 0) {
        for (std::size_t j = 0; j < buf.size(); ++j) {
          if (buf[j] != pattern_byte(iter, j)) {
            ++data_errors_[slot];
            break;
          }
        }
      }
      break;
    }
    case Op::Reduce: {
      std::uint64_t result = 0;
      std::uint64_t mine = contribution_of(rank, iter);
      ok = cab_.empty() ? host_[slot].nin->coll_reduce(kGroupId, rop_, mine, &result)
                        : cab_[slot].nin->coll_reduce(kGroupId, rop_, mine, &result);
      if (ok && result != expected_reduce(iter)) ++data_errors_[slot];
      break;
    }
  }
  return ok;
}

void CollectiveDriver::worker_loop(int node) {
  std::vector<std::uint8_t> buf(
      op_ == Op::Bcast ? static_cast<std::size_t>(spec_.payload) : 0);
  core::Cpu& cpu = cab_.empty() ? host_[static_cast<std::size_t>(node)].host->cpu()
                                : net_.runtime(node).cpu();
  for (std::int64_t it = 0; spec_.iterations == 0 || it < spec_.iterations; ++it) {
    // A failed op means the group failed (timeout already reported loudly);
    // stop instead of spinning on a dead group.
    if (!run_one(node, it, buf)) break;
    ++iters_done_[static_cast<std::size_t>(node)];
    if (spec_.interval > 0) cpu.sleep_for(spec_.interval);
  }
}

std::uint64_t CollectiveDriver::rounds_completed() const {
  std::uint64_t lo = iters_done_.empty() ? 0 : iters_done_[0];
  for (std::uint64_t v : iters_done_) lo = std::min(lo, v);
  return lo;
}

std::uint64_t CollectiveDriver::data_errors() const {
  std::uint64_t sum = 0;
  for (std::uint64_t v : data_errors_) sum += v;
  return sum;
}

void CollectiveDriver::report_into(obs::RunReport& rep) {
  std::uint64_t sent = 0, received = 0, completed = 0, failed = 0, retx = 0, stale = 0;
  obs::LatencyHistogram lat;
  for (std::size_t i = 0; i < cab_.size(); ++i) {
    coll::CollectiveEngine& e = *cab_[i].engine;
    sent += e.msgs_sent();
    received += e.msgs_received();
    completed += e.ops_completed();
    failed += e.ops_failed();
    retx += e.retransmits();
    stale += e.stale_drops();
    lat.merge(op_ == Op::Barrier  ? e.barrier_latency()
              : op_ == Op::Bcast  ? e.bcast_latency()
                                  : e.reduce_latency());
  }
  for (std::size_t i = 0; i < host_.size(); ++i) {
    coll::HostCollective& h = *host_[i].hc;
    sent += h.msgs_sent();
    received += h.msgs_received();
    completed += h.ops_completed();
    lat.merge(op_ == Op::Barrier  ? h.barrier_latency()
              : op_ == Op::Bcast  ? h.bcast_latency()
                                  : h.reduce_latency());
  }
  rep.add("coll.rounds", static_cast<double>(rounds_completed()), "count");
  rep.add("coll.ops_completed", static_cast<double>(completed), "count");
  rep.add("coll.ops_failed", static_cast<double>(failed), "count");
  rep.add("coll.msgs_sent", static_cast<double>(sent), "count");
  rep.add("coll.msgs_received", static_cast<double>(received), "count");
  rep.add("coll.retransmits", static_cast<double>(retx), "count");
  rep.add("coll.stale_drops", static_cast<double>(stale), "count");
  rep.add("coll.data_errors", static_cast<double>(data_errors()), "count");
  rep.add("coll.latency.count", static_cast<double>(lat.count()), "count");
  rep.add("coll.mean", lat.mean() / sim::kMicrosecond, "us");
  rep.add("coll.p50", lat.p50() / sim::kMicrosecond, "us");
  rep.add("coll.p90", lat.p90() / sim::kMicrosecond, "us");
  rep.add("coll.p99", lat.p99() / sim::kMicrosecond, "us");
  rep.add("coll.p999", lat.p999() / sim::kMicrosecond, "us");
  std::uint64_t mc_in = 0, mc_out = 0;
  for (int h = 0; h < net_.hub_count(); ++h) {
    mc_in += net_.hub(h).mcast_in();
    mc_out += net_.hub(h).mcast_out();
  }
  rep.add("coll.hub_mcast_in", static_cast<double>(mc_in), "frames");
  rep.add("coll.hub_mcast_out", static_cast<double>(mc_out), "frames");
}

}  // namespace nectar::scenario
