#include "proto/checksum.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nectar::proto {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<int> v) {
  std::vector<std::uint8_t> out;
  for (int b : v) out.push_back(static_cast<std::uint8_t>(b));
  return out;
}

TEST(InternetChecksumTest, Rfc1071Example) {
  // RFC 1071 worked example: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2,
  // checksum = ~0xddf2 = 0x220d.
  auto data = bytes({0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7});
  EXPECT_EQ(InternetChecksum::compute(data), 0x220D);
}

TEST(InternetChecksumTest, VerifyEmbeddedChecksum) {
  auto data = bytes({0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x11, 0x00, 0x00,
                     10, 0, 0, 1, 10, 0, 0, 2});
  std::uint16_t sum = InternetChecksum::compute(data);
  data[10] = static_cast<std::uint8_t>(sum >> 8);
  data[11] = static_cast<std::uint8_t>(sum);
  EXPECT_TRUE(InternetChecksum::verify(data));
  data[15] ^= 1;
  EXPECT_FALSE(InternetChecksum::verify(data));
}

TEST(InternetChecksumTest, OddLengthPadsWithZero) {
  auto odd = bytes({0xAB, 0xCD, 0xEF});
  auto padded = bytes({0xAB, 0xCD, 0xEF, 0x00});
  EXPECT_EQ(InternetChecksum::compute(odd), InternetChecksum::compute(padded));
}

TEST(InternetChecksumTest, SplitUpdatesMatchOneShot) {
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 101; ++i) data.push_back(static_cast<std::uint8_t>(i * 7));
  for (std::size_t split = 0; split <= data.size(); split += 13) {
    InternetChecksum c;
    c.update(std::span<const std::uint8_t>(data).first(split));
    c.update(std::span<const std::uint8_t>(data).subspan(split));
    EXPECT_EQ(c.value(), InternetChecksum::compute(data)) << "split at " << split;
  }
}

TEST(InternetChecksumTest, Compute2MatchesConcatenation) {
  auto a = bytes({1, 2, 3, 4});
  auto b = bytes({5, 6, 7, 8});
  auto ab = bytes({1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_EQ(InternetChecksum::compute2(a, b), InternetChecksum::compute(ab));
}

TEST(InternetChecksumTest, CostScalesLinearly) {
  EXPECT_EQ(checksum_cost(0), 0);
  EXPECT_GT(checksum_cost(1000), 0);
  EXPECT_EQ(checksum_cost(2000), 2 * checksum_cost(1000));
}

}  // namespace
}  // namespace nectar::proto
