#include "coll/engine.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "obs/causal.hpp"
#include "obs/profiler.hpp"
#include "sim/costs.hpp"

namespace nectar::coll {

namespace costs = sim::costs;

namespace {
const char* op_name(int kind) {
  switch (kind) {
    case 1: return "barrier";
    case 2: return "bcast";
    case 3: return "reduce";
  }
  return "none";
}
}  // namespace

CollectiveEngine::CollectiveEngine(proto::Datalink& dl)
    : dl_(dl),
      input_(dl.runtime().create_mailbox("coll-input")),
      metrics_reg_(dl.runtime().metrics()) {
  dl_.register_client(proto::PacketType::Coll, this);

  int node = dl_.node_id();
  metrics_reg_.probe(node, "coll", "msgs_sent",
                     [this] { return static_cast<std::int64_t>(msgs_sent_); });
  metrics_reg_.probe(node, "coll", "msgs_received",
                     [this] { return static_cast<std::int64_t>(msgs_received_); });
  metrics_reg_.probe(node, "coll", "ops_completed",
                     [this] { return static_cast<std::int64_t>(ops_completed_); });
  metrics_reg_.probe(node, "coll", "ops_failed",
                     [this] { return static_cast<std::int64_t>(ops_failed_); });
  metrics_reg_.probe(node, "coll", "retransmits",
                     [this] { return static_cast<std::int64_t>(retransmits_); });
  metrics_reg_.probe(node, "coll", "stale_drops",
                     [this] { return static_cast<std::int64_t>(stale_drops_); });
}

// --- rank-bitmask helpers ------------------------------------------------------

void CollectiveEngine::mask_set(std::vector<std::uint64_t>& m, int bit, int n) {
  if (bit < 0 || bit >= n) return;
  std::size_t word = static_cast<std::size_t>(bit) / 64;
  if (word < m.size()) m[word] |= 1ull << (bit % 64);
}

bool CollectiveEngine::mask_test(const std::vector<std::uint64_t>& m, int bit) {
  std::size_t word = static_cast<std::size_t>(bit) / 64;
  return bit >= 0 && word < m.size() && ((m[word] >> (bit % 64)) & 1) != 0;
}

bool CollectiveEngine::mask_has_all(const std::vector<std::uint64_t>& m,
                                    const std::vector<int>& ranks) {
  for (int r : ranks) {
    if (!mask_test(m, r)) return false;
  }
  return true;
}

// --- group management ----------------------------------------------------------

void CollectiveEngine::join_group(GroupSpec spec) {
  if (spec.members.empty()) throw std::invalid_argument("coll: group has no members");
  if (spec.fanout < 1) throw std::invalid_argument("coll: fanout must be >= 1");
  if (spec.root_rank < 0 || spec.root_rank >= spec.size()) {
    throw std::invalid_argument("coll: root_rank out of range");
  }
  int rank = spec.rank_of(node_id());
  if (rank < 0) {
    throw std::invalid_argument("coll: node " + std::to_string(node_id()) +
                                " is not a member of group " + std::to_string(spec.id));
  }
  Group g;
  g.spec = std::move(spec);
  g.my_rank = rank;
  groups_.insert_or_assign(g.spec.id, std::move(g));
}

void CollectiveEngine::reform(std::uint16_t id, std::uint16_t new_epoch) {
  Group& g = group_or_throw(id);
  if (new_epoch <= g.spec.epoch) {
    throw std::invalid_argument("coll: reform epoch must be larger than the current one");
  }
  g.spec.epoch = new_epoch;
  g.failed = false;
  g.error.clear();
  g.pending.clear();
  g.seq = 1;
  g.last_done_seq = 0;
  g.last_kind = OpKind::None;
  g.last_value = 0;
  g.op = OpWait{};
}

CollectiveEngine::Group& CollectiveEngine::group_or_throw(std::uint16_t id) {
  auto it = groups_.find(id);
  if (it == groups_.end()) {
    throw std::invalid_argument("coll: unknown group " + std::to_string(id));
  }
  return it->second;
}

CollectiveEngine::SeqState& CollectiveEngine::pending(Group& g, std::uint32_t seq) {
  auto [it, fresh] = g.pending.try_emplace(seq);
  if (fresh) {
    it->second.rank_mask.assign((g.spec.members.size() + 63) / 64, 0);
  }
  return it->second;
}

// --- blocking collective calls --------------------------------------------------

bool CollectiveEngine::barrier(std::uint16_t group) {
  Group& g = group_or_throw(group);
  core::Cpu& cpu = runtime().cpu();
  if (g.spec.size() <= 1) {
    ++ops_completed_;
    barrier_lat_.observe(0);
    return true;
  }
  core::InterruptGuard guard(cpu);
  if (g.failed) {
    last_error_ = g.error;
    ++ops_failed_;
    return false;
  }
  runtime().trace_mark("coll.barrier");
  OpWait& op = g.op;
  op = OpWait{};
  op.kind = OpKind::Barrier;
  op.started = cpu.engine().now();
  arm_timers(g);
  if (g.spec.algorithm == Algorithm::Tree) {
    progress_tree(g);
    SeqState& s = pending(g, g.seq);
    if (!op.done && s.released) complete_op(g);  // release raced ahead of our entry
  } else {
    start_dissem_round(g, 0);
    advance_dissem(g);
  }
  return finish_wait(g, barrier_lat_);
}

bool CollectiveEngine::bcast(std::uint16_t group, std::span<std::uint8_t> data) {
  Group& g = group_or_throw(group);
  core::Cpu& cpu = runtime().cpu();
  if (g.spec.size() <= 1) {
    ++ops_completed_;
    bcast_lat_.observe(0);
    return true;
  }
  bool root = g.my_rank == g.spec.root_rank;
  // The root stages the payload into CAB data memory before masking
  // interrupts: begin_put may block on the heap, and retransmits must be
  // able to re-DMA the bytes without touching the caller's buffer again.
  core::Message scratch{};
  bool have_scratch = false;
  if (root && !data.empty()) {
    scratch = input_.begin_put(static_cast<std::uint32_t>(data.size()));
    runtime().board().memory().write(scratch.data, data);
    have_scratch = true;
  }
  core::InterruptGuard guard(cpu);
  if (g.failed) {
    if (have_scratch) input_.end_get(scratch);
    last_error_ = g.error;
    ++ops_failed_;
    return false;
  }
  runtime().trace_mark("coll.bcast");
  OpWait& op = g.op;
  op = OpWait{};
  op.kind = OpKind::Bcast;
  op.user_data = data;
  op.started = cpu.engine().now();
  bcast_scratch_ = scratch;
  bcast_scratch_valid_ = have_scratch;
  arm_timers(g);
  if (root) {
    send_fanout(g, MsgKind::BcastData, 0, 0, have_scratch ? bcast_scratch_.data : 0, data.size());
  } else {
    SeqState& s = pending(g, g.seq);
    if (s.bcast_valid) deliver_buffered_bcast(g, s);
  }
  bool ok = finish_wait(g, bcast_lat_);
  if (bcast_scratch_valid_) {
    input_.end_get(bcast_scratch_);
    bcast_scratch_valid_ = false;
  }
  return ok;
}

bool CollectiveEngine::reduce(std::uint16_t group, ReduceOp rop, std::uint64_t contribution,
                              std::uint64_t* result) {
  Group& g = group_or_throw(group);
  core::Cpu& cpu = runtime().cpu();
  if (g.spec.size() <= 1) {
    ++ops_completed_;
    reduce_lat_.observe(0);
    if (result != nullptr) *result = contribution;
    return true;
  }
  core::InterruptGuard guard(cpu);
  if (g.failed) {
    last_error_ = g.error;
    ++ops_failed_;
    return false;
  }
  runtime().trace_mark("coll.reduce");
  OpWait& op = g.op;
  op = OpWait{};
  op.kind = OpKind::Reduce;
  op.rop = rop;
  op.contribution = contribution;
  op.started = cpu.engine().now();
  arm_timers(g);
  progress_tree(g);
  SeqState& s = pending(g, g.seq);
  if (!op.done && s.released) {  // result raced ahead of our entry
    op.result = s.result;
    complete_op(g);
  }
  bool ok = finish_wait(g, reduce_lat_);
  if (ok && result != nullptr) *result = op.result;
  return ok;
}

bool CollectiveEngine::finish_wait(Group& g, obs::LatencyHistogram& hist) {
  core::Cpu& cpu = runtime().cpu();
  OpWait& op = g.op;
  while (!op.done) {
    op.waiter = cpu.current_thread();
    cpu.block_unmasked();
  }
  op.waiter = nullptr;
  if (op.timeout_timer != 0) {
    cpu.cancel_timer(op.timeout_timer);
    op.timeout_timer = 0;
  }
  if (op.retransmit_timer != 0) {
    cpu.cancel_timer(op.retransmit_timer);
    op.retransmit_timer = 0;
  }
  bool ok = op.ok;
  op.kind = OpKind::None;
  if (ok) {
    ++ops_completed_;
    hist.observe(cpu.engine().now() - op.started);
    // Drop buffered state up to and including this sequence; a peer one op
    // ahead may already have seeded seq+1.
    g.pending.erase(g.pending.begin(), g.pending.upper_bound(g.seq));
    ++g.seq;
  } else {
    ++ops_failed_;
  }
  return ok;
}

void CollectiveEngine::arm_timers(Group& g) {
  core::Cpu& cpu = runtime().cpu();
  std::uint16_t gid = g.spec.id;
  g.op.timeout_timer =
      cpu.set_timer(cpu.engine().now() + g.spec.timeout, [this, gid] { timeout_fire(gid); });
  g.op.retransmit_timer =
      cpu.set_timer(cpu.engine().now() + g.spec.retransmit, [this, gid] { retransmit_tick(gid); });
}

void CollectiveEngine::complete_op(Group& g) {
  OpWait& op = g.op;
  if (op.done) return;
  op.done = true;
  op.ok = true;
  g.last_done_seq = g.seq;
  g.last_kind = op.kind;
  g.last_value = op.result;
  runtime().trace_mark("coll.release");
  if (op.waiter != nullptr) runtime().cpu().wake(op.waiter);
}

void CollectiveEngine::fail_op(Group& g, const std::string& what) {
  g.failed = true;
  g.error = what;
  last_error_ = what;
  // Loud by design: a lost member must produce an attributable error at the
  // surviving members, never a silent hang (ISSUE 8 acceptance).
  std::fprintf(stderr, "%s\n", what.c_str());
  runtime().trace_mark("coll.fail");
  OpWait& op = g.op;
  op.done = true;
  op.ok = false;
  if (op.waiter != nullptr) runtime().cpu().wake(op.waiter);
}

// --- algorithm progress ---------------------------------------------------------

void CollectiveEngine::progress_tree(Group& g) {
  OpWait& op = g.op;
  if (op.done) return;
  if (op.kind != OpKind::Barrier && op.kind != OpKind::Reduce) return;
  if (op.kind == OpKind::Barrier && g.spec.algorithm != Algorithm::Tree) return;
  SeqState& s = pending(g, g.seq);
  std::vector<int> kids = g.spec.children_of(g.my_rank);
  if (!mask_has_all(s.rank_mask, kids)) return;

  if (op.kind == OpKind::Barrier) {
    if (g.my_rank == g.spec.root_rank) {
      op.result = 0;
      send_fanout(g, MsgKind::Release, 0, 0);
      complete_op(g);
    } else if (!op.sent_up) {
      op.sent_up = true;
      send_msg(g, g.seq, MsgKind::Arrive, g.spec.parent_of(g.my_rank));
    }
    return;
  }

  // Reduce: fold the children's combined partial into our contribution. The
  // per-rank bitmask guarantees each child entered `s.partial` exactly once,
  // so recomputing the total here is duplicate-safe.
  std::uint64_t total = op.contribution;
  if (s.partial_valid) total = combine(op.rop, total, s.partial);
  if (g.my_rank == g.spec.root_rank) {
    op.result = total;
    send_fanout(g, MsgKind::ReduceResult, total, static_cast<std::uint8_t>(op.rop));
    complete_op(g);
  } else if (!op.sent_up) {
    op.sent_up = true;
    send_msg(g, g.seq, MsgKind::ReduceUp, g.spec.parent_of(g.my_rank), 0, total,
             static_cast<std::uint8_t>(op.rop));
  }
}

void CollectiveEngine::start_dissem_round(Group& g, int round) {
  g.op.round = round;
  send_msg(g, g.seq, MsgKind::DissemRound, g.spec.dissem_to(g.my_rank, round), round);
}

void CollectiveEngine::advance_dissem(Group& g) {
  OpWait& op = g.op;
  if (op.done || op.kind != OpKind::Barrier) return;
  if (g.spec.algorithm != Algorithm::Dissemination) return;
  SeqState& s = pending(g, g.seq);
  int total = g.spec.dissem_rounds();
  while (op.round < total && ((s.rounds >> op.round) & 1) != 0) {
    int next = op.round + 1;
    if (next == total) {
      op.round = next;
      op.result = 0;
      complete_op(g);
      return;
    }
    start_dissem_round(g, next);
  }
}

void CollectiveEngine::deliver_buffered_bcast(Group& g, SeqState& s) {
  OpWait& op = g.op;
  std::size_t n = std::min(op.user_data.size(), s.bcast_data.size());
  std::copy_n(s.bcast_data.begin(), n, op.user_data.begin());
  op.result = n;
  send_msg(g, g.seq, MsgKind::BcastAck, g.spec.root_rank);
  complete_op(g);
}

// --- timers ---------------------------------------------------------------------

void CollectiveEngine::retransmit_tick(std::uint16_t gid) {
  auto it = groups_.find(gid);
  if (it == groups_.end()) return;
  Group& g = it->second;
  OpWait& op = g.op;
  if (op.done || op.kind == OpKind::None || g.failed) return;

  switch (op.kind) {
    case OpKind::Barrier:
      if (g.spec.algorithm == Algorithm::Tree) {
        if (op.sent_up) {
          send_msg(g, g.seq, MsgKind::Arrive, g.spec.parent_of(g.my_rank), 0, 0, 0, true);
        }
        // Waiting on children (or, at an interior node, on the release):
        // nothing to re-send — the child/root retransmits toward us.
      } else {
        int total = g.spec.dissem_rounds();
        for (int r = 0; r <= std::min(op.round, total - 1); ++r) {
          send_msg(g, g.seq, MsgKind::DissemRound, g.spec.dissem_to(g.my_rank, r), r, 0, 0, true);
        }
        if (op.round < total) {
          // Ask the peer we are stuck on to re-send its round message: once a
          // node advances past a sequence it stops retransmitting it, so
          // recovery has to be pull, not push (see handle_stale).
          send_msg(g, g.seq, MsgKind::DissemNack, g.spec.dissem_from(g.my_rank, op.round),
                   op.round, 0, 0, true);
        }
      }
      break;
    case OpKind::Reduce:
      if (op.sent_up) {
        SeqState& s = pending(g, g.seq);
        std::uint64_t total = op.contribution;
        if (s.partial_valid) total = combine(op.rop, total, s.partial);
        send_msg(g, g.seq, MsgKind::ReduceUp, g.spec.parent_of(g.my_rank), 0, total,
                 static_cast<std::uint8_t>(op.rop), true);
      }
      break;
    case OpKind::Bcast:
      if (g.my_rank == g.spec.root_rank) {
        ++retransmits_;
        send_fanout(g, MsgKind::BcastData, 0, 0, bcast_scratch_valid_ ? bcast_scratch_.data : 0,
                    op.user_data.size());
      }
      break;
    case OpKind::None:
      break;
  }

  core::Cpu& cpu = runtime().cpu();
  op.retransmit_timer =
      cpu.set_timer(cpu.engine().now() + g.spec.retransmit, [this, gid] { retransmit_tick(gid); });
}

void CollectiveEngine::timeout_fire(std::uint16_t gid) {
  auto it = groups_.find(gid);
  if (it == groups_.end()) return;
  Group& g = it->second;
  OpWait& op = g.op;
  if (op.done || op.kind == OpKind::None) return;
  fail_op(g, "coll: group " + std::to_string(g.spec.id) + " epoch " +
                 std::to_string(g.spec.epoch) + " " + op_name(static_cast<int>(op.kind)) +
                 " seq " + std::to_string(g.seq) + " timed out on node " +
                 std::to_string(node_id()) + " (rank " + std::to_string(g.my_rank) +
                 ") after " + std::to_string(g.spec.timeout) + " ns; still waiting for: " +
                 missing_ranks(g));
}

std::string CollectiveEngine::missing_ranks(const Group& g) const {
  auto it = g.pending.find(g.seq);
  const SeqState* s = it == g.pending.end() ? nullptr : &it->second;
  std::string out;
  auto add = [&out](const std::string& part) {
    if (!out.empty()) out += ", ";
    out += part;
  };
  const OpWait& op = g.op;
  auto missing_child = [&](int c) { return s == nullptr || !mask_test(s->rank_mask, c); };
  switch (op.kind) {
    case OpKind::Barrier:
      if (g.spec.algorithm == Algorithm::Dissemination) {
        add("round " + std::to_string(op.round) + " from rank " +
            std::to_string(g.spec.dissem_from(g.my_rank, op.round)));
      } else {
        for (int c : g.spec.children_of(g.my_rank)) {
          if (missing_child(c)) add("arrive from rank " + std::to_string(c));
        }
        if (out.empty()) add("release from root rank " + std::to_string(g.spec.root_rank));
      }
      break;
    case OpKind::Reduce:
      for (int c : g.spec.children_of(g.my_rank)) {
        if (missing_child(c)) add("partial from rank " + std::to_string(c));
      }
      if (out.empty()) add("result from root rank " + std::to_string(g.spec.root_rank));
      break;
    case OpKind::Bcast:
      if (g.my_rank == g.spec.root_rank) {
        for (int r = 0; r < g.spec.size(); ++r) {
          if (r != g.spec.root_rank && missing_child(r)) {
            add("ack from rank " + std::to_string(r));
          }
        }
      } else {
        add("data from root rank " + std::to_string(g.spec.root_rank));
      }
      break;
    case OpKind::None:
      break;
  }
  return out.empty() ? "(nothing outstanding)" : out;
}

// --- message I/O ----------------------------------------------------------------

void CollectiveEngine::send_msg(Group& g, std::uint32_t seq, MsgKind kind, int dst_rank,
                                int round, std::uint64_t value, std::uint8_t rop,
                                bool is_retransmit) {
  if (dst_rank < 0 || dst_rank >= g.spec.size() || dst_rank == g.my_rank) return;
  obs::CostScope scope("coll/send");
  runtime().cpu().charge(costs::kNectarProtoSend);

  CollHeader h;
  h.group = g.spec.id;
  h.epoch = g.spec.epoch;
  h.kind = kind;
  h.op = rop;
  h.src_rank = static_cast<std::uint16_t>(g.my_rank);
  h.seq = seq;
  h.round = static_cast<std::uint16_t>(round);
  h.value = value;
  proto::HeaderBufLease hdr = proto::HeaderBufLease::acquire();
  h.serialize(hdr->push_front(CollHeader::kSize));

  ++msgs_sent_;
  if (is_retransmit) ++retransmits_;

  int dst_node = g.spec.members[static_cast<std::size_t>(dst_rank)];
  obs::TraceContext tctx{};
  if (auto* ct = obs::CausalTracer::active()) {
    tctx = ct->maybe_start(std::string("coll.") + kind_name(kind), node_id(), dst_node, seq);
    if (tctx.valid()) ct->stage(tctx, "tx.coll", "node" + std::to_string(node_id()));
  }
  dl_.send(proto::PacketType::Coll, dst_node, std::move(hdr), 0, 0, {}, tctx);
}

void CollectiveEngine::send_fanout(Group& g, MsgKind kind, std::uint64_t value, std::uint8_t rop,
                                   hw::CabAddr payload, std::size_t len) {
  obs::CostScope scope("coll/send");
  runtime().cpu().charge(costs::kNectarProtoSend);

  CollHeader h;
  h.group = g.spec.id;
  h.epoch = g.spec.epoch;
  h.kind = kind;
  h.op = rop;
  h.src_rank = static_cast<std::uint16_t>(g.my_rank);
  h.seq = g.seq;
  h.length = static_cast<std::uint16_t>(len);
  h.value = value;

  if (g.spec.mcast.valid()) {
    // One serialization; the HUBs replicate along the distribution tree.
    proto::HeaderBufLease hdr = proto::HeaderBufLease::acquire();
    h.serialize(hdr->push_front(CollHeader::kSize));
    ++msgs_sent_;
    obs::TraceContext tctx{};
    if (auto* ct = obs::CausalTracer::active()) {
      tctx = ct->maybe_start(std::string("coll.") + kind_name(kind), node_id(), -1, g.seq);
      if (tctx.valid()) ct->stage(tctx, "tx.coll", "node" + std::to_string(node_id()));
    }
    dl_.send_mcast(proto::PacketType::Coll, g.spec.mcast, std::move(hdr), payload, len, {}, tctx);
    return;
  }

  // No multicast tree installed: unicast sweep (the correctness fallback the
  // host baseline also takes — fabric offload is what the bench compares).
  for (int r = 0; r < g.spec.size(); ++r) {
    if (r == g.my_rank) continue;
    proto::HeaderBufLease hdr = proto::HeaderBufLease::acquire();
    h.serialize(hdr->push_front(CollHeader::kSize));
    ++msgs_sent_;
    int dst_node = g.spec.members[static_cast<std::size_t>(r)];
    obs::TraceContext tctx{};
    if (auto* ct = obs::CausalTracer::active()) {
      tctx = ct->maybe_start(std::string("coll.") + kind_name(kind), node_id(), dst_node, g.seq);
      if (tctx.valid()) ct->stage(tctx, "tx.coll", "node" + std::to_string(node_id()));
    }
    dl_.send(proto::PacketType::Coll, dst_node, std::move(hdr), payload, len, {}, tctx);
  }
}

void CollectiveEngine::end_of_data(core::Message m, std::uint8_t src_node) {
  (void)src_node;
  core::Cpu& cpu = runtime().cpu();
  obs::CostScope scope("coll/recv");
  cpu.charge(costs::kNectarProtoRecv);
  ++msgs_received_;

  obs::CausalTracer* ct = obs::CausalTracer::active();
  obs::TraceContext rctx = ct != nullptr ? ct->rx_context() : obs::TraceContext{};
  if (ct != nullptr && rctx.valid()) {
    ct->stage(rctx, "rx.coll", "node" + std::to_string(node_id()));
  }

  if (m.len >= CollHeader::kSize) {
    CollHeader h =
        CollHeader::parse(runtime().board().memory().view(m.data, CollHeader::kSize));
    handle_msg(h, m);
  }
  // The engine is the terminus of a collective message: all protocol state
  // lives in the per-seq records, so the buffer is always released here.
  input_.end_get(m);
  if (ct != nullptr && rctx.valid()) ct->finish(rctx);
}

void CollectiveEngine::handle_msg(const CollHeader& h, const core::Message& m) {
  auto git = groups_.find(h.group);
  if (git == groups_.end()) {
    ++stale_drops_;
    return;
  }
  Group& g = git->second;
  if (h.epoch != g.spec.epoch) {
    ++stale_drops_;  // crashed epoch's traffic can never corrupt its successor
    return;
  }
  if (g.failed) return;
  if (h.src_rank >= static_cast<std::uint16_t>(g.spec.size())) {
    ++stale_drops_;
    return;
  }
  if (h.seq < g.seq) {
    handle_stale(g, h);
    return;
  }

  SeqState& s = pending(g, h.seq);
  bool current = h.seq == g.seq;
  OpWait& op = g.op;
  int n = g.spec.size();

  switch (h.kind) {
    case MsgKind::Arrive:
      mask_set(s.rank_mask, h.src_rank, n);
      if (current) progress_tree(g);
      break;

    case MsgKind::Release:
      s.released = true;
      if (current && op.kind == OpKind::Barrier && !op.done) {
        op.result = 0;
        complete_op(g);
      }
      break;

    case MsgKind::DissemRound:
      if (h.round < 64) s.rounds |= 1ull << h.round;
      if (current) advance_dissem(g);
      break;

    case MsgKind::DissemNack:
      // A stuck peer asks us to re-send our round-`h.round` message of
      // `h.seq`. We can answer once we have entered that round ourselves.
      if (current && op.kind == OpKind::Barrier &&
          g.spec.algorithm == Algorithm::Dissemination &&
          (op.done || op.round >= static_cast<int>(h.round))) {
        send_msg(g, h.seq, MsgKind::DissemRound, h.src_rank, h.round, 0, 0, true);
      }
      break;

    case MsgKind::BcastData: {
      std::size_t avail = m.len - CollHeader::kSize;
      std::size_t len = std::min<std::size_t>(h.length, avail);
      std::span<const std::uint8_t> bytes =
          runtime().board().memory().view(m.data + CollHeader::kSize, len);
      if (current && op.kind == OpKind::Bcast && !op.done &&
          g.my_rank != g.spec.root_rank) {
        std::size_t ncopy = std::min(len, op.user_data.size());
        std::copy_n(bytes.begin(), ncopy, op.user_data.begin());
        op.result = ncopy;
        send_msg(g, g.seq, MsgKind::BcastAck, g.spec.root_rank);
        complete_op(g);
      } else if (!s.bcast_valid) {
        // We have not entered the bcast yet: buffer the payload so entry can
        // complete locally (the root may stop retransmitting once acked).
        s.bcast_data.assign(bytes.begin(), bytes.end());
        s.bcast_valid = true;
      }
      break;
    }

    case MsgKind::BcastAck:
      mask_set(s.rank_mask, h.src_rank, n);
      if (current && op.kind == OpKind::Bcast && !op.done &&
          g.my_rank == g.spec.root_rank) {
        bool all = true;
        for (int r = 0; r < n && all; ++r) {
          if (r != g.spec.root_rank && !mask_test(s.rank_mask, r)) all = false;
        }
        if (all) {
          op.result = op.user_data.size();
          complete_op(g);
        }
      }
      break;

    case MsgKind::ReduceUp:
      // Combine each child exactly once: the rank bit guards the fold, so a
      // retransmitted partial can never be double-counted.
      if (!mask_test(s.rank_mask, h.src_rank)) {
        mask_set(s.rank_mask, h.src_rank, n);
        if (!s.partial_valid) {
          s.partial = h.value;
          s.partial_valid = true;
          s.rop = h.op;
        } else {
          s.partial = combine(static_cast<ReduceOp>(h.op), s.partial, h.value);
        }
      }
      if (current) progress_tree(g);
      break;

    case MsgKind::ReduceResult:
      s.released = true;
      s.result = h.value;
      if (current && op.kind == OpKind::Reduce && !op.done) {
        op.result = h.value;
        complete_op(g);
      }
      break;
  }
}

void CollectiveEngine::handle_stale(Group& g, const CollHeader& h) {
  ++stale_drops_;
  // A straggler is still working on a sequence we completed. Our op state is
  // pruned, but the completed-op memory is enough to answer directly — this
  // is what bounds the skew: nobody can be more than one collective ahead,
  // because op N+1 cannot start anywhere until every rank finished op N.
  switch (h.kind) {
    case MsgKind::Arrive:
      if (g.last_done_seq == h.seq && g.last_kind == OpKind::Barrier) {
        send_msg(g, h.seq, MsgKind::Release, h.src_rank, 0, 0, 0, true);
      }
      break;
    case MsgKind::ReduceUp:
      if (g.last_done_seq == h.seq && g.last_kind == OpKind::Reduce) {
        send_msg(g, h.seq, MsgKind::ReduceResult, h.src_rank, 0, g.last_value, h.op, true);
      }
      break;
    case MsgKind::DissemNack:
      // We finished h.seq, so we certainly sent every round of it.
      send_msg(g, h.seq, MsgKind::DissemRound, h.src_rank, h.round, 0, 0, true);
      break;
    case MsgKind::BcastData:
      // Duplicate data for a bcast we already acked: the root missed the ack.
      if (g.last_done_seq == h.seq && g.last_kind == OpKind::Bcast) {
        send_msg(g, h.seq, MsgKind::BcastAck, h.src_rank, 0, 0, 0, true);
      }
      break;
    case MsgKind::Release:
    case MsgKind::ReduceResult:
    case MsgKind::DissemRound:
    case MsgKind::BcastAck:
      break;  // harmless duplicates of an op we already finished
  }
}

}  // namespace nectar::coll
