#include "host/driver.hpp"

#include <stdexcept>

namespace nectar::host {

namespace costs = sim::costs;

CabDriver::CabDriver(Host& host, core::CabRuntime& cab)
    : host_(host), cab_(cab), vme_(*[&]() {
        hw::VmeBus* bus = cab.board().vme();
        if (bus == nullptr) {
          throw std::logic_error("CabDriver: this CAB has no VME bus (create it with with_vme)");
        }
        return bus;
      }()) {
  // Install the driver's interrupt entry: the CAB raises it after posting to
  // the host signal queue (§3.2).
  cab_.signals().set_host_interrupt([this] {
    host_.cpu().post_interrupt([this] { on_host_interrupt(); });
  });
}

// --- VME access ------------------------------------------------------------------

std::uint32_t CabDriver::read32(hw::CabAddr a) {
  host_.cpu().charge_until(vme_.programmed_access(1));
  return cab_.board().memory().read32(a);
}

void CabDriver::write32(hw::CabAddr a, std::uint32_t v) {
  host_.cpu().charge_until(vme_.programmed_access(1));
  cab_.board().memory().write32(a, v);
}

std::uint8_t CabDriver::read8(hw::CabAddr a) {
  host_.cpu().charge_until(vme_.programmed_access(1));
  return cab_.board().memory().read8(a);
}

void CabDriver::read_block(hw::CabAddr a, std::span<std::uint8_t> out) {
  host_.cpu().charge_until(vme_.programmed_bytes(out.size()));
  cab_.board().memory().read(a, out);
}

void CabDriver::write_block(hw::CabAddr a, std::span<const std::uint8_t> in) {
  host_.cpu().charge_until(vme_.programmed_bytes(in.size()));
  cab_.board().memory().write(a, in);
}

void CabDriver::dma_to_cab(std::span<const std::uint8_t> host_src, hw::CabAddr dst) {
  core::Cpu& cpu = host_.cpu();
  cpu.charge(costs::kHostSyscall);  // driver entry: set up the DMA
  core::Thread* self = cpu.current_thread();
  bool done = false;
  cab_.board().dma().start_vme_to_cab(host_src, dst, [&cpu, self, &done] {
    done = true;
    cpu.wake(self);
  });
  while (!done) cpu.block();
}

void CabDriver::dma_from_cab(hw::CabAddr src, std::span<std::uint8_t> host_dst) {
  core::Cpu& cpu = host_.cpu();
  cpu.charge(costs::kHostSyscall);
  core::Thread* self = cpu.current_thread();
  bool done = false;
  cab_.board().dma().start_cab_to_vme(src, host_dst, [&cpu, self, &done] {
    done = true;
    cpu.wake(self);
  });
  while (!done) cpu.block();
}

void CabDriver::copy_to_cab(std::span<const std::uint8_t> host_src, hw::CabAddr dst) {
  if (host_src.size() < kDmaThreshold) {
    write_block(dst, host_src);
  } else {
    dma_to_cab(host_src, dst);
  }
}

void CabDriver::copy_from_cab(hw::CabAddr src, std::span<std::uint8_t> host_dst) {
  if (host_dst.size() < kDmaThreshold) {
    read_block(src, host_dst);
  } else {
    dma_from_cab(src, host_dst);
  }
}

// --- host conditions ------------------------------------------------------------------

std::uint32_t CabDriver::poll(HostCondId cond) {
  return read32(cab_.signals().poll_addr(cond));
}

std::uint32_t CabDriver::wait_poll(HostCondId cond, std::uint32_t last_seen) {
  core::Cpu& cpu = host_.cpu();
  for (;;) {
    std::uint32_t v = poll(cond);
    if (v != last_seen) return v;
    cpu.charge(costs::kHostPollLoop);
  }
}

std::uint32_t CabDriver::wait_blocking(HostCondId cond, std::uint32_t last_seen) {
  core::Cpu& cpu = host_.cpu();
  cpu.charge(costs::kHostSyscall);  // enter the driver
  for (;;) {
    std::uint32_t v = poll(cond);
    if (v != last_seen) return v;
    core::InterruptGuard g(cpu);  // atomic check-and-sleep vs our own irq
    sleepers_[cond].push_back(cpu.current_thread());
    cpu.block_unmasked();
  }
}

void CabDriver::signal(HostCondId cond) {
  host_.cpu().charge_until(vme_.programmed_access(2));  // read-modify-write
  cab_.signals().signal_from_host(cond);
}

// --- CAB signal queue ----------------------------------------------------------------------

void CabDriver::post_to_cab(core::SignalElement e) {
  core::Cpu& cpu = host_.cpu();
  cpu.charge(costs::kSignalQueuePost);
  cpu.charge_until(vme_.programmed_access(3));  // queue element: three words
  cab_.signals().post_to_cab(e);
  cpu.charge_until(vme_.programmed_access(1));  // doorbell register
  cab_.board().ring_doorbell();
}

std::uint32_t CabDriver::call_cab(std::uint16_t opcode, std::uint32_t param, std::uint32_t aux) {
  core::Cpu& cpu = host_.cpu();
  // §3.2/§3.4: the sync provides the synchronization and the return value.
  core::SyncPool::SyncId sync = cab_.host_syncs().alloc();
  core::SignalElement e;
  e.opcode = opcode;
  e.param = param;
  e.aux = (aux << 16) | (sync & 0xFFFF);
  if (aux > 0xFFFF || sync > 0xFFFF) {
    // Large values travel through a parameter block in CAB memory instead;
    // the fixed-size queue element carries only small immediates.
    throw std::logic_error("CabDriver::call_cab: parameter does not fit the queue element");
  }
  post_to_cab(e);
  // Poll the sync over the bus until the CAB writes the result.
  std::uint32_t result = 0;
  for (;;) {
    cpu.charge_until(vme_.programmed_access(1));
    if (cab_.host_syncs().read_try(sync, &result)) return result;
    cpu.charge(costs::kHostPollLoop);
  }
}

void CabDriver::register_host_opcode(std::uint16_t opcode,
                                     std::function<void(core::SignalElement)> handler) {
  host_opcodes_[opcode] = std::move(handler);
}

// --- interrupt handler --------------------------------------------------------------------------

void CabDriver::on_host_interrupt() {
  ++host_interrupts_;
  core::Cpu& cpu = host_.cpu();
  cpu.charge(costs::kHostInterrupt);
  while (auto e = cab_.signals().pop_host_signal()) {
    if (e->opcode == core::kOpHostCondSignal) {
      auto it = sleepers_.find(e->param);
      if (it == sleepers_.end()) continue;
      for (core::Thread* t : it->second) cpu.wake(t);
      it->second.clear();
      continue;
    }
    // Host I/O / debugging facilities (§3.2).
    auto h = host_opcodes_.find(e->opcode);
    if (h != host_opcodes_.end()) h->second(*e);
  }
}

}  // namespace nectar::host
