#pragma once

// Shared helpers for the paper-reproduction benchmark binaries.
//
// These harnesses measure *simulated* time on the deterministic clock, so a
// run is reproducible bit for bit; wall-clock benchmarking frameworks do not
// apply. Each binary prints the rows/series of one table or figure from
// Cooper et al., SIGCOMM 1990, alongside the paper's reported values.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "host/node.hpp"
#include "net/system.hpp"
#include "obs/profiler.hpp"
#include "obs/report.hpp"
#include "obs/tracer.hpp"

namespace nectar::bench {

/// Flags every bench binary understands:
///   --json <path>     write a machine-readable run report (obs::RunReport)
///   --trace <path>    export a Chrome trace-event timeline of (part of) the run
///   --profile <path>  enable the cycle-attribution profiler and write its
///                     folded-stack output (flamegraph.pl / speedscope input).
///                     Profiling charges no simulated time, so --profile does
///                     not change any reported numbers.
struct BenchOptions {
  std::string json_path;
  std::string trace_path;
  std::string profile_path;
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions o;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      o.json_path = argv[++i];
    } else if (a == "--trace" && i + 1 < argc) {
      o.trace_path = argv[++i];
    } else if (a == "--profile" && i + 1 < argc) {
      o.profile_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json <path>] [--trace <path>] [--profile <path>]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return o;
}

/// Enable profiling if --profile was given. Call right after building the
/// system, before any traffic runs.
inline void start_profile(const BenchOptions& o, obs::Profiler& profiler) {
  if (o.profile_path.empty()) return;
  profiler.set_enabled(true);
}

/// Write the report if --json was given; exits non-zero on I/O failure so CI
/// catches a silently missing report.
inline void finish_report(const BenchOptions& o, const obs::RunReport& report) {
  if (o.json_path.empty()) return;
  if (!report.write(o.json_path)) {
    std::fprintf(stderr, "error: cannot write report to %s\n", o.json_path.c_str());
    std::exit(1);
  }
  std::printf("\nwrote %s\n", o.json_path.c_str());
}

/// Write the folded-stack profile if --profile was given (no-op on an empty
/// path).
inline void finish_profile(const BenchOptions& o, const obs::Profiler& profiler) {
  if (o.profile_path.empty()) return;
  if (!profiler.write_folded(o.profile_path)) {
    std::fprintf(stderr, "error: cannot write profile to %s\n", o.profile_path.c_str());
    std::exit(1);
  }
  std::printf("wrote %s (%llu samples)\n", o.profile_path.c_str(),
              static_cast<unsigned long long>(profiler.samples()));
}

/// Write the Chrome trace if --trace was given (no-op on an empty path).
inline void finish_trace(const std::string& path, const obs::Tracer& tracer) {
  if (path.empty()) return;
  if (!tracer.write_chrome(path)) {
    std::fprintf(stderr, "error: cannot write trace to %s\n", path.c_str());
    std::exit(1);
  }
  std::printf("wrote %s (%zu events)\n", path.c_str(), tracer.events().size());
}

inline std::vector<std::uint8_t> pattern(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(i * 131 + 7);
  return v;
}

inline double median_usec(std::vector<sim::SimTime> samples) {
  std::sort(samples.begin(), samples.end());
  return sim::to_usec(samples[samples.size() / 2]);
}

inline double mbit_per_sec(std::uint64_t bytes, sim::SimTime elapsed) {
  return static_cast<double>(bytes) * 8.0 / (static_cast<double>(elapsed) / sim::kSecond) / 1e6;
}

inline core::Message stage_message(core::Mailbox& mb, core::CabRuntime& rt,
                                   std::span<const std::uint8_t> data) {
  core::Message m = mb.begin_put(static_cast<std::uint32_t>(data.size()));
  rt.board().memory().write(m.data, data);
  return m;
}

inline void print_header(const char* title) {
  std::printf("\n=== %s ===\n", title);
  std::printf("(simulated Nectar system; see DESIGN.md for the substitution model)\n\n");
}

}  // namespace nectar::bench
