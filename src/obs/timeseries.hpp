#pragma once

// Continuous telemetry: sim-time sampling of the metrics registry.
//
// An obs::Sampler snapshots every MetricsRegistry counter/gauge/probe on a
// fixed sim-clock cadence and keeps the history delta-encoded in per-series
// ring buffers, so a long soak costs O(series * window) host memory no
// matter how long it runs. The artifact it writes ("nectar-timeseries") is
// byte-deterministic for a fixed (seed, cadence, shard count): series are
// key-sorted, values are integers, and host-side series (the parallel
// engine's work_ns / barrier_wait_ns wall-clock probes, the thread-local
// byte-pool caches) are excluded by default.
//
// The sampler is pull-based: it never schedules events on the engine, so a
// telemetry-on single-shard run executes exactly the same event stream as a
// telemetry-off run. The caller (scenario::Scenario, bench harnesses) steps
// the clock `run_until(tick); sampler.sample(tick)` — between steps no
// worker thread is running, so reading the registry is race-free even under
// [parallel] shards > 1.
//
// Fault windows and failover instants are overlaid as *marks* so plots line
// up with injected events without joining a second artifact.

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace nectar::obs {

class Sampler {
 public:
  struct Options {
    /// Nominal sampling cadence; recorded in the artifact. The sampler does
    /// not enforce it — ticks are whatever the caller passes to sample().
    sim::SimTime interval = sim::msec(10);
    /// Ring capacity: oldest ticks are folded away past this many samples.
    std::size_t max_samples = 4096;
    /// Series whose "component.name" contains any of these substrings are
    /// skipped. Defaults drop the host-side probes that would make the
    /// artifact nondeterministic: the parallel engine's wall-clock timers,
    /// and the thread-local byte-pool caches whose counters accumulate
    /// across Networks in one process.
    std::vector<std::string> exclude{"work_ns", "barrier_wait_ns", "framepool", "hdrpool"};
    /// When non-empty, ONLY series whose "component.name" contains one of
    /// these substrings are kept (exclude still applies on top). Lets a big
    /// topology record a focused artifact — e.g. {"sim.parallel"} for the
    /// per-window shard-imbalance series — instead of every per-node metric.
    std::vector<std::string> include;
  };

  /// One annotated window (end >= 0) or instant (end < 0) on the timeline.
  struct Mark {
    sim::SimTime t = 0;
    sim::SimTime end = -1;
    std::string kind;   // "fault", "failover", "revert", ...
    std::string label;  // element / event description
  };

  Sampler(MetricsRegistry& registry, Options options);

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Record one sample tick at simulated time `t` (must be >= the previous
  /// tick). Takes a registry snapshot; each scalar metric appends one delta
  /// to its series, each histogram appends to its ".count" / ".sum"
  /// sub-series. A series first seen mid-run starts at this tick; a series
  /// that vanished for a stretch (probe unregistered) is zero-padded so
  /// every retained series stays tick-aligned.
  void sample(sim::SimTime t);

  /// Annotate the timeline. `end` < 0 marks an instant, otherwise a window.
  void mark(sim::SimTime t, std::string kind, std::string label, sim::SimTime end = -1);

  std::size_t samples() const { return total_samples_; }
  std::size_t retained() const { return ticks_.size(); }
  /// Ticks folded out of the ring (history beyond Options::max_samples).
  std::size_t dropped() const { return dropped_; }
  std::size_t series_count() const { return series_.size(); }
  const std::vector<Mark>& marks() const { return marks_; }

  /// The "nectar-timeseries" artifact document (see docs/OBSERVABILITY.md).
  json::Value artifact(const std::string& name) const;
  /// Write artifact(name) to `path` (pretty-printed); false on I/O failure.
  bool write(const std::string& path, const std::string& name) const;

 private:
  /// A scalar sub-stream of one metric: `field` is "" for counters/gauges/
  /// probes, "count"/"sum" for a histogram's two streams.
  struct SeriesKey {
    MetricKey key;
    std::string field;
    auto operator<=>(const SeriesKey&) const = default;
  };
  struct Series {
    SnapshotEntry::Kind kind = SnapshotEntry::Kind::Counter;
    std::size_t start = 0;  ///< global tick index of `first`
    std::int64_t first = 0;
    std::int64_t last = 0;  ///< most recent value (delta base)
    std::deque<std::int64_t> deltas;
    std::size_t last_tick = 0;  ///< global tick index of the latest value
  };

  bool excluded(const MetricKey& key) const;
  void record(const SeriesKey& key, SnapshotEntry::Kind kind, std::int64_t value,
              std::size_t tick);
  void evict_oldest();

  MetricsRegistry& registry_;
  Options options_;
  std::deque<sim::SimTime> ticks_;
  std::size_t total_samples_ = 0;
  std::size_t dropped_ = 0;
  std::map<SeriesKey, Series> series_;  // sorted => deterministic artifact
  std::vector<Mark> marks_;
};

}  // namespace nectar::obs
