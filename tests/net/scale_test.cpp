// Deployment-scale tests: the paper's production system was "2 HUBs and 26
// hosts in full-time use" (§6). Build exactly that topology with full
// protocol stacks and drive traffic through it, including the shared trunk.

#include <gtest/gtest.h>

#include <memory>

#include "net/system.hpp"

namespace nectar::net {
namespace {

struct Deployment {
  Network net;
  std::vector<std::unique_ptr<NodeStack>> stacks;
  static constexpr int kPerHub = 13;
  static constexpr int kNodes = 2 * kPerHub;

  Deployment() {
    int h1 = net.add_hub();
    int h2 = net.add_hub();
    net.link_hubs(h1, 15, h2, 15);
    for (int i = 0; i < kPerHub; ++i) net.add_cab(h1, i);
    for (int i = 0; i < kPerHub; ++i) net.add_cab(h2, i);
    net.install_routes();
    for (int i = 0; i < kNodes; ++i) {
      stacks.push_back(std::make_unique<NodeStack>(net, i));
    }
  }
};

TEST(Scale, TwentySixNodeAllMirrorsExchange) {
  // Every node i exchanges a reliable message with its cross-hub mirror
  // (i + 13): all 13 pairs share the single trunk in both directions.
  Deployment d;
  int delivered = 0;
  std::vector<core::Mailbox*> inboxes;
  for (int i = 0; i < Deployment::kNodes; ++i) {
    inboxes.push_back(&d.net.runtime(i).create_mailbox("in"));
  }
  for (int i = 0; i < Deployment::kNodes; ++i) {
    int peer = (i + Deployment::kPerHub) % Deployment::kNodes;
    d.net.runtime(i).fork_system("tx", [&d, i, peer, &inboxes] {
      core::Mailbox& s = d.net.runtime(i).create_mailbox("s");
      core::Message m = s.begin_put(512);
      d.net.runtime(i).board().memory().fill(m.data, 512, static_cast<std::uint8_t>(i));
      d.stacks[static_cast<std::size_t>(i)]->rmp.send(
          inboxes[static_cast<std::size_t>(peer)]->address(), m);
    });
    d.net.runtime(i).fork_system("rx", [&d, i, &inboxes, &delivered] {
      core::Mailbox* in = inboxes[static_cast<std::size_t>(i)];
      core::Message m = in->begin_get();
      // Sender's fill byte identifies the mirror.
      int expect = (i + Deployment::kPerHub) % Deployment::kNodes;
      EXPECT_EQ(d.net.runtime(i).board().memory().read8(m.data),
                static_cast<std::uint8_t>(expect));
      in->end_get(m);
      ++delivered;
    });
  }
  d.net.run_until(sim::sec(5));
  EXPECT_EQ(delivered, Deployment::kNodes);
}

TEST(Scale, TrunkIsTheCrossHubBottleneck) {
  // Aggregate cross-hub throughput of many simultaneous streams cannot
  // exceed one trunk fiber (~100 Mbit/s each way), while the same number of
  // same-hub streams runs at full crossbar parallelism.
  Deployment d;
  static constexpr int kStreams = 4;
  static constexpr int kMsgs = 40;
  static constexpr std::size_t kSize = 8192;

  auto run_streams = [&](bool cross_hub) -> sim::SimTime {
    Deployment fresh;
    int done = 0;
    sim::SimTime finish = 0;
    for (int s = 0; s < kStreams; ++s) {
      int src = s;                                        // hub 1
      int dst = cross_hub ? Deployment::kPerHub + s       // hub 2 (trunk)
                          : s + kStreams;                 // hub 1 (crossbar)
      core::Mailbox& sink = fresh.net.runtime(dst).create_mailbox("sink");
      fresh.net.runtime(dst).fork_system("rx", [&fresh, &sink, &done, &finish] {
        for (int i = 0; i < kMsgs; ++i) {
          core::Message m = sink.begin_get();
          sink.end_get(m);
        }
        if (++done == kStreams) finish = fresh.net.engine().now();
      });
      fresh.net.runtime(src).fork_system("tx", [&fresh, src, dst, &sink] {
        core::Mailbox& s2 = fresh.net.runtime(src).create_mailbox("s");
        for (int i = 0; i < kMsgs; ++i) {
          fresh.stacks[static_cast<std::size_t>(src)]->rmp.wait_queue_below(dst, 8);
          core::Message m = s2.begin_put(kSize);
          fresh.stacks[static_cast<std::size_t>(src)]->rmp.send(sink.address(), m);
        }
      });
    }
    fresh.net.run_until(sim::sec(30));
    return finish;
  };

  sim::SimTime same_hub = run_streams(false);
  sim::SimTime cross_hub = run_streams(true);
  ASSERT_GT(same_hub, 0);
  ASSERT_GT(cross_hub, 0);
  // Four 8 KB streams over one shared trunk serialize; through the
  // non-blocking crossbar they run (almost) in parallel.
  EXPECT_GT(static_cast<double>(cross_hub) / static_cast<double>(same_hub), 2.0);
}

TEST(Scale, CrossHubLatencyAddsOneSetupAndHop) {
  Deployment d;
  sim::SimTime same = -1, cross = -1;
  auto ping = [&d](int src, int dst, sim::SimTime* out) {
    core::Mailbox& svc = d.net.runtime(dst).create_mailbox("echo");
    core::Mailbox& reply = d.net.runtime(src).create_mailbox("reply");
    d.net.runtime(dst).fork_system("echo", [&d, dst, &svc] {
      core::Message m = svc.begin_get();
      auto info = d.stacks[static_cast<std::size_t>(dst)]->datagram.last_sender(svc);
      d.stacks[static_cast<std::size_t>(dst)]->datagram.send({info.src_node, info.src_mailbox},
                                                             m);
    });
    d.net.runtime(src).fork_system("client", [&d, src, &svc, &reply, out] {
      core::Mailbox& s = d.net.runtime(src).create_mailbox("s");
      core::Message m = s.begin_put(64);
      sim::SimTime t0 = d.net.engine().now();
      d.stacks[static_cast<std::size_t>(src)]->datagram.send(svc.address(), m, true,
                                                             reply.address().index);
      core::Message r = reply.begin_get();
      *out = d.net.engine().now() - t0;
      reply.end_get(r);
    });
  };
  ping(0, 1, &same);        // both on hub 1
  ping(2, 15, &cross);      // hub 1 -> hub 2
  d.net.run_until(sim::sec(2));
  ASSERT_GT(same, 0);
  ASSERT_GT(cross, 0);
  EXPECT_GT(cross, same);                        // extra hop costs something
  EXPECT_LT(cross - same, sim::usec(20));        // ...but only ~2x(setup+prop)
}

}  // namespace
}  // namespace nectar::net
