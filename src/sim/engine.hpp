#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/action.hpp"
#include "sim/time.hpp"

namespace nectar::obs {
class Registration;
}

namespace nectar::sim {

class ParallelEngine;

/// Deterministic discrete-event engine.
///
/// Single-threaded: events fire in (time, insertion-order) order, so every
/// run of a given scenario is bit-for-bit reproducible. All hardware models
/// and the CAB/host CPU schedulers are driven from this queue. Under a
/// ParallelEngine each shard owns one Engine; an Engine is then confined to
/// its shard's worker thread and talks to other shards only through
/// send_cross().
///
/// Events live in a slab of pooled slots (free-list recycled) holding their
/// callables inline; an EventId is a generation-checked handle into the slab,
/// so cancel() is O(1) and stale handles (fired, cancelled, or recycled
/// events) are rejected without any map lookup. The heap only orders
/// lightweight (time, seq, handle) entries.
class Engine {
 public:
  using EventId = std::uint64_t;
  using Action = InplaceAction;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must be >= now()).
  EventId schedule_at(SimTime t, Action fn);

  /// Schedule `fn` `delay` nanoseconds from now.
  EventId schedule_in(SimTime delay, Action fn) { return schedule_at(now_ + delay, std::move(fn)); }

  /// Cancel a pending event. Returns false if it already fired or was
  /// cancelled before (stale handles are detected by generation).
  bool cancel(EventId id);

  /// Process a single event. Returns false if the queue is empty.
  bool step();

  /// Run until the queue is empty.
  void run();

  /// Run until simulated time `t` (events at exactly `t` are processed).
  /// Returns true if the queue still has later events.
  bool run_until(SimTime t);

  /// Run until `pred()` becomes true or the queue drains.
  /// Returns true if the predicate was satisfied.
  bool run_while(const std::function<bool()>& pending);

  std::uint64_t events_processed() const { return processed_; }
  bool empty() const { return live_ == 0; }
  std::size_t pending_events() const { return live_; }

  // --- event-pool statistics (observability probes) -------------------------

  /// Slots ever allocated in the slab (high-water of concurrently live events).
  std::size_t pool_slots() const { return slots_.size(); }
  /// Slots currently on the free list.
  std::size_t pool_free() const { return free_.size(); }
  /// Events that reused a recycled slot instead of growing the slab.
  std::uint64_t pool_reuses() const { return pool_reuses_; }
  /// Scheduled actions whose captures spilled to the heap (SBO miss).
  std::uint64_t heap_actions() const { return heap_actions_; }

  /// Report queue/pool statistics as probes under (node, "sim.engine").
  /// The engine is network-wide, so callers conventionally pass node -1.
  void register_metrics(obs::Registration& reg, int node = -1) const;

  // --- shard membership (conservative parallel simulation) ------------------

  /// Attach this engine to `coordinator` as shard `shard_id`. Called once by
  /// ParallelEngine's constructor.
  void set_shard(ParallelEngine* coordinator, int shard_id) {
    coordinator_ = coordinator;
    shard_id_ = shard_id;
  }
  int shard_id() const { return shard_id_; }

  /// Earliest live event time, or -1 if the queue is empty. Prunes
  /// cancelled entries from the heap top while peeking.
  SimTime next_event_time();

  /// Schedule `fn` at time `t` on `dst`, which may live on another shard.
  /// Same-engine sends collapse to schedule_at (zero overhead, identical
  /// semantics at shards=1); cross-shard sends go through the coordinator's
  /// mailbox and land at the next window barrier. `key` names the sending
  /// element (stable across runs) and `seq` is its per-key counter; the pair
  /// makes the mailbox drain order — and therefore the simulation —
  /// deterministic. Must only be called from this shard's worker thread.
  void send_cross(Engine& dst, SimTime t, Action fn, std::uint64_t key, std::uint64_t seq);

  /// Events this shard posted to other shards via send_cross().
  std::uint64_t cross_posts() const { return cross_posts_; }

 private:
  struct Slot {
    std::uint32_t gen = 0;
    bool armed = false;
    Action action;
  };

  struct QueueEntry {
    SimTime time;
    std::uint64_t seq;  // global insertion order: ties on `time` fire FIFO
    EventId id;
    bool operator>(const QueueEntry& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  // EventId layout: (slot index + 1) << 32 | generation. The +1 keeps 0 free
  // as a "no event" sentinel for callers.
  static EventId make_id(std::size_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(slot + 1) << 32) | gen;
  }
  /// The slot an id refers to iff the id is live; nullptr for stale handles.
  Slot* live_slot(EventId id);
  void release_slot(std::size_t slot_index);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  std::size_t live_ = 0;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;

  std::uint64_t pool_reuses_ = 0;
  std::uint64_t heap_actions_ = 0;

  ParallelEngine* coordinator_ = nullptr;
  int shard_id_ = 0;
  std::uint64_t cross_posts_ = 0;
};

}  // namespace nectar::sim
