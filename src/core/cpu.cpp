#include "core/cpu.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/tracer.hpp"

namespace nectar::core {

namespace {
thread_local Cpu* g_current_cpu = nullptr;

// Execution-context labels for profiler attribution (see busy_context()).
const std::string kCtxIrq = "irq";
const std::string kCtxSwitch = "switch";
const std::string kCtxEngine = "engine";
}

Cpu* Cpu::current() { return g_current_cpu; }

Cpu::Cpu(sim::Engine& engine, std::string name, sim::SimTime context_switch_cost)
    : engine_(engine), name_(std::move(name)), switch_cost_(context_switch_cost) {
  irq_fiber_ = std::make_unique<sim::Fiber>([this] { irq_loop(); }, name_ + ".irq");
}

Cpu::~Cpu() = default;

// --- thread management -------------------------------------------------------

Thread* Cpu::fork(std::string name, int priority, std::function<void()> body) {
  auto t = std::make_unique<Thread>(*this, std::move(name), priority, std::move(body));
  Thread* raw = t.get();
  threads_.push_back(std::move(t));
  if (profiling()) raw->ready_at_ = engine_.now();
  run_queue_.push(raw);
  kick();
  return raw;
}

Thread::Thread(Cpu& cpu, std::string name, int priority, std::function<void()> body)
    : cpu_(cpu),
      name_(std::move(name)),
      priority_(priority),
      fiber_([this, body = std::move(body)] { cpu_.thread_trampoline(this, body); }, name_) {}

void Cpu::thread_trampoline(Thread* t, const std::function<void()>& body) {
  body();
  t->state_ = Thread::State::Finished;
  for (Thread* j : t->joiners_) wake(j);
  t->joiners_.clear();
  NECTAR_TRACE(trace_thread_out());
  current_ = nullptr;
  // Returning ends the fiber; dispatch() continues with the next thread.
}

void Cpu::join(Thread* t) {
  Thread* self = current_;
  if (self == nullptr || in_interrupt()) {
    throw std::logic_error("Cpu::join must be called from a thread");
  }
  if (t->finished()) return;
  t->joiners_.push_back(self);
  block();
}

std::size_t Cpu::threads_alive() const {
  return static_cast<std::size_t>(
      std::count_if(threads_.begin(), threads_.end(),
                    [](const auto& t) { return !t->finished(); }));
}

// --- execution ----------------------------------------------------------------

bool Cpu::profiling() const { return profiler_ != nullptr && profiler_->enabled(); }

/// What execution context is consuming the busy interval begin_busy opens?
/// Order matters: an interrupt can run while a thread is still mid-charge
/// (current_ set), so the irq context is checked first.
const std::string& Cpu::busy_context() const {
  if (irq_active_) return kCtxIrq;
  if (switch_target_ != nullptr) return kCtxSwitch;
  if (current_ != nullptr) return current_->name();
  return kCtxEngine;
}

// The single point where busy time accrues — charges (sliced) and the
// dispatcher's context-switch cost both land here, which is what makes the
// profiler's invariant exact: sum(folded entries of this CPU) == busy_time().
void Cpu::begin_busy(sim::SimTime ns) {
  busy_until_ = engine_.now() + ns;
  busy_time_ += ns;
  if (profiling()) profiler_->record(name_, busy_context(), ns);
  engine_.schedule_at(busy_until_, [this] { dispatch(); });
}

void Cpu::charge(sim::SimTime ns) {
  assert(sim::Fiber::current() != nullptr && "charge() outside any execution context");
  while (ns > 0) {
    sim::SimTime slice = std::min(ns, sim::costs::kChargeSlice);
    begin_busy(slice);
    sim::Fiber::suspend();
    ns -= slice;
  }
}

void Cpu::charge_until(sim::SimTime t) {
  sim::SimTime now = engine_.now();
  if (t > now) charge(t - now);
}

void Cpu::yield() {
  Thread* self = current_;
  assert(self != nullptr && !in_interrupt() && "yield() must be called from a thread");
  Thread* best = run_queue_.peek_best();
  if (best == nullptr || best->priority() < self->priority()) return;
  self->state_ = Thread::State::Ready;
  if (profiling()) self->ready_at_ = engine_.now();
  run_queue_.push(self);
  NECTAR_TRACE(trace_thread_out());
  current_ = nullptr;
  sim::Fiber::suspend();
}

void Cpu::block() {
  Thread* self = current_;
  if (self == nullptr || in_interrupt()) {
    throw std::logic_error(name_ + ": block() outside thread context");
  }
  // Every new blocking episode invalidates sleep timers armed for earlier
  // ones: a sleeper woken early must not be re-woken from a later block by
  // its stale timer.
  ++self->sleep_gen_;
  self->state_ = Thread::State::Blocked;
  NECTAR_TRACE(trace_thread_out());
  current_ = nullptr;
  sim::Fiber::suspend();
}

void Cpu::block_unmasked() {
  Thread* self = current_;
  if (self == nullptr || in_interrupt()) {
    throw std::logic_error(name_ + ": block_unmasked() outside thread context");
  }
  assert(irq_disable_depth_ > 0 && "block_unmasked requires the interrupt mask held");
  ++self->sleep_gen_;  // see block(): invalidates stale sleep timers
  self->state_ = Thread::State::Blocked;
  NECTAR_TRACE(trace_thread_out());
  current_ = nullptr;
  // Drop the mask *after* marking ourselves blocked: a pending interrupt
  // delivered once we suspend can therefore wake us without a lost-wakeup
  // window.
  --irq_disable_depth_;
  if (irq_disable_depth_ == 0 && !irq_queue_.empty()) kick();
  sim::Fiber::suspend();
  ++irq_disable_depth_;
}

void Cpu::wake(Thread* t) {
  if (t->state_ != Thread::State::Blocked) return;
  t->state_ = Thread::State::Ready;
  if (profiling()) t->ready_at_ = engine_.now();
  run_queue_.push(t);
  kick();
}

void Cpu::sleep_until(sim::SimTime t) {
  Thread* self = current_;
  if (self == nullptr || in_interrupt()) {
    throw std::logic_error(name_ + ": sleep outside thread context");
  }
  // The timer is valid only for the blocking episode block() is about to
  // begin (block() increments the generation as it parks us).
  std::uint64_t gen = self->sleep_gen_ + 1;
  engine_.schedule_at(t, [this, self, gen] {
    if (self->sleep_gen_ == gen) wake(self);
  });
  block();
}

// --- interrupts ----------------------------------------------------------------

void Cpu::post_interrupt(IrqHandler handler) {
  irq_queue_.push_back(std::move(handler));
  kick();
}

void Cpu::disable_interrupts() { ++irq_disable_depth_; }

void Cpu::enable_interrupts() {
  assert(irq_disable_depth_ > 0);
  if (--irq_disable_depth_ == 0 && !irq_queue_.empty()) kick();
}

void Cpu::irq_loop() {
  for (;;) {
    while (!irq_queue_.empty() && irq_disable_depth_ == 0) {
      IrqHandler h = std::move(irq_queue_.front());
      irq_queue_.pop_front();
      ++interrupts_taken_;
      NECTAR_TRACE(if (obs::tracing(tracer_)) tracer_->begin(trace_track_, "irq"));
      {
        obs::CostScope scope("irq/dispatch");
        charge(sim::costs::kInterruptEntry);
      }
      h();
      {
        obs::CostScope scope("irq/dispatch");
        charge(sim::costs::kInterruptExit);
      }
      NECTAR_TRACE(if (obs::tracing(tracer_)) tracer_->end(trace_track_, "irq"));
    }
    irq_active_ = false;
    sim::Fiber::suspend();
    irq_active_ = true;
  }
}

Cpu::TimerId Cpu::set_timer(sim::SimTime t, sim::InplaceAction fn) {
  TimerId id = next_timer_++;
  // The callback lives in the timer table, not the event capture, so the
  // scheduled event stays two words and always fits the engine's inline slot.
  Timer& timer = timers_[id];
  timer.fn = std::move(fn);
  timer.event = engine_.schedule_at(t, [this, id] {
    auto it = timers_.find(id);
    if (it == timers_.end()) return;  // cancelled after the event fired
    sim::InplaceAction cb = std::move(it->second.fn);
    timers_.erase(it);
    post_interrupt(std::move(cb));
  });
  return id;
}

void Cpu::cancel_timer(TimerId id) {
  auto it = timers_.find(id);
  if (it == timers_.end()) return;
  engine_.cancel(it->second.event);
  timers_.erase(it);
}

// --- dispatcher ------------------------------------------------------------------

void Cpu::kick() {
  if (dispatch_scheduled_) return;
  dispatch_scheduled_ = true;
  engine_.schedule_in(0, [this] {
    dispatch_scheduled_ = false;
    dispatch();
  });
}

void Cpu::resume_fiber(sim::Fiber& f) {
  assert(sim::Fiber::current() == nullptr);
  g_current_cpu = this;
  // Announce the context so CostScope domains open inside this fiber stay
  // with it across suspends (charges are sliced; other fibers interleave).
  obs::Profiler::set_context(&f);
  f.resume();
  obs::Profiler::set_context(nullptr);
  g_current_cpu = nullptr;
}

void Cpu::dispatch() {
  if (engine_.now() < busy_until_) return;  // mid-charge; its completion event redispatches
  for (;;) {
    if (switch_target_ != nullptr) {
      // The context-switch charge has elapsed: hand the CPU over.
      Thread* t = switch_target_;
      switch_target_ = nullptr;
      current_ = t;
      t->state_ = Thread::State::Running;
      // Run-queue wait = ready-stamp to actually-running (includes the
      // switch cost). ready_at_ < 0 means the profiler was enabled after
      // the thread was queued; skip rather than misattribute.
      if (profiling() && t->ready_at_ >= 0) {
        profiler_->add_queue_wait(name_, t->name(), engine_.now() - t->ready_at_);
      }
      t->ready_at_ = -1;
      NECTAR_TRACE(trace_thread_in(t));
      resume_fiber(t->fiber_);
    } else if (irq_active_ || (!irq_queue_.empty() && irq_disable_depth_ == 0)) {
      irq_active_ = true;
      resume_fiber(*irq_fiber_);
    } else {
      Thread* best = run_queue_.peek_best();
      if (current_ != nullptr && current_->state_ == Thread::State::Running) {
        if (best != nullptr && best->priority() > current_->priority()) {
          // Preempt: with preemption, "a context switch occurs as soon as a
          // higher-priority thread is awakened" (§3.1).
          Thread* prev = current_;
          prev->state_ = Thread::State::Ready;
          if (profiling()) prev->ready_at_ = engine_.now();
          run_queue_.push(prev);
          NECTAR_TRACE({
            trace_instant("cpu.preempt");
            trace_thread_out();
          });
          current_ = nullptr;
          ++context_switches_;
          switch_target_ = run_queue_.pop_best();
          begin_busy(switch_cost_);
        } else {
          resume_fiber(current_->fiber_);
        }
      } else if (best != nullptr) {
        ++context_switches_;
        switch_target_ = run_queue_.pop_best();
        begin_busy(switch_cost_);
      } else {
        return;  // idle: wait for a wakeup or interrupt
      }
    }
    if (engine_.now() < busy_until_) return;  // the running context started a charge
  }
}

// --- observability ------------------------------------------------------------------

void Cpu::attach_tracer(obs::Tracer* tracer, int track) {
  tracer_ = tracer;
  trace_track_ = track;
  thread_span_open_ = false;
}

void Cpu::trace_thread_in(Thread* t) {
  if (!obs::tracing(tracer_)) return;
  tracer_->begin(trace_track_, t->name());
  thread_span_open_ = true;
}

void Cpu::trace_thread_out() {
  // thread_span_open_ guards against a tracer enabled mid-run: the first
  // scheduling-out after enable has no matching begin to close.
  if (!obs::tracing(tracer_) || !thread_span_open_ || current_ == nullptr) return;
  tracer_->end(trace_track_, current_->name());
  thread_span_open_ = false;
}

void Cpu::trace_instant(const char* label) {
  if (obs::tracing(tracer_)) tracer_->instant(trace_track_, label);
}

void Cpu::register_metrics(obs::Registration& reg, int node, const std::string& component) const {
  reg.probe(node, component, "context_switches",
            [this] { return static_cast<std::int64_t>(context_switches_); });
  reg.probe(node, component, "interrupts_taken",
            [this] { return static_cast<std::int64_t>(interrupts_taken_); });
  reg.probe(node, component, "busy_ns", [this] { return static_cast<std::int64_t>(busy_time_); });
  reg.probe(node, component, "threads_alive",
            [this] { return static_cast<std::int64_t>(threads_alive()); });
}

}  // namespace nectar::core
