// Failover bench: a two-leaf/two-spine fat tree carrying an open-loop UDP
// aggregate loses one spine uplink mid-run — permanently — and the routing
// control plane (docs/ROUTING.md) must detect the dead paths by probe loss
// and move every affected pair onto the surviving spine. The bench samples
// goodput in fixed windows across the fault and reports the pre-fault rate,
// the depth of the dip, how long recovery took, and the reroute-latency
// percentiles measured from the first missed probe to the route switch.
//
// There is no paper figure for this; the 1990 Nectar ran a single HUB. It is
// the acceptance experiment for the multipath control plane: recovered
// goodput must come back to >= 90% of the pre-fault rate. The run is
// deterministic: the committed BENCH_failover.json must reproduce
// byte-for-byte from `bench_failover --json`.

#include <vector>

#include "common.hpp"
#include "scenario/engine.hpp"

namespace nectar::bench {
namespace {

// 12 CABs, 6 per leaf, two spine HUBs reached over leaf ports 6 and 7.
// stride = 6 makes every one of the 12 flows cross-leaf, so the seeded ECMP
// preference splits them across both spines and the blackout bites a real
// subset of live traffic.
constexpr const char* kConfig = R"(
[scenario]
name = failover
seed = 1990
duration = 1500ms

[topology]
kind = fat_tree
nodes = 12
hub_ports = 8
spines = 2

# 25 ms probes keep the control plane's CPU cost to a few percent per CAB
# (each node probes every (dst, path) pair; 4 ms probing at this fan-out
# would saturate the CABs and make goodput probe-bound). Worst-case
# detection+switch: (dead_after-1) * 25ms + 5ms = 55 ms, about one window.
[routing]
enabled = true
paths = 2
probe_interval = 25ms
probe_timeout = 5ms
dead_after = 3
recover_after = 2

# ~2 Mbit/s per flow, ~25 Mbit/s aggregate: comfortably inside one spine's
# capacity, so post-failover goodput is limited by detection, not bandwidth.
[workload]
name = udp-open
proto = udp
mode = open
users = 4
rate = 125
size = 512
stride = 6

# Leaf 0's uplink to spine 0 goes dark at 500 ms and never comes back
# (duration 0 = until end of run). Requests from leaf 0 over spine 0 die at
# the port; so do leaf-0 replies to leaf-1 probes that arrived over spine 0,
# so both sides mark their spine-0 paths dead.
[fault]
kind = hub_blackout
target = hub0.port6
at = 500ms
duration = 0
)";

constexpr sim::SimTime kWindow = sim::msec(50);
constexpr sim::SimTime kFaultAt = sim::msec(500);
constexpr sim::SimTime kWarmup = sim::msec(100);
constexpr double kRecoverTarget = 0.9;

int run(const BenchOptions& options) {
  scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::from_config(scenario::Config::parse_string(kConfig));
  sim::SimTime duration = spec.duration;
  scenario::Scenario sc(std::move(spec));
  if (!options.trace_path.empty()) sc.net().tracer().set_enabled(true);
  start_profile(options, sc.net().profiler());
  std::printf("failover: %d nodes, fault at %.0f ms, %.0f ms simulated\n",
              sc.spec().topology.nodes, sim::to_msec(kFaultAt), sim::to_msec(duration));

  // Sample cumulative delivered bytes on the sim clock; scheduled before
  // run() so the sampling events interleave deterministically with the load.
  const scenario::Workload& wl = *sc.workloads().at(0);
  std::vector<std::uint64_t> samples;
  for (sim::SimTime t = kWindow; t <= duration; t += kWindow) {
    sc.net().engine().schedule_at(
        t, [&samples, &wl] { samples.push_back(wl.delivered_bytes()); });
  }
  sc.run();

  // Per-window deliveries, and the window index the fault lands in.
  std::vector<double> window_mbps;
  std::uint64_t prev = 0;
  for (std::uint64_t s : samples) {
    window_mbps.push_back(mbit_per_sec(s - prev, kWindow));
    prev = s;
  }
  std::size_t fault_win = static_cast<std::size_t>(kFaultAt / kWindow);
  std::size_t warm_win = static_cast<std::size_t>(kWarmup / kWindow);

  double prefault = 0;
  for (std::size_t i = warm_win; i < fault_win; ++i) prefault += window_mbps[i];
  prefault /= static_cast<double>(fault_win - warm_win);

  double dip = window_mbps[fault_win];
  std::size_t recover_win = window_mbps.size();
  for (std::size_t i = fault_win; i < window_mbps.size(); ++i) {
    dip = std::min(dip, window_mbps[i]);
    if (recover_win == window_mbps.size() && window_mbps[i] >= kRecoverTarget * prefault) {
      recover_win = i;
    }
  }
  double recovery_ms =
      recover_win == window_mbps.size()
          ? -1.0
          : sim::to_msec(static_cast<sim::SimTime>(recover_win + 1) * kWindow - kFaultAt);

  // Steady recovered rate: the last 400 ms of the run.
  std::size_t tail = 8;
  double recovered = 0;
  for (std::size_t i = window_mbps.size() - tail; i < window_mbps.size(); ++i) {
    recovered += window_mbps[i];
  }
  recovered /= static_cast<double>(tail);

  std::printf("\n%8s %10s\n", "t(ms)", "Mbit/s");
  for (std::size_t i = 0; i < window_mbps.size(); ++i) {
    std::printf("%8.0f %10.2f%s\n", sim::to_msec(static_cast<sim::SimTime>(i + 1) * kWindow),
                window_mbps[i], i == fault_win ? "   <- fault" : "");
  }

  const route::RouteManager& rm = *sc.routing();
  std::printf("\nprefault %.2f Mbit/s, dip %.2f, recovered %.2f (%.1f%%), recovery %.0f ms\n",
              prefault, dip, recovered, 100.0 * recovered / prefault, recovery_ms);
  std::printf("failovers %llu, probes %llu (%llu timeouts), reroute p50 %.1f us p99 %.1f us\n",
              static_cast<unsigned long long>(rm.failovers()),
              static_cast<unsigned long long>(rm.probes_sent()),
              static_cast<unsigned long long>(rm.probe_timeouts()),
              rm.reroute_latency().p50() / sim::kMicrosecond,
              rm.reroute_latency().p99() / sim::kMicrosecond);

  obs::RunReport report = sc.report();
  report.add("failover.goodput_prefault", prefault, "mbps");
  report.add("failover.goodput_dip", dip, "mbps");
  report.add("failover.goodput_recovered", recovered, "mbps");
  report.add("failover.recovered_ratio", recovered / prefault, "ratio");
  report.add("failover.recovery_ms", recovery_ms, "ms");
  finish_report(options, report);
  finish_trace(options.trace_path, sc.net().tracer());
  finish_profile(options, sc.net().profiler());

  if (rm.failovers() == 0) {
    std::fprintf(stderr, "FAIL: the fault never triggered a failover\n");
    return 1;
  }
  if (recovered < kRecoverTarget * prefault) {
    std::fprintf(stderr, "FAIL: recovered goodput %.2f below %.0f%% of pre-fault %.2f\n",
                 recovered, 100.0 * kRecoverTarget, prefault);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace nectar::bench

int main(int argc, char** argv) {
  return nectar::bench::run(nectar::bench::parse_options(argc, argv));
}
