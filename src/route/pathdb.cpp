#include "route/pathdb.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <string>

#include "sim/random.hpp"

namespace nectar::route {

namespace {

/// One hop of a path through the trunk graph: which trunk, and whether it
/// was traversed a->b (so the forward route byte is port_a and the reverse
/// byte is port_b) or b->a.
struct TrunkHop {
  int trunk;
  bool forward;
};

}  // namespace

PathDb::PathDb(const net::Network& net, int k, std::uint64_t seed)
    : nodes_(net.cab_count()), k_(std::max(1, k)), seed_(seed) {
  for (int a = 0; a < nodes_; ++a) {
    for (int b = a; b < nodes_; ++b) build_pair(net, a, b);
  }
}

void PathDb::build_pair(const net::Network& net, int a, int b) {
  // Same-CAB / same-HUB pairs have exactly one path: the destination's port
  // byte. There is no trunk to be disjoint from.
  if (a == b || net.cab_hub(a) == net.cab_hub(b)) {
    paths_[{a, b}] = {net.route_ref(a, b)};
    if (a != b) paths_[{b, a}] = {net.route_ref(b, a)};
    return;
  }

  const std::vector<net::Network::Trunk>& trunks = net.trunks();
  const int ha = net.cab_hub(a);
  const int hb = net.cab_hub(b);
  const int nt = static_cast<int>(trunks.size());

  // Seeded tie-break: rotate the trunk scan order per unordered pair so
  // equal-cost pairs spread across parallel trunks deterministically.
  std::string pair_name = "ecmp/" + std::to_string(a) + "/" + std::to_string(b);
  const int rot = nt > 0 ? static_cast<int>(sim::derive_seed(seed_, pair_name) %
                                            static_cast<std::uint64_t>(nt))
                         : 0;

  std::vector<hw::RouteRef> fwd, rev;
  std::vector<bool> used(static_cast<std::size_t>(nt), false);

  for (int p = 0; p < k_; ++p) {
    // BFS from ha to hb over trunks not used by earlier paths of this pair.
    struct Step {
      int hub;
      std::vector<TrunkHop> hops;
    };
    std::deque<Step> frontier{{ha, {}}};
    std::vector<bool> visited(static_cast<std::size_t>(net.hub_count()), false);
    visited[static_cast<std::size_t>(ha)] = true;
    std::vector<TrunkHop> found;
    bool ok = false;
    while (!frontier.empty() && !ok) {
      Step cur = std::move(frontier.front());
      frontier.pop_front();
      if (cur.hub == hb) {
        found = std::move(cur.hops);
        ok = true;
        break;
      }
      for (int i = 0; i < nt; ++i) {
        int ti = (i + rot) % nt;
        if (used[static_cast<std::size_t>(ti)]) continue;
        const net::Network::Trunk& t = trunks[static_cast<std::size_t>(ti)];
        if (t.hub_a == cur.hub && !visited[static_cast<std::size_t>(t.hub_b)]) {
          visited[static_cast<std::size_t>(t.hub_b)] = true;
          Step next{t.hub_b, cur.hops};
          next.hops.push_back({ti, true});
          frontier.push_back(std::move(next));
        }
        if (t.hub_b == cur.hub && !visited[static_cast<std::size_t>(t.hub_a)]) {
          visited[static_cast<std::size_t>(t.hub_a)] = true;
          Step next{t.hub_a, cur.hops};
          next.hops.push_back({ti, false});
          frontier.push_back(std::move(next));
        }
      }
    }
    if (!ok) break;  // no further edge-disjoint path exists

    // Forward route: the near-side output port of each trunk hop, then the
    // destination's CAB port. Reverse route: far-side ports in reverse hop
    // order, then the source's CAB port — the exact wire-level reverse.
    std::vector<std::uint8_t> f, r;
    for (const TrunkHop& h : found) {
      const net::Network::Trunk& t = trunks[static_cast<std::size_t>(h.trunk)];
      f.push_back(static_cast<std::uint8_t>(h.forward ? t.port_a : t.port_b));
      used[static_cast<std::size_t>(h.trunk)] = true;
    }
    f.push_back(static_cast<std::uint8_t>(net.cab_port(b)));
    for (auto it = found.rbegin(); it != found.rend(); ++it) {
      const net::Network::Trunk& t = trunks[static_cast<std::size_t>(it->trunk)];
      r.push_back(static_cast<std::uint8_t>(it->forward ? t.port_b : t.port_a));
    }
    r.push_back(static_cast<std::uint8_t>(net.cab_port(a)));
    fwd.emplace_back(std::move(f));
    rev.emplace_back(std::move(r));
  }

  if (fwd.empty()) {
    throw std::logic_error("PathDb: no route between CABs " + std::to_string(a) + " and " +
                           std::to_string(b));
  }
  paths_[{a, b}] = std::move(fwd);
  paths_[{b, a}] = std::move(rev);
}

int PathDb::path_count(int src, int dst) const {
  return static_cast<int>(paths_.at({src, dst}).size());
}

const hw::RouteRef& PathDb::path(int src, int dst, int idx) const {
  return paths_.at({src, dst}).at(static_cast<std::size_t>(idx));
}

int PathDb::preferred(int src, int dst) const {
  int n = path_count(src, dst);
  if (n <= 1) return 0;
  std::string name = "pref/" + std::to_string(src) + "/" + std::to_string(dst);
  return static_cast<int>(sim::derive_seed(seed_, name) % static_cast<std::uint64_t>(n));
}

}  // namespace nectar::route
