#pragma once

// Causal message tracing with tail-latency attribution.
//
// CausalTracer samples messages at the sender (seeded head sampling, so the
// decision is made once and rides the wire with the message), then records a
// *cut-point* timeline per sampled message: every instrumentation site calls
// stage(ctx, label) when the message enters a new stage, which closes the
// previously open stage at the current sim time and opens the next. Because
// consecutive stages tile the trace's lifetime, the sum of stage durations
// equals the end-to-end latency exactly — the invariant the paper-style
// tail attribution rests on, re-checked by CriticalPathAnalyzer::verify().
//
// Instrumentation sites never charge simulated CPU time; a disabled tracer
// costs one pointer load per site (CausalTracer::active() == nullptr), so
// scenarios without a [tracing] section are byte-identical to builds without
// the feature. Note the *wire* is not free for traced messages: the 16-byte
// stamp (obs/span.hpp) is real header bytes, serialized and CRC'd like any
// other, so a traced run's latencies honestly include the stamp overhead.
//
// Context travels three ways:
//  - on the wire, via the HeaderBuf stamp (tx path) and hw::Frame::trace
//    (the in-flight mirror links/HUBs/FIFOs attribute against);
//  - within one receive interrupt, via the rx ambient (RxScope) the
//    datalink publishes around the end_of_data upcall chain — never across
//    a fiber switch, so contexts cannot leak between threads;
//  - across mailbox hand-offs, via address tags: the datalink tags the
//    receive buffer's address range, and whichever fiber later dequeues a
//    message whose bytes live in that range (headers may have been stripped
//    with adjust_prefix, which never moves the data pointer backwards)
//    recovers the context with lookup().

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/span.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace nectar::sim {
class Engine;
}

namespace nectar::obs {

class RunReport;
namespace json {
class Value;
}

class CausalTracer {
 public:
  struct Options {
    double sample = 0.01;          ///< head-sampling probability per message
    std::size_t max_traces = 4096; ///< stop starting new traces past this
    std::size_t max_stages = 512;  ///< per-trace stage cap (overflow = discard)
  };

  CausalTracer(sim::Engine& engine, std::uint64_t seed, Options opt);
  CausalTracer(sim::Engine& engine, std::uint64_t seed) : CausalTracer(engine, seed, Options()) {}
  ~CausalTracer();

  CausalTracer(const CausalTracer&) = delete;
  CausalTracer& operator=(const CausalTracer&) = delete;

  /// The process-global active tracer, or nullptr (the common case: every
  /// instrumentation site is a single pointer test when tracing is off).
  static CausalTracer* active() { return active_; }
  void activate();
  void deactivate();

  // --- trace lifecycle ------------------------------------------------------

  /// Head-sampling decision for one message about to be sent. Returns an
  /// invalid context when the message is not sampled (or the trace budget is
  /// exhausted). On success the trace exists with zero stages; the caller
  /// opens the first stage immediately (same sim instant, so the first
  /// stage's start coincides with the trace start).
  TraceContext maybe_start(const std::string& flow, int src, int dst, std::uint64_t seq);

  /// Enter a new stage: closes the open stage at now, opens `label`.
  /// Ignored for invalid contexts and finished/overflowed traces.
  void stage(const TraceContext& ctx, const char* label, std::string where = {});

  /// Attach an instantaneous event ("tcp.retx", "drop.blackout", ...).
  void annotate(const TraceContext& ctx, const char* label);

  /// Delivery observed: closes the open stage and the trace at now.
  void finish(const TraceContext& ctx);

  // --- rx ambient -----------------------------------------------------------

  /// Publishes `ctx` as the receive ambient for the duration of a receive
  /// interrupt's synchronous upcall chain (datalink -> protocol end_of_data).
  /// Must not span a fiber switch. No-op when no tracer is active.
  class RxScope {
   public:
    explicit RxScope(const TraceContext& ctx);
    ~RxScope();
    RxScope(const RxScope&) = delete;
    RxScope& operator=(const RxScope&) = delete;

   private:
    CausalTracer* t_;
    TraceContext saved_;
  };
  const TraceContext& rx_context() const { return rx_ambient_; }

  // --- address tags ---------------------------------------------------------

  /// Associate [addr, addr+len) on `node` with `ctx` (erasing any stale tags
  /// overlapping the range first — receive buffers are pool-recycled). An
  /// invalid ctx only clears the range.
  void tag(int node, std::uint64_t addr, std::size_t len, const TraceContext& ctx);
  /// Context of the live trace whose tagged range contains `addr`, or an
  /// invalid context.
  TraceContext lookup(int node, std::uint64_t addr) const;

  // --- reroute windows ------------------------------------------------------

  /// RouteManager reports a completed failover: traffic from `node` to `dst`
  /// had no working route between `t0` (first missed probe send) and `t1`
  /// (route switch). Loss-wait stages of matching traces overlapping the
  /// window are attributed to rerouting rather than retransmission.
  struct RerouteWindow {
    int node, dst;
    sim::SimTime t0, t1;
  };
  void note_reroute(int node, int dst, sim::SimTime t0, sim::SimTime t1);
  const std::vector<RerouteWindow>& reroute_windows() const { return windows_; }

  // --- introspection --------------------------------------------------------

  struct Trace {
    std::uint64_t id = 0;
    std::string flow;
    int src = -1, dst = -1;
    std::uint64_t seq = 0;
    sim::SimTime start = 0;
    sim::SimTime end = -1;
    bool finished = false;
    bool overflowed = false;
    std::vector<StageRecord> stages;  ///< closed stages + at most one open (end == -1)
    struct Note {
      std::string label;
      sim::SimTime t;
    };
    std::vector<Note> notes;
    std::uint32_t next_span = 0;
    std::vector<std::uint64_t> tag_keys;

    sim::SimTime e2e() const { return end - start; }
  };

  const std::vector<std::unique_ptr<Trace>>& traces() const { return traces_; }
  std::uint64_t started() const { return started_; }
  std::uint64_t finished_count() const { return finished_; }
  std::uint64_t sampled_out() const { return sampled_out_; }
  std::uint64_t capped() const { return capped_; }
  std::uint64_t overflowed() const { return overflowed_; }
  double sample_rate() const { return opt_.sample; }
  std::uint64_t seed() const { return seed_; }

 private:
  Trace* find(const TraceContext& ctx);
  void close_open_stage(Trace& t);
  void erase_tags_overlapping(std::uint64_t key, std::size_t len);

  static CausalTracer* active_;

  sim::Engine& engine_;
  std::uint64_t seed_;
  Options opt_;
  sim::Random sample_rng_;
  std::uint64_t next_id_ = 1;

  std::vector<std::unique_ptr<Trace>> traces_;  // start order (deterministic)
  std::unordered_map<std::uint64_t, Trace*> by_id_;

  TraceContext rx_ambient_;

  struct TagEntry {
    std::size_t len;
    std::uint64_t trace_id;
  };
  std::map<std::uint64_t, TagEntry> tags_;  // key = node<<40 | addr

  std::vector<RerouteWindow> windows_;

  std::uint64_t started_ = 0;
  std::uint64_t finished_ = 0;
  std::uint64_t sampled_out_ = 0;
  std::uint64_t capped_ = 0;
  std::uint64_t overflowed_ = 0;
};

/// Reconstructs per-message critical paths from a (finished) CausalTracer,
/// checks the tiling invariant, and renders the two consumers: the
/// deterministic top-K tail-trace artifact and the aggregate per-stage tail
/// attribution rows merged into a scenario RunReport.
class CriticalPathAnalyzer {
 public:
  explicit CriticalPathAnalyzer(const CausalTracer& tracer) : tracer_(tracer) {}

  /// Re-check the cut-point invariant on every finished trace: stages tile
  /// [start, end] with no gaps, overlaps, or negative durations, so
  /// sum(stage durations) == end-to-end latency exactly. Returns an empty
  /// string on success, else a description of the first violation.
  std::string verify() const;

  /// Stage class for attribution: "queueing", "serialization", "switching",
  /// "dma", "mailbox", "proto", "retransmit", "reroute", "app".
  /// Loss-wait stages flip from "retransmit" to "reroute" when they overlap
  /// a reroute window matching the trace's (src, dst).
  const char* classify(const CausalTracer::Trace& t, const StageRecord& s) const;

  /// The tail-trace artifact ("nectar-tailtrace" schema, see
  /// docs/OBSERVABILITY.md): per flow, the p99 threshold, aggregate class
  /// shares over the tail set, and the `top_k` slowest deliveries with full
  /// stage breakdowns.
  json::Value artifact(std::size_t top_k) const;

  /// Aggregate rows (tailtrace.*) into a scenario report: trace counts and
  /// the per-class share of time across all tail (>= per-flow p99)
  /// deliveries. Throws std::logic_error if verify() fails.
  void report_into(RunReport& r) const;

 private:
  struct FlowGroup {
    std::vector<const CausalTracer::Trace*> finished;  // ascending e2e
    sim::SimTime p99 = 0;
  };
  std::map<std::string, FlowGroup> group_flows() const;

  const CausalTracer& tracer_;
};

}  // namespace nectar::obs
