#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "nectarine/nectarine.hpp"

namespace nectar::coll {
class CollectiveEngine;
enum class ReduceOp : std::uint8_t;
}

namespace nectar::session {
class SessionManager;
enum class SendResult : std::uint8_t;
}

namespace nectar::nectarine {

/// CAB-side Nectarine (paper §3.5): "Nectarine simplifies the task of
/// writing Nectar applications by hiding the details of the host-CAB
/// interface and presenting the same interface on both the CAB and host."
///
/// This is the CAB half of that symmetry: the same method names and shapes
/// as HostNectarine, so application code can be written once and run as a
/// host process or as a CAB task. On the CAB the operations are direct
/// (no VME charges); on the host they cross the bus — the *interface* is
/// what stays identical.
class CabNectarine {
 public:
  CabNectarine(core::CabRuntime& rt, nproto::DatagramProtocol& datagram, nproto::Rmp& rmp,
               nproto::ReqResp& reqresp);

  CabNectarine(const CabNectarine&) = delete;
  CabNectarine& operator=(const CabNectarine&) = delete;

  core::CabRuntime& cab() { return rt_; }

  /// Same handle shape as HostNectarine::HostMailbox (the cond is unused on
  /// the CAB side — CAB threads block in the mailbox directly).
  struct MailboxRef {
    core::Mailbox* mb = nullptr;
  };

  MailboxRef create_mailbox(const std::string& name);
  MailboxRef attach(core::Mailbox& mb);

  core::Message begin_put(MailboxRef& h, std::uint32_t size);
  void end_put(MailboxRef& h, core::Message m);
  core::Message begin_get(MailboxRef& h);
  void end_get(MailboxRef& h, core::Message m);

  void write_message(const core::Message& m, std::span<const std::uint8_t> data);
  void read_message(const core::Message& m, std::span<std::uint8_t> out);

  /// Send the bytes of a held message to a remote mailbox.
  void send_datagram(core::MailboxAddr dst, core::Message m, std::uint32_t reply_mailbox = 0);
  void send_reliable(core::MailboxAddr dst, core::Message m);

  /// Start a named task on a remote CAB (same signature role as the host
  /// variant; on the CAB we call the remote service directly).
  bool start_remote_task(core::MailboxAddr remote_service, const std::string& task,
                         std::uint32_t arg);

  // --- collectives (src/coll) ----------------------------------------------

  /// Attach this node's CAB-resident collective engine. The coll_* calls
  /// below forward to it (same names and shapes as HostNectarine, keeping
  /// the §3.5 host/CAB interface symmetry); they are defined alongside the
  /// engine in src/coll, so Nectarine itself carries no dependency on it.
  void attach_collectives(coll::CollectiveEngine* engine) { coll_ = engine; }
  coll::CollectiveEngine* collectives() { return coll_; }

  bool coll_barrier(std::uint16_t group);
  bool coll_bcast(std::uint16_t group, std::span<std::uint8_t> data);
  bool coll_reduce(std::uint16_t group, coll::ReduceOp op, std::uint64_t contribution,
                   std::uint64_t* result);

  // --- virtual-channel sessions (src/session) ------------------------------

  /// Attach this node's SessionManager. The session_* calls forward to it —
  /// a logical channel instead of a whole protocol connection per client —
  /// and are defined alongside the manager in src/session (nectarine_glue),
  /// so Nectarine itself carries no dependency on the session layer.
  void attach_sessions(session::SessionManager* mgr) { sessions_ = mgr; }
  session::SessionManager* sessions() { return sessions_; }

  /// Open a logical channel on `trunk`; returns the manager's channel
  /// handle, or SessionManager::kNoHandle on refusal.
  std::uint32_t session_open(int trunk, std::uint8_t priority = 0, std::uint8_t weight = 1);
  /// Stage one message on the channel (Backpressure = shed, nothing taken).
  session::SendResult session_send(std::uint32_t channel, std::span<const std::uint8_t> payload);
  /// Orderly close; the wire id recycles once the peer confirms.
  void session_close(std::uint32_t channel);

 private:
  core::CabRuntime& rt_;
  nproto::DatagramProtocol& datagram_;
  nproto::Rmp& rmp_;
  nproto::ReqResp& reqresp_;
  core::Mailbox& scratch_;
  coll::CollectiveEngine* coll_ = nullptr;
  session::SessionManager* sessions_ = nullptr;
};

}  // namespace nectar::nectarine
