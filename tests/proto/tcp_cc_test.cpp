// Tests for the congestion-control extension (TcpConfig::congestion_control)
// — slow start, congestion avoidance, fast retransmit. Off by default; these
// tests turn it on explicitly.

#include <gtest/gtest.h>

#include <string>

#include "net/system.hpp"

namespace nectar::proto {
namespace {

std::string read_bytes(core::CabRuntime& rt, const core::Message& m) {
  std::vector<std::uint8_t> buf(m.len);
  rt.board().memory().read(m.data, buf);
  return {buf.begin(), buf.end()};
}

core::Message stage(core::Mailbox& mb, core::CabRuntime& rt, const std::string& s) {
  core::Message m = mb.begin_put(static_cast<std::uint32_t>(s.size()));
  rt.board().memory().write(m.data, std::span<const std::uint8_t>(
                                        reinterpret_cast<const std::uint8_t*>(s.data()),
                                        s.size()));
  return m;
}

struct CcFixture {
  net::NectarSystem sys;
  explicit CcFixture(double drop = 0.0, std::size_t mtu = 1500)
      : sys(2, false, make_config(), mtu) {
    if (drop > 0) sys.net().cab(0).out_link().set_drop_rate(drop, 4242);
  }
  static TcpConfig make_config() {
    TcpConfig cfg;
    cfg.congestion_control = true;
    return cfg;
  }

  /// Transfer `data` 0 -> 1, return the client connection.
  TcpConnection* transfer(const std::string& data, std::string* got) {
    TcpConnection** out = new TcpConnection*(nullptr);
    sys.runtime(1).fork_app("server", [this, &data, got] {
      TcpConnection* c = sys.stack(1).tcp.listen(80);
      sys.stack(1).tcp.wait_established(c);
      while (got->size() < data.size()) {
        core::Message m = c->receive_mailbox().begin_get();
        if (m.len == 0) {
          c->receive_mailbox().end_get(m);
          break;
        }
        *got += read_bytes(sys.runtime(1), m);
        c->receive_mailbox().end_get(m);
      }
    });
    sys.runtime(0).fork_app("client", [this, &data, out] {
      sys.runtime(0).cpu().sleep_for(sim::usec(100));
      TcpConnection* c = sys.stack(0).tcp.connect(5000, ip_of_node(1), 80);
      *out = c;
      if (!sys.stack(0).tcp.wait_established(c)) return;
      core::Mailbox& s = sys.runtime(0).create_mailbox("tx");
      std::size_t off = 0;
      while (off < data.size()) {
        std::size_t chunk = std::min<std::size_t>(4096, data.size() - off);
        sys.stack(0).tcp.wait_send_window(c, 64 * 1024);
        sys.stack(0).tcp.send(c, stage(s, sys.runtime(0), data.substr(off, chunk)));
        off += chunk;
      }
    });
    sys.net().run_until(sim::sec(60));
    TcpConnection* c = *out;
    delete out;
    return c;
  }
};

TEST(TcpCongestion, SlowStartGrowsWindowOnCleanWire) {
  CcFixture f;
  std::string data(60000, 'w');
  std::string got;
  TcpConnection* c = f.transfer(data, &got);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(got, data);
  // cwnd started at one MSS and grew well past it.
  EXPECT_GT(c->cwnd(), 4 * static_cast<std::uint32_t>(f.sys.stack(0).tcp.mss()));
  EXPECT_EQ(c->retransmissions(), 0u);
}

TEST(TcpCongestion, LossShrinksWindowAndStreamSurvives) {
  CcFixture f(/*drop=*/0.08);
  std::string data(40000, 'l');
  std::string got;
  TcpConnection* c = f.transfer(data, &got);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(got, data);
  EXPECT_GT(c->retransmissions() + c->fast_retransmits(), 0u);
  // ssthresh was pulled down from its initial 64 KB by at least one loss.
  EXPECT_LT(c->ssthresh(), 64u * 1024u);
}

TEST(TcpCongestion, FastRetransmitFiresOnDupAcks) {
  // Small MTU => many segments per burst => a single drop leaves enough
  // following segments to generate three duplicate ACKs.
  CcFixture f(/*drop=*/0.04, /*mtu=*/576);
  std::string data(60000, 'f');
  std::string got;
  TcpConnection* c = f.transfer(data, &got);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(got, data);
  EXPECT_GT(c->fast_retransmits(), 0u);  // recovered without waiting for RTO
}

TEST(TcpCongestion, DisabledByDefaultKeepsPaperBehaviour) {
  net::NectarSystem sys(2);  // default config
  bool checked = false;
  sys.runtime(0).fork_app("t", [&] {
    TcpConnection* c = sys.stack(0).tcp.connect(5000, ip_of_node(1), 80);
    (void)c;
    EXPECT_FALSE(sys.stack(0).tcp.config().congestion_control);
    checked = true;
  });
  sys.net().run_until(sim::msec(10));
  EXPECT_TRUE(checked);
}

}  // namespace
}  // namespace nectar::proto
