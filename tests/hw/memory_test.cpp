#include "hw/memory.hpp"

#include <gtest/gtest.h>

#include <array>

namespace nectar::hw {
namespace {

TEST(CabMemory, ReadWriteRoundTrip) {
  CabMemory m;
  m.write8(kDataBase, 0xAB);
  EXPECT_EQ(m.read8(kDataBase), 0xAB);
  m.write32(kDataBase + 4, 0xDEADBEEF);
  EXPECT_EQ(m.read32(kDataBase + 4), 0xDEADBEEFu);
}

TEST(CabMemory, BulkReadWrite) {
  CabMemory m;
  std::array<std::uint8_t, 64> in{}, out{};
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = static_cast<std::uint8_t>(i * 3);
  m.write(kDataBase + 100, in);
  m.read(kDataBase + 100, out);
  EXPECT_EQ(in, out);
}

TEST(CabMemory, FillAndView) {
  CabMemory m;
  m.fill(kDataBase, 16, 0x7F);
  auto v = m.view(kDataBase, 16);
  for (auto b : v) EXPECT_EQ(b, 0x7F);
}

TEST(CabMemory, PromIsReadOnly) {
  CabMemory m;
  EXPECT_EQ(m.read8(0), 0);  // PROM reads fine
  EXPECT_THROW(m.write8(0, 1), std::logic_error);
  EXPECT_THROW(m.write32(kPromSize - 4, 1), std::logic_error);
  // Program RAM just above PROM is writable.
  m.write8(kPromSize, 42);
  EXPECT_EQ(m.read8(kPromSize), 42);
}

TEST(CabMemory, HoleBetweenRegionsFaults) {
  CabMemory m;
  EXPECT_THROW(m.read8(kProgramEnd), std::out_of_range);
  EXPECT_THROW(m.write8(kDataBase - 1, 0), std::out_of_range);
}

TEST(CabMemory, OutOfBoundsFaults) {
  CabMemory m;
  EXPECT_THROW(m.read8(kDataEnd), std::out_of_range);
  EXPECT_THROW(m.read32(kDataEnd - 2), std::out_of_range);
}

TEST(CabMemory, RegionPredicates) {
  EXPECT_TRUE(CabMemory::in_data_region(kDataBase, kDataSize));
  EXPECT_FALSE(CabMemory::in_data_region(kDataBase, kDataSize + 1));
  EXPECT_FALSE(CabMemory::in_data_region(kProgramRamBase, 4));
  EXPECT_TRUE(CabMemory::in_program_region(0, kProgramEnd));
  EXPECT_FALSE(CabMemory::in_program_region(kDataBase, 4));
  EXPECT_TRUE(CabMemory::in_prom(0, 1));
  EXPECT_TRUE(CabMemory::in_prom(kPromSize - 1, 10));  // straddles
  EXPECT_FALSE(CabMemory::in_prom(kPromSize, 10));
}

TEST(Protection, DefaultDomainAllowsEverything) {
  ProtectionUnit p;
  EXPECT_TRUE(p.check(kDataBase, 100, true));
  EXPECT_TRUE(p.check(0, kPageSize, false));
}

TEST(Protection, PerPagePermissions) {
  ProtectionUnit p;
  CabAddr page = kDataBase / kPageSize;
  p.set_page(1, page, ProtectionUnit::Access::Read);
  p.set_current_domain(1);
  EXPECT_TRUE(p.check(kDataBase, 4, false));
  EXPECT_FALSE(p.check(kDataBase, 4, true));
  p.set_page(1, page, ProtectionUnit::Access::None);
  EXPECT_FALSE(p.check(kDataBase, 4, false));
}

TEST(Protection, DomainsAreIndependentFirewalls) {
  // §3: protection domains "provide firewalls around application tasks".
  ProtectionUnit p(4);
  p.set_range(2, kDataBase, 4096, ProtectionUnit::Access::None);
  p.set_current_domain(2);
  EXPECT_FALSE(p.check(kDataBase + 100, 4, false));
  // Switching the domain register (one reload, §2.2) restores access.
  p.set_current_domain(0);
  EXPECT_TRUE(p.check(kDataBase + 100, 4, true));
}

TEST(Protection, RangeCheckSpansPages) {
  ProtectionUnit p;
  // Deny only the second page of a 3-page range.
  p.set_page(1, kDataBase / kPageSize + 1, ProtectionUnit::Access::None);
  p.set_current_domain(1);
  EXPECT_FALSE(p.check(kDataBase, 3 * kPageSize, false));
  EXPECT_TRUE(p.check(kDataBase, kPageSize, false));
}

TEST(Protection, FaultCounterIncrements) {
  ProtectionUnit p;
  p.set_page(1, kDataBase / kPageSize, ProtectionUnit::Access::None);
  p.set_current_domain(1);
  EXPECT_EQ(p.faults(), 0u);
  p.check(kDataBase, 4, false);
  p.check(kDataBase, 4, true);
  EXPECT_EQ(p.faults(), 2u);
}

TEST(Protection, BadDomainThrows) {
  ProtectionUnit p(2);
  EXPECT_THROW(p.set_current_domain(2), std::out_of_range);
  EXPECT_THROW(p.set_page(5, 0, ProtectionUnit::Access::Read), std::out_of_range);
}

}  // namespace
}  // namespace nectar::hw
