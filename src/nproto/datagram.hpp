#pragma once

#include <cstdint>
#include <functional>

#include "core/mailbox.hpp"
#include "proto/datalink.hpp"
#include "proto/headers.hpp"

namespace nectar::nproto {

/// Nectar-specific datagram protocol (paper §4): unreliable, unordered
/// delivery of a message to a *network-wide mailbox address* (§3.3). No
/// software checksum — integrity comes from the hardware CRC. This is the
/// protocol behind the paper's headline 325 us host-to-host round trip
/// (Table 1) and the Figure 6 latency breakdown.
class DatagramProtocol : public proto::DatalinkClient {
 public:
  explicit DatagramProtocol(proto::Datalink& dl);

  DatagramProtocol(const DatagramProtocol&) = delete;
  DatagramProtocol& operator=(const DatagramProtocol&) = delete;

  core::CabRuntime& runtime() { return dl_.runtime(); }

  /// Send `data` to the mailbox `dst`. The data area is released once the
  /// message is on the wire when `free_when_sent`. `src_mailbox` (optional)
  /// travels in the header so the receiver can reply. `tctx`, when valid,
  /// attributes the datagram to that causal trace.
  void send(core::MailboxAddr dst, core::Message data, bool free_when_sent = true,
            std::uint32_t src_mailbox = 0, obs::TraceContext tctx = {});

  /// Raw variant: payload directly from CAB data memory.
  void send_raw(core::MailboxAddr dst, hw::CabAddr payload, std::size_t len,
                sim::InplaceAction on_sent = {}, std::uint32_t src_mailbox = 0,
                obs::TraceContext tctx = {});

  /// Like send_raw, but over an explicit source route instead of the
  /// datalink's installed table entry. The route-health prober uses this to
  /// exercise each ECMP path (and its exact reverse for replies) without
  /// touching the route live traffic takes.
  void send_raw_via(const hw::RouteRef& route, core::MailboxAddr dst, hw::CabAddr payload,
                    std::size_t len, sim::InplaceAction on_sent = {},
                    std::uint32_t src_mailbox = 0);

  /// Addressing info of a delivered datagram (who sent it, reply mailbox).
  struct Info {
    int src_node = -1;
    std::uint32_t src_mailbox = 0;
  };
  /// Delivered messages carry no header (it is stripped before enqueue);
  /// the last sender info per destination mailbox is available here.
  Info last_sender(const core::Mailbox& mb) const;

  /// A datagram consumer bound to a destination mailbox *index* instead of a
  /// real mailbox. Runs in interrupt context with the header already
  /// stripped; the message bytes are valid only for the duration of the
  /// call (the buffer is recycled when it returns). New message classes
  /// register here instead of growing a dispatch switch: delivery checks
  /// the registry first and falls back to the runtime mailbox table.
  using DeliveryHandler = std::function<void(const core::Message&, const Info&)>;
  void register_delivery_handler(std::uint32_t mailbox_index, DeliveryHandler handler);
  void unregister_delivery_handler(std::uint32_t mailbox_index);

  // --- DatalinkClient --------------------------------------------------------

  std::size_t header_bytes() const override { return proto::NectarHeader::kSize; }
  core::Mailbox& input_mailbox() override { return input_; }
  void end_of_data(core::Message m, std::uint8_t src_node) override;

  // --- stats -------------------------------------------------------------------

  std::uint64_t datagrams_sent() const { return sent_; }
  std::uint64_t datagrams_delivered() const { return delivered_; }
  std::uint64_t dropped_no_mailbox() const { return dropped_no_mailbox_; }

 private:
  proto::HeaderBufLease compose_header(core::MailboxAddr dst, std::size_t len,
                                       std::uint32_t src_mailbox);

  proto::Datalink& dl_;
  core::Mailbox& input_;
  std::map<const core::Mailbox*, Info> last_sender_;
  std::map<std::uint32_t, DeliveryHandler> handlers_;

  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_no_mailbox_ = 0;

  // Last member: probes read the counters above, so they must unhook first.
  obs::Registration metrics_reg_;
};

}  // namespace nectar::nproto
