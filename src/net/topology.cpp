#include "net/topology.hpp"

#include <deque>
#include <stdexcept>

#include "hw/pool.hpp"
#include "proto/headerbuf.hpp"

namespace nectar::net {

Network::Network() : trace_(engine_) {}

void Network::register_substrate_metrics() {
  // Event-queue/pool stats report under node -1. Opt-in rather than always
  // on: committed bench reports snapshot the registry, and the substrate's
  // host-side pool counters are not part of the simulated results those
  // reports track. The process-wide byte pools (hw::BufferPool,
  // proto::HeaderBufPool) additionally span Networks, so auto-registering
  // them would break the guarantee that identical runs snapshot
  // byte-identically.
  engine_.register_metrics(metrics_reg_);
  hw::BufferPool::payloads().register_metrics(metrics_reg_, "hw.framepool");
  proto::HeaderBufPool::instance().register_metrics(metrics_reg_, "proto.hdrpool");
  for (const auto& h : hubs_) h->register_metrics(metrics_reg_);
}

int Network::add_hub(int ports) {
  int id = static_cast<int>(hubs_.size());
  hubs_.push_back(std::make_unique<hw::Hub>(engine_, "hub" + std::to_string(id), ports));
  return id;
}

int Network::add_cab(int hub_id, int port, bool with_vme) {
  if (hub_id < 0 || hub_id >= hub_count()) throw std::out_of_range("Network::add_cab: bad hub");
  int node = static_cast<int>(cabs_.size());
  auto cn = std::make_unique<CabNode>();
  std::string node_proc = "node" + std::to_string(node);
  if (with_vme) {
    cn->vme = std::make_unique<hw::VmeBus>(engine_, "vme" + std::to_string(node));
    cn->vme->attach_tracer(&tracer_, tracer_.track(node_proc, "vme"));
    cn->vme->attach_profiler(&profiler_);
    cn->vme->register_metrics(metrics_reg_, node);
  }
  cn->board =
      std::make_unique<hw::CabBoard>(engine_, "cab" + std::to_string(node), node, cn->vme.get());
  cn->board->dma().attach_profiler(&profiler_, node_proc + ".dma");
  cn->rt = std::make_unique<core::CabRuntime>(*cn->board, &trace_, &metrics_, &tracer_);
  cn->rt->cpu().attach_profiler(&profiler_);
  cn->dl = std::make_unique<proto::Datalink>(*cn->rt);
  cn->hub = hub_id;
  cn->port = port;

  // The node's outbound fiber is its "wire" swimlane.
  cn->board->out_link().attach_tracer(&tracer_, tracer_.track(node_proc, "wire"));
  cn->board->out_link().register_metrics(metrics_reg_, node);

  hw::Hub& h = hub(hub_id);
  cn->board->out_link().attach(h.input(port));
  h.attach_output(port, &cn->board->in_fifo());

  cabs_.push_back(std::move(cn));
  return node;
}

void Network::link_hubs(int hub_a, int port_a, int hub_b, int port_b) {
  hw::Hub& a = hub(hub_a);
  hw::Hub& b = hub(hub_b);
  a.attach_output(port_a, b.input(port_b));
  b.attach_output(port_b, a.input(port_a));
  trunks_.push_back({hub_a, port_a, hub_b, port_b});
}

std::vector<std::uint8_t> Network::compute_route(int src, int dst) const {
  const CabNode& s = *cabs_.at(static_cast<std::size_t>(src));
  const CabNode& d = *cabs_.at(static_cast<std::size_t>(dst));
  if (s.hub == d.hub) {
    return {static_cast<std::uint8_t>(d.port)};
  }
  // BFS over the HUB graph; remember (trunk output port) per step.
  struct Step {
    int hub;
    std::vector<std::uint8_t> route;
  };
  std::deque<Step> frontier{{s.hub, {}}};
  std::vector<bool> visited(hubs_.size(), false);
  visited[static_cast<std::size_t>(s.hub)] = true;
  while (!frontier.empty()) {
    Step cur = std::move(frontier.front());
    frontier.pop_front();
    if (cur.hub == d.hub) {
      cur.route.push_back(static_cast<std::uint8_t>(d.port));
      return cur.route;
    }
    for (const Trunk& t : trunks_) {
      if (t.hub_a == cur.hub && !visited[static_cast<std::size_t>(t.hub_b)]) {
        visited[static_cast<std::size_t>(t.hub_b)] = true;
        Step next{t.hub_b, cur.route};
        next.route.push_back(static_cast<std::uint8_t>(t.port_a));
        frontier.push_back(std::move(next));
      }
      if (t.hub_b == cur.hub && !visited[static_cast<std::size_t>(t.hub_a)]) {
        visited[static_cast<std::size_t>(t.hub_a)] = true;
        Step next{t.hub_a, cur.route};
        next.route.push_back(static_cast<std::uint8_t>(t.port_b));
        frontier.push_back(std::move(next));
      }
    }
  }
  throw std::logic_error("Network: no route between CABs " + std::to_string(src) + " and " +
                         std::to_string(dst));
}

const hw::RouteRef& Network::route_ref(int src, int dst) const {
  auto [it, inserted] = route_cache_.try_emplace({src, dst});
  if (inserted) it->second = hw::RouteRef(compute_route(src, dst));
  return it->second;
}

const std::vector<std::uint8_t>& Network::route(int src, int dst) const {
  return route_ref(src, dst).bytes();
}

void Network::install_routes() {
  for (int s = 0; s < cab_count(); ++s) {
    for (int d = 0; d < cab_count(); ++d) {
      cabs_[static_cast<std::size_t>(s)]->dl->set_route(d, route_ref(s, d));
    }
  }
}

}  // namespace nectar::net
