#pragma once

// Small-buffer-optimized move-only callables for the simulation hot paths.
//
// Every simulated event, interrupt post, and DMA/link completion used to be a
// std::function, which heap-allocates for any capture larger than two words
// and again whenever one closure is wrapped in another. InplaceFunction
// stores captures up to `Inline` bytes directly in the object (heap fallback
// for larger ones), is move-only (so it can own move-only captures such as
// other InplaceFunctions or pooled buffers), and reports whether it spilled
// to the heap so the engine can count fallbacks.

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace nectar::sim {

template <typename Sig, std::size_t Inline = 40>
class InplaceFunction;

template <typename R, typename... Args, std::size_t Inline>
class InplaceFunction<R(Args...), Inline> {
 public:
  InplaceFunction() = default;
  InplaceFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InplaceFunction> &&
             std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...>)
  InplaceFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  InplaceFunction(InplaceFunction&& o) noexcept { move_from(o); }
  InplaceFunction& operator=(InplaceFunction&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;
  ~InplaceFunction() { reset(); }

  explicit operator bool() const { return vt_ != nullptr; }

  R operator()(Args... args) {
    return vt_->invoke(storage(), std::forward<Args>(args)...);
  }

  void reset() {
    if (vt_ != nullptr) {
      vt_->destroy(storage());
      vt_ = nullptr;
    }
  }

  /// True if the capture did not fit in the inline buffer.
  bool heap_allocated() const { return vt_ != nullptr && vt_->heap; }

  static constexpr std::size_t inline_capacity() { return Inline; }

 private:
  struct VTable {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* dst, void* src) noexcept;  // move-construct dst, destroy src
    void (*destroy)(void*) noexcept;
    bool heap;
  };

  template <typename F>
  static const VTable* inline_vtable() {
    static constexpr VTable vt{
        [](void* s, Args&&... args) -> R {
          return (*std::launder(reinterpret_cast<F*>(s)))(std::forward<Args>(args)...);
        },
        [](void* dst, void* src) noexcept {
          F* f = std::launder(reinterpret_cast<F*>(src));
          ::new (dst) F(std::move(*f));
          f->~F();
        },
        [](void* s) noexcept { std::launder(reinterpret_cast<F*>(s))->~F(); },
        /*heap=*/false};
    return &vt;
  }

  template <typename F>
  static const VTable* heap_vtable() {
    static constexpr VTable vt{
        [](void* s, Args&&... args) -> R {
          return (**std::launder(reinterpret_cast<F**>(s)))(std::forward<Args>(args)...);
        },
        [](void* dst, void* src) noexcept {
          F** p = std::launder(reinterpret_cast<F**>(src));
          ::new (dst) (F*)(*p);
        },
        [](void* s) noexcept { delete *std::launder(reinterpret_cast<F**>(s)); },
        /*heap=*/true};
    return &vt;
  }

  template <typename F>
  void emplace(F&& f) {
    using D = std::remove_cvref_t<F>;
    if constexpr (sizeof(D) <= Inline && alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (storage()) D(std::forward<F>(f));
      vt_ = inline_vtable<D>();
    } else {
      ::new (storage()) (D*)(new D(std::forward<F>(f)));
      vt_ = heap_vtable<D>();
    }
  }

  void move_from(InplaceFunction& o) noexcept {
    vt_ = o.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(storage(), o.storage());
      o.vt_ = nullptr;
    }
  }

  void* storage() { return buf_; }

  alignas(std::max_align_t) std::byte buf_[Inline];
  const VTable* vt_ = nullptr;
};

/// The engine's event callable: fits a `this` pointer plus a handful of
/// scalar captures inline; larger captures (rare on hot paths after the
/// buffer-pooling refactor) spill to the heap.
using InplaceAction = InplaceFunction<void()>;

}  // namespace nectar::sim
