#include "hw/pool.hpp"

#include "obs/metrics.hpp"

namespace nectar::hw {

BufferPool& BufferPool::payloads() {
  static thread_local BufferPool pool;
  return pool;
}

std::vector<std::uint8_t> BufferPool::acquire(std::size_t n) {
  ++acquires_;
  if (!free_.empty()) {
    ++reuses_;
    std::vector<std::uint8_t> v = std::move(free_.back());
    free_.pop_back();
    v.resize(n);  // cleared on release, so new bytes are value-initialized
    return v;
  }
  return std::vector<std::uint8_t>(n);
}

void BufferPool::release(std::vector<std::uint8_t>&& v) {
  ++releases_;
  if (free_.size() >= kMaxPooled) return;  // let it free normally
  v.clear();
  free_.push_back(std::move(v));
}

void BufferPool::register_metrics(obs::Registration& reg, const std::string& component,
                                  int node) const {
  reg.probe(node, component, "acquires",
            [this] { return static_cast<std::int64_t>(acquires()); });
  reg.probe(node, component, "reuses", [this] { return static_cast<std::int64_t>(reuses()); });
  reg.probe(node, component, "pooled", [this] { return static_cast<std::int64_t>(pooled()); });
}

}  // namespace nectar::hw
