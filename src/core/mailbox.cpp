#include "core/mailbox.hpp"

#include <cassert>
#include <stdexcept>

#include "core/cpu.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/tracer.hpp"
#include "sim/costs.hpp"

namespace nectar::core {

namespace costs = sim::costs;

namespace {
/// The processor invoking the current mailbox operation (CAB SPARC for CAB
/// threads and interrupt handlers; a host CPU when a host process operates
/// on the shared-memory mailbox directly, §3.3).
Cpu& caller() {
  Cpu* c = Cpu::current();
  if (c == nullptr) throw std::logic_error("mailbox op outside any execution context");
  return *c;
}
}  // namespace

Mailbox::Mailbox(Cpu& home_cpu, BufferHeap& heap, std::string name, MailboxAddr addr)
    : cpu_(home_cpu), heap_(heap), name_(std::move(name)), addr_(addr) {}

// Mailbox events land on the track of whichever CPU performs the operation,
// so a host-side End_Put and the CAB-side Begin_Get show up as separate
// swimlane rows of the same exchange.
void Mailbox::trace_op(Cpu& c, const char* op) const {
  obs::Tracer* t = c.tracer();
  if (obs::tracing(t)) t->instant(c.trace_track(), name_ + "." + op);
}

void Mailbox::register_metrics(obs::Registration& reg, int node) const {
  reg.probe(node, "mailbox", name_ + ".puts",
            [this] { return static_cast<std::int64_t>(puts_); });
  reg.probe(node, "mailbox", name_ + ".gets",
            [this] { return static_cast<std::int64_t>(gets_); });
  reg.probe(node, "mailbox", name_ + ".enqueues",
            [this] { return static_cast<std::int64_t>(enqueues_); });
  reg.probe(node, "mailbox", name_ + ".cache_hits",
            [this] { return static_cast<std::int64_t>(cache_hits_); });
  reg.probe(node, "mailbox", name_ + ".queued",
            [this] { return static_cast<std::int64_t>(queue_.size()); });
}

std::optional<Message> Mailbox::alloc_message(std::uint32_t size) {
  if (size <= kSmallBufSize) {
    if (cache_buf_ == 0) {
      // Lazily create the cached small buffer.
      hw::CabAddr b = heap_.alloc(kSmallBufSize);
      if (b != 0) {
        cache_buf_ = b;
        cache_free_ = true;
      }
    }
    if (cache_free_) {
      cache_free_ = false;
      ++cache_hits_;
      Message m;
      m.data = cache_buf_;
      m.len = size;
      m.block = cache_buf_;
      m.block_len = kSmallBufSize;
      m.from_cache = true;
      m.cache_owner = this;
      return m;
    }
  }
  hw::CabAddr b = heap_.alloc(size);
  if (b == 0) return std::nullopt;
  Message m;
  m.data = b;
  m.len = size;
  m.block = b;
  m.block_len = size;
  return m;
}

Message Mailbox::begin_put(std::uint32_t size) {
  Cpu& c = caller();
  if (c.in_interrupt()) throw std::logic_error("begin_put in interrupt context: use begin_put_try");
  NECTAR_TRACE(trace_op(c, "begin_put"));
  obs::CostScope scope("mailbox/begin_put");
  bool small = size <= kSmallBufSize;
  c.charge(small ? costs::kMailboxBeginPutCached : costs::kMailboxBeginPut);
  InterruptGuard g(c);
  for (;;) {
    std::optional<Message> m = alloc_message(size);
    if (m.has_value()) {
      if (!m->from_cache && small) {
        // Cache miss on a small message: the heap path costs the difference.
        c.charge(costs::kMailboxBeginPut - costs::kMailboxBeginPutCached);
      }
      return *m;
    }
    // §3.3: "Begin_Put ... blocks if no space ... rescheduled when space
    // becomes available."
    heap_.wait_for_space(c);
  }
}

std::optional<Message> Mailbox::begin_put_try(std::uint32_t size) {
  Cpu& c = caller();
  obs::CostScope scope("mailbox/begin_put");
  c.charge(size <= kSmallBufSize ? costs::kMailboxBeginPutCached : costs::kMailboxBeginPut);
  return alloc_message(size);
}

void Mailbox::publish(Message m, Cpu& c) {
  queue_.push_back(m);
  queued_bytes_ += m.len;
  ++puts_;
  if (obs::Profiler* p = c.profiler(); p != nullptr && p->enabled()) {
    p->sample_queue_depth(cpu_.name() + "/" + name_, queue_.size());
  }
  if (!readers_.empty()) {
    Thread* t = readers_.front();
    readers_.pop_front();
    c.charge(costs::kThreadWakeup);
    t->cpu().wake(t);
  }
  if (notify_hook_) notify_hook_();
  if (upcall_) {
    // §3.3: the upcall runs as a side effect of End_Put, in the publisher's
    // own context — "this effectively converts a cross-thread procedure
    // call into a local one."
    c.charge(costs::kUpcall);
    upcall_(*this);
  }
}

void Mailbox::end_put(Message m) {
  if (!m.valid()) throw std::logic_error("end_put: invalid message");
  Cpu& c = caller();
  NECTAR_TRACE(trace_op(c, "end_put"));
  obs::CostScope scope("mailbox/end_put");
  c.charge(costs::kMailboxEndPut);
  publish(m, c);
}

Message Mailbox::begin_get() {
  Cpu& c = caller();
  if (c.in_interrupt()) throw std::logic_error("begin_get in interrupt context: use begin_get_try");
  NECTAR_TRACE(trace_op(c, "begin_get"));
  obs::CostScope scope("mailbox/begin_get");
  c.charge(costs::kMailboxBeginGet);
  InterruptGuard g(c);
  while (queue_.empty()) {
    Thread* self = c.current_thread();
    if (self == nullptr) throw std::logic_error("begin_get: blocking outside a thread");
    readers_.push_back(self);
    c.block_unmasked();
  }
  Message m = queue_.front();
  queue_.pop_front();
  queued_bytes_ -= m.len;
  ++gets_;
  if (consume_hook_) consume_hook_();
  return m;
}

std::optional<Message> Mailbox::begin_get_try() {
  Cpu& c = caller();
  obs::CostScope scope("mailbox/begin_get");
  c.charge(costs::kMailboxBeginGet);
  if (queue_.empty()) return std::nullopt;
  Message m = queue_.front();
  queue_.pop_front();
  queued_bytes_ -= m.len;
  ++gets_;
  if (consume_hook_) consume_hook_();
  return m;
}

void Mailbox::release_storage(const Message& m) {
  if (m.from_cache) {
    assert(m.cache_owner != nullptr);
    m.cache_owner->cache_free_ = true;
    return;
  }
  heap_.free(m.block);
  heap_.notify_space();
}

void Mailbox::end_get(Message m) {
  if (!m.valid()) throw std::logic_error("end_get: invalid message");
  Cpu& c = caller();
  NECTAR_TRACE(trace_op(c, "end_get"));
  obs::CostScope scope("mailbox/end_get");
  c.charge(costs::kMailboxEndGet);
  release_storage(m);
}

void Mailbox::enqueue(Message m, Mailbox& dst) {
  if (!m.valid()) throw std::logic_error("enqueue: invalid message");
  Cpu& c = caller();
  NECTAR_TRACE(trace_op(c, "enqueue"));
  obs::CostScope scope("mailbox/enqueue");
  // §3.3: Enqueue "moves the message without copying the data ... by simply
  // moving pointers."
  c.charge(costs::kMailboxEnqueue);
  ++enqueues_;
  dst.publish(m, c);
}

Message Mailbox::adjust_prefix(Message m, std::uint32_t n) {
  if (n > m.len) throw std::logic_error("adjust_prefix: longer than message");
  obs::CostScope scope("mailbox/adjust");
  caller().charge(costs::kMailboxAdjust);
  m.data += n;
  m.len -= n;
  return m;
}

Message Mailbox::adjust_suffix(Message m, std::uint32_t n) {
  if (n > m.len) throw std::logic_error("adjust_suffix: longer than message");
  obs::CostScope scope("mailbox/adjust");
  caller().charge(costs::kMailboxAdjust);
  m.len -= n;
  return m;
}

}  // namespace nectar::core
