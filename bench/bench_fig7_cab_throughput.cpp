// Figure 7 (paper §6.2): CAB-to-CAB throughput vs message size (16 B .. 8 KB)
// for TCP/IP, TCP without checksums, and the Nectar reliable message protocol
// (RMP). Paper: per-packet overhead dominates below ~256 B (throughput
// doubles with message size); RMP reaches ~90 Mbit/s at 8 KB; the TCP-vs-RMP
// gap is "mostly due to the cost of doing TCP checksums in software"; TCP
// without checksums is almost as fast as RMP.

#include "common.hpp"

namespace nectar::bench {
namespace {

int messages_for(std::size_t size) {
  // Enough messages for steady state without hour-long event counts.
  if (size <= 64) return 1500;
  if (size <= 1024) return 800;
  return 400;
}

/// Streaming RMP transfer between two CAB threads; returns Mbit/s.
double rmp_throughput(std::size_t size) {
  net::NectarSystem sys(2);
  const int n = messages_for(size);
  core::Mailbox& sink = sys.runtime(1).create_mailbox("sink");
  sim::SimTime t0 = -1, t1 = -1;
  sys.runtime(1).fork_system("recv", [&] {
    for (int i = 0; i < n; ++i) {
      core::Message m = sink.begin_get();
      if (i == 0) t0 = sys.engine().now() - sim::usec(80);  // approx first-message cost
      sink.end_get(m);
    }
    t1 = sys.engine().now();
  });
  sys.runtime(0).fork_system("send", [&] {
    core::Mailbox& scratch = sys.runtime(0).create_mailbox("scratch");
    for (int i = 0; i < n; ++i) {
      // Pace against CAB buffer memory: at most 16 messages queued.
      sys.stack(0).rmp.wait_queue_below(1, 16);
      core::Message m = scratch.begin_put(static_cast<std::uint32_t>(size));
      sys.stack(0).rmp.send(sink.address(), m);
    }
  });
  sys.engine().run();
  if (t1 <= t0) return 0;
  return mbit_per_sec(static_cast<std::uint64_t>(n) * size, t1 - std::max<sim::SimTime>(t0, 0));
}

/// Streaming TCP transfer between two CAB threads; returns Mbit/s.
double tcp_throughput(std::size_t size, bool checksum) {
  proto::TcpConfig cfg;
  cfg.software_checksum = checksum;
  net::NectarSystem sys(2, false, cfg);
  const int n = messages_for(size);
  const std::uint64_t total = static_cast<std::uint64_t>(n) * size;
  sim::SimTime t0 = -1, t1 = -1;
  sys.runtime(1).fork_app("server", [&] {
    proto::TcpConnection* c = sys.stack(1).tcp.listen(80);
    sys.stack(1).tcp.wait_established(c);
    std::uint64_t got = 0;
    while (got < total) {
      core::Message m = c->receive_mailbox().begin_get();
      if (t0 < 0) t0 = sys.engine().now();
      got += m.len;
      c->receive_mailbox().end_get(m);
    }
    t1 = sys.engine().now();
  });
  sys.runtime(0).fork_app("client", [&] {
    sys.runtime(0).cpu().sleep_for(sim::usec(100));
    proto::TcpConnection* c = sys.stack(0).tcp.connect(5000, proto::ip_of_node(1), 80);
    sys.stack(0).tcp.wait_established(c);
    core::Mailbox& scratch = sys.runtime(0).create_mailbox("scratch");
    // One user message per send request: small messages become small
    // segments (no coalescing across messages), reproducing the per-packet
    // regime of the figure's left half.
    for (int i = 0; i < n; ++i) {
      // Pace against CAB buffer memory: at most 128 KB queued-but-unacked.
      sys.stack(0).tcp.wait_send_window(c, 128 * 1024);
      core::Message m = scratch.begin_put(static_cast<std::uint32_t>(size));
      sys.stack(0).tcp.send(c, m);
    }
  });
  sys.engine().run();
  if (t1 <= t0 || t0 < 0) return 0;
  return mbit_per_sec(total, t1 - t0);
}

}  // namespace
}  // namespace nectar::bench

int main(int argc, char** argv) {
  using namespace nectar::bench;
  BenchOptions opts = parse_options(argc, argv);
  print_header("Figure 7: CAB-to-CAB throughput vs message size (Mbit/s)");

  nectar::obs::RunReport report("fig7-cab-throughput");
  std::printf("%8s %10s %14s %10s %10s\n", "size", "TCP/IP", "TCP w/o cksum", "RMP",
              "RMP x2?");
  double prev_rmp = 0;
  for (std::size_t size : {16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192}) {
    double tcp = tcp_throughput(size, true);
    double tcp_nock = tcp_throughput(size, false);
    double rmp = rmp_throughput(size);
    std::printf("%8zu %10.2f %14.2f %10.2f %9.2fx\n", size, tcp, tcp_nock, rmp,
                prev_rmp > 0 ? rmp / prev_rmp : 0.0);
    prev_rmp = rmp;
    std::string sz = std::to_string(size);
    report.add("tcp_" + sz, tcp, "Mbit/s");
    report.add("tcp_nocksum_" + sz, tcp_nock, "Mbit/s");
    report.add("rmp_" + sz, rmp, "Mbit/s");
  }
  std::printf(
      "\nShape checks (paper): RMP ~90 Mbit/s at 8 KB; TCP w/o checksum almost\n"
      "matches RMP; TCP/IP trails because of software checksums; below 256 B\n"
      "throughput roughly doubles with message size (per-packet overhead).\n");
  finish_report(opts, report);
  return 0;
}
