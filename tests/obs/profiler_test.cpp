// Cycle-attribution profiler: scope mechanics, the attribution invariant
// (folded nanoseconds sum exactly to CPU busy time), and byte-determinism
// of the folded-stack artifact.

#include <gtest/gtest.h>

#include "net/system.hpp"
#include "obs/profiler.hpp"

namespace nectar::obs {
namespace {

TEST(ProfilerTest, DisabledScopesAreFree) {
  Profiler p;
  int ctx;
  Profiler::set_context(&ctx);
  {
    CostScope a("alpha");  // no enabled profiler anywhere: must not push
  }
  Profiler::set_context(nullptr);
  EXPECT_EQ(p.samples(), 0u);
  EXPECT_EQ(p.folded(), "");
}

TEST(ProfilerTest, FoldedKeysFollowScopeNesting) {
  Profiler p;
  p.set_enabled(true);
  int ctx;
  Profiler::set_context(&ctx);
  {
    CostScope a("alpha");
    p.record("cpu0", "thr", 5);
    {
      CostScope b("beta");
      p.record("cpu0", "thr", 7);
    }
    p.record("cpu0", "thr", 1);
  }
  p.record("cpu0", "thr", 2);  // outside any scope
  Profiler::set_context(nullptr);

  std::string f = p.folded();
  EXPECT_NE(f.find("cpu0;thr;alpha 6\n"), std::string::npos) << f;
  EXPECT_NE(f.find("cpu0;thr;alpha;beta 7\n"), std::string::npos) << f;
  EXPECT_NE(f.find("cpu0;thr 2\n"), std::string::npos) << f;
  EXPECT_EQ(p.attributed_ns(), 15);
  EXPECT_EQ(p.attributed_ns("cpu0"), 15);
  EXPECT_EQ(p.attributed_ns("cpu1"), 0);

  auto domains = p.domain_totals();
  EXPECT_EQ(domains.at("alpha"), 6);
  EXPECT_EQ(domains.at("alpha;beta"), 7);
  EXPECT_EQ(domains.at("(unattributed)"), 2);
}

TEST(ProfilerTest, ScopesAreIsolatedPerContext) {
  Profiler p;
  p.set_enabled(true);
  int c1, c2;
  Profiler::set_context(&c1);
  auto* held = new CostScope("one");  // stays open on c1 across the "switch"
  Profiler::set_context(&c2);
  p.record("cpu", "t", 3);  // c2 never entered a scope
  Profiler::set_context(&c1);
  p.record("cpu", "t", 4);  // back on c1: still inside "one"
  delete held;
  Profiler::set_context(nullptr);

  std::string f = p.folded();
  EXPECT_NE(f.find("cpu;t 3\n"), std::string::npos) << f;
  EXPECT_NE(f.find("cpu;t;one 4\n"), std::string::npos) << f;
}

TEST(ProfilerTest, ReenableClearsStaleStacks) {
  Profiler p;
  p.set_enabled(true);
  int ctx;
  Profiler::set_context(&ctx);
  auto* leaked = new CostScope("stale");
  p.set_enabled(false);
  p.set_enabled(true);  // must clear the stack the leaked scope pushed
  p.record("cpu", "t", 9);
  delete leaked;  // must not underflow the (cleared) stack
  Profiler::set_context(nullptr);
  EXPECT_NE(p.folded().find("cpu;t 9\n"), std::string::npos) << p.folded();
}

// --- full-system attribution --------------------------------------------------

/// A little deterministic UDP traffic between two CABs.
void run_udp_traffic(net::NectarSystem& sys) {
  core::Mailbox& rx = sys.runtime(1).create_mailbox("sink");
  sys.stack(1).udp.bind(7, &rx);
  sys.runtime(1).fork_system("server", [&] {
    for (;;) {
      core::Message m = rx.begin_get();
      rx.end_get(m);
    }
  });
  sys.runtime(0).fork_app("client", [&] {
    core::Mailbox& scratch = sys.runtime(0).create_mailbox("scratch");
    for (int i = 0; i < 8; ++i) {
      core::Message m = scratch.begin_put(256);
      sys.stack(0).udp.send(9000, proto::ip_of_node(1), 7, m);
      sys.runtime(0).cpu().sleep_for(sim::usec(200));
    }
  });
  sys.engine().run();
}

TEST(ProfilerTest, AttributionSumEqualsBusyTime) {
  net::NectarSystem sys(2);
  sys.profiler().set_enabled(true);
  run_udp_traffic(sys);

  sim::SimTime total = 0;
  for (int i = 0; i < 2; ++i) {
    core::Cpu& cpu = sys.runtime(i).cpu();
    EXPECT_GT(cpu.busy_time(), 0) << "cab " << i;
    // The invariant: attribution happens at the single busy-time accrual
    // point, so the folded entries for a CPU sum exactly to its busy time.
    EXPECT_EQ(sys.profiler().attributed_ns(cpu.name()), cpu.busy_time()) << "cab " << i;
    total += cpu.busy_time();
  }
  EXPECT_EQ(sys.profiler().attributed_ns(), total);

  // The stack actually attributed into the protocol domains. Scopes nest
  // (udp/input runs inside ip/input inside dl/recv), so domain keys are
  // paths; match on the component.
  auto domains = sys.profiler().domain_totals();
  auto has_domain = [&domains](const char* needle) {
    for (const auto& [path, ns] : domains) {
      if (path.find(needle) != std::string::npos && ns > 0) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_domain("udp/output"));
  EXPECT_TRUE(has_domain("udp/input"));
  EXPECT_TRUE(has_domain("dl/send"));
  EXPECT_TRUE(has_domain("irq/dispatch"));
}

TEST(ProfilerTest, SummaryCarriesGaugesAndWaits) {
  net::NectarSystem sys(2);
  sys.profiler().set_enabled(true);
  run_udp_traffic(sys);
  json::Value s = sys.profiler().summary();
  ASSERT_TRUE(s.has("samples"));
  EXPECT_GT(s.find("samples")->as_int(), 0);
  ASSERT_TRUE(s.has("cpus"));
  EXPECT_TRUE(s.has("run_queue_wait"));
  EXPECT_TRUE(s.has("queue_depth"));
}

TEST(ProfilerTest, FoldedOutputIsDeterministic) {
  auto run = [] {
    net::NectarSystem sys(2);
    sys.profiler().set_enabled(true);
    run_udp_traffic(sys);
    return sys.profiler().folded();
  };
  std::string a = run();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, run());
}

TEST(ProfilerTest, DisabledProfilerDoesNotChangeSimulation) {
  auto busy = [](bool profiled) {
    net::NectarSystem sys(2);
    if (profiled) sys.profiler().set_enabled(true);
    run_udp_traffic(sys);
    return std::pair<sim::SimTime, sim::SimTime>(sys.runtime(0).cpu().busy_time(),
                                                 sys.engine().now());
  };
  // Profiling charges zero simulated time: busy time and the clock are
  // bit-identical with and without it.
  EXPECT_EQ(busy(false), busy(true));
}

}  // namespace
}  // namespace nectar::obs
