#include "core/thread.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/cpu.hpp"
#include "core/priorities.hpp"

namespace nectar::core {
namespace {

TEST(Mutex, ProvidesMutualExclusion) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  Mutex m(cpu);
  int in_critical = 0;
  int max_in_critical = 0;
  for (int i = 0; i < 4; ++i) {
    cpu.fork("t", kSystemPriority, [&] {
      for (int k = 0; k < 3; ++k) {
        LockGuard g(m);
        ++in_critical;
        max_in_critical = std::max(max_in_critical, in_critical);
        cpu.charge(sim::usec(30));  // preemption point inside the section
        --in_critical;
      }
    });
  }
  e.run();
  EXPECT_EQ(max_in_critical, 1);
}

TEST(Mutex, TryLockFailsWhenHeld) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  Mutex m(cpu);
  std::vector<bool> results;
  cpu.fork("holder", kSystemPriority, [&] {
    m.lock();
    cpu.sleep_until(sim::usec(500));  // holds the lock while blocked
    m.unlock();
  });
  cpu.fork("prober", kSystemPriority, [&] {
    cpu.sleep_until(sim::usec(100));
    results.push_back(m.try_lock());  // holder still has it
    cpu.sleep_until(sim::usec(900));
    results.push_back(m.try_lock());  // free now
    m.unlock();
  });
  e.run();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[0]);
  EXPECT_TRUE(results[1]);
}

TEST(Mutex, FifoHandOff) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  Mutex m(cpu);
  std::vector<int> order;
  cpu.fork("holder", kSystemPriority, [&] {
    m.lock();
    cpu.charge(sim::usec(100));
    m.unlock();
  });
  for (int i = 0; i < 3; ++i) {
    cpu.fork("w" + std::to_string(i), kSystemPriority, [&, i] {
      m.lock();
      order.push_back(i);
      m.unlock();
    });
  }
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(CondVar, SignalWakesOneWaiter) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  Mutex m(cpu);
  CondVar cv(cpu);
  int woken = 0;
  for (int i = 0; i < 3; ++i) {
    cpu.fork("waiter", kSystemPriority, [&] {
      LockGuard g(m);
      cv.wait(m);
      ++woken;
    });
  }
  cpu.fork("signaler", kAppPriority, [&] {
    LockGuard g(m);
    cv.signal();
  });
  e.run_until(sim::msec(10));
  EXPECT_EQ(woken, 1);
}

TEST(CondVar, BroadcastWakesAll) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  Mutex m(cpu);
  CondVar cv(cpu);
  int woken = 0;
  for (int i = 0; i < 5; ++i) {
    cpu.fork("waiter", kSystemPriority, [&] {
      LockGuard g(m);
      cv.wait(m);
      ++woken;
    });
  }
  cpu.fork("caster", kAppPriority, [&] {
    LockGuard g(m);
    cv.broadcast();
  });
  e.run();
  EXPECT_EQ(woken, 5);
}

TEST(CondVar, ProducerConsumerPipeline) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  Mutex m(cpu);
  CondVar nonempty(cpu);
  std::vector<int> queue;
  std::vector<int> consumed;
  constexpr int kItems = 20;

  cpu.fork("consumer", kSystemPriority, [&] {
    for (int i = 0; i < kItems; ++i) {
      LockGuard g(m);
      while (queue.empty()) nonempty.wait(m);
      consumed.push_back(queue.front());
      queue.erase(queue.begin());
    }
  });
  cpu.fork("producer", kSystemPriority, [&] {
    for (int i = 0; i < kItems; ++i) {
      cpu.charge(sim::usec(7));
      LockGuard g(m);
      queue.push_back(i);
      nonempty.signal();
    }
  });
  e.run();
  ASSERT_EQ(consumed.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(consumed[static_cast<std::size_t>(i)], i);
}

TEST(CondVar, NoLostWakeupAcrossUnlockWindow) {
  // The signaler acquires the mutex the instant the waiter's wait() releases
  // it; the waiter must still see the signal.
  sim::Engine e;
  Cpu cpu(e, "cpu");
  Mutex m(cpu);
  CondVar cv(cpu);
  bool got_signal = false;
  cpu.fork("waiter", kSystemPriority, [&] {
    LockGuard g(m);
    cv.wait(m);
    got_signal = true;
  });
  cpu.fork("signaler", kSystemPriority, [&] {
    LockGuard g(m);
    cv.signal();
  });
  e.run();
  EXPECT_TRUE(got_signal);
}

TEST(CondVar, SignalWithNoWaitersIsLostByDesign) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  Mutex m(cpu);
  CondVar cv(cpu);
  bool woke = false;
  cpu.fork("signaler", kSystemPriority, [&] {
    LockGuard g(m);
    cv.signal();  // nobody waiting: signal evaporates (condition variable
                  // semantics, not a semaphore)
  });
  cpu.fork("late-waiter", kAppPriority, [&] {
    LockGuard g(m);
    while (!woke) {
      cv.wait(m);
      woke = true;  // only reached if something signals again — it won't
    }
  });
  e.run_until(sim::msec(5));
  EXPECT_FALSE(woke);
}

}  // namespace
}  // namespace nectar::core
