#pragma once

// PathDb: k-shortest edge-disjoint source routes per CAB pair.
//
// The BFS in net::Network::install_routes computes ONE path per pair; every
// fault on that path blackholes the pair for the rest of the run. The PathDb
// computes up to k edge-disjoint alternatives over the HUB trunk graph (the
// ECMP set the control plane fails over across), interned as hw::RouteRefs.
//
// Two properties the health prober depends on, both by construction:
//
//  - Determinism: tie-breaks among equal-cost trunks come from a rotation of
//    the trunk scan order seeded per unordered pair, so the same (topology,
//    seed) always yields the same path sets, and different pairs spread
//    across parallel trunks instead of all picking trunk 0.
//  - Reverse symmetry: path i of (b -> a) is the exact trunk-wise reverse of
//    path i of (a -> b). A probe reply can therefore travel the reverse of
//    the probed path — health is measured per path round trip, and a fault
//    on one path never poisons the probe results of another.

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "hw/pool.hpp"
#include "net/topology.hpp"

namespace nectar::route {

class PathDb {
 public:
  /// Computes the path sets for every ordered CAB pair of `net` eagerly
  /// (the topology is static; n^2 * k BFS at build time, O(log) lookups
  /// after). `k` caps the ECMP set size; same-HUB pairs always have
  /// exactly one path (the destination port byte).
  PathDb(const net::Network& net, int k, std::uint64_t seed);

  int k() const { return k_; }
  int node_count() const { return nodes_; }

  /// Number of edge-disjoint paths found for src -> dst (>= 1 for any
  /// connected pair; the first is always a shortest path).
  int path_count(int src, int dst) const;

  /// The interned route bytes for path `idx` of src -> dst.
  const hw::RouteRef& path(int src, int dst, int idx) const;

  /// The ECMP member new traffic for src -> dst should prefer: a seeded
  /// hash over the ordered pair, so load spreads across the set while a
  /// given pair's choice is stable across runs.
  int preferred(int src, int dst) const;

 private:
  void build_pair(const net::Network& net, int a, int b);

  int nodes_;
  int k_;
  std::uint64_t seed_;
  std::map<std::pair<int, int>, std::vector<hw::RouteRef>> paths_;
};

}  // namespace nectar::route
