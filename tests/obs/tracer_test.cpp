#include "obs/tracer.hpp"

#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "sim/engine.hpp"

namespace nectar::obs {
namespace {

TEST(Tracer, DisabledByDefaultRecordsNothing) {
  sim::Engine e;
  Tracer t(e);
  int tr = t.track("node0", "cab.cpu");
  t.begin(tr, "work");
  t.end(tr, "work");
  t.instant(tr, "mark");
  EXPECT_TRUE(t.events().empty());
  EXPECT_FALSE(tracing(&t));
  EXPECT_FALSE(tracing(nullptr));
  t.set_enabled(true);
  EXPECT_TRUE(tracing(&t));
}

TEST(Tracer, TrackIdsAssignedInRegistrationOrder) {
  sim::Engine e;
  Tracer t(e);
  int a = t.track("node0", "cab.cpu");
  int b = t.track("node0", "vme");
  int c = t.track("node1", "cab.cpu");
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(c, 2);
  // Re-registering returns the same id.
  EXPECT_EQ(t.track("node0", "vme"), b);
  ASSERT_EQ(t.tracks().size(), 3u);
  // Distinct processes get distinct pids; rows within one process get
  // consecutive tids.
  EXPECT_EQ(t.tracks()[0].pid, t.tracks()[1].pid);
  EXPECT_NE(t.tracks()[0].pid, t.tracks()[2].pid);
  EXPECT_EQ(t.tracks()[0].tid, 1);
  EXPECT_EQ(t.tracks()[1].tid, 2);
}

TEST(Tracer, EventsCarrySimulatedTimestamps) {
  sim::Engine e;
  Tracer t(e);
  t.set_enabled(true);
  int tr = t.track("node0", "cab.cpu");
  e.schedule_at(1500, [&] { t.begin(tr, "span"); });
  e.schedule_at(4750, [&] { t.end(tr, "span"); });
  e.run();
  t.instant_at(tr, "late", 9001);
  ASSERT_EQ(t.events().size(), 3u);
  EXPECT_EQ(t.events()[0].ts, 1500);
  EXPECT_EQ(t.events()[1].ts, 4750);
  EXPECT_EQ(t.events()[2].ts, 9001);
  const Tracer::Event* found = t.find("span");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->type, Tracer::EventType::Begin);
  EXPECT_EQ(t.find("missing"), nullptr);
}

TEST(Tracer, ChromeJsonRoundTrip) {
  sim::Engine e;
  Tracer t(e);
  t.set_enabled(true);
  int cpu = t.track("node0", "cab.cpu");
  int wire = t.track("node0", "wire");
  t.begin_at(cpu, "thread \"main\"", 1000);  // quote needs escaping
  t.instant_at(cpu, "mark", 1500);
  t.counter(wire, "depth", 3);
  t.end_at(cpu, "thread \"main\"", 2750);

  json::Value doc = json::Value::parse(t.chrome_json());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("displayTimeUnit")->as_string(), "ns");
  const json::Value* evs = doc.find("traceEvents");
  ASSERT_NE(evs, nullptr);
  ASSERT_TRUE(evs->is_array());

  // Leading metadata names the pid/tid plane: one process_name per process,
  // one thread_name per track.
  ASSERT_GE(evs->size(), 3u + 4u);
  EXPECT_EQ(evs->at(0).find("ph")->as_string(), "M");
  EXPECT_EQ(evs->at(0).find("name")->as_string(), "process_name");
  EXPECT_EQ(evs->at(0).find("args")->find("name")->as_string(), "node0");
  EXPECT_EQ(evs->at(1).find("name")->as_string(), "thread_name");
  EXPECT_EQ(evs->at(1).find("args")->find("name")->as_string(), "cab.cpu");
  EXPECT_EQ(evs->at(2).find("args")->find("name")->as_string(), "wire");

  // Payload events: ph/ts/pid/tid survive the round trip. ts is in
  // microseconds (1000 ns -> 1.0 us).
  const json::Value& b = evs->at(3);
  EXPECT_EQ(b.find("ph")->as_string(), "B");
  EXPECT_EQ(b.find("name")->as_string(), "thread \"main\"");
  EXPECT_DOUBLE_EQ(b.find("ts")->as_double(), 1.0);
  EXPECT_EQ(b.find("pid")->as_int(), 1);
  EXPECT_EQ(b.find("tid")->as_int(), 1);

  const json::Value& i = evs->at(4);
  EXPECT_EQ(i.find("ph")->as_string(), "i");
  EXPECT_EQ(i.find("s")->as_string(), "t");
  EXPECT_DOUBLE_EQ(i.find("ts")->as_double(), 1.5);

  const json::Value& c = evs->at(5);
  EXPECT_EQ(c.find("ph")->as_string(), "C");
  EXPECT_EQ(c.find("tid")->as_int(), 2);  // wire is the second node0 row
  EXPECT_EQ(c.find("args")->find("value")->as_int(), 3);

  const json::Value& end = evs->at(6);
  EXPECT_EQ(end.find("ph")->as_string(), "E");
  EXPECT_DOUBLE_EQ(end.find("ts")->as_double(), 2.75);
}

// Regression lock on string escaping: track and event names with every
// JSON-hostile character class (quotes, backslashes, control bytes,
// newlines/tabs) must survive export -> strict parse unchanged. A missed
// escape either throws in parse or comes back mangled.
TEST(Tracer, ChromeExportEscapesHostileNames) {
  const std::string hostile = "q\"uote b\\ackslash nl\n tab\t cr\r ctl\x01\x1f end";
  sim::Engine e;
  Tracer t(e);
  t.set_enabled(true);
  int tr = t.track("node\"0\\", "cpu\nrow");
  t.begin_at(tr, hostile, 100);
  t.end_at(tr, hostile, 200);

  json::Value doc = json::Value::parse(t.chrome_json());
  const json::Value* evs = doc.find("traceEvents");
  ASSERT_NE(evs, nullptr);
  // Metadata rows carry the hostile track names.
  EXPECT_EQ(evs->at(0).find("args")->find("name")->as_string(), "node\"0\\");
  EXPECT_EQ(evs->at(1).find("args")->find("name")->as_string(), "cpu\nrow");
  // Payload events carry the hostile span name.
  EXPECT_EQ(evs->at(2).find("name")->as_string(), hostile);
  EXPECT_EQ(evs->at(3).find("name")->as_string(), hostile);
}

// A run that stops mid-flight (scenario duration horizon with server
// threads scheduled in) leaves Begin spans open; the export must close
// them LIFO at the last recorded timestamp so B/E pairs balance.
TEST(Tracer, ChromeExportClosesDanglingSpans) {
  sim::Engine e;
  Tracer t(e);
  t.set_enabled(true);
  int cpu = t.track("node0", "cab.cpu");
  t.begin_at(cpu, "outer", 100);
  t.begin_at(cpu, "inner", 200);
  t.instant_at(cpu, "tick", 900);  // last event sets the closing timestamp

  json::Value doc = json::Value::parse(t.chrome_json());
  const json::Value* evs = doc.find("traceEvents");
  ASSERT_NE(evs, nullptr);
  ASSERT_EQ(evs->size(), 2u + 3u + 2u);  // metadata + payload + synthetic ends
  const json::Value& e1 = evs->at(5);
  const json::Value& e2 = evs->at(6);
  EXPECT_EQ(e1.find("ph")->as_string(), "E");
  EXPECT_EQ(e1.find("name")->as_string(), "inner");  // LIFO: inner closes first
  EXPECT_DOUBLE_EQ(e1.find("ts")->as_double(), 0.9);
  EXPECT_EQ(e2.find("ph")->as_string(), "E");
  EXPECT_EQ(e2.find("name")->as_string(), "outer");
  EXPECT_DOUBLE_EQ(e2.find("ts")->as_double(), 0.9);
}

TEST(Tracer, ChromeExportIsByteDeterministic) {
  auto build = [](sim::Engine& e) {
    Tracer t(e);
    t.set_enabled(true);
    int cpu = t.track("node1", "host.cpu");
    t.begin_at(cpu, "op", 10);
    t.end_at(cpu, "op", 30);
    return t.chrome_json();
  };
  sim::Engine e1, e2;
  EXPECT_EQ(build(e1), build(e2));
}

}  // namespace
}  // namespace nectar::obs
