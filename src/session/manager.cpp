#include "session/manager.hpp"

#include <algorithm>
#include <utility>

#include "core/cpu.hpp"
#include "sim/costs.hpp"

namespace nectar::session {

namespace costs = sim::costs;

const char* channel_state_name(ChannelState s) {
  switch (s) {
    case ChannelState::Opening: return "opening";
    case ChannelState::Open: return "open";
    case ChannelState::Draining: return "draining";
    case ChannelState::CloseSent: return "close_sent";
    case ChannelState::Closed: return "closed";
    case ChannelState::Failed: return "failed";
    case ChannelState::Refused: return "refused";
  }
  return "?";
}

SessionManager::SessionManager(core::CabRuntime& rt, int node, nproto::Rmp* rmp, proto::Tcp* tcp,
                               SessionConfig cfg)
    : rt_(rt),
      node_(node),
      rmp_(rmp),
      tcp_(tcp),
      cfg_(cfg),
      scratch_(rt.create_mailbox("session-scratch")),
      metrics_reg_(rt.metrics()) {
  metrics_reg_.probe(node_, "session", "channels_failed",
                     [this] { return static_cast<std::int64_t>(failed_); });
  metrics_reg_.probe(node_, "session", "channels_refused",
                     [this] { return static_cast<std::int64_t>(refused_); });
  metrics_reg_.probe(node_, "session", "frames_sent",
                     [this] { return static_cast<std::int64_t>(frames_sent_); });
  metrics_reg_.probe(node_, "session", "frames_delivered",
                     [this] { return static_cast<std::int64_t>(frames_delivered_); });
  metrics_reg_.probe(node_, "session", "credit_stalls",
                     [this] { return static_cast<std::int64_t>(credit_stalls_); });
  metrics_reg_.probe(node_, "session", "trunk_failures",
                     [this] { return static_cast<std::int64_t>(trunk_failures_); });
}

// --- trunks -----------------------------------------------------------------

int SessionManager::add_rmp_trunk(int peer_node) {
  int idx = static_cast<int>(trunks_.size());
  trunks_.push_back(std::make_unique<Trunk>());
  Trunk& t = *trunks_.back();
  t.proto = TrunkProto::Rmp;
  t.peer = peer_node;
  t.rx = &rt_.create_mailbox("session-trunk" + std::to_string(idx));
  std::string pfx = "trunk" + std::to_string(idx) + ".";
  Trunk* tp = &t;
  metrics_reg_.probe(node_, "session", pfx + "channels", [tp] {
    return static_cast<std::int64_t>(tp->outbound_live + tp->inbound_live);
  });
  metrics_reg_.probe(node_, "session", pfx + "credit_stalls",
                     [tp] { return static_cast<std::int64_t>(tp->credit_stalls); });
  metrics_reg_.probe(node_, "session", pfx + "tx_msgs",
                     [tp] { return static_cast<std::int64_t>(tp->tx_msgs); });
  metrics_reg_.probe(node_, "session", pfx + "tx_frames",
                     [tp] { return static_cast<std::int64_t>(tp->tx_frames); });
  return idx;
}

core::MailboxAddr SessionManager::trunk_local_address(int trunk) const {
  return trunk_at(trunk).rx->address();
}

void SessionManager::connect_rmp_trunk(int trunk, core::MailboxAddr peer_rx) {
  Trunk& t = trunk_at(trunk);
  t.peer_addr = peer_rx;
  t.connected = true;
  start_trunk_threads(trunk);
}

std::pair<int, int> SessionManager::connect_rmp_pair(SessionManager& a, SessionManager& b) {
  int ta = a.add_rmp_trunk(b.node());
  int tb = b.add_rmp_trunk(a.node());
  a.connect_rmp_trunk(ta, b.trunk_local_address(tb));
  b.connect_rmp_trunk(tb, a.trunk_local_address(ta));
  return {ta, tb};
}

int SessionManager::add_tcp_trunk(proto::TcpConnection* conn, int peer_node) {
  int idx = static_cast<int>(trunks_.size());
  trunks_.push_back(std::make_unique<Trunk>());
  Trunk& t = *trunks_.back();
  t.proto = TrunkProto::Tcp;
  t.peer = peer_node;
  t.conn = conn;
  t.connected = true;
  start_trunk_threads(idx);
  return idx;
}

int SessionManager::trunk_peer(int trunk) const { return trunk_at(trunk).peer; }
bool SessionManager::trunk_failed(int trunk) const { return trunk_at(trunk).failed; }
std::uint32_t SessionManager::outbound_live(int trunk) const { return trunk_at(trunk).outbound_live; }
std::uint32_t SessionManager::inbound_live(int trunk) const { return trunk_at(trunk).inbound_live; }
std::uint64_t SessionManager::trunk_tx_msgs(int trunk) const { return trunk_at(trunk).tx_msgs; }
std::uint64_t SessionManager::trunk_tx_frames(int trunk) const { return trunk_at(trunk).tx_frames; }
std::uint64_t SessionManager::trunk_tx_fast(int trunk) const { return trunk_at(trunk).tx_fast; }
std::uint64_t SessionManager::trunk_credit_stalls(int trunk) const {
  return trunk_at(trunk).credit_stalls;
}

void SessionManager::start_trunk_threads(int trunk) {
  rt_.fork_system("session-tx" + std::to_string(trunk), [this, trunk] { pump_loop(trunk); });
  rt_.fork_system("session-rx" + std::to_string(trunk), [this, trunk] { reader_loop(trunk); });
}

// --- channel lifecycle (initiator side) -------------------------------------

SessionManager::ChannelHandle SessionManager::open_channel(int trunk, std::uint8_t priority,
                                                           std::uint8_t weight) {
  core::Cpu& cpu = rt_.cpu();
  cpu.charge(costs::kSessionOpen);
  core::InterruptGuard g(cpu);
  Trunk& t = trunk_at(trunk);
  if (t.failed) {
    ++refused_;
    return kNoHandle;
  }
  std::uint16_t id;
  if (!t.free_ids.empty()) {
    id = t.free_ids.back();
    t.free_ids.pop_back();
  } else {
    if (t.next_id > 0xffff) {
      ++refused_;
      return kNoHandle;  // 16-bit id space exhausted on this trunk
    }
    id = static_cast<std::uint16_t>(t.next_id++);
    t.gen_of.push_back(0);
    t.handle_of.push_back(kNoHandle);
  }
  ChannelHandle h = static_cast<ChannelHandle>(channels_.size());
  SendChannel c;
  c.trunk = trunk;
  c.id = id;
  c.gen = t.gen_of[id];
  c.priority = priority;
  c.weight = weight == 0 ? 1 : weight;
  channels_.push_back(std::move(c));
  t.handle_of[id] = h;
  ++t.outbound_live;
  queue_control(t, FrameHeader{id, t.gen_of[id], FrameType::Open,
                               FrameHeader::pack_open_params(priority, weight), 0, 0});
  wake_pumper(t);
  return h;
}

SendResult SessionManager::try_send(ChannelHandle h, std::span<const std::uint8_t> payload) {
  core::Cpu& cpu = rt_.cpu();
  cpu.charge(costs::kSessionStage);
  core::InterruptGuard g(cpu);
  SendChannel& c = chan(h);
  switch (c.st) {
    case ChannelState::Opening:
    case ChannelState::Open:
      break;
    case ChannelState::Failed:
    case ChannelState::Refused:
      return SendResult::Failed;
    default:
      return SendResult::NotOpen;
  }
  if (c.pending.size() - c.pend_head >= cfg_.send_window) return SendResult::Backpressure;
  Staged s;
  s.bytes.assign(payload.begin(), payload.end());
  c.pending.push_back(std::move(s));
  Trunk& t = trunk_at(c.trunk);
  if (c.st == ChannelState::Open) {
    if (c.credit == 0) {
      if (!c.stall_counted) {
        c.stall_counted = true;
        ++credit_stalls_;
        ++t.credit_stalls;
      }
    } else {
      enqueue_ready(t, h);
      wake_pumper(t);
    }
  }
  return SendResult::Ok;
}

void SessionManager::close_channel(ChannelHandle h) {
  core::Cpu& cpu = rt_.cpu();
  core::InterruptGuard g(cpu);
  SendChannel& c = chan(h);
  if (c.st != ChannelState::Opening && c.st != ChannelState::Open) return;
  Staged s;
  s.is_close = true;
  c.pending.push_back(std::move(s));
  ChannelState prev = c.st;
  c.st = ChannelState::Draining;
  if (prev == ChannelState::Open) {
    Trunk& t = trunk_at(c.trunk);
    enqueue_ready(t, h);
    wake_pumper(t);
  }
}

ChannelState SessionManager::state(ChannelHandle h) const { return chan(h).st; }
std::uint32_t SessionManager::credit(ChannelHandle h) const { return chan(h).credit; }
std::uint16_t SessionManager::wire_id(ChannelHandle h) const { return chan(h).id; }
std::size_t SessionManager::staged(ChannelHandle h) const {
  const SendChannel& c = chan(h);
  return c.pending.size() - c.pend_head;
}

void SessionManager::freeze_inbound_credit(int trunk, std::uint16_t channel, bool frozen) {
  core::InterruptGuard g(rt_.cpu());
  Trunk& t = trunk_at(trunk);
  if (channel >= t.inbound.size() || !t.inbound[channel].in_use) return;
  RecvChannel& rc = t.inbound[channel];
  if (rc.frozen == frozen) return;
  rc.frozen = frozen;
  if (!frozen && rc.consumed > 0) {
    // Flush the withheld grant so the starved sender resumes immediately.
    queue_control(t, FrameHeader{channel, rc.gen, FrameType::Credit, 0,
                                 static_cast<std::uint16_t>(rc.consumed), 0});
    rc.consumed = 0;
    wake_pumper(t);
  }
}

// --- scheduler / pump -------------------------------------------------------

bool SessionManager::channel_ready(const SendChannel& c) const {
  if (c.st != ChannelState::Open && c.st != ChannelState::Draining) return false;
  if (c.pend_head >= c.pending.size()) return false;
  return c.pending[c.pend_head].is_close || c.credit > 0;
}

void SessionManager::enqueue_ready(Trunk& t, ChannelHandle h) {
  SendChannel& c = chan(h);
  if (c.in_ready || !channel_ready(c)) return;
  int cls = std::min<int>(c.priority, kClasses - 1);
  t.ready[static_cast<std::size_t>(cls)].push_back(h);
  c.in_ready = true;
}

void SessionManager::queue_control(Trunk& t, const FrameHeader& h) { t.control.push_back(h); }

bool SessionManager::trunk_has_work(const Trunk& t) const {
  if (!t.control.empty()) return true;
  for (const auto& q : t.ready) {
    if (!q.empty()) return true;
  }
  return false;
}

void SessionManager::wake_pumper(Trunk& t) {
  if (t.pumper_idle && t.pumper != nullptr) {
    t.pumper_idle = false;
    rt_.cpu().wake(t.pumper);
  }
}

void SessionManager::pump_loop(int trunk) {
  Trunk& t = trunk_at(trunk);
  core::Cpu& cpu = rt_.cpu();
  for (;;) {
    {
      core::InterruptGuard g(cpu);
      t.pumper = cpu.current_thread();
      while (!trunk_has_work(t) && !t.failed) {
        t.pumper_idle = true;
        cpu.block_unmasked();
      }
      t.pumper_idle = false;
      if (t.failed) return;
    }
    // Linger briefly so a producer burst coalesces into one batch instead of
    // shipping the first frame alone (see SessionConfig::aggregation).
    if (cfg_.aggregation > 0) cpu.sleep_for(cfg_.aggregation);
    if (t.failed) return;
    // Pace against the trunk transport before composing the next batch, so
    // frames keep accumulating (and batches keep growing) while it is busy.
    if (t.proto == TrunkProto::Rmp) {
      rmp_->wait_queue_below(t.peer, cfg_.rmp_queue_cap);
    } else {
      tcp_->wait_send_window(t.conn, cfg_.tcp_window_cap);
    }
    if (t.failed) return;
    emit_batch(trunk);
  }
}

std::vector<SessionManager::PlannedFrame> SessionManager::plan_batch(Trunk& t) {
  std::vector<PlannedFrame> plan;
  std::size_t space = cfg_.max_batch;

  while (!t.control.empty() && space >= FrameHeader::kSize) {
    plan.push_back(PlannedFrame{t.control.front(), {}});
    t.control.pop_front();
    space -= FrameHeader::kSize;
  }

  // Strict priority across classes; deficit round-robin within one. The
  // deficit persists across visits so a frame larger than one quantum still
  // progresses; `any_emitted` guarantees a non-empty batch whenever some
  // channel is ready (no livelock on fresh deficits).
  bool any_emitted = !plan.empty();
  for (std::size_t cls = 0; cls < static_cast<std::size_t>(kClasses); ++cls) {
    auto& rq = t.ready[cls];
    bool progress = true;
    while (progress && !rq.empty() && space >= FrameHeader::kSize) {
      progress = false;
      std::size_t visits = rq.size();
      for (std::size_t i = 0; i < visits && space >= FrameHeader::kSize; ++i) {
        ChannelHandle h = rq.front();
        rq.pop_front();
        SendChannel& c = chan(h);
        if (!channel_ready(c)) {
          c.in_ready = false;
          c.deficit = 0;
          if (c.st == ChannelState::Open && c.pend_head < c.pending.size() && c.credit == 0 &&
              !c.stall_counted) {
            c.stall_counted = true;
            ++credit_stalls_;
            ++t.credit_stalls;
          }
          continue;
        }
        c.deficit += cfg_.quantum * c.weight;
        while (c.pend_head < c.pending.size()) {
          Staged& s = c.pending[c.pend_head];
          std::size_t cost = FrameHeader::kSize + s.bytes.size();
          if (space < cost) break;
          if (!s.is_close && c.credit == 0) break;
          if (c.deficit < cost && any_emitted) break;
          PlannedFrame f;
          if (s.is_close) {
            f.h = FrameHeader{c.id, c.gen, FrameType::Close, 0, 0, 0};
            c.st = ChannelState::CloseSent;
          } else {
            f.h = FrameHeader{c.id,     c.gen, FrameType::Data, c.next_seq++, 0,
                              static_cast<std::uint16_t>(s.bytes.size())};
            --c.credit;
          }
          f.payload = std::move(s.bytes);
          ++c.pend_head;
          space -= cost;
          c.deficit = c.deficit >= cost ? c.deficit - static_cast<std::uint32_t>(cost) : 0;
          plan.push_back(std::move(f));
          any_emitted = true;
          progress = true;
        }
        if (c.pend_head >= c.pending.size()) {
          c.pending.clear();
          c.pend_head = 0;
        }
        if (channel_ready(c)) {
          rq.push_back(h);  // keeps its deficit for the next visit
        } else {
          c.in_ready = false;
          c.deficit = 0;
          if (c.st == ChannelState::Open && c.pend_head < c.pending.size() && c.credit == 0 &&
              !c.stall_counted) {
            c.stall_counted = true;
            ++credit_stalls_;
            ++t.credit_stalls;
          }
        }
      }
    }
  }
  frames_sent_ += plan.size();
  t.tx_frames += plan.size();
  return plan;
}

void SessionManager::emit_batch(int trunk) {
  Trunk& t = trunk_at(trunk);
  core::Cpu& cpu = rt_.cpu();
  std::vector<PlannedFrame> plan;
  {
    core::InterruptGuard g(cpu);
    plan = plan_batch(t);
  }
  if (plan.empty()) return;

  std::size_t payload_bytes = 0;
  for (const PlannedFrame& f : plan) payload_bytes += f.payload.size();
  cpu.charge(costs::kSessionFrameSend * static_cast<sim::SimTime>(plan.size()) +
             costs::kCabCopyPerByte * static_cast<sim::SimTime>(payload_bytes));

  auto on_acked = [this, trunk] { ++trunk_at(trunk).acked_msgs; };

  // Single-DATA-frame fast path: the header rides the Rmp prefix — composed
  // through the HeaderBuf headroom on every (re)transmission, no batch copy.
  if (plan.size() == 1 && plan[0].h.type == FrameType::Data && t.proto == TrunkProto::Rmp) {
    std::array<std::uint8_t, FrameHeader::kSize> hdr{};
    plan[0].h.serialize(hdr);
    core::Message m = scratch_.begin_put(static_cast<std::uint32_t>(plan[0].payload.size()));
    if (!plan[0].payload.empty()) rt_.board().memory().write(m.data, plan[0].payload);
    rmp_->send(t.peer_addr, m, /*free_when_acked=*/true, on_acked, {}, hdr);
    ++t.tx_fast;
    ++t.tx_msgs;
    t.tx_bytes += plan[0].payload.size() + FrameHeader::kSize;
    arm_watchdog(trunk);
    return;
  }

  std::vector<std::uint8_t> buf;
  buf.resize(plan.size() * FrameHeader::kSize + payload_bytes);
  std::size_t off = 0;
  for (const PlannedFrame& f : plan) {
    f.h.serialize(std::span<std::uint8_t>(buf).subspan(off, FrameHeader::kSize));
    off += FrameHeader::kSize;
    std::copy(f.payload.begin(), f.payload.end(), buf.begin() + static_cast<std::ptrdiff_t>(off));
    off += f.payload.size();
  }
  core::Message m = scratch_.begin_put(static_cast<std::uint32_t>(buf.size()));
  rt_.board().memory().write(m.data, buf);
  if (t.proto == TrunkProto::Rmp) {
    rmp_->send(t.peer_addr, m, /*free_when_acked=*/true, on_acked);
  } else {
    tcp_->send(t.conn, m, /*free_when_acked=*/true);
  }
  ++t.tx_msgs;
  t.tx_bytes += buf.size();
  arm_watchdog(trunk);
}

// --- receive path -----------------------------------------------------------

void SessionManager::reader_loop(int trunk) {
  Trunk& t = trunk_at(trunk);
  if (t.proto == TrunkProto::Rmp) {
    for (;;) {
      core::Message m = t.rx->begin_get();
      handle_frames(trunk, rt_.board().memory().view(m.data, m.len));
      t.rx->end_get(m);
    }
  }
  core::Mailbox& rx = t.conn->receive_mailbox();
  for (;;) {
    core::Message m = rx.begin_get();
    if (m.len == 0) {  // FIN: peer closed the trunk stream
      rx.end_get(m);
      fail_trunk(trunk, "trunk" + std::to_string(trunk) + " to node" + std::to_string(t.peer) +
                            ": tcp stream closed by peer");
      return;
    }
    std::span<const std::uint8_t> view = rt_.board().memory().view(m.data, m.len);
    t.tcp_stage.insert(t.tcp_stage.end(), view.begin(), view.end());
    rx.end_get(m);
    // Reframe: a session frame may span TCP segment boundaries.
    std::size_t off = 0;
    while (t.tcp_stage.size() - off >= FrameHeader::kSize) {
      std::span<const std::uint8_t> stage(t.tcp_stage);
      FrameHeader h = FrameHeader::parse(stage.subspan(off));
      if (t.tcp_stage.size() - off < FrameHeader::kSize + h.length) break;
      rt_.cpu().charge(costs::kSessionFrameRecv);
      handle_frame(trunk, h, stage.subspan(off + FrameHeader::kSize, h.length));
      off += FrameHeader::kSize + h.length;
    }
    t.tcp_stage.erase(t.tcp_stage.begin(), t.tcp_stage.begin() + static_cast<std::ptrdiff_t>(off));
  }
}

void SessionManager::handle_frames(int trunk, std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  while (bytes.size() - off >= FrameHeader::kSize) {
    FrameHeader h = FrameHeader::parse(bytes.subspan(off));
    off += FrameHeader::kSize;
    std::span<const std::uint8_t> payload;
    if (h.length > 0) {
      if (off + h.length > bytes.size()) {
        ++proto_errors_;
        return;  // truncated trunk message — count loudly, drop the tail
      }
      payload = bytes.subspan(off, h.length);
      off += h.length;
    }
    rt_.cpu().charge(costs::kSessionFrameRecv);
    handle_frame(trunk, h, payload);
  }
  if (off != bytes.size()) ++proto_errors_;  // trailing garbage
}

void SessionManager::handle_open(int trunk, const FrameHeader& h) {
  core::InterruptGuard g(rt_.cpu());
  Trunk& t = trunk_at(trunk);
  if (t.inbound_live >= cfg_.max_channels) {
    queue_control(t, FrameHeader{h.channel, h.generation, FrameType::OpenNak,
                                 static_cast<std::uint16_t>(SessionReason::kAdmissionFull), 0, 0});
    record_event("admission_refused", "trunk" + std::to_string(trunk) + " ch" +
                                          std::to_string(h.channel) + ": max_channels=" +
                                          std::to_string(cfg_.max_channels) + " reached");
    wake_pumper(t);
    return;
  }
  if (h.channel >= t.inbound.size()) t.inbound.resize(h.channel + 1);
  RecvChannel& rc = t.inbound[h.channel];
  if (rc.in_use) {
    ++proto_errors_;  // duplicate OPEN on a reliable trunk: protocol bug
    return;
  }
  rc = RecvChannel{};
  rc.in_use = true;
  rc.gen = h.generation;
  ++t.inbound_live;
  queue_control(t, FrameHeader{h.channel, h.generation, FrameType::OpenAck, 0,
                               static_cast<std::uint16_t>(cfg_.initial_credit), 0});
  wake_pumper(t);
}

void SessionManager::handle_data(int trunk, const FrameHeader& h,
                                 std::span<const std::uint8_t> payload) {
  bool deliver = false;
  {
    core::InterruptGuard g(rt_.cpu());
    Trunk& t = trunk_at(trunk);
    if (h.channel >= t.inbound.size() || !t.inbound[h.channel].in_use) {
      ++proto_errors_;
      return;
    }
    RecvChannel& rc = t.inbound[h.channel];
    if (rc.gen != h.generation) {
      ++gen_mismatch_drops_;  // frame from a dead incarnation of a reused id
      return;
    }
    if (h.seq != rc.expected_seq) {
      ++proto_errors_;  // trunks are reliable+ordered; a gap is a bug
      rc.expected_seq = h.seq;
    }
    ++rc.expected_seq;
    ++frames_delivered_;
    ++t.rx_frames;
    ++rc.consumed;
    if (!rc.frozen && rc.consumed >= cfg_.refresh()) {
      queue_control(t, FrameHeader{h.channel, rc.gen, FrameType::Credit, 0,
                                   static_cast<std::uint16_t>(rc.consumed), 0});
      rc.consumed = 0;
      wake_pumper(t);
    }
    deliver = true;
  }
  if (deliver && on_deliver) on_deliver(trunk, h.channel, h.generation, payload);
}

void SessionManager::handle_frame(int trunk, const FrameHeader& h,
                                  std::span<const std::uint8_t> payload) {
  Trunk& t = trunk_at(trunk);
  if (t.failed) return;
  switch (h.type) {
    case FrameType::Data:
      handle_data(trunk, h, payload);
      return;
    case FrameType::Open:
      handle_open(trunk, h);
      return;
    case FrameType::Close: {
      core::InterruptGuard g(rt_.cpu());
      if (h.channel < t.inbound.size() && t.inbound[h.channel].in_use &&
          t.inbound[h.channel].gen == h.generation) {
        t.inbound[h.channel].in_use = false;
        --t.inbound_live;
        queue_control(t, FrameHeader{h.channel, h.generation, FrameType::CloseAck, 0, 0, 0});
        wake_pumper(t);
      } else {
        ++proto_errors_;
      }
      return;
    }
    default:
      break;
  }

  // Reverse frames: responses for channels this node initiated.
  std::function<void()> after;
  {
    core::InterruptGuard g(rt_.cpu());
    if (h.channel >= t.handle_of.size() || t.handle_of[h.channel] == kNoHandle) {
      ++proto_errors_;
      return;
    }
    ChannelHandle hd = t.handle_of[h.channel];
    SendChannel& c = chan(hd);
    if (c.gen != h.generation) {
      ++gen_mismatch_drops_;
      return;
    }
    switch (h.type) {
      case FrameType::OpenAck:
        if (c.st != ChannelState::Opening && c.st != ChannelState::Draining) {
          ++proto_errors_;
          return;
        }
        if (c.st == ChannelState::Opening) c.st = ChannelState::Open;
        c.credit = h.credit;
        c.stall_counted = false;
        ++opened_;
        enqueue_ready(t, hd);
        wake_pumper(t);
        if (on_open_result) {
          auto cb = on_open_result;
          after = [cb, hd] { cb(hd, true); };
        }
        break;
      case FrameType::OpenNak:
        c.st = ChannelState::Refused;
        c.pending.clear();
        c.pend_head = 0;
        ++refused_;
        --t.outbound_live;
        release_wire_id(t, h.channel);
        if (on_open_result) {
          auto cb = on_open_result;
          after = [cb, hd] { cb(hd, false); };
        }
        break;
      case FrameType::Credit:
        c.credit += h.credit;
        c.stall_counted = false;
        enqueue_ready(t, hd);
        wake_pumper(t);
        break;
      case FrameType::CloseAck:
        if (c.st != ChannelState::CloseSent) {
          ++proto_errors_;
          return;
        }
        c.st = ChannelState::Closed;
        ++closed_;
        --t.outbound_live;
        release_wire_id(t, h.channel);
        if (on_closed) {
          auto cb = on_closed;
          after = [cb, hd] { cb(hd); };
        }
        break;
      case FrameType::Reset: {
        c.st = ChannelState::Failed;
        c.pending.clear();
        c.pend_head = 0;
        ++failed_;
        --t.outbound_live;
        release_wire_id(t, h.channel);
        if (on_channel_failed) {
          auto cb = on_channel_failed;
          std::string why = "reset by node" + std::to_string(t.peer) + " (reason " +
                            std::to_string(h.seq) + ")";
          after = [cb, hd, why] { cb(hd, why); };
        }
        break;
      }
      default:
        ++proto_errors_;
        break;
    }
  }
  if (after) after();
}

void SessionManager::release_wire_id(Trunk& t, std::uint16_t id) {
  t.handle_of[id] = kNoHandle;
  ++t.gen_of[id];  // churn-safe reuse: the next incarnation is distinguishable
  t.free_ids.push_back(id);
}

// --- trunk failure detection ------------------------------------------------

void SessionManager::arm_watchdog(int trunk) {
  core::Cpu& cpu = rt_.cpu();
  core::InterruptGuard g(cpu);
  Trunk& t = trunk_at(trunk);
  if (t.watchdog_set || t.failed) return;
  t.watchdog_set = true;
  t.stuck_ticks = 0;
  cpu.set_timer(rt_.engine().now() + cfg_.fail_timeout, [this, trunk] { watchdog_tick(trunk); });
}

void SessionManager::watchdog_tick(int trunk) {
  Trunk& t = trunk_at(trunk);
  if (t.failed) {
    t.watchdog_set = false;
    return;
  }
  std::uint64_t inflight;
  std::uint64_t acked;
  if (t.proto == TrunkProto::Rmp) {
    inflight = rmp_->queued_to(t.peer);
    acked = t.acked_msgs;
  } else {
    inflight = t.conn->unacked_bytes();
    acked = t.tx_bytes - inflight;
  }
  if (inflight == 0) {
    // Idle trunk: disarm; the next send re-arms. Keeps a finished run's
    // event queue empty instead of ticking forever.
    t.watchdog_set = false;
    t.stuck_ticks = 0;
    return;
  }
  if (acked != t.progress_marker) {
    t.progress_marker = acked;
    t.stuck_ticks = 0;
  } else if (++t.stuck_ticks >= 2) {
    t.watchdog_set = false;
    fail_trunk(trunk, "trunk" + std::to_string(trunk) + " to node" + std::to_string(t.peer) +
                          ": no acknowledgment progress for " +
                          std::to_string(2 * cfg_.fail_timeout / 1'000'000) + " ms");
    return;
  }
  rt_.cpu().set_timer(rt_.engine().now() + cfg_.fail_timeout,
                      [this, trunk] { watchdog_tick(trunk); });
}

void SessionManager::fail_trunk(int trunk, const std::string& reason) {
  Trunk& t = trunk_at(trunk);
  if (t.failed) return;
  t.failed = true;
  ++trunk_failures_;
  record_event("trunk_failed", reason);
  for (std::size_t id = 0; id < t.handle_of.size(); ++id) {
    ChannelHandle h = t.handle_of[id];
    if (h == kNoHandle) continue;
    SendChannel& c = chan(h);
    c.st = ChannelState::Failed;
    c.pending.clear();
    c.pend_head = 0;
    c.in_ready = false;
    ++failed_;
    t.handle_of[id] = kNoHandle;
    if (on_channel_failed) on_channel_failed(h, reason);
  }
  t.outbound_live = 0;
  for (RecvChannel& rc : t.inbound) rc.in_use = false;
  t.inbound_live = 0;
  for (auto& q : t.ready) q.clear();
  t.control.clear();
  wake_pumper(t);
}

void SessionManager::record_event(const char* kind, std::string detail) {
  if (events_.size() >= kEventCap) return;
  events_.push_back(SessionEvent{rt_.engine().now(), kind, std::move(detail)});
}

}  // namespace nectar::session
