#include "sim/parallel.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"

namespace nectar::sim {

namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

ParallelEngine::ParallelEngine(int shards) {
  if (shards < 1) throw std::invalid_argument("ParallelEngine: shard count must be >= 1");
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Engine>());
    shards_.back()->set_shard(this, i);
  }
  outbox_.resize(shards_.size());
  window_base_.resize(shards_.size(), 0);
  work_ns_.resize(shards_.size(), 0);
  barrier_wait_ns_.resize(shards_.size(), 0);
}

ParallelEngine::~ParallelEngine() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ParallelEngine::set_lookahead(SimTime l) {
  if (l < 0) throw std::invalid_argument("ParallelEngine: negative lookahead");
  lookahead_ = l;
}

void ParallelEngine::post(int src, int dst, SimTime t, std::uint64_t key, std::uint64_t seq,
                          Engine::Action fn) {
  if (dst < 0 || dst >= shard_count())
    throw std::out_of_range("ParallelEngine::post: bad destination shard");
  outbox_[static_cast<std::size_t>(src)].push_back(CrossEvent{t, key, seq, dst, std::move(fn)});
}

std::uint64_t ParallelEngine::total_events() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->events_processed();
  return n;
}

SimTime ParallelEngine::next_event_time() {
  SimTime best = -1;
  for (auto& s : shards_) {
    SimTime t = s->next_event_time();
    if (t >= 0 && (best < 0 || t < best)) best = t;
  }
  return best;
}

void ParallelEngine::drain_mailboxes() {
  scratch_.clear();
  for (auto& box : outbox_) {
    for (auto& ev : box) scratch_.push_back(std::move(ev));
    box.clear();
  }
  if (scratch_.empty()) return;
  // (time, key, seq) totally orders the drain: key is the posting element's
  // stable identity, seq its own counter, so the destination queue sees the
  // same insertion order no matter how worker threads interleaved.
  std::sort(scratch_.begin(), scratch_.end(), [](const CrossEvent& a, const CrossEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.key != b.key) return a.key < b.key;
    return a.seq < b.seq;
  });
  mailbox_highwater_ = std::max(mailbox_highwater_, scratch_.size());
  cross_events_ += scratch_.size();
  for (auto& ev : scratch_) {
    Engine& dst = *shards_[static_cast<std::size_t>(ev.dst)];
    if (ev.time < dst.now())
      throw std::logic_error("ParallelEngine: cross-shard event at t=" + std::to_string(ev.time) +
                             " arrived behind shard " + std::to_string(ev.dst) + " clock t=" +
                             std::to_string(dst.now()) + " (lookahead misconfigured?)");
    dst.schedule_at(ev.time, std::move(ev.fn));
  }
  scratch_.clear();
}

void ParallelEngine::start_workers() {
  if (!workers_.empty()) return;
  workers_.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i)
    workers_.emplace_back([this, i] { worker_main(static_cast<int>(i)); });
}

void ParallelEngine::worker_main(int i) {
  const std::size_t idx = static_cast<std::size_t>(i);
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(m_);
  for (;;) {
    auto idle0 = std::chrono::steady_clock::now();
    cv_work_.wait(lk, [&] { return stop_ || epoch_ != seen; });
    barrier_wait_ns_[idx] += elapsed_ns(idle0);
    if (stop_) return;
    seen = epoch_;
    SimTime h = horizon_;
    lk.unlock();
    auto work0 = std::chrono::steady_clock::now();
    if (h < 0) {
      shards_[idx]->run();  // "drain" window: no horizon, run to empty
    } else {
      shards_[idx]->run_until(h - 1);
    }
    work_ns_[idx] += elapsed_ns(work0);
    lk.lock();
    if (--pending_ == 0) cv_done_.notify_one();
  }
}

void ParallelEngine::run_window(SimTime horizon) {
  for (std::size_t i = 0; i < shards_.size(); ++i)
    window_base_[i] = shards_[i]->events_processed();
  {
    std::lock_guard<std::mutex> lk(m_);
    horizon_ = horizon;
    pending_ = static_cast<int>(shards_.size());
    ++epoch_;
  }
  cv_work_.notify_all();
  {
    std::unique_lock<std::mutex> lk(m_);
    cv_done_.wait(lk, [&] { return pending_ == 0; });
  }
  std::uint64_t widest = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i)
    widest = std::max(widest, shards_[i]->events_processed() - window_base_[i]);
  critical_events_ += widest;
  ++windows_;
}

bool ParallelEngine::run_until(SimTime t) {
  if (shards_.size() == 1) {
    Engine& s = *shards_[0];
    std::uint64_t base = s.events_processed();
    bool more = s.run_until(t);
    critical_events_ += s.events_processed() - base;
    ++windows_;
    return more;
  }
  start_workers();
  drain_mailboxes();  // posts left over from a previous run_until
  for (;;) {
    SimTime tmin = next_event_time();
    if (tmin < 0 || tmin > t) break;
    SimTime h;
    if (lookahead_ > 0 && t - tmin >= lookahead_) {
      h = tmin + lookahead_;
    } else {
      // Either no cross-shard edges exist (lookahead 0) or the remaining
      // span fits inside one lookahead window: run straight to t.
      h = t == std::numeric_limits<SimTime>::max() ? t : t + 1;
    }
    run_window(h);
    drain_mailboxes();
  }
  // Nothing at or before t remains anywhere; advance every clock to t.
  for (auto& s : shards_) s->run_until(t);
  for (const auto& s : shards_)
    if (s->pending_events() > 0) return true;
  return false;
}

void ParallelEngine::run() {
  if (shards_.size() == 1) {
    Engine& s = *shards_[0];
    std::uint64_t base = s.events_processed();
    s.run();
    critical_events_ += s.events_processed() - base;
    ++windows_;
    return;
  }
  start_workers();
  drain_mailboxes();
  for (;;) {
    SimTime tmin = next_event_time();
    if (tmin < 0) break;
    run_window(lookahead_ > 0 ? tmin + lookahead_ : SimTime{-1});
    drain_mailboxes();
  }
}

void ParallelEngine::register_metrics(obs::Registration& reg) const {
  reg.probe(-1, "sim.parallel", "shards", [this] { return static_cast<std::int64_t>(shard_count()); });
  reg.probe(-1, "sim.parallel", "lookahead_ns",
            [this] { return static_cast<std::int64_t>(lookahead_); });
  reg.probe(-1, "sim.parallel", "windows",
            [this] { return static_cast<std::int64_t>(windows_); });
  reg.probe(-1, "sim.parallel", "cross_events",
            [this] { return static_cast<std::int64_t>(cross_events_); });
  reg.probe(-1, "sim.parallel", "mailbox_highwater",
            [this] { return static_cast<std::int64_t>(mailbox_highwater_); });
  reg.probe(-1, "sim.parallel", "critical_path_events",
            [this] { return static_cast<std::int64_t>(critical_events_); });
  for (int i = 0; i < shard_count(); ++i) {
    std::string prefix = "shard" + std::to_string(i) + ".";
    reg.probe(-1, "sim.parallel", prefix + "events_processed",
              [this, i] { return static_cast<std::int64_t>(shard_events(i)); });
    reg.probe(-1, "sim.parallel", prefix + "pending_events", [this, i] {
      return static_cast<std::int64_t>(shard(i).pending_events());
    });
    reg.probe(-1, "sim.parallel", prefix + "cross_posts", [this, i] {
      return static_cast<std::int64_t>(shard(i).cross_posts());
    });
    // Host wall-clock: useful for spotting load imbalance interactively,
    // never part of a byte-compared report.
    reg.probe(-1, "sim.parallel", prefix + "work_ns",
              [this, i] { return static_cast<std::int64_t>(shard_work_ns(i)); });
    reg.probe(-1, "sim.parallel", prefix + "barrier_wait_ns",
              [this, i] { return static_cast<std::int64_t>(shard_barrier_wait_ns(i)); });
  }
}

}  // namespace nectar::sim
