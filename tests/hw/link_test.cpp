#include "hw/link.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hw/crc.hpp"
#include "sim/engine.hpp"

namespace nectar::hw {
namespace {

/// Records every delivered frame with its timing.
class RecordingSink : public FrameSink {
 public:
  struct Delivery {
    Frame frame;
    sim::SimTime first;
    sim::SimTime last;
  };
  bool offer(Frame&& f, sim::SimTime first, sim::SimTime last) override {
    if (reject_next > 0) {
      --reject_next;
      return false;
    }
    deliveries.push_back({std::move(f), first, last});
    return true;
  }
  void set_drain_notify(std::function<void()> fn) override { drain = std::move(fn); }

  std::vector<Delivery> deliveries;
  std::function<void()> drain;
  int reject_next = 0;
};

Frame make_frame(std::size_t len) {
  Frame f;
  f.payload.assign(len, 0x42);
  f.crc = Crc32::compute(f.payload);
  return f;
}

TEST(FiberLink, SerializesAt100Mbit) {
  sim::Engine e;
  FiberLink link(e, "l");
  RecordingSink sink;
  link.attach(&sink);
  Frame f = make_frame(1000);
  std::size_t wire = f.wire_bytes();
  link.submit(std::move(f));
  e.run();
  ASSERT_EQ(sink.deliveries.size(), 1u);
  auto& d = sink.deliveries[0];
  EXPECT_EQ(d.first, sim::costs::kLinkPropagation);
  EXPECT_EQ(d.last - d.first, sim::transmit_time(static_cast<std::int64_t>(wire), 100e6));
}

TEST(FiberLink, BackToBackFramesQueue) {
  sim::Engine e;
  FiberLink link(e, "l");
  RecordingSink sink;
  link.attach(&sink);
  link.submit(make_frame(1000));
  link.submit(make_frame(1000));
  e.run();
  ASSERT_EQ(sink.deliveries.size(), 2u);
  // Second frame starts only after the first finishes serializing.
  EXPECT_GE(sink.deliveries[1].first,
            sink.deliveries[0].last - sim::costs::kLinkPropagation);
  EXPECT_EQ(link.frames_sent(), 2u);
}

TEST(FiberLink, SendCompletionCallbackFiresAfterLastByte) {
  sim::Engine e;
  FiberLink link(e, "l");
  RecordingSink sink;
  link.attach(&sink);
  sim::SimTime sent_at = -1;
  Frame f = make_frame(500);
  sim::SimTime ttime = sim::transmit_time(static_cast<std::int64_t>(f.wire_bytes()), 100e6);
  link.submit(std::move(f), [&] { sent_at = e.now(); });
  e.run();
  EXPECT_EQ(sent_at, ttime);
}

TEST(FiberLink, CorruptionIsDetectableByCrc) {
  sim::Engine e;
  FiberLink link(e, "l");
  RecordingSink sink;
  link.attach(&sink);
  link.set_corrupt_rate(1.0, 99);
  link.submit(make_frame(100));
  e.run();
  ASSERT_EQ(sink.deliveries.size(), 1u);
  const Frame& f = sink.deliveries[0].frame;
  EXPECT_TRUE(f.corrupted);
  EXPECT_NE(Crc32::compute(f.payload), f.crc);
  EXPECT_EQ(link.frames_corrupted(), 1u);
}

TEST(FiberLink, DropsEvaporateButOccupyTheWire) {
  sim::Engine e;
  FiberLink link(e, "l");
  RecordingSink sink;
  link.attach(&sink);
  link.set_drop_rate(1.0, 7);
  link.submit(make_frame(100));
  e.run();
  EXPECT_TRUE(sink.deliveries.empty());
  EXPECT_EQ(link.frames_dropped(), 1u);
}

TEST(FiberLink, PartialLossRateDeterministic) {
  auto run_once = [] {
    sim::Engine e;
    FiberLink link(e, "l");
    RecordingSink sink;
    link.attach(&sink);
    link.set_drop_rate(0.3, 1234);
    for (int i = 0; i < 100; ++i) link.submit(make_frame(50));
    e.run();
    return sink.deliveries.size();
  };
  std::size_t a = run_once();
  std::size_t b = run_once();
  EXPECT_EQ(a, b);  // seeded: reproducible
  EXPECT_GT(a, 50u);
  EXPECT_LT(a, 90u);
}

TEST(FiberLink, BackPressureStallsAndRetries) {
  sim::Engine e;
  FiberLink link(e, "l");
  RecordingSink sink;
  link.attach(&sink);
  sink.reject_next = 1;
  link.submit(make_frame(100));
  link.submit(make_frame(100));
  e.run();
  // First offer rejected; both frames must still arrive after the sink
  // signals drain.
  EXPECT_EQ(sink.deliveries.size(), 0u);  // still blocked: nothing drained
  ASSERT_TRUE(sink.drain);
  sink.drain();
  e.run();
  EXPECT_EQ(sink.deliveries.size(), 2u);
}

TEST(FiberLink, DefaultDropSeedDerivedFromElementName) {
  // One scenario seeds many links: with no explicit seed, each link derives
  // its drop stream from (fault_seed_base, name), so two links at the same
  // rate lose different frames — and the same link reproduces its losses.
  auto survivors = [](const char* name, std::uint64_t base) {
    sim::Engine e;
    FiberLink link(e, name);
    RecordingSink sink;
    link.attach(&sink);
    link.set_fault_seed_base(base);
    link.set_drop_rate(0.5);
    for (std::size_t i = 0; i < 64; ++i) link.submit(make_frame(50 + i));
    e.run();
    std::vector<std::size_t> sizes;
    for (const auto& d : sink.deliveries) sizes.push_back(d.frame.payload.size());
    return sizes;
  };
  auto a = survivors("node0/out", 1);
  EXPECT_EQ(a, survivors("node0/out", 1));  // reproducible
  EXPECT_NE(a, survivors("node1/out", 1));  // decorrelated by name
  EXPECT_NE(a, survivors("node0/out", 2));  // re-keyed by master base
}

TEST(FiberLink, ScriptedDropsAndDownCountAsFaulted) {
  sim::Engine e;
  FiberLink link(e, "l");
  RecordingSink sink;
  link.attach(&sink);
  link.arm_drop_next(2);
  for (int i = 0; i < 5; ++i) link.submit(make_frame(100));
  e.run();
  EXPECT_EQ(sink.deliveries.size(), 3u);
  EXPECT_EQ(link.frames_dropped_faulted(), 2u);
  link.set_down(true);
  link.submit(make_frame(100));
  e.run();
  EXPECT_TRUE(link.is_down());
  EXPECT_EQ(link.frames_dropped_faulted(), 3u);
  EXPECT_EQ(link.frames_dropped(), 3u);
  link.set_down(false);
  link.submit(make_frame(100));
  e.run();
  EXPECT_EQ(sink.deliveries.size(), 4u);  // back up: traffic flows again
}

TEST(FiberLink, SlowerRateStretchesSerialization) {
  sim::Engine e;
  FiberLink link(e, "l", 10e6);  // 10 Mbit/s Ethernet-class
  RecordingSink sink;
  link.attach(&sink);
  Frame f = make_frame(1000);
  std::size_t wire = f.wire_bytes();
  link.submit(std::move(f));
  e.run();
  ASSERT_EQ(sink.deliveries.size(), 1u);
  EXPECT_EQ(sink.deliveries[0].last - sink.deliveries[0].first,
            sim::transmit_time(static_cast<std::int64_t>(wire), 10e6));
}

}  // namespace
}  // namespace nectar::hw
