#include "obs/profiler.hpp"

#include <fstream>

namespace nectar::obs {

namespace {

// Context bookkeeping. `g_enabled` counts enabled Profiler instances:
// CostScope maintains domain stacks only while at least one profiler in the
// process is recording, keeping the disabled cost to one integer compare.
// It is toggled before the simulation runs (thread creation orders the
// write ahead of every worker's reads), so it stays a plain int. The
// context pointer and the domain stacks are thread_local: a context is a
// fiber, a fiber lives on exactly one shard's worker thread, and the
// announce/push/pop traffic on the hot path must not take a lock.
int g_enabled = 0;
thread_local const void* g_context = nullptr;
std::map<const void*, std::vector<const char*>>& stacks() {
  static thread_local std::map<const void*, std::vector<const char*>> s;
  return s;
}

}  // namespace

Profiler::~Profiler() {
  if (!autoflush_.empty()) write_folded(autoflush_);
  if (enabled_) --g_enabled;
}

void Profiler::set_enabled(bool on) {
  if (on == enabled_) return;
  enabled_ = on;
  if (on) {
    ++g_enabled;
    // Drop stale domain stacks left by contexts torn down mid-scope in an
    // earlier run (a fiber address may be reused; its old stack must not
    // pollute this profile).
    if (g_enabled == 1) stacks().clear();
  } else {
    --g_enabled;
  }
}

void Profiler::set_context(const void* key) { g_context = key; }

void Profiler::record(const std::string& cpu, const std::string& context, sim::SimTime ns) {
  // Build the key from this thread's domain stack before taking the lock.
  std::string key = cpu;
  key += ';';
  key += context;
  auto it = stacks().find(g_context);
  if (it != stacks().end()) {
    for (const char* d : it->second) {
      key += ';';
      key += d;
    }
  }
  std::lock_guard<std::mutex> lk(mutex_);
  ++samples_;
  folded_[key] += ns;
  cpus_[cpu][context] += ns;
}

void Profiler::sample_queue_depth(const std::string& key, std::size_t depth) {
  std::lock_guard<std::mutex> lk(mutex_);
  QueueGauge& g = queue_depth_[key];
  ++g.samples;
  if (depth > g.max) g.max = depth;
}

void Profiler::add_queue_wait(const std::string& cpu, const std::string& thread,
                              sim::SimTime ns) {
  std::lock_guard<std::mutex> lk(mutex_);
  WaitStat& w = queue_wait_[cpu][thread];
  ++w.count;
  w.total += ns;
}

void Profiler::record_occupancy(const std::string& resource, const char* what,
                                sim::SimTime ns) {
  std::lock_guard<std::mutex> lk(mutex_);
  OccStat& o = occupancy_[resource][what];
  ++o.count;
  o.total += ns;
}

sim::SimTime Profiler::attributed_ns() const {
  sim::SimTime total = 0;
  for (const auto& [key, ns] : folded_) total += ns;
  return total;
}

sim::SimTime Profiler::attributed_ns(const std::string& cpu) const {
  sim::SimTime total = 0;
  auto it = cpus_.find(cpu);
  if (it == cpus_.end()) return 0;
  for (const auto& [ctx, ns] : it->second) total += ns;
  return total;
}

std::map<std::string, sim::SimTime> Profiler::domain_totals() const {
  std::map<std::string, sim::SimTime> out;
  for (const auto& [key, ns] : folded_) {
    // Strip "<cpu>;<context>" — the domain path starts at the third field.
    std::size_t first = key.find(';');
    std::size_t second = first == std::string::npos ? first : key.find(';', first + 1);
    if (second == std::string::npos) {
      out["(unattributed)"] += ns;
    } else {
      out[key.substr(second + 1)] += ns;
    }
  }
  return out;
}

std::string Profiler::folded() const {
  std::string out;
  for (const auto& [key, ns] : folded_) {
    out += key;
    out += ' ';
    out += std::to_string(ns);
    out += '\n';
  }
  return out;
}

bool Profiler::write_folded(const std::string& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << folded();
  return static_cast<bool>(f);
}

json::Value Profiler::summary() const {
  json::Value doc = json::Value::object();
  doc.set("samples", static_cast<std::int64_t>(samples_));
  doc.set("attributed_ns", static_cast<std::int64_t>(attributed_ns()));

  json::Value cpus = json::Value::object();
  for (const auto& [cpu, contexts] : cpus_) {
    json::Value c = json::Value::object();
    sim::SimTime busy = 0;
    json::Value ctxs = json::Value::object();
    for (const auto& [ctx, ns] : contexts) {
      busy += ns;
      ctxs.set(ctx, static_cast<std::int64_t>(ns));
    }
    c.set("busy_ns", static_cast<std::int64_t>(busy));
    c.set("contexts", std::move(ctxs));
    cpus.set(cpu, std::move(c));
  }
  doc.set("cpus", std::move(cpus));

  json::Value waits = json::Value::object();
  for (const auto& [cpu, threads] : queue_wait_) {
    json::Value t = json::Value::object();
    for (const auto& [name, w] : threads) {
      json::Value s = json::Value::object();
      s.set("count", static_cast<std::int64_t>(w.count));
      s.set("total_ns", static_cast<std::int64_t>(w.total));
      t.set(name, std::move(s));
    }
    waits.set(cpu, std::move(t));
  }
  doc.set("run_queue_wait", std::move(waits));

  json::Value depth = json::Value::object();
  for (const auto& [key, g] : queue_depth_) {
    json::Value s = json::Value::object();
    s.set("samples", static_cast<std::int64_t>(g.samples));
    s.set("max", static_cast<std::int64_t>(g.max));
    depth.set(key, std::move(s));
  }
  doc.set("queue_depth", std::move(depth));

  json::Value occ = json::Value::object();
  for (const auto& [resource, whats] : occupancy_) {
    json::Value r = json::Value::object();
    for (const auto& [what, o] : whats) {
      json::Value s = json::Value::object();
      s.set("count", static_cast<std::int64_t>(o.count));
      s.set("busy_ns", static_cast<std::int64_t>(o.total));
      r.set(what, std::move(s));
    }
    occ.set(resource, std::move(r));
  }
  doc.set("occupancy", std::move(occ));
  return doc;
}

void Profiler::clear() {
  std::lock_guard<std::mutex> lk(mutex_);
  samples_ = 0;
  folded_.clear();
  cpus_.clear();
  queue_depth_.clear();
  queue_wait_.clear();
  occupancy_.clear();
}

CostScope::CostScope(const char* domain) {
  if (g_enabled == 0) return;
  key_ = g_context;
  stacks()[key_].push_back(domain);
  pushed_ = true;
}

CostScope::~CostScope() {
  if (!pushed_) return;
  auto& s = stacks();
  auto it = s.find(key_);
  if (it == s.end() || it->second.empty()) return;  // stacks cleared by a re-enable
  it->second.pop_back();
  if (it->second.empty()) s.erase(it);  // no stale entries for reused fiber addresses
}

}  // namespace nectar::obs
