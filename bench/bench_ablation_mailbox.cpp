// Ablation (paper §3.3): shared-memory vs RPC-based mailbox operations from
// the host. "In return for the restrictions on placement of readers and
// writers, the shared memory implementation provides about a factor of two
// improvement over the RPC-based implementation for Sun 4 hosts."
//
// Also measures the per-mailbox small-buffer cache (§3.3) and the Enqueue
// operation against an explicit allocate-copy-free hand-off (§3.3/§4.1).

#include "common.hpp"

namespace nectar::bench {
namespace {

constexpr int kOps = 200;

/// Host put+get cycle time per op, shared-memory implementation.
double shared_memory_op_usec() {
  net::NectarSystem sys(1, /*with_vme=*/true);
  host::HostNode h(sys, 0);
  sim::SimTime elapsed = 0;
  h.host.run_process("bench", [&] {
    auto mb = h.nin.create_mailbox("bench");
    sim::SimTime t0 = sys.engine().now();
    for (int i = 0; i < kOps; ++i) {
      core::Message m = h.nin.begin_put(mb, 32);
      h.nin.end_put(mb, m);
      core::Message g = h.nin.begin_get_poll(mb);
      h.nin.end_get(mb, g);
    }
    elapsed = sys.engine().now() - t0;
  });
  sys.engine().run();
  return sim::to_usec(elapsed) / kOps;
}

/// Host put+get cycle time per op, RPC-based implementation.
double rpc_op_usec() {
  net::NectarSystem sys(1, /*with_vme=*/true);
  host::HostNode h(sys, 0);
  sim::SimTime elapsed = 0;
  h.host.run_process("bench", [&] {
    auto mb = h.nin.create_mailbox("bench");
    sim::SimTime t0 = sys.engine().now();
    for (int i = 0; i < kOps; ++i) {
      core::Message m = h.nin.begin_put_rpc(mb, 32);
      h.nin.end_put_rpc(mb, m);
      core::Message g = h.nin.begin_get_rpc(mb);
      h.nin.end_get_rpc(mb, g);
    }
    elapsed = sys.engine().now() - t0;
  });
  sys.engine().run();
  return sim::to_usec(elapsed) / kOps;
}

/// CAB-side put/get cycle: small messages (cache hit) vs large (heap path).
double cab_cycle_usec(std::uint32_t size) {
  net::NectarSystem sys(1);
  sim::SimTime elapsed = 0;
  sys.runtime(0).fork_system("bench", [&] {
    core::Mailbox& mb = sys.runtime(0).create_mailbox("bench");
    sim::SimTime t0 = sys.engine().now();
    for (int i = 0; i < kOps; ++i) {
      core::Message m = mb.begin_put(size);
      mb.end_put(m);
      core::Message g = mb.begin_get();
      mb.end_get(g);
    }
    elapsed = sys.engine().now() - t0;
  });
  sys.engine().run();
  return sim::to_usec(elapsed) / kOps;
}

/// Hand a message between two mailboxes: Enqueue (pointer move) vs explicit
/// allocate + copy + free — what IP's datagram hand-off avoids (§4.1).
double handoff_usec(bool use_enqueue, std::uint32_t size) {
  net::NectarSystem sys(1);
  sim::SimTime elapsed = 0;
  sys.runtime(0).fork_system("bench", [&] {
    core::CabRuntime& rt = sys.runtime(0);
    core::Mailbox& a = rt.create_mailbox("a");
    core::Mailbox& b = rt.create_mailbox("b");
    hw::CabMemory& mem = rt.board().memory();
    sim::SimTime t0 = sys.engine().now();
    for (int i = 0; i < kOps; ++i) {
      core::Message m = a.begin_put(size);
      a.end_put(m);
      core::Message got = a.begin_get();
      if (use_enqueue) {
        a.enqueue(got, b);
      } else {
        core::Message copy = b.begin_put(size);
        rt.cpu().charge(static_cast<sim::SimTime>(size) * sim::costs::kCabCopyPerByte);
        std::vector<std::uint8_t> tmp(size);
        mem.read(got.data, tmp);
        mem.write(copy.data, tmp);
        b.end_put(copy);
        a.end_get(got);
      }
      core::Message out = b.begin_get();
      b.end_get(out);
    }
    elapsed = sys.engine().now() - t0;
  });
  sys.engine().run();
  return sim::to_usec(elapsed) / kOps;
}

}  // namespace
}  // namespace nectar::bench

int main(int argc, char** argv) {
  using namespace nectar::bench;
  BenchOptions opts = parse_options(argc, argv);
  print_header("Ablation: mailbox implementation choices (paper §3.3)");

  nectar::obs::RunReport report("ablation-mailbox");
  double shared = shared_memory_op_usec();
  double rpc = rpc_op_usec();
  std::printf("host mailbox put+get cycle, shared memory : %7.1f us/op\n", shared);
  std::printf("host mailbox put+get cycle, RPC-based     : %7.1f us/op\n", rpc);
  std::printf("  -> RPC/shared ratio: %.2fx   (paper: ~2x in favor of shared memory)\n\n",
              rpc / shared);

  double cached = cab_cycle_usec(64);
  double heap = cab_cycle_usec(1024);
  std::printf("CAB put+get cycle, 64 B (cached buffer)   : %7.1f us/op\n", cached);
  std::printf("CAB put+get cycle, 1 KB (heap alloc/free) : %7.1f us/op\n", heap);
  std::printf("  -> small-buffer cache saves %.1f us/op (§3.3)\n\n", heap - cached);

  report.add("host_shared_memory", shared, "us/op");
  report.add("host_rpc", rpc, "us/op");
  report.add("cab_cycle_cached_64", cached, "us/op");
  report.add("cab_cycle_heap_1024", heap, "us/op");
  for (std::uint32_t size : {256u, 4096u}) {
    double enq = handoff_usec(true, size);
    double cpy = handoff_usec(false, size);
    std::printf("hand-off %4u B: Enqueue %7.1f us vs copy %7.1f us  (%.1fx)\n", size, enq, cpy,
                cpy / enq);
    std::string sz = std::to_string(size);
    report.add("handoff_enqueue_" + sz, enq, "us/op");
    report.add("handoff_copy_" + sz, cpy, "us/op");
  }
  std::printf("  -> Enqueue's advantage grows with message size: it is why IP's\n"
              "     hand-off to TCP/UDP copies nothing (§4.1).\n");
  finish_report(opts, report);
  return 0;
}
