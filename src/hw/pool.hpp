#pragma once

// Host-memory buffer recycling for the hardware models.
//
// Every simulated frame used to allocate (and free) its payload vector as it
// moved DMA -> link -> HUB -> FIFO -> DMA; at packet rates this dominated the
// simulator's wall-clock. The pool keeps retired payload vectors (capacity
// intact) on a free list and hands them back on the next acquire. This is
// purely a host-side optimization: simulated times and bytes are unaffected,
// so results stay bit-for-bit identical.
//
// Each OS thread (one per simulation shard) gets its own pool, so no
// locking is needed: a shard's frames recycle through its worker's pool.
// Frames that cross shards retire into the receiving shard's free list —
// vectors migrate between pools, which is harmless (a pool is just a cache
// of spare capacity) and keeps both acquire and release lock-free.

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace nectar::obs {
class Registration;
}

namespace nectar::hw {

/// Free list of recycled byte vectors. Use through PooledBytes.
class BufferPool {
 public:
  /// This thread's pool frame payloads circulate through (thread_local:
  /// one per shard worker; the main thread has its own for build time).
  static BufferPool& payloads();

  /// A vector of exactly `n` bytes (zero-filled when freshly grown).
  std::vector<std::uint8_t> acquire(std::size_t n);
  void release(std::vector<std::uint8_t>&& v);

  std::uint64_t acquires() const { return acquires_; }
  /// Acquires served from the free list instead of a fresh allocation.
  std::uint64_t reuses() const { return reuses_; }
  /// Buffers handed back (pooled or freed). A PooledBytes that never dies —
  /// a leaked lease — keeps outstanding() permanently elevated; the obs
  /// Auditor's lease-balance invariant compares it against a quiesced
  /// baseline to catch exactly that.
  std::uint64_t releases() const { return releases_; }
  /// acquires() - releases(): leases currently held by live owners.
  std::int64_t outstanding() const {
    return static_cast<std::int64_t>(acquires_) - static_cast<std::int64_t>(releases_);
  }
  std::size_t pooled() const { return free_.size(); }

  /// Drop all pooled buffers (keeps counters; for memory-pressure / tests).
  void trim() { free_.clear(); }

  /// Report pool statistics as probes under (node, `component`). The pool is
  /// process-wide, so callers conventionally pass node -1.
  void register_metrics(obs::Registration& reg, const std::string& component,
                        int node = -1) const;

 private:
  // Bounds host memory held by the pool; beyond this, released buffers are
  // simply freed.
  static constexpr std::size_t kMaxPooled = 1024;

  std::vector<std::vector<std::uint8_t>> free_;
  std::uint64_t acquires_ = 0;
  std::uint64_t reuses_ = 0;
  std::uint64_t releases_ = 0;
};

/// Move-only owner of a pooled byte buffer: acquired from BufferPool on
/// construction, returned to it on destruction. Mimics the slice of the
/// std::vector interface the hardware models use.
class PooledBytes {
 public:
  PooledBytes() = default;
  explicit PooledBytes(std::size_t n) : v_(BufferPool::payloads().acquire(n)) {}
  /// Adopt an existing vector; its storage enters pool circulation when this
  /// owner dies.
  PooledBytes(std::vector<std::uint8_t> bytes) : v_(std::move(bytes)) {}  // NOLINT
  PooledBytes(std::initializer_list<std::uint8_t> bytes)  // NOLINT(google-explicit-constructor)
      : v_(bytes) {}

  PooledBytes(PooledBytes&& o) noexcept : v_(std::move(o.v_)) { o.v_.clear(); }
  PooledBytes& operator=(PooledBytes&& o) noexcept {
    if (this != &o) {
      recycle();
      v_ = std::move(o.v_);
      o.v_.clear();
    }
    return *this;
  }
  PooledBytes(const PooledBytes&) = delete;
  PooledBytes& operator=(const PooledBytes&) = delete;
  ~PooledBytes() { recycle(); }

  std::size_t size() const { return v_.size(); }
  bool empty() const { return v_.empty(); }
  std::uint8_t* data() { return v_.data(); }
  const std::uint8_t* data() const { return v_.data(); }
  std::uint8_t& operator[](std::size_t i) { return v_[i]; }
  std::uint8_t operator[](std::size_t i) const { return v_[i]; }
  auto begin() { return v_.begin(); }
  auto end() { return v_.end(); }
  auto begin() const { return v_.begin(); }
  auto end() const { return v_.end(); }
  void resize(std::size_t n) { v_.resize(n); }
  void assign(std::size_t n, std::uint8_t v) { v_.assign(n, v); }

  operator std::span<const std::uint8_t>() const { return v_; }  // NOLINT
  operator std::span<std::uint8_t>() { return v_; }              // NOLINT
  std::span<const std::uint8_t> bytes() const { return v_; }
  std::span<std::uint8_t> bytes() { return v_; }

 private:
  void recycle() {
    if (v_.capacity() > 0) BufferPool::payloads().release(std::move(v_));
  }

  std::vector<std::uint8_t> v_;
};

/// A shared immutable source route (one output-port byte per HUB hop).
///
/// The datalink layer interns one route per destination at topology-install
/// time and every frame to that destination carries a reference, instead of
/// copying the route vector per packet (§2.1 routes are static).
class RouteRef {
 public:
  RouteRef() = default;
  RouteRef(std::vector<std::uint8_t> hops)  // NOLINT(google-explicit-constructor)
      : p_(hops.empty()
               ? nullptr
               : std::make_shared<const std::vector<std::uint8_t>>(std::move(hops))) {}
  RouteRef(std::initializer_list<std::uint8_t> hops)  // NOLINT(google-explicit-constructor)
      : RouteRef(std::vector<std::uint8_t>(hops)) {}

  std::size_t size() const { return p_ == nullptr ? 0 : p_->size(); }
  bool empty() const { return size() == 0; }
  std::uint8_t operator[](std::size_t i) const { return (*p_)[i]; }
  const std::vector<std::uint8_t>& bytes() const {
    static const std::vector<std::uint8_t> kEmpty;
    return p_ == nullptr ? kEmpty : *p_;
  }
  bool operator==(const RouteRef& o) const { return bytes() == o.bytes(); }

 private:
  std::shared_ptr<const std::vector<std::uint8_t>> p_;
};

}  // namespace nectar::hw
