// Collective reliability under injected faults: seeded link loss must be
// absorbed by retransmission (barrier semantics intact, no early exit), and
// a crashed member must surface as a loud, attributable group failure —
// never a hang.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "coll/engine.hpp"
#include "net/system.hpp"
#include "scenario/engine.hpp"

namespace nectar::coll {
namespace {

GroupSpec group_of(int n, Algorithm alg = Algorithm::Tree) {
  GroupSpec g;
  g.id = 1;
  g.members.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) g.members[static_cast<std::size_t>(i)] = i;
  g.algorithm = alg;
  g.retransmit = sim::usec(500);
  return g;
}

struct Fixture {
  net::NectarSystem sys;
  std::vector<std::unique_ptr<CollectiveEngine>> eng;

  Fixture(int n, Algorithm alg, bool multicast) : sys(n) {
    GroupSpec g = group_of(n, alg);
    if (multicast) g.mcast = sys.net().mcast_ref(g.members[0], g.members);
    for (int i = 0; i < n; ++i) {
      eng.push_back(std::make_unique<CollectiveEngine>(sys.net().datalink(i)));
      eng.back()->join_group(g);
    }
  }
};

TEST(CollFaults, TreeBarrierSurvivesSeededLinkDrop) {
  const int n = 4, iters = 5;
  Fixture fx(n, Algorithm::Tree, /*multicast=*/true);
  // Lossy member and lossy root: drops eat Arrives, Releases and their
  // multicast replicas; retransmission must recover all of them.
  fx.sys.net().cab(2).out_link().set_drop_rate(0.4, 99);
  fx.sys.net().cab(0).out_link().set_drop_rate(0.2, 7);

  std::vector<std::vector<sim::SimTime>> entered(iters, std::vector<sim::SimTime>(n, -1));
  std::vector<std::vector<sim::SimTime>> exited(iters, std::vector<sim::SimTime>(n, -1));
  int ok_count = 0;
  for (int i = 0; i < n; ++i) {
    fx.sys.runtime(i).fork_app("w", [&, i] {
      core::Cpu& cpu = fx.sys.runtime(i).cpu();
      for (int it = 0; it < iters; ++it) {
        cpu.sleep_for(sim::usec(30) * static_cast<sim::SimTime>((i * 3 + it) % n));
        entered[static_cast<std::size_t>(it)][static_cast<std::size_t>(i)] =
            cpu.engine().now();
        if (fx.eng[static_cast<std::size_t>(i)]->barrier(1)) ++ok_count;
        exited[static_cast<std::size_t>(it)][static_cast<std::size_t>(i)] =
            cpu.engine().now();
      }
    });
  }
  fx.sys.engine().run();

  EXPECT_EQ(ok_count, n * iters);
  std::uint64_t retx = 0;
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(fx.eng[static_cast<std::size_t>(i)]->ops_failed(), 0u) << "node " << i;
    retx += fx.eng[static_cast<std::size_t>(i)]->retransmits();
  }
  EXPECT_GT(retx, 0u);  // the loss was real; recovery did the work
  for (int it = 0; it < iters; ++it) {
    sim::SimTime last_entry = -1, first_exit = -1;
    for (int i = 0; i < n; ++i) {
      last_entry = std::max(
          last_entry, entered[static_cast<std::size_t>(it)][static_cast<std::size_t>(i)]);
      sim::SimTime e = exited[static_cast<std::size_t>(it)][static_cast<std::size_t>(i)];
      first_exit = first_exit < 0 ? e : std::min(first_exit, e);
    }
    // The barrier contract held through the loss: nobody left round `it`
    // before the last member entered it.
    EXPECT_GE(first_exit, last_entry) << "iteration " << it;
  }
}

TEST(CollFaults, DisseminationRecoversThroughNacks) {
  const int n = 4, iters = 3;
  Fixture fx(n, Algorithm::Dissemination, /*multicast=*/false);
  fx.sys.net().cab(1).out_link().set_drop_rate(0.4, 21);

  int ok_count = 0;
  for (int i = 0; i < n; ++i) {
    fx.sys.runtime(i).fork_app("w", [&, i] {
      for (int it = 0; it < iters; ++it) {
        if (fx.eng[static_cast<std::size_t>(i)]->barrier(1)) ++ok_count;
      }
    });
  }
  fx.sys.engine().run();
  EXPECT_EQ(ok_count, n * iters);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(fx.eng[static_cast<std::size_t>(i)]->ops_failed(), 0u) << "node " << i;
  }
}

TEST(CollFaults, CabCrashFailsGroupLoudlyNotHang) {
  // Scenario-level: a cab_crash takes node 3 off the network mid-run. The
  // barrier loop must convert the silence into a timed-out group failure on
  // the survivors (the run ending at all proves no hang; duration bounds it).
  scenario::ScenarioSpec spec = scenario::ScenarioSpec::from_config(
      scenario::Config::parse_string(R"(
[scenario]
name = coll-crash
seed = 7
duration = 80ms

[topology]
kind = star
nodes = 4

[collectives]
enabled = true
mode = cab
op = barrier
iterations = 0
interval = 1ms
timeout = 5ms
retransmit = 500us

[fault]
kind = cab_crash
target = node3.cab
at = 20ms
duration = 50ms
)"));
  scenario::Scenario sc(std::move(spec));
  sc.run();

  scenario::CollectiveDriver* drv = sc.collectives();
  ASSERT_NE(drv, nullptr);
  // Plenty of rounds completed before the crash, then a loud failure.
  EXPECT_GT(drv->rounds_completed(), 5u);
  EXPECT_EQ(drv->data_errors(), 0u);
  std::uint64_t failed = 0;
  bool named = false;
  for (int i = 0; i < 3; ++i) {
    CollectiveEngine* e = drv->engine(i);
    ASSERT_NE(e, nullptr);
    failed += e->ops_failed();
    if (e->last_error().find("timed out") != std::string::npos &&
        e->last_error().find("rank 3") != std::string::npos) {
      named = true;
    }
  }
  EXPECT_GT(failed, 0u);
  EXPECT_TRUE(named) << "no survivor named the crashed rank in its error";

  obs::RunReport rep = sc.report();
  std::string json = rep.to_json_string();
  EXPECT_NE(json.find("coll.ops_failed"), std::string::npos);
}

TEST(CollFaults, ScenarioCollectivesDeterministicAcrossRuns) {
  const char* kConfig = R"(
[scenario]
name = coll-det
seed = 11
duration = 40ms

[topology]
kind = star
nodes = 6

[collectives]
enabled = true
mode = cab
op = reduce
reduce = sum
iterations = 0
interval = 500us

[fault]
kind = link_drop
target = node2.link
at = 5ms
duration = 20ms
rate = 0.3
)";
  auto run_once = [&] {
    scenario::Scenario sc(
        scenario::ScenarioSpec::from_config(scenario::Config::parse_string(kConfig)));
    sc.run();
    return sc.report().to_json_string();
  };
  std::string a = run_once();
  std::string b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("coll.rounds"), std::string::npos);
}

}  // namespace
}  // namespace nectar::coll
