#include "sim/engine.hpp"

#include <cassert>
#include <stdexcept>

namespace nectar::sim {

Engine::EventId Engine::schedule_at(SimTime t, Action fn) {
  if (t < now_) throw std::logic_error("Engine::schedule_at: time in the past");
  EventId id = next_id_++;
  queue_.push(QueueEntry{t, id});
  live_.emplace(id, std::move(fn));
  return id;
}

bool Engine::cancel(EventId id) { return live_.erase(id) > 0; }

bool Engine::step() {
  while (!queue_.empty()) {
    QueueEntry e = queue_.top();
    queue_.pop();
    auto it = live_.find(e.id);
    if (it == live_.end()) continue;  // cancelled
    Action fn = std::move(it->second);
    live_.erase(it);
    assert(e.time >= now_);
    now_ = e.time;
    ++processed_;
    fn();
    return true;
  }
  return false;
}

void Engine::run() {
  while (step()) {
  }
}

bool Engine::run_until(SimTime t) {
  while (!queue_.empty()) {
    // Skip over cancelled entries without advancing time.
    QueueEntry e = queue_.top();
    if (!live_.count(e.id)) {
      queue_.pop();
      continue;
    }
    if (e.time > t) {
      now_ = t;
      return true;
    }
    step();
  }
  now_ = std::max(now_, t);
  return false;
}

bool Engine::run_while(const std::function<bool()>& pending) {
  while (pending()) {
    if (!step()) return false;
  }
  return true;
}

}  // namespace nectar::sim
