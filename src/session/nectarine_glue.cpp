// The CabNectarine session_* surface, defined next to the SessionManager so
// nectarine itself never links against the session layer (same one-way
// arrangement as the coll_* glue).

#include "nectarine/cab_api.hpp"
#include "session/manager.hpp"

namespace nectar::nectarine {

std::uint32_t CabNectarine::session_open(int trunk, std::uint8_t priority, std::uint8_t weight) {
  if (sessions_ == nullptr) return session::SessionManager::kNoHandle;
  return sessions_->open_channel(trunk, priority, weight);
}

session::SendResult CabNectarine::session_send(std::uint32_t channel,
                                               std::span<const std::uint8_t> payload) {
  if (sessions_ == nullptr) return session::SendResult::Failed;
  return sessions_->try_send(channel, payload);
}

void CabNectarine::session_close(std::uint32_t channel) {
  if (sessions_ != nullptr) sessions_->close_channel(channel);
}

}  // namespace nectar::nectarine
