#include "hw/fifo.hpp"

#include <gtest/gtest.h>

#include "hw/crc.hpp"
#include "sim/engine.hpp"

namespace nectar::hw {
namespace {

Frame make_frame(std::size_t payload_len, std::uint8_t fill = 0x11) {
  Frame f;
  f.payload.assign(payload_len, fill);
  f.crc = Crc32::compute(f.payload);
  return f;
}

TEST(FiberInFifo, AcceptsAndExposesFrame) {
  sim::Engine e;
  FiberInFifo fifo(e, 4096);
  int arrivals = 0;
  fifo.set_arrival_callback([&] { ++arrivals; });
  EXPECT_TRUE(fifo.offer(make_frame(100), 10, 90));
  EXPECT_EQ(arrivals, 1);
  ASSERT_TRUE(fifo.has_frame());
  EXPECT_EQ(fifo.front().frame.payload.size(), 100u);
  EXPECT_EQ(fifo.front().first_byte, 10);
  EXPECT_EQ(fifo.front().last_byte, 90);
}

TEST(FiberInFifo, RejectsWhenFull) {
  sim::Engine e;
  FiberInFifo fifo(e, 256);
  EXPECT_TRUE(fifo.offer(make_frame(200), 0, 10));
  Frame second = make_frame(100);
  EXPECT_FALSE(fifo.offer(std::move(second), 0, 10));
  EXPECT_EQ(fifo.offers_rejected(), 1u);
  // Rejection must leave the frame intact (flow-control contract).
  EXPECT_EQ(second.payload.size(), 100u);
}

TEST(FiberInFifo, PopFreesSpaceAndNotifies) {
  sim::Engine e;
  FiberInFifo fifo(e, 256);
  int drains = 0;
  fifo.set_drain_notify([&] { ++drains; });
  fifo.offer(make_frame(200), 0, 10);
  EXPECT_GT(fifo.used(), 200u);
  auto af = fifo.pop();
  EXPECT_EQ(af.frame.payload.size(), 200u);
  EXPECT_EQ(fifo.used(), 0u);
  EXPECT_EQ(drains, 1);
  EXPECT_FALSE(fifo.has_frame());
}

TEST(FiberInFifo, FifoOrderPreserved) {
  sim::Engine e;
  FiberInFifo fifo(e, 64 * 1024);
  fifo.offer(make_frame(10, 0xAA), 0, 1);
  fifo.offer(make_frame(20, 0xBB), 2, 3);
  EXPECT_EQ(fifo.pop().frame.payload[0], 0xAA);
  EXPECT_EQ(fifo.pop().frame.payload[0], 0xBB);
}

TEST(FiberInFifo, PopEmptyThrows) {
  sim::Engine e;
  FiberInFifo fifo(e);
  EXPECT_THROW(fifo.pop(), std::logic_error);
}

TEST(FiberInFifo, PayloadAvailabilityIsCutThrough) {
  sim::Engine e;
  FiberInFifo fifo(e, 64 * 1024);
  // 1000-byte payload arriving linearly between t=0 and t=1008*80 (the wire
  // carries payload + framing overhead).
  Frame f = make_frame(1000);
  std::size_t wire = f.wire_bytes();
  sim::SimTime last = static_cast<sim::SimTime>(wire) * 80;
  fifo.offer(std::move(f), 0, last);
  // The first 20 payload bytes are available long before the last byte.
  sim::SimTime t20 = fifo.payload_available_at(20);
  EXPECT_GT(t20, 0);
  EXPECT_LT(t20, last / 10);
  // The full payload needs (almost) the whole serialization time.
  sim::SimTime t_all = fifo.payload_available_at(1000);
  EXPECT_GT(t_all, last * 9 / 10);
  EXPECT_LE(t_all, last);
}

TEST(FiberInFifo, AccountsWireOverheadInOccupancy) {
  sim::Engine e;
  FiberInFifo fifo(e, 1024);
  Frame f = make_frame(100);
  f.route = {3, 5};  // remaining route bytes travel with the frame
  std::size_t expect = f.wire_bytes();
  fifo.offer(std::move(f), 0, 1);
  EXPECT_EQ(fifo.used(), expect);
  EXPECT_EQ(fifo.used(), 100 + 2 + kFrameOverhead);
}

}  // namespace
}  // namespace nectar::hw
