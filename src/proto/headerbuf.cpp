#include "proto/headerbuf.hpp"

#include "obs/metrics.hpp"

namespace nectar::proto {

HeaderBufPool& HeaderBufPool::instance() {
  static thread_local HeaderBufPool pool;
  return pool;
}

std::unique_ptr<HeaderBuf> HeaderBufPool::acquire() {
  ++acquires_;
  if (!free_.empty()) {
    ++reuses_;
    std::unique_ptr<HeaderBuf> b = std::move(free_.back());
    free_.pop_back();
    b->reset();
    return b;
  }
  return std::make_unique<HeaderBuf>();
}

void HeaderBufPool::release(std::unique_ptr<HeaderBuf> b) {
  if (free_.size() < kMaxPooled) free_.push_back(std::move(b));
}

void HeaderBufPool::register_metrics(obs::Registration& reg, const std::string& component,
                                     int node) const {
  reg.probe(node, component, "acquires",
            [this] { return static_cast<std::int64_t>(acquires()); });
  reg.probe(node, component, "reuses", [this] { return static_cast<std::int64_t>(reuses()); });
  reg.probe(node, component, "pooled", [this] { return static_cast<std::int64_t>(pooled()); });
}

}  // namespace nectar::proto
