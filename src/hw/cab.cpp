#include "hw/cab.hpp"

#include <stdexcept>

namespace nectar::hw {

CabBoard::CabBoard(sim::Engine& engine, std::string name, int node_id, VmeBus* vme)
    : engine_(engine),
      name_(std::move(name)),
      node_id_(node_id),
      in_fifo_(engine),
      out_link_(engine, name_ + ".out"),
      vme_(vme),
      dma_(engine, memory_, in_fifo_, out_link_, vme) {
  in_fifo_.set_arrival_callback([this] { raise_irq(CabIrq::PacketArrival); });
}

void CabBoard::set_irq_handler(CabIrq irq, std::function<void()> handler) {
  irq_handlers_[static_cast<int>(irq)] = std::move(handler);
}

void CabBoard::raise_irq(CabIrq irq) {
  auto& h = irq_handlers_[static_cast<int>(irq)];
  if (!h) {
    throw std::logic_error(name_ + ": interrupt raised with no handler installed (irq " +
                           std::to_string(static_cast<int>(irq)) + ")");
  }
  h();
}

}  // namespace nectar::hw
