#pragma once

// Scenario engine: one object that assembles a whole experiment — topology,
// per-node protocol stacks, workloads, fault schedule — from a declarative
// spec (usually parsed from an INI file; see docs/SCENARIOS.md), runs it for
// a fixed simulated duration, and renders an SLO-style RunReport: tail
// latency percentiles, per-workload goodput and fairness, retransmit and
// drop counters with fault attribution.
//
// Everything random in the run — workload arrivals, think times, message
// sizes, fault jitter, link loss streams — derives from the single scenario
// seed, so two runs of the same (spec, seed) produce byte-identical
// reports, and changing the seed decorrelates every stream at once.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/audit.hpp"
#include "obs/causal.hpp"
#include "obs/pcap.hpp"
#include "obs/report.hpp"
#include "obs/timeseries.hpp"
#include "proto/ip.hpp"
#include "route/manager.hpp"
#include "scenario/collectives.hpp"
#include "scenario/config.hpp"
#include "scenario/faults.hpp"
#include "scenario/sessions.hpp"
#include "scenario/topology.hpp"
#include "scenario/workload.hpp"

namespace nectar::scenario {

/// One pcap tap: `element` names a capture point in the topology
/// ("node<i>.link" — node i's outbound fiber). `format` picks the link
/// type: "raw_ip" strips the Nectar datalink header and keeps IP packets
/// only (Wireshark dissects the TCP/IP suite); "datalink" records whole
/// Nectar frames (LINKTYPE_USER0).
struct CaptureSpec {
  std::string element;
  std::string file;
  std::string format = "raw_ip";
};

/// Flight-recorder switches: `folded` enables the cycle-attribution
/// profiler and names its folded-stack output; `timeline` turns on TCP
/// connection timelines + RMP event recording and names the JSON file they
/// are written to at the end of run() (also embedded in the report's
/// "timelines" section).
struct ProfileSpec {
  std::string folded;
  std::string timeline;
  bool enabled() const { return !folded.empty() || !timeline.empty(); }
};

/// Causal-tracing switches ([tracing] section). Default-off: with
/// enabled=false no CausalTracer exists, every instrumentation site is one
/// failed pointer test, no stamp bytes ride the wire, and reports carry no
/// tailtrace.* rows — so pre-existing scenarios stay byte-identical.
struct TracingSpec {
  bool enabled = false;
  double sample = 0.01;            ///< head-sampling probability per message
  std::int64_t top_k = 10;         ///< slowest deliveries kept per flow in the artifact
  std::int64_t max_traces = 4096;  ///< stop starting new traces past this
  std::string artifact;            ///< tail-trace JSON file ("" = report rows only)
};

/// Continuous telemetry ([telemetry] section). Default-off: with
/// enabled=false no Sampler or Auditor exists, run() drives the clock in one
/// run_until, and pre-existing scenarios stay byte-identical. Enabled, the
/// run is stepped `interval` at a time: every metric is sampled into a
/// delta-encoded time series, conservation invariants are checked at each
/// tick, and fault/failover windows are overlaid as marks. With shards == 1
/// stepping is invisible to the event stream; with shards > 1 it caps the
/// synchronization window at `interval`, so telemetry-on parallel runs are
/// deterministic but comparable only with other telemetry-on runs.
struct TelemetrySpec {
  bool enabled = false;
  sim::SimTime interval = sim::msec(10);  ///< sample cadence (sim time)
  std::string artifact;                   ///< time-series JSON ("" = rows only)
  bool audit = true;                      ///< run the conservation auditor
  std::string audit_artifact;             ///< audit JSON ("" = rows only)
  std::int64_t max_samples = 4096;        ///< ring capacity per series
  /// Optional comma-separated series filter (substring match on
  /// "component.name"); empty records everything not excluded by default.
  std::vector<std::string> include;
};

struct ScenarioSpec {
  std::string name = "scenario";
  std::uint64_t seed = 1;
  sim::SimTime duration = sim::msec(100);
  TopologySpec topology;
  bool tcp_congestion = true;      ///< scenarios default to the full stack
  bool software_checksum = true;
  std::int64_t mtu = static_cast<std::int64_t>(proto::Ip::kDefaultMtu);
  bool substrate_metrics = false;  ///< HUB/pool probes into the report
  bool attach_metrics = false;     ///< full metrics snapshot in the report
  /// Conservative-parallel execution ([parallel] section). shards=1 (the
  /// default) runs the sequential engine and reproduces legacy reports
  /// byte-for-byte. shards>1 is incompatible with [tracing] and [routing]
  /// (process-global mutable state); the constructor rejects the combination.
  ParallelSpec parallel;
  /// Control plane ([routing] section). Default-off: with enabled=false no
  /// RouteManager is built, no monitor threads run, and reports carry no
  /// route.* rows, so pre-existing scenarios stay byte-identical.
  route::RoutingConfig routing;
  /// Collective workload ([collectives] section). Default-off: with
  /// enabled=false no group is formed, no coll mailboxes or probes exist,
  /// and reports carry no coll.* rows — pre-existing scenarios stay
  /// byte-identical.
  CollectivesSpec collectives;
  /// Virtual-channel session workload ([sessions] section). Default-off:
  /// with enabled=false no SessionManager exists, no trunks are wired, and
  /// reports carry no session.* rows — pre-existing scenarios stay
  /// byte-identical.
  SessionsSpec sessions;
  TelemetrySpec telemetry;
  std::vector<WorkloadSpec> workloads;
  std::vector<FaultSpec> faults;
  std::vector<CaptureSpec> captures;
  ProfileSpec profile;
  TracingSpec tracing;

  /// Build a spec from a parsed config: one [scenario] and [topology]
  /// section, any number of [workload] and [fault] sections (applied in
  /// file order). Throws std::runtime_error / std::invalid_argument on
  /// malformed input.
  static ScenarioSpec from_config(const Config& cfg);
};

class Scenario {
 public:
  /// Builds the network, stacks, workloads and fault schedule. Ready to
  /// run() immediately after construction.
  explicit Scenario(ScenarioSpec spec);

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// Run the simulation clock to spec().duration and close fault
  /// attribution windows. Call once. With [telemetry] enabled the clock is
  /// stepped one sample interval at a time, artifacts are written, and a
  /// conservation-invariant violation throws std::runtime_error (after the
  /// structured audit report has been written).
  void run();

  /// The SLO report ("scenario" bench format): per-workload percentiles,
  /// goodput, fairness, shed/error counts; network-wide drop, retransmit
  /// and fault-attribution totals.
  obs::RunReport report();

  const ScenarioSpec& spec() const { return spec_; }
  net::Network& net() { return net_; }
  int nodes() const { return net_.cab_count(); }
  net::NodeStack& stack(int node) { return *stacks_.at(static_cast<std::size_t>(node)); }
  FaultScheduler& faults() { return *faults_; }
  /// The control plane, or nullptr when [routing] enabled=false.
  route::RouteManager* routing() { return routing_.get(); }
  /// The causal tracer, or nullptr when [tracing] enabled=false.
  obs::CausalTracer* causal_tracer() { return tracer_.get(); }
  /// The collective driver, or nullptr when [collectives] enabled=false.
  CollectiveDriver* collectives() { return collectives_.get(); }
  /// The session driver, or nullptr when [sessions] enabled=false.
  SessionDriver* sessions() { return sessions_.get(); }
  /// The telemetry sampler, or nullptr when [telemetry] enabled=false.
  obs::Sampler* sampler() { return sampler_.get(); }
  /// The conservation auditor, or nullptr when [telemetry] audit is off.
  obs::Auditor* auditor() { return auditor_.get(); }
  const std::vector<std::unique_ptr<Workload>>& workloads() const { return workloads_; }
  /// The pcap writers opened for spec().captures, in spec order (tests
  /// inspect packet counts; files flush on Scenario destruction).
  const std::vector<std::unique_ptr<obs::PcapWriter>>& captures() const { return pcaps_; }

 private:
  obs::json::Value timelines_json();

  ScenarioSpec spec_;
  net::Network net_;
  std::vector<std::unique_ptr<net::NodeStack>> stacks_;
  std::unique_ptr<route::RouteManager> routing_;
  std::unique_ptr<obs::CausalTracer> tracer_;
  std::unique_ptr<FaultScheduler> faults_;
  std::vector<std::unique_ptr<Workload>> workloads_;
  std::unique_ptr<CollectiveDriver> collectives_;
  std::unique_ptr<SessionDriver> sessions_;
  std::vector<std::unique_ptr<obs::PcapWriter>> pcaps_;
  std::unique_ptr<obs::Sampler> sampler_;
  std::unique_ptr<obs::Auditor> auditor_;
  // Last member: holds the telemetry probes (workload counters), which read
  // the workloads above — it must release before they are destroyed.
  obs::Registration telemetry_reg_;
};

}  // namespace nectar::scenario
