#include "route/pathdb.hpp"

#include <gtest/gtest.h>

#include "scenario/topology.hpp"

namespace nectar::route {
namespace {

// fat_tree nodes=8 hub_ports=6 spines=2: leaf HUBs 0 (nodes 0-3) and 1
// (nodes 4-7) on ports 0-3, uplink port 4 to spine HUB 2 and port 5 to
// spine HUB 3.
scenario::TopologySpec fat_tree8() {
  scenario::TopologySpec s;
  s.kind = scenario::TopologyKind::FatTree;
  s.nodes = 8;
  s.hub_ports = 6;
  s.spines = 2;
  return s;
}

TEST(PathDbTest, CrossLeafPairsGetEdgeDisjointSpinePaths) {
  net::Network net;
  scenario::build_topology(net, fat_tree8(), 1);
  PathDb db(net, 2, 42);

  ASSERT_EQ(db.path_count(0, 4), 2);
  const hw::RouteRef& p0 = db.path(0, 4, 0);
  const hw::RouteRef& p1 = db.path(0, 4, 1);
  // Three HUB hops each: leaf uplink byte, spine crossbar byte, then the
  // destination's leaf port.
  ASSERT_EQ(p0.size(), 3u);
  ASSERT_EQ(p1.size(), 3u);
  EXPECT_EQ(p0[1], 1);  // each spine forwards to leaf 1 on its port 1
  EXPECT_EQ(p1[1], 1);
  EXPECT_EQ(p0[2], 0);  // node 4 sits on leaf1 port 0
  EXPECT_EQ(p1[2], 0);
  // Edge-disjoint: the two paths must leave leaf0 on different uplinks.
  EXPECT_NE(p0[0], p1[0]);
  EXPECT_TRUE(p0[0] == 4 || p0[0] == 5);
  EXPECT_TRUE(p1[0] == 4 || p1[0] == 5);
}

TEST(PathDbTest, SameHubAndSelfPairsHaveOnePath) {
  net::Network net;
  scenario::build_topology(net, fat_tree8(), 1);
  PathDb db(net, 3, 42);

  ASSERT_EQ(db.path_count(0, 1), 1);
  EXPECT_EQ(db.path(0, 1, 0).bytes(), (std::vector<std::uint8_t>{1}));
  ASSERT_EQ(db.path_count(0, 0), 1);
  EXPECT_EQ(db.path(0, 0, 0).bytes(), (std::vector<std::uint8_t>{0}));
}

TEST(PathDbTest, ReverseSymmetry) {
  net::Network net;
  scenario::build_topology(net, fat_tree8(), 1);
  PathDb db(net, 2, 42);

  // Path i of (b, a) must be the wire-level reverse of path i of (a, b):
  // in this 2-level fat tree both directions of path i cross the same spine
  // (both leaves reach spine s on uplink port 4+s, so the first byte is even
  // numerically equal), the spine byte names the destination's leaf, and the
  // final byte is the destination's leaf port.
  for (int a : {0, 1, 2, 3}) {
    for (int b : {4, 5, 6, 7}) {
      ASSERT_EQ(db.path_count(a, b), db.path_count(b, a));
      for (int i = 0; i < db.path_count(a, b); ++i) {
        const hw::RouteRef& f = db.path(a, b, i);
        const hw::RouteRef& r = db.path(b, a, i);
        ASSERT_EQ(f.size(), 3u);
        ASSERT_EQ(r.size(), 3u);
        EXPECT_EQ(f[0], r[0]) << "path " << i << " of (" << a << "," << b
                              << ") crosses a different spine than its reverse";
        EXPECT_EQ(f[1], 1);  // spine -> leaf1 (b's leaf)
        EXPECT_EQ(r[1], 0);  // spine -> leaf0 (a's leaf)
        EXPECT_EQ(f[2], net.cab_port(b));
        EXPECT_EQ(r[2], net.cab_port(a));
      }
    }
  }
}

TEST(PathDbTest, DeterministicPerSeed) {
  net::Network na, nb;
  scenario::build_topology(na, fat_tree8(), 1);
  scenario::build_topology(nb, fat_tree8(), 1);
  PathDb a(na, 2, 7);
  PathDb b(nb, 2, 7);
  for (int s = 0; s < 8; ++s) {
    for (int d = 0; d < 8; ++d) {
      ASSERT_EQ(a.path_count(s, d), b.path_count(s, d));
      for (int i = 0; i < a.path_count(s, d); ++i) {
        EXPECT_EQ(a.path(s, d, i).bytes(), b.path(s, d, i).bytes());
      }
      EXPECT_EQ(a.preferred(s, d), b.preferred(s, d));
    }
  }
}

TEST(PathDbTest, PreferredSpreadsAcrossTheEcmpSet) {
  net::Network net;
  scenario::build_topology(net, fat_tree8(), 1);
  PathDb db(net, 2, 42);
  bool saw[2] = {false, false};
  for (int s = 0; s < 8; ++s) {
    for (int d = 0; d < 8; ++d) {
      int p = db.preferred(s, d);
      ASSERT_GE(p, 0);
      ASSERT_LT(p, db.path_count(s, d));
      if (db.path_count(s, d) == 2) saw[p] = true;
    }
  }
  // With 32 cross-leaf ordered pairs, a seeded hash that never picks one of
  // the two members would defeat the load-balancing goal.
  EXPECT_TRUE(saw[0] && saw[1]) << "ECMP preference never used one spine";
}

TEST(PathDbTest, KOnePairsKeepBfsRoute) {
  net::Network net;
  scenario::build_topology(net, fat_tree8(), 1);
  PathDb db(net, 1, 42);
  ASSERT_EQ(db.path_count(0, 4), 1);
  EXPECT_EQ(db.path(0, 4, 0).size(), 3u);
}

}  // namespace
}  // namespace nectar::route
