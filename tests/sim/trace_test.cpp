#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include "obs/tracer.hpp"
#include "sim/engine.hpp"

namespace nectar::sim {
namespace {

TEST(Trace, MarksRecordSimulatedTime) {
  Engine e;
  TraceRecorder tr(e);
  e.schedule_at(100, [&] { tr.mark("a"); });
  e.schedule_at(250, [&] { tr.mark("b"); });
  e.run();
  EXPECT_EQ(tr.mark_time("a"), 100);
  EXPECT_EQ(tr.mark_time("b"), 250);
  EXPECT_EQ(tr.mark_time("missing"), -1);
}

TEST(Trace, SpansMeasureDurations) {
  Engine e;
  TraceRecorder tr(e);
  e.schedule_at(10, [&] { tr.begin("work"); });
  e.schedule_at(70, [&] { tr.end("work"); });
  e.run();
  ASSERT_EQ(tr.spans().size(), 1u);
  EXPECT_EQ(tr.spans()[0].duration(), 60);
  EXPECT_EQ(tr.span_total("work"), 60);
}

TEST(Trace, RepeatedSpansAccumulate) {
  Engine e;
  TraceRecorder tr(e);
  for (SimTime t = 0; t < 100; t += 20) {
    e.schedule_at(t, [&] { tr.begin("op"); });
    e.schedule_at(t + 5, [&] { tr.end("op"); });
  }
  e.run();
  EXPECT_EQ(tr.span_total("op"), 25);
  EXPECT_EQ(tr.spans().size(), 5u);
}

TEST(Trace, EndWithoutBeginThrows) {
  Engine e;
  TraceRecorder tr(e);
  EXPECT_THROW(tr.end("never-opened"), std::logic_error);
}

TEST(Trace, DisabledRecorderIgnoresEverything) {
  Engine e;
  TraceRecorder tr(e);
  tr.set_enabled(false);
  tr.mark("x");
  tr.begin("y");
  tr.end("y");  // no throw: disabled
  EXPECT_TRUE(tr.marks().empty());
  EXPECT_TRUE(tr.spans().empty());
}

TEST(Trace, SameLabelSpansNestLifo) {
  Engine e;
  TraceRecorder tr(e);
  // A re-entrant stage: outer [0, 100], inner [20, 50]. end() must close the
  // innermost open span with the label, so both depths account correctly.
  e.schedule_at(0, [&] { tr.begin("stage"); });
  e.schedule_at(20, [&] { tr.begin("stage"); });
  e.schedule_at(50, [&] { tr.end("stage"); });
  e.schedule_at(100, [&] { tr.end("stage"); });
  e.run();
  ASSERT_EQ(tr.spans().size(), 2u);
  // Inner closes first.
  EXPECT_EQ(tr.spans()[0].start, 20);
  EXPECT_EQ(tr.spans()[0].end, 50);
  EXPECT_EQ(tr.spans()[1].start, 0);
  EXPECT_EQ(tr.spans()[1].end, 100);
  EXPECT_EQ(tr.span_total("stage"), 130);
  EXPECT_EQ(tr.open_spans(), 0u);
}

TEST(Trace, EndAfterFullyClosedThrowsAgain) {
  Engine e;
  TraceRecorder tr(e);
  tr.begin("s");
  tr.end("s");
  EXPECT_THROW(tr.end("s"), std::logic_error);
  // Other labels with open spans don't satisfy a mismatched end().
  tr.begin("other");
  EXPECT_THROW(tr.end("s"), std::logic_error);
  tr.end("other");
}

TEST(Trace, ForwardsIntoTracerSink) {
  Engine e;
  TraceRecorder tr(e);
  obs::Tracer tracer(e);
  tracer.set_enabled(true);
  tr.set_sink(&tracer, tracer.track("node0", "cab.cpu"));
  e.schedule_at(5, [&] { tr.mark("m"); });
  e.schedule_at(10, [&] { tr.begin("s"); });
  e.schedule_at(30, [&] { tr.end("s"); });
  e.run();
  ASSERT_EQ(tracer.events().size(), 3u);
  EXPECT_EQ(tracer.events()[0].type, obs::Tracer::EventType::Instant);
  EXPECT_EQ(tracer.events()[0].name, "m");
  EXPECT_EQ(tracer.events()[0].ts, 5);
  EXPECT_EQ(tracer.events()[1].type, obs::Tracer::EventType::Begin);
  EXPECT_EQ(tracer.events()[2].type, obs::Tracer::EventType::End);
  EXPECT_EQ(tracer.events()[2].ts, 30);
  // Local recording continues alongside the sink.
  EXPECT_EQ(tr.marks().size(), 1u);
  EXPECT_EQ(tr.spans().size(), 1u);
  // Detach: subsequent events stay local only.
  tr.set_sink(nullptr, -1);
  tr.mark("local");
  EXPECT_EQ(tracer.events().size(), 3u);
}

TEST(Trace, ClearResets) {
  Engine e;
  TraceRecorder tr(e);
  tr.mark("m");
  tr.begin("s");
  tr.end("s");
  tr.clear();
  EXPECT_TRUE(tr.marks().empty());
  EXPECT_TRUE(tr.spans().empty());
}

}  // namespace
}  // namespace nectar::sim
