#include "hw/vme.hpp"

#include <algorithm>

namespace nectar::hw {

sim::SimTime VmeBus::acquire(sim::SimTime duration) {
  sim::SimTime start = std::max(engine_.now(), busy_until_);
  busy_until_ = start + duration;
  return busy_until_;
}

sim::SimTime VmeBus::programmed_access(std::size_t words) {
  words_ += words;
  return acquire(static_cast<sim::SimTime>(words) * word_access_);
}

void VmeBus::dma_transfer(std::size_t bytes, std::function<void()> done) {
  ++dma_count_;
  dma_bytes_ += bytes;
  sim::SimTime end = acquire(sim::costs::kVmeDmaSetup +
                             sim::transmit_time(static_cast<std::int64_t>(bytes), dma_rate_));
  engine_.schedule_at(end, std::move(done));
}

}  // namespace nectar::hw
