#include "hw/crc.hpp"

#include <array>

namespace nectar::hw {

namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;  // reflected IEEE polynomial

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
    t[i] = c;
  }
  return t;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t Crc32::compute(std::span<const std::uint8_t> data) {
  Crc32 c;
  c.update(data);
  return c.value();
}

void Crc32::update(std::span<const std::uint8_t> data) {
  std::uint32_t c = state_;
  for (std::uint8_t b : data) c = kTable[(c ^ b) & 0xFF] ^ (c >> 8);
  state_ = c;
}

std::uint32_t Crc32::value() const { return state_ ^ 0xFFFFFFFFu; }

void Crc32::reset() { state_ = kInit; }

}  // namespace nectar::hw
