// Mailbox concurrency semantics: multiple readers, chained upcalls, cache
// contention — §3.3's "Multiple threads can use these operations to process
// concurrently the messages arriving at a single mailbox."

#include <gtest/gtest.h>

#include <set>

#include "core/cpu.hpp"
#include "core/heap.hpp"
#include "core/mailbox.hpp"
#include "core/priorities.hpp"

namespace nectar::core {
namespace {

struct Fixture {
  sim::Engine engine;
  hw::CabMemory memory;
  Cpu cpu{engine, "cab.cpu"};
  BufferHeap heap{memory};
  Mailbox mbox{cpu, heap, "work", {0, 1}};
};

TEST(MailboxConcurrency, WorkQueueConsumedExactlyOnce) {
  Fixture f;
  constexpr int kWorkers = 4;
  constexpr int kJobs = 40;
  std::multiset<std::uint32_t> seen;
  for (int w = 0; w < kWorkers; ++w) {
    f.cpu.fork("worker", kSystemPriority, [&] {
      for (;;) {
        Message m = f.mbox.begin_get();
        std::uint32_t job = f.memory.read32(m.data);
        f.mbox.end_get(m);
        if (job == 0xFFFFFFFF) break;  // poison pill
        seen.insert(job);
        f.cpu.charge(sim::usec(20));  // "work"
      }
    });
  }
  f.cpu.fork("producer", kAppPriority, [&] {
    for (std::uint32_t j = 1; j <= kJobs; ++j) {
      Message m = f.mbox.begin_put(4);
      f.memory.write32(m.data, j);
      f.mbox.end_put(m);
    }
    for (int w = 0; w < kWorkers; ++w) {
      Message m = f.mbox.begin_put(4);
      f.memory.write32(m.data, 0xFFFFFFFF);
      f.mbox.end_put(m);
    }
  });
  f.engine.run();
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kJobs));
  for (std::uint32_t j = 1; j <= kJobs; ++j) {
    EXPECT_EQ(seen.count(j), 1u) << "job " << j;  // exactly once
  }
}

TEST(MailboxConcurrency, ChainedUpcallsRunToCompletion) {
  // end_put -> upcall A enqueues into B -> upcall B enqueues into C: the
  // §3.3 "converts a cross-thread procedure call into a local one" pattern
  // composed twice, all within the publisher's context.
  Fixture f;
  Mailbox b(f.cpu, f.heap, "b", {0, 2});
  Mailbox c(f.cpu, f.heap, "c", {0, 3});
  int final_count = 0;
  f.mbox.set_reader_upcall([&](Mailbox& mb) {
    auto m = mb.begin_get_try();
    if (m.has_value()) mb.enqueue(*m, b);
  });
  b.set_reader_upcall([&](Mailbox& mb) {
    auto m = mb.begin_get_try();
    if (m.has_value()) mb.enqueue(*m, c);
  });
  c.set_reader_upcall([&](Mailbox& mb) {
    auto m = mb.begin_get_try();
    if (m.has_value()) {
      ++final_count;
      mb.end_get(*m);
    }
  });
  f.cpu.fork("producer", kSystemPriority, [&] {
    std::uint64_t switches0 = f.cpu.context_switches();
    for (int i = 0; i < 5; ++i) {
      Message m = f.mbox.begin_put(8);
      f.mbox.end_put(m);  // the whole chain runs here
    }
    EXPECT_EQ(f.cpu.context_switches(), switches0);  // zero switches
  });
  f.engine.run();
  EXPECT_EQ(final_count, 5);
  EXPECT_LE(f.heap.bytes_in_use(), 3 * Mailbox::kSmallBufSize + 256);
}

TEST(MailboxConcurrency, CacheContentionFallsBackToHeapCorrectly) {
  Fixture f;
  constexpr int kWriters = 3;
  int consumed = 0;
  f.cpu.fork("reader", kAppPriority, [&] {
    for (int i = 0; i < kWriters * 10; ++i) {
      Message m = f.mbox.begin_get();
      f.mbox.end_get(m);
      ++consumed;
    }
  });
  for (int w = 0; w < kWriters; ++w) {
    f.cpu.fork("writer", kSystemPriority, [&] {
      for (int i = 0; i < 10; ++i) {
        Message m = f.mbox.begin_put(32);  // all compete for one cached buffer
        f.cpu.charge(sim::usec(5));        // hold it across a charge
        f.mbox.end_put(m);
        f.cpu.yield();
      }
    });
  }
  f.engine.run();
  EXPECT_EQ(consumed, kWriters * 10);
  EXPECT_GE(f.mbox.cache_hits(), 1u);                  // the cache did serve
  EXPECT_LT(f.mbox.cache_hits(), kWriters * 10ull);    // ...but not everyone
  EXPECT_EQ(f.heap.bytes_in_use(), Mailbox::kSmallBufSize);  // only the cache remains
}

TEST(MailboxConcurrency, UpcallAndBlockedReaderCoexist) {
  // The upcall claims every other *publish* (deciding before it dequeues);
  // the ones it leaves queued are consumed by a blocked server thread —
  // both §3.3 consumption styles coexisting on one mailbox.
  Fixture f;
  int upcall_got = 0, thread_got = 0;
  f.mbox.set_reader_upcall([&](Mailbox& mb) {
    if (mb.puts() % 2 == 0) return;  // leave even publishes for the thread
    auto m = mb.begin_get_try();
    if (m.has_value()) {
      ++upcall_got;
      mb.end_get(*m);
    }
  });
  f.cpu.fork("server", kAppPriority, [&] {
    for (int i = 0; i < 5; ++i) {
      Message m = f.mbox.begin_get();
      ++thread_got;
      f.mbox.end_get(m);
    }
  });
  f.cpu.fork("producer", kSystemPriority, [&] {
    for (std::uint32_t i = 0; i < 10; ++i) {
      Message m = f.mbox.begin_put(16);
      f.mbox.end_put(m);
      f.cpu.charge(sim::usec(30));
    }
  });
  f.engine.run();
  EXPECT_EQ(upcall_got, 5);
  EXPECT_EQ(thread_got, 5);
  EXPECT_EQ(f.mbox.queued(), 0u);
}

TEST(MailboxConcurrency, ManyMailboxesShareTheHeapFairly) {
  // Writers on distinct mailboxes exhaust the heap together; every blocked
  // writer resumes as readers drain — no one starves.
  sim::Engine engine;
  hw::CabMemory memory;
  Cpu cpu(engine, "cpu");
  BufferHeap heap(memory, hw::kDataBase, 64 * 1024);
  constexpr int kBoxes = 4;
  std::vector<std::unique_ptr<Mailbox>> boxes;
  for (int i = 0; i < kBoxes; ++i) {
    boxes.push_back(std::make_unique<Mailbox>(cpu, heap, "mb", MailboxAddr{0, 10u + i}));
  }
  int produced = 0, drained = 0;
  for (int i = 0; i < kBoxes; ++i) {
    cpu.fork("writer", kSystemPriority, [&, i] {
      for (int k = 0; k < 6; ++k) {
        Message m = boxes[static_cast<std::size_t>(i)]->begin_put(8 * 1024);  // 4x6x8K >> 64K
        boxes[static_cast<std::size_t>(i)]->end_put(m);
        ++produced;
      }
    });
    cpu.fork("reader", kAppPriority, [&, i] {
      for (int k = 0; k < 6; ++k) {
        Message m = boxes[static_cast<std::size_t>(i)]->begin_get();
        cpu.charge(sim::usec(50));
        boxes[static_cast<std::size_t>(i)]->end_get(m);
        ++drained;
      }
    });
  }
  engine.run();
  EXPECT_EQ(produced, kBoxes * 6);
  EXPECT_EQ(drained, kBoxes * 6);
  EXPECT_EQ(heap.bytes_in_use(), 0u);
}

}  // namespace
}  // namespace nectar::core
