#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/mailbox.hpp"
#include "proto/datalink.hpp"
#include "proto/headers.hpp"

namespace nectar::proto {

/// Internet Protocol on the CAB (paper §4.1).
///
/// Input processing happens at interrupt time: the start-of-data upcall
/// performs the header sanity check (including the IP header checksum) while
/// the rest of the packet is still arriving; the end-of-data upcall queues
/// fragments for reassembly and transfers complete datagrams — IP header
/// still attached — to the higher-level protocol's input mailbox with the
/// zero-copy Enqueue operation.
///
/// Output: IP_Output takes a header template (src/dst/protocol/ttl), the
/// transport header the caller appended, a reference to the data (an address
/// in CAB data memory), a free-when-sent flag, and fragments as needed.
class Ip : public DatalinkClient {
 public:
  /// Default MTU of the Nectar datalink for IP traffic: large enough that
  /// the paper's 8 KB benchmark messages travel as single packets (§6.2).
  static constexpr std::size_t kDefaultMtu = 9 * 1024;

  Ip(Datalink& dl, IpAddr my_addr, std::size_t mtu = kDefaultMtu);

  IpAddr address() const { return my_addr_; }
  std::size_t mtu() const { return mtu_; }
  core::CabRuntime& runtime() { return dl_.runtime(); }

  /// Register a transport protocol: complete datagrams with this protocol
  /// number are enqueued (IP header included) into `input`. Higher-level
  /// protocols must provide an input mailbox to IP; "this mailbox
  /// constitutes the entire receive interface between IP and higher
  /// protocols" (§4.1).
  void register_protocol(std::uint8_t protocol, core::Mailbox* input);

  /// Route: which Nectar node owns this IP address.
  void add_host_route(IpAddr addr, int node);

  /// Hook invoked (interrupt context) when a datagram must be rejected with
  /// an ICMP error: `code` is the ICMP type-3 code (2 = protocol
  /// unreachable). The ICMP module installs itself here; `offender` is the
  /// rejected datagram (IP header included), still owned by the callee.
  using IcmpErrorHook = std::function<void(std::uint8_t code, core::Message offender)>;
  void set_icmp_error_hook(IcmpErrorHook hook) { icmp_error_ = std::move(hook); }

  // --- IP_Output (§4.1) ------------------------------------------------------

  struct OutputInfo {
    IpAddr src = 0;  ///< 0 = fill in with our address
    IpAddr dst = 0;
    std::uint8_t protocol = 0;
    std::uint8_t ttl = 64;
    std::uint8_t tos = 0;
  };

  /// Send the transport header composed in `proto_header` (pass `{}` for
  /// none; the IP header is prepended into its headroom) ++ payload[0..len)
  /// as one datagram, fragmenting if it exceeds the MTU. `on_sent` runs
  /// (interrupt context) after the last byte of the last fragment has left
  /// the fiber. `tctx`, when valid, attributes the datagram (every fragment)
  /// to that causal trace.
  void output(const OutputInfo& info, HeaderBufLease proto_header, hw::CabAddr payload,
              std::size_t len, sim::InplaceAction on_sent = {}, obs::TraceContext tctx = {});

  /// Variant taking a mailbox message as the data area; frees it after
  /// transmission when `free_when_sent` (the paper's flag).
  void output_msg(const OutputInfo& info, HeaderBufLease proto_header, core::Message data,
                  bool free_when_sent, obs::TraceContext tctx = {});

  // --- DatalinkClient --------------------------------------------------------------

  std::size_t header_bytes() const override { return IpHeader::kSize; }
  core::Mailbox& input_mailbox() override { return input_; }
  void start_of_data(const core::Message& m, std::uint8_t src_node) override;
  void end_of_data(core::Message m, std::uint8_t src_node) override;

  // --- stats --------------------------------------------------------------------------

  std::uint64_t datagrams_sent() const { return sent_; }
  std::uint64_t fragments_sent() const { return frag_sent_; }
  std::uint64_t datagrams_delivered() const { return delivered_; }
  std::uint64_t datagrams_reassembled() const { return reassembled_; }
  std::uint64_t dropped_bad_header() const { return dropped_bad_header_; }
  std::uint64_t dropped_no_protocol() const { return dropped_no_protocol_; }
  std::uint64_t reassembly_timeouts() const { return reass_timeouts_; }
  std::size_t reassembly_pending() const { return reassembly_.size(); }

  /// How long an incomplete reassembly waits before being discarded.
  static constexpr sim::SimTime kReassemblyTimeout = sim::msec(500);

 private:
  struct ReassemblyKey {
    IpAddr src;
    IpAddr dst;
    std::uint16_t id;
    std::uint8_t protocol;
    auto operator<=>(const ReassemblyKey&) const = default;
  };
  struct Fragment {
    core::Message msg;       // unpublished message holding hdr+payload
    std::uint16_t offset;    // bytes (already scaled from 8-byte units)
    std::uint16_t len;       // payload bytes in this fragment
  };
  struct Reassembly {
    std::vector<Fragment> fragments;
    std::int32_t total_payload = -1;  // known once the MF=0 fragment arrives
    core::Cpu::TimerId timer = 0;
  };

  void deliver(core::Message m, const IpHeader& hdr);
  void handle_fragment(core::Message m, const IpHeader& hdr);
  void finish_reassembly(const ReassemblyKey& key, Reassembly& r, const IpHeader& last_hdr);
  void release(core::Message m) { input_.end_get(m); }
  int node_for(IpAddr dst) const;

  Datalink& dl_;
  IpAddr my_addr_;
  std::size_t mtu_;
  IcmpErrorHook icmp_error_;
  core::Mailbox& input_;
  std::map<std::uint8_t, core::Mailbox*> protocols_;
  std::map<IpAddr, int> host_routes_;
  std::map<ReassemblyKey, Reassembly> reassembly_;
  std::uint16_t next_id_ = 1;

  // Start-of-data verdicts, keyed by packet buffer address: back-to-back
  // packets pipeline through the datalink (frame N+1's start-of-data can
  // precede frame N's end-of-data interrupt), so each in-flight packet
  // carries its own header-check result.
  std::map<hw::CabAddr, bool> pending_header_ok_;

  std::uint64_t sent_ = 0;
  std::uint64_t frag_sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t reassembled_ = 0;
  std::uint64_t dropped_bad_header_ = 0;
  std::uint64_t dropped_no_protocol_ = 0;
  std::uint64_t reass_timeouts_ = 0;

  // Last member: probes read the counters above, so they must unhook first.
  obs::Registration metrics_reg_;
};

}  // namespace nectar::proto
