#include "nectarine/names.hpp"

#include <gtest/gtest.h>

#include "net/system.hpp"

namespace nectar::nectarine {
namespace {

struct Fixture {
  net::NectarSystem sys{3};
  NameServer server{sys.runtime(0), sys.stack(0).reqresp};
};

TEST(Names, RegisterAndLookupAcrossNodes) {
  Fixture f;
  core::MailboxAddr got{};
  bool done = false;
  f.sys.runtime(1).fork_app("service", [&] {
    core::Mailbox& mb = f.sys.runtime(1).create_mailbox("svc");
    NameClient c(f.sys.runtime(1), f.sys.stack(1).reqresp, f.server.address());
    EXPECT_EQ(c.register_name("printer", mb.address()), NameServer::kOk);
  });
  f.sys.runtime(2).fork_app("client", [&] {
    NameClient c(f.sys.runtime(2), f.sys.stack(2).reqresp, f.server.address());
    got = c.wait_for("printer");
    done = true;
  });
  f.sys.net().run_until(sim::sec(2));
  EXPECT_TRUE(done);
  EXPECT_EQ(got.node, 1);
  EXPECT_EQ(f.server.entries(), 1u);
}

TEST(Names, LookupMissingReportsNotFound) {
  Fixture f;
  bool done = false;
  f.sys.runtime(1).fork_app("client", [&] {
    NameClient c(f.sys.runtime(1), f.sys.stack(1).reqresp, f.server.address());
    core::MailboxAddr addr{};
    EXPECT_EQ(c.lookup("ghost", &addr), NameServer::kNotFound);
    done = true;
  });
  f.sys.net().run_until(sim::sec(2));
  EXPECT_TRUE(done);
}

TEST(Names, ConflictingRegistrationRejected) {
  Fixture f;
  bool done = false;
  f.sys.runtime(1).fork_app("t", [&] {
    NameClient c(f.sys.runtime(1), f.sys.stack(1).reqresp, f.server.address());
    EXPECT_EQ(c.register_name("db", {1, 10}), NameServer::kOk);
    EXPECT_EQ(c.register_name("db", {1, 10}), NameServer::kOk);       // idempotent
    EXPECT_EQ(c.register_name("db", {2, 99}), NameServer::kConflict);  // taken
    done = true;
  });
  f.sys.net().run_until(sim::sec(2));
  EXPECT_TRUE(done);
}

TEST(Names, UnregisterFreesTheName) {
  Fixture f;
  bool done = false;
  f.sys.runtime(1).fork_app("t", [&] {
    NameClient c(f.sys.runtime(1), f.sys.stack(1).reqresp, f.server.address());
    ASSERT_EQ(c.register_name("tmp", {1, 5}), NameServer::kOk);
    EXPECT_EQ(c.unregister_name("tmp"), NameServer::kOk);
    EXPECT_EQ(c.unregister_name("tmp"), NameServer::kNotFound);
    EXPECT_EQ(c.register_name("tmp", {2, 7}), NameServer::kOk);  // reusable
    done = true;
  });
  f.sys.net().run_until(sim::sec(2));
  EXPECT_TRUE(done);
}

TEST(Names, RendezvousWhenClientStartsFirst) {
  // The client begins waiting before the service registers — the blocking
  // lookup is the startup rendezvous.
  Fixture f;
  core::MailboxAddr got{};
  bool done = false;
  f.sys.runtime(2).fork_app("client", [&] {
    NameClient c(f.sys.runtime(2), f.sys.stack(2).reqresp, f.server.address());
    got = c.wait_for("late-service");
    done = true;
  });
  f.sys.runtime(1).fork_app("service", [&] {
    f.sys.runtime(1).cpu().sleep_for(sim::msec(5));
    NameClient c(f.sys.runtime(1), f.sys.stack(1).reqresp, f.server.address());
    c.register_name("late-service", {1, 77});
  });
  f.sys.net().run_until(sim::sec(2));
  EXPECT_TRUE(done);
  EXPECT_EQ(got.index, 77u);
}

TEST(Names, EndToEndRendezvousAndMessage) {
  // Full flow: service registers, client resolves by name and sends a
  // reliable message to the resolved address.
  Fixture f;
  std::string got;
  f.sys.runtime(1).fork_app("service", [&] {
    core::CabRuntime& rt = f.sys.runtime(1);
    core::Mailbox& mb = rt.create_mailbox("inbox");
    NameClient c(rt, f.sys.stack(1).reqresp, f.server.address());
    ASSERT_EQ(c.register_name("chat", mb.address()), NameServer::kOk);
    core::Message m = mb.begin_get();
    std::vector<std::uint8_t> buf(m.len);
    rt.board().memory().read(m.data, buf);
    got.assign(buf.begin(), buf.end());
    mb.end_get(m);
  });
  f.sys.runtime(2).fork_app("client", [&] {
    core::CabRuntime& rt = f.sys.runtime(2);
    NameClient c(rt, f.sys.stack(2).reqresp, f.server.address());
    core::MailboxAddr dst = c.wait_for("chat");
    core::Mailbox& s = rt.create_mailbox("s");
    core::Message m = s.begin_put(5);
    rt.board().memory().write(
        m.data, std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>("hello"), 5));
    f.sys.stack(2).rmp.send(dst, m);
  });
  f.sys.net().run_until(sim::sec(2));
  EXPECT_EQ(got, "hello");
}

}  // namespace
}  // namespace nectar::nectarine
