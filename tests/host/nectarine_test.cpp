#include "nectarine/nectarine.hpp"

#include <gtest/gtest.h>

#include <string>

#include "host/node.hpp"

namespace nectar::nectarine {
namespace {

struct Fixture {
  net::NectarSystem sys{2, /*with_vme=*/true};
  host::HostNode h0{sys, 0};
  host::HostNode h1{sys, 1};

  std::vector<std::uint8_t> bytes(const std::string& s) {
    return {s.begin(), s.end()};
  }
};

TEST(Nectarine, HostToCabMailboxHandoff) {
  // A host process produces a message in place; a CAB thread consumes it —
  // the §3.3 shared-memory path with no copies beyond the VME transfer.
  Fixture f;
  auto h = f.h0.nin.create_mailbox("ipc");
  std::string got;
  f.h0.host.run_process("producer", [&] {
    core::Message m = f.h0.nin.begin_put(h, 5);
    f.h0.nin.write_message(m, f.bytes("hi550"));
    f.h0.nin.end_put(h, m);
  });
  f.sys.runtime(0).fork_app("consumer", [&] {
    core::Message m = h.mb->begin_get();
    std::vector<std::uint8_t> buf(m.len);
    f.sys.runtime(0).board().memory().read(m.data, buf);
    got.assign(buf.begin(), buf.end());
    h.mb->end_get(m);
  });
  f.sys.engine().run();
  EXPECT_EQ(got, "hi550");
}

TEST(Nectarine, CabToHostMailboxHandoffPolling) {
  Fixture f;
  auto h = f.h0.nin.create_mailbox("ipc");
  std::string got;
  f.sys.runtime(0).fork_app("producer", [&] {
    f.sys.runtime(0).cpu().sleep_until(sim::usec(200));
    core::Message m = h.mb->begin_put(4);
    f.sys.runtime(0).board().memory().write(
        m.data, std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>("pong"), 4));
    h.mb->end_put(m);
  });
  f.h0.host.run_process("consumer", [&] {
    core::Message m = f.h0.nin.begin_get_poll(h);
    std::vector<std::uint8_t> buf(m.len);
    f.h0.nin.read_message(m, buf);
    got.assign(buf.begin(), buf.end());
    f.h0.nin.end_get(h, m);
  });
  f.sys.engine().run();
  EXPECT_EQ(got, "pong");
}

TEST(Nectarine, CabToHostMailboxHandoffBlocking) {
  Fixture f;
  auto h = f.h0.nin.create_mailbox("ipc");
  std::string got;
  f.sys.runtime(0).fork_app("producer", [&] {
    f.sys.runtime(0).cpu().sleep_until(sim::msec(3));
    core::Message m = h.mb->begin_put(6);
    f.sys.runtime(0).board().memory().write(
        m.data,
        std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>("queued"), 6));
    h.mb->end_put(m);
  });
  f.h0.host.run_process("server", [&] {
    core::Message m = f.h0.nin.begin_get_block(h);
    std::vector<std::uint8_t> buf(m.len);
    f.h0.nin.read_message(m, buf);
    got.assign(buf.begin(), buf.end());
    f.h0.nin.end_get(h, m);
  });
  f.sys.engine().run();
  EXPECT_EQ(got, "queued");
  EXPECT_GE(f.h0.driver.host_interrupts(), 1u);
}

TEST(Nectarine, RpcMailboxOpsWork) {
  // §3.3's RPC-based implementation, kept for the factor-of-two comparison.
  Fixture f;
  auto h = f.h0.nin.create_mailbox("ipc-rpc");
  std::string got;
  f.h0.host.run_process("producer", [&] {
    core::Message m = f.h0.nin.begin_put_rpc(h, 7);
    f.h0.nin.write_message(m, f.bytes("via-rpc"));
    f.h0.nin.end_put_rpc(h, m);
    core::Message g = f.h0.nin.begin_get_rpc(h);
    std::vector<std::uint8_t> buf(g.len);
    f.h0.nin.read_message(g, buf);
    got.assign(buf.begin(), buf.end());
    f.h0.nin.end_get_rpc(h, g);
  });
  f.sys.engine().run();
  EXPECT_EQ(got, "via-rpc");
  EXPECT_EQ(f.h0.services.rpc_mailbox_ops(), 5u);  // put, end, get, len, end
}

TEST(Nectarine, SharedMemoryOpsBeatRpcOps) {
  // §3.3: "the shared memory implementation provides about a factor of two
  // improvement over the RPC-based implementation".
  Fixture f;
  auto h = f.h0.nin.create_mailbox("bench");
  sim::SimTime shared_time = 0, rpc_time = 0;
  constexpr int kOps = 50;
  f.h0.host.run_process("bench", [&] {
    sim::SimTime t0 = f.sys.engine().now();
    for (int i = 0; i < kOps; ++i) {
      core::Message m = f.h0.nin.begin_put(h, 32);
      f.h0.nin.end_put(h, m);
      core::Message g = f.h0.nin.begin_get_poll(h);
      f.h0.nin.end_get(h, g);
    }
    shared_time = f.sys.engine().now() - t0;
    t0 = f.sys.engine().now();
    for (int i = 0; i < kOps; ++i) {
      core::Message m = f.h0.nin.begin_put_rpc(h, 32);
      f.h0.nin.end_put_rpc(h, m);
      core::Message g = f.h0.nin.begin_get_rpc(h);
      f.h0.nin.end_get_rpc(h, g);
    }
    rpc_time = f.sys.engine().now() - t0;
  });
  f.sys.engine().run();
  ASSERT_GT(shared_time, 0);
  ASSERT_GT(rpc_time, 0);
  EXPECT_GT(static_cast<double>(rpc_time) / static_cast<double>(shared_time), 1.5);
}

TEST(Nectarine, RemoteTaskCreation) {
  // §3.5: Nectarine "allows applications to create mailboxes and tasks on
  // other hosts or CABs".
  Fixture f;
  std::uint32_t ran_with = 0;
  f.h1.services.register_task("worker", [&](std::uint32_t arg) { ran_with = arg; });
  bool ok = false;
  f.h0.host.run_process("spawner", [&] {
    ok = f.h0.nin.start_remote_task(f.h0.services, f.h1.services.service_address(), "worker",
                                    1234);
  });
  f.sys.engine().run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(ran_with, 1234u);
  EXPECT_EQ(f.h1.services.tasks_started(), 1u);
}

TEST(Nectarine, UnknownRemoteTaskReportsFailure) {
  Fixture f;
  bool ok = true;
  f.h0.host.run_process("spawner", [&] {
    ok = f.h0.nin.start_remote_task(f.h0.services, f.h1.services.service_address(), "ghost", 0);
  });
  f.sys.engine().run();
  EXPECT_FALSE(ok);
}

}  // namespace
}  // namespace nectar::nectarine
