#include "obs/pcap.hpp"

#include <array>

namespace nectar::obs {

namespace {

// pcap file format constants (https://wiki.wireshark.org/Development/LibpcapFileFormat).
constexpr std::uint32_t kMagicNanosecond = 0xA1B23C4D;
constexpr std::uint16_t kVersionMajor = 2;
constexpr std::uint16_t kVersionMinor = 4;
constexpr std::uint32_t kSnapLen = 65535;
constexpr std::uint32_t kLinktypeRaw = 101;    // raw IP, no link header
constexpr std::uint32_t kLinktypeUser0 = 147;  // Nectar datalink frames

// Nectar datalink framing (mirrors proto::DatalinkHeader, which lives above
// obs in the link order): byte 0 = packet type, byte 1 = source node,
// bytes 2-3 = big-endian payload length. Type 1 = IP.
constexpr std::size_t kDatalinkHeaderSize = 4;
constexpr std::uint8_t kPacketTypeIp = 1;

void put_le16(std::ofstream& f, std::uint16_t v) {
  std::array<char, 2> b{static_cast<char>(v & 0xFF), static_cast<char>(v >> 8)};
  f.write(b.data(), b.size());
}

void put_le32(std::ofstream& f, std::uint32_t v) {
  std::array<char, 4> b{static_cast<char>(v & 0xFF), static_cast<char>((v >> 8) & 0xFF),
                        static_cast<char>((v >> 16) & 0xFF), static_cast<char>(v >> 24)};
  f.write(b.data(), b.size());
}

}  // namespace

PcapWriter::PcapWriter(const std::string& path, Format format)
    : path_(path), format_(format), out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) return;
  put_le32(out_, kMagicNanosecond);
  put_le16(out_, kVersionMajor);
  put_le16(out_, kVersionMinor);
  put_le32(out_, 0);  // thiszone (GMT offset): simulated clock, always 0
  put_le32(out_, 0);  // sigfigs
  put_le32(out_, kSnapLen);
  put_le32(out_, format == Format::RawIp ? kLinktypeRaw : kLinktypeUser0);
  ok_ = static_cast<bool>(out_);
}

PcapWriter::~PcapWriter() { flush(); }

void PcapWriter::frame(sim::SimTime ts, std::span<const std::uint8_t> bytes) {
  if (!ok_) return;
  if (format_ == Format::DatalinkFrame) {
    record(ts, bytes);
    return;
  }
  if (bytes.size() < kDatalinkHeaderSize || bytes[0] != kPacketTypeIp) {
    ++skipped_;
    return;
  }
  // Strip the datalink header; trust the length field but never read past
  // the frame buffer.
  std::size_t len = static_cast<std::size_t>(bytes[2]) << 8 | bytes[3];
  len = std::min(len, bytes.size() - kDatalinkHeaderSize);
  record(ts, bytes.subspan(kDatalinkHeaderSize, len));
}

void PcapWriter::packet(sim::SimTime ts, std::span<const std::uint8_t> bytes) {
  if (!ok_) return;
  record(ts, bytes);
}

void PcapWriter::record(sim::SimTime ts, std::span<const std::uint8_t> bytes) {
  std::uint32_t sec = static_cast<std::uint32_t>(ts / sim::kSecond);
  std::uint32_t nsec = static_cast<std::uint32_t>(ts % sim::kSecond);
  std::uint32_t len = static_cast<std::uint32_t>(bytes.size());
  std::uint32_t incl = std::min(len, kSnapLen);
  put_le32(out_, sec);
  put_le32(out_, nsec);
  put_le32(out_, incl);
  put_le32(out_, len);
  out_.write(reinterpret_cast<const char*>(bytes.data()), incl);
  ++written_;
}

void PcapWriter::flush() {
  if (out_.is_open()) out_.flush();
}

}  // namespace nectar::obs
