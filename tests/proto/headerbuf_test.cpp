#include "proto/headerbuf.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <vector>

#include "obs/span.hpp"
#include "proto/headers.hpp"
#include "session/wire.hpp"

namespace nectar::proto {
namespace {

TEST(HeaderBufTest, HeadroomAccounting) {
  HeaderBuf b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.headroom_remaining(), HeaderBuf::kCapacity);
  b.push_front(10);
  EXPECT_EQ(b.headroom_remaining(), HeaderBuf::kCapacity - 10);
  EXPECT_EQ(b.size(), 10u);
  b.push_front(4);
  EXPECT_EQ(b.headroom_remaining(), HeaderBuf::kCapacity - 14);
  b.reset();
  EXPECT_EQ(b.headroom_remaining(), HeaderBuf::kCapacity);
}

TEST(HeaderBufTest, PrependComposesBackToFront) {
  HeaderBuf b;
  std::span<std::uint8_t> inner = b.push_front(3);
  inner[0] = 'i';
  inner[1] = 'n';
  inner[2] = 'r';
  std::span<std::uint8_t> outer = b.push_front(2);
  outer[0] = 'o';
  outer[1] = 'u';
  std::span<const std::uint8_t> all = b.bytes();
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(all[0], 'o');
  EXPECT_EQ(all[1], 'u');
  EXPECT_EQ(all[2], 'i');
}

// The two deepest header stacks the simulator composes must fit kCapacity:
// the Nectar-native path with every optional layer on — session frame +
// Nectar reliable-message header + causal-trace stamp + datalink — and the
// TCP/IP path with the stamp. A new layer that would overflow should fail
// this test (at compile-size level) rather than corrupt wire bytes at run
// time.
TEST(HeaderBufTest, DeepestStacksFitTheHeadroom) {
  {
    HeaderBuf b;
    b.push_front(session::FrameHeader::kSize);  // 10
    b.push_front(NectarHeader::kSize);          // 14
    b.push_front(obs::kTraceStampBytes);        // 16
    b.push_front(DatalinkHeader::kSize);        // 4
    EXPECT_EQ(b.size(), session::FrameHeader::kSize + NectarHeader::kSize +
                            obs::kTraceStampBytes + DatalinkHeader::kSize);
    EXPECT_GE(b.headroom_remaining(), 0u);
  }
  {
    HeaderBuf b;
    b.push_front(TcpHeader::kSize);       // 20
    b.push_front(IpHeader::kSize);        // 20
    b.push_front(obs::kTraceStampBytes);  // 16
    b.push_front(DatalinkHeader::kSize);  // 4
    EXPECT_EQ(b.size(), 60u);
  }
}

TEST(HeaderBufTest, OverflowThrowsInsteadOfCorrupting) {
  HeaderBuf b;
  std::span<std::uint8_t> claimed = b.push_front(60);
  std::iota(claimed.begin(), claimed.end(), std::uint8_t{0});
  try {
    b.push_front(5);  // only 4 left
    FAIL() << "push_front past the headroom should throw";
  } catch (const std::logic_error& e) {
    // Loud and attributable: the message names the request and what's left.
    EXPECT_NE(std::string(e.what()).find("requested 5"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("4 of 64"), std::string::npos) << e.what();
  }
  // The failed claim consumed nothing and corrupted nothing.
  EXPECT_EQ(b.headroom_remaining(), 4u);
  ASSERT_EQ(b.size(), 60u);
  for (std::size_t i = 0; i < 60; ++i) {
    EXPECT_EQ(b.bytes()[i], static_cast<std::uint8_t>(i));
  }
}

TEST(HeaderBufTest, LeaseRecyclesThroughThePool) {
  HeaderBufPool& pool = HeaderBufPool::instance();
  pool.trim();
  std::uint64_t before = pool.acquires();
  {
    HeaderBufLease l = HeaderBufLease::acquire();
    l->push_front(8);
  }
  {
    HeaderBufLease l = HeaderBufLease::acquire();
    // Recycled buffers come back reset, not with the previous tenant's bytes.
    EXPECT_TRUE(l->empty());
    EXPECT_EQ(l->headroom_remaining(), HeaderBuf::kCapacity);
  }
  EXPECT_EQ(pool.acquires(), before + 2);
}

}  // namespace
}  // namespace nectar::proto
