#include "core/heap.hpp"

#include <stdexcept>

#include "core/cpu.hpp"

namespace nectar::core {

namespace {
constexpr std::size_t kAlign = 8;
constexpr std::size_t align_up(std::size_t n) { return (n + kAlign - 1) & ~(kAlign - 1); }
}  // namespace

BufferHeap::BufferHeap(hw::CabMemory& memory, hw::CabAddr base, std::size_t size)
    : memory_(memory), base_(base), size_(size), bytes_free_(size) {
  if (!hw::CabMemory::in_data_region(base, size)) {
    throw std::invalid_argument("BufferHeap must live in the DMA-able data region");
  }
  free_.emplace(base_, size_);
}

hw::CabAddr BufferHeap::alloc(std::size_t len) {
  std::size_t need = align_up(len ? len : 1);
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    if (it->second < need) continue;
    hw::CabAddr addr = it->first;
    std::size_t block = it->second;
    free_.erase(it);
    if (block > need) free_.emplace(addr + need, block - need);
    allocated_.emplace(addr, need);
    bytes_free_ -= need;
    ++allocs_;
    return addr;
  }
  ++failed_;
  return 0;
}

void BufferHeap::free(hw::CabAddr addr) {
  auto it = allocated_.find(addr);
  if (it == allocated_.end()) throw std::logic_error("BufferHeap::free: not an allocated block");
  std::size_t len = it->second;
  allocated_.erase(it);
  bytes_free_ += len;
  ++frees_;

  // Insert into the free list and coalesce with neighbours.
  auto [pos, inserted] = free_.emplace(addr, len);
  if (!inserted) throw std::logic_error("BufferHeap::free: double free");
  // Coalesce with successor.
  auto next = std::next(pos);
  if (next != free_.end() && pos->first + pos->second == next->first) {
    pos->second += next->second;
    free_.erase(next);
  }
  // Coalesce with predecessor.
  if (pos != free_.begin()) {
    auto prev = std::prev(pos);
    if (prev->first + prev->second == pos->first) {
      prev->second += pos->second;
      free_.erase(pos);
    }
  }
}

std::size_t BufferHeap::size_of(hw::CabAddr addr) const {
  auto it = allocated_.find(addr);
  if (it == allocated_.end()) throw std::logic_error("BufferHeap::size_of: not allocated");
  return it->second;
}

void BufferHeap::wait_for_space(Cpu& cpu) {
  Thread* self = cpu.current_thread();
  if (self == nullptr) throw std::logic_error("BufferHeap::wait_for_space: no thread");
  space_waiters_.push_back(self);
  cpu.block_unmasked();
}

void BufferHeap::notify_space() {
  // Wake every waiter; they re-try their allocations (first-fit order is
  // whoever the scheduler runs first, which is deterministic).
  for (Thread* t : space_waiters_) t->cpu().wake(t);
  space_waiters_.clear();
}

}  // namespace nectar::core
