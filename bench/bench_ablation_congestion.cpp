// Ablation (extension; paper §7's "further performance evaluation and
// tuning"): Van Jacobson congestion control on the CAB's TCP, measured on a
// quiet LAN and under injected loss. On the paper's uncongested Nectar the
// 1990 stack never needed it — and the quiet-LAN row shows why (slow start
// costs a little ramp time and nothing else). Under loss, fast retransmit
// repairs in one RTT what an RTO stall repairs in milliseconds.

#include "common.hpp"

namespace nectar::bench {
namespace {

struct Run {
  double mbit;
  std::uint64_t retx;
  std::uint64_t fast_retx;
};

Run transfer(bool cc, double drop, std::size_t mtu) {
  proto::TcpConfig cfg;
  cfg.congestion_control = cc;
  net::NectarSystem sys(2, false, cfg, mtu);
  if (drop > 0) sys.net().cab(0).out_link().set_drop_rate(drop, 20240707);
  constexpr std::size_t kTotal = 400 * 1024;
  sim::SimTime t0 = -1, t1 = -1;
  proto::TcpConnection** conn = new proto::TcpConnection*(nullptr);
  sys.runtime(1).fork_app("server", [&] {
    proto::TcpConnection* c = sys.stack(1).tcp.listen(80);
    sys.stack(1).tcp.wait_established(c);
    std::uint64_t got = 0;
    while (got < kTotal) {
      core::Message m = c->receive_mailbox().begin_get();
      if (t0 < 0) t0 = sys.engine().now();
      got += m.len;
      c->receive_mailbox().end_get(m);
    }
    t1 = sys.engine().now();
  });
  sys.runtime(0).fork_app("client", [&] {
    sys.runtime(0).cpu().sleep_for(sim::usec(100));
    proto::TcpConnection* c = sys.stack(0).tcp.connect(5000, proto::ip_of_node(1), 80);
    *conn = c;
    sys.stack(0).tcp.wait_established(c);
    core::Mailbox& s = sys.runtime(0).create_mailbox("tx");
    for (std::size_t off = 0; off < kTotal; off += 4096) {
      sys.stack(0).tcp.wait_send_window(c, 64 * 1024);
      core::Message m = s.begin_put(4096);
      sys.stack(0).tcp.send(c, m);
    }
  });
  sys.net().run_until(sim::sec(120));
  Run r{};
  if (t1 > t0 && t0 >= 0) r.mbit = mbit_per_sec(kTotal, t1 - t0);
  if (*conn != nullptr) {
    r.retx = (*conn)->retransmissions();
    r.fast_retx = (*conn)->fast_retransmits();
  }
  delete conn;
  return r;
}

}  // namespace
}  // namespace nectar::bench

int main(int argc, char** argv) {
  using namespace nectar::bench;
  BenchOptions opts = parse_options(argc, argv);
  print_header("Ablation: TCP congestion control extension (off in the 1990 stack)");

  nectar::obs::RunReport report("ablation-congestion");
  std::printf("%22s %12s %12s %8s %10s\n", "scenario", "plain 1990", "with CC", "retx",
              "fast-retx");
  struct Case {
    const char* name;
    const char* slug;
    double drop;
    std::size_t mtu;
  };
  for (const Case& c : {Case{"quiet LAN, 9K MTU", "quiet", 0.0, 9216},
                        Case{"2% loss, 1500 MTU", "loss2", 0.02, 1500},
                        Case{"5% loss, 1500 MTU", "loss5", 0.05, 1500}}) {
    Run plain = transfer(false, c.drop, c.mtu);
    Run cc = transfer(true, c.drop, c.mtu);
    std::printf("%22s %9.2f Mb %9.2f Mb %8llu %10llu\n", c.name, plain.mbit, cc.mbit,
                static_cast<unsigned long long>(cc.retx),
                static_cast<unsigned long long>(cc.fast_retx));
    std::string s = c.slug;
    report.add("plain_" + s, plain.mbit, "Mbit/s");
    report.add("cc_" + s, cc.mbit, "Mbit/s");
    report.add("cc_retx_" + s, static_cast<double>(cc.retx), "count");
    report.add("cc_fast_retx_" + s, static_cast<double>(cc.fast_retx), "count");
  }
  std::printf(
      "\nOn the quiet LAN the extension changes nothing — the paper's stack was\n"
      "right not to need it. At light loss CC's window-halving costs a little\n"
      "throughput the bare stack keeps; at heavier loss the bare stack\n"
      "collapses into serial RTO stalls while fast retransmit keeps the pipe\n"
      "flowing (an order of magnitude apart at 5%%).\n");
  finish_report(opts, report);
  return 0;
}
