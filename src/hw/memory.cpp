#include "hw/memory.hpp"

#include <cstring>
#include <new>
#include <stdexcept>

#if defined(__linux__) || defined(__APPLE__)
#include <sys/mman.h>
#define NECTAR_HAVE_MMAP 1
#endif

namespace nectar::hw {

LazyZeroPages::LazyZeroPages(std::size_t size) : size_(size) {
#ifdef NECTAR_HAVE_MMAP
  void* p = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p != MAP_FAILED) {
    data_ = static_cast<std::uint8_t*>(p);
    mapped_ = true;
    return;
  }
#endif
  data_ = new std::uint8_t[size]();
}

LazyZeroPages::~LazyZeroPages() {
#ifdef NECTAR_HAVE_MMAP
  if (mapped_) {
    ::munmap(data_, size_);
    return;
  }
#endif
  delete[] data_;
}

CabMemory::CabMemory() : bytes_(kDataEnd) {}

void CabMemory::check(CabAddr a, std::size_t len) const {
  if (static_cast<std::size_t>(a) + len > bytes_.size() ||
      (a >= kProgramEnd && a < kDataBase)) {
    throw std::out_of_range("CabMemory: access outside populated regions");
  }
}

std::uint8_t CabMemory::read8(CabAddr a) const {
  check(a, 1);
  return bytes_.data()[a];
}

void CabMemory::write8(CabAddr a, std::uint8_t v) {
  check(a, 1);
  if (in_prom(a, 1)) throw std::logic_error("CabMemory: write to PROM");
  bytes_.data()[a] = v;
}

std::uint32_t CabMemory::read32(CabAddr a) const {
  check(a, 4);
  std::uint32_t v;
  std::memcpy(&v, bytes_.data() + a, 4);
  return v;
}

void CabMemory::write32(CabAddr a, std::uint32_t v) {
  check(a, 4);
  if (in_prom(a, 4)) throw std::logic_error("CabMemory: write to PROM");
  std::memcpy(bytes_.data() + a, &v, 4);
}

void CabMemory::read(CabAddr a, std::span<std::uint8_t> out) const {
  check(a, out.size());
  std::memcpy(out.data(), bytes_.data() + a, out.size());
}

void CabMemory::write(CabAddr a, std::span<const std::uint8_t> in) {
  check(a, in.size());
  if (in_prom(a, in.size())) throw std::logic_error("CabMemory: write to PROM");
  std::memcpy(bytes_.data() + a, in.data(), in.size());
}

void CabMemory::fill(CabAddr a, std::size_t len, std::uint8_t v) {
  check(a, len);
  if (in_prom(a, len)) throw std::logic_error("CabMemory: write to PROM");
  std::memset(bytes_.data() + a, v, len);
}

std::span<std::uint8_t> CabMemory::view(CabAddr a, std::size_t len) {
  check(a, len);
  return {bytes_.data() + a, len};
}

std::span<const std::uint8_t> CabMemory::view(CabAddr a, std::size_t len) const {
  check(a, len);
  return {bytes_.data() + a, len};
}

bool CabMemory::in_data_region(CabAddr a, std::size_t len) {
  return a >= kDataBase && static_cast<std::size_t>(a) + len <= kDataEnd;
}

bool CabMemory::in_program_region(CabAddr a, std::size_t len) {
  return static_cast<std::size_t>(a) + len <= kProgramEnd;
}

bool CabMemory::in_prom(CabAddr a, std::size_t len) {
  // True if any byte of [a, a+len) falls inside the PROM.
  return len > 0 && a < kPromSize;
}

ProtectionUnit::ProtectionUnit(int num_domains) {
  if (num_domains <= 0) throw std::invalid_argument("ProtectionUnit: need >= 1 domain");
  domains_.assign(static_cast<std::size_t>(num_domains),
                  std::vector<Access>(kNumPages, Access::ReadWrite));
}

void ProtectionUnit::set_current_domain(int d) {
  if (d < 0 || d >= num_domains()) throw std::out_of_range("ProtectionUnit: bad domain");
  current_ = d;
}

void ProtectionUnit::set_page(int domain, CabAddr page, Access a) {
  if (domain < 0 || domain >= num_domains()) throw std::out_of_range("ProtectionUnit: bad domain");
  if (page >= kNumPages) throw std::out_of_range("ProtectionUnit: bad page");
  domains_[static_cast<std::size_t>(domain)][page] = a;
}

void ProtectionUnit::set_range(int domain, CabAddr addr, std::size_t len, Access a) {
  CabAddr first = addr / kPageSize;
  CabAddr last = static_cast<CabAddr>((addr + len + kPageSize - 1) / kPageSize);
  for (CabAddr p = first; p < last && p < kNumPages; ++p) set_page(domain, p, a);
}

bool ProtectionUnit::check(CabAddr addr, std::size_t len, bool write) const {
  return check_domain(current_, addr, len, write);
}

bool ProtectionUnit::check_domain(int domain, CabAddr addr, std::size_t len, bool write) const {
  if (domain < 0 || domain >= num_domains()) return false;
  const auto& pages = domains_[static_cast<std::size_t>(domain)];
  CabAddr first = addr / kPageSize;
  CabAddr last = static_cast<CabAddr>((addr + (len ? len : 1) - 1) / kPageSize);
  for (CabAddr p = first; p <= last; ++p) {
    if (p >= kNumPages) {
      ++faults_;
      return false;
    }
    Access a = pages[p];
    if (a == Access::None || (write && a != Access::ReadWrite)) {
      ++faults_;
      return false;
    }
  }
  return true;
}

}  // namespace nectar::hw
