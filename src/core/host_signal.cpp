#include "core/host_signal.hpp"

#include <stdexcept>

#include "core/cpu.hpp"
#include "core/heap.hpp"
#include "obs/profiler.hpp"
#include "sim/costs.hpp"

namespace nectar::core {

HostSignaling::HostSignaling(Cpu& cab_cpu, hw::CabMemory& memory, BufferHeap& heap)
    : cab_cpu_(cab_cpu), memory_(memory), heap_(heap) {}

HostSignaling::HostCondId HostSignaling::alloc_condition() {
  hw::CabAddr word = heap_.alloc(4);
  if (word == 0) throw std::runtime_error("HostSignaling: no space for condition word");
  memory_.write32(word, 0);
  HostCondId id = next_cond_++;
  conditions_.emplace(id, word);
  return id;
}

void HostSignaling::free_condition(HostCondId id) {
  auto it = conditions_.find(id);
  if (it == conditions_.end()) return;
  heap_.free(it->second);
  conditions_.erase(it);
}

hw::CabAddr HostSignaling::poll_addr(HostCondId id) const {
  auto it = conditions_.find(id);
  if (it == conditions_.end()) throw std::logic_error("HostSignaling: unknown condition");
  return it->second;
}

std::uint32_t HostSignaling::poll_value(HostCondId id) const {
  return memory_.read32(poll_addr(id));
}

void HostSignaling::signal(HostCondId id) {
  // §3.2: "Signal increments a poll value in the host condition."
  Cpu* c = Cpu::current();
  obs::CostScope scope("sync/host_signal");
  if (c != nullptr) c->charge(sim::costs::kSignalQueuePost);
  hw::CabAddr word = poll_addr(id);
  memory_.write32(word, memory_.read32(word) + 1);
  ++signals_sent_;
  // "When a host condition variable is signaled, its address is placed in
  // the host signal queue, and the host is interrupted."
  post_to_host({kOpHostCondSignal, id, 0});
}

void HostSignaling::signal_from_host(HostCondId id) {
  hw::CabAddr word = poll_addr(id);
  memory_.write32(word, memory_.read32(word) + 1);
  ++signals_sent_;
  // A host-side signal still goes through the host signal queue so that
  // *other* host processes blocked in the driver are woken.
  post_to_host({kOpHostCondSignal, id, 0});
}

void HostSignaling::post_to_host(SignalElement e) {
  host_queue_.push_back(e);
  if (host_interrupt_) host_interrupt_();
}

std::optional<SignalElement> HostSignaling::pop_host_signal() {
  if (host_queue_.empty()) return std::nullopt;
  SignalElement e = host_queue_.front();
  host_queue_.pop_front();
  return e;
}

void HostSignaling::register_opcode(std::uint16_t opcode,
                                    std::function<void(SignalElement)> handler) {
  cab_handlers_[opcode] = std::move(handler);
}

void HostSignaling::post_to_cab(SignalElement e) {
  cab_queue_.push_back(e);
  ++cab_requests_;
}

void HostSignaling::drain_cab_queue() {
  while (!cab_queue_.empty()) {
    SignalElement e = cab_queue_.front();
    cab_queue_.pop_front();
    auto it = cab_handlers_.find(e.opcode);
    if (it == cab_handlers_.end()) {
      throw std::logic_error("HostSignaling: no handler for CAB opcode " +
                             std::to_string(e.opcode));
    }
    it->second(e);
  }
}

}  // namespace nectar::core
