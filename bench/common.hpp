#pragma once

// Shared helpers for the paper-reproduction benchmark binaries.
//
// These harnesses measure *simulated* time on the deterministic clock, so a
// run is reproducible bit for bit; wall-clock benchmarking frameworks do not
// apply. Each binary prints the rows/series of one table or figure from
// Cooper et al., SIGCOMM 1990, alongside the paper's reported values.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "host/node.hpp"
#include "net/system.hpp"
#include "obs/profiler.hpp"
#include "obs/report.hpp"
#include "obs/timeseries.hpp"
#include "obs/tracer.hpp"

namespace nectar::bench {

/// Flags every bench binary understands:
///   --json <path>       write a machine-readable run report (obs::RunReport)
///   --trace <path>      export a Chrome trace-event timeline of (part of) the run
///   --profile <path>    enable the cycle-attribution profiler and write its
///                       folded-stack output (flamegraph.pl / speedscope input).
///                       Profiling charges no simulated time, so --profile does
///                       not change any reported numbers.
///   --telemetry <path>  sample every metric on a sim-clock cadence during the
///                       run and write the "nectar-timeseries" artifact (see
///                       docs/OBSERVABILITY.md). Sampling is pull-based, so a
///                       single-shard run's event stream is unchanged.
///   --telemetry-interval <time>  sample cadence (default 10ms sim time);
///                       accepts ns/us/ms/s suffixes via sim::parse_time-style
///                       integers ("10ms" is parsed by the Telemetry helper).
struct BenchOptions {
  std::string json_path;
  std::string trace_path;
  std::string profile_path;
  std::string telemetry_path;
  sim::SimTime telemetry_interval = sim::msec(10);
};

inline sim::SimTime parse_interval(const std::string& text) {
  // "500us" / "10ms" / "1s" / plain ns count.
  std::size_t pos = 0;
  long long v = std::stoll(text, &pos);
  std::string unit = text.substr(pos);
  if (v <= 0) {
    std::fprintf(stderr, "error: --telemetry-interval must be positive\n");
    std::exit(2);
  }
  if (unit.empty() || unit == "ns") return v;
  if (unit == "us") return v * sim::kMicrosecond;
  if (unit == "ms") return v * sim::kMillisecond;
  if (unit == "s") return v * sim::kSecond;
  std::fprintf(stderr, "error: bad interval unit '%s' (want ns|us|ms|s)\n", unit.c_str());
  std::exit(2);
}

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions o;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--json" && i + 1 < argc) {
      o.json_path = argv[++i];
    } else if (a == "--trace" && i + 1 < argc) {
      o.trace_path = argv[++i];
    } else if (a == "--profile" && i + 1 < argc) {
      o.profile_path = argv[++i];
    } else if (a == "--telemetry" && i + 1 < argc) {
      o.telemetry_path = argv[++i];
    } else if (a == "--telemetry-interval" && i + 1 < argc) {
      o.telemetry_interval = parse_interval(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json <path>] [--trace <path>] [--profile <path>]"
                   " [--telemetry <path>] [--telemetry-interval <time>]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return o;
}

/// Enable profiling if --profile was given. Call right after building the
/// system, before any traffic runs.
inline void start_profile(const BenchOptions& o, obs::Profiler& profiler) {
  if (o.profile_path.empty()) return;
  profiler.set_enabled(true);
}

/// Write the report if --json was given; exits non-zero on I/O failure so CI
/// catches a silently missing report.
inline void finish_report(const BenchOptions& o, const obs::RunReport& report) {
  if (o.json_path.empty()) return;
  if (!report.write(o.json_path)) {
    std::fprintf(stderr, "error: cannot write report to %s\n", o.json_path.c_str());
    std::exit(1);
  }
  std::printf("\nwrote %s\n", o.json_path.c_str());
}

/// Write the folded-stack profile if --profile was given (no-op on an empty
/// path).
inline void finish_profile(const BenchOptions& o, const obs::Profiler& profiler) {
  if (o.profile_path.empty()) return;
  if (!profiler.write_folded(o.profile_path)) {
    std::fprintf(stderr, "error: cannot write profile to %s\n", o.profile_path.c_str());
    std::exit(1);
  }
  std::printf("wrote %s (%llu samples)\n", o.profile_path.c_str(),
              static_cast<unsigned long long>(profiler.samples()));
}

/// Write the Chrome trace if --trace was given (no-op on an empty path).
inline void finish_trace(const std::string& path, const obs::Tracer& tracer) {
  if (path.empty()) return;
  if (!tracer.write_chrome(path)) {
    std::fprintf(stderr, "error: cannot write trace to %s\n", path.c_str());
    std::exit(1);
  }
  std::printf("wrote %s (%zu events)\n", path.c_str(), tracer.events().size());
}

/// Continuous telemetry for a bench run. Construct after the system is
/// built; call run_until() instead of net.run_until() for the measured
/// stretch; call finish() at the end. When --telemetry was not given every
/// method degenerates to the plain run (no sampler exists, no probes are
/// registered), so committed bench reports are unaffected.
class Telemetry {
 public:
  Telemetry(const BenchOptions& o, net::Network& net, std::string name)
      : net_(net),
        name_(std::move(name)),
        path_(o.telemetry_path),
        interval_(o.telemetry_interval) {
    if (path_.empty()) return;
    net_.register_substrate_metrics();
    obs::Sampler::Options sopt;
    sopt.interval = interval_;
    sampler_ = std::make_unique<obs::Sampler>(net_.metrics(), sopt);
    last_ = net_.engine().now();
    sampler_->sample(last_);
  }

  bool enabled() const { return sampler_ != nullptr; }
  obs::Sampler* sampler() { return sampler_.get(); }

  /// Advance the network clock to `t`, sampling every interval along the
  /// way. Pull-based: with one shard the event stream is exactly the
  /// untelemetered run's; with more shards the stepping caps synchronization
  /// windows (still deterministic for a fixed seed/shards/interval).
  void run_until(sim::SimTime t) {
    if (sampler_ == nullptr) {
      net_.run_until(t);
      return;
    }
    while (last_ < t) {
      last_ = std::min(last_ + interval_, t);
      net_.run_until(last_);
      sampler_->sample(last_);
    }
  }

  /// Write the artifact if telemetry is on; exits non-zero on I/O failure.
  void finish() {
    if (sampler_ == nullptr || path_.empty()) return;
    if (!sampler_->write(path_, name_)) {
      std::fprintf(stderr, "error: cannot write telemetry to %s\n", path_.c_str());
      std::exit(1);
    }
    std::printf("wrote %s (%zu samples, %zu series)\n", path_.c_str(), sampler_->samples(),
                sampler_->series_count());
  }

 private:
  net::Network& net_;
  std::string name_;
  std::string path_;
  sim::SimTime interval_;
  sim::SimTime last_ = 0;
  std::unique_ptr<obs::Sampler> sampler_;
};

inline std::vector<std::uint8_t> pattern(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(i * 131 + 7);
  return v;
}

inline double median_usec(std::vector<sim::SimTime> samples) {
  std::sort(samples.begin(), samples.end());
  return sim::to_usec(samples[samples.size() / 2]);
}

inline double mbit_per_sec(std::uint64_t bytes, sim::SimTime elapsed) {
  return static_cast<double>(bytes) * 8.0 / (static_cast<double>(elapsed) / sim::kSecond) / 1e6;
}

inline core::Message stage_message(core::Mailbox& mb, core::CabRuntime& rt,
                                   std::span<const std::uint8_t> data) {
  core::Message m = mb.begin_put(static_cast<std::uint32_t>(data.size()));
  rt.board().memory().write(m.data, data);
  return m;
}

inline void print_header(const char* title) {
  std::printf("\n=== %s ===\n", title);
  std::printf("(simulated Nectar system; see DESIGN.md for the substitution model)\n\n");
}

}  // namespace nectar::bench
