#include "nectarine/remotefs.hpp"

#include <gtest/gtest.h>

#include "net/system.hpp"
#include "sim/random.hpp"

namespace nectar::nectarine {
namespace {

struct Fixture {
  net::NectarSystem sys{3};
  FileServer server{sys.runtime(0), sys.stack(0).reqresp};

  void run_client(int node, std::function<void(FileClient&)> body) {
    sys.runtime(node).fork_app("client", [this, node, body = std::move(body)] {
      FileClient c(sys.runtime(node), sys.stack(node).reqresp, server.address());
      body(c);
    });
  }
};

TEST(RemoteFs, CreateWriteReadRoundTrip) {
  Fixture f;
  bool done = false;
  f.run_client(1, [&](FileClient& c) {
    std::vector<std::uint8_t> data{'h', 'e', 'l', 'l', 'o'};
    ASSERT_TRUE(c.write_file("/etc/motd", data).ok());
    std::vector<std::uint8_t> back;
    ASSERT_TRUE(c.read_file("/etc/motd", &back).ok());
    EXPECT_EQ(back, data);
    done = true;
  });
  f.sys.net().run_until(sim::sec(5));
  EXPECT_TRUE(done);
  EXPECT_EQ(f.server.files(), 1u);
}

TEST(RemoteFs, LookupMissingReportsNoEnt) {
  Fixture f;
  bool done = false;
  f.run_client(1, [&](FileClient& c) {
    std::uint32_t fh = 0;
    EXPECT_EQ(c.lookup("/no/such/file", &fh).code, FileServer::kNoEnt);
    std::vector<std::uint8_t> out;
    EXPECT_EQ(c.read_file("/no/such/file", &out).code, FileServer::kNoEnt);
    done = true;
  });
  f.sys.net().run_until(sim::sec(5));
  EXPECT_TRUE(done);
}

TEST(RemoteFs, DoubleCreateReportsExists) {
  Fixture f;
  bool done = false;
  f.run_client(1, [&](FileClient& c) {
    std::uint32_t fh = 0;
    ASSERT_TRUE(c.create("/a", &fh).ok());
    EXPECT_EQ(c.create("/a", &fh).code, FileServer::kExists);
    done = true;
  });
  f.sys.net().run_until(sim::sec(5));
  EXPECT_TRUE(done);
}

TEST(RemoteFs, StaleHandleAfterRemove) {
  Fixture f;
  bool done = false;
  f.run_client(1, [&](FileClient& c) {
    std::uint32_t fh = 0;
    ASSERT_TRUE(c.create("/tmp/x", &fh).ok());
    ASSERT_TRUE(c.remove("/tmp/x").ok());
    std::uint32_t size = 0;
    EXPECT_EQ(c.getattr(fh, &size).code, FileServer::kStale);
    done = true;
  });
  f.sys.net().run_until(sim::sec(5));
  EXPECT_TRUE(done);
}

TEST(RemoteFs, LargeFileSpansManyRpcs) {
  Fixture f;
  bool done = false;
  f.run_client(1, [&](FileClient& c) {
    sim::Random rng(99);
    std::vector<std::uint8_t> data(20000);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_below(256));
    ASSERT_TRUE(c.write_file("/big", data).ok());
    std::vector<std::uint8_t> back;
    ASSERT_TRUE(c.read_file("/big", &back).ok());
    EXPECT_EQ(back, data);  // byte-exact over ceil(20000/4096)*2 RPCs
    done = true;
  });
  f.sys.net().run_until(sim::sec(10));
  EXPECT_TRUE(done);
  EXPECT_GE(f.server.calls_served(), 12u);
}

TEST(RemoteFs, SparseWriteZeroFills) {
  Fixture f;
  bool done = false;
  f.run_client(1, [&](FileClient& c) {
    std::uint32_t fh = 0;
    ASSERT_TRUE(c.create("/sparse", &fh).ok());
    std::vector<std::uint8_t> tail{0xAB};
    std::uint32_t written = 0;
    ASSERT_TRUE(c.write(fh, 100, tail, &written).ok());
    std::vector<std::uint8_t> all;
    ASSERT_TRUE(c.read(fh, 0, 200, &all).ok());
    ASSERT_EQ(all.size(), 101u);
    EXPECT_EQ(all[0], 0);     // hole reads as zero
    EXPECT_EQ(all[100], 0xAB);
    done = true;
  });
  f.sys.net().run_until(sim::sec(5));
  EXPECT_TRUE(done);
}

TEST(RemoteFs, ReaddirListsAllFiles) {
  Fixture f;
  bool done = false;
  f.run_client(1, [&](FileClient& c) {
    std::uint32_t fh = 0;
    ASSERT_TRUE(c.create("/b", &fh).ok());
    ASSERT_TRUE(c.create("/a", &fh).ok());
    ASSERT_TRUE(c.create("/c", &fh).ok());
    std::vector<std::string> names;
    ASSERT_TRUE(c.readdir(&names).ok());
    EXPECT_EQ(names, (std::vector<std::string>{"/a", "/b", "/c"}));
    done = true;
  });
  f.sys.net().run_until(sim::sec(5));
  EXPECT_TRUE(done);
}

TEST(RemoteFs, TwoClientsShareTheServer) {
  Fixture f;
  bool writer_done = false, reader_done = false;
  f.run_client(1, [&](FileClient& c) {
    std::vector<std::uint8_t> data{'s', 'h', 'a', 'r', 'e', 'd'};
    ASSERT_TRUE(c.write_file("/shared", data).ok());
    writer_done = true;
  });
  f.sys.net().run_until(sim::msec(50));
  ASSERT_TRUE(writer_done);
  f.run_client(2, [&](FileClient& c) {
    std::vector<std::uint8_t> back;
    ASSERT_TRUE(c.read_file("/shared", &back).ok());
    EXPECT_EQ(back.size(), 6u);
    reader_done = true;
  });
  f.sys.net().run_until(sim::sec(5));
  EXPECT_TRUE(reader_done);
}

TEST(RemoteFs, SurvivesLossyNetwork) {
  Fixture f;
  f.sys.net().cab(1).out_link().set_drop_rate(0.2, 55);
  f.sys.net().cab(0).out_link().set_drop_rate(0.15, 56);
  bool done = false;
  f.run_client(1, [&](FileClient& c) {
    std::vector<std::uint8_t> data(6000, 0xD7);
    ASSERT_TRUE(c.write_file("/lossy", data).ok());
    std::vector<std::uint8_t> back;
    ASSERT_TRUE(c.read_file("/lossy", &back).ok());
    EXPECT_EQ(back, data);  // at-most-once retries make the RPCs reliable
    done = true;
  });
  f.sys.net().run_until(sim::sec(30));
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace nectar::nectarine
