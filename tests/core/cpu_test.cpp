#include "core/cpu.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/priorities.hpp"
#include "sim/costs.hpp"

namespace nectar::core {
namespace {

namespace costs = sim::costs;

TEST(Cpu, RunsForkedThread) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  bool ran = false;
  cpu.fork("t", kSystemPriority, [&] { ran = true; });
  e.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(cpu.threads_alive(), 0u);
}

TEST(Cpu, ChargeAdvancesSimulatedTime) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  sim::SimTime end = -1;
  cpu.fork("t", kSystemPriority, [&] {
    cpu.charge(sim::usec(10));
    end = e.now();
  });
  e.run();
  // Context switch into the thread + 10 us of work.
  EXPECT_EQ(end, costs::kContextSwitch + sim::usec(10));
  EXPECT_GE(cpu.busy_time(), sim::usec(10));
}

TEST(Cpu, ChargeSlicingPreservesTotal) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  sim::SimTime end = -1;
  cpu.fork("t", kSystemPriority, [&] {
    cpu.charge(sim::usec(200));  // sliced into kChargeSlice pieces
    end = e.now();
  });
  e.run();
  EXPECT_EQ(end, costs::kContextSwitch + sim::usec(200));
}

TEST(Cpu, ContextSwitchCostsTwentyMicroseconds) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  EXPECT_EQ(cpu.context_switch_cost(), sim::usec(20));  // paper §3.1
}

TEST(Cpu, HigherPriorityRunsFirst) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  std::vector<int> order;
  cpu.fork("lo", kAppPriority, [&] { order.push_back(1); });
  cpu.fork("hi", kSystemPriority, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(Cpu, PreemptionOnWakeup) {
  // §3.1: "With preemption, a context switch occurs as soon as a
  // higher-priority thread is awakened."
  sim::Engine e;
  Cpu cpu(e, "cpu");
  std::vector<std::string> log;
  Thread* hi = cpu.fork("hi", kSystemPriority, [&] {
    cpu.block();  // wait to be woken by the app thread's interrupt
    log.push_back("hi");
  });
  cpu.fork("lo", kAppPriority, [&] {
    log.push_back("lo-start");
    // Simulate an interrupt waking the high-priority thread mid-computation.
    cpu.set_timer(e.now() + sim::usec(30), [&, hi] { cpu.wake(hi); });
    cpu.charge(sim::usec(200));
    log.push_back("lo-end");
  });
  e.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], "lo-start");
  EXPECT_EQ(log[1], "hi");     // preempted the app thread
  EXPECT_EQ(log[2], "lo-end");
}

TEST(Cpu, EqualPriorityIsNotPreemptive) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  std::vector<int> order;
  Thread* a = cpu.fork("a", kAppPriority, [&] {
    cpu.block();
    order.push_back(1);
  });
  cpu.fork("b", kAppPriority, [&] {
    cpu.wake(a);
    cpu.charge(sim::usec(50));
    order.push_back(2);  // b keeps running: equal priority does not preempt
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(Cpu, YieldRoundRobinsEqualPriority) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  std::vector<int> order;
  cpu.fork("a", kAppPriority, [&] {
    order.push_back(1);
    cpu.yield();
    order.push_back(3);
  });
  cpu.fork("b", kAppPriority, [&] {
    order.push_back(2);
    cpu.yield();
    order.push_back(4);
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Cpu, YieldWithNothingElseReadyIsCheap) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  std::uint64_t switches_before = 0;
  cpu.fork("only", kAppPriority, [&] {
    switches_before = cpu.context_switches();
    cpu.yield();
    EXPECT_EQ(cpu.context_switches(), switches_before);  // no-op yield
  });
  e.run();
}

TEST(Cpu, JoinWaitsForCompletion) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  bool child_done = false, parent_done = false;
  cpu.fork("parent", kSystemPriority, [&] {
    Thread* c = cpu.fork("child", kSystemPriority, [&] {
      cpu.charge(sim::usec(100));
      child_done = true;
    });
    cpu.join(c);
    EXPECT_TRUE(child_done);
    parent_done = true;
  });
  e.run();
  EXPECT_TRUE(parent_done);
}

TEST(Cpu, JoinFinishedThreadReturnsImmediately) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  bool ok = false;
  cpu.fork("parent", kSystemPriority, [&] {
    Thread* c = cpu.fork("child", kSystemPriority, [] {});
    cpu.charge(sim::usec(500));
    cpu.yield();
    cpu.join(c);  // child long finished
    ok = true;
  });
  e.run();
  EXPECT_TRUE(ok);
}

TEST(Cpu, SleepWakesAtRequestedTime) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  sim::SimTime woke = -1;
  cpu.fork("t", kSystemPriority, [&] {
    cpu.sleep_until(sim::usec(500));
    woke = e.now();
  });
  e.run();
  // Wake + context switch back in.
  EXPECT_GE(woke, sim::usec(500));
  EXPECT_LE(woke, sim::usec(500) + costs::kContextSwitch);
}

TEST(Cpu, InterruptRunsWhenIdle) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  bool handled = false;
  e.schedule_at(sim::usec(100), [&] { cpu.post_interrupt([&] { handled = true; }); });
  e.run();
  EXPECT_TRUE(handled);
  EXPECT_EQ(cpu.interrupts_taken(), 1u);
}

TEST(Cpu, InterruptDeliveredAtChargeBoundary) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  sim::SimTime handled_at = -1;
  cpu.fork("t", kSystemPriority, [&] {
    cpu.charge(sim::usec(10));  // ends at switch+10us
    cpu.charge(sim::usec(10));
  });
  e.schedule_at(costs::kContextSwitch + sim::usec(5),
                [&] { cpu.post_interrupt([&] { handled_at = e.now(); }); });
  e.run();
  // Delivered at the end of the 10 us charge (within one slice), plus the
  // interrupt-entry cost.
  EXPECT_GE(handled_at, costs::kContextSwitch + sim::usec(10));
  EXPECT_LE(handled_at, costs::kContextSwitch + sim::usec(10) + costs::kInterruptEntry +
                            costs::kChargeSlice);
}

TEST(Cpu, MaskedInterruptsAreDeferred) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  std::vector<std::string> log;
  cpu.fork("t", kSystemPriority, [&] {
    cpu.disable_interrupts();
    cpu.post_interrupt([&] { log.push_back("irq"); });
    cpu.charge(sim::usec(50));
    log.push_back("critical-done");
    cpu.enable_interrupts();
    cpu.charge(sim::usec(1));
    log.push_back("after");
  });
  e.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], "critical-done");
  EXPECT_EQ(log[1], "irq");
  EXPECT_EQ(log[2], "after");
}

TEST(Cpu, InterruptHandlersRunInQueueOrderWithoutNesting) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  std::vector<int> order;
  cpu.post_interrupt([&] {
    order.push_back(1);
    cpu.post_interrupt([&] { order.push_back(3); });  // queued, not nested
    cpu.charge(sim::usec(5));
    order.push_back(2);
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Cpu, InterruptPreemptsThreadCharges) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  sim::SimTime irq_at = -1;
  cpu.fork("t", kAppPriority, [&] { cpu.charge(sim::msec(2)); });
  e.schedule_at(sim::usec(100), [&] { cpu.post_interrupt([&] { irq_at = e.now(); }); });
  e.run();
  // Thanks to charge slicing, the interrupt runs within one slice of its
  // posting, not 2 ms later.
  EXPECT_LE(irq_at, sim::usec(100) + costs::kChargeSlice + costs::kInterruptEntry);
}

TEST(Cpu, BlockOutsideThreadThrows) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  cpu.post_interrupt([&] { EXPECT_THROW(cpu.block(), std::logic_error); });
  e.run();
}

TEST(Cpu, TimerFiresInInterruptContext) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  bool was_irq = false;
  cpu.set_timer(sim::usec(50), [&] { was_irq = cpu.in_interrupt(); });
  e.run();
  EXPECT_TRUE(was_irq);
}

TEST(Cpu, CancelledTimerDoesNotFire) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  bool fired = false;
  auto id = cpu.set_timer(sim::usec(50), [&] { fired = true; });
  cpu.cancel_timer(id);
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Cpu, CurrentCpuTracksExecutionContext) {
  sim::Engine e;
  Cpu a(e, "a"), b(e, "b");
  Cpu* in_a = nullptr;
  Cpu* in_b = nullptr;
  a.fork("t", kSystemPriority, [&] { in_a = Cpu::current(); });
  b.fork("t", kSystemPriority, [&] { in_b = Cpu::current(); });
  e.run();
  EXPECT_EQ(in_a, &a);
  EXPECT_EQ(in_b, &b);
  EXPECT_EQ(Cpu::current(), nullptr);
}

TEST(Cpu, TwoCpusProgressIndependently) {
  sim::Engine e;
  Cpu a(e, "a"), b(e, "b");
  sim::SimTime a_done = -1, b_done = -1;
  a.fork("t", kSystemPriority, [&] {
    a.charge(sim::usec(100));
    a_done = e.now();
  });
  b.fork("t", kSystemPriority, [&] {
    b.charge(sim::usec(100));
    b_done = e.now();
  });
  e.run();
  // Parallel hardware: both finish at the same simulated time.
  EXPECT_EQ(a_done, b_done);
}

TEST(Cpu, CrossCpuWake) {
  sim::Engine e;
  Cpu a(e, "a"), b(e, "b");
  bool woke = false;
  Thread* sleeper = a.fork("sleeper", kSystemPriority, [&] {
    a.block();
    woke = true;
  });
  b.fork("waker", kSystemPriority, [&] {
    b.charge(sim::usec(10));
    a.wake(sleeper);
  });
  e.run();
  EXPECT_TRUE(woke);
}

}  // namespace
}  // namespace nectar::core
