#include "scenario/config.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace nectar::scenario {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

[[noreturn]] void bad_value(const std::string& key, const std::string& value, const char* want) {
  throw std::runtime_error("config: key '" + key + "': expected " + want + ", got '" + value +
                           "'");
}

}  // namespace

std::string Section::get(const std::string& key, const std::string& fallback) const {
  auto it = values.find(key);
  return it == values.end() ? fallback : it->second;
}

std::int64_t Section::get_int(const std::string& key, std::int64_t fallback) const {
  auto it = values.find(key);
  if (it == values.end()) return fallback;
  char* end = nullptr;
  long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') bad_value(key, it->second, "an integer");
  return v;
}

double Section::get_double(const std::string& key, double fallback) const {
  auto it = values.find(key);
  if (it == values.end()) return fallback;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') bad_value(key, it->second, "a number");
  return v;
}

bool Section::get_bool(const std::string& key, bool fallback) const {
  auto it = values.find(key);
  if (it == values.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "yes" || v == "on" || v == "1") return true;
  if (v == "false" || v == "no" || v == "off" || v == "0") return false;
  bad_value(key, v, "a boolean");
}

sim::SimTime Section::get_time(const std::string& key, sim::SimTime fallback) const {
  auto it = values.find(key);
  if (it == values.end()) return fallback;
  try {
    return parse_time(it->second);
  } catch (const std::exception&) {
    bad_value(key, it->second, "a duration (e.g. 250us, 5ms, 2s)");
  }
}

sim::SimTime parse_time(std::string_view text) {
  text = trim(text);
  std::string num(text);
  char* end = nullptr;
  double v = std::strtod(num.c_str(), &end);
  if (end == num.c_str()) throw std::runtime_error("bad duration: " + num);
  std::string_view unit = trim(num.c_str() + (end - num.c_str()));
  double scale;
  if (unit.empty() || unit == "ns") {
    scale = 1;
  } else if (unit == "us") {
    scale = sim::kMicrosecond;
  } else if (unit == "ms") {
    scale = sim::kMillisecond;
  } else if (unit == "s") {
    scale = sim::kSecond;
  } else {
    throw std::runtime_error("bad duration unit: " + std::string(unit));
  }
  return static_cast<sim::SimTime>(v * scale);
}

Config Config::parse_string(std::string_view text) {
  Config cfg;
  Section current;  // implicit "" section
  int line_no = 0;
  std::istringstream in{std::string(text)};
  std::string raw;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#' || line.front() == ';') continue;
    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        throw std::runtime_error("config line " + std::to_string(line_no) +
                                 ": malformed section header: " + std::string(line));
      }
      if (!current.name.empty() || !current.values.empty()) {
        cfg.sections_.push_back(std::move(current));
      }
      current = Section{};
      current.name = std::string(trim(line.substr(1, line.size() - 2)));
      continue;
    }
    std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw std::runtime_error("config line " + std::to_string(line_no) +
                               ": expected key = value, got: " + std::string(line));
    }
    std::string key(trim(line.substr(0, eq)));
    std::string value(trim(line.substr(eq + 1)));
    if (key.empty()) {
      throw std::runtime_error("config line " + std::to_string(line_no) + ": empty key");
    }
    if (!current.values.emplace(key, value).second) {
      throw std::runtime_error("config line " + std::to_string(line_no) + ": duplicate key '" +
                               key + "' in section [" + current.name + "]");
    }
  }
  if (!current.name.empty() || !current.values.empty()) {
    cfg.sections_.push_back(std::move(current));
  }
  return cfg;
}

Config Config::parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("config: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_string(buf.str());
}

const Section* Config::find(std::string_view name) const {
  for (const Section& s : sections_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<const Section*> Config::all(std::string_view name) const {
  std::vector<const Section*> out;
  for (const Section& s : sections_) {
    if (s.name == name) out.push_back(&s);
  }
  return out;
}

}  // namespace nectar::scenario
