#pragma once

#include <cstdint>

namespace nectar::sim {

/// Simulated time in nanoseconds since simulation start.
///
/// All latency and throughput results in this repository are measured on this
/// clock, never on the wall clock; the simulation is fully deterministic.
using SimTime = std::int64_t;

constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1'000;
constexpr SimTime kMillisecond = 1'000'000;
constexpr SimTime kSecond = 1'000'000'000;

/// Convenience constructors so call sites read as units.
constexpr SimTime nsec(std::int64_t n) { return n; }
constexpr SimTime usec(std::int64_t u) { return u * kMicrosecond; }
constexpr SimTime msec(std::int64_t m) { return m * kMillisecond; }
constexpr SimTime sec(std::int64_t s) { return s * kSecond; }

/// Convert a simulated duration to floating-point microseconds (for reports).
constexpr double to_usec(SimTime t) { return static_cast<double>(t) / kMicrosecond; }
constexpr double to_msec(SimTime t) { return static_cast<double>(t) / kMillisecond; }

/// Time to serialize `bytes` at `bits_per_sec` onto a medium.
constexpr SimTime transmit_time(std::int64_t bytes, double bits_per_sec) {
  return static_cast<SimTime>(static_cast<double>(bytes) * 8.0 / bits_per_sec * kSecond);
}

}  // namespace nectar::sim
