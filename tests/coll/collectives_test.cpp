#include "coll/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <memory>
#include <vector>

#include "coll/host.hpp"
#include "host/driver.hpp"
#include "host/process.hpp"
#include "nectarine/cab_api.hpp"
#include "nectarine/nectarine.hpp"
#include "net/system.hpp"

namespace nectar::coll {
namespace {

GroupSpec group_of(int n, Algorithm alg = Algorithm::Tree) {
  GroupSpec g;
  g.id = 1;
  g.members.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) g.members[static_cast<std::size_t>(i)] = i;
  g.algorithm = alg;
  return g;
}

/// N CABs on one HUB, each with a collective engine joined to the same
/// group. `multicast` hands the root's fan-outs a HUB distribution tree.
struct CabFixture {
  net::NectarSystem sys;
  std::vector<std::unique_ptr<CollectiveEngine>> eng;

  explicit CabFixture(int n, Algorithm alg = Algorithm::Tree, bool multicast = true) : sys(n) {
    GroupSpec g = group_of(n, alg);
    if (multicast && n > 1) g.mcast = sys.net().mcast_ref(g.members[0], g.members);
    for (int i = 0; i < n; ++i) {
      eng.push_back(std::make_unique<CollectiveEngine>(sys.net().datalink(i)));
      eng.back()->join_group(g);
    }
  }
};

TEST(CollBarrier, NoMemberExitsBeforeAllEntered) {
  const int n = 5, iters = 3;
  CabFixture fx(n);
  // entered[it][i] / exited[it][i]: simulation times around each barrier.
  std::vector<std::vector<sim::SimTime>> entered(iters, std::vector<sim::SimTime>(n, -1));
  std::vector<std::vector<sim::SimTime>> exited(iters, std::vector<sim::SimTime>(n, -1));
  int ok_count = 0;
  for (int i = 0; i < n; ++i) {
    fx.sys.runtime(i).fork_app("w", [&, i] {
      core::Cpu& cpu = fx.sys.runtime(i).cpu();
      for (int it = 0; it < iters; ++it) {
        // Deterministic skew: a different straggler each iteration.
        cpu.sleep_for(sim::usec(50) * static_cast<sim::SimTime>((i + it) % n));
        entered[static_cast<std::size_t>(it)][static_cast<std::size_t>(i)] =
            cpu.engine().now();
        if (fx.eng[static_cast<std::size_t>(i)]->barrier(1)) ++ok_count;
        exited[static_cast<std::size_t>(it)][static_cast<std::size_t>(i)] =
            cpu.engine().now();
      }
    });
  }
  fx.sys.engine().run();

  EXPECT_EQ(ok_count, n * iters);
  for (int it = 0; it < iters; ++it) {
    sim::SimTime last_entry = -1, first_exit = -1;
    for (int i = 0; i < n; ++i) {
      last_entry = std::max(last_entry, entered[static_cast<std::size_t>(it)][static_cast<std::size_t>(i)]);
      sim::SimTime e = exited[static_cast<std::size_t>(it)][static_cast<std::size_t>(i)];
      first_exit = first_exit < 0 ? e : std::min(first_exit, e);
    }
    EXPECT_GE(first_exit, last_entry) << "iteration " << it;
  }
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(fx.eng[static_cast<std::size_t>(i)]->ops_completed(),
              static_cast<std::uint64_t>(iters));
    EXPECT_EQ(fx.eng[static_cast<std::size_t>(i)]->ops_failed(), 0u);
    EXPECT_EQ(fx.eng[static_cast<std::size_t>(i)]->barrier_latency().count(),
              static_cast<std::uint64_t>(iters));
  }
}

TEST(CollBarrier, DisseminationSynchronizes) {
  const int n = 6;
  CabFixture fx(n, Algorithm::Dissemination, /*multicast=*/false);
  std::vector<sim::SimTime> entered(n, -1), exited(n, -1);
  int ok_count = 0;
  for (int i = 0; i < n; ++i) {
    fx.sys.runtime(i).fork_app("w", [&, i] {
      core::Cpu& cpu = fx.sys.runtime(i).cpu();
      cpu.sleep_for(sim::usec(70) * static_cast<sim::SimTime>(i));
      entered[static_cast<std::size_t>(i)] = cpu.engine().now();
      if (fx.eng[static_cast<std::size_t>(i)]->barrier(1)) ++ok_count;
      exited[static_cast<std::size_t>(i)] = cpu.engine().now();
    });
  }
  fx.sys.engine().run();
  EXPECT_EQ(ok_count, n);
  sim::SimTime last_entry = *std::max_element(entered.begin(), entered.end());
  sim::SimTime first_exit = *std::min_element(exited.begin(), exited.end());
  EXPECT_GE(first_exit, last_entry);
}

TEST(CollBcast, MulticastDeliversPayloadToEveryMember) {
  const int n = 4;
  const std::size_t kLen = 96;
  CabFixture fx(n);
  std::vector<std::vector<std::uint8_t>> bufs(n, std::vector<std::uint8_t>(kLen, 0));
  int ok_count = 0;
  for (int i = 0; i < n; ++i) {
    fx.sys.runtime(i).fork_app("w", [&, i] {
      auto& buf = bufs[static_cast<std::size_t>(i)];
      if (i == 0) {
        for (std::size_t j = 0; j < kLen; ++j) buf[j] = static_cast<std::uint8_t>(j * 3 + 1);
      }
      if (fx.eng[static_cast<std::size_t>(i)]->bcast(1, buf)) ++ok_count;
    });
  }
  fx.sys.engine().run();
  EXPECT_EQ(ok_count, n);
  for (int i = 1; i < n; ++i) {
    EXPECT_EQ(bufs[static_cast<std::size_t>(i)], bufs[0]) << "node " << i;
  }
  // The root's BcastData fan-out rode the crossbar's replication stage.
  EXPECT_GT(fx.sys.net().hub(0).mcast_in(), 0u);
  EXPECT_GE(fx.sys.net().hub(0).mcast_out(), static_cast<std::uint64_t>(n - 1));
}

TEST(CollBcast, UnicastFallbackWithoutTree) {
  const int n = 4;
  const std::size_t kLen = 48;
  CabFixture fx(n, Algorithm::Tree, /*multicast=*/false);
  std::vector<std::vector<std::uint8_t>> bufs(n, std::vector<std::uint8_t>(kLen, 0));
  int ok_count = 0;
  for (int i = 0; i < n; ++i) {
    fx.sys.runtime(i).fork_app("w", [&, i] {
      auto& buf = bufs[static_cast<std::size_t>(i)];
      if (i == 0) {
        for (std::size_t j = 0; j < kLen; ++j) buf[j] = static_cast<std::uint8_t>(0xC0 + j);
      }
      if (fx.eng[static_cast<std::size_t>(i)]->bcast(1, buf)) ++ok_count;
    });
  }
  fx.sys.engine().run();
  EXPECT_EQ(ok_count, n);
  for (int i = 1; i < n; ++i) EXPECT_EQ(bufs[static_cast<std::size_t>(i)], bufs[0]);
  EXPECT_EQ(fx.sys.net().hub(0).mcast_in(), 0u);  // no tree: plain unicasts
}

TEST(CollReduce, CombinesOnCabAtInteriorNodes) {
  const int n = 5;
  CabFixture fx(n);
  // contribution of rank r: (r+1)*10 + op index, checked per op below.
  std::vector<std::array<std::uint64_t, 3>> results(
      static_cast<std::size_t>(n), std::array<std::uint64_t, 3>{0, 0, 0});
  int ok_count = 0;
  const ReduceOp ops[3] = {ReduceOp::Sum, ReduceOp::Min, ReduceOp::Max};
  for (int i = 0; i < n; ++i) {
    fx.sys.runtime(i).fork_app("w", [&, i] {
      for (int k = 0; k < 3; ++k) {
        std::uint64_t mine = static_cast<std::uint64_t>(i + 1) * 10 + static_cast<std::uint64_t>(k);
        if (fx.eng[static_cast<std::size_t>(i)]->reduce(
                1, ops[k], mine, &results[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)])) {
          ++ok_count;
        }
      }
    });
  }
  fx.sys.engine().run();
  EXPECT_EQ(ok_count, 3 * n);
  // sum over r of (r+1)*10+0 = 10*(1+..+5) = 150; min = 11; max = 52.
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)][0], 150u) << "node " << i;
    EXPECT_EQ(results[static_cast<std::size_t>(i)][1], 11u) << "node " << i;
    EXPECT_EQ(results[static_cast<std::size_t>(i)][2], 52u) << "node " << i;
  }
}

TEST(CollNectarine, CabSurfaceForwardsAndThrowsUnattached) {
  const int n = 3;
  CabFixture fx(n);
  std::vector<std::unique_ptr<nectarine::CabNectarine>> nin;
  for (int i = 0; i < n; ++i) {
    net::NodeStack& st = fx.sys.stack(i);
    nin.push_back(std::make_unique<nectarine::CabNectarine>(fx.sys.runtime(i), st.datagram,
                                                            st.rmp, st.reqresp));
  }
  // Unattached: loud error, not a silent no-op.
  EXPECT_THROW(nin[0]->coll_barrier(1), std::logic_error);
  for (int i = 0; i < n; ++i) {
    nin[static_cast<std::size_t>(i)]->attach_collectives(fx.eng[static_cast<std::size_t>(i)].get());
    EXPECT_EQ(nin[static_cast<std::size_t>(i)]->collectives(),
              fx.eng[static_cast<std::size_t>(i)].get());
  }
  std::vector<std::uint64_t> results(n, 0);
  int ok_count = 0;
  for (int i = 0; i < n; ++i) {
    fx.sys.runtime(i).fork_app("w", [&, i] {
      if (nin[static_cast<std::size_t>(i)]->coll_barrier(1)) ++ok_count;
      if (nin[static_cast<std::size_t>(i)]->coll_reduce(
              1, ReduceOp::Sum, static_cast<std::uint64_t>(i + 1),
              &results[static_cast<std::size_t>(i)])) {
        ++ok_count;
      }
    });
  }
  fx.sys.engine().run();
  EXPECT_EQ(ok_count, 2 * n);
  for (int i = 0; i < n; ++i) EXPECT_EQ(results[static_cast<std::size_t>(i)], 6u);
}

TEST(CollTimeout, MissingMemberFailsLoudThenReformRecovers) {
  const int n = 2;
  net::NectarSystem sys(n);
  GroupSpec g = group_of(n);
  g.timeout = sim::msec(2);
  g.retransmit = sim::usec(500);
  std::vector<std::unique_ptr<CollectiveEngine>> eng;
  for (int i = 0; i < n; ++i) {
    eng.push_back(std::make_unique<CollectiveEngine>(sys.net().datalink(i)));
    eng.back()->join_group(g);
  }

  // Only the root enters; rank 1 stays silent. The op must fail with the
  // straggler named — not hang.
  bool ok = true;
  sys.runtime(0).fork_app("w0", [&] { ok = eng[0]->barrier(1); });
  sys.engine().run();
  EXPECT_FALSE(ok);
  EXPECT_EQ(eng[0]->ops_failed(), 1u);
  EXPECT_NE(eng[0]->last_error().find("timed out"), std::string::npos);
  EXPECT_NE(eng[0]->last_error().find("rank 1"), std::string::npos);
  // The group is poisoned until reformed: further ops fail fast.
  bool ok2 = true;
  sys.runtime(0).fork_app("w0b", [&] { ok2 = eng[0]->barrier(1); });
  sys.engine().run();
  EXPECT_FALSE(ok2);
  EXPECT_EQ(eng[0]->ops_failed(), 2u);

  // Reform under a new epoch on every member; the group works again.
  for (auto& e : eng) e->reform(1, 2);
  int ok_count = 0;
  for (int i = 0; i < n; ++i) {
    sys.runtime(i).fork_app("w", [&, i] {
      if (eng[static_cast<std::size_t>(i)]->barrier(1)) ++ok_count;
    });
  }
  sys.engine().run();
  EXPECT_EQ(ok_count, n);
}

/// Host-side baseline node: the host process, its CAB driver, and the
/// Nectarine + HostCollective pair (same construction order on every node).
struct HostFixtureNode {
  std::unique_ptr<host::Host> h;
  std::unique_ptr<host::CabDriver> drv;
  std::unique_ptr<nectarine::HostNectarine> nin;
  std::unique_ptr<HostCollective> hc;
};

std::vector<HostFixtureNode> make_host_nodes(net::NectarSystem& sys, int n,
                                             const GroupSpec& g) {
  std::vector<HostFixtureNode> nodes(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    HostFixtureNode& hn = nodes[static_cast<std::size_t>(i)];
    hn.h = std::make_unique<host::Host>(sys.engine(), "host" + std::to_string(i));
    hn.drv = std::make_unique<host::CabDriver>(*hn.h, sys.runtime(i));
    hn.nin = std::make_unique<nectarine::HostNectarine>(*hn.drv);
    hn.hc = std::make_unique<HostCollective>(*hn.nin, sys.stack(i).datagram, g);
    hn.nin->attach_collectives(hn.hc.get());
  }
  return nodes;
}

TEST(CollHost, BaselineBarrierAndReduceThroughNectarine) {
  const int n = 4;
  net::NectarSystem sys(n, /*with_vme=*/true);
  auto nodes = make_host_nodes(sys, n, group_of(n));

  std::vector<sim::SimTime> entered(n, -1), exited(n, -1);
  std::vector<std::uint64_t> results(n, 0);
  int ok_count = 0;
  for (int i = 0; i < n; ++i) {
    nodes[static_cast<std::size_t>(i)].h->run_process("coll", [&, i] {
      HostFixtureNode& hn = nodes[static_cast<std::size_t>(i)];
      core::Cpu& cpu = hn.h->cpu();
      cpu.sleep_for(sim::usec(40) * static_cast<sim::SimTime>(i));
      entered[static_cast<std::size_t>(i)] = cpu.engine().now();
      if (hn.nin->coll_barrier(1)) ++ok_count;
      exited[static_cast<std::size_t>(i)] = cpu.engine().now();
      if (hn.nin->coll_reduce(1, ReduceOp::Max, static_cast<std::uint64_t>(i * 7 + 1),
                              &results[static_cast<std::size_t>(i)])) {
        ++ok_count;
      }
    });
  }
  sys.engine().run();
  EXPECT_EQ(ok_count, 2 * n);
  sim::SimTime last_entry = *std::max_element(entered.begin(), entered.end());
  sim::SimTime first_exit = *std::min_element(exited.begin(), exited.end());
  EXPECT_GE(first_exit, last_entry);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)], static_cast<std::uint64_t>((n - 1) * 7 + 1));
    EXPECT_EQ(nodes[static_cast<std::size_t>(i)].hc->ops_completed(), 2u);
  }
}

TEST(CollHost, CabEngineBeatsHostBaselineOnBarrier) {
  const int n = 8, iters = 4;

  CabFixture cab(n);
  for (int i = 0; i < n; ++i) {
    cab.sys.runtime(i).fork_app("w", [&, i] {
      for (int it = 0; it < iters; ++it) cab.eng[static_cast<std::size_t>(i)]->barrier(1);
    });
  }
  cab.sys.engine().run();

  net::NectarSystem hsys(n, /*with_vme=*/true);
  auto nodes = make_host_nodes(hsys, n, group_of(n));
  for (int i = 0; i < n; ++i) {
    nodes[static_cast<std::size_t>(i)].h->run_process("coll", [&, i] {
      for (int it = 0; it < iters; ++it) nodes[static_cast<std::size_t>(i)].hc->barrier();
    });
  }
  hsys.engine().run();

  obs::LatencyHistogram cab_lat, host_lat;
  for (int i = 0; i < n; ++i) {
    cab_lat.merge(cab.eng[static_cast<std::size_t>(i)]->barrier_latency());
    host_lat.merge(nodes[static_cast<std::size_t>(i)].hc->barrier_latency());
  }
  ASSERT_EQ(cab_lat.count(), static_cast<std::uint64_t>(n * iters));
  ASSERT_EQ(host_lat.count(), static_cast<std::uint64_t>(n * iters));
  // The offload thesis: no per-message host interrupt/wakeup/VME tax, and
  // the fan-out rides the crossbar — the CAB engine must win clearly.
  EXPECT_LT(cab_lat.mean() * 2, host_lat.mean());
}

TEST(CollEngine, SingleMemberFastPathAndUnknownGroupThrows) {
  net::NectarSystem sys(1);
  CollectiveEngine eng(sys.net().datalink(0));
  GroupSpec g = group_of(1);
  eng.join_group(g);
  bool ok = false;
  std::uint64_t result = 0;
  sys.runtime(0).fork_app("w", [&] {
    ok = eng.barrier(1) && eng.reduce(1, ReduceOp::Sum, 42, &result);
  });
  sys.engine().run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(result, 42u);
  EXPECT_EQ(eng.msgs_sent(), 0u);  // nothing to talk to
  EXPECT_THROW(eng.barrier(9), std::invalid_argument);
}

}  // namespace
}  // namespace nectar::coll
