#pragma once

// HealthMonitor: a CAB-resident prober that measures per-path liveness.
//
// One monitor runs on each CAB (two system-priority threads on the paper's
// runtime). The prober thread sends a small datagram over every (peer, path)
// in the PathDb at a fixed interval — over the *explicit* path route, not
// the installed table entry — and the responder thread echoes probes back
// over the exact reverse path (PathDb's reverse-symmetry property). Health
// is therefore a per-path round-trip fact: a fault anywhere on path i of
// (me, peer) is seen by path i's probes and no other's.
//
// State machine per (peer, path), driven by consecutive misses/successes
// (hysteresis so one dropped probe does not flap routes):
//
//     Up --misses >= suspect_after--> Suspect --misses >= dead_after--> Dead
//     Suspect --1 success--> Up
//     Dead --successes >= recover_after--> Up      (probed at backoff rate)
//
// Dead and recovered transitions are reported to a HealthListener (the
// RouteManager), carrying the send time of the first missed probe so the
// reroute latency histogram measures the full detection + switch window.

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "core/mailbox.hpp"
#include "core/runtime.hpp"
#include "nproto/datagram.hpp"
#include "route/pathdb.hpp"
#include "sim/time.hpp"

namespace nectar::route {

/// Knobs for the whole control plane ([routing] in scenario INI files).
struct RoutingConfig {
  bool enabled = false;             ///< default off: data plane is untouched
  int paths = 2;                    ///< ECMP set size (PathDb k)
  sim::SimTime probe_interval = sim::msec(5);
  sim::SimTime probe_timeout = sim::msec(2);
  int suspect_after = 1;            ///< consecutive misses to enter Suspect
  int dead_after = 3;               ///< consecutive misses to declare Dead
  int recover_after = 2;            ///< consecutive successes to leave Dead
  double dead_backoff = 4.0;        ///< probe_interval multiplier for Dead paths
  bool revert = true;               ///< reinstall the preferred path on recovery
  std::uint64_t seed = 1;           ///< PathDb tie-break / ECMP spread seed
};

enum class PathState : std::uint8_t { Up, Suspect, Dead };

/// Receives path state transitions (on the prober thread of the reporting
/// node, at the simulated time of detection).
class HealthListener {
 public:
  virtual ~HealthListener() = default;
  virtual void on_path_dead(int node, int dst, int path, sim::SimTime first_miss_sent_at) = 0;
  virtual void on_path_recovered(int node, int dst, int path) = 0;
};

class HealthMonitor {
 public:
  /// Creates the monitor mailbox on `rt` (so every node's monitor address
  /// is known before any thread runs). Threads fork in start().
  HealthMonitor(core::CabRuntime& rt, nproto::DatagramProtocol& dg, const PathDb& paths,
                const RoutingConfig& cfg, HealthListener& listener);

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  int node() const { return rt_.node_id(); }
  core::MailboxAddr address() const { return mailbox_.address(); }

  /// Give the monitor the address of every peer's monitor mailbox (indexed
  /// by node id; the vector must outlive the monitor) and fork the prober
  /// and responder threads.
  void start(const std::vector<core::MailboxAddr>& peers);

  PathState state(int dst, int path) const;

  std::uint64_t probes_sent() const { return probes_sent_; }
  std::uint64_t probe_timeouts() const { return probe_timeouts_; }
  std::uint64_t probe_replies() const { return probe_replies_; }

 private:
  struct Target {
    int dst;
    int path;
    PathState state = PathState::Up;
    int misses = 0;
    int successes = 0;             // consecutive, while Dead
    sim::SimTime next_send = 0;
    bool outstanding = false;
    std::uint32_t seq = 0;
    sim::SimTime deadline = 0;
    sim::SimTime sent_at = 0;
    sim::SimTime first_miss_sent_at = 0;  // start of the current miss run
  };

  void prober_loop();
  void responder_loop();
  void send_probe(Target& t);
  void handle_miss(Target& t);
  void handle_success(Target& t);

  core::CabRuntime& rt_;
  nproto::DatagramProtocol& dg_;
  const PathDb& paths_;
  const RoutingConfig& cfg_;
  HealthListener& listener_;
  core::Mailbox& mailbox_;
  const std::vector<core::MailboxAddr>* peers_ = nullptr;

  std::vector<Target> targets_;
  std::map<std::uint32_t, std::size_t> outstanding_;  // seq -> targets_ index
  std::uint32_t next_seq_ = 1;

  std::uint64_t probes_sent_ = 0;
  std::uint64_t probe_timeouts_ = 0;
  std::uint64_t probe_replies_ = 0;
};

}  // namespace nectar::route
