#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/runtime.hpp"
#include "hw/cab.hpp"
#include "hw/pool.hpp"
#include "obs/profiler.hpp"
#include "hw/hub.hpp"
#include "hw/vme.hpp"
#include "proto/datalink.hpp"
#include "sim/engine.hpp"
#include "sim/parallel.hpp"
#include "sim/trace.hpp"

namespace nectar::obs {
class Auditor;
}

namespace nectar::net {

/// Builder/owner for a Nectar network: HUBs connected in an arbitrary mesh,
/// CABs on HUB ports (paper §2, Figure 1). Computes the source routes the
/// CABs use (§2.1) with a BFS over the HUB graph and installs them in every
/// datalink.
///
/// Sharding: the network owns a sim::ParallelEngine with `shards` engines.
/// Every HUB is assigned to a shard (round-robin by default, or explicitly
/// via add_hub); a CAB — its board, VME bus, runtime, fibers — lives on its
/// HUB's shard, so all intra-pod traffic stays on one engine. Trunks
/// between HUBs on different shards become explicit shard-boundary sends
/// (hw::Hub::attach_output_remote), and the minimum propagation over those
/// trunks is the coordinator's lookahead. A cross-shard trunk with zero
/// propagation would make the lookahead zero, so link_hubs rejects it.
/// With shards == 1 (the default) everything degenerates to the sequential
/// simulator: one engine, no threads, byte-identical results.
class Network {
 public:
  Network() : Network(1) {}
  /// `shards` >= 1 parallel shards. HUBs default to shard (id % shards).
  explicit Network(int shards);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Shard 0's engine. With one shard this is *the* engine; with more it is
  /// still the conventional home for network-global bookkeeping created
  /// before the run (fault arming, causal tracer), but per-node event flow
  /// must use engine_of_node()/hub_engine().
  sim::Engine& engine() { return par_->shard(0); }
  sim::ParallelEngine& parallel() { return *par_; }
  int shard_count() const { return par_->shard_count(); }
  /// Minimum cross-shard trunk propagation (ns); 0 when no trunk crosses
  /// shards (single shard or single HUB).
  sim::SimTime lookahead() const { return par_->lookahead(); }

  int hub_shard(int hub_id) const { return hub_shard_.at(static_cast<std::size_t>(hub_id)); }
  sim::Engine& hub_engine(int hub_id) { return par_->shard(hub_shard(hub_id)); }
  int node_shard(int node) const { return hub_shard(cab_hub(node)); }
  sim::Engine& engine_of_node(int node) { return par_->shard(node_shard(node)); }

  sim::TraceRecorder& trace() { return trace_; }

  /// Network-wide observability: every node's stats report into one registry,
  /// and every node's scheduler/bus/wire events share one tracer (disabled
  /// until Tracer::set_enabled(true)).
  obs::MetricsRegistry& metrics() { return metrics_; }
  obs::Tracer& tracer() { return tracer_; }

  /// Network-wide cycle-attribution profiler. Every CAB CPU, VME bus, and
  /// DMA controller is attached at construction; disabled (zero simulated
  /// cost, one branch per charge) until Profiler::set_enabled(true).
  obs::Profiler& profiler() { return profiler_; }

  /// Opt-in: report the simulation substrate's host-side pool statistics
  /// (event slab under "sim.engine", per-thread frame/header byte pools
  /// under "hw.framepool"/"proto.hdrpool", all node -1) into metrics().
  /// Not registered by default — the byte-pool counters span Networks, and
  /// committed bench reports must snapshot byte-identically across runs.
  /// Also registers every HUB's crossbar probes (per-output-port busy /
  /// blocked time, blackout drops; see hw::Hub::register_metrics) so
  /// scenario reports can attribute loss and queueing to the switch fabric.
  /// With shards > 1 the engine probes come from the ParallelEngine
  /// (per-shard event counts, window/mailbox statistics) and the byte
  /// pools are skipped — they are thread_local, and the coordinator thread's
  /// pools see no frame traffic.
  /// Idempotent: telemetry and [scenario] substrate_metrics may both ask.
  void register_substrate_metrics();

  /// Wire the substrate's conservation laws into `auditor` (tick-checked
  /// from the coordinator thread between run_until steps):
  ///   - per-link:  frames_sent == frames_delivered + frames_dropped + in-flight
  ///   - per-HUB:   input and output side of the crossbar (see hw::Hub docs)
  ///   - per-CAB:   rx chain — HUB feed port delivered == FIFO accepted ==
  ///                DMA recv_frames + FIFO queued
  ///   - per-shard: event-pool lease balance (slots == free + pending) and
  ///                clock monotonicity across ticks.
  /// The auditor must not outlive this Network.
  void register_audit(obs::Auditor& auditor);

  /// Add a HUB (16x16 by default) on shard `shard` (-1: id % shard_count()).
  /// Returns its id.
  int add_hub(int ports = 16, int shard = -1);
  hw::Hub& hub(int id) { return *hubs_.at(static_cast<std::size_t>(id)); }
  int hub_count() const { return static_cast<int>(hubs_.size()); }

  /// Add a CAB on `hub_id` port `port` (one fiber pair, §2.2). A VME bus is
  /// created when `with_vme` (for host-attached CABs). Returns the node id.
  /// The CAB and everything on it live on the HUB's shard.
  int add_cab(int hub_id, int port, bool with_vme = false);
  int cab_count() const { return static_cast<int>(cabs_.size()); }

  hw::CabBoard& cab(int node) { return *cabs_.at(static_cast<std::size_t>(node))->board; }
  core::CabRuntime& runtime(int node) { return *cabs_.at(static_cast<std::size_t>(node))->rt; }
  proto::Datalink& datalink(int node) { return *cabs_.at(static_cast<std::size_t>(node))->dl; }
  hw::VmeBus* vme(int node) { return cabs_.at(static_cast<std::size_t>(node))->vme.get(); }
  /// Where a CAB hangs off the switch fabric (fault targeting needs the
  /// HUB port that feeds the CAB's inbound fiber).
  int cab_hub(int node) const { return cabs_.at(static_cast<std::size_t>(node))->hub; }
  int cab_port(int node) const { return cabs_.at(static_cast<std::size_t>(node))->port; }

  /// Connect two HUBs with a trunk fiber pair (multi-HUB systems, §2.1).
  /// `propagation` models the trunk fiber's flight time; when the two HUBs
  /// live on different shards it must be positive — it becomes (part of)
  /// the synchronization lookahead — or std::invalid_argument is thrown.
  void link_hubs(int hub_a, int port_a, int hub_b, int port_b,
                 sim::SimTime propagation = sim::costs::kLinkPropagation);

  /// A trunk fiber pair between two HUBs, as passed to link_hubs. Exposed so
  /// the control plane (route::PathDb) can walk the HUB graph itself.
  struct Trunk {
    int hub_a, port_a, hub_b, port_b;
    sim::SimTime propagation;
  };
  const std::vector<Trunk>& trunks() const { return trunks_; }

  /// Opt-in: spread routes across equal-cost trunks. The BFS route search
  /// scans trunks_ in wiring order, so on a fat-tree every cross-leaf pair
  /// tie-breaks to the same first spine — which concentrates all cross-leaf
  /// switching on one HUB (and, sharded, on one shard). With spreading on,
  /// the scan starts at a deterministic hash of the (src hub, dst hub)
  /// pair, so different pairs win different equal-length paths while any
  /// single pair's route stays a pure function of the pair — independent
  /// of shard count, seed, or call order. Off by default: the committed
  /// BENCH_* reports bake in first-trunk routes. Set before any route()
  /// call; the route caches are filled on first use.
  void set_route_spread(bool on) { route_spread_ = on; }
  bool route_spread() const { return route_spread_; }

  /// Compute and install source routes between every pair of CABs (and each
  /// CAB to itself, through its own HUB). Call after the topology is built.
  /// After this, the interned route tables are immutable-after-build: the
  /// run only reads them (shared RouteRefs), so shards need no locking.
  void install_routes();

  /// The raw route (one output-port byte per HUB hop) from `src` to `dst`.
  /// Backed by the interned cache below, so repeated calls are O(log n).
  const std::vector<std::uint8_t>& route(int src, int dst) const;

  /// The same route interned as a shared immutable RouteRef — the form the
  /// datalinks and the control plane hold, computed once per pair.
  const hw::RouteRef& route_ref(int src, int dst) const;

  /// Multicast distribution tree from `src` to every CAB in `members`
  /// (src itself is skipped — a node never multicasts to itself). Built by
  /// overlaying the unicast hub paths, so each trunk the union uses carries
  /// exactly one replica; interned per (src, member set) like the unicast
  /// route cache and immutable after build, so frames of a collective group
  /// share one tree with no locking. Call before the run starts (group
  /// setup time), like route_ref.
  const hw::McastRef& mcast_ref(int src, const std::vector<int>& members) const;

  /// Run the simulation until the event queue drains or `t` is reached.
  void run_until(sim::SimTime t) { par_->run_until(t); }
  void run() { par_->run(); }

 private:
  struct CabNode {
    std::unique_ptr<hw::VmeBus> vme;  // may be null; must outlive the board
    std::unique_ptr<hw::CabBoard> board;
    std::unique_ptr<core::CabRuntime> rt;
    std::unique_ptr<proto::Datalink> dl;
    int hub = -1;
    int port = -1;
  };
  std::vector<std::uint8_t> compute_route(int src, int dst) const;
  /// Trunk-hop port bytes from hub `a` to hub `b` (BFS, cached per pair —
  /// every CAB pair on the same HUB pair shares the hub-level path).
  const std::vector<std::uint8_t>& hub_path(int a, int b) const;

  std::unique_ptr<sim::ParallelEngine> par_;
  sim::TraceRecorder trace_;
  obs::MetricsRegistry metrics_;
  obs::Tracer tracer_;
  obs::Profiler profiler_;
  std::vector<std::unique_ptr<hw::Hub>> hubs_;
  std::vector<int> hub_shard_;
  std::vector<std::unique_ptr<CabNode>> cabs_;
  std::vector<Trunk> trunks_;
  // BFS routes interned per (src, dst) on first use; host-side cache only,
  // simulated costs are unaffected. Filled by install_routes before the run
  // starts — immutable (read-only) while shard threads are active.
  mutable std::map<std::pair<int, int>, hw::RouteRef> route_cache_;
  mutable std::map<std::pair<int, int>, std::vector<std::uint8_t>> hub_path_cache_;
  // Interned multicast trees, keyed by (source, sorted member set) — the
  // canonical form, so permuted member lists share one tree.
  mutable std::map<std::pair<int, std::vector<int>>, hw::McastRef> mcast_cache_;
  bool route_spread_ = false;
  bool substrate_metrics_registered_ = false;

  // Last member: holds probes reading the nodes above (VME, links), so it
  // must release before they are destroyed.
  obs::Registration metrics_reg_{metrics_};
};

}  // namespace nectar::net
