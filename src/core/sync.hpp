#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nectar::core {

class Thread;

/// Lightweight synchronization (paper §3.4): a sync carries a single one-word
/// value from a writer to one asynchronous reader — cheaper than a mailbox
/// when all that is needed is "a condition variable and a shared word".
/// Operations are Alloc, Write, Read, and Cancel, with the paper's exact
/// free-on-read / free-on-write-after-cancel lifecycle.
///
/// Host processes and CAB threads allocate from *separate pools* so no
/// cross-bus locking is needed for allocation (§3.4).
class SyncPool {
 public:
  using SyncId = std::uint32_t;

  explicit SyncPool(std::string name) : name_(std::move(name)) {}

  /// Alloc: create a new sync in the Empty state.
  SyncId alloc();

  /// Write: deposit `value` and mark written; wakes a blocked reader. If the
  /// sync was canceled, it is freed instead (§3.4).
  void write(SyncId id, std::uint32_t value);

  /// Read: block until written, then free the sync and return its value.
  std::uint32_t read(SyncId id);

  /// Non-blocking poll: returns true and frees the sync if it was written.
  /// (Host processes poll syncs over the VME bus.)
  bool read_try(SyncId id, std::uint32_t* out);

  /// Cancel: the reader is no longer interested. Frees immediately if
  /// already written; otherwise marks canceled so a later Write frees it.
  void cancel(SyncId id);

  const std::string& name() const { return name_; }
  std::size_t live() const { return syncs_.size(); }
  std::uint64_t total_allocs() const { return total_allocs_; }

 private:
  enum class State : std::uint8_t { Empty, Written, Canceled };
  struct Sync {
    State state = State::Empty;
    std::uint32_t value = 0;
    Thread* reader = nullptr;
  };

  Sync& get(SyncId id);

  std::string name_;
  std::map<SyncId, Sync> syncs_;
  SyncId next_ = 1;
  std::uint64_t total_allocs_ = 0;
};

}  // namespace nectar::core
