#include "coll/wire.hpp"

#include <algorithm>
#include <stdexcept>

#include "proto/headers.hpp"

namespace nectar::coll {

const char* kind_name(MsgKind k) {
  switch (k) {
    case MsgKind::Arrive: return "arrive";
    case MsgKind::Release: return "release";
    case MsgKind::DissemRound: return "dissem";
    case MsgKind::DissemNack: return "dissem-nack";
    case MsgKind::BcastData: return "bcast-data";
    case MsgKind::BcastAck: return "bcast-ack";
    case MsgKind::ReduceUp: return "reduce-up";
    case MsgKind::ReduceResult: return "reduce-result";
  }
  return "?";
}

std::uint64_t combine(ReduceOp op, std::uint64_t a, std::uint64_t b) {
  switch (op) {
    case ReduceOp::Sum: return a + b;
    case ReduceOp::Min: return std::min(a, b);
    case ReduceOp::Max: return std::max(a, b);
  }
  throw std::logic_error("coll: unknown reduce op");
}

const char* reduce_op_name(ReduceOp op) {
  switch (op) {
    case ReduceOp::Sum: return "sum";
    case ReduceOp::Min: return "min";
    case ReduceOp::Max: return "max";
  }
  return "?";
}

ReduceOp parse_reduce_op(const std::string& name) {
  if (name == "sum") return ReduceOp::Sum;
  if (name == "min") return ReduceOp::Min;
  if (name == "max") return ReduceOp::Max;
  throw std::invalid_argument("coll: unknown reduce op '" + name + "' (sum|min|max)");
}

void CollHeader::serialize(std::span<std::uint8_t> out) const {
  proto::put16(out, 0, group);
  proto::put16(out, 2, epoch);
  proto::put8(out, 4, static_cast<std::uint8_t>(kind));
  proto::put8(out, 5, op);
  proto::put16(out, 6, src_rank);
  proto::put32(out, 8, seq);
  proto::put16(out, 12, round);
  proto::put16(out, 14, length);
  proto::put32(out, 16, static_cast<std::uint32_t>(value >> 32));
  proto::put32(out, 20, static_cast<std::uint32_t>(value));
}

CollHeader CollHeader::parse(std::span<const std::uint8_t> in) {
  CollHeader h;
  h.group = proto::get16(in, 0);
  h.epoch = proto::get16(in, 2);
  h.kind = static_cast<MsgKind>(proto::get8(in, 4));
  h.op = proto::get8(in, 5);
  h.src_rank = proto::get16(in, 6);
  h.seq = proto::get32(in, 8);
  h.round = proto::get16(in, 12);
  h.length = proto::get16(in, 14);
  h.value = (static_cast<std::uint64_t>(proto::get32(in, 16)) << 32) | proto::get32(in, 20);
  return h;
}

}  // namespace nectar::coll
