#pragma once

// Host-level reference implementation of the collectives — the comparison
// baseline for the CAB-resident engine (ISSUE 8, after the paper's §6 host
// vs CAB measurements).
//
// Every protocol action here happens in a *host process*: collective
// messages arrive as ordinary point-to-point datagrams in a host-visible
// mailbox, so each one costs the host a driver interrupt, a process wakeup,
// and VME programmed I/O to read the header out of CAB memory; each send is
// composed in host memory, copied across the VME bus into a send-request
// mailbox, and handed to a CAB proxy thread that issues the datagram (the
// §4.2 TCP send-request pattern). Fan-outs are unicast sweeps — a host has
// no way to hand the HUB crossbar a distribution tree, which is exactly the
// offload bench_collectives measures.
//
// The baseline is deliberately fault-free: no retransmit timers, no epochs
// (runs compare latency under loss-free conditions; fault tolerance is the
// CAB engine's job). Messages are still absorbed idempotently so the
// one-collective skew between members is handled the same way the engine
// handles it.
//
// Convention: every member constructs its HostCollective in the same global
// order (like protocol stacks), so the receive mailbox gets the same per-CAB
// index on every node and peers can address it as (node, my own rx index).

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "coll/group.hpp"
#include "coll/wire.hpp"
#include "nectarine/nectarine.hpp"
#include "obs/latency.hpp"

namespace nectar::coll {

class HostCollective {
 public:
  /// `nin` is this node's host-side Nectarine (its driver names the host and
  /// CAB); `datagram` is the same node's datagram protocol. `spec.mcast`,
  /// `spec.timeout` and `spec.retransmit` are ignored — see file comment.
  HostCollective(nectarine::HostNectarine& nin, nproto::DatagramProtocol& datagram,
                 GroupSpec spec);

  HostCollective(const HostCollective&) = delete;
  HostCollective& operator=(const HostCollective&) = delete;

  // Blocking collective calls; run from a host process on this node's host
  // CPU. Always succeed (fault-free baseline), returning like the engine's
  // API so driver code can treat both uniformly.
  bool barrier();
  bool bcast(std::span<std::uint8_t> data);
  bool reduce(ReduceOp op, std::uint64_t contribution, std::uint64_t* result);

  int my_rank() const { return my_rank_; }
  std::uint16_t group_id() const { return spec_.id; }
  const GroupSpec& spec() const { return spec_; }
  std::uint64_t msgs_sent() const { return msgs_sent_; }
  std::uint64_t msgs_received() const { return msgs_received_; }
  std::uint64_t ops_completed() const { return ops_completed_; }

  obs::LatencyHistogram& barrier_latency() { return barrier_lat_; }
  obs::LatencyHistogram& bcast_latency() { return bcast_lat_; }
  obs::LatencyHistogram& reduce_latency() { return reduce_lat_; }

 private:
  struct SeqState {
    std::vector<std::uint64_t> rank_mask;  ///< arrivals / reduce-ups / bcast acks
    std::uint64_t rounds = 0;              ///< dissemination round bits
    std::uint64_t partial = 0;
    bool partial_valid = false;
    bool released = false;
    std::uint64_t result = 0;
    std::vector<std::uint8_t> bcast_data;
    bool bcast_valid = false;
  };

  SeqState& state(std::uint32_t seq);
  void finish_op(std::uint32_t seq, sim::SimTime started, obs::LatencyHistogram& hist);
  /// Block the host process until one collective message has been received
  /// and folded into the per-seq state.
  void recv_one();
  /// Compose (host memory), copy across the VME bus, and hand to the CAB
  /// proxy thread for transmission. `payload` only for BcastData.
  void send_to(int dst_rank, MsgKind kind, int round = 0, std::uint64_t value = 0,
               std::uint8_t rop = 0, std::span<const std::uint8_t> payload = {});

  static void mask_set(std::vector<std::uint64_t>& m, int bit);
  static bool mask_test(const std::vector<std::uint64_t>& m, int bit);
  bool have_all_children(std::uint32_t seq);

  nectarine::HostNectarine& nin_;
  nproto::DatagramProtocol& datagram_;
  GroupSpec spec_;
  int my_rank_ = -1;

  nectarine::HostNectarine::HostMailbox rx_;  ///< inbound collective datagrams
  std::uint32_t rx_index_ = 0;                ///< same index on every member (see above)
  nectarine::HostNectarine::HostMailbox tx_;  ///< host -> CAB send requests

  std::uint32_t seq_ = 1;
  std::map<std::uint32_t, SeqState> pending_;

  std::uint64_t msgs_sent_ = 0;
  std::uint64_t msgs_received_ = 0;
  std::uint64_t ops_completed_ = 0;

  obs::LatencyHistogram barrier_lat_;
  obs::LatencyHistogram bcast_lat_;
  obs::LatencyHistogram reduce_lat_;
};

}  // namespace nectar::coll
