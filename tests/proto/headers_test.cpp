#include "proto/headers.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nectar::proto {
namespace {

TEST(Headers, ByteOrderHelpers) {
  std::vector<std::uint8_t> buf(8, 0);
  put16(buf, 0, 0x1234);
  put32(buf, 2, 0xDEADBEEF);
  EXPECT_EQ(buf[0], 0x12);
  EXPECT_EQ(buf[1], 0x34);
  EXPECT_EQ(get16(buf, 0), 0x1234);
  EXPECT_EQ(get32(buf, 2), 0xDEADBEEFu);
}

TEST(Headers, DatalinkRoundTrip) {
  DatalinkHeader h;
  h.type = PacketType::Rmp;
  h.src_node = 7;
  h.length = 4096;
  std::vector<std::uint8_t> buf(DatalinkHeader::kSize);
  h.serialize(buf);
  DatalinkHeader g = DatalinkHeader::parse(buf);
  EXPECT_EQ(g.type, PacketType::Rmp);
  EXPECT_EQ(g.src_node, 7);
  EXPECT_EQ(g.length, 4096);
}

TEST(Headers, IpRoundTripAndChecksum) {
  IpHeader h;
  h.total_len = 1500;
  h.id = 42;
  h.ttl = 17;
  h.protocol = kProtoUdp;
  h.src = ip_of_node(1);
  h.dst = ip_of_node(2);
  std::vector<std::uint8_t> buf(IpHeader::kSize);
  h.serialize(buf);
  EXPECT_TRUE(IpHeader::checksum_ok(buf));
  IpHeader g = IpHeader::parse(buf);
  EXPECT_EQ(g.total_len, 1500);
  EXPECT_EQ(g.id, 42);
  EXPECT_EQ(g.ttl, 17);
  EXPECT_EQ(g.protocol, kProtoUdp);
  EXPECT_EQ(g.src, ip_of_node(1));
  EXPECT_EQ(g.dst, ip_of_node(2));
  // Corrupt one byte: checksum must fail.
  buf[9] ^= 0xFF;
  EXPECT_FALSE(IpHeader::checksum_ok(buf));
}

TEST(Headers, IpFragmentFields) {
  IpHeader h;
  h.more_fragments = true;
  h.frag_offset = 185;  // 1480 bytes / 8
  h.total_len = 1500;
  std::vector<std::uint8_t> buf(IpHeader::kSize);
  h.serialize(buf);
  IpHeader g = IpHeader::parse(buf);
  EXPECT_TRUE(g.more_fragments);
  EXPECT_FALSE(g.dont_fragment);
  EXPECT_EQ(g.frag_offset, 185);
}

TEST(Headers, IpRejectsNonIpv4) {
  std::vector<std::uint8_t> buf(IpHeader::kSize, 0);
  buf[0] = 0x65;  // version 6
  EXPECT_THROW(IpHeader::parse(buf), std::invalid_argument);
}

TEST(Headers, AddressPlan) {
  EXPECT_EQ(ip_to_string(ip_of_node(3)), "10.0.0.3");
  EXPECT_EQ(node_of_ip(ip_of_node(12)), 12);
}

TEST(Headers, UdpRoundTrip) {
  UdpHeader h{.src_port = 1000, .dst_port = 53, .length = 512, .checksum = 0xBEEF};
  std::vector<std::uint8_t> buf(UdpHeader::kSize);
  h.serialize(buf);
  UdpHeader g = UdpHeader::parse(buf);
  EXPECT_EQ(g.src_port, 1000);
  EXPECT_EQ(g.dst_port, 53);
  EXPECT_EQ(g.length, 512);
  EXPECT_EQ(g.checksum, 0xBEEF);
}

TEST(Headers, TcpRoundTripAndFlags) {
  TcpHeader h;
  h.src_port = 5555;
  h.dst_port = 80;
  h.seq = 0xA1B2C3D4;
  h.ack = 0x01020304;
  h.flags = kTcpSyn | kTcpAck;
  h.window = 8192;
  std::vector<std::uint8_t> buf(TcpHeader::kSize);
  h.serialize(buf);
  TcpHeader g = TcpHeader::parse(buf);
  EXPECT_EQ(g.seq, 0xA1B2C3D4u);
  EXPECT_EQ(g.ack, 0x01020304u);
  EXPECT_TRUE(g.has(kTcpSyn));
  EXPECT_TRUE(g.has(kTcpAck));
  EXPECT_FALSE(g.has(kTcpFin));
  EXPECT_EQ(g.window, 8192);
}

TEST(Headers, IcmpRoundTrip) {
  IcmpHeader h{.type = kIcmpEchoRequest, .code = 0, .checksum = 0, .id = 77, .seq = 3};
  std::vector<std::uint8_t> buf(IcmpHeader::kSize);
  h.serialize(buf);
  IcmpHeader g = IcmpHeader::parse(buf);
  EXPECT_EQ(g.type, kIcmpEchoRequest);
  EXPECT_EQ(g.id, 77);
  EXPECT_EQ(g.seq, 3);
}

TEST(Headers, NectarRoundTrip) {
  NectarHeader h;
  h.dst_mailbox = 12345;
  h.src_mailbox = 67890;
  h.src_node = 9;
  h.flags = 0x2;
  h.seq = 777;
  h.length = 256;
  std::vector<std::uint8_t> buf(NectarHeader::kSize);
  h.serialize(buf);
  NectarHeader g = NectarHeader::parse(buf);
  EXPECT_EQ(g.dst_mailbox, 12345u);
  EXPECT_EQ(g.src_mailbox, 67890u);
  EXPECT_EQ(g.src_node, 9);
  EXPECT_EQ(g.flags, 0x2);
  EXPECT_EQ(g.seq, 777);
  EXPECT_EQ(g.length, 256);
}

TEST(Headers, ShortBufferThrows) {
  std::vector<std::uint8_t> tiny(2);
  EXPECT_THROW(IpHeader::parse(tiny), std::invalid_argument);
  EXPECT_THROW(TcpHeader::parse(tiny), std::invalid_argument);
  EXPECT_THROW(UdpHeader::parse(tiny), std::invalid_argument);
  EXPECT_THROW(NectarHeader::parse(tiny), std::invalid_argument);
  IpHeader h;
  EXPECT_THROW(h.serialize(tiny), std::invalid_argument);
}

}  // namespace
}  // namespace nectar::proto
