#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "sim/parallel.hpp"

namespace nectar::sim {
namespace {

// The conservative-window contract: with lookahead L, a cross-shard event
// posted during window [T, T+L) can land no earlier than T+L — exactly the
// horizon — so the coordinator's drain never has to push an event behind a
// shard's clock, and the drain order (time, key, seq) makes the interleave
// deterministic regardless of worker timing.

TEST(ParallelEngineTest, SingleShardDelegatesToSequentialEngine) {
  ParallelEngine par(1);
  Engine& e = par.shard(0);
  std::vector<SimTime> fired;
  e.schedule_at(5, [&] { fired.push_back(e.now()); });
  e.schedule_at(2, [&] { fired.push_back(e.now()); });
  EXPECT_TRUE(par.run_until(4));   // event at 5 still pending
  EXPECT_FALSE(par.run_until(10)); // drained
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], 2);
  EXPECT_EQ(fired[1], 5);
  EXPECT_EQ(e.now(), 10);
  EXPECT_EQ(par.windows(), 2u) << "single shard: one 'window' per run_until call";
  EXPECT_EQ(par.total_events(), 2u);
  EXPECT_EQ(par.critical_path_events(), 2u) << "serial run: critical path == total";
}

TEST(ParallelEngineTest, CrossShardPingAtExactHorizonBoundary) {
  ParallelEngine par(2);
  par.set_lookahead(10);
  Engine& a = par.shard(0);
  Engine& b = par.shard(1);
  std::vector<std::pair<int, SimTime>> log;
  // First window starts at T=5, horizon 15. The sender posts for exactly
  // T+lookahead — the tightest legal cross-shard event — which must arrive
  // in a later window, never behind b's clock.
  a.schedule_at(5, [&] {
    log.push_back({0, a.now()});
    a.send_cross(b, a.now() + 10, [&] { log.push_back({1, b.now()}); }, /*key=*/1, /*seq=*/0);
  });
  EXPECT_FALSE(par.run_until(100));
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], (std::pair<int, SimTime>{0, 5}));
  EXPECT_EQ(log[1], (std::pair<int, SimTime>{1, 15}));
  EXPECT_EQ(par.cross_events(), 1u);
  EXPECT_EQ(a.cross_posts(), 1u);
  EXPECT_GE(par.windows(), 2u) << "boundary event needs a second window";
  // run_until settles every shard clock at the stop time.
  EXPECT_EQ(a.now(), 100);
  EXPECT_EQ(b.now(), 100);
}

TEST(ParallelEngineTest, ZeroLookaheadCrossPostRejectedLoudly) {
  // No lookahead declared: the coordinator runs unbounded windows, so a
  // cross-shard post inside one would have to land behind the destination
  // clock. The drain must refuse — loudly — rather than corrupt causality.
  ParallelEngine par(2);
  Engine& a = par.shard(0);
  Engine& b = par.shard(1);
  b.schedule_at(100, [] {});
  a.schedule_at(5, [&] { a.send_cross(b, 6, [] {}, 1, 0); });
  EXPECT_THROW(par.run_until(200), std::logic_error);
}

TEST(ParallelEngineTest, SameTimeCrossEventsDrainInKeyOrder) {
  ParallelEngine par(2);
  par.set_lookahead(10);
  Engine& a = par.shard(0);
  Engine& b = par.shard(1);
  std::vector<int> order;
  a.schedule_at(0, [&] {
    // Posted in descending key order; the barrier drain must sort them back.
    a.send_cross(b, 20, [&] { order.push_back(2); }, /*key=*/9, /*seq=*/0);
    a.send_cross(b, 20, [&] { order.push_back(1); }, /*key=*/3, /*seq=*/0);
    a.send_cross(b, 20, [&] { order.push_back(3); }, /*key=*/9, /*seq=*/1);
  });
  par.run_until(50);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(par.cross_events(), 3u);
  EXPECT_EQ(par.mailbox_highwater(), 3u);
}

// Ping-pong harness: one message bouncing between two shards, each hop
// `hop` ns of simulated time. Exercises many windows and alternating
// single-writer mailbox use.
struct PingPong {
  SimTime hop;
  int remaining;
  std::uint64_t seq = 0;
  std::vector<SimTime> times;

  void fire(Engine* at, Engine* other) {
    times.push_back(at->now());
    if (--remaining <= 0) return;
    at->send_cross(*other, at->now() + hop,
                   [this, at, other] { fire(other, at); }, /*key=*/7, seq++);
  }
};

struct PingPongResult {
  std::vector<SimTime> times;
  std::uint64_t windows, cross, total, critical;
};

PingPongResult run_ping_pong() {
  ParallelEngine par(2);
  par.set_lookahead(10);
  Engine& a = par.shard(0);
  Engine& b = par.shard(1);
  PingPong pp{/*hop=*/10, /*remaining=*/32};
  a.schedule_at(0, [&] { pp.fire(&a, &b); });
  par.run_until(1000);
  return {pp.times, par.windows(), par.cross_events(), par.total_events(),
          par.critical_path_events()};
}

TEST(ParallelEngineTest, PingPongIsExactAndDeterministic) {
  PingPongResult r1 = run_ping_pong();
  ASSERT_EQ(r1.times.size(), 32u);
  for (std::size_t i = 0; i < r1.times.size(); ++i) {
    EXPECT_EQ(r1.times[i], static_cast<SimTime>(10 * i)) << "hop " << i;
  }
  EXPECT_EQ(r1.cross, 31u);
  // A strictly serial ping-pong has no parallelism to find: the critical
  // path is every event (the +1 counts the kick-off event's window).
  EXPECT_EQ(r1.critical, r1.total);

  PingPongResult r2 = run_ping_pong();
  EXPECT_EQ(r1.times, r2.times);
  EXPECT_EQ(r1.windows, r2.windows);
  EXPECT_EQ(r1.cross, r2.cross);
  EXPECT_EQ(r1.total, r2.total);
  EXPECT_EQ(r1.critical, r2.critical);
}

TEST(ParallelEngineTest, RunToEmptyDrainsCrossTraffic) {
  ParallelEngine par(3);
  par.set_lookahead(5);
  int fired = 0;
  for (int s = 0; s < 3; ++s) {
    Engine& src = par.shard(s);
    Engine& dst = par.shard((s + 1) % 3);
    src.schedule_at(s + 1, [&src, &dst, &fired] {
      src.send_cross(dst, src.now() + 5, [&fired] { ++fired; }, 1, 0);
    });
  }
  par.run();
  EXPECT_EQ(fired, 3);
  for (int s = 0; s < 3; ++s) EXPECT_EQ(par.shard(s).pending_events(), 0u);
}

TEST(ParallelEngineTest, IndependentShardsParallelizePerfectly) {
  // Two shards with disjoint event streams and no cross traffic: the
  // critical path is one shard's share, so ideal speedup == shard count.
  ParallelEngine par(2);
  par.set_lookahead(100);
  int fired = 0;
  for (int s = 0; s < 2; ++s) {
    Engine& e = par.shard(s);
    for (SimTime t = 1; t <= 50; ++t) e.schedule_at(t, [&fired] { ++fired; });
  }
  par.run_until(200);
  EXPECT_EQ(fired, 100);
  EXPECT_EQ(par.total_events(), 100u);
  EXPECT_EQ(par.critical_path_events(), 50u);
}

}  // namespace
}  // namespace nectar::sim
