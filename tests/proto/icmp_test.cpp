#include "proto/icmp.hpp"

#include <gtest/gtest.h>

#include "net/system.hpp"

namespace nectar::proto {
namespace {

TEST(IcmpTest, PingEchoRoundTrip) {
  net::NectarSystem sys(2);
  sim::SimTime rtt = -1;
  std::uint16_t got_seq = 0;
  sys.runtime(0).fork_system("pinger", [&] {
    sys.stack(0).icmp.ping(ip_of_node(1), 7, 3, 56, [&](std::uint16_t seq, sim::SimTime t) {
      got_seq = seq;
      rtt = t;
    });
  });
  sys.engine().run();
  EXPECT_EQ(got_seq, 3);
  EXPECT_GT(rtt, 0);
  EXPECT_LT(rtt, sim::msec(1));  // LAN-scale round trip
  EXPECT_EQ(sys.stack(1).icmp.echo_requests_received(), 1u);
  EXPECT_EQ(sys.stack(1).icmp.echo_replies_sent(), 1u);
  EXPECT_EQ(sys.stack(0).icmp.echo_replies_received(), 1u);
}

TEST(IcmpTest, RepliesHandledEntirelyAtInterruptLevel) {
  // The responder side must answer without any of its *threads* running:
  // ICMP is a mailbox upcall (§4.1).
  net::NectarSystem sys(2);
  bool replied = false;
  sys.runtime(0).fork_system("pinger", [&] {
    sys.stack(0).icmp.ping(ip_of_node(1), 1, 1, 32,
                           [&](std::uint16_t, sim::SimTime) { replied = true; });
  });
  std::uint64_t switches_before = sys.runtime(1).cpu().context_switches();
  sys.engine().run();
  EXPECT_TRUE(replied);
  // Node 1 never context-switched to answer (its only threads — udp/tcp
  // servers — stay blocked; allow their initial scheduling only).
  EXPECT_LE(sys.runtime(1).cpu().context_switches(), switches_before + 3);
}

TEST(IcmpTest, MultiplePingsMatchBySequence) {
  net::NectarSystem sys(2);
  std::vector<std::uint16_t> seqs;
  sys.runtime(0).fork_system("pinger", [&] {
    for (std::uint16_t s = 1; s <= 5; ++s) {
      sys.stack(0).icmp.ping(ip_of_node(1), 9, s, 16,
                             [&seqs](std::uint16_t seq, sim::SimTime) { seqs.push_back(seq); });
      sys.runtime(0).cpu().sleep_for(sim::usec(300));
    }
  });
  sys.engine().run();
  EXPECT_EQ(seqs, (std::vector<std::uint16_t>{1, 2, 3, 4, 5}));
}

TEST(IcmpTest, PayloadSizeScalesRtt) {
  net::NectarSystem sys(2);
  sim::SimTime small_rtt = 0, big_rtt = 0;
  sys.runtime(0).fork_system("pinger", [&] {
    sys.stack(0).icmp.ping(ip_of_node(1), 2, 1, 16,
                           [&](std::uint16_t, sim::SimTime t) { small_rtt = t; });
    sys.runtime(0).cpu().sleep_for(sim::msec(5));
    sys.stack(0).icmp.ping(ip_of_node(1), 2, 2, 8000,
                           [&](std::uint16_t, sim::SimTime t) { big_rtt = t; });
  });
  sys.engine().run();
  ASSERT_GT(small_rtt, 0);
  ASSERT_GT(big_rtt, 0);
  // 8 KB twice over a 100 Mbit/s wire adds >1.2 ms.
  EXPECT_GT(big_rtt, small_rtt + sim::usec(1000));
}

TEST(IcmpTest, CorruptedEchoDetected) {
  net::NectarSystem sys(2);
  sys.net().cab(0).out_link().set_corrupt_rate(1.0, 3);
  bool replied = false;
  sys.runtime(0).fork_system("pinger", [&] {
    sys.stack(0).icmp.ping(ip_of_node(1), 4, 1, 64,
                           [&](std::uint16_t, sim::SimTime) { replied = true; });
  });
  sys.engine().run();
  EXPECT_FALSE(replied);  // ICMP has no retransmission: the ping is lost
}

}  // namespace
}  // namespace nectar::proto
