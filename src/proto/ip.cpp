#include "proto/ip.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "obs/causal.hpp"
#include "obs/profiler.hpp"
#include "proto/checksum.hpp"
#include "sim/costs.hpp"

namespace nectar::proto {

namespace costs = sim::costs;

Ip::Ip(Datalink& dl, IpAddr my_addr, std::size_t mtu)
    : dl_(dl),
      my_addr_(my_addr),
      mtu_(mtu),
      input_(dl.runtime().create_mailbox("ip-input")),
      metrics_reg_(dl.runtime().metrics()) {
  if (mtu_ <= IpHeader::kSize + 8) throw std::invalid_argument("Ip: MTU too small");
  dl_.register_client(PacketType::Ip, this);

  int node = dl_.node_id();
  metrics_reg_.probe(node, "ip", "datagrams_sent",
                     [this] { return static_cast<std::int64_t>(sent_); });
  metrics_reg_.probe(node, "ip", "fragments_sent",
                     [this] { return static_cast<std::int64_t>(frag_sent_); });
  metrics_reg_.probe(node, "ip", "datagrams_delivered",
                     [this] { return static_cast<std::int64_t>(delivered_); });
  metrics_reg_.probe(node, "ip", "datagrams_reassembled",
                     [this] { return static_cast<std::int64_t>(reassembled_); });
  metrics_reg_.probe(node, "ip", "dropped_bad_header",
                     [this] { return static_cast<std::int64_t>(dropped_bad_header_); });
  metrics_reg_.probe(node, "ip", "dropped_no_protocol",
                     [this] { return static_cast<std::int64_t>(dropped_no_protocol_); });
  metrics_reg_.probe(node, "ip", "reassembly_timeouts",
                     [this] { return static_cast<std::int64_t>(reass_timeouts_); });
}

void Ip::register_protocol(std::uint8_t protocol, core::Mailbox* input) {
  protocols_[protocol] = input;
}

void Ip::add_host_route(IpAddr addr, int node) { host_routes_[addr] = node; }

int Ip::node_for(IpAddr dst) const {
  auto it = host_routes_.find(dst);
  if (it != host_routes_.end()) return it->second;
  if ((dst >> 24) == 10) return node_of_ip(dst);  // the simulation's address plan
  throw std::logic_error("Ip: no route to " + ip_to_string(dst));
}

// --- output ---------------------------------------------------------------------

void Ip::output(const OutputInfo& info, HeaderBufLease proto_header, hw::CabAddr payload,
                std::size_t len, sim::InplaceAction on_sent, obs::TraceContext tctx) {
  core::Cpu& cpu = runtime().cpu();
  obs::CostScope scope("ip/output");
  cpu.charge(costs::kIpOutput);
  if (tctx.valid()) {
    if (auto* ct = obs::CausalTracer::active()) {
      ct->stage(tctx, "tx.ip", "node" + std::to_string(dl_.node_id()));
    }
  }

  IpAddr src = info.src != 0 ? info.src : my_addr_;
  int dst_node = node_for(info.dst);
  std::size_t proto_len = proto_header.size();
  std::size_t total = proto_len + len;
  std::size_t max_payload = (mtu_ - IpHeader::kSize) & ~std::size_t{7};
  std::uint16_t id = next_id_++;
  ++sent_;
  NECTAR_TRACE(dl_.runtime().trace_mark("ip.output"));

  auto make_header = [&](std::size_t off, std::size_t chunk, bool more) {
    IpHeader h;
    h.tos = info.tos;
    h.total_len = static_cast<std::uint16_t>(IpHeader::kSize + chunk);
    h.id = id;
    h.more_fragments = more;
    h.frag_offset = static_cast<std::uint16_t>(off / 8);
    h.ttl = info.ttl;
    h.protocol = info.protocol;
    h.src = src;
    h.dst = info.dst;
    return h;
  };

  if (total <= max_payload) {
    // Common case: a single datagram. Prepend the IP header into the
    // transport's composition buffer — [IP hdr][proto hdr] are contiguous.
    make_header(0, total, false).serialize(proto_header.ensure().push_front(IpHeader::kSize));
    dl_.send(PacketType::Ip, dst_node, std::move(proto_header), payload, len, std::move(on_sent),
             tctx);
    return;
  }

  // Fragmentation: offsets are in the combined (proto_header ++ payload)
  // byte space. Only the first fragment can contain proto_header bytes
  // (transport headers are far smaller than one fragment).
  if (proto_len >= max_payload) {
    throw std::logic_error("Ip::output: transport header exceeds fragment size");
  }
  std::size_t nfrags = (total + max_payload - 1) / max_payload;
  auto remaining = std::make_shared<std::size_t>(nfrags);
  auto shared_done = std::make_shared<sim::InplaceAction>(std::move(on_sent));
  for (std::size_t off = 0; off < total; off += max_payload) {
    std::size_t chunk = std::min(max_payload, total - off);
    bool more = off + chunk < total;
    HeaderBufLease hdr;
    hw::CabAddr mem = payload;
    std::size_t mem_len = chunk;
    if (off == 0) {
      hdr = std::move(proto_header);  // first fragment carries the transport header
      mem_len = chunk - proto_len;
    } else {
      mem += static_cast<hw::CabAddr>(off - proto_len);
    }
    make_header(off, chunk, more).serialize(hdr.ensure().push_front(IpHeader::kSize));
    ++frag_sent_;
    dl_.send(
        PacketType::Ip, dst_node, std::move(hdr), mem, mem_len,
        [remaining, shared_done] {
          if (--*remaining == 0 && *shared_done) (*shared_done)();
        },
        tctx);
  }
}

void Ip::output_msg(const OutputInfo& info, HeaderBufLease proto_header, core::Message data,
                    bool free_when_sent, obs::TraceContext tctx) {
  core::Mailbox& storage = input_;
  if (free_when_sent) {
    output(
        info, std::move(proto_header), data.data, data.len,
        [&storage, data] { storage.end_get(data); }, tctx);
  } else {
    output(info, std::move(proto_header), data.data, data.len, {}, tctx);
  }
}

// --- input ------------------------------------------------------------------------

void Ip::start_of_data(const core::Message& m, std::uint8_t src_node) {
  (void)src_node;
  core::Cpu& cpu = runtime().cpu();
  // §4.1: "IP uses this opportunity to perform a sanity check of the IP
  // header (including computation of the IP header checksum)" while the
  // rest of the packet streams in.
  obs::CostScope scope("ip/input");
  cpu.charge(costs::kIpInputHeader);
  {
    obs::CostScope cksum("ip/checksum");
    cpu.charge(checksum_cost(IpHeader::kSize));
  }
  bool ok = false;
  if (m.len >= IpHeader::kSize) {
    auto hdr_bytes = runtime().board().memory().view(m.data, IpHeader::kSize);
    if (IpHeader::checksum_ok(hdr_bytes)) {
      IpHeader h = IpHeader::parse(hdr_bytes);
      ok = h.total_len == m.len && h.ttl != 0;  // not truncated/padded/expired
    }
  }
  pending_header_ok_[m.data] = ok;
}

void Ip::end_of_data(core::Message m, std::uint8_t src_node) {
  (void)src_node;
  auto it = pending_header_ok_.find(m.data);
  bool ok = it != pending_header_ok_.end() && it->second;
  if (it != pending_header_ok_.end()) pending_header_ok_.erase(it);
  obs::CausalTracer* ct = obs::CausalTracer::active();
  obs::TraceContext rctx = ct != nullptr ? ct->rx_context() : obs::TraceContext{};
  if (!ok) {
    ++dropped_bad_header_;
    if (ct != nullptr && rctx.valid()) {
      ct->annotate(rctx, "drop.ip_header");
      ct->stage(rctx, "loss.wait", "node" + std::to_string(dl_.node_id()));
    }
    release(std::move(m));
    return;
  }
  if (ct != nullptr && rctx.valid()) {
    ct->stage(rctx, "rx.ip", "node" + std::to_string(dl_.node_id()));
  }
  IpHeader h = IpHeader::parse(runtime().board().memory().view(m.data, IpHeader::kSize));
  if (h.more_fragments || h.frag_offset != 0) {
    handle_fragment(std::move(m), h);
    return;
  }
  deliver(std::move(m), h);
}

void Ip::deliver(core::Message m, const IpHeader& hdr) {
  auto it = protocols_.find(hdr.protocol);
  if (it == protocols_.end()) {
    ++dropped_no_protocol_;
    if (icmp_error_ && hdr.src != my_addr_) {
      icmp_error_(/*protocol unreachable*/ 2, std::move(m));
    } else {
      release(std::move(m));
    }
    return;
  }
  ++delivered_;
  NECTAR_TRACE(dl_.runtime().trace_mark("ip.deliver"));
  if (auto* ct = obs::CausalTracer::active()) {
    obs::TraceContext rctx = ct->rx_context();
    if (rctx.valid()) ct->stage(rctx, "mbox.wait", "node" + std::to_string(dl_.node_id()));
  }
  // §4.1: "This transfer uses the mailbox Enqueue operation, so no data is
  // copied." The IP header stays attached; transports strip it themselves.
  input_.enqueue(m, *it->second);
}

void Ip::handle_fragment(core::Message m, const IpHeader& hdr) {
  core::Cpu& cpu = runtime().cpu();
  obs::CostScope scope("ip/reassembly");
  cpu.charge(costs::kIpReassembly);

  ReassemblyKey key{hdr.src, hdr.dst, hdr.id, hdr.protocol};
  Reassembly& r = reassembly_[key];
  if (r.fragments.empty()) {
    r.timer = cpu.set_timer(runtime().engine().now() + kReassemblyTimeout, [this, key] {
      auto it = reassembly_.find(key);
      if (it == reassembly_.end()) return;
      ++reass_timeouts_;
      for (Fragment& f : it->second.fragments) release(std::move(f.msg));
      reassembly_.erase(it);
    });
  }

  std::uint16_t payload_len = static_cast<std::uint16_t>(hdr.total_len - IpHeader::kSize);
  std::uint16_t offset = static_cast<std::uint16_t>(hdr.frag_offset * 8);
  r.fragments.push_back({std::move(m), offset, payload_len});
  if (!hdr.more_fragments) r.total_payload = offset + payload_len;

  if (r.total_payload < 0) return;
  // Complete when every byte of [0, total) is covered.
  std::vector<std::pair<std::uint16_t, std::uint16_t>> ranges;
  ranges.reserve(r.fragments.size());
  for (const Fragment& f : r.fragments) ranges.emplace_back(f.offset, f.len);
  std::sort(ranges.begin(), ranges.end());
  std::uint32_t covered = 0;
  for (auto [off, len] : ranges) {
    if (off > covered) return;  // hole
    covered = std::max(covered, static_cast<std::uint32_t>(off) + len);
  }
  if (covered < static_cast<std::uint32_t>(r.total_payload)) return;

  Reassembly done = std::move(r);
  reassembly_.erase(key);
  cpu.cancel_timer(done.timer);
  finish_reassembly(key, done, hdr);
}

void Ip::finish_reassembly(const ReassemblyKey& key, Reassembly& r, const IpHeader& last_hdr) {
  core::Cpu& cpu = runtime().cpu();
  hw::CabMemory& mem = runtime().board().memory();
  std::size_t total = static_cast<std::size_t>(r.total_payload);

  auto combined = input_.begin_put_try(static_cast<std::uint32_t>(IpHeader::kSize + total));
  if (!combined.has_value()) {
    // No buffer space: drop the whole datagram (it was never published).
    for (Fragment& f : r.fragments) release(std::move(f.msg));
    ++dropped_no_protocol_;
    return;
  }

  // Synthesize the unfragmented header, then copy payloads into place.
  IpHeader h = last_hdr;
  h.more_fragments = false;
  h.frag_offset = 0;
  h.total_len = static_cast<std::uint16_t>(IpHeader::kSize + total);
  std::vector<std::uint8_t> hdr_bytes(IpHeader::kSize);
  h.serialize(hdr_bytes);
  mem.write(combined->data, hdr_bytes);

  for (Fragment& f : r.fragments) {
    obs::CostScope copy("ip/copy");
    cpu.charge(static_cast<sim::SimTime>(f.len) * costs::kCabCopyPerByte);
    auto src = mem.view(f.msg.data + IpHeader::kSize, f.len);
    std::vector<std::uint8_t> tmp(src.begin(), src.end());
    mem.write(combined->data + IpHeader::kSize + f.offset, tmp);
    release(std::move(f.msg));
  }
  ++reassembled_;
  (void)key;
  // The reassembled datagram lives at a fresh address: carry the completing
  // fragment's trace over to it so downstream lookups keep working.
  if (auto* ct = obs::CausalTracer::active()) {
    obs::TraceContext rctx = ct->rx_context();
    if (rctx.valid()) ct->tag(dl_.node_id(), combined->data, combined->len, rctx);
  }
  deliver(*combined, h);
}

}  // namespace nectar::proto
