#include "core/sync.hpp"

#include <stdexcept>

#include "core/cpu.hpp"
#include "obs/profiler.hpp"
#include "sim/costs.hpp"

namespace nectar::core {

namespace {
Cpu& caller() {
  Cpu* c = Cpu::current();
  if (c == nullptr) throw std::logic_error("sync op outside any execution context");
  return *c;
}
}  // namespace

SyncPool::Sync& SyncPool::get(SyncId id) {
  auto it = syncs_.find(id);
  if (it == syncs_.end()) throw std::logic_error(name_ + ": unknown or freed sync");
  return it->second;
}

SyncPool::SyncId SyncPool::alloc() {
  obs::CostScope scope("sync/op");
  caller().charge(sim::costs::kSyncOp);
  SyncId id = next_++;
  syncs_.emplace(id, Sync{});
  ++total_allocs_;
  return id;
}

void SyncPool::write(SyncId id, std::uint32_t value) {
  Cpu& c = caller();
  obs::CostScope scope("sync/op");
  // §3.4: "checking whether the sync has already been canceled and marking
  // the sync as written must be done atomically. On the CAB this is done by
  // masking interrupts."
  c.charge(sim::costs::kSyncOp);
  InterruptGuard guard(c);
  Sync& s = get(id);
  if (s.state == State::Canceled) {
    syncs_.erase(id);  // Write frees a canceled sync
    return;
  }
  if (s.state == State::Written) throw std::logic_error(name_ + ": double write");
  s.state = State::Written;
  s.value = value;
  if (s.reader != nullptr) {
    Thread* t = s.reader;
    s.reader = nullptr;
    c.charge(sim::costs::kThreadWakeup);
    t->cpu().wake(t);
  }
}

std::uint32_t SyncPool::read(SyncId id) {
  Cpu& c = caller();
  if (c.in_interrupt()) throw std::logic_error(name_ + ": blocking read in interrupt context");
  obs::CostScope scope("sync/op");
  c.charge(sim::costs::kSyncOp);
  InterruptGuard guard(c);
  for (;;) {
    Sync& s = get(id);
    if (s.state == State::Written) {
      std::uint32_t v = s.value;
      syncs_.erase(id);  // Read frees the sync
      return v;
    }
    if (s.state == State::Canceled) throw std::logic_error(name_ + ": read of canceled sync");
    if (s.reader != nullptr) throw std::logic_error(name_ + ": second reader on sync");
    s.reader = c.current_thread();
    if (s.reader == nullptr) throw std::logic_error(name_ + ": blocking read outside thread");
    c.block_unmasked();
  }
}

bool SyncPool::read_try(SyncId id, std::uint32_t* out) {
  Cpu& c = caller();
  obs::CostScope scope("sync/op");
  c.charge(sim::costs::kSyncOp);
  Sync& s = get(id);
  if (s.state != State::Written) return false;
  *out = s.value;
  syncs_.erase(id);
  return true;
}

void SyncPool::cancel(SyncId id) {
  Cpu& c = caller();
  obs::CostScope scope("sync/op");
  c.charge(sim::costs::kSyncOp);
  InterruptGuard guard(c);
  Sync& s = get(id);
  if (s.state == State::Written) {
    syncs_.erase(id);  // Cancel frees a written sync
    return;
  }
  s.state = State::Canceled;  // a subsequent Write will free it
}

}  // namespace nectar::core
