#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/json.hpp"

namespace nectar::obs {

// --- Histogram -----------------------------------------------------------------

Histogram::Histogram(std::vector<std::int64_t> bounds) : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::logic_error("Histogram: bucket bounds must be ascending");
  }
  buckets_.assign(bounds_.size() + 1, 0);  // +1: overflow bucket
}

void Histogram::observe(std::int64_t v) {
  std::size_t i = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  ++buckets_[i];
  ++count_;
  sum_ += v;
}

// --- MetricsRegistry -----------------------------------------------------------

namespace {

const char* cell_kind_name(SnapshotEntry::Kind k) {
  switch (k) {
    case SnapshotEntry::Kind::Counter: return "counter";
    case SnapshotEntry::Kind::Gauge: return "gauge";
    case SnapshotEntry::Kind::Histogram: return "histogram";
    case SnapshotEntry::Kind::Probe: return "probe";
  }
  return "?";
}

[[noreturn]] void throw_kind_conflict(const MetricKey& key, SnapshotEntry::Kind want,
                                      SnapshotEntry::Kind have) {
  throw std::logic_error("MetricsRegistry: " + key.str() + " already registered as " +
                         cell_kind_name(have) + ", cannot re-register as " +
                         cell_kind_name(want));
}

}  // namespace

Counter& MetricsRegistry::counter(int node, std::string component, std::string name) {
  std::lock_guard<std::mutex> lk(mutex_);
  MetricKey key{node, std::move(component), std::move(name)};
  auto it = cells_.find(key);
  if (it == cells_.end()) {
    Cell& c = cells_[std::move(key)];
    c.kind = SnapshotEntry::Kind::Counter;
    return c.counter;
  }
  // Same-kind re-access is a lookup (modules share cells deliberately);
  // a kind mismatch is a silent-clobber bug and fails loudly instead.
  if (it->second.kind != SnapshotEntry::Kind::Counter) {
    throw_kind_conflict(key, SnapshotEntry::Kind::Counter, it->second.kind);
  }
  return it->second.counter;
}

Gauge& MetricsRegistry::gauge(int node, std::string component, std::string name) {
  std::lock_guard<std::mutex> lk(mutex_);
  MetricKey key{node, std::move(component), std::move(name)};
  auto it = cells_.find(key);
  if (it == cells_.end()) {
    Cell& c = cells_[std::move(key)];
    c.kind = SnapshotEntry::Kind::Gauge;
    return c.gauge;
  }
  if (it->second.kind != SnapshotEntry::Kind::Gauge) {
    throw_kind_conflict(key, SnapshotEntry::Kind::Gauge, it->second.kind);
  }
  return it->second.gauge;
}

Histogram& MetricsRegistry::histogram(int node, std::string component, std::string name,
                                      std::vector<std::int64_t> bounds) {
  std::lock_guard<std::mutex> lk(mutex_);
  MetricKey key{node, std::move(component), std::move(name)};
  auto it = cells_.find(key);
  if (it == cells_.end()) {
    Cell& c = cells_[std::move(key)];
    c.kind = SnapshotEntry::Kind::Histogram;
    c.histogram = std::make_unique<Histogram>(std::move(bounds));
    return *c.histogram;
  }
  if (it->second.kind != SnapshotEntry::Kind::Histogram) {
    throw_kind_conflict(key, SnapshotEntry::Kind::Histogram, it->second.kind);
  }
  if (it->second.histogram->bounds() != bounds) {
    throw std::logic_error("MetricsRegistry: " + key.str() +
                           " re-registered with different histogram bounds");
  }
  return *it->second.histogram;
}

bool MetricsRegistry::contains(int node, std::string_view component, std::string_view name) const {
  std::lock_guard<std::mutex> lk(mutex_);
  return cells_.count(MetricKey{node, std::string(component), std::string(name)}) > 0;
}

MetricKey MetricsRegistry::unique_key(MetricKey key) const {
  if (cells_.count(key) == 0) return key;
  std::string base = key.name;
  for (int i = 2;; ++i) {
    key.name = base + "#" + std::to_string(i);
    if (cells_.count(key) == 0) return key;
  }
}

MetricKey MetricsRegistry::add_probe(MetricKey key, Probe fn) {
  std::lock_guard<std::mutex> lk(mutex_);
  key = unique_key(std::move(key));
  Cell& c = cells_[key];
  c.kind = SnapshotEntry::Kind::Probe;
  c.probe = std::move(fn);
  return key;
}

Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lk(mutex_);
  std::vector<SnapshotEntry> entries;
  entries.reserve(cells_.size());
  for (const auto& [key, cell] : cells_) {  // std::map: already key-sorted
    SnapshotEntry e;
    e.key = key;
    e.kind = cell.kind;
    switch (cell.kind) {
      case SnapshotEntry::Kind::Counter:
        e.value = static_cast<std::int64_t>(cell.counter.value());
        break;
      case SnapshotEntry::Kind::Gauge:
        e.value = cell.gauge.value();
        break;
      case SnapshotEntry::Kind::Probe:
        e.value = cell.probe ? cell.probe() : 0;
        break;
      case SnapshotEntry::Kind::Histogram:
        e.count = cell.histogram->count();
        e.sum = cell.histogram->sum();
        e.bounds = cell.histogram->bounds();
        e.buckets = cell.histogram->buckets();
        break;
    }
    entries.push_back(std::move(e));
  }
  return Snapshot(std::move(entries));
}

// --- Snapshot -----------------------------------------------------------------

const SnapshotEntry* Snapshot::find(int node, std::string_view component,
                                    std::string_view name) const {
  for (const SnapshotEntry& e : entries_) {
    if (e.key.node == node && e.key.component == component && e.key.name == name) return &e;
  }
  return nullptr;
}

std::int64_t Snapshot::value_of(int node, std::string_view component, std::string_view name,
                                std::int64_t fallback) const {
  const SnapshotEntry* e = find(node, component, name);
  return e == nullptr ? fallback : e->value;
}

Snapshot Snapshot::delta(const Snapshot& base) const {
  std::vector<SnapshotEntry> out;
  for (const SnapshotEntry& e : entries_) {
    const SnapshotEntry* b = base.find(e.key.node, e.key.component, e.key.name);
    SnapshotEntry d = e;
    if (b != nullptr) {
      d.value -= b->value;
      d.count -= b->count;
      d.sum -= b->sum;
      if (b->buckets.size() == d.buckets.size()) {
        for (std::size_t i = 0; i < d.buckets.size(); ++i) d.buckets[i] -= b->buckets[i];
      }
    }
    bool changed = d.value != 0 || d.count != 0 || d.sum != 0;
    if (changed) out.push_back(std::move(d));
  }
  return Snapshot(std::move(out));
}

std::string Snapshot::to_json(int indent) const {
  json::Value doc = json::Value::object();
  doc.set("schema", "nectar-metrics-snapshot");
  doc.set("version", std::int64_t{1});
  json::Value metrics = json::Value::array();
  for (const SnapshotEntry& e : entries_) {
    json::Value m = json::Value::object();
    m.set("node", std::int64_t{e.key.node});
    m.set("component", e.key.component);
    m.set("name", e.key.name);
    switch (e.kind) {
      case SnapshotEntry::Kind::Counter: m.set("kind", "counter"); break;
      case SnapshotEntry::Kind::Gauge: m.set("kind", "gauge"); break;
      case SnapshotEntry::Kind::Probe: m.set("kind", "probe"); break;
      case SnapshotEntry::Kind::Histogram: m.set("kind", "histogram"); break;
    }
    if (e.kind == SnapshotEntry::Kind::Histogram) {
      m.set("count", e.count);
      m.set("sum", e.sum);
      json::Value bounds = json::Value::array();
      for (std::int64_t b : e.bounds) bounds.push(b);
      m.set("bounds", std::move(bounds));
      json::Value buckets = json::Value::array();
      for (std::uint64_t b : e.buckets) buckets.push(b);
      m.set("buckets", std::move(buckets));
    } else {
      m.set("value", e.value);
    }
    metrics.push(std::move(m));
  }
  doc.set("metrics", std::move(metrics));
  return doc.dump(indent);
}

// --- Registration ---------------------------------------------------------------

void Registration::probe(int node, std::string component, std::string name,
                         MetricsRegistry::Probe fn) {
  if (reg_ == nullptr) return;
  keys_.push_back(
      reg_->add_probe(MetricKey{node, std::move(component), std::move(name)}, std::move(fn)));
}

void Registration::release() {
  if (reg_ != nullptr) {
    for (const MetricKey& k : keys_) reg_->remove(k);
  }
  keys_.clear();
  reg_ = nullptr;
}

}  // namespace nectar::obs
