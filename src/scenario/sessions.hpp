#pragma once

// Session workload driver ([sessions] INI section): every node runs a
// SessionManager with `trunks` trunk connections to node (i + stride) % N
// and multiplexes `channels` logical client channels over them — the
// "thousands of endpoints per CAB" shape the session layer exists for
// (docs/SESSIONS.md). One open-loop generator thread per node round-robins
// small stamped messages across its channels; optional churn threads
// close/reopen random channels (exercising id reuse + generation tags) and
// an optional scripted stall freezes the inbound credit of the first wire
// ids on trunk 0 — the no-head-of-line-blocking experiment: victims starve,
// their trunk siblings' tail latency must not move.
//
// Accounting: per-channel compact stats (sent/shed/delivered/latency sum)
// for every channel, full log-bucketed histograms only for the first
// `probe_channels` channel indexes (merged across nodes into
// session.probe<i>.* rows) — 10k-channel nodes stay affordable while the
// channels under test keep exact percentiles. Jain fairness is computed
// over per-channel delivered counts of "clean" channels (opened once, never
// failed, not in the stall set).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/system.hpp"
#include "obs/latency.hpp"
#include "obs/report.hpp"
#include "session/manager.hpp"

namespace nectar::scenario {

struct SessionsSpec {
  bool enabled = false;
  std::int64_t trunks = 4;          ///< trunk connections per node pair
  std::int64_t channels = 1000;     ///< logical channels per node
  std::string trunk_proto = "rmp";  ///< "rmp" | "tcp"
  std::int64_t stride = 1;          ///< node i's channels land on (i + stride) % N
  double rate = 1000.0;             ///< data messages/sec per node (round-robin)
  std::int64_t size = 64;           ///< payload bytes (>= 16 for the stamp)
  sim::SimTime start = 0;           ///< when channel opens begin
  sim::SimTime warmup = sim::msec(50);  ///< opens-to-data gap
  std::int64_t classes = 1;         ///< priority classes; channel c -> class c % classes
  std::int64_t weight_spread = 1;   ///< WDRR weight = 1 + c % weight_spread
  std::int64_t initial_credit = 32;
  std::int64_t credit_refresh = 0;  ///< 0 = initial_credit / 2
  std::int64_t send_window = 32;
  std::int64_t max_batch = 4096;
  std::int64_t max_channels = 60000;  ///< inbound admission cap per trunk
  std::int64_t rmp_queue_cap = 2;
  sim::SimTime aggregation = sim::usec(20);  ///< pumper batching window
  sim::SimTime fail_timeout = sim::msec(25);
  double churn_rate = 0.0;          ///< close+reopen ops/sec per node
  sim::SimTime churn_start = 0;
  sim::SimTime churn_duration = 0;  ///< 0 = until the run ends
  sim::SimTime stall_at = 0;        ///< 0 = no scripted stall
  sim::SimTime stall_duration = sim::msec(20);
  std::int64_t stall_channels = 0;  ///< inbound wire ids [0, n) of trunk 0 freeze
  std::int64_t probe_channels = 0;  ///< channel indexes [0, n) get full histograms

  /// Reject typos and bad combinations at parse time.
  void validate() const;
};

class SessionDriver {
 public:
  SessionDriver(net::Network& net, std::vector<net::NodeStack*> stacks, const SessionsSpec& spec,
                std::uint64_t master_seed);

  SessionDriver(const SessionDriver&) = delete;
  SessionDriver& operator=(const SessionDriver&) = delete;

  const SessionsSpec& spec() const { return spec_; }
  session::SessionManager& manager(int node) {
    return *nodes_[static_cast<std::size_t>(node)]->mgr;
  }

  std::uint64_t data_sent() const;
  std::uint64_t data_delivered() const;
  std::uint64_t data_shed() const;
  std::uint64_t churn_cycles() const;
  double fairness() const;

  /// session.* rows: lifecycle counters summed over nodes, open/data latency
  /// histograms merged, per-probe-channel percentiles, trunk efficiency.
  void report_into(obs::RunReport& rep);

 private:
  static constexpr std::uint32_t kStampBytes = 16;  // [u32 global ch][u32 seq][u64 t_send]

  /// Written from two sides, shard-safely: the owning sender writes
  /// sent/shed/opens/fails, the receiving node writes delivered/lat_* —
  /// distinct fields, distinct writer shards, read only after the run.
  struct ChannelStat {
    std::uint64_t sent = 0;
    std::uint64_t shed = 0;
    std::uint32_t opens = 0;
    std::uint32_t fails = 0;
    std::uint64_t delivered = 0;
    std::uint64_t lat_sum = 0;
    std::uint64_t lat_max = 0;
  };

  struct Channel {
    session::SessionManager::ChannelHandle handle = session::SessionManager::kNoHandle;
    sim::SimTime open_sent = 0;
  };

  struct NodeState {
    std::unique_ptr<session::SessionManager> mgr;
    std::vector<int> out_trunks;  ///< local trunk index per outbound trunk k
    std::vector<int> in_trunks;   ///< local trunk index per inbound trunk k
    std::vector<Channel> chans;   ///< this node's logical channels
    std::vector<std::uint32_t> chan_of_handle;  ///< handle -> channel index
    obs::LatencyHistogram open_lat;   ///< sender side: open -> OPEN_ACK
    obs::LatencyHistogram data_lat;   ///< receiver side: all inbound deliveries
    std::uint64_t opens_initiated = 0;
    std::uint64_t churn_cycles = 0;
  };

  core::CabRuntime& runtime(int node) { return net_.runtime(node); }
  NodeState& ns(int node) { return *nodes_[static_cast<std::size_t>(node)]; }
  int dst_of(int node) const { return (node + static_cast<int>(spec_.stride)) % node_count_; }
  std::uint32_t global_channel(int node, std::uint32_t c) const {
    return static_cast<std::uint32_t>(node) * static_cast<std::uint32_t>(spec_.channels) + c;
  }
  bool stalled_channel(std::int64_t c) const;

  void build_rmp_trunks();
  void build_node_tcp_trunks(int node);
  void install_callbacks(int node);
  void open_all(int node);
  void open_one(int node, std::uint32_t c);
  void generator_loop(int node);
  void churn_loop(int node);
  void stall_loop(int node);

  net::Network& net_;
  std::vector<net::NodeStack*> stacks_;
  SessionsSpec spec_;
  std::uint64_t master_seed_;
  int node_count_ = 0;

  std::vector<std::unique_ptr<NodeState>> nodes_;
  std::vector<ChannelStat> stats_;  ///< global channel id = node * channels + c
  /// Probe histograms, receiver-written: index = node * probe_channels + c.
  std::vector<obs::LatencyHistogram> probes_;
};

}  // namespace nectar::scenario
