#include "hw/vme.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/tracer.hpp"

namespace nectar::hw {

namespace {
bool occupying(obs::Profiler* p) { return p != nullptr && p->enabled(); }
}

sim::SimTime VmeBus::acquire(sim::SimTime duration) {
  sim::SimTime start = std::max(engine_.now(), busy_until_);
  busy_until_ = start + duration;
  return busy_until_;
}

void VmeBus::trace_span(const char* label, sim::SimTime start, sim::SimTime end) const {
  // The bus serializes grants, so [start, end) intervals never overlap and
  // explicit-timestamp begin/end pairs nest trivially on the track.
  if (!obs::tracing(tracer_)) return;
  tracer_->begin_at(trace_track_, label, start);
  tracer_->end_at(trace_track_, label, end);
}

void VmeBus::stall_for(sim::SimTime duration) {
  ++stalls_;
  stall_time_ += duration;
  sim::SimTime end = acquire(duration);
  if (occupying(profiler_)) profiler_->record_occupancy(name_, "stall", duration);
  NECTAR_TRACE(trace_span("vme.stall", end - duration, end));
}

sim::SimTime VmeBus::programmed_access(std::size_t words) {
  words_ += words;
  sim::SimTime duration = static_cast<sim::SimTime>(words) * word_access_;
  sim::SimTime end = acquire(duration);
  if (occupying(profiler_)) profiler_->record_occupancy(name_, "pio", duration);
  NECTAR_TRACE(trace_span("vme.pio", end - duration, end));
  return end;
}

void VmeBus::dma_transfer(std::size_t bytes, std::function<void()> done) {
  ++dma_count_;
  dma_bytes_ += bytes;
  sim::SimTime duration = sim::costs::kVmeDmaSetup +
                          sim::transmit_time(static_cast<std::int64_t>(bytes), dma_rate_);
  sim::SimTime end = acquire(duration);
  if (occupying(profiler_)) profiler_->record_occupancy(name_, "dma", duration);
  NECTAR_TRACE(trace_span("vme.dma", end - duration, end));
  engine_.schedule_at(end, std::move(done));
}

void VmeBus::attach_tracer(obs::Tracer* tracer, int track) {
  tracer_ = tracer;
  trace_track_ = track;
}

void VmeBus::register_metrics(obs::Registration& reg, int node) const {
  reg.probe(node, "vme", "words", [this] { return static_cast<std::int64_t>(words_); });
  reg.probe(node, "vme", "dma_bytes", [this] { return static_cast<std::int64_t>(dma_bytes_); });
  reg.probe(node, "vme", "dma_transfers",
            [this] { return static_cast<std::int64_t>(dma_count_); });
  // stalls()/stall_time() stay accessor-only: adding probes here would
  // perturb the committed metrics snapshots of every bench that never faults.
}

}  // namespace nectar::hw
