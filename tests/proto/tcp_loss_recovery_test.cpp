// Deterministic TCP loss-recovery tests: instead of a random drop rate, the
// scenario fault scheduler arms a scripted drop burst on the client's
// outbound fiber at a chosen simulated time, so exactly the intended data
// segment is lost on every run. One burst mid-stream forces three duplicate
// ACKs and a fast retransmit; one burst under a lone segment (nothing
// following to duplicate-ACK) forces an RTO. Both paths must deliver the
// byte stream intact.

#include <gtest/gtest.h>

#include <string>

#include "net/system.hpp"
#include "scenario/faults.hpp"

namespace nectar::proto {
namespace {

std::string read_bytes(core::CabRuntime& rt, const core::Message& m) {
  std::vector<std::uint8_t> buf(m.len);
  rt.board().memory().read(m.data, buf);
  return {buf.begin(), buf.end()};
}

core::Message stage(core::Mailbox& mb, core::CabRuntime& rt, const std::string& s) {
  core::Message m = mb.begin_put(static_cast<std::uint32_t>(s.size()));
  rt.board().memory().write(m.data, std::span<const std::uint8_t>(
                                        reinterpret_cast<const std::uint8_t*>(s.data()),
                                        s.size()));
  return m;
}

TcpConfig cc_config() {
  TcpConfig cfg;
  cfg.congestion_control = true;  // fast retransmit needs dup-ACK counting
  return cfg;
}

TEST(TcpLossRecoveryTest, ScriptedBurstForcesFastRetransmit) {
  net::NectarSystem sys(2, false, cc_config(), 1500);

  // Drop exactly one frame from the client's fiber mid-transfer. By 20 ms
  // the handshake is long done and the stream is in full flight, so the
  // casualty is a data segment with plenty of successors to dup-ACK it.
  scenario::FaultScheduler faults(sys.net(), 1);
  scenario::FaultSpec burst;
  burst.kind = scenario::FaultKind::LinkDropBurst;
  burst.target = "node0.link";
  burst.at = sim::msec(20);
  burst.count = 1;
  faults.schedule(burst);

  constexpr int kMessages = 200;
  constexpr std::size_t kMsgSize = 1024;
  std::string got;
  sys.runtime(1).fork_app("server", [&] {
    TcpConnection* c = sys.stack(1).tcp.listen(80);
    sys.stack(1).tcp.wait_established(c);
    while (got.size() < kMessages * kMsgSize) {
      core::Message m = c->receive_mailbox().begin_get();
      if (m.len == 0) {
        c->receive_mailbox().end_get(m);
        break;
      }
      got += read_bytes(sys.runtime(1), m);
      c->receive_mailbox().end_get(m);
    }
  });
  TcpConnection* conn = nullptr;
  sys.runtime(0).fork_app("client", [&] {
    sys.runtime(0).cpu().sleep_for(sim::usec(100));
    conn = sys.stack(0).tcp.connect(5000, ip_of_node(1), 80);
    ASSERT_TRUE(sys.stack(0).tcp.wait_established(conn));
    core::Mailbox& tx = sys.runtime(0).create_mailbox("tx");
    for (int i = 0; i < kMessages; ++i) {
      sys.stack(0).tcp.wait_send_window(conn, 64 * 1024);
      sys.stack(0).tcp.send(conn, stage(tx, sys.runtime(0),
                                        std::string(kMsgSize, static_cast<char>('a' + i % 26))));
    }
    sys.stack(0).tcp.wait_drained(conn);
  });
  sys.net().run_until(sim::sec(60));

  // The burst consumed its one frame, recovery was the three-dup-ACK path
  // (no timeout stall), and the stream arrived complete and in order.
  EXPECT_EQ(sys.net().cab(0).out_link().frames_dropped_faulted(), 1u);
  ASSERT_NE(conn, nullptr);
  EXPECT_GE(conn->fast_retransmits(), 1u);
  EXPECT_GE(conn->retransmissions(), 1u);
  ASSERT_EQ(got.size(), kMessages * kMsgSize);
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(got[i * kMsgSize], static_cast<char>('a' + i % 26)) << "message " << i;
  }
}

TEST(TcpLossRecoveryTest, LoneSegmentLossRecoversByRto) {
  net::NectarSystem sys(2, false, cc_config(), 1500);

  // The client sends a single segment at 10 ms with the burst armed just
  // before it: the only copy is lost, nothing follows to generate duplicate
  // ACKs, so only the retransmission timer can save the stream.
  scenario::FaultScheduler faults(sys.net(), 1);
  scenario::FaultSpec burst;
  burst.kind = scenario::FaultKind::LinkDropBurst;
  burst.target = "node0.link";
  burst.at = sim::msec(8);
  burst.count = 1;
  faults.schedule(burst);

  const std::string payload(512, 'x');
  std::string got;
  sys.runtime(1).fork_app("server", [&] {
    TcpConnection* c = sys.stack(1).tcp.listen(80);
    sys.stack(1).tcp.wait_established(c);
    while (got.size() < payload.size()) {
      core::Message m = c->receive_mailbox().begin_get();
      if (m.len == 0) {
        c->receive_mailbox().end_get(m);
        break;
      }
      got += read_bytes(sys.runtime(1), m);
      c->receive_mailbox().end_get(m);
    }
  });
  TcpConnection* conn = nullptr;
  sys.runtime(0).fork_app("client", [&] {
    conn = sys.stack(0).tcp.connect(5000, ip_of_node(1), 80);
    ASSERT_TRUE(sys.stack(0).tcp.wait_established(conn));
    sys.runtime(0).cpu().sleep_until(sim::msec(10));
    core::Mailbox& tx = sys.runtime(0).create_mailbox("tx");
    sys.stack(0).tcp.send(conn, stage(tx, sys.runtime(0), payload));
    sys.stack(0).tcp.wait_drained(conn);
  });
  sys.net().run_until(sim::sec(60));

  EXPECT_EQ(sys.net().cab(0).out_link().frames_dropped_faulted(), 1u);
  ASSERT_NE(conn, nullptr);
  EXPECT_EQ(conn->fast_retransmits(), 0u);
  EXPECT_GE(conn->retransmissions(), 1u);
  EXPECT_EQ(got, payload);
}

}  // namespace
}  // namespace nectar::proto
