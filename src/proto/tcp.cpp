#include "proto/tcp.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <span>

#include "obs/causal.hpp"
#include "obs/profiler.hpp"
#include "proto/checksum.hpp"
#include "sim/costs.hpp"

namespace nectar::proto {

namespace costs = sim::costs;

namespace {
// Sequence-space comparisons (RFC 793 modular arithmetic).
bool seq_lt(std::uint32_t a, std::uint32_t b) { return static_cast<std::int32_t>(a - b) < 0; }
bool seq_le(std::uint32_t a, std::uint32_t b) { return static_cast<std::int32_t>(a - b) <= 0; }
bool seq_gt(std::uint32_t a, std::uint32_t b) { return static_cast<std::int32_t>(a - b) > 0; }

constexpr std::size_t kCombinedHeader = IpHeader::kSize + TcpHeader::kSize;
}  // namespace

Tcp::Tcp(Ip& ip, Config config)
    : ip_(ip),
      config_(config),
      lock_(ip.runtime().cpu()),
      state_cv_(ip.runtime().cpu()),
      input_(ip.runtime().create_mailbox("tcp-input")),
      send_req_(ip.runtime().create_mailbox("tcp-send-request")),
      mss_(ip.mtu() - kCombinedHeader),
      metrics_reg_(ip.runtime().metrics()) {
  int node = ip_.runtime().node_id();
  metrics_reg_.probe(node, "tcp", "segments_sent",
                     [this] { return static_cast<std::int64_t>(segs_sent_); });
  metrics_reg_.probe(node, "tcp", "segments_received",
                     [this] { return static_cast<std::int64_t>(segs_rcvd_); });
  metrics_reg_.probe(node, "tcp", "bad_checksums",
                     [this] { return static_cast<std::int64_t>(bad_checksum_); });
  metrics_reg_.probe(node, "tcp", "resets_sent",
                     [this] { return static_cast<std::int64_t>(rst_sent_); });
  ip_.register_protocol(kProtoTcp, &input_);
  // §4.2: "All TCP input processing is performed by the TCP input thread."
  ip_.runtime().fork_system("tcp-input", [this] { input_loop(); });
  // §4.2: "The TCP send thread on the CAB services this request ..."
  ip_.runtime().fork_system("tcp-send", [this] { send_request_loop(); });
}

// --- connection management -------------------------------------------------------

TcpConnection* Tcp::make_connection(std::uint16_t local_port) {
  auto c = std::make_unique<TcpConnection>();
  c->tcp_ = this;
  c->id_ = next_conn_id_++;
  c->local_port_ = local_port;
  c->rto_ = config_.initial_rto;
  c->receive_ = &runtime().create_mailbox("tcp-rx-" + std::to_string(c->id_));
  TcpConnection* raw = c.get();
  // Window updates: when the user (a CAB thread or, via the shared mapping,
  // a host process) consumes from the receive mailbox, ask the input thread
  // to announce the reopened window. The hook may run in any execution
  // context, so it only posts; the ACK is emitted under the TCP lock.
  core::Cpu* cab_cpu = &runtime().cpu();
  std::uint32_t id = raw->id_;
  raw->receive_->set_consume_hook([this, cab_cpu, id, raw] {
    if (raw->wnd_update_pending_ || raw->state_ == TcpConnection::State::Closed) return;
    // Cheap pre-check (no charge): is there meaningful growth to announce?
    std::size_t queued = raw->receive_->queued_bytes();
    std::size_t wnd = config_.receive_window > queued ? config_.receive_window - queued : 0;
    std::size_t threshold = std::min(mss_, static_cast<std::size_t>(config_.receive_window / 4));
    if (wnd <= raw->last_advertised_wnd_ || wnd - raw->last_advertised_wnd_ < threshold) return;
    raw->wnd_update_pending_ = true;
    cab_cpu->post_interrupt([this, id] { post_timer_marker(id, kWindowUpdate); });
  });
  connections_.emplace(raw->id_, std::move(c));
  return raw;
}

TcpConnection* Tcp::find(std::uint32_t id) {
  auto it = connections_.find(id);
  return it == connections_.end() ? nullptr : it->second.get();
}

TcpConnection* Tcp::lookup(IpAddr raddr, std::uint16_t rport, std::uint16_t lport) {
  TcpConnection* listener = nullptr;
  for (auto& [id, c] : connections_) {
    if (c->state_ == TcpConnection::State::Closed) continue;
    if (c->local_port_ != lport) continue;
    if (c->remote_addr_ == raddr && c->remote_port_ == rport) return c.get();
    if (c->state_ == TcpConnection::State::Listen) listener = c.get();
  }
  return listener;
}

TcpConnection* Tcp::connect(std::uint16_t local_port, IpAddr dst, std::uint16_t dst_port) {
  core::LockGuard g(lock_);
  TcpConnection* c = make_connection(local_port);
  c->remote_addr_ = dst;
  c->remote_port_ = dst_port;
  c->iss_ = next_iss_;
  next_iss_ += 64000;
  c->snd_una_ = c->iss_;
  c->snd_nxt_ = c->iss_ + 1;
  c->snd_end_ = c->iss_ + 1;
  c->state_ = TcpConnection::State::SynSent;
  emit(c, kTcpSyn, c->iss_, 0, 0);
  arm_retransmit(c);
  return c;
}

TcpConnection* Tcp::listen(std::uint16_t port) {
  core::LockGuard g(lock_);
  TcpConnection* c = make_connection(port);
  c->state_ = TcpConnection::State::Listen;
  return c;
}

TcpListener* Tcp::open_listener(std::uint16_t port) {
  core::LockGuard g(lock_);
  auto& slot = listeners_[port];
  if (!slot) slot = std::make_unique<TcpListener>();
  slot->port = port;
  slot->open = true;
  return slot.get();
}

TcpConnection* Tcp::accept(TcpListener* l) {
  core::LockGuard g(lock_);
  while (l->ready.empty() && l->open) state_cv_.wait(lock_);
  if (l->ready.empty()) return nullptr;  // listener closed while waiting
  TcpConnection* c = l->ready.front();
  l->ready.pop_front();
  ++l->accepted;
  return c;
}

void Tcp::close_listener(TcpListener* l) {
  core::LockGuard g(lock_);
  l->open = false;
  state_cv_.broadcast();  // release blocked accept() callers
}

bool Tcp::wait_established(TcpConnection* c) {
  core::LockGuard g(lock_);
  while (c->state_ == TcpConnection::State::SynSent ||
         c->state_ == TcpConnection::State::SynRcvd ||
         c->state_ == TcpConnection::State::Listen) {
    state_cv_.wait(lock_);
  }
  return c->established();
}

void Tcp::wait_drained(TcpConnection* c) {
  core::LockGuard g(lock_);
  while (c->unacked_bytes() > 0 && !c->closed()) {
    state_cv_.wait(lock_);
  }
}

void Tcp::wait_send_window(TcpConnection* c, std::uint32_t max_unacked) {
  core::LockGuard g(lock_);
  while (c->unacked_bytes() >= max_unacked && !c->closed()) {
    state_cv_.wait(lock_);
  }
}

void Tcp::wake_state_waiters(TcpConnection* c) {
  (void)c;
  state_cv_.broadcast();
}

void Tcp::destroy(TcpConnection* c) {
  core::Cpu& cpu = runtime().cpu();
  if (c->retx_timer_set_) {
    cpu.cancel_timer(c->retx_timer_);
    c->retx_timer_set_ = false;
  }
  for (auto& item : c->send_queue_) {
    if (item.free_when_acked) input_.end_get(item.msg);
  }
  c->send_queue_.clear();
  for (auto& [seq, m] : c->out_of_order_) input_.end_get(m);
  c->out_of_order_.clear();
  c->state_ = TcpConnection::State::Closed;
  wake_state_waiters(c);
}

// --- send path -------------------------------------------------------------------

std::uint32_t Tcp::effective_window(TcpConnection* c) const {
  if (!config_.congestion_control) return c->snd_wnd_;
  return std::min(c->snd_wnd_, c->cwnd_);
}

void Tcp::cc_init(TcpConnection* c) {
  c->cwnd_ = static_cast<std::uint32_t>(mss_);
  c->ssthresh_ = 64 * 1024;
  c->dup_acks_ = 0;
}

void Tcp::cc_on_new_ack(TcpConnection* c, std::uint32_t acked_bytes) {
  c->dup_acks_ = 0;
  if (!config_.congestion_control) return;
  if (c->cwnd_ < c->ssthresh_) {
    // Slow start: one MSS per ACK (bounded by what was actually acked).
    c->cwnd_ += std::min<std::uint32_t>(static_cast<std::uint32_t>(mss_), acked_bytes);
  } else {
    // Congestion avoidance: ~one MSS per RTT.
    c->cwnd_ += std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(mss_ * mss_ / std::max<std::uint32_t>(c->cwnd_, 1)));
  }
}

void Tcp::cc_on_loss(TcpConnection* c, bool fast) {
  if (!config_.congestion_control) return;
  std::uint32_t flight = c->snd_nxt_ - c->snd_una_;
  c->ssthresh_ = std::max<std::uint32_t>(flight / 2, 2 * static_cast<std::uint32_t>(mss_));
  c->cwnd_ = fast ? c->ssthresh_ : static_cast<std::uint32_t>(mss_);
}

void Tcp::retransmit_head(TcpConnection* c) {
  for (const auto& item : c->send_queue_) {
    if (seq_le(item.seq_lo, c->snd_una_) && seq_lt(c->snd_una_, item.seq_lo + item.msg.len)) {
      std::uint32_t off = c->snd_una_ - item.seq_lo;
      std::size_t chunk = std::min<std::size_t>(mss_, item.msg.len - off);
      chunk = std::min<std::size_t>(chunk, c->snd_end_ - c->snd_una_);
      ++c->retransmissions_;
      c->rtt_samples_.clear();  // Karn
      if (item.ctx.valid()) {
        if (auto* ct = obs::CausalTracer::active()) {
          ct->annotate(item.ctx, "tcp.retx");
          ct->stage(item.ctx, "tx.tcp", "node" + std::to_string(ip_.runtime().node_id()));
        }
      }
      emit(c, kTcpAck | kTcpPsh, c->snd_una_, item.msg.data + off, chunk, item.ctx);
      return;
    }
  }
}

std::uint16_t Tcp::advertised_window(TcpConnection* c) const {
  std::size_t queued = c->receive_->queued_bytes();
  std::size_t wnd = config_.receive_window > queued ? config_.receive_window - queued : 0;
  return static_cast<std::uint16_t>(std::min<std::size_t>(wnd, 0xFFFF));
}

void Tcp::emit(TcpConnection* c, std::uint8_t flags, std::uint32_t seq, hw::CabAddr payload,
               std::size_t len, obs::TraceContext tctx) {
  core::Cpu& cpu = runtime().cpu();
  obs::CostScope scope("tcp/output");
  cpu.charge(costs::kTcpSegment);

  TcpHeader th;
  th.src_port = c->local_port_;
  th.dst_port = c->remote_port_;
  th.seq = seq;
  th.flags = flags;
  if (flags & kTcpAck) th.ack = c->rcv_nxt_;
  th.window = advertised_window(c);
  c->last_advertised_wnd_ = th.window;
  HeaderBufLease lease = HeaderBufLease::acquire();
  std::span<std::uint8_t> hdr = lease->push_front(TcpHeader::kSize);
  th.serialize(hdr);

  if (config_.software_checksum) {
    obs::CostScope cksum("tcp/checksum");
    // §6.2: "the cost of doing TCP checksums in software" — charged per byte.
    cpu.charge(checksum_cost(TcpHeader::kSize + len + PseudoHeader::kSize));
    PseudoHeader ph{ip_.address(), c->remote_addr_, kProtoTcp,
                    static_cast<std::uint16_t>(TcpHeader::kSize + len)};
    std::array<std::uint8_t, PseudoHeader::kSize> pseudo;
    ph.serialize(pseudo);
    InternetChecksum ck;
    ck.update(pseudo);
    ck.update(hdr);
    if (len > 0) ck.update(runtime().board().memory().view(payload, len));
    put16(hdr, 16, ck.value());
  }

  ++segs_sent_;
  NECTAR_TRACE(runtime().trace_mark("tcp.segment-sent"));
  Ip::OutputInfo info;
  info.dst = c->remote_addr_;
  info.protocol = kProtoTcp;
  ip_.output(info, std::move(lease), payload, len, {}, tctx);
}

void Tcp::send(TcpConnection* c, core::Message data, bool free_when_acked,
               obs::TraceContext tctx) {
  core::LockGuard g(lock_);
  if (tctx.valid()) {
    if (auto* ct = obs::CausalTracer::active()) {
      ct->stage(tctx, "tx.tcp.queue", "node" + std::to_string(ip_.runtime().node_id()));
    }
  }
  c->send_queue_.push_back({data, c->snd_end_, free_when_acked, tctx});
  c->snd_end_ += data.len;
  try_transmit(c);
}

void Tcp::close(TcpConnection* c) {
  core::LockGuard g(lock_);
  switch (c->state_) {
    case TcpConnection::State::Listen:
    case TcpConnection::State::SynSent:
      destroy(c);
      return;
    case TcpConnection::State::SynRcvd:
    case TcpConnection::State::Established:
      c->fin_queued_ = true;
      c->state_ = TcpConnection::State::FinWait1;
      break;
    case TcpConnection::State::CloseWait:
      c->fin_queued_ = true;
      c->state_ = TcpConnection::State::LastAck;
      break;
    default:
      return;  // close is idempotent in the closing states
  }
  try_transmit(c);
}

void Tcp::maybe_send_fin(TcpConnection* c) {
  if (!c->fin_queued_ || c->fin_sent_) return;
  if (c->snd_nxt_ != c->snd_end_) return;  // data still unsent
  emit(c, kTcpFin | kTcpAck, c->snd_nxt_, 0, 0);
  c->fin_sent_ = true;
  ++c->snd_nxt_;  // FIN consumes one sequence number
  arm_retransmit(c);
}

void Tcp::try_transmit(TcpConnection* c) {
  if (c->state_ != TcpConnection::State::Established &&
      c->state_ != TcpConnection::State::CloseWait &&
      c->state_ != TcpConnection::State::FinWait1 &&
      c->state_ != TcpConnection::State::LastAck) {
    return;
  }
  std::uint32_t wnd_limit = c->snd_una_ + effective_window(c);
  while (seq_lt(c->snd_nxt_, c->snd_end_) && seq_lt(c->snd_nxt_, wnd_limit)) {
    std::uint32_t usable = std::min(wnd_limit - c->snd_nxt_, c->snd_end_ - c->snd_nxt_);
    std::size_t chunk = std::min<std::size_t>(usable, mss_);
    // Locate the send-queue item containing snd_nxt (items are contiguous
    // in sequence space); segments do not cross message boundaries so the
    // gather stays a single memory range.
    const TcpConnection::SendItem* item = nullptr;
    for (const auto& it : c->send_queue_) {
      if (seq_le(it.seq_lo, c->snd_nxt_) && seq_lt(c->snd_nxt_, it.seq_lo + it.msg.len)) {
        item = &it;
        break;
      }
    }
    assert(item != nullptr && "send queue out of sync with sequence space");
    std::uint32_t off = c->snd_nxt_ - item->seq_lo;
    chunk = std::min<std::size_t>(chunk, item->msg.len - off);
    c->rtt_samples_.emplace(c->snd_nxt_ + static_cast<std::uint32_t>(chunk),
                            runtime().engine().now());
    if (off == 0 && item->ctx.valid()) {
      // First transmission of a traced message's first segment: close the
      // window-wait ("tx.tcp.queue") stage.
      if (auto* ct = obs::CausalTracer::active()) {
        ct->stage(item->ctx, "tx.tcp", "node" + std::to_string(ip_.runtime().node_id()));
      }
    }
    emit(c, kTcpAck | kTcpPsh, c->snd_nxt_, item->msg.data + off, chunk, item->ctx);
    c->snd_nxt_ += static_cast<std::uint32_t>(chunk);
  }
  if (seq_lt(c->snd_una_, c->snd_nxt_) ||
      (c->snd_wnd_ == 0 && seq_lt(c->snd_nxt_, c->snd_end_))) {
    arm_retransmit(c);
  }
  maybe_send_fin(c);
}

// --- timers ------------------------------------------------------------------------

void Tcp::post_timer_marker(std::uint32_t conn_id, std::uint32_t kind) {
  // Interrupt context: hand the event to the input thread via a marker
  // message so all TCP state is touched under the thread-level lock.
  auto m = input_.begin_put_try(8);
  if (!m.has_value()) {
    // Input mailbox starved: retry shortly rather than losing the timeout.
    runtime().cpu().set_timer(runtime().engine().now() + sim::msec(1),
                              [this, conn_id, kind] { post_timer_marker(conn_id, kind); });
    return;
  }
  hw::CabMemory& mem = runtime().board().memory();
  mem.write32(m->data, conn_id);
  mem.write32(m->data + 4, kind);
  input_.end_put(*m);
}

void Tcp::handle_timer_marker(std::uint32_t conn_id, std::uint32_t kind) {
  core::LockGuard g(lock_);
  if (kind == kTimerRetransmit) {
    on_retransmit_timeout(conn_id);
  } else if (kind == kTimerTimeWait) {
    TcpConnection* c = find(conn_id);
    if (c != nullptr && c->state_ == TcpConnection::State::TimeWait) destroy(c);
  } else if (kind == kWindowUpdate) {
    TcpConnection* c = find(conn_id);
    if (c == nullptr) return;
    c->wnd_update_pending_ = false;
    if (c->state_ != TcpConnection::State::Established &&
        c->state_ != TcpConnection::State::FinWait1 &&
        c->state_ != TcpConnection::State::FinWait2) {
      return;
    }
    // Announce only meaningful growth (silly-window avoidance).
    std::uint16_t now_wnd = advertised_window(c);
    if (now_wnd > c->last_advertised_wnd_ &&
        static_cast<std::size_t>(now_wnd - c->last_advertised_wnd_) >=
            std::min(mss_, static_cast<std::size_t>(config_.receive_window / 4))) {
      emit(c, kTcpAck, c->snd_nxt_, 0, 0);
    }
  }
}

void Tcp::arm_retransmit(TcpConnection* c) {
  if (c->retx_timer_set_) return;
  c->retx_timer_set_ = true;
  std::uint32_t id = c->id_;
  c->retx_timer_ =
      runtime().cpu().set_timer(runtime().engine().now() + c->rto_,
                                [this, id] { post_timer_marker(id, kTimerRetransmit); });
}

void Tcp::cancel_retransmit(TcpConnection* c) {
  if (!c->retx_timer_set_) return;
  runtime().cpu().cancel_timer(c->retx_timer_);
  c->retx_timer_set_ = false;
}

void Tcp::on_retransmit_timeout(std::uint32_t conn_id) {
  // Runs in the input thread with lock_ held (via handle_timer_marker).
  TcpConnection* c = find(conn_id);
  if (c == nullptr || c->closed()) return;
  if (!c->retx_timer_set_) return;  // stale: timer was cancelled after posting
  c->retx_timer_set_ = false;

  // Karn's rule: outstanding RTT samples are invalid after a retransmission.
  c->rtt_samples_.clear();
  c->rto_ = std::min(c->rto_ * 2, config_.max_rto);
  timeline_sample(c, "rto");

  switch (c->state_) {
    case TcpConnection::State::SynSent:
      ++c->retransmissions_;
      emit(c, kTcpSyn, c->iss_, 0, 0);
      arm_retransmit(c);
      return;
    case TcpConnection::State::SynRcvd:
      ++c->retransmissions_;
      emit(c, kTcpSyn | kTcpAck, c->iss_, 0, 0);
      arm_retransmit(c);
      return;
    default:
      break;
  }

  if (seq_lt(c->snd_una_, c->snd_nxt_)) {
    // Resend one segment from the left window edge.
    cc_on_loss(c, /*fast=*/false);
    if (c->fin_sent_ && c->snd_una_ == c->snd_end_) {
      ++c->retransmissions_;
      emit(c, kTcpFin | kTcpAck, c->snd_end_, 0, 0);
    } else {
      retransmit_head(c);
    }
    arm_retransmit(c);
  } else if (c->snd_wnd_ == 0 && seq_lt(c->snd_nxt_, c->snd_end_)) {
    // Zero-window probe: one byte past the window edge.
    for (const auto& item : c->send_queue_) {
      if (seq_le(item.seq_lo, c->snd_nxt_) && seq_lt(c->snd_nxt_, item.seq_lo + item.msg.len)) {
        std::uint32_t off = c->snd_nxt_ - item.seq_lo;
        ++c->retransmissions_;
        c->rtt_samples_.clear();
        emit(c, kTcpAck, c->snd_nxt_, item.msg.data + off, 1, item.ctx);
        c->snd_nxt_ += 1;
        break;
      }
    }
    arm_retransmit(c);
  }
}

void Tcp::rtt_sample(TcpConnection* c, sim::SimTime rtt) {
  if (c->srtt_ == 0) {
    c->srtt_ = rtt;
    c->rttvar_ = rtt / 2;
  } else {
    sim::SimTime err = rtt - c->srtt_;
    c->srtt_ += err / 8;
    c->rttvar_ += (std::abs(err) - c->rttvar_) / 4;
  }
  c->rto_ = std::clamp(c->srtt_ + 4 * c->rttvar_, config_.min_rto, config_.max_rto);
}

// --- input path -----------------------------------------------------------------------

void Tcp::input_loop() {
  hw::CabMemory& mem = runtime().board().memory();
  for (;;) {
    core::Message m = input_.begin_get();
    if (m.len == 8) {
      // Timer marker from interrupt level (see post_timer_marker).
      std::uint32_t conn_id = mem.read32(m.data);
      std::uint32_t kind = mem.read32(m.data + 4);
      input_.end_get(m);
      handle_timer_marker(conn_id, kind);
      continue;
    }
    process_segment(m);
  }
}

void Tcp::process_segment(core::Message m) {
  core::Cpu& cpu = runtime().cpu();
  hw::CabMemory& mem = runtime().board().memory();
  core::LockGuard g(lock_);
  obs::CausalTracer* ct = obs::CausalTracer::active();
  obs::TraceContext rctx = ct != nullptr ? ct->lookup(ip_.runtime().node_id(), m.data)
                                         : obs::TraceContext{};
  if (ct != nullptr && rctx.valid()) {
    ct->stage(rctx, "rx.tcp", "node" + std::to_string(ip_.runtime().node_id()));
  }
  obs::CostScope scope("tcp/input");
  cpu.charge(costs::kTcpSegment);
  ++segs_rcvd_;
  NECTAR_TRACE(runtime().trace_mark("tcp.segment-received"));

  if (m.len < kCombinedHeader) {
    input_.end_get(m);
    return;
  }
  IpHeader iph = IpHeader::parse(mem.view(m.data, IpHeader::kSize));
  TcpHeader th = TcpHeader::parse(mem.view(m.data + IpHeader::kSize, TcpHeader::kSize));
  std::size_t tcp_len = m.len - IpHeader::kSize;
  std::size_t payload_len = tcp_len - TcpHeader::kSize;

  // §4.2: the input thread "checksums the entire packet".
  if (config_.software_checksum && th.checksum != 0) {
    obs::CostScope cksum("tcp/checksum");
    cpu.charge(checksum_cost(tcp_len + PseudoHeader::kSize));
    PseudoHeader ph{iph.src, iph.dst, kProtoTcp, static_cast<std::uint16_t>(tcp_len)};
    std::array<std::uint8_t, PseudoHeader::kSize> pseudo;
    ph.serialize(pseudo);
    InternetChecksum ck;
    ck.update(pseudo);
    ck.update(mem.view(m.data + IpHeader::kSize, tcp_len));
    if (ck.value() != 0) {
      ++bad_checksum_;
      if (ct != nullptr && rctx.valid()) {
        ct->annotate(rctx, "drop.tcp_checksum");
        ct->stage(rctx, "loss.wait", "node" + std::to_string(ip_.runtime().node_id()));
      }
      input_.end_get(m);
      return;
    }
  }

  TcpConnection* c = lookup(iph.src, th.src_port, th.dst_port);
  if (c == nullptr && th.has(kTcpSyn) && !th.has(kTcpAck)) {
    // A persistent listener spawns a fresh connection per SYN.
    auto lit = listeners_.find(th.dst_port);
    if (lit != listeners_.end() && lit->second->open) {
      c = make_connection(th.dst_port);
      c->state_ = TcpConnection::State::Listen;
      c->spawned_by_ = lit->second.get();
    }
  }
  if (c == nullptr) {
    if (!th.has(kTcpRst)) {
      send_rst(iph.src, th.src_port, th.dst_port,
               th.has(kTcpAck) ? th.ack : 0,
               th.seq + static_cast<std::uint32_t>(payload_len) + (th.has(kTcpSyn) ? 1 : 0),
               !th.has(kTcpAck));
    }
    input_.end_get(m);
    return;
  }

  if (th.has(kTcpRst)) {
    c->was_reset_ = true;
    deliver_eof(c);
    destroy(c);
    input_.end_get(m);
    return;
  }

  using St = TcpConnection::State;
  switch (c->state_) {
    case St::Listen:
      if (th.has(kTcpSyn)) {
        c->remote_addr_ = iph.src;
        c->remote_port_ = th.src_port;
        c->irs_ = th.seq;
        c->rcv_nxt_ = th.seq + 1;
        c->snd_wnd_ = th.window;
        c->iss_ = next_iss_;
        next_iss_ += 64000;
        c->snd_una_ = c->iss_;
        c->snd_nxt_ = c->iss_ + 1;
        c->snd_end_ = c->iss_ + 1;
        c->state_ = St::SynRcvd;
        emit(c, kTcpSyn | kTcpAck, c->iss_, 0, 0);
        arm_retransmit(c);
      }
      input_.end_get(m);
      return;

    case St::SynSent:
      if (th.has(kTcpSyn) && th.has(kTcpAck) && th.ack == c->iss_ + 1) {
        c->irs_ = th.seq;
        c->rcv_nxt_ = th.seq + 1;
        c->snd_una_ = th.ack;
        c->snd_wnd_ = th.window;
        cancel_retransmit(c);
        c->rto_ = config_.initial_rto;
        enter_established(c);
        emit(c, kTcpAck, c->snd_nxt_, 0, 0);
      } else if (th.has(kTcpSyn)) {
        // Simultaneous open.
        c->irs_ = th.seq;
        c->rcv_nxt_ = th.seq + 1;
        c->snd_wnd_ = th.window;
        c->state_ = St::SynRcvd;
        emit(c, kTcpSyn | kTcpAck, c->iss_, 0, 0);
      }
      input_.end_get(m);
      return;

    default:
      break;
  }

  // Synchronized states. Handle ACK field first.
  if (th.has(kTcpAck)) handle_ack(c, th);

  if (c->state_ == St::SynRcvd && th.has(kTcpAck) && seq_gt(th.ack, c->iss_)) {
    cancel_retransmit(c);
    c->rto_ = config_.initial_rto;
    enter_established(c);
  }

  // Payload.
  if (payload_len > 0 &&
      (c->state_ == St::Established || c->state_ == St::FinWait1 ||
       c->state_ == St::FinWait2)) {
    core::Message payload = core::Mailbox::adjust_prefix(m, kCombinedHeader);
    deliver_payload(c, payload, th.seq);
    emit(c, kTcpAck, c->snd_nxt_, 0, 0);
  } else if (payload_len > 0) {
    input_.end_get(m);
    emit(c, kTcpAck, c->snd_nxt_, 0, 0);
  } else {
    input_.end_get(m);
  }

  // FIN processing (only once all preceding data has been received).
  if (th.has(kTcpFin) &&
      th.seq + static_cast<std::uint32_t>(payload_len) == c->rcv_nxt_) {
    c->rcv_nxt_ += 1;
    c->remote_closed_ = true;
    deliver_eof(c);
    emit(c, kTcpAck, c->snd_nxt_, 0, 0);
    switch (c->state_) {
      case St::Established:
        c->state_ = St::CloseWait;
        break;
      case St::FinWait1:
        c->state_ = St::Closing;
        break;
      case St::FinWait2:
        enter_time_wait(c);
        break;
      default:
        break;
    }
    wake_state_waiters(c);
  }

  try_transmit(c);
}

void Tcp::handle_ack(TcpConnection* c, const TcpHeader& th) {
  c->snd_wnd_ = th.window;
  if (!seq_gt(th.ack, c->snd_una_)) {
    // Duplicate ACK while data is outstanding: after three, fast-retransmit
    // (extension; active only with congestion control enabled).
    if (config_.congestion_control && th.ack == c->snd_una_ &&
        seq_lt(c->snd_una_, c->snd_nxt_)) {
      if (++c->dup_acks_ == 3) {
        ++c->fast_retx_;
        cc_on_loss(c, /*fast=*/true);
        timeline_sample(c, "fast_retx");
        retransmit_head(c);
      }
    }
    return;
  }
  if (seq_gt(th.ack, c->snd_nxt_)) return;  // acks data we never sent

  std::uint32_t acked_bytes = th.ack - c->snd_una_;
  c->snd_una_ = th.ack;
  cc_on_new_ack(c, acked_bytes);
  timeline_sample(c, "ack");

  // RTT samples (Karn-filtered: cleared on any retransmission).
  for (auto it = c->rtt_samples_.begin(); it != c->rtt_samples_.end();) {
    if (seq_le(it->first, th.ack)) {
      rtt_sample(c, runtime().engine().now() - it->second);
      it = c->rtt_samples_.erase(it);
    } else {
      ++it;
    }
  }

  // Release fully acknowledged send buffers.
  while (!c->send_queue_.empty()) {
    auto& item = c->send_queue_.front();
    if (!seq_le(item.seq_lo + item.msg.len, c->snd_una_)) break;
    if (item.free_when_acked) input_.end_get(item.msg);
    c->send_queue_.pop_front();
  }

  cancel_retransmit(c);
  if (seq_lt(c->snd_una_, c->snd_nxt_)) {
    arm_retransmit(c);
  } else {
    c->rto_ = std::clamp(c->srtt_ + 4 * c->rttvar_, config_.min_rto, config_.max_rto);
  }

  // FIN acknowledged?
  using St = TcpConnection::State;
  if (c->fin_sent_ && th.ack == c->snd_end_ + 1) {
    switch (c->state_) {
      case St::FinWait1:
        c->state_ = St::FinWait2;
        break;
      case St::Closing:
        enter_time_wait(c);
        break;
      case St::LastAck:
        destroy(c);
        break;
      default:
        break;
    }
  }
  wake_state_waiters(c);
}

void Tcp::deliver_payload(TcpConnection* c, core::Message payload, std::uint32_t seq) {
  // Trim anything we already have.
  if (seq_lt(seq, c->rcv_nxt_)) {
    std::uint32_t overlap = c->rcv_nxt_ - seq;
    if (overlap >= payload.len) {
      input_.end_get(payload);  // pure duplicate
      return;
    }
    payload = core::Mailbox::adjust_prefix(payload, overlap);
    seq = c->rcv_nxt_;
  }
  if (seq == c->rcv_nxt_) {
    c->rcv_nxt_ += payload.len;
    if (auto* ct = obs::CausalTracer::active()) {
      obs::TraceContext rctx = ct->lookup(ip_.runtime().node_id(), payload.data);
      if (rctx.valid()) {
        ct->stage(rctx, "mbox.wait", "node" + std::to_string(ip_.runtime().node_id()));
      }
    }
    // §4.2: "TCP simply deletes the headers and transfers the packet to the
    // user's receive mailbox using the Enqueue operation."
    input_.enqueue(payload, *c->receive_);
    drain_out_of_order(c);
    return;
  }
  // Out of order: hold for later (first copy at a given seq wins).
  if (c->out_of_order_.count(seq) == 0) {
    c->out_of_order_.emplace(seq, payload);
  } else {
    input_.end_get(payload);
  }
}

void Tcp::drain_out_of_order(TcpConnection* c) {
  for (;;) {
    auto it = c->out_of_order_.begin();
    if (it == c->out_of_order_.end() || seq_gt(it->first, c->rcv_nxt_)) return;
    std::uint32_t seq = it->first;
    core::Message m = it->second;
    c->out_of_order_.erase(it);
    if (seq_lt(seq, c->rcv_nxt_)) {
      std::uint32_t overlap = c->rcv_nxt_ - seq;
      if (overlap >= m.len) {
        input_.end_get(m);
        continue;
      }
      m = core::Mailbox::adjust_prefix(m, overlap);
    }
    c->rcv_nxt_ += m.len;
    if (auto* ct = obs::CausalTracer::active()) {
      obs::TraceContext rctx = ct->lookup(ip_.runtime().node_id(), m.data);
      if (rctx.valid()) {
        ct->stage(rctx, "mbox.wait", "node" + std::to_string(ip_.runtime().node_id()));
      }
    }
    input_.enqueue(m, *c->receive_);
  }
}

void Tcp::timeline_sample(TcpConnection* c, const char* event) {
  if (!record_timeline_ || c->timeline_.size() >= kTimelineCap) return;
  TcpTimelineSample s;
  s.t = runtime().engine().now();
  s.event = event;
  s.cwnd = c->cwnd_;
  s.ssthresh = c->ssthresh_;
  s.srtt = c->srtt_;
  s.rto = c->rto_;
  s.snd_una = c->snd_una_;
  s.snd_nxt = c->snd_nxt_;
  s.rcv_nxt = c->rcv_nxt_;
  c->timeline_.push_back(s);
}

void Tcp::enter_established(TcpConnection* c) {
  c->state_ = TcpConnection::State::Established;
  cc_init(c);
  timeline_sample(c, "established");
  if (c->spawned_by_ != nullptr) {
    c->spawned_by_->ready.push_back(c);
    c->spawned_by_ = nullptr;
  }
  wake_state_waiters(c);
}

void Tcp::enter_time_wait(TcpConnection* c) {
  c->state_ = TcpConnection::State::TimeWait;
  std::uint32_t id = c->id_;
  c->time_wait_timer_ =
      runtime().cpu().set_timer(runtime().engine().now() + config_.time_wait,
                                [this, id] { post_timer_marker(id, kTimerTimeWait); });
  wake_state_waiters(c);
}

void Tcp::deliver_eof(TcpConnection* c) {
  // End-of-stream marker: a zero-length message in the receive mailbox.
  auto m = c->receive_->begin_put_try(0);
  if (m.has_value()) c->receive_->end_put(*m);
}

void Tcp::send_rst(IpAddr dst, std::uint16_t dst_port, std::uint16_t src_port, std::uint32_t seq,
                   std::uint32_t ack, bool with_ack) {
  core::Cpu& cpu = runtime().cpu();
  obs::CostScope scope("tcp/output");
  cpu.charge(costs::kTcpSegment);
  ++rst_sent_;
  TcpHeader th;
  th.src_port = src_port;
  th.dst_port = dst_port;
  th.seq = seq;
  th.flags = kTcpRst;
  if (with_ack) {
    th.flags |= kTcpAck;
    th.ack = ack;
  }
  HeaderBufLease lease = HeaderBufLease::acquire();
  std::span<std::uint8_t> hdr = lease->push_front(TcpHeader::kSize);
  th.serialize(hdr);
  if (config_.software_checksum) {
    obs::CostScope cksum("tcp/checksum");
    cpu.charge(checksum_cost(TcpHeader::kSize + PseudoHeader::kSize));
    PseudoHeader ph{ip_.address(), dst, kProtoTcp, TcpHeader::kSize};
    std::array<std::uint8_t, PseudoHeader::kSize> pseudo;
    ph.serialize(pseudo);
    InternetChecksum ck;
    ck.update(pseudo);
    ck.update(hdr);
    put16(hdr, 16, ck.value());
  }
  ++segs_sent_;
  Ip::OutputInfo info;
  info.dst = dst;
  info.protocol = kProtoTcp;
  ip_.output(info, std::move(lease), 0, 0);
}

// --- send-request mailbox (§4.2) ----------------------------------------------------------

void Tcp::send_request_loop() {
  hw::CabMemory& mem = runtime().board().memory();
  for (;;) {
    core::Message req = send_req_.begin_get();
    if (req.len < 16) {
      send_req_.end_get(req);
      continue;
    }
    std::uint32_t conn_id = mem.read32(req.data);
    std::uint32_t flags = mem.read32(req.data + 4);
    std::uint32_t ext_addr = mem.read32(req.data + 8);
    std::uint32_t ext_len = mem.read32(req.data + 12);
    TcpConnection* c = find(conn_id);
    if (c == nullptr || c->closed()) {
      send_req_.end_get(req);
      continue;
    }
    if (flags & kSendReqInline) {
      // §4.2: "The data to be sent may be placed in the send-request mailbox
      // following the request" — strip the header and send in place.
      core::Message data = core::Mailbox::adjust_prefix(req, 16);
      send(c, data, /*free_when_acked=*/true);
    } else {
      // "...or it may already exist in some other mailbox, in which case the
      // user includes a pointer to it in the request."
      core::Message data;
      data.data = ext_addr;
      data.len = ext_len;
      data.block = ext_addr;
      data.block_len = ext_len;
      send(c, data, /*free_when_acked=*/false);
      send_req_.end_get(req);
    }
  }
}

}  // namespace nectar::proto
