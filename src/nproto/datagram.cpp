#include "nproto/datagram.hpp"

#include <stdexcept>

#include "obs/causal.hpp"
#include "obs/profiler.hpp"
#include "sim/costs.hpp"

namespace nectar::nproto {

namespace costs = sim::costs;

DatagramProtocol::DatagramProtocol(proto::Datalink& dl)
    : dl_(dl),
      input_(dl.runtime().create_mailbox("datagram-input")),
      metrics_reg_(dl.runtime().metrics()) {
  dl_.register_client(proto::PacketType::NectarDatagram, this);

  int node = dl_.node_id();
  metrics_reg_.probe(node, "datagram", "datagrams_sent",
                     [this] { return static_cast<std::int64_t>(sent_); });
  metrics_reg_.probe(node, "datagram", "datagrams_delivered",
                     [this] { return static_cast<std::int64_t>(delivered_); });
  metrics_reg_.probe(node, "datagram", "dropped_no_mailbox",
                     [this] { return static_cast<std::int64_t>(dropped_no_mailbox_); });
}

proto::HeaderBufLease DatagramProtocol::compose_header(core::MailboxAddr dst, std::size_t len,
                                                       std::uint32_t src_mailbox) {
  obs::CostScope scope("datagram/send");
  runtime().cpu().charge(costs::kNectarProtoSend);
  runtime().trace_mark("datagram.send");

  proto::NectarHeader h;
  h.dst_mailbox = dst.index;
  h.src_mailbox = src_mailbox;
  h.src_node = static_cast<std::uint8_t>(dl_.node_id());
  h.length = static_cast<std::uint16_t>(len);
  proto::HeaderBufLease hdr = proto::HeaderBufLease::acquire();
  h.serialize(hdr->push_front(proto::NectarHeader::kSize));
  ++sent_;
  return hdr;
}

void DatagramProtocol::send_raw(core::MailboxAddr dst, hw::CabAddr payload, std::size_t len,
                                sim::InplaceAction on_sent, std::uint32_t src_mailbox,
                                obs::TraceContext tctx) {
  if (tctx.valid()) {
    if (auto* ct = obs::CausalTracer::active()) {
      ct->stage(tctx, "tx.datagram", "node" + std::to_string(dl_.node_id()));
    }
  }
  proto::HeaderBufLease hdr = compose_header(dst, len, src_mailbox);
  dl_.send(proto::PacketType::NectarDatagram, dst.node, std::move(hdr), payload, len,
           std::move(on_sent), tctx);
}

void DatagramProtocol::send_raw_via(const hw::RouteRef& route, core::MailboxAddr dst,
                                    hw::CabAddr payload, std::size_t len,
                                    sim::InplaceAction on_sent, std::uint32_t src_mailbox) {
  proto::HeaderBufLease hdr = compose_header(dst, len, src_mailbox);
  dl_.send_via(proto::PacketType::NectarDatagram, route, dst.node, std::move(hdr), payload, len,
               std::move(on_sent));
}

void DatagramProtocol::send(core::MailboxAddr dst, core::Message data, bool free_when_sent,
                            std::uint32_t src_mailbox, obs::TraceContext tctx) {
  if (free_when_sent) {
    core::Mailbox& storage = input_;
    send_raw(
        dst, data.data, data.len, [&storage, data] { storage.end_get(data); }, src_mailbox, tctx);
  } else {
    send_raw(dst, data.data, data.len, {}, src_mailbox, tctx);
  }
}

void DatagramProtocol::end_of_data(core::Message m, std::uint8_t src_node) {
  core::Cpu& cpu = runtime().cpu();
  obs::CostScope scope("datagram/recv");
  cpu.charge(costs::kNectarProtoRecv);
  obs::CausalTracer* ct = obs::CausalTracer::active();
  obs::TraceContext rctx = ct != nullptr ? ct->rx_context() : obs::TraceContext{};
  if (ct != nullptr && rctx.valid()) {
    ct->stage(rctx, "rx.datagram", "node" + std::to_string(dl_.node_id()));
  }

  if (m.len < proto::NectarHeader::kSize) {
    input_.end_get(m);
    return;
  }
  proto::NectarHeader h = proto::NectarHeader::parse(
      runtime().board().memory().view(m.data, proto::NectarHeader::kSize));
  if (auto hit = handlers_.find(h.dst_mailbox); hit != handlers_.end()) {
    ++delivered_;
    core::Message payload = core::Mailbox::adjust_prefix(m, proto::NectarHeader::kSize);
    hit->second(payload, Info{src_node, h.src_mailbox});
    input_.end_get(payload);  // handler contract: bytes valid only in-call
    runtime().trace_mark("datagram.deliver");
    return;
  }
  core::Mailbox* dst = runtime().find_mailbox(h.dst_mailbox);
  if (dst == nullptr) {
    ++dropped_no_mailbox_;
    input_.end_get(m);
    return;
  }
  ++delivered_;
  last_sender_[dst] = Info{src_node, h.src_mailbox};
  // Strip the protocol header in place and hand the payload to the target
  // mailbox — the §3.3 zero-copy path.
  core::Message payload = core::Mailbox::adjust_prefix(m, proto::NectarHeader::kSize);
  if (ct != nullptr && rctx.valid()) {
    ct->stage(rctx, "mbox.wait", "node" + std::to_string(dl_.node_id()));
  }
  input_.enqueue(payload, *dst);
  runtime().trace_mark("datagram.deliver");
}

void DatagramProtocol::register_delivery_handler(std::uint32_t mailbox_index,
                                                 DeliveryHandler handler) {
  if (!handler) throw std::logic_error("DatagramProtocol: null delivery handler");
  if (!handlers_.emplace(mailbox_index, std::move(handler)).second) {
    throw std::logic_error("DatagramProtocol: delivery handler for mailbox index " +
                           std::to_string(mailbox_index) + " already registered");
  }
}

void DatagramProtocol::unregister_delivery_handler(std::uint32_t mailbox_index) {
  handlers_.erase(mailbox_index);
}

DatagramProtocol::Info DatagramProtocol::last_sender(const core::Mailbox& mb) const {
  auto it = last_sender_.find(&mb);
  return it == last_sender_.end() ? Info{} : it->second;
}

}  // namespace nectar::nproto
