#pragma once

#include <cstdint>
#include <map>

#include "proto/ip.hpp"

namespace nectar::proto {

class Icmp;

/// UDP on the CAB (paper §4.1), with its own server thread: the thread
/// blocks on the UDP input mailbox, verifies the checksum, and hands the
/// datagram — headers still attached, zero-copy — to the mailbox bound to
/// the destination port.
class Udp {
 public:
  explicit Udp(Ip& ip, bool checksum_enabled = true);

  Udp(const Udp&) = delete;
  Udp& operator=(const Udp&) = delete;

  /// Deliver datagrams addressed to `port` into `deliver`. Messages arrive
  /// with IP+UDP headers attached; use payload_of() / info_of() to access.
  void bind(std::uint16_t port, core::Mailbox* deliver);
  void unbind(std::uint16_t port);

  /// Send `data` (a message whose bytes are the UDP payload) to dst:port.
  /// The data area is freed once the packet is on the wire when
  /// `free_when_sent`. `tctx`, when valid, attributes the datagram to that
  /// causal trace.
  void send(std::uint16_t src_port, IpAddr dst, std::uint16_t dst_port, core::Message data,
            bool free_when_sent = true, obs::TraceContext tctx = {});

  /// When set, datagrams to unbound ports are answered with an ICMP port
  /// unreachable (type 3 code 3) instead of being dropped silently.
  void set_icmp(Icmp* icmp) { icmp_ = icmp; }

  /// Parsed addressing info of a delivered datagram.
  struct DatagramInfo {
    IpAddr src_addr = 0;
    IpAddr dst_addr = 0;
    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
    std::uint32_t payload_len = 0;
  };
  DatagramInfo info_of(const core::Message& m) const;
  /// The message adjusted (zero-copy) to expose only the UDP payload.
  static core::Message payload_of(core::Message m);

  core::Mailbox& input_mailbox() { return input_; }
  bool checksum_enabled() const { return checksum_enabled_; }

  std::uint64_t datagrams_sent() const { return sent_; }
  std::uint64_t datagrams_delivered() const { return delivered_; }
  std::uint64_t dropped_no_port() const { return dropped_no_port_; }
  std::uint64_t dropped_bad_checksum() const { return dropped_bad_checksum_; }

  static constexpr std::size_t kHeaderSpace = IpHeader::kSize + UdpHeader::kSize;

 private:
  void server_loop();

  Ip& ip_;
  core::Mailbox& input_;
  Icmp* icmp_ = nullptr;
  bool checksum_enabled_;
  std::map<std::uint16_t, core::Mailbox*> ports_;

  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_no_port_ = 0;
  std::uint64_t dropped_bad_checksum_ = 0;
};

}  // namespace nectar::proto
