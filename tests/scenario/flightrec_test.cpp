// Flight-recorder wiring through the scenario engine: [capture] and
// [profile] INI sections, artifact production from a config alone, profile
// determinism, and the per-flow -> global latency aggregation the report
// performs via LatencyHistogram::merge.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "scenario/engine.hpp"

namespace nectar::scenario {
namespace {

struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>());
}

TEST(FlightRecorderTest, ParsesCaptureAndProfileSections) {
  ScenarioSpec spec = ScenarioSpec::from_config(Config::parse_string(R"(
[scenario]
name = rec

[topology]
nodes = 3

[capture]
element = node0.link
file = a.pcap

[capture]
element = node2.link
file = b.pcap
format = datalink

[profile]
folded = prof.folded
timeline = tl.json
)"));
  ASSERT_EQ(spec.captures.size(), 2u);
  EXPECT_EQ(spec.captures[0].element, "node0.link");
  EXPECT_EQ(spec.captures[0].file, "a.pcap");
  EXPECT_EQ(spec.captures[0].format, "raw_ip");  // the default
  EXPECT_EQ(spec.captures[1].format, "datalink");
  EXPECT_TRUE(spec.profile.enabled());
  EXPECT_EQ(spec.profile.folded, "prof.folded");
  EXPECT_EQ(spec.profile.timeline, "tl.json");
}

TEST(FlightRecorderTest, RejectsMalformedCaptureAndProfile) {
  // Unknown keys: closed vocabulary, same as every other section.
  EXPECT_THROW(ScenarioSpec::from_config(
                   Config::parse_string("[capture]\nelement = node0.link\npath = x.pcap\n")),
               std::runtime_error);
  EXPECT_THROW(ScenarioSpec::from_config(Config::parse_string("[profile]\nfold = x\n")),
               std::runtime_error);
  // Required keys and the format vocabulary are checked at parse time.
  EXPECT_THROW(ScenarioSpec::from_config(Config::parse_string("[capture]\nfile = x.pcap\n")),
               std::runtime_error);
  EXPECT_THROW(ScenarioSpec::from_config(Config::parse_string("[capture]\nelement = node0.link\n")),
               std::runtime_error);
  EXPECT_THROW(ScenarioSpec::from_config(Config::parse_string(
                   "[capture]\nelement = node0.link\nfile = x.pcap\nformat = pcapng\n")),
               std::invalid_argument);
  // Element names resolve against the topology when the scenario is built.
  ScenarioSpec bad = ScenarioSpec::from_config(Config::parse_string(R"(
[topology]
nodes = 2

[capture]
element = node7.link
file = x.pcap
)"));
  EXPECT_THROW(Scenario sc(std::move(bad)), std::invalid_argument);
  ScenarioSpec junk = ScenarioSpec::from_config(Config::parse_string(R"(
[topology]
nodes = 2

[capture]
element = hub0.port3
file = x.pcap
)"));
  EXPECT_THROW(Scenario sc(std::move(junk)), std::invalid_argument);
}

/// A small mixed scenario with every recorder on: TCP (for connection
/// timelines), RMP (for retransmit events under a lossy link), a pcap tap.
ScenarioSpec recorded_spec(const std::string& pcap, const std::string& folded,
                           const std::string& timeline, std::uint64_t seed) {
  ScenarioSpec spec = ScenarioSpec::from_config(Config::parse_string(R"(
[scenario]
name = flightrec
duration = 200ms

[topology]
kind = star
nodes = 4

[workload]
name = bulk
proto = tcp
mode = closed
users = 1
size = 2048

[workload]
name = rmp
proto = rmp
mode = closed
users = 1
think = 2ms
size = 256
stride = 2

[fault]
kind = link_drop
target = node1.link
at = 60ms
duration = 60ms
rate = 0.4
)"));
  spec.seed = seed;
  spec.captures.push_back({"node0.link", pcap, "raw_ip"});
  spec.profile.folded = folded;
  spec.profile.timeline = timeline;
  return spec;
}

TEST(FlightRecorderTest, ScenarioProducesAllThreeArtifacts) {
  TempFile pcap("flightrec.pcap");
  TempFile folded("flightrec.folded");
  TempFile timeline("flightrec_tl.json");
  Scenario sc(recorded_spec(pcap.path, folded.path, timeline.path, 5));
  sc.run();

  // pcap: well-formed header, and the TCP bulk flow crossed node0's link.
  std::string cap = slurp(pcap.path);
  ASSERT_GT(cap.size(), 24u);
  EXPECT_EQ(static_cast<unsigned char>(cap[0]), 0x4D);  // ns magic, little-endian
  ASSERT_EQ(sc.captures().size(), 1u);
  EXPECT_GT(sc.captures()[0]->packets_written(), 0u);

  // folded stacks: non-empty, every line "key ns".
  std::string prof = slurp(folded.path);
  ASSERT_FALSE(prof.empty());
  EXPECT_NE(prof.find("tcp/"), std::string::npos) << prof;
  EXPECT_NE(prof.find(";"), std::string::npos);

  // timeline JSON: parses, has tcp samples (cwnd trajectory) and, with the
  // lossy link, rmp retransmit events.
  obs::json::Value tl = obs::json::Value::parse(slurp(timeline.path));
  ASSERT_TRUE(tl.has("tcp"));
  ASSERT_TRUE(tl.has("rmp"));
  EXPECT_GT(tl.find("tcp")->items().size(), 0u);
  const auto& first = tl.find("tcp")->items().front();
  ASSERT_TRUE(first.has("samples"));
  EXPECT_GT(first.find("samples")->items().size(), 0u);
  EXPECT_TRUE(first.find("samples")->items().front().has("cwnd"));

  // ...and the report carries the profile summary + embedded timelines.
  obs::RunReport rep = sc.report();
  std::string json = rep.to_json_string();
  EXPECT_NE(json.find("\"profile\""), std::string::npos);
  EXPECT_NE(json.find("sim_overhead_ns"), std::string::npos);
  EXPECT_NE(json.find("\"timelines\""), std::string::npos);
}

TEST(FlightRecorderTest, FoldedProfileIsDeterministic) {
  auto run = [](const char* tag) {
    std::string pcap = std::string("det_") + tag + ".pcap";
    std::string folded = std::string("det_") + tag + ".folded";
    TempFile p(pcap), f(folded);
    Scenario sc(recorded_spec(p.path, f.path, "", 9));
    sc.run();
    return slurp(f.path);
  };
  std::string a = run("a");
  std::string b = run("b");
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "--profile output must be byte-identical for the same (spec, seed)";
}

TEST(FlightRecorderTest, PerFlowHistogramsMergeIntoGlobalPercentiles) {
  TempFile pcap("merge.pcap");
  Scenario sc(recorded_spec(pcap.path, "", "", 13));
  sc.run();

  std::uint64_t flow_total = 0, workload_total = 0;
  for (const auto& w : sc.workloads()) {
    std::uint64_t per_flow = 0;
    for (const FlowStats& f : w->flows()) per_flow += f.latency.count();
    obs::LatencyHistogram merged = w->latency();
    EXPECT_EQ(per_flow, merged.count()) << w->spec().name;
    EXPECT_EQ(merged.count(), w->delivered()) << w->spec().name;
    flow_total += per_flow;
    workload_total += merged.count();
  }
  EXPECT_GT(flow_total, 0u);

  // The report's global percentiles come from merging the same histograms:
  // its count row equals the per-flow sum ("results" is an array of
  // {name, value, unit} rows).
  obs::RunReport rep = sc.report();
  obs::json::Value doc = obs::json::Value::parse(rep.to_json_string());
  const obs::json::Value* results = doc.find("results");
  ASSERT_NE(results, nullptr);
  bool found = false;
  for (const obs::json::Value& row : results->items()) {
    if (row.find("name")->as_string() != "global.latency.count") continue;
    found = true;
    EXPECT_EQ(static_cast<std::uint64_t>(row.find("value")->as_double()), flow_total);
  }
  EXPECT_TRUE(found) << "report is missing the global.latency.count row";
}

}  // namespace
}  // namespace nectar::scenario
