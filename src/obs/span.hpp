#pragma once

// Causal-trace primitives (Dapper-style, one trace per sampled message).
//
// A TraceContext is the compact identity a traced message carries end to
// end: the trace id, the span id of the stage that forwarded it (its causal
// parent), and a hop count the switch fabric increments. On the wire it is
// a 16-byte stamp prepended into the HeaderBuf headroom between the
// datalink header and the protocol headers (see Datalink::send_via), so it
// rides the existing frame allocation-free; in flight it is mirrored on
// hw::Frame so switch-level elements (links, HUBs, FIFOs) can attribute
// time without parsing payload bytes.

#include <cstdint>
#include <span>
#include <string>

#include "sim/time.hpp"

namespace nectar::obs {

struct TraceContext {
  std::uint64_t trace_id = 0;  ///< 0 = not traced
  std::uint32_t parent_span = 0;
  std::uint8_t hop = 0;

  bool valid() const { return trace_id != 0; }
};

/// Wire stamp: [u16 magic][u8 hop][u8 zero][u32 parent_span][u64 trace_id],
/// network byte order.
constexpr std::size_t kTraceStampBytes = 16;
constexpr std::uint16_t kTraceStampMagic = 0x7E5Bu;

void encode_stamp(std::span<std::uint8_t> out, const TraceContext& c);
/// Returns false (and leaves `c` untouched) when `in` is too short or the
/// magic does not match.
bool decode_stamp(std::span<const std::uint8_t> in, TraceContext& c);

/// One stage of a message's journey. Stages are produced by the cut-point
/// model (CausalTracer::stage): each call closes the trace's open stage at
/// the current sim time and opens the next, so consecutive stages tile the
/// trace's lifetime exactly — sum of durations == end-to-end latency by
/// construction, which CriticalPathAnalyzer::verify re-checks.
struct StageRecord {
  std::string label;   ///< stage entered ("hub.queue", "link.tx", "rx.udp", ...)
  std::string where;   ///< element ("node3", "hub0.port6", link name); may be empty
  sim::SimTime start = 0;
  sim::SimTime end = 0;
  std::uint32_t span_id = 0;
  std::uint8_t hop = 0;

  sim::SimTime duration() const { return end - start; }
};

}  // namespace nectar::obs
