#include "nectarine/nectarine.hpp"

#include <stdexcept>

namespace nectar::nectarine {

namespace costs = sim::costs;

// --- CabServices -------------------------------------------------------------

CabServices::CabServices(core::CabRuntime& rt, nproto::ReqResp& reqresp)
    : rt_(rt),
      reqresp_(reqresp),
      service_(rt.create_mailbox("nectarine-svc")),
      host_call_(rt.create_mailbox("nectarine-host-call")) {
  install_rpc_handlers();
  rt_.fork_system("nectarine-svc", [this] { service_loop(); });
  rt_.fork_system("nectarine-host-call", [this] { host_call_loop(); });
}

void CabServices::host_call_loop() {
  hw::CabMemory& mem = rt_.board().memory();
  for (;;) {
    core::Message req = host_call_.begin_get();
    // Layout: [u32 sync][u32 dst node][u32 dst service index][request bytes].
    if (req.len < 12) {
      host_call_.end_get(req);
      continue;
    }
    std::uint32_t sync = mem.read32(req.data);
    std::uint32_t node = mem.read32(req.data + 4);
    std::uint32_t index = mem.read32(req.data + 8);
    core::Message payload = core::Mailbox::adjust_prefix(req, 12);
    // Sync result: 0 = no response (retries exhausted), 1 = service said
    // "ok", 2 = any other response (the call completed; the host inspects
    // details through its own reply channel when it needs them).
    std::uint32_t result = 0;
    try {
      core::Message rsp = reqresp_.call({static_cast<std::int32_t>(node), index}, payload);
      result = 2;
      if (rsp.len == 2) {
        std::vector<std::uint8_t> st(2);
        mem.read(rsp.data, st);
        if (st[0] == 'o' && st[1] == 'k') result = 1;
      }
      host_call_.end_get(rsp);
    } catch (const std::runtime_error&) {
      result = 0;
    }
    rt_.host_syncs().write(sync, result);
  }
}

void CabServices::register_task(const std::string& name, std::function<void(std::uint32_t)> body) {
  tasks_[name] = std::move(body);
}

void CabServices::install_rpc_handlers() {
  core::HostSignaling& sig = rt_.signals();
  auto reply = [this](std::uint32_t aux, std::uint32_t value) {
    core::SyncPool::SyncId sync = aux & 0xFFFF;
    rt_.host_syncs().write(sync, value);
  };

  sig.register_opcode(kOpBeginPut, [this, reply](core::SignalElement e) {
    ++rpc_ops_;
    std::uint32_t index = e.param >> 16;
    std::uint32_t size = e.param & 0xFFFF;
    core::Mailbox* mb = rt_.find_mailbox(index);
    if (mb == nullptr) {
      reply(e.aux, 0);
      return;
    }
    auto m = mb->begin_put_try(size);
    if (!m.has_value()) {
      reply(e.aux, 0);
      return;
    }
    host_messages_[m->data] = *m;
    reply(e.aux, m->data);
  });

  sig.register_opcode(kOpEndPut, [this, reply](core::SignalElement e) {
    ++rpc_ops_;
    std::uint32_t index = e.aux >> 16;
    auto it = host_messages_.find(e.param);
    core::Mailbox* mb = rt_.find_mailbox(index);
    if (it == host_messages_.end() || mb == nullptr) {
      reply(e.aux, 0);
      return;
    }
    core::Message m = it->second;
    host_messages_.erase(it);
    mb->end_put(m);
    reply(e.aux, 1);
  });

  sig.register_opcode(kOpBeginGet, [this, reply](core::SignalElement e) {
    ++rpc_ops_;
    core::Mailbox* mb = rt_.find_mailbox(e.param);
    if (mb == nullptr) {
      reply(e.aux, 0);
      return;
    }
    auto m = mb->begin_get_try();
    if (!m.has_value()) {
      reply(e.aux, 0);  // empty: the host retries
      return;
    }
    host_messages_[m->data] = *m;
    reply(e.aux, m->data);
  });

  sig.register_opcode(kOpEndGet, [this, reply](core::SignalElement e) {
    ++rpc_ops_;
    std::uint32_t index = e.aux >> 16;
    auto it = host_messages_.find(e.param);
    core::Mailbox* mb = rt_.find_mailbox(index);
    if (it == host_messages_.end() || mb == nullptr) {
      reply(e.aux, 0);
      return;
    }
    core::Message m = it->second;
    host_messages_.erase(it);
    mb->end_get(m);
    reply(e.aux, 1);
  });

  sig.register_opcode(kOpMsgLen, [this, reply](core::SignalElement e) {
    ++rpc_ops_;
    auto it = host_messages_.find(e.param);
    reply(e.aux, it == host_messages_.end() ? 0 : it->second.len);
  });
}

void CabServices::service_loop() {
  hw::CabMemory& mem = rt_.board().memory();
  for (;;) {
    core::Message req = service_.begin_get();
    auto info = nproto::ReqResp::parse_request(rt_, req);
    core::Message payload = nproto::ReqResp::payload_of(req);

    // Payload: [u32 kind][u32 arg][task name bytes].
    std::string status = "err";
    if (payload.len >= 8) {
      std::uint32_t kind = mem.read32(payload.data);
      std::uint32_t arg = mem.read32(payload.data + 4);
      std::vector<std::uint8_t> name_bytes(payload.len - 8);
      mem.read(payload.data + 8, name_bytes);
      std::string name(name_bytes.begin(), name_bytes.end());
      if (kind == kStartTask) {
        auto it = tasks_.find(name);
        if (it != tasks_.end()) {
          ++tasks_started_;
          auto body = it->second;
          rt_.fork_app("task:" + name, [body, arg] { body(arg); });
          status = "ok";
        }
      }
    }
    service_.end_get(payload);

    core::Message rsp = service_.begin_put(static_cast<std::uint32_t>(status.size()));
    mem.write(rsp.data, std::span<const std::uint8_t>(
                            reinterpret_cast<const std::uint8_t*>(status.data()), status.size()));
    reqresp_.respond(info, rsp);
  }
}

// --- HostNectarine -----------------------------------------------------------------

HostNectarine::HostNectarine(host::CabDriver& driver) : driver_(driver) {}

HostNectarine::HostMailbox HostNectarine::create_mailbox(const std::string& name) {
  return attach(cab().create_mailbox(name));
}

HostNectarine::HostMailbox HostNectarine::attach(core::Mailbox& mb) {
  HostMailbox h;
  h.mb = &mb;
  h.cond = cab().signals().alloc_condition();
  core::HostSignaling* sig = &cab().signals();
  auto cond = h.cond;
  mb.set_notify_hook([sig, cond] { sig->signal(cond); });
  return h;
}

core::Message HostNectarine::begin_put(HostMailbox& h, std::uint32_t size) {
  core::Cpu& cpu = driver_.host().cpu();
  cpu.charge(costs::kHostMailboxOp);
  // Manipulating the writer-side descriptors in CAB memory: a handful of
  // uncached VME word accesses (§6.1 explains why this dominates).
  cpu.charge_until(cab().board().vme()->programmed_access(3));
  return h.mb->begin_put(size);
}

void HostNectarine::end_put(HostMailbox& h, core::Message m) {
  core::Cpu& cpu = driver_.host().cpu();
  cpu.charge(costs::kHostMailboxOp);
  cpu.charge_until(cab().board().vme()->programmed_access(2));
  h.mb->end_put(m);
}

core::Message HostNectarine::begin_get_poll(HostMailbox& h) {
  core::Cpu& cpu = driver_.host().cpu();
  for (;;) {
    std::uint32_t seen = driver_.poll(h.cond);
    cpu.charge_until(cab().board().vme()->programmed_access(2));
    auto m = h.mb->begin_get_try();
    if (m.has_value()) return *m;
    h.last_poll = driver_.wait_poll(h.cond, seen);
  }
}

core::Message HostNectarine::begin_get_block(HostMailbox& h) {
  core::Cpu& cpu = driver_.host().cpu();
  for (;;) {
    std::uint32_t seen = driver_.poll(h.cond);
    cpu.charge_until(cab().board().vme()->programmed_access(2));
    auto m = h.mb->begin_get_try();
    if (m.has_value()) return *m;
    h.last_poll = driver_.wait_blocking(h.cond, seen);
  }
}

void HostNectarine::end_get(HostMailbox& h, core::Message m) {
  core::Cpu& cpu = driver_.host().cpu();
  cpu.charge(costs::kHostMailboxOp);
  cpu.charge_until(cab().board().vme()->programmed_access(2));
  h.mb->end_get(m);
}

// --- RPC-based variants ---------------------------------------------------------------

core::Message HostNectarine::begin_put_rpc(HostMailbox& h, std::uint32_t size) {
  std::uint32_t index = h.mb->address().index;
  for (;;) {
    std::uint32_t addr = driver_.call_cab(kOpBeginPut, (index << 16) | size, 0);
    if (addr != 0) {
      core::Message m;
      m.data = addr;
      m.len = size;
      m.block = addr;
      m.block_len = size;
      return m;
    }
    driver_.host().cpu().sleep_for(sim::usec(50));  // mailbox out of space
  }
}

void HostNectarine::end_put_rpc(HostMailbox& h, core::Message m) {
  driver_.call_cab(kOpEndPut, m.data, h.mb->address().index);
}

core::Message HostNectarine::begin_get_rpc(HostMailbox& h) {
  for (;;) {
    std::uint32_t addr = driver_.call_cab(kOpBeginGet, h.mb->address().index, 0);
    if (addr != 0) {
      std::uint32_t len = driver_.call_cab(kOpMsgLen, addr, 0);
      core::Message m;
      m.data = addr;
      m.len = len;
      m.block = addr;
      m.block_len = len;
      return m;
    }
    h.last_poll = driver_.wait_poll(h.cond, h.last_poll);
  }
}

void HostNectarine::end_get_rpc(HostMailbox& h, core::Message m) {
  driver_.call_cab(kOpEndGet, m.data, h.mb->address().index);
}

// --- data access -------------------------------------------------------------------------

void HostNectarine::write_message(const core::Message& m, std::span<const std::uint8_t> data) {
  if (data.size() > m.len) throw std::invalid_argument("write_message: larger than message");
  driver_.copy_to_cab(data, m.data);
}

void HostNectarine::read_message(const core::Message& m, std::span<std::uint8_t> out) {
  if (out.size() > m.len) throw std::invalid_argument("read_message: larger than message");
  driver_.copy_from_cab(m.data, out);
}

// --- remote tasks -----------------------------------------------------------------------------

std::uint32_t HostNectarine::host_call(CabServices& local, core::MailboxAddr remote_service,
                                       std::span<const std::uint8_t> request) {
  core::Cpu& cpu = driver_.host().cpu();
  core::SyncPool::SyncId sync = cab().host_syncs().alloc();

  // Build the request in the host-call mailbox through the shared mapping.
  HostMailbox call{&local.host_call_mailbox(), 0, 0};
  core::Message req = begin_put(call, static_cast<std::uint32_t>(12 + request.size()));
  std::vector<std::uint8_t> buf(12);
  proto::put32n(buf, 0, sync);
  proto::put32n(buf, 4, static_cast<std::uint32_t>(remote_service.node));
  proto::put32n(buf, 8, remote_service.index);
  write_message(req, buf);
  driver_.copy_to_cab(request, req.data + 12);
  end_put(call, req);

  // Wait for the CAB to complete the remote call (sync polled over VME).
  std::uint32_t result = 0;
  for (;;) {
    cpu.charge_until(cab().board().vme()->programmed_access(1));
    if (cab().host_syncs().read_try(sync, &result)) break;
    cpu.charge(costs::kHostPollLoop);
  }
  return result;
}

bool HostNectarine::start_remote_task(CabServices& local, core::MailboxAddr remote_service,
                                      const std::string& task, std::uint32_t arg) {
  std::vector<std::uint8_t> payload(8 + task.size());
  proto::put32n(payload, 0, CabServices::kStartTask);
  proto::put32n(payload, 4, arg);
  std::copy(task.begin(), task.end(), payload.begin() + 8);
  return host_call(local, remote_service, payload) == 1;
}

}  // namespace nectar::nectarine
