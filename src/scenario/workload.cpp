#include "scenario/workload.hpp"

#include <cmath>
#include <span>
#include <stdexcept>

#include "proto/headers.hpp"

namespace nectar::scenario {

namespace {

void pack32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

void pack64(std::uint8_t* p, std::uint64_t v) {
  pack32(p, static_cast<std::uint32_t>(v));
  pack32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t unpack32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t unpack64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(unpack32(p)) |
         (static_cast<std::uint64_t>(unpack32(p + 4)) << 32);
}

}  // namespace

Proto WorkloadSpec::parse_proto(const std::string& name) {
  if (name == "udp") return Proto::Udp;
  if (name == "tcp") return Proto::Tcp;
  if (name == "datagram") return Proto::Datagram;
  if (name == "rmp") return Proto::Rmp;
  if (name == "reqresp") return Proto::ReqResp;
  throw std::invalid_argument("workload: unknown proto '" + name +
                              "' (want udp | tcp | datagram | rmp | reqresp)");
}

Mode WorkloadSpec::parse_mode(const std::string& name) {
  if (name == "open") return Mode::Open;
  if (name == "closed") return Mode::Closed;
  throw std::invalid_argument("workload: unknown mode '" + name + "' (want open | closed)");
}

const char* WorkloadSpec::proto_name(Proto p) {
  switch (p) {
    case Proto::Udp: return "udp";
    case Proto::Tcp: return "tcp";
    case Proto::Datagram: return "datagram";
    case Proto::Rmp: return "rmp";
    case Proto::ReqResp: return "reqresp";
  }
  return "?";
}

Workload::Workload(net::Network& net, std::vector<net::NodeStack*> stacks, WorkloadSpec spec,
                   std::uint64_t master_seed)
    : net_(net), stacks_(std::move(stacks)), spec_(std::move(spec)), master_seed_(master_seed) {
  int n = net_.cab_count();
  if (spec_.users < 1) throw std::invalid_argument("workload '" + spec_.name + "': users >= 1");
  if (spec_.size_min > spec_.size_max) {
    throw std::invalid_argument("workload '" + spec_.name + "': size_min > size_max");
  }
  if (spec_.mode == Mode::Open && spec_.rate <= 0.0) {
    throw std::invalid_argument("workload '" + spec_.name + "': open mode needs rate > 0");
  }
  // Flows pair i -> (i + stride) % n: a permutation, so every node serves
  // exactly one flow and drives exactly one.
  int stride = spec_.stride % n;
  if (stride < 0) stride += n;
  flow_of_src_.assign(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    int dst = (i + stride) % n;
    if (dst == i) continue;
    flow_of_src_[static_cast<std::size_t>(i)] = static_cast<int>(flow_defs_.size());
    Flow f;
    f.src = i;
    f.dst = dst;
    flow_defs_.push_back(f);
    FlowStats st;
    st.src = i;
    st.dst = dst;
    flows_.push_back(st);
  }
  if (flow_defs_.empty()) {
    throw std::invalid_argument("workload '" + spec_.name +
                                "': stride pairs every node with itself");
  }
}

std::uint64_t Workload::flow_seed(std::size_t flow, const char* role, int user) const {
  return sim::derive_seed(master_seed_, "wl/" + spec_.name + "/f" + std::to_string(flow) + "/" +
                                            role + std::to_string(user));
}

std::uint32_t Workload::pick_size(sim::Random& rng) const {
  auto v = static_cast<std::uint32_t>(
      rng.next_range(static_cast<std::int64_t>(spec_.size_min),
                     static_cast<std::int64_t>(spec_.size_max)));
  return v < kHeaderBytes ? kHeaderBytes : v;
}

sim::SimTime Workload::exp_draw(sim::Random& rng, double mean_ns) const {
  double t = -std::log(1.0 - rng.next_double()) * mean_ns;
  if (t < 0.0) t = 0.0;
  if (t > 9.0e15) t = 9.0e15;  // cap at ~104 days; keeps the cast defined
  return static_cast<sim::SimTime>(t);
}

std::optional<core::Message> Workload::stage(int node, core::Mailbox& scratch, std::size_t flow,
                                             std::uint32_t size, bool blocking,
                                             obs::TraceContext* tctx) {
  if (size < kHeaderBytes) size = kHeaderBytes;
  std::optional<core::Message> m;
  if (blocking) {
    m = scratch.begin_put(size);
  } else {
    m = scratch.begin_put_try(size);
    if (!m) return std::nullopt;
  }
  FlowStats& st = flows_[flow];
  if (tctx != nullptr) {
    if (auto* ct = obs::CausalTracer::active()) {
      const Flow& f = flow_defs_[flow];
      *tctx = ct->maybe_start(spec_.name, f.src, f.dst, st.sent);
      if (tctx->valid()) ct->stage(*tctx, "tx.app", "node" + std::to_string(f.src));
    }
  }
  std::uint8_t hdr[kHeaderBytes];
  pack32(hdr, static_cast<std::uint32_t>(flow_defs_[flow].src));
  pack32(hdr + 4, static_cast<std::uint32_t>(st.sent));
  pack64(hdr + 8, static_cast<std::uint64_t>(runtime(node).engine().now()));
  net_.cab(node).memory().write(m->data, std::span<const std::uint8_t>(hdr, kHeaderBytes));
  ++st.sent;
  st.sent_bytes += m->len;
  return m;
}

void Workload::observe_delivery(int node, const core::Message& m) {
  if (m.len < kHeaderBytes) return;
  std::uint8_t hdr[kHeaderBytes];
  net_.cab(node).memory().read(m.data, std::span<std::uint8_t>(hdr, kHeaderBytes));
  std::uint32_t src = unpack32(hdr);
  if (src >= flow_of_src_.size()) return;
  int fi = flow_of_src_[src];
  if (fi < 0) return;
  auto sent_ns = static_cast<sim::SimTime>(unpack64(hdr + 8));
  sim::SimTime now = runtime(node).engine().now();
  // A timestamp of 0 or from the future means this is not one of our
  // headers (e.g. a continuation segment of an oversized TCP message).
  if (sent_ns <= 0 || sent_ns > now) return;
  FlowStats& st = flows_[static_cast<std::size_t>(fi)];
  st.latency.observe(now - sent_ns);
  ++st.delivered;
  st.delivered_bytes += m.len;
  if (auto* ct = obs::CausalTracer::active()) {
    // The receive buffer was tagged at datalink rx; header stripping only
    // moved the data pointer forward, so containment lookup still hits.
    obs::TraceContext ctx = ct->lookup(node, m.data);
    if (ctx.valid()) ct->finish(ctx);
  }
}

void Workload::install() {
  if ((spec_.proto == Proto::Udp || spec_.proto == Proto::Tcp) && spec_.port == 0) {
    throw std::invalid_argument("workload '" + spec_.name + "': udp/tcp needs a port");
  }
  install_servers();
  install_clients();
}

// --- servers ---------------------------------------------------------------------

void Workload::server_reader_loop(int node, core::Mailbox& mb) {
  for (;;) {
    core::Message m = mb.begin_get();
    observe_delivery(node, m);
    mb.end_get(m);
  }
}

void Workload::udp_server(int node) {
  core::Mailbox& rx = runtime(node).create_mailbox("wl/" + spec_.name + "/udp");
  stack(node).udp.bind(spec_.port, &rx);
  runtime(node).fork_system("wl/" + spec_.name + "/srv", [this, node, &rx] {
    for (;;) {
      core::Message m = rx.begin_get();
      observe_delivery(node, proto::Udp::payload_of(m));
      rx.end_get(m);
    }
  });
}

void Workload::tcp_server(int node) {
  runtime(node).fork_system("wl/" + spec_.name + "/acc", [this, node] {
    // Opened from thread context (Mutex is a thread-level primitive); the
    // accept thread runs at t=0, ahead of any SYN's wire latency.
    proto::TcpListener* l = stack(node).tcp.open_listener(spec_.port);
    for (;;) {
      proto::TcpConnection* c = stack(node).tcp.accept(l);
      runtime(node).fork_system("wl/" + spec_.name + "/srv", [this, node, c] {
        for (;;) {
          core::Message m = c->receive_mailbox().begin_get();
          if (m.len == 0) {  // peer closed
            c->receive_mailbox().end_get(m);
            return;
          }
          observe_delivery(node, m);
          c->receive_mailbox().end_get(m);
        }
      });
    }
  });
}

void Workload::reqresp_server(int node, core::Mailbox& svc) {
  runtime(node).fork_system("wl/" + spec_.name + "/srv", [this, node, &svc] {
    core::Mailbox& rsp_arena = runtime(node).create_mailbox("wl/" + spec_.name + "/rsp");
    for (;;) {
      core::Message req = svc.begin_get();
      auto info = nproto::ReqResp::parse_request(runtime(node), req);
      core::Message payload = nproto::ReqResp::payload_of(req);
      svc.end_get(payload);
      // The client measures round-trip time itself; the reply only has to
      // exist.
      core::Message reply = rsp_arena.begin_put(kHeaderBytes);
      stack(node).reqresp.respond(info, reply);
    }
  });
}

void Workload::install_servers() {
  for (Flow& f : flow_defs_) {
    switch (spec_.proto) {
      case Proto::Udp:
        udp_server(f.dst);
        break;
      case Proto::Tcp:
        tcp_server(f.dst);
        break;
      case Proto::Datagram:
      case Proto::Rmp: {
        core::Mailbox& sink = runtime(f.dst).create_mailbox("wl/" + spec_.name + "/sink");
        f.sink = sink.address();
        int node = f.dst;
        runtime(node).fork_system("wl/" + spec_.name + "/srv",
                                  [this, node, &sink] { server_reader_loop(node, sink); });
        break;
      }
      case Proto::ReqResp: {
        core::Mailbox& svc = runtime(f.dst).create_mailbox("wl/" + spec_.name + "/svc");
        f.sink = svc.address();
        reqresp_server(f.dst, svc);
        break;
      }
    }
  }
}

// --- clients ---------------------------------------------------------------------

void Workload::closed_user_loop(std::size_t flow, int user) {
  Flow& f = flow_defs_[flow];
  FlowStats& st = flows_[flow];
  core::CabRuntime& rt = runtime(f.src);
  sim::Random rng(flow_seed(flow, "closed", user));
  core::Mailbox& scratch =
      rt.create_mailbox("wl/" + spec_.name + "/u" + std::to_string(user));
  if (rt.engine().now() < spec_.start) rt.cpu().sleep_until(spec_.start);
  // Fire-and-forget protocols have no completion to wait on; a floor on the
  // think time keeps the loop from spinning at one simulation instant.
  sim::SimTime think = spec_.think;
  if ((spec_.proto == Proto::Udp || spec_.proto == Proto::Datagram) && think < sim::usec(1)) {
    think = sim::usec(1);
  }
  for (;;) {
    std::uint32_t size = pick_size(rng);
    obs::TraceContext tctx;
    std::optional<core::Message> m = stage(f.src, scratch, flow, size, /*blocking=*/true, &tctx);
    switch (spec_.proto) {
      case Proto::Udp:
        stack(f.src).udp.send(spec_.port, proto::ip_of_node(f.dst), spec_.port, *m, true, tctx);
        break;
      case Proto::Tcp:
        stack(f.src).tcp.send(f.conn, *m, true, tctx);
        stack(f.src).tcp.wait_drained(f.conn);
        break;
      case Proto::Datagram:
        stack(f.src).datagram.send(f.sink, *m, true, 0, tctx);
        break;
      case Proto::Rmp:
        stack(f.src).rmp.send(f.sink, *m, true, {}, tctx);
        stack(f.src).rmp.wait_acked(f.dst);
        break;
      case Proto::ReqResp: {
        sim::SimTime t0 = rt.engine().now();
        try {
          core::Message rsp = stack(f.src).reqresp.call(f.sink, *m, true, tctx);
          st.latency.observe(rt.engine().now() - t0);
          ++st.delivered;
          st.delivered_bytes += size;
          scratch.end_get(rsp);
          // RPC latency is the client-side round trip; close the trace here
          // rather than at a receive-side observe_delivery.
          if (tctx.valid()) {
            if (auto* ct = obs::CausalTracer::active()) ct->finish(tctx);
          }
        } catch (const std::runtime_error&) {
          ++st.errors;
        }
        break;
      }
    }
    if (think > 0) rt.cpu().sleep_for(exp_draw(rng, static_cast<double>(think)));
  }
}

bool Workload::open_send_once(std::size_t flow, core::Mailbox& scratch, sim::Random& rng) {
  Flow& f = flow_defs_[flow];
  FlowStats& st = flows_[flow];
  // Back-pressure guards: an open-loop source sheds instead of blocking, so
  // overload shows up as loss at the edge rather than a stuck generator.
  switch (spec_.proto) {
    case Proto::Tcp:
      if (f.conn == nullptr || !f.conn->established() ||
          f.conn->unacked_bytes() > kTcpShedBytes) {
        ++st.shed;
        return false;
      }
      break;
    case Proto::Rmp:
      if (stack(f.src).rmp.queued_to(f.dst) >= kRmpShedQueue) {
        ++st.shed;
        return false;
      }
      break;
    case Proto::ReqResp:
      if (f.rpc_outstanding) {
        ++st.shed;
        return false;
      }
      break;
    default:
      break;
  }
  std::uint32_t size = pick_size(rng);
  obs::TraceContext tctx;
  std::optional<core::Message> m = stage(f.src, scratch, flow, size, /*blocking=*/false, &tctx);
  if (!m) {
    ++st.shed;  // buffer heap exhausted
    return false;
  }
  switch (spec_.proto) {
    case Proto::Udp:
      stack(f.src).udp.send(spec_.port, proto::ip_of_node(f.dst), spec_.port, *m, true, tctx);
      break;
    case Proto::Tcp:
      stack(f.src).tcp.send(f.conn, *m, true, tctx);
      break;
    case Proto::Datagram:
      stack(f.src).datagram.send(f.sink, *m, true, 0, tctx);
      break;
    case Proto::Rmp:
      stack(f.src).rmp.send(f.sink, *m, true, {}, tctx);
      break;
    case Proto::ReqResp: {
      f.rpc_outstanding = true;
      core::Message req = *m;
      runtime(f.src).fork_app("wl/" + spec_.name + "/rpc",
                              [this, flow, size, &scratch, req, tctx] {
        Flow& fl = flow_defs_[flow];
        FlowStats& s = flows_[flow];
        sim::SimTime t0 = runtime(fl.src).engine().now();
        try {
          core::Message rsp = stack(fl.src).reqresp.call(fl.sink, req, true, tctx);
          s.latency.observe(runtime(fl.src).engine().now() - t0);
          ++s.delivered;
          s.delivered_bytes += size;
          scratch.end_get(rsp);
          if (tctx.valid()) {
            if (auto* ct = obs::CausalTracer::active()) ct->finish(tctx);
          }
        } catch (const std::runtime_error&) {
          ++s.errors;
        }
        fl.rpc_outstanding = false;
      });
      break;
    }
  }
  return true;
}

void Workload::open_flow_loop(std::size_t flow) {
  Flow& f = flow_defs_[flow];
  FlowStats& st = flows_[flow];
  core::CabRuntime& rt = runtime(f.src);
  sim::Random rng(flow_seed(flow, "open", 0));
  core::Mailbox& scratch = rt.create_mailbox("wl/" + spec_.name + "/gen");
  if (rt.engine().now() < spec_.start) rt.cpu().sleep_until(spec_.start);
  if (spec_.proto == Proto::Tcp) {
    f.conn = stack(f.src).tcp.connect(static_cast<std::uint16_t>(spec_.port + 1),
                                      proto::ip_of_node(f.dst), spec_.port);
    if (!stack(f.src).tcp.wait_established(f.conn)) {
      ++st.errors;
      return;
    }
  }
  // `users` independent Poisson sources aggregate to one Poisson process.
  double mean_ns = 1e9 / (spec_.rate * spec_.users);
  for (;;) {
    rt.cpu().sleep_for(exp_draw(rng, mean_ns));
    open_send_once(flow, scratch, rng);
  }
}

void Workload::install_clients() {
  for (std::size_t i = 0; i < flow_defs_.size(); ++i) {
    Flow& f = flow_defs_[i];
    if (spec_.mode == Mode::Open) {
      runtime(f.src).fork_app("wl/" + spec_.name + "/gen", [this, i] { open_flow_loop(i); });
      continue;
    }
    if (spec_.proto == Proto::Tcp) {
      // One connection per flow, shared by every user thread; the driver
      // establishes it, then spawns the users.
      runtime(f.src).fork_app("wl/" + spec_.name + "/drv", [this, i] {
        Flow& fl = flow_defs_[i];
        core::CabRuntime& rt = runtime(fl.src);
        if (rt.engine().now() < spec_.start) rt.cpu().sleep_until(spec_.start);
        fl.conn = stack(fl.src).tcp.connect(static_cast<std::uint16_t>(spec_.port + 1),
                                            proto::ip_of_node(fl.dst), spec_.port);
        if (!stack(fl.src).tcp.wait_established(fl.conn)) {
          ++flows_[i].errors;
          return;
        }
        for (int u = 0; u < spec_.users; ++u) {
          rt.fork_app("wl/" + spec_.name + "/u" + std::to_string(u),
                      [this, i, u] { closed_user_loop(i, u); });
        }
      });
    } else {
      for (int u = 0; u < spec_.users; ++u) {
        runtime(f.src).fork_app("wl/" + spec_.name + "/u" + std::to_string(u),
                                [this, i, u] { closed_user_loop(i, u); });
      }
    }
  }
}

// --- aggregates ------------------------------------------------------------------

obs::LatencyHistogram Workload::latency() const {
  obs::LatencyHistogram merged;
  for (const FlowStats& f : flows_) merged.merge(f.latency);
  return merged;
}

std::uint64_t Workload::sent() const {
  std::uint64_t n = 0;
  for (const FlowStats& f : flows_) n += f.sent;
  return n;
}

std::uint64_t Workload::delivered() const {
  std::uint64_t n = 0;
  for (const FlowStats& f : flows_) n += f.delivered;
  return n;
}

std::uint64_t Workload::delivered_bytes() const {
  std::uint64_t n = 0;
  for (const FlowStats& f : flows_) n += f.delivered_bytes;
  return n;
}

std::uint64_t Workload::shed() const {
  std::uint64_t n = 0;
  for (const FlowStats& f : flows_) n += f.shed;
  return n;
}

std::uint64_t Workload::errors() const {
  std::uint64_t n = 0;
  for (const FlowStats& f : flows_) n += f.errors;
  return n;
}

std::uint64_t Workload::tcp_retransmissions() const {
  std::uint64_t n = 0;
  for (const Flow& f : flow_defs_) {
    if (f.conn != nullptr) n += f.conn->retransmissions();
  }
  return n;
}

std::uint64_t Workload::tcp_fast_retransmits() const {
  std::uint64_t n = 0;
  for (const Flow& f : flow_defs_) {
    if (f.conn != nullptr) n += f.conn->fast_retransmits();
  }
  return n;
}

double Workload::goodput_mbps(sim::SimTime duration) const {
  if (duration <= 0) return 0.0;
  double bits = static_cast<double>(delivered_bytes()) * 8.0;
  double secs = static_cast<double>(duration) / static_cast<double>(sim::kSecond);
  return bits / secs / 1e6;
}

void Workload::register_metrics(obs::Registration& reg) const {
  const std::string prefix = spec_.name + ".";
  reg.probe(-1, "workload", prefix + "sent",
            [this] { return static_cast<std::int64_t>(sent()); });
  reg.probe(-1, "workload", prefix + "delivered",
            [this] { return static_cast<std::int64_t>(delivered()); });
  reg.probe(-1, "workload", prefix + "delivered_bytes",
            [this] { return static_cast<std::int64_t>(delivered_bytes()); });
  reg.probe(-1, "workload", prefix + "shed",
            [this] { return static_cast<std::int64_t>(shed()); });
  reg.probe(-1, "workload", prefix + "errors",
            [this] { return static_cast<std::int64_t>(errors()); });
}

double Workload::fairness() const {
  double sum = 0.0, sq = 0.0;
  for (const FlowStats& f : flows_) {
    auto x = static_cast<double>(f.delivered_bytes);
    sum += x;
    sq += x * x;
  }
  if (sq <= 0.0) return 1.0;
  double n = static_cast<double>(flows_.size());
  return (sum * sum) / (n * sq);
}

}  // namespace nectar::scenario
