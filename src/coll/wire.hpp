#pragma once

// Wire format of the CAB-resident collective protocols (src/coll): one
// fixed 24-byte header in front of every collective message, composed into
// proto::HeaderBuf headroom like every other protocol header. Collective
// messages are almost always header-only — the operand of a reduce and the
// round/rank bookkeeping of a barrier ride in the header itself, so the
// common case never touches CAB data memory on the send side. Only a
// broadcast carries payload bytes after the header.

#include <cstdint>
#include <span>
#include <string>

namespace nectar::coll {

/// Collective message kinds (the `kind` header byte).
enum class MsgKind : std::uint8_t {
  Arrive = 1,        ///< tree barrier: child -> parent, subtree has entered
  Release = 2,       ///< tree barrier: root multicast (or unicast to a straggler)
  DissemRound = 3,   ///< dissemination barrier: round `round` notification
  DissemNack = 4,    ///< dissemination: "re-send me your round `round` message"
  BcastData = 5,     ///< broadcast: root multicast, payload follows the header
  BcastAck = 6,      ///< broadcast: member -> root delivery confirmation
  ReduceUp = 7,      ///< reduce: child -> parent combined partial in `value`
  ReduceResult = 8,  ///< reduce: root multicast of the final value
};
const char* kind_name(MsgKind k);

/// Combining operators supported by the on-CAB reduce (fixed-width u64
/// operands, combined at interior tree nodes as partials flow rootward).
enum class ReduceOp : std::uint8_t { Sum = 0, Min = 1, Max = 2 };
std::uint64_t combine(ReduceOp op, std::uint64_t a, std::uint64_t b);
const char* reduce_op_name(ReduceOp op);
ReduceOp parse_reduce_op(const std::string& name);  // "sum" | "min" | "max"

/// The collective header: 24 bytes on the wire, network byte order.
struct CollHeader {
  std::uint16_t group = 0;    ///< collective group id
  std::uint16_t epoch = 0;    ///< group epoch (stale-epoch messages are dropped)
  MsgKind kind = MsgKind::Arrive;
  std::uint8_t op = 0;        ///< ReduceOp for reduce messages, else 0
  std::uint16_t src_rank = 0; ///< sender's rank within the group
  std::uint32_t seq = 0;      ///< collective sequence number within the epoch
  std::uint16_t round = 0;    ///< dissemination round
  std::uint16_t length = 0;   ///< broadcast payload bytes after this header
  std::uint64_t value = 0;    ///< reduce partial / final value

  static constexpr std::size_t kSize = 24;
  void serialize(std::span<std::uint8_t> out) const;
  static CollHeader parse(std::span<const std::uint8_t> in);
};

}  // namespace nectar::coll
