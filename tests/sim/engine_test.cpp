#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nectar::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30);
}

TEST(Engine, SameTimeEventsFireInInsertionOrder) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, ScheduleInIsRelative) {
  Engine e;
  SimTime fired = -1;
  e.schedule_at(50, [&] { e.schedule_in(25, [&] { fired = e.now(); }); });
  e.run();
  EXPECT_EQ(fired, 75);
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine e;
  e.schedule_at(100, [&] {
    EXPECT_THROW(e.schedule_at(50, [] {}), std::logic_error);
  });
  e.run();
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool fired = false;
  auto id = e.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));  // second cancel reports failure
  e.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelledEventDoesNotAdvanceClockPastIt) {
  Engine e;
  auto id = e.schedule_at(10, [] {});
  SimTime seen = -1;
  e.schedule_at(20, [&] { seen = e.now(); });
  e.cancel(id);
  e.run();
  EXPECT_EQ(seen, 20);
}

TEST(Engine, StepProcessesExactlyOneEvent) {
  Engine e;
  int count = 0;
  e.schedule_at(1, [&] { ++count; });
  e.schedule_at(2, [&] { ++count; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(e.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(e.step());
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine e;
  std::vector<SimTime> fired;
  e.schedule_at(10, [&] { fired.push_back(10); });
  e.schedule_at(20, [&] { fired.push_back(20); });
  e.schedule_at(30, [&] { fired.push_back(30); });
  EXPECT_TRUE(e.run_until(20));  // events at exactly t are processed
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(e.now(), 20);
  EXPECT_FALSE(e.run_until(100));
  EXPECT_EQ(fired.size(), 3u);
  EXPECT_EQ(e.now(), 100);  // clock advances to the requested time
}

TEST(Engine, RunUntilWithEmptyQueueAdvancesClock) {
  Engine e;
  EXPECT_FALSE(e.run_until(500));
  EXPECT_EQ(e.now(), 500);
}

TEST(Engine, EventsScheduledDuringRunAreProcessed) {
  Engine e;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) e.schedule_in(10, recurse);
  };
  e.schedule_at(0, recurse);
  e.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(e.now(), 40);
}

TEST(Engine, RunWhilePredicate) {
  Engine e;
  int count = 0;
  for (int i = 1; i <= 10; ++i) e.schedule_at(i, [&] { ++count; });
  bool satisfied = e.run_while([&] { return count < 4; });
  EXPECT_TRUE(satisfied);
  EXPECT_EQ(count, 4);
  satisfied = e.run_while([&] { return count < 100; });
  EXPECT_FALSE(satisfied);  // queue drained before predicate met
  EXPECT_EQ(count, 10);
}

TEST(Engine, EventsProcessedCounter) {
  Engine e;
  for (int i = 0; i < 7; ++i) e.schedule_at(i, [] {});
  e.run();
  EXPECT_EQ(e.events_processed(), 7u);
}

TEST(TimeHelpers, UnitConversions) {
  EXPECT_EQ(usec(3), 3'000);
  EXPECT_EQ(msec(2), 2'000'000);
  EXPECT_EQ(sec(1), 1'000'000'000);
  EXPECT_DOUBLE_EQ(to_usec(1500), 1.5);
}

TEST(TimeHelpers, TransmitTimeAt100Mbit) {
  // 1250 bytes at 100 Mbit/s = 100 us.
  EXPECT_EQ(transmit_time(1250, 100e6), usec(100));
  // 8 KB at 100 Mbit/s = 655.36 us.
  EXPECT_NEAR(static_cast<double>(transmit_time(8192, 100e6)), 655'360.0, 1.0);
}

}  // namespace
}  // namespace nectar::sim
