// Wall-clock microbenchmarks of the simulation substrate itself (google-
// benchmark). These do NOT reproduce paper results — they measure how fast
// the simulator runs on the build machine, which bounds how large a Nectar
// you can simulate interactively.

#include <benchmark/benchmark.h>

#include <cstddef>
#include <string>
#include <vector>

#include "core/cpu.hpp"
#include "core/heap.hpp"
#include "core/priorities.hpp"
#include "hw/crc.hpp"
#include "net/system.hpp"
#include "proto/checksum.hpp"
#include "sim/engine.hpp"
#include "sim/fiber.hpp"

namespace {

void BM_EngineScheduleAndRun(benchmark::State& state) {
  for (auto _ : state) {
    nectar::sim::Engine e;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) e.schedule_at(i, [&sink] { ++sink; });
    e.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleAndRun);

void BM_FiberSwitch(benchmark::State& state) {
  nectar::sim::Fiber f([] {
    for (;;) nectar::sim::Fiber::suspend();
  });
  for (auto _ : state) {
    f.resume();
  }
  state.SetItemsProcessed(state.iterations() * 2);  // switch in + out
}
BENCHMARK(BM_FiberSwitch);

void BM_CpuChargeDispatch(benchmark::State& state) {
  for (auto _ : state) {
    nectar::sim::Engine e;
    nectar::core::Cpu cpu(e, "cpu");
    cpu.fork("t", nectar::core::kSystemPriority, [&cpu] {
      for (int i = 0; i < 1000; ++i) cpu.charge(100);
    });
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CpuChargeDispatch);

void BM_HeapAllocFree(benchmark::State& state) {
  nectar::hw::CabMemory mem;
  nectar::core::BufferHeap heap(mem);
  for (auto _ : state) {
    nectar::hw::CabAddr a = heap.alloc(512);
    heap.free(a);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HeapAllocFree);

void BM_Crc32(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 0xA5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nectar::hw::Crc32::compute(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(1500)->Arg(8192);

void BM_InternetChecksum(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 0x5A);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nectar::proto::InternetChecksum::compute(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(64)->Arg(1500)->Arg(8192);

void BM_FullDatagramRoundTrip(benchmark::State& state) {
  // Wall-clock cost of simulating one 64-byte CAB-CAB datagram round trip.
  for (auto _ : state) {
    nectar::net::NectarSystem sys(2);
    auto& svc = sys.runtime(1).create_mailbox("echo");
    auto& reply = sys.runtime(0).create_mailbox("reply");
    sys.runtime(1).fork_system("echo", [&] {
      nectar::core::Message m = svc.begin_get();
      auto info = sys.stack(1).datagram.last_sender(svc);
      sys.stack(1).datagram.send({info.src_node, info.src_mailbox}, m);
    });
    sys.runtime(0).fork_system("client", [&] {
      auto& s = sys.runtime(0).create_mailbox("s");
      nectar::core::Message m = s.begin_put(64);
      sys.stack(0).datagram.send(svc.address(), m, true, reply.address().index);
      nectar::core::Message r = reply.begin_get();
      reply.end_get(r);
    });
    sys.engine().run();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullDatagramRoundTrip);

}  // namespace

// Hand-rolled BENCHMARK_MAIN so this binary accepts the same `--json <path>`
// flag as the simulated-time benches: it is translated into google-benchmark's
// native JSON reporter flags (the report schema here is google-benchmark's,
// not nectar-bench-report, since these are wall-clock measurements).
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::vector<std::string> storage;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (std::string(args[i]) == "--json" && i + 1 < args.size()) {
      storage.push_back("--benchmark_out=" + std::string(args[i + 1]));
      storage.push_back("--benchmark_out_format=json");
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      for (std::string& s : storage) args.push_back(s.data());
      break;
    }
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
