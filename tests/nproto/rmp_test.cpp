#include "nproto/rmp.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "net/system.hpp"

namespace nectar::nproto {
namespace {

std::string read_bytes(core::CabRuntime& rt, const core::Message& m) {
  std::vector<std::uint8_t> buf(m.len);
  rt.board().memory().read(m.data, buf);
  return {buf.begin(), buf.end()};
}

core::Message stage(core::Mailbox& mb, core::CabRuntime& rt, const std::string& s) {
  core::Message m = mb.begin_put(static_cast<std::uint32_t>(s.size()));
  rt.board().memory().write(m.data, std::span<const std::uint8_t>(
                                        reinterpret_cast<const std::uint8_t*>(s.data()),
                                        s.size()));
  return m;
}

TEST(RmpTest, ReliableDeliveryOnCleanWire) {
  net::NectarSystem sys(2);
  core::Mailbox& dst = sys.runtime(1).create_mailbox("sink");
  std::string got;
  sys.runtime(0).fork_system("send", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("scratch");
    sys.stack(0).rmp.send(dst.address(), stage(s, sys.runtime(0), "reliable"));
    sys.stack(0).rmp.wait_acked(1);
  });
  sys.runtime(1).fork_system("recv", [&] {
    core::Message m = dst.begin_get();
    got = read_bytes(sys.runtime(1), m);
    dst.end_get(m);
  });
  sys.engine().run();
  EXPECT_EQ(got, "reliable");
  EXPECT_EQ(sys.stack(0).rmp.retransmissions(), 0u);
  EXPECT_EQ(sys.stack(1).rmp.acks_sent(), 1u);
}

TEST(RmpTest, StopAndWaitRecoversFromLoss) {
  net::NectarSystem sys(2);
  sys.net().cab(0).out_link().set_drop_rate(0.3, 99);
  core::Mailbox& dst = sys.runtime(1).create_mailbox("sink");
  std::vector<std::string> got;
  constexpr int kN = 20;
  sys.runtime(0).fork_system("send", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("scratch");
    for (int i = 0; i < kN; ++i) {
      sys.stack(0).rmp.send(dst.address(), stage(s, sys.runtime(0), "m" + std::to_string(i)));
    }
    sys.stack(0).rmp.wait_acked(1);
  });
  sys.runtime(1).fork_system("recv", [&] {
    for (int i = 0; i < kN; ++i) {
      core::Message m = dst.begin_get();
      got.push_back(read_bytes(sys.runtime(1), m));
      dst.end_get(m);
    }
  });
  sys.net().run_until(sim::sec(5));
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)], "m" + std::to_string(i));  // exactly once, in order
  }
  EXPECT_GT(sys.stack(0).rmp.retransmissions(), 0u);
}

TEST(RmpTest, LostAckCausesDuplicateSuppression) {
  net::NectarSystem sys(2);
  // Drop some of the *receiver's* frames (its ACKs).
  sys.net().cab(1).out_link().set_drop_rate(0.4, 5);
  core::Mailbox& dst = sys.runtime(1).create_mailbox("sink");
  std::vector<std::string> got;
  constexpr int kN = 10;
  sys.runtime(0).fork_system("send", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("scratch");
    for (int i = 0; i < kN; ++i) {
      sys.stack(0).rmp.send(dst.address(), stage(s, sys.runtime(0), "u" + std::to_string(i)));
    }
    sys.stack(0).rmp.wait_acked(1);
  });
  sys.runtime(1).fork_system("recv", [&] {
    for (int i = 0; i < kN; ++i) {
      core::Message m = dst.begin_get();
      got.push_back(read_bytes(sys.runtime(1), m));
      dst.end_get(m);
    }
  });
  sys.net().run_until(sim::sec(5));
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)], "u" + std::to_string(i));
  }
  // Lost ACKs forced retransmissions; the receiver dropped the duplicates.
  EXPECT_GT(sys.stack(1).rmp.duplicates_dropped(), 0u);
  EXPECT_EQ(sys.stack(1).rmp.messages_delivered(), static_cast<std::uint64_t>(kN));
}

TEST(RmpTest, CorruptedFramesRepairedByCrcPlusRetransmit) {
  net::NectarSystem sys(2);
  sys.net().cab(0).out_link().set_corrupt_rate(0.25, 7);
  core::Mailbox& dst = sys.runtime(1).create_mailbox("sink");
  std::string big(4096, 'B');
  std::string got;
  sys.runtime(0).fork_system("send", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("scratch");
    sys.stack(0).rmp.send(dst.address(), stage(s, sys.runtime(0), big));
    sys.stack(0).rmp.wait_acked(1);
  });
  sys.runtime(1).fork_system("recv", [&] {
    core::Message m = dst.begin_get();
    got = read_bytes(sys.runtime(1), m);
    dst.end_get(m);
  });
  sys.net().run_until(sim::sec(5));
  EXPECT_EQ(got, big);  // byte-exact despite corruption
}

TEST(RmpTest, SendBuffersFreedOnAck) {
  net::NectarSystem sys(2);
  core::Mailbox& dst = sys.runtime(1).create_mailbox("sink");
  std::size_t heap_floor = 0;
  sys.runtime(0).fork_system("send", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("scratch");
    heap_floor = sys.runtime(0).heap().bytes_in_use();
    for (int i = 0; i < 5; ++i) {
      sys.stack(0).rmp.send(dst.address(), stage(s, sys.runtime(0), std::string(2048, 'f')));
    }
    sys.stack(0).rmp.wait_acked(1);
  });
  sys.runtime(1).fork_system("recv", [&] {
    for (int i = 0; i < 5; ++i) {
      core::Message m = dst.begin_get();
      dst.end_get(m);
    }
  });
  sys.engine().run();
  // All five 2 KB send buffers returned to the heap.
  EXPECT_LE(sys.runtime(0).heap().bytes_in_use(), heap_floor + 256);
}

TEST(RmpTest, AckCallbackFires) {
  net::NectarSystem sys(2);
  core::Mailbox& dst = sys.runtime(1).create_mailbox("sink");
  bool acked = false;
  sys.runtime(1).fork_system("recv", [&] {
    core::Message m = dst.begin_get();
    dst.end_get(m);
  });
  sys.runtime(0).fork_system("send", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("scratch");
    sys.stack(0).rmp.send(dst.address(), stage(s, sys.runtime(0), "cb"), true,
                          [&] { acked = true; });
  });
  sys.engine().run();
  EXPECT_TRUE(acked);
}

TEST(RmpTest, ThroughputApproachesWireSpeedAtLargeMessages) {
  // Fig. 7 sanity: RMP at 8 KB messages should reach most of the 100 Mbit/s
  // fiber (the paper reports ~90 Mbit/s).
  net::NectarSystem sys(2);
  core::Mailbox& dst = sys.runtime(1).create_mailbox("sink");
  constexpr int kN = 50;
  constexpr std::size_t kSize = 8192;
  sim::SimTime done_at = 0;
  sys.runtime(1).fork_system("recv", [&] {
    for (int i = 0; i < kN; ++i) {
      core::Message m = dst.begin_get();
      dst.end_get(m);
    }
    done_at = sys.engine().now();
  });
  sys.runtime(0).fork_system("send", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("scratch");
    for (int i = 0; i < kN; ++i) {
      core::Message m = s.begin_put(kSize);
      sys.stack(0).rmp.send(dst.address(), m);
    }
  });
  sys.engine().run();
  ASSERT_GT(done_at, 0);
  double mbits = kN * kSize * 8.0 / 1e6;
  double seconds = static_cast<double>(done_at) / sim::kSecond;
  double throughput = mbits / seconds;
  EXPECT_GT(throughput, 55.0);   // stop-and-wait costs a round trip per message
  EXPECT_LT(throughput, 100.0);  // cannot beat the wire
}

TEST(RmpTest, PrefixArrivesContiguousBeforePayload) {
  net::NectarSystem sys(2);
  core::Mailbox& dst = sys.runtime(1).create_mailbox("sink");
  std::string got;
  sys.runtime(0).fork_system("send", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("scratch");
    const std::uint8_t pfx[4] = {'h', 'd', 'r', ':'};
    sys.stack(0).rmp.send(dst.address(), stage(s, sys.runtime(0), "payload"), true, {}, {}, pfx);
    sys.stack(0).rmp.wait_acked(1);
  });
  sys.runtime(1).fork_system("recv", [&] {
    core::Message m = dst.begin_get();
    got = read_bytes(sys.runtime(1), m);
    dst.end_get(m);
  });
  sys.engine().run();
  // The receiver sees [prefix][payload] as one contiguous message.
  EXPECT_EQ(got, "hdr:payload");
}

TEST(RmpTest, PrefixSurvivesRetransmission) {
  net::NectarSystem sys(2);
  sys.net().cab(0).out_link().set_drop_rate(0.4, 7);
  core::Mailbox& dst = sys.runtime(1).create_mailbox("sink");
  std::vector<std::string> got;
  constexpr int kN = 10;
  sys.runtime(0).fork_system("send", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("scratch");
    for (int i = 0; i < kN; ++i) {
      std::uint8_t pfx[2] = {static_cast<std::uint8_t>('A' + i), '|'};
      sys.stack(0).rmp.send(dst.address(), stage(s, sys.runtime(0), "m" + std::to_string(i)),
                            true, {}, {}, pfx);
    }
    sys.stack(0).rmp.wait_acked(1);
  });
  sys.runtime(1).fork_system("recv", [&] {
    for (int i = 0; i < kN; ++i) {
      core::Message m = dst.begin_get();
      got.push_back(read_bytes(sys.runtime(1), m));
      dst.end_get(m);
    }
  });
  sys.engine().run();
  // Every (re)transmission recomposes the prefix through the HeaderBuf path,
  // so lossy delivery still yields intact [prefix][payload] bytes in order.
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)],
              std::string(1, static_cast<char>('A' + i)) + "|m" + std::to_string(i));
  }
  EXPECT_GT(sys.stack(0).rmp.retransmissions(), 0u);
}

TEST(RmpTest, OversizedPrefixIsRejectedLoudly) {
  net::NectarSystem sys(2);
  core::Mailbox& dst = sys.runtime(1).create_mailbox("sink");
  bool threw = false;
  sys.runtime(0).fork_system("send", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("scratch");
    std::vector<std::uint8_t> pfx(nproto::Rmp::kMaxPrefix + 1, 0xab);
    try {
      sys.stack(0).rmp.send(dst.address(), stage(s, sys.runtime(0), "x"), true, {}, {}, pfx);
    } catch (const std::length_error&) {
      threw = true;
    }
  });
  sys.engine().run();
  EXPECT_TRUE(threw);
}

}  // namespace
}  // namespace nectar::nproto
