#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/runtime.hpp"
#include "hw/cab.hpp"
#include "hw/pool.hpp"
#include "obs/profiler.hpp"
#include "hw/hub.hpp"
#include "hw/vme.hpp"
#include "proto/datalink.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace nectar::net {

/// Builder/owner for a Nectar network: HUBs connected in an arbitrary mesh,
/// CABs on HUB ports (paper §2, Figure 1). Computes the source routes the
/// CABs use (§2.1) with a BFS over the HUB graph and installs them in every
/// datalink.
class Network {
 public:
  Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  sim::Engine& engine() { return engine_; }
  sim::TraceRecorder& trace() { return trace_; }

  /// Network-wide observability: every node's stats report into one registry,
  /// and every node's scheduler/bus/wire events share one tracer (disabled
  /// until Tracer::set_enabled(true)).
  obs::MetricsRegistry& metrics() { return metrics_; }
  obs::Tracer& tracer() { return tracer_; }

  /// Network-wide cycle-attribution profiler. Every CAB CPU, VME bus, and
  /// DMA controller is attached at construction; disabled (zero simulated
  /// cost, one branch per charge) until Profiler::set_enabled(true).
  obs::Profiler& profiler() { return profiler_; }

  /// Opt-in: report the simulation substrate's host-side pool statistics
  /// (event slab under "sim.engine", process-wide frame/header byte pools
  /// under "hw.framepool"/"proto.hdrpool", all node -1) into metrics().
  /// Not registered by default — the byte-pool counters span Networks, and
  /// committed bench reports must snapshot byte-identically across runs.
  /// Also registers every HUB's crossbar probes (per-output-port busy /
  /// blocked time, blackout drops; see hw::Hub::register_metrics) so
  /// scenario reports can attribute loss and queueing to the switch fabric.
  void register_substrate_metrics();

  /// Add a HUB (16x16 by default). Returns its id.
  int add_hub(int ports = 16);
  hw::Hub& hub(int id) { return *hubs_.at(static_cast<std::size_t>(id)); }
  int hub_count() const { return static_cast<int>(hubs_.size()); }

  /// Add a CAB on `hub_id` port `port` (one fiber pair, §2.2). A VME bus is
  /// created when `with_vme` (for host-attached CABs). Returns the node id.
  int add_cab(int hub_id, int port, bool with_vme = false);
  int cab_count() const { return static_cast<int>(cabs_.size()); }

  hw::CabBoard& cab(int node) { return *cabs_.at(static_cast<std::size_t>(node))->board; }
  core::CabRuntime& runtime(int node) { return *cabs_.at(static_cast<std::size_t>(node))->rt; }
  proto::Datalink& datalink(int node) { return *cabs_.at(static_cast<std::size_t>(node))->dl; }
  hw::VmeBus* vme(int node) { return cabs_.at(static_cast<std::size_t>(node))->vme.get(); }
  /// Where a CAB hangs off the switch fabric (fault targeting needs the
  /// HUB port that feeds the CAB's inbound fiber).
  int cab_hub(int node) const { return cabs_.at(static_cast<std::size_t>(node))->hub; }
  int cab_port(int node) const { return cabs_.at(static_cast<std::size_t>(node))->port; }

  /// Connect two HUBs with a trunk fiber pair (multi-HUB systems, §2.1).
  void link_hubs(int hub_a, int port_a, int hub_b, int port_b);

  /// A trunk fiber pair between two HUBs, as passed to link_hubs. Exposed so
  /// the control plane (route::PathDb) can walk the HUB graph itself.
  struct Trunk {
    int hub_a, port_a, hub_b, port_b;
  };
  const std::vector<Trunk>& trunks() const { return trunks_; }

  /// Compute and install source routes between every pair of CABs (and each
  /// CAB to itself, through its own HUB). Call after the topology is built.
  void install_routes();

  /// The raw route (one output-port byte per HUB hop) from `src` to `dst`.
  /// Backed by the interned cache below, so repeated calls are O(log n).
  const std::vector<std::uint8_t>& route(int src, int dst) const;

  /// The same route interned as a shared immutable RouteRef — the form the
  /// datalinks and the control plane hold, computed once per pair.
  const hw::RouteRef& route_ref(int src, int dst) const;

  /// Run the simulation until the event queue drains or `t` is reached.
  void run_until(sim::SimTime t) { engine_.run_until(t); }
  void run() { engine_.run(); }

 private:
  struct CabNode {
    std::unique_ptr<hw::VmeBus> vme;  // may be null; must outlive the board
    std::unique_ptr<hw::CabBoard> board;
    std::unique_ptr<core::CabRuntime> rt;
    std::unique_ptr<proto::Datalink> dl;
    int hub = -1;
    int port = -1;
  };
  std::vector<std::uint8_t> compute_route(int src, int dst) const;

  sim::Engine engine_;
  sim::TraceRecorder trace_;
  obs::MetricsRegistry metrics_;
  obs::Tracer tracer_{engine_};
  obs::Profiler profiler_;
  std::vector<std::unique_ptr<hw::Hub>> hubs_;
  std::vector<std::unique_ptr<CabNode>> cabs_;
  std::vector<Trunk> trunks_;
  // BFS routes interned per (src, dst) on first use; host-side cache only,
  // simulated costs are unaffected.
  mutable std::map<std::pair<int, int>, hw::RouteRef> route_cache_;

  // Last member: holds probes reading the nodes above (VME, links), so it
  // must release before they are destroyed.
  obs::Registration metrics_reg_{metrics_};
};

}  // namespace nectar::net
