#include "host/sockets.hpp"

#include <stdexcept>

namespace nectar::host {

namespace costs = sim::costs;

// --- SocketServer (CAB side) ---------------------------------------------------

SocketServer::SocketServer(core::CabRuntime& rt, proto::Tcp& tcp,
                           nproto::DatagramProtocol& datagram, nproto::Rmp& rmp, proto::Udp* udp,
                           nproto::ReqResp* reqresp)
    : rt_(rt),
      tcp_(tcp),
      datagram_(datagram),
      rmp_(rmp),
      udp_(udp),
      reqresp_(reqresp),
      control_(rt.create_mailbox("socket-control")),
      send_(rt.create_mailbox("nectar-send-request")) {
  rt_.fork_system("socket-control", [this] { control_loop(); });
  rt_.fork_system("nectar-send", [this] { send_loop(); });
}

void SocketServer::control_loop() {
  hw::CabMemory& mem = rt_.board().memory();
  for (;;) {
    core::Message m = control_.begin_get();
    if (m.len < 8) {
      control_.end_get(m);
      continue;
    }
    ++control_requests_;
    std::uint32_t sync = mem.read32(m.data);
    std::uint32_t kind = mem.read32(m.data + 4);
    std::uint32_t a = m.len >= 12 ? mem.read32(m.data + 8) : 0;
    std::uint32_t b = m.len >= 16 ? mem.read32(m.data + 12) : 0;
    std::uint32_t c = m.len >= 20 ? mem.read32(m.data + 16) : 0;
    control_.end_get(m);

    std::uint32_t result = 0;
    switch (kind) {
      case kConnect: {
        proto::TcpConnection* conn =
            tcp_.connect(static_cast<std::uint16_t>(a), b, static_cast<std::uint16_t>(c));
        result = conn->id();
        break;
      }
      case kListen: {
        proto::TcpConnection* conn = tcp_.listen(static_cast<std::uint16_t>(a));
        result = conn->id();
        break;
      }
      case kWait: {
        proto::TcpConnection* conn = tcp_.find(a);
        result = (conn != nullptr && tcp_.wait_established(conn)) ? 1 : 0;
        break;
      }
      case kClose: {
        proto::TcpConnection* conn = tcp_.find(a);
        if (conn != nullptr) tcp_.close(conn);
        result = 1;
        break;
      }
      default:
        break;
    }
    rt_.host_syncs().write(sync, result);
  }
}

void SocketServer::send_loop() {
  hw::CabMemory& mem = rt_.board().memory();
  for (;;) {
    core::Message m = send_.begin_get();
    if (m.len < 16) {
      send_.end_get(m);
      continue;
    }
    ++send_requests_;
    std::uint32_t proto = mem.read32(m.data);
    std::int32_t node = static_cast<std::int32_t>(mem.read32(m.data + 4));
    std::uint32_t index = mem.read32(m.data + 8);
    std::uint32_t src_mailbox = mem.read32(m.data + 12);
    core::Message payload = core::Mailbox::adjust_prefix(m, 16);
    if (proto == kViaRmp) {
      rmp_.send({node, index}, payload, /*free_when_acked=*/true);
    } else if (proto == kViaUdp && udp_ != nullptr) {
      std::uint16_t dst_port = static_cast<std::uint16_t>(index >> 16);
      std::uint16_t src_port = static_cast<std::uint16_t>(index & 0xFFFF);
      udp_->send(src_port, static_cast<proto::IpAddr>(node), dst_port, payload, true);
    } else if (proto == kViaRespond && reqresp_ != nullptr) {
      nproto::ReqResp::RequestInfo info;
      info.client_node = node;
      info.reply_mailbox = index;
      info.xid = static_cast<std::uint16_t>(src_mailbox);
      reqresp_->respond(info, payload);
    } else {
      datagram_.send({node, index}, payload, /*free_when_sent=*/true, src_mailbox);
    }
  }
}

// --- HostTcpSocket ------------------------------------------------------------------

HostTcpSocket::HostTcpSocket(nectarine::HostNectarine& nin, SocketServer& server, proto::Tcp& tcp)
    : nin_(nin), server_(server), tcp_(tcp) {
  send_req_ = nectarine::HostNectarine::HostMailbox{&tcp_.send_request_mailbox(), 0, 0};
}

std::uint32_t HostTcpSocket::control(std::uint32_t kind, std::uint32_t a, std::uint32_t b,
                                     std::uint32_t c) {
  core::Cpu& cpu = nin_.driver().host().cpu();
  core::SyncPool::SyncId sync = nin_.cab().host_syncs().alloc();
  nectarine::HostNectarine::HostMailbox ctl{&server_.control_mailbox(), 0, 0};
  core::Message req = nin_.begin_put(ctl, 20);
  std::vector<std::uint8_t> buf(20);
  proto::put32n(buf, 0, sync);
  proto::put32n(buf, 4, kind);
  proto::put32n(buf, 8, a);
  proto::put32n(buf, 12, b);
  proto::put32n(buf, 16, c);
  nin_.write_message(req, buf);
  nin_.end_put(ctl, req);
  std::uint32_t result = 0;
  for (;;) {
    cpu.charge_until(nin_.cab().board().vme()->programmed_access(1));
    if (nin_.cab().host_syncs().read_try(sync, &result)) return result;
    cpu.charge(costs::kHostPollLoop);
  }
}

bool HostTcpSocket::connect(std::uint16_t local_port, proto::IpAddr dst, std::uint16_t dst_port) {
  conn_id_ = control(SocketServer::kConnect, local_port, dst, dst_port);
  if (conn_id_ == 0) return false;
  proto::TcpConnection* conn = tcp_.find(conn_id_);
  rx_ = nin_.attach(conn->receive_mailbox());
  rx_attached_ = true;
  return control(SocketServer::kWait, conn_id_) == 1;
}

bool HostTcpSocket::listen(std::uint16_t port) {
  conn_id_ = control(SocketServer::kListen, port);
  if (conn_id_ == 0) return false;
  proto::TcpConnection* conn = tcp_.find(conn_id_);
  rx_ = nin_.attach(conn->receive_mailbox());
  rx_attached_ = true;
  return control(SocketServer::kWait, conn_id_) == 1;
}

void HostTcpSocket::send(std::span<const std::uint8_t> data) {
  // §4.2 inline path: request header + payload placed in the send-request
  // mailbox; the TCP send thread transmits in place.
  core::Message req = nin_.begin_put(send_req_, static_cast<std::uint32_t>(16 + data.size()));
  std::vector<std::uint8_t> hdr(16);
  proto::put32n(hdr, 0, conn_id_);
  proto::put32n(hdr, 4, proto::Tcp::kSendReqInline);
  nin_.write_message(req, hdr);
  // Payload goes straight after the header (bulk via VME DMA).
  nin_.driver().copy_to_cab(data, req.data + 16);
  nin_.end_put(send_req_, req);
}

std::size_t HostTcpSocket::recv(std::span<std::uint8_t> out, bool poll) {
  if (!rx_attached_) throw std::logic_error("HostTcpSocket::recv before connect/listen");
  core::Message m = poll ? nin_.begin_get_poll(rx_) : nin_.begin_get_block(rx_);
  if (m.len == 0) {
    nin_.end_get(rx_, m);
    return 0;  // end of stream
  }
  if (m.len > out.size()) throw std::logic_error("HostTcpSocket::recv: buffer too small");
  nin_.read_message(m, out.first(m.len));
  std::size_t n = m.len;
  nin_.end_get(rx_, m);
  return n;
}

void HostTcpSocket::close() {
  if (conn_id_ != 0) control(SocketServer::kClose, conn_id_);
}

// --- HostNectarPort ------------------------------------------------------------------------

HostNectarPort::HostNectarPort(nectarine::HostNectarine& nin, SocketServer& server,
                               const std::string& name)
    : nin_(nin), server_(server), rx_(nin.create_mailbox(name)) {
  send_ = nectarine::HostNectarine::HostMailbox{&server_.send_mailbox(), 0, 0};
}

void HostNectarPort::send_via(std::uint32_t proto, core::MailboxAddr dst,
                              std::span<const std::uint8_t> data, std::uint32_t src_field) {
  core::Message req = nin_.begin_put(send_, static_cast<std::uint32_t>(16 + data.size()));
  std::vector<std::uint8_t> hdr(16);
  proto::put32n(hdr, 0, proto);
  proto::put32n(hdr, 4, static_cast<std::uint32_t>(dst.node));
  proto::put32n(hdr, 8, dst.index);
  proto::put32n(hdr, 12, src_field);
  nin_.write_message(req, hdr);
  nin_.driver().copy_to_cab(data, req.data + 16);
  nin_.end_put(send_, req);
}

void HostNectarPort::send_datagram(core::MailboxAddr dst, std::span<const std::uint8_t> data) {
  send_via(SocketServer::kViaDatagram, dst, data, rx_.mb->address().index);
}

void HostNectarPort::send_reliable(core::MailboxAddr dst, std::span<const std::uint8_t> data) {
  send_via(SocketServer::kViaRmp, dst, data, rx_.mb->address().index);
}

nproto::ReqResp::RequestInfo HostNectarPort::parse_request(std::span<const std::uint8_t> raw) {
  proto::NectarHeader h = proto::NectarHeader::parse(raw);
  nproto::ReqResp::RequestInfo info;
  info.client_node = h.src_node;
  info.reply_mailbox = h.src_mailbox;
  info.xid = h.seq;
  return info;
}

void HostNectarPort::respond(const nproto::ReqResp::RequestInfo& info,
                             std::span<const std::uint8_t> data) {
  send_via(SocketServer::kViaRespond,
           {info.client_node, info.reply_mailbox}, data, info.xid);
}

std::size_t HostNectarPort::recv(std::span<std::uint8_t> out, bool poll) {
  core::Message m = poll ? nin_.begin_get_poll(rx_) : nin_.begin_get_block(rx_);
  if (m.len > out.size()) throw std::logic_error("HostNectarPort::recv: buffer too small");
  nin_.read_message(m, out.first(m.len));
  std::size_t n = m.len;
  nin_.end_get(rx_, m);
  return n;
}

void HostNectarPort::bind_udp(proto::Udp& udp, std::uint16_t port) {
  udp.bind(port, rx_.mb);
}

void HostNectarPort::send_udp(proto::IpAddr dst, std::uint16_t dst_port, std::uint16_t src_port,
                              std::span<const std::uint8_t> data) {
  core::MailboxAddr pseudo{static_cast<std::int32_t>(dst),
                           (static_cast<std::uint32_t>(dst_port) << 16) | src_port};
  send_via(SocketServer::kViaUdp, pseudo, data, rx_.mb->address().index);
}

std::size_t HostNectarPort::recv_udp(std::span<std::uint8_t> out, bool poll) {
  core::Message m = poll ? nin_.begin_get_poll(rx_) : nin_.begin_get_block(rx_);
  core::Message payload = proto::Udp::payload_of(m);
  if (payload.len > out.size()) throw std::logic_error("recv_udp: buffer too small");
  nin_.read_message(payload, out.first(payload.len));
  std::size_t n = payload.len;
  nin_.end_get(rx_, payload);
  return n;
}

}  // namespace nectar::host
