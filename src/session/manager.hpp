#pragma once

// SessionManager: thousands of logical channels multiplexed over a handful
// of trunk connections (docs/SESSIONS.md). One instance per CAB owns the
// node's trunks — established RMP or TCP connections to peer CABs — and
// runs, per trunk, a pumper thread that batches session frames into trunk
// messages and a reader thread that demultiplexes inbound frames.
//
// The shape follows the s3tp split the ROADMAP points at: connection
// management (channel lifecycle, id reuse with generation tags, trunk
// failure detection) is separated from buffering (per-channel staging
// bounded by send_window, per-channel credits bounded by the receiver), and
// the scheduler — strict priority across classes, deficit round-robin
// within one — decides which channel's bytes ride the next trunk message.
// A channel with no credit is simply not scheduled, which is the whole
// no-head-of-line-blocking argument: a stalled receiver starves exactly one
// channel, never its siblings on the same trunk.
//
// When a batch would carry a single DATA frame, the frame header instead
// rides the Rmp prefix path — composed through the proto::HeaderBuf
// headroom, zero allocations, retransmission-safe.

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/mailbox.hpp"
#include "core/runtime.hpp"
#include "nproto/rmp.hpp"
#include "obs/metrics.hpp"
#include "proto/tcp.hpp"
#include "session/wire.hpp"

namespace nectar::session {

/// Per-manager tuning. Defaults are sized for tens of thousands of small
/// -message channels per node over single-digit trunks.
struct SessionConfig {
  std::uint32_t initial_credit = 32;   ///< messages the receiver grants at OPEN_ACK
  std::uint32_t credit_refresh = 0;    ///< consumed messages per CREDIT frame (0 = initial/2)
  std::uint32_t send_window = 32;      ///< staged messages per channel before backpressure
  std::uint32_t max_batch = 4096;      ///< frame bytes per trunk message
  std::uint32_t max_channels = 60000;  ///< inbound admission cap per trunk
  std::uint32_t quantum = 256;         ///< WDRR bytes per weight unit per visit
  /// Trunk messages queued per RMP peer before the pumper paces. RMP is
  /// stop-and-wait per destination, so depth beyond "one in flight, one
  /// staged" buys no pipelining — it only lets the pumper ship tiny batches
  /// as fast as producers trickle, and the per-message overhead then starves
  /// the producers of CPU (1 frame/msg lockstep). A cap of 2 makes the
  /// pumper block for a full trunk RTT while frames accumulate into big
  /// batches.
  std::size_t rmp_queue_cap = 2;
  std::uint32_t tcp_window_cap = 65536;  ///< unacked bytes before a TCP trunk paces
  /// How long the pumper lingers after waking with work before composing a
  /// batch. Producers run below the trunk's interrupt processing, so without
  /// this window a lone staged frame ships immediately, the per-message
  /// interrupt cost saturates the CPU, and producers never get to stage the
  /// backlog that would have amortized it (the 1-frame/msg lockstep). To
  /// actually break the lockstep the window must exceed the per-message CPU
  /// burn (~300us on a CAB), so mass-open workloads want ~1ms; the small
  /// default only trades a little latency for burst coalescing.
  sim::SimTime aggregation = sim::usec(20);
  sim::SimTime fail_timeout = sim::msec(25);  ///< no-progress window before a trunk fails

  std::uint32_t refresh() const {
    return credit_refresh != 0 ? credit_refresh
                               : (initial_credit > 1 ? initial_credit / 2 : 1);
  }
};

/// Outcome of try_send: Backpressure is the send-window stall surfaced to
/// the app (account it as shed, not loss — nothing was accepted).
enum class SendResult : std::uint8_t { Ok, Backpressure, NotOpen, Failed };

enum class ChannelState : std::uint8_t {
  Opening,    ///< OPEN queued/sent, awaiting OPEN_ACK
  Open,       ///< data flows under credit
  Draining,   ///< close requested, staged data still queued
  CloseSent,  ///< CLOSE on the wire, awaiting CLOSE_ACK
  Closed,     ///< orderly end; wire id recycled (generation bumped)
  Failed,     ///< trunk death or peer reset — loud, attributable
  Refused,    ///< OPEN_NAK: peer admission control said no
};

const char* channel_state_name(ChannelState s);

/// Timestamped lifecycle event (trunk failures, admission pressure) — the
/// scenario layer overlays these as telemetry marks.
struct SessionEvent {
  sim::SimTime t = 0;
  std::string kind;    // "trunk_failed" | "admission_refused"
  std::string detail;  // human-readable attribution
};

class SessionManager {
 public:
  using ChannelHandle = std::uint32_t;
  static constexpr ChannelHandle kNoHandle = 0xffffffffu;
  static constexpr int kClasses = 4;  ///< strict-priority levels (0 = highest)

  /// `node` is this CAB's node id (for gauges and attribution). `rmp` may be
  /// null if only TCP trunks are added, and vice versa.
  SessionManager(core::CabRuntime& rt, int node, nproto::Rmp* rmp, proto::Tcp* tcp,
                 SessionConfig cfg = {});

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  // --- trunks ---------------------------------------------------------------

  /// Create the local endpoint of an RMP trunk to `peer_node`: allocates the
  /// trunk's receive mailbox and returns the trunk index. No threads run
  /// until connect_rmp_trunk.
  int add_rmp_trunk(int peer_node);
  /// This trunk's receive-mailbox address — hand it to the peer manager.
  core::MailboxAddr trunk_local_address(int trunk) const;
  /// Complete the trunk: frames to `peer_rx` start flowing (forks the
  /// trunk's pumper and reader threads).
  void connect_rmp_trunk(int trunk, core::MailboxAddr peer_rx);
  /// Wire one RMP trunk between two managers; returns (a's trunk, b's trunk).
  static std::pair<int, int> connect_rmp_pair(SessionManager& a, SessionManager& b);

  /// Attach an *established* TCP connection as a trunk. Frames are a byte
  /// stream over the connection; the reader reframes across segment
  /// boundaries using the frame length field.
  int add_tcp_trunk(proto::TcpConnection* conn, int peer_node);

  int trunk_count() const { return static_cast<int>(trunks_.size()); }
  int trunk_peer(int trunk) const;
  bool trunk_failed(int trunk) const;

  // --- channels (initiator side) -------------------------------------------

  /// Open a logical channel on `trunk`. Returns immediately with a handle in
  /// state Opening; data may be staged at once and flows when the OPEN_ACK
  /// grants credit. Returns kNoHandle only if the trunk's 16-bit id space is
  /// exhausted or the trunk already failed (counted as refused).
  ChannelHandle open_channel(int trunk, std::uint8_t priority = 0, std::uint8_t weight = 1);

  /// Stage one message on the channel. Backpressure when send_window
  /// messages are already staged — nothing is consumed.
  SendResult try_send(ChannelHandle h, std::span<const std::uint8_t> payload);

  /// Orderly close: CLOSE rides behind the staged data; the id is recycled
  /// (generation+1) when the CLOSE_ACK lands.
  void close_channel(ChannelHandle h);

  ChannelState state(ChannelHandle h) const;
  std::uint32_t credit(ChannelHandle h) const;
  std::uint16_t wire_id(ChannelHandle h) const;
  std::size_t staged(ChannelHandle h) const;

  // --- delivery / notifications --------------------------------------------

  /// Inbound DATA: (trunk, wire channel id, generation, payload). The span
  /// is valid only during the call. Runs on the trunk reader thread.
  std::function<void(int, std::uint16_t, std::uint8_t, std::span<const std::uint8_t>)> on_deliver;
  /// OPEN outcome for a channel this node initiated.
  std::function<void(ChannelHandle, bool accepted)> on_open_result;
  /// Orderly close completed (CLOSE_ACK seen).
  std::function<void(ChannelHandle)> on_closed;
  /// Loud failure: trunk death or peer reset, with attribution text.
  std::function<void(ChannelHandle, const std::string& reason)> on_channel_failed;

  // --- receiver-side controls ----------------------------------------------

  /// Withhold CREDIT frames for one inbound channel (scenario stall
  /// scripting: a frozen channel exhausts its sender's credit and must not
  /// disturb its trunk siblings). Unfreezing flushes the withheld credit.
  void freeze_inbound_credit(int trunk, std::uint16_t channel, bool frozen);

  // --- stats ----------------------------------------------------------------

  std::uint64_t channels_opened() const { return opened_; }
  std::uint64_t channels_refused() const { return refused_; }
  std::uint64_t channels_closed() const { return closed_; }
  std::uint64_t channels_failed() const { return failed_; }
  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t frames_delivered() const { return frames_delivered_; }
  std::uint64_t credit_stalls() const { return credit_stalls_; }
  std::uint64_t gen_mismatch_drops() const { return gen_mismatch_drops_; }
  std::uint64_t proto_errors() const { return proto_errors_; }
  std::uint64_t trunk_failures() const { return trunk_failures_; }
  std::uint32_t outbound_live(int trunk) const;
  std::uint32_t inbound_live(int trunk) const;
  std::uint64_t trunk_tx_msgs(int trunk) const;
  std::uint64_t trunk_tx_frames(int trunk) const;
  std::uint64_t trunk_tx_fast(int trunk) const;
  std::uint64_t trunk_credit_stalls(int trunk) const;

  const std::vector<SessionEvent>& events() const { return events_; }
  const SessionConfig& config() const { return cfg_; }
  core::CabRuntime& runtime() { return rt_; }
  int node() const { return node_; }

 private:
  enum class TrunkProto : std::uint8_t { Rmp, Tcp };

  struct Staged {
    std::vector<std::uint8_t> bytes;
    bool is_close = false;  // CLOSE marker: ordered behind data, needs no credit
  };

  struct SendChannel {
    int trunk = 0;
    std::uint16_t id = 0;
    std::uint8_t gen = 0;
    std::uint8_t priority = 0;
    std::uint8_t weight = 1;
    ChannelState st = ChannelState::Opening;
    std::uint16_t next_seq = 0;
    std::uint32_t credit = 0;
    std::uint32_t deficit = 0;
    bool in_ready = false;
    bool stall_counted = false;
    std::uint32_t pend_head = 0;       // index of the first unsent Staged
    std::vector<Staged> pending;
  };

  struct RecvChannel {
    bool in_use = false;
    std::uint8_t gen = 0;
    std::uint16_t expected_seq = 0;
    std::uint32_t consumed = 0;  // deliveries since the last CREDIT
    bool frozen = false;
  };

  struct PlannedFrame {
    FrameHeader h;
    std::vector<std::uint8_t> payload;
  };

  struct Trunk {
    TrunkProto proto = TrunkProto::Rmp;
    int peer = -1;
    bool connected = false;
    bool failed = false;
    core::Mailbox* rx = nullptr;          // rmp: trunk receive mailbox
    core::MailboxAddr peer_addr{};        // rmp: peer's trunk receive mailbox
    proto::TcpConnection* conn = nullptr;  // tcp
    std::vector<std::uint8_t> tcp_stage;   // tcp: partial-frame reassembly

    // Initiator-side wire-id allocation (dense; generation bumps on reuse).
    std::uint32_t next_id = 0;
    std::vector<std::uint16_t> free_ids;
    std::vector<std::uint8_t> gen_of;
    std::vector<ChannelHandle> handle_of;  // wire id -> live handle
    std::uint32_t outbound_live = 0;

    std::vector<RecvChannel> inbound;  // indexed by peer's wire id
    std::uint32_t inbound_live = 0;

    std::array<std::deque<ChannelHandle>, kClasses> ready;
    std::deque<FrameHeader> control;  // OPEN/ACK/NAK/CLOSE_ACK/CREDIT/RESET
    core::Thread* pumper = nullptr;
    bool pumper_idle = false;

    bool watchdog_set = false;
    std::uint64_t acked_msgs = 0;       // rmp: trunk messages acknowledged
    std::uint64_t progress_marker = 0;  // watchdog snapshot
    int stuck_ticks = 0;

    std::uint64_t tx_msgs = 0;
    std::uint64_t tx_bytes = 0;
    std::uint64_t tx_frames = 0;
    std::uint64_t tx_fast = 0;  // single-frame sends via the Rmp prefix path
    std::uint64_t rx_frames = 0;
    std::uint64_t credit_stalls = 0;
  };

  Trunk& trunk_at(int i) { return *trunks_.at(static_cast<std::size_t>(i)); }
  const Trunk& trunk_at(int i) const { return *trunks_.at(static_cast<std::size_t>(i)); }
  SendChannel& chan(ChannelHandle h) { return channels_.at(h); }
  const SendChannel& chan(ChannelHandle h) const { return channels_.at(h); }

  void start_trunk_threads(int trunk);
  void pump_loop(int trunk);
  void reader_loop(int trunk);
  bool trunk_has_work(const Trunk& t) const;
  void wake_pumper(Trunk& t);

  /// Select the next batch under the interrupt mask (scheduler, credit and
  /// seq bookkeeping); emit it outside the mask (charges, staging, send).
  std::vector<PlannedFrame> plan_batch(Trunk& t);
  void emit_batch(int trunk);
  bool channel_ready(const SendChannel& c) const;
  void enqueue_ready(Trunk& t, ChannelHandle h);
  void queue_control(Trunk& t, const FrameHeader& h);

  void handle_frames(int trunk, std::span<const std::uint8_t> bytes);
  void handle_frame(int trunk, const FrameHeader& h, std::span<const std::uint8_t> payload);
  void handle_open(int trunk, const FrameHeader& h);
  void handle_data(int trunk, const FrameHeader& h, std::span<const std::uint8_t> payload);

  void arm_watchdog(int trunk);
  void watchdog_tick(int trunk);
  void fail_trunk(int trunk, const std::string& reason);
  void record_event(const char* kind, std::string detail);
  void release_wire_id(Trunk& t, std::uint16_t id);

  core::CabRuntime& rt_;
  int node_;
  nproto::Rmp* rmp_;
  proto::Tcp* tcp_;
  SessionConfig cfg_;
  core::Mailbox& scratch_;  // stages trunk messages; frees delivered ones

  std::vector<std::unique_ptr<Trunk>> trunks_;
  std::vector<SendChannel> channels_;  // dense; handles are indexes, never reused

  std::uint64_t opened_ = 0;
  std::uint64_t refused_ = 0;
  std::uint64_t closed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_delivered_ = 0;
  std::uint64_t credit_stalls_ = 0;
  std::uint64_t gen_mismatch_drops_ = 0;
  std::uint64_t proto_errors_ = 0;
  std::uint64_t trunk_failures_ = 0;
  std::vector<SessionEvent> events_;
  static constexpr std::size_t kEventCap = 1024;

  // Last member: probes read the trunks and counters above.
  obs::Registration metrics_reg_;
};

}  // namespace nectar::session
