#include "nectarine/marshal.hpp"

#include <gtest/gtest.h>

#include "net/system.hpp"

namespace nectar::nectarine {
namespace {

struct Fixture {
  net::NectarSystem sys{2};

  void run_on_cab(int node, std::function<void(core::CabRuntime&)> body) {
    sys.runtime(node).fork_app("t", [this, node, body = std::move(body)] {
      body(sys.runtime(node));
    });
    sys.engine().run();
  }
};

TEST(Marshal, ScalarRoundTrip) {
  Fixture f;
  f.run_on_cab(0, [](core::CabRuntime& rt) {
    core::Mailbox& mb = rt.create_mailbox("m");
    core::Message m = mb.begin_put(256);
    Marshaller::Encoder enc(rt, m);
    enc.put_u32(0xDEADBEEF).put_i64(-123456789012345LL).put_u32(7);
    core::Message msg = enc.finish();

    Marshaller::Decoder dec(rt, msg);
    EXPECT_EQ(dec.get_u32(), 0xDEADBEEFu);
    EXPECT_EQ(dec.get_i64(), -123456789012345LL);
    EXPECT_EQ(dec.get_u32(), 7u);
    EXPECT_TRUE(dec.done());
    mb.end_put(msg);
    core::Message g = mb.begin_get();
    mb.end_get(g);
  });
}

TEST(Marshal, StringsAndOpaquePadToFourBytes) {
  Fixture f;
  f.run_on_cab(0, [](core::CabRuntime& rt) {
    core::Mailbox& mb = rt.create_mailbox("m");
    core::Message m = mb.begin_put(512);
    Marshaller::Encoder enc(rt, m);
    std::vector<std::uint8_t> blob{1, 2, 3, 4, 5};
    enc.put_string("ab").put_opaque(blob).put_string("");
    EXPECT_EQ(enc.bytes_used() % 4, 0u);  // everything stays aligned
    core::Message msg = enc.finish();

    Marshaller::Decoder dec(rt, msg);
    EXPECT_EQ(dec.get_string(), "ab");
    EXPECT_EQ(dec.get_opaque(), blob);
    EXPECT_EQ(dec.get_string(), "");
    EXPECT_TRUE(dec.done());
    mb.end_put(msg);
    mb.end_get(mb.begin_get());
  });
}

TEST(Marshal, ArraysRoundTrip) {
  Fixture f;
  f.run_on_cab(0, [](core::CabRuntime& rt) {
    core::Mailbox& mb = rt.create_mailbox("m");
    core::Message m = mb.begin_put(512);
    std::vector<std::uint32_t> values{0, 1, 0xFFFFFFFF, 42};
    Marshaller::Encoder enc(rt, m);
    enc.put_array_u32(values);
    core::Message msg = enc.finish();
    Marshaller::Decoder dec(rt, msg);
    EXPECT_EQ(dec.get_array_u32(), values);
    mb.end_put(msg);
    mb.end_get(mb.begin_get());
  });
}

TEST(Marshal, TagMismatchThrows) {
  Fixture f;
  f.run_on_cab(0, [](core::CabRuntime& rt) {
    core::Mailbox& mb = rt.create_mailbox("m");
    core::Message m = mb.begin_put(64);
    Marshaller::Encoder enc(rt, m);
    enc.put_u32(1);
    core::Message msg = enc.finish();
    Marshaller::Decoder dec(rt, msg);
    EXPECT_THROW(dec.get_string(), std::invalid_argument);
    mb.end_put(msg);
    mb.end_get(mb.begin_get());
  });
}

TEST(Marshal, TruncatedMessageThrows) {
  Fixture f;
  f.run_on_cab(0, [](core::CabRuntime& rt) {
    core::Mailbox& mb = rt.create_mailbox("m");
    core::Message m = mb.begin_put(8);  // room for a tag + length only
    Marshaller::Encoder enc(rt, m);
    EXPECT_THROW(enc.put_string("this will not fit"), std::length_error);
    mb.end_put(m);
    mb.end_get(mb.begin_get());
  });
}

TEST(Marshal, MarshaledRpcAcrossTheNetwork) {
  // The §5.3 scenario end to end: marshal arguments on one CAB, ship them
  // with the request-response protocol, unmarshal and execute remotely.
  Fixture f;
  core::Mailbox& svc = f.sys.runtime(1).create_mailbox("sum-svc");
  // Server: sum(array) + offset.
  f.sys.runtime(1).fork_system("server", [&] {
    core::CabRuntime& rt = f.sys.runtime(1);
    core::Message req = svc.begin_get();
    auto info = nproto::ReqResp::parse_request(rt, req);
    core::Message args = nproto::ReqResp::payload_of(req);
    Marshaller::Decoder dec(rt, args);
    std::vector<std::uint32_t> values = dec.get_array_u32();
    std::uint32_t offset = dec.get_u32();
    std::string label = dec.get_string();
    std::uint32_t sum = offset;
    for (auto v : values) sum += v;
    svc.end_get(args);

    core::Message rsp = svc.begin_put(64);
    Marshaller::Encoder enc(rt, rsp);
    enc.put_string(label).put_u32(sum);
    f.sys.stack(1).reqresp.respond(info, enc.finish());
  });
  std::uint32_t got_sum = 0;
  std::string got_label;
  f.sys.runtime(0).fork_app("client", [&] {
    core::CabRuntime& rt = f.sys.runtime(0);
    core::Mailbox& scratch = rt.create_mailbox("scratch");
    core::Message req = scratch.begin_put(256);
    std::vector<std::uint32_t> values{10, 20, 30};
    Marshaller::Encoder enc(rt, req);
    enc.put_array_u32(values).put_u32(5).put_string("total");
    core::Message rsp = f.sys.stack(0).reqresp.call(svc.address(), enc.finish());
    Marshaller::Decoder dec(rt, rsp);
    got_label = dec.get_string();
    got_sum = dec.get_u32();
    scratch.end_get(rsp);
  });
  f.sys.engine().run();
  EXPECT_EQ(got_label, "total");
  EXPECT_EQ(got_sum, 65u);
}

TEST(Marshal, ChargesCpuPerByte) {
  Fixture f;
  sim::SimTime cost = 0;
  f.run_on_cab(0, [&cost](core::CabRuntime& rt) {
    core::Mailbox& mb = rt.create_mailbox("m");
    core::Message m = mb.begin_put(8192);
    std::vector<std::uint8_t> blob(4096, 0xAA);
    sim::SimTime t0 = rt.engine().now();
    Marshaller::Encoder enc(rt, m);
    enc.put_opaque(blob);
    cost = rt.engine().now() - t0;
    mb.end_put(enc.finish());
    mb.end_get(mb.begin_get());
  });
  // ~180 ns/byte over 4 KB: marshaling is real CPU work (§5.3's motivation).
  EXPECT_GE(cost, sim::usec(700));
}

}  // namespace
}  // namespace nectar::nectarine
