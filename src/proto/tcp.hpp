#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "proto/ip.hpp"

namespace nectar::proto {

class Tcp;

/// A persistent listening socket (see Tcp::open_listener): every SYN to its
/// port spawns a new connection, queued for Tcp::accept().
struct TcpListener {
  std::uint16_t port = 0;
  bool open = false;
  std::deque<class TcpConnection*> ready;  // established, not yet accepted
  std::uint64_t accepted = 0;
};

/// One point-in-time observation of a connection's transmission state,
/// recorded when timeline capture is on (Tcp::set_record_timeline). Samples
/// are taken at the state transitions that matter for post-mortem analysis:
/// connection establishment, every ACK that advances snd_una, retransmission
/// timeouts, and fast retransmits.
struct TcpTimelineSample {
  sim::SimTime t = 0;
  const char* event = "";      // "established" | "ack" | "rto" | "fast_retx"
  std::uint32_t cwnd = 0;
  std::uint32_t ssthresh = 0;
  sim::SimTime srtt = 0;
  sim::SimTime rto = 0;
  std::uint32_t snd_una = 0;
  std::uint32_t snd_nxt = 0;
  std::uint32_t rcv_nxt = 0;
};

/// One TCP connection endpoint.
///
/// Structured like the paper's implementation (§4.2): all input processing
/// runs in the TCP input thread (never at interrupt time, so shared state is
/// protected by thread-level mutual exclusion rather than interrupt
/// masking); senders either place requests in the send-request mailbox
/// (serviced by the TCP send thread) or, if CAB-resident, call send()
/// directly. Received payload is handed to the user by deleting the headers
/// (zero-copy adjust) and enqueueing into the connection's receive mailbox.
class TcpConnection {
 public:
  enum class State : std::uint8_t {
    Closed,
    Listen,
    SynSent,
    SynRcvd,
    Established,
    FinWait1,
    FinWait2,
    CloseWait,
    Closing,
    LastAck,
    TimeWait,
  };

  State state() const { return state_; }
  std::uint32_t id() const { return id_; }
  std::uint16_t local_port() const { return local_port_; }
  std::uint16_t remote_port() const { return remote_port_; }
  IpAddr remote_addr() const { return remote_addr_; }

  /// User-visible stream: payload messages appear here in order. A
  /// zero-length message marks end-of-stream (peer sent FIN).
  core::Mailbox& receive_mailbox() { return *receive_; }

  bool established() const { return state_ == State::Established; }
  bool closed() const { return state_ == State::Closed; }
  bool remote_closed() const { return remote_closed_; }
  bool reset() const { return was_reset_; }

  /// Bytes queued for transmission but not yet acknowledged.
  std::uint32_t unacked_bytes() const { return snd_end_ - snd_una_; }
  std::uint32_t peer_window() const { return snd_wnd_; }
  std::uint64_t retransmissions() const { return retransmissions_; }
  std::uint64_t fast_retransmits() const { return fast_retx_; }
  sim::SimTime srtt() const { return srtt_; }
  /// Congestion window (meaningful when congestion control is enabled).
  std::uint32_t cwnd() const { return cwnd_; }
  std::uint32_t ssthresh() const { return ssthresh_; }

  /// Recorded state samples (empty unless Tcp::set_record_timeline(true)).
  const std::vector<TcpTimelineSample>& timeline() const { return timeline_; }

 private:
  friend class Tcp;

  struct SendItem {
    core::Message msg;
    std::uint32_t seq_lo;  // sequence number of msg byte 0
    bool free_when_acked;
    obs::TraceContext ctx{};  // causal trace the queued data belongs to
  };

  Tcp* tcp_ = nullptr;
  std::uint32_t id_ = 0;
  State state_ = State::Closed;
  std::uint16_t local_port_ = 0;
  std::uint16_t remote_port_ = 0;
  IpAddr remote_addr_ = 0;
  core::Mailbox* receive_ = nullptr;

  // Send sequence space (RFC 793 names).
  std::uint32_t iss_ = 0;
  std::uint32_t snd_una_ = 0;
  std::uint32_t snd_nxt_ = 0;
  std::uint32_t snd_end_ = 0;  // sequence number just past all queued data
  std::uint32_t snd_wnd_ = 0;  // peer's advertised window
  bool fin_queued_ = false;
  bool fin_sent_ = false;
  std::deque<SendItem> send_queue_;

  // Receive sequence space.
  std::uint32_t irs_ = 0;
  std::uint32_t rcv_nxt_ = 0;
  std::map<std::uint32_t, core::Message> out_of_order_;  // seq -> payload msg

  // Retransmission (Jacobson/Karn).
  sim::SimTime srtt_ = 0;
  sim::SimTime rttvar_ = 0;
  sim::SimTime rto_;
  core::Cpu::TimerId retx_timer_ = 0;
  bool retx_timer_set_ = false;
  std::map<std::uint32_t, sim::SimTime> rtt_samples_;  // seq_end -> send time
  std::uint64_t retransmissions_ = 0;

  // Congestion control (extension; see TcpConfig::congestion_control).
  std::uint32_t cwnd_ = 0;
  std::uint32_t ssthresh_ = 0;
  int dup_acks_ = 0;
  std::uint64_t fast_retx_ = 0;

  bool remote_closed_ = false;
  bool was_reset_ = false;
  TcpListener* spawned_by_ = nullptr;  // queued there on ESTABLISHED
  core::Cpu::TimerId time_wait_timer_ = 0;

  // Window-update bookkeeping (receiver side).
  std::uint16_t last_advertised_wnd_ = 0;
  bool wnd_update_pending_ = false;

  std::vector<TcpTimelineSample> timeline_;  // bounded, see kTimelineCap
};

/// Configuration: `software_checksum` toggles the per-byte checksum work
/// whose cost dominates the TCP-vs-RMP gap in Fig. 7 ("TCP w/o checksum").
struct TcpConfig {
  bool software_checksum = true;
  /// EXTENSION (not in the 1990 stack; off by default to keep the paper's
  /// calibration): Van Jacobson congestion control — slow start, congestion
  /// avoidance, and fast retransmit after three duplicate ACKs. Matters on
  /// lossy or congested paths; a quiet Nectar LAN never notices it.
  bool congestion_control = false;
  /// BSD-era default socket buffering (4.3BSD shipped 4 KB; tuned Nectar-era
  /// stacks ran 8-16 KB). This is what keeps even checksum-free TCP slightly
  /// below RMP in Fig. 7 — the window, not the wire, is the ceiling.
  std::uint32_t receive_window = 64 * 1024 - 1;
  sim::SimTime min_rto = sim::usec(500);
  /// Conservative before the first RTT sample (checksumming a 9 KB segment
  /// alone takes ~1.4 ms of CAB CPU); adapts down once samples arrive.
  sim::SimTime initial_rto = sim::msec(50);
  sim::SimTime max_rto = sim::msec(500);
  sim::SimTime time_wait = sim::msec(10);  ///< 2*MSL scaled to simulation RTTs
};

/// TCP on the CAB (paper §4.2).
class Tcp {
 public:
  using Config = TcpConfig;

  explicit Tcp(Ip& ip, Config config = Config{});

  Tcp(const Tcp&) = delete;
  Tcp& operator=(const Tcp&) = delete;

  core::CabRuntime& runtime() { return ip_.runtime(); }
  const Config& config() const { return config_; }
  void set_software_checksum(bool on) { config_.software_checksum = on; }

  // --- user interface -------------------------------------------------------

  /// Active open; returns immediately in SYN_SENT. Use wait_established().
  TcpConnection* connect(std::uint16_t local_port, IpAddr dst, std::uint16_t dst_port);

  /// Passive open: the next SYN to `port` completes the handshake.
  /// (Single-shot, as the paper's measurement programs used; a long-lived
  /// server accepting many clients uses open_listener/accept.)
  TcpConnection* listen(std::uint16_t port);

  /// Open a persistent listener on `port`.
  TcpListener* open_listener(std::uint16_t port);
  /// Block until a connection is established on `l`; returns it.
  TcpConnection* accept(TcpListener* l);
  /// Stop accepting: further SYNs to the port are refused with RST.
  void close_listener(TcpListener* l);

  /// Block the calling thread until the connection leaves the opening
  /// states. Returns true if it reached ESTABLISHED.
  bool wait_established(TcpConnection* c);

  /// Queue `data` on the connection; transmitted under the sliding window,
  /// segmented to the MSS. The message is freed when fully acknowledged if
  /// `free_when_acked`. Callable from any CAB thread (§4.2: "CAB-resident
  /// senders can do this directly without involving the TCP send thread").
  /// `tctx`, when valid, attributes the queued data (every segment carrying
  /// it, including retransmissions) to that causal trace.
  void send(TcpConnection* c, core::Message data, bool free_when_acked = true,
            obs::TraceContext tctx = {});

  /// Graceful close (FIN after all queued data).
  void close(TcpConnection* c);

  /// Block until all queued data is acknowledged.
  void wait_drained(TcpConnection* c);

  /// Block until fewer than `max_unacked` bytes are queued-but-unacked —
  /// how a well-behaved bulk sender paces itself against CAB buffer memory.
  void wait_send_window(TcpConnection* c, std::uint32_t max_unacked);

  /// The send-request mailbox (§4.2): each message is a 12-byte request
  /// header (connection id, flags, external address+length) optionally
  /// followed by inline payload; the TCP send thread services it.
  core::Mailbox& send_request_mailbox() { return send_req_; }
  static constexpr std::uint32_t kSendReqInline = 1;  ///< payload follows the header

  TcpConnection* find(std::uint32_t id);

  // --- stats -------------------------------------------------------------------

  std::uint64_t segments_sent() const { return segs_sent_; }
  std::uint64_t segments_received() const { return segs_rcvd_; }
  std::uint64_t bad_checksums() const { return bad_checksum_; }
  std::uint64_t resets_sent() const { return rst_sent_; }
  std::size_t mss() const { return mss_; }

  // --- timelines ---------------------------------------------------------------

  /// Record per-connection state samples (cwnd/ssthresh/srtt/rto/seq points)
  /// at establishment, new ACKs, RTOs, and fast retransmits. Off by default:
  /// recording costs host memory only (never simulated time) but is bounded
  /// at kTimelineCap samples per connection.
  void set_record_timeline(bool on) { record_timeline_ = on; }
  bool record_timeline() const { return record_timeline_; }
  static constexpr std::size_t kTimelineCap = 4096;

  /// All connections ever created (including closed ones), for reporting.
  const std::map<std::uint32_t, std::unique_ptr<TcpConnection>>& connections() const {
    return connections_;
  }

 private:
  friend class TcpConnection;

  void input_loop();
  void send_request_loop();
  void process_segment(core::Message m);

  /// Timers fire at interrupt level but must not touch TCP state (§4.2: TCP
  /// state is protected by thread-level mutual exclusion, not interrupt
  /// masking) — so a timer just drops a small marker message into the input
  /// mailbox and the input thread does the work under the lock.
  void post_timer_marker(std::uint32_t conn_id, std::uint32_t kind);
  void handle_timer_marker(std::uint32_t conn_id, std::uint32_t kind);
  static constexpr std::uint32_t kTimerRetransmit = 1;
  static constexpr std::uint32_t kTimerTimeWait = 2;
  /// Not a timer: posted when the user consumed receive buffering and the
  /// reopened window should be announced with a pure ACK (window update).
  static constexpr std::uint32_t kWindowUpdate = 3;

  TcpConnection* make_connection(std::uint16_t local_port);
  TcpConnection* lookup(IpAddr raddr, std::uint16_t rport, std::uint16_t lport);
  void destroy(TcpConnection* c);

  // Segment transmission.
  void emit(TcpConnection* c, std::uint8_t flags, std::uint32_t seq, hw::CabAddr payload,
            std::size_t len, obs::TraceContext tctx = {});
  void send_rst(IpAddr dst, std::uint16_t dst_port, std::uint16_t src_port, std::uint32_t seq,
                std::uint32_t ack, bool with_ack);
  void try_transmit(TcpConnection* c);
  void maybe_send_fin(TcpConnection* c);
  std::uint16_t advertised_window(TcpConnection* c) const;

  // Congestion control helpers (no-ops unless enabled).
  std::uint32_t effective_window(TcpConnection* c) const;
  void cc_init(TcpConnection* c);
  void cc_on_new_ack(TcpConnection* c, std::uint32_t acked_bytes);
  void cc_on_loss(TcpConnection* c, bool fast);
  void retransmit_head(TcpConnection* c);

  // Timers.
  void arm_retransmit(TcpConnection* c);
  void cancel_retransmit(TcpConnection* c);
  void on_retransmit_timeout(std::uint32_t conn_id);
  void rtt_sample(TcpConnection* c, sim::SimTime rtt);

  // Input-side helpers.
  void handle_ack(TcpConnection* c, const TcpHeader& th);
  void deliver_payload(TcpConnection* c, core::Message payload, std::uint32_t seq);
  void drain_out_of_order(TcpConnection* c);
  void enter_established(TcpConnection* c);
  void enter_time_wait(TcpConnection* c);
  void timeline_sample(TcpConnection* c, const char* event);
  void wake_state_waiters(TcpConnection* c);
  void deliver_eof(TcpConnection* c);

  Ip& ip_;
  Config config_;
  /// §4.2: "This allows shared data structures to be protected with mutual
  /// exclusion locks rather than by disabling interrupts." Guards all
  /// connection state; taken by user calls and the input thread alike.
  core::Mutex lock_;
  core::CondVar state_cv_;  ///< broadcast on any connection state change
  core::Mailbox& input_;
  core::Mailbox& send_req_;
  std::size_t mss_;
  std::map<std::uint32_t, std::unique_ptr<TcpConnection>> connections_;
  std::map<std::uint16_t, std::unique_ptr<TcpListener>> listeners_;
  std::uint32_t next_conn_id_ = 1;
  std::uint32_t next_iss_ = 1000;

  std::uint64_t segs_sent_ = 0;
  std::uint64_t segs_rcvd_ = 0;
  std::uint64_t bad_checksum_ = 0;
  std::uint64_t rst_sent_ = 0;
  bool record_timeline_ = false;

  // Last member: probes read the counters above, so they must unhook first.
  obs::Registration metrics_reg_;
};

}  // namespace nectar::proto
