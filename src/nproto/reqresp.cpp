#include "nproto/reqresp.hpp"

#include <stdexcept>

#include "core/cpu.hpp"
#include "obs/causal.hpp"
#include "obs/profiler.hpp"
#include "sim/costs.hpp"

namespace nectar::nproto {

namespace costs = sim::costs;

ReqResp::ReqResp(proto::Datalink& dl)
    : dl_(dl),
      input_(dl.runtime().create_mailbox("reqresp-input")),
      metrics_reg_(dl.runtime().metrics()) {
  dl_.register_client(proto::PacketType::ReqResp, this);

  int node = dl_.node_id();
  metrics_reg_.probe(node, "reqresp", "calls_sent",
                     [this] { return static_cast<std::int64_t>(calls_); });
  metrics_reg_.probe(node, "reqresp", "requests_delivered",
                     [this] { return static_cast<std::int64_t>(requests_delivered_); });
  metrics_reg_.probe(node, "reqresp", "responses_sent",
                     [this] { return static_cast<std::int64_t>(responses_sent_); });
  metrics_reg_.probe(node, "reqresp", "retries",
                     [this] { return static_cast<std::int64_t>(retries_); });
  metrics_reg_.probe(node, "reqresp", "duplicate_requests",
                     [this] { return static_cast<std::int64_t>(dup_requests_); });
}

ReqResp::RequestInfo ReqResp::parse_request(core::CabRuntime& rt, const core::Message& m) {
  proto::NectarHeader h =
      proto::NectarHeader::parse(rt.board().memory().view(m.data, proto::NectarHeader::kSize));
  RequestInfo info;
  info.client_node = h.src_node;
  info.reply_mailbox = h.src_mailbox;
  info.xid = h.seq;
  return info;
}

core::Message ReqResp::payload_of(core::Message m) {
  return core::Mailbox::adjust_prefix(m, proto::NectarHeader::kSize);
}

void ReqResp::transmit_request(std::uint16_t xid) {
  OutstandingCall& oc = calls_out_.at(xid);
  proto::NectarHeader h;
  h.dst_mailbox = oc.dst_mailbox;
  h.src_mailbox = 0;
  h.src_node = static_cast<std::uint8_t>(dl_.node_id());
  h.flags = kFlagRequest;
  h.seq = xid;
  h.length = static_cast<std::uint16_t>(oc.req_len);
  proto::HeaderBufLease hdr = proto::HeaderBufLease::acquire();
  h.serialize(hdr->push_front(proto::NectarHeader::kSize));
  dl_.send(proto::PacketType::ReqResp, oc.dst_node, std::move(hdr), oc.req_payload, oc.req_len, {},
           oc.ctx);

  core::Cpu& cpu = runtime().cpu();
  if (oc.timer_set) cpu.cancel_timer(oc.timer);
  oc.timer_set = true;
  oc.timer = cpu.set_timer(runtime().engine().now() + kRetryInterval,
                           [this, xid] { on_call_timeout(xid); });
}

void ReqResp::on_call_timeout(std::uint16_t xid) {
  auto it = calls_out_.find(xid);
  if (it == calls_out_.end() || it->second.done) return;
  OutstandingCall& oc = it->second;
  if (!oc.timer_set) return;
  oc.timer_set = false;
  if (--oc.retries_left <= 0) {
    oc.failed = true;
    oc.done = true;
    if (oc.waiter != nullptr) oc.waiter->cpu().wake(oc.waiter);
    return;
  }
  ++retries_;
  if (oc.ctx.valid()) {
    if (auto* ct = obs::CausalTracer::active()) {
      ct->annotate(oc.ctx, "rpc.retry");
      ct->stage(oc.ctx, "tx.rpc", "node" + std::to_string(dl_.node_id()));
    }
  }
  transmit_request(xid);
}

core::Message ReqResp::call(core::MailboxAddr dst, core::Message request, bool free_request,
                            obs::TraceContext tctx) {
  core::Cpu& cpu = runtime().cpu();
  obs::CostScope scope("reqresp/call");
  cpu.charge(costs::kNectarProtoSend);
  runtime().trace_mark("reqresp.call");
  if (tctx.valid()) {
    if (auto* ct = obs::CausalTracer::active()) {
      ct->stage(tctx, "tx.rpc", "node" + std::to_string(dl_.node_id()));
    }
  }

  core::InterruptGuard g(cpu);
  std::uint16_t xid = next_xid_++;
  OutstandingCall& oc = calls_out_[xid];
  oc.waiter = cpu.current_thread();
  oc.req_payload = request.data;
  oc.req_len = request.len;
  oc.dst_mailbox = dst.index;
  oc.dst_node = dst.node;
  oc.ctx = tctx;
  ++calls_;
  transmit_request(xid);

  while (!oc.done) cpu.block_unmasked();

  // The request buffer stayed alive for retransmissions; release it now.
  if (free_request) input_.end_get(request);
  bool failed = oc.failed;
  core::Message response = oc.response;
  if (oc.timer_set) cpu.cancel_timer(oc.timer);
  calls_out_.erase(xid);
  if (failed) throw std::runtime_error("ReqResp::call: no response after retries");
  runtime().trace_mark("reqresp.return");
  return response;
}

void ReqResp::transmit_response(int client_node, std::uint16_t xid, std::uint32_t reply_mailbox,
                                const core::Message& reply, obs::TraceContext tctx) {
  proto::NectarHeader h;
  h.dst_mailbox = reply_mailbox;
  h.src_node = static_cast<std::uint8_t>(dl_.node_id());
  h.flags = kFlagResponse;
  h.seq = xid;
  h.length = static_cast<std::uint16_t>(reply.len);
  proto::HeaderBufLease hdr = proto::HeaderBufLease::acquire();
  h.serialize(hdr->push_front(proto::NectarHeader::kSize));
  ++responses_sent_;
  dl_.send(proto::PacketType::ReqResp, client_node, std::move(hdr), reply.data, reply.len, {},
           tctx);
}

void ReqResp::respond(const RequestInfo& info, core::Message reply) {
  core::Cpu& cpu = runtime().cpu();
  obs::CostScope scope("reqresp/respond");
  cpu.charge(costs::kNectarProtoSend);
  core::InterruptGuard g(cpu);
  ServerCache& sc = server_cache_[info.client_node];
  if (sc.have_response) input_.end_get(sc.response);  // drop the stale cached reply
  sc.response = reply;
  sc.have_response = true;
  sc.in_progress = false;
  sc.reply_mailbox = info.reply_mailbox;
  if (sc.ctx.valid()) {
    if (auto* ct = obs::CausalTracer::active()) {
      ct->stage(sc.ctx, "tx.rpc", "node" + std::to_string(dl_.node_id()));
    }
  }
  transmit_response(info.client_node, info.xid, info.reply_mailbox, reply, sc.ctx);
}

void ReqResp::end_of_data(core::Message m, std::uint8_t src_node) {
  core::Cpu& cpu = runtime().cpu();
  obs::CostScope scope("reqresp/recv");
  cpu.charge(costs::kNectarProtoRecv);
  obs::CausalTracer* ct = obs::CausalTracer::active();
  obs::TraceContext rctx = ct != nullptr ? ct->rx_context() : obs::TraceContext{};
  if (ct != nullptr && rctx.valid()) {
    ct->stage(rctx, "rx.rpc", "node" + std::to_string(dl_.node_id()));
  }
  if (m.len < proto::NectarHeader::kSize) {
    input_.end_get(m);
    return;
  }
  proto::NectarHeader h = proto::NectarHeader::parse(
      runtime().board().memory().view(m.data, proto::NectarHeader::kSize));

  if (h.flags == kFlagResponse) {
    auto it = calls_out_.find(h.seq);
    if (it == calls_out_.end() || it->second.done) {
      input_.end_get(m);  // response for a finished/unknown call
      return;
    }
    OutstandingCall& oc = it->second;
    if (oc.timer_set) {
      cpu.cancel_timer(oc.timer);
      oc.timer_set = false;
    }
    oc.response = core::Mailbox::adjust_prefix(m, proto::NectarHeader::kSize);
    oc.done = true;
    // The caller is still blocked; the time until it runs again is a
    // scheduling wait, same as a mailbox dequeue.
    if (ct != nullptr && rctx.valid()) {
      ct->stage(rctx, "mbox.wait", "node" + std::to_string(dl_.node_id()));
    }
    if (oc.waiter != nullptr) oc.waiter->cpu().wake(oc.waiter);
    return;
  }

  // Request path.
  ServerCache& sc = server_cache_[src_node];
  if (sc.last_xid == h.seq && (sc.have_response || sc.in_progress)) {
    // Duplicate (response or execution in flight): at-most-once semantics.
    ++dup_requests_;
    input_.end_get(m);
    if (sc.have_response) transmit_response(src_node, h.seq, sc.reply_mailbox, sc.response);
    return;
  }
  // New request: retire the previous cached response.
  if (sc.have_response) {
    input_.end_get(sc.response);
    sc.have_response = false;
  }
  sc.last_xid = h.seq;
  sc.in_progress = true;
  sc.reply_mailbox = h.src_mailbox;
  sc.ctx = rctx;  // the reply continues the request's trace

  core::Mailbox* service = runtime().find_mailbox(h.dst_mailbox);
  if (service == nullptr) {
    input_.end_get(m);
    sc.in_progress = false;
    return;
  }
  ++requests_delivered_;
  runtime().trace_mark("reqresp.request-delivered");
  if (ct != nullptr && rctx.valid()) {
    ct->stage(rctx, "mbox.wait", "node" + std::to_string(dl_.node_id()));
  }
  // Header kept: the server parses it to address the reply.
  input_.enqueue(m, *service);
}

}  // namespace nectar::nproto
