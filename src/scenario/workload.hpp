#pragma once

// Workload generators: synthetic traffic over the real protocol stacks
// (UDP, TCP, Nectar datagram / RMP / request-response) on every node of a
// scenario topology. Two shapes:
//
//   open    Poisson arrivals at `users * rate` messages/sec per flow — an
//           aggregate of many independent users, offered regardless of
//           whether the network keeps up. Senders shed (count, don't block)
//           when back-pressure guards trip, so an overloaded run measures
//           loss instead of deadlocking the generator.
//   closed  `users` concurrent user threads per flow, each looping
//           send -> wait-for-completion -> exponential think time. Load is
//           self-limiting, the classic interactive-terminal model.
//
// Flows pair node i with node (i + stride) % N. Every message carries a
// 16-byte header [u32 src-node][u32 seq][u64 send-time-ns]; the receiver
// computes one-way delay from the global simulation clock into the
// workload's log-bucketed latency histogram (request-response measures
// client-side round-trip instead). All randomness (sizes, interarrivals,
// think times) derives from the scenario master seed and the flow/user
// name, so a run is exactly reproducible.

#include <cstdint>
#include <string>
#include <vector>

#include "net/system.hpp"
#include "obs/causal.hpp"
#include "obs/latency.hpp"
#include "obs/metrics.hpp"
#include "sim/random.hpp"

namespace nectar::scenario {

enum class Proto { Udp, Tcp, Datagram, Rmp, ReqResp };
enum class Mode { Open, Closed };

struct WorkloadSpec {
  std::string name = "wl";
  Proto proto = Proto::Udp;
  Mode mode = Mode::Closed;
  int users = 1;                  ///< users per flow (open: rate multiplier)
  double rate = 100.0;            ///< open: messages/sec per user
  sim::SimTime think = 0;         ///< closed: mean think time between sends
  std::uint32_t size_min = 64;    ///< payload bytes, uniform in [min, max]
  std::uint32_t size_max = 64;
  int stride = 1;                 ///< node i sends to (i + stride) % N
  sim::SimTime start = 0;         ///< when the generators begin
  std::uint16_t port = 0;         ///< UDP/TCP port (0: engine auto-assigns)

  static Proto parse_proto(const std::string& name);  // "udp" | "tcp" | ...
  static Mode parse_mode(const std::string& name);    // "open" | "closed"
  static const char* proto_name(Proto p);
};

/// Per-flow counters. `shed` counts offered messages the open-loop
/// generator discarded at the source because a back-pressure guard tripped
/// (TCP unacked bytes, RMP queue depth, buffer heap exhaustion, or an RPC
/// still outstanding); `errors` counts failed RPCs and refused connections.
struct FlowStats {
  int src = -1;
  int dst = -1;
  std::uint64_t sent = 0;
  std::uint64_t sent_bytes = 0;
  std::uint64_t delivered = 0;
  std::uint64_t delivered_bytes = 0;
  std::uint64_t shed = 0;
  std::uint64_t errors = 0;
  obs::LatencyHistogram latency;  ///< per-flow; workload/report views merge()
};

class Workload {
 public:
  /// Embedded measurement header; also the minimum payload size.
  static constexpr std::uint32_t kHeaderBytes = 16;
  /// Open-loop TCP guard: shed while more than this is queued-unacked.
  static constexpr std::uint32_t kTcpShedBytes = 256 * 1024;
  /// Open-loop RMP guard: shed while this many messages are queued.
  static constexpr std::size_t kRmpShedQueue = 64;

  Workload(net::Network& net, std::vector<net::NodeStack*> stacks, WorkloadSpec spec,
           std::uint64_t master_seed);

  Workload(const Workload&) = delete;
  Workload& operator=(const Workload&) = delete;

  /// Create sinks/listeners and fork server + client threads. Call once,
  /// before the simulation runs.
  void install();

  const WorkloadSpec& spec() const { return spec_; }
  const std::vector<FlowStats>& flows() const { return flows_; }
  /// Workload-wide latency view: the per-flow histograms merged. The fixed
  /// bucket layout makes the merge lossless — percentiles of the merged
  /// histogram equal percentiles over the union of samples' buckets.
  obs::LatencyHistogram latency() const;

  std::uint64_t sent() const;
  std::uint64_t delivered() const;
  std::uint64_t delivered_bytes() const;
  std::uint64_t shed() const;
  std::uint64_t errors() const;

  /// Delivered payload megabits per second over `duration`.
  double goodput_mbps(sim::SimTime duration) const;
  /// Jain's fairness index over per-flow delivered bytes (1.0 = equal).
  double fairness() const;

  /// Sums over this workload's TCP connections (0 for other protocols).
  std::uint64_t tcp_retransmissions() const;
  std::uint64_t tcp_fast_retransmits() const;

  /// Report the aggregate flow counters as probes under (node -1,
  /// "workload"), named "<spec name>.sent" / ".delivered" /
  /// ".delivered_bytes" / ".shed" / ".errors". Sampled on a cadence these
  /// give per-interval offered load and goodput; the telemetry layer calls
  /// this when a scenario enables [telemetry].
  void register_metrics(obs::Registration& reg) const;

 private:
  struct Flow {
    int src = -1;
    int dst = -1;
    core::MailboxAddr sink{};               // datagram / rmp / reqresp service
    proto::TcpConnection* conn = nullptr;   // tcp
    bool rpc_outstanding = false;           // open-loop reqresp guard
  };

  net::NodeStack& stack(int node) { return *stacks_[static_cast<std::size_t>(node)]; }
  core::CabRuntime& runtime(int node) { return net_.runtime(node); }

  std::uint64_t flow_seed(std::size_t flow, const char* role, int user) const;
  std::uint32_t pick_size(sim::Random& rng) const;
  sim::SimTime exp_draw(sim::Random& rng, double mean_ns) const;

  /// Stage a message with the measurement header in `scratch`; nullopt when
  /// the buffer heap is exhausted (open-loop shed). When a tracer is active,
  /// `tctx` (if non-null) receives the head-sampling decision for this
  /// message — the trace starts here, at the send instant, with a "tx.app"
  /// stage open.
  std::optional<core::Message> stage(int node, core::Mailbox& scratch, std::size_t flow,
                                     std::uint32_t size, bool blocking,
                                     obs::TraceContext* tctx = nullptr);
  /// Receiver side: read the header of `m` (already payload-adjusted),
  /// observe latency, credit the sending flow. Safe on short/foreign
  /// payloads (ignored).
  void observe_delivery(int node, const core::Message& m);

  void install_servers();
  void install_clients();
  void server_reader_loop(int node, core::Mailbox& mb);
  void udp_server(int node);
  void tcp_server(int node);
  void reqresp_server(int node, core::Mailbox& svc);
  void closed_user_loop(std::size_t flow, int user);
  void open_flow_loop(std::size_t flow);
  bool open_send_once(std::size_t flow, core::Mailbox& scratch, sim::Random& rng);

  net::Network& net_;
  std::vector<net::NodeStack*> stacks_;
  WorkloadSpec spec_;
  std::uint64_t master_seed_;
  std::vector<Flow> flow_defs_;
  std::vector<FlowStats> flows_;
  std::vector<int> flow_of_src_;  // node -> flow index, -1 if none
};

}  // namespace nectar::scenario
