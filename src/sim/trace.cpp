#include "sim/trace.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/tracer.hpp"
#include "sim/engine.hpp"

namespace nectar::sim {

void TraceRecorder::mark(std::string label) {
  if (!enabled_) return;
  if (obs::tracing(sink_)) sink_->instant(sink_track_, label);
  marks_.push_back({std::move(label), engine_.now()});
}

void TraceRecorder::begin(std::string label) {
  if (!enabled_) return;
  if (obs::tracing(sink_)) sink_->begin(sink_track_, label);
  open_.push_back({std::move(label), engine_.now(), 0});
}

void TraceRecorder::end(const std::string& label) {
  if (!enabled_) return;
  auto it = std::find_if(open_.rbegin(), open_.rend(),
                         [&](const Span& s) { return s.label == label; });
  if (it == open_.rend()) throw std::logic_error("TraceRecorder::end: no open span " + label);
  Span s = *it;
  open_.erase(std::next(it).base());
  s.end = engine_.now();
  if (obs::tracing(sink_)) sink_->end(sink_track_, label);
  spans_.push_back(std::move(s));
}

SimTime TraceRecorder::mark_time(const std::string& label) const {
  for (const Mark& m : marks_) {
    if (m.label == label) return m.time;
  }
  return -1;
}

SimTime TraceRecorder::span_total(const std::string& label) const {
  SimTime total = 0;
  for (const Span& s : spans_) {
    if (s.label == label) total += s.duration();
  }
  return total;
}

void TraceRecorder::clear() {
  marks_.clear();
  spans_.clear();
  open_.clear();
}

}  // namespace nectar::sim
