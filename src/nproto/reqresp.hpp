#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "core/mailbox.hpp"
#include "proto/datalink.hpp"
#include "proto/headers.hpp"

namespace nectar::nproto {

/// Nectar request-response protocol (paper §4): "the request-response
/// protocol provides the transport mechanism for client-server RPC calls."
///
/// Client side: call() sends a request carrying a transaction id and blocks
/// until the matching response arrives, retransmitting the request on
/// timeout. Server side: requests are enqueued into a registered service
/// mailbox; respond() sends the reply back. At-most-once execution: the
/// server caches the last response per client and replays it for duplicate
/// requests instead of re-executing.
///
/// Discipline: the duplicate cache is keyed by client *node*, so the
/// supported usage is one outstanding call per client-node/server pair —
/// issue calls sequentially from any one node (multiple client threads on a
/// node must serialize their calls to the same server).
class ReqResp : public proto::DatalinkClient {
 public:
  static constexpr sim::SimTime kRetryInterval = sim::msec(5);
  static constexpr int kMaxRetries = 8;

  explicit ReqResp(proto::Datalink& dl);

  ReqResp(const ReqResp&) = delete;
  ReqResp& operator=(const ReqResp&) = delete;

  core::CabRuntime& runtime() { return dl_.runtime(); }

  // --- client side --------------------------------------------------------------

  /// Synchronous RPC: send `request` to the service mailbox `dst`, block the
  /// calling thread until the response arrives, and return it. The caller
  /// owns the returned message (end_get it on a local mailbox when done).
  /// Throws std::runtime_error after kMaxRetries timeouts.
  core::Message call(core::MailboxAddr dst, core::Message request,
                     bool free_request_when_sent = true, obs::TraceContext tctx = {});

  // --- server side -----------------------------------------------------------------

  /// Requests addressed to `service` (a local mailbox registered with the
  /// runtime) are delivered there with their protocol header *kept* so the
  /// server can address the reply.
  struct RequestInfo {
    int client_node = -1;
    std::uint32_t reply_mailbox = 0;  // client-side rendezvous id
    std::uint16_t xid = 0;
  };
  static RequestInfo parse_request(core::CabRuntime& rt, const core::Message& m);
  /// The request payload, header stripped in place.
  static core::Message payload_of(core::Message m);

  /// Send `reply` for the request described by `info`. The reply data area
  /// is retained by the protocol for duplicate-replay and freed when a newer
  /// request from the same client arrives.
  void respond(const RequestInfo& info, core::Message reply);

  // --- DatalinkClient ------------------------------------------------------------------

  std::size_t header_bytes() const override { return proto::NectarHeader::kSize; }
  core::Mailbox& input_mailbox() override { return input_; }
  void end_of_data(core::Message m, std::uint8_t src_node) override;

  // --- stats --------------------------------------------------------------------------------

  std::uint64_t calls_sent() const { return calls_; }
  std::uint64_t requests_delivered() const { return requests_delivered_; }
  std::uint64_t responses_sent() const { return responses_sent_; }
  std::uint64_t retries() const { return retries_; }
  std::uint64_t duplicate_requests() const { return dup_requests_; }

 private:
  static constexpr std::uint8_t kFlagRequest = 0;
  static constexpr std::uint8_t kFlagResponse = 1;

  struct OutstandingCall {
    core::Thread* waiter = nullptr;
    bool done = false;
    bool failed = false;
    core::Message response{};
    hw::CabAddr req_payload = 0;
    std::size_t req_len = 0;
    std::uint32_t dst_mailbox = 0;
    int dst_node = -1;
    int retries_left = kMaxRetries;
    core::Cpu::TimerId timer = 0;
    bool timer_set = false;
    obs::TraceContext ctx{};  // causal trace the call belongs to
  };

  struct ServerCache {
    std::uint16_t last_xid = 0;
    bool have_response = false;
    core::Message response{};        // retained for duplicate replay
    std::uint32_t reply_mailbox = 0;
    bool in_progress = false;        // request delivered, respond() pending
    obs::TraceContext ctx{};         // the request's causal trace (reply continues it)
  };

  void transmit_request(std::uint16_t xid);
  void on_call_timeout(std::uint16_t xid);
  void transmit_response(int client_node, std::uint16_t xid, std::uint32_t reply_mailbox,
                         const core::Message& reply, obs::TraceContext tctx = {});

  proto::Datalink& dl_;
  core::Mailbox& input_;
  std::map<std::uint16_t, OutstandingCall> calls_out_;
  std::uint16_t next_xid_ = 1;
  std::map<int, ServerCache> server_cache_;  // keyed by client node

  std::uint64_t calls_ = 0;
  std::uint64_t requests_delivered_ = 0;
  std::uint64_t responses_sent_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t dup_requests_ = 0;

  // Last member: probes read the counters above, so they must unhook first.
  obs::Registration metrics_reg_;
};

}  // namespace nectar::nproto
