#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/costs.hpp"
#include "sim/engine.hpp"

namespace nectar::obs {
class Tracer;
class Registration;
class Profiler;
}

namespace nectar::hw {

/// VME backplane connecting a host to its CAB (paper §2.2, §6).
///
/// Two transfer modes, both contending for the same bus:
///  - programmed word accesses (~1 us per 32-bit read/write, §6.1) — how the
///    host manipulates shared data structures in CAB memory;
///  - block DMA (~30 Mbit/s, §6.3) — how bulk message data crosses.
///
/// The bus is a serially-reusable resource: requests are granted in arrival
/// order (arrival time, then FIFO).
class VmeBus {
 public:
  explicit VmeBus(sim::Engine& engine, std::string name = "vme",
                  sim::SimTime word_access = sim::costs::kVmeWordAccess,
                  double dma_bits_per_sec = sim::costs::kVmeDmaBitsPerSec)
      : engine_(engine), name_(std::move(name)), word_access_(word_access), dma_rate_(dma_bits_per_sec) {}

  /// Reserve the bus for `words` programmed accesses starting no earlier
  /// than now. Returns the completion time; the caller (a simulated CPU)
  /// must stall until then.
  sim::SimTime programmed_access(std::size_t words);

  /// Time to programmatically move `bytes` via word accesses.
  sim::SimTime programmed_bytes(std::size_t bytes) {
    return programmed_access((bytes + sim::costs::kVmeWordBytes - 1) / sim::costs::kVmeWordBytes);
  }

  /// Reserve the bus for a block DMA of `bytes`; `done` fires at completion.
  void dma_transfer(std::size_t bytes, std::function<void()> done);

  /// Fault injection: occupy the bus for `duration` starting now (a
  /// misbehaving third board holding the backplane). Every pending and
  /// subsequent grant — PIO and DMA alike — is pushed past the window.
  void stall_for(sim::SimTime duration);

  /// When the bus would next be free (for tests / stats).
  sim::SimTime busy_until() const { return busy_until_; }
  std::uint64_t words_transferred() const { return words_; }
  std::uint64_t dma_bytes() const { return dma_bytes_; }
  std::uint64_t dma_transfers() const { return dma_count_; }
  std::uint64_t stalls() const { return stalls_; }
  sim::SimTime stall_time() const { return stall_time_; }

  /// Emit "vme.pio" / "vme.dma" occupancy spans onto `track`. Bus grants are
  /// computed up front, so spans use explicit [start, completion] stamps.
  void attach_tracer(obs::Tracer* tracer, int track);

  /// Record bus occupancy (pio/dma/stall durations) into `profiler` under
  /// this bus's name. Separate from CPU attribution: bus time overlaps CPU
  /// time, so it must not pollute the folded stacks. nullptr detaches.
  void attach_profiler(obs::Profiler* profiler) { profiler_ = profiler; }

  /// Probes under (node, "vme"): words, dma_bytes, dma_transfers.
  void register_metrics(obs::Registration& reg, int node) const;

 private:
  sim::SimTime acquire(sim::SimTime duration);
  void trace_span(const char* label, sim::SimTime start, sim::SimTime end) const;

  sim::Engine& engine_;
  std::string name_;
  sim::SimTime word_access_;
  double dma_rate_;
  sim::SimTime busy_until_ = 0;
  std::uint64_t words_ = 0;
  std::uint64_t dma_bytes_ = 0;
  std::uint64_t dma_count_ = 0;
  std::uint64_t stalls_ = 0;
  sim::SimTime stall_time_ = 0;
  obs::Tracer* tracer_ = nullptr;
  int trace_track_ = -1;
  obs::Profiler* profiler_ = nullptr;
};

}  // namespace nectar::hw
