#include "core/host_signal.hpp"

#include <gtest/gtest.h>

#include "core/cpu.hpp"
#include "core/heap.hpp"
#include "core/priorities.hpp"

namespace nectar::core {
namespace {

struct Fixture {
  sim::Engine engine;
  hw::CabMemory memory;
  Cpu cpu{engine, "cab.cpu"};
  BufferHeap heap{memory};
  HostSignaling sig{cpu, memory, heap};
};

TEST(HostSignal, SignalIncrementsPollWord) {
  Fixture f;
  auto cond = f.sig.alloc_condition();
  EXPECT_EQ(f.sig.poll_value(cond), 0u);
  f.cpu.fork("t", kSystemPriority, [&] {
    f.sig.signal(cond);
    f.sig.signal(cond);
  });
  f.engine.run();
  EXPECT_EQ(f.sig.poll_value(cond), 2u);
  // The poll word is a real word in CAB data memory the host can mmap.
  EXPECT_EQ(f.memory.read32(f.sig.poll_addr(cond)), 2u);
}

TEST(HostSignal, SignalPostsToHostQueueAndInterrupts) {
  Fixture f;
  int host_irqs = 0;
  f.sig.set_host_interrupt([&] { ++host_irqs; });
  auto cond = f.sig.alloc_condition();
  f.cpu.fork("t", kSystemPriority, [&] { f.sig.signal(cond); });
  f.engine.run();
  EXPECT_EQ(host_irqs, 1);
  auto e = f.sig.pop_host_signal();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->opcode, kOpHostCondSignal);
  EXPECT_EQ(e->param, cond);
  EXPECT_FALSE(f.sig.pop_host_signal().has_value());
}

TEST(HostSignal, CabQueueDispatchesRegisteredOpcodes) {
  Fixture f;
  std::uint32_t got_param = 0, got_aux = 0;
  f.sig.register_opcode(42, [&](SignalElement e) {
    got_param = e.param;
    got_aux = e.aux;
  });
  f.sig.post_to_cab({42, 1234, 99});
  f.cpu.post_interrupt([&] { f.sig.drain_cab_queue(); });  // doorbell path
  f.engine.run();
  EXPECT_EQ(got_param, 1234u);
  EXPECT_EQ(got_aux, 99u);
}

TEST(HostSignal, UnregisteredOpcodeFailsLoudly) {
  Fixture f;
  f.sig.post_to_cab({7, 0, 0});
  EXPECT_THROW(f.sig.drain_cab_queue(), std::logic_error);
}

TEST(HostSignal, QueueDrainsInOrder) {
  Fixture f;
  std::vector<std::uint32_t> order;
  f.sig.register_opcode(1, [&](SignalElement e) { order.push_back(e.param); });
  for (std::uint32_t i = 0; i < 5; ++i) f.sig.post_to_cab({1, i, 0});
  f.sig.drain_cab_queue();
  EXPECT_EQ(order, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
}

TEST(HostSignal, FreeConditionReleasesHeapSpace) {
  Fixture f;
  std::size_t before = f.heap.bytes_in_use();
  auto cond = f.sig.alloc_condition();
  EXPECT_GT(f.heap.bytes_in_use(), before);
  f.sig.free_condition(cond);
  EXPECT_EQ(f.heap.bytes_in_use(), before);
  EXPECT_THROW(f.sig.poll_addr(cond), std::logic_error);
}

TEST(HostSignal, SignalFromHostAlsoNotifies) {
  Fixture f;
  int host_irqs = 0;
  f.sig.set_host_interrupt([&] { ++host_irqs; });
  auto cond = f.sig.alloc_condition();
  f.sig.signal_from_host(cond);
  EXPECT_EQ(f.sig.poll_value(cond), 1u);
  EXPECT_EQ(host_irqs, 1);
}

}  // namespace
}  // namespace nectar::core
