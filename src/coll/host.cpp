#include "coll/host.hpp"

#include <algorithm>
#include <stdexcept>

#include "proto/headers.hpp"
#include "sim/costs.hpp"

namespace nectar::coll {

namespace costs = sim::costs;

namespace {
/// Send-request prefix the host writes in front of the collective bytes:
/// where the CAB proxy thread should datagram them.
constexpr std::size_t kTxPrefix = 8;  // dst_node u32 | dst_mailbox u32
}  // namespace

HostCollective::HostCollective(nectarine::HostNectarine& nin,
                               nproto::DatagramProtocol& datagram, GroupSpec spec)
    : nin_(nin), datagram_(datagram), spec_(std::move(spec)) {
  if (spec_.members.empty()) throw std::invalid_argument("coll-host: group has no members");
  int node = datagram_.runtime().node_id();
  my_rank_ = spec_.rank_of(node);
  if (my_rank_ < 0) {
    throw std::invalid_argument("coll-host: node " + std::to_string(node) +
                                " is not a member of group " + std::to_string(spec_.id));
  }
  rx_ = nin_.create_mailbox("coll-host-rx");
  rx_index_ = rx_.mb->address().index;
  tx_ = nin_.attach(datagram_.runtime().create_mailbox("coll-host-tx"));

  // CAB proxy: transmit whatever the host posts. The host cannot run CAB
  // code, so every send crosses the VME bus into this mailbox first.
  core::Mailbox& txmb = *tx_.mb;
  nproto::DatagramProtocol& dg = datagram_;
  datagram_.runtime().fork_system("coll-host-tx" + std::to_string(spec_.id), [&txmb, &dg] {
    hw::CabMemory& mem = dg.runtime().board().memory();
    for (;;) {
      core::Message m = txmb.begin_get();
      if (m.len < kTxPrefix) {
        txmb.end_get(m);
        continue;
      }
      std::span<const std::uint8_t> pre = mem.view(m.data, kTxPrefix);
      core::MailboxAddr dst;
      dst.node = static_cast<std::int32_t>(proto::get32(pre, 0));
      dst.index = proto::get32(pre, 4);
      core::Message body = core::Mailbox::adjust_prefix(m, kTxPrefix);
      dg.send_raw(dst, body.data, body.len, [&txmb, body] { txmb.end_get(body); });
    }
  });
}

HostCollective::SeqState& HostCollective::state(std::uint32_t seq) {
  auto [it, fresh] = pending_.try_emplace(seq);
  if (fresh) it->second.rank_mask.assign((spec_.members.size() + 63) / 64, 0);
  return it->second;
}

void HostCollective::mask_set(std::vector<std::uint64_t>& m, int bit) {
  std::size_t word = static_cast<std::size_t>(bit) / 64;
  if (bit >= 0 && word < m.size()) m[word] |= 1ull << (bit % 64);
}

bool HostCollective::mask_test(const std::vector<std::uint64_t>& m, int bit) {
  std::size_t word = static_cast<std::size_t>(bit) / 64;
  return bit >= 0 && word < m.size() && ((m[word] >> (bit % 64)) & 1) != 0;
}

bool HostCollective::have_all_children(std::uint32_t seq) {
  SeqState& s = state(seq);
  for (int c : spec_.children_of(my_rank_)) {
    if (!mask_test(s.rank_mask, c)) return false;
  }
  return true;
}

void HostCollective::send_to(int dst_rank, MsgKind kind, int round, std::uint64_t value,
                             std::uint8_t rop, std::span<const std::uint8_t> payload) {
  if (dst_rank < 0 || dst_rank >= spec_.size() || dst_rank == my_rank_) return;
  core::Cpu& cpu = nin_.driver().host().cpu();
  cpu.charge(costs::kNectarProtoSend);  // same protocol work, now on the host

  CollHeader h;
  h.group = spec_.id;
  h.epoch = spec_.epoch;
  h.kind = kind;
  h.op = rop;
  h.src_rank = static_cast<std::uint16_t>(my_rank_);
  h.seq = seq_;
  h.round = static_cast<std::uint16_t>(round);
  h.length = static_cast<std::uint16_t>(payload.size());
  h.value = value;

  std::vector<std::uint8_t> bytes(kTxPrefix + CollHeader::kSize + payload.size());
  std::span<std::uint8_t> out(bytes);
  proto::put32(out, 0,
               static_cast<std::uint32_t>(spec_.members[static_cast<std::size_t>(dst_rank)]));
  proto::put32(out, 4, rx_index_);
  h.serialize(out.subspan(kTxPrefix, CollHeader::kSize));
  std::copy(payload.begin(), payload.end(), bytes.begin() + kTxPrefix + CollHeader::kSize);

  // Host -> CAB: mailbox descriptors plus the message bytes, all VME.
  core::Message m = nin_.begin_put(tx_, static_cast<std::uint32_t>(bytes.size()));
  nin_.write_message(m, bytes);
  nin_.end_put(tx_, m);
  ++msgs_sent_;
}

void HostCollective::recv_one() {
  // Driver interrupt + process wakeup to learn of the message, then VME
  // programmed I/O to pull the bytes into host memory — the per-message tax
  // the CAB-resident engine never pays.
  core::Message m = nin_.begin_get_block(rx_);
  std::vector<std::uint8_t> buf(m.len);
  nin_.read_message(m, buf);
  nin_.end_get(rx_, m);
  ++msgs_received_;
  nin_.driver().host().cpu().charge(costs::kNectarProtoRecv);

  if (buf.size() < CollHeader::kSize) return;
  CollHeader h = CollHeader::parse(std::span<const std::uint8_t>(buf).first(CollHeader::kSize));
  if (h.group != spec_.id || h.epoch != spec_.epoch) return;
  if (h.src_rank >= static_cast<std::uint16_t>(spec_.size())) return;
  if (h.seq < seq_) return;  // cannot happen loss-free; drop defensively
  SeqState& s = state(h.seq);
  switch (h.kind) {
    case MsgKind::Arrive:
    case MsgKind::BcastAck:
      mask_set(s.rank_mask, h.src_rank);
      break;
    case MsgKind::Release:
      s.released = true;
      break;
    case MsgKind::DissemRound:
      if (h.round < 64) s.rounds |= 1ull << h.round;
      break;
    case MsgKind::BcastData: {
      std::size_t avail = buf.size() - CollHeader::kSize;
      std::size_t len = std::min<std::size_t>(h.length, avail);
      s.bcast_data.assign(buf.begin() + CollHeader::kSize,
                          buf.begin() + static_cast<std::ptrdiff_t>(CollHeader::kSize + len));
      s.bcast_valid = true;
      break;
    }
    case MsgKind::ReduceUp:
      if (!mask_test(s.rank_mask, h.src_rank)) {
        mask_set(s.rank_mask, h.src_rank);
        if (!s.partial_valid) {
          s.partial = h.value;
          s.partial_valid = true;
        } else {
          s.partial = combine(static_cast<ReduceOp>(h.op), s.partial, h.value);
        }
      }
      break;
    case MsgKind::ReduceResult:
      s.released = true;
      s.result = h.value;
      break;
    case MsgKind::DissemNack:
      break;  // the fault-free baseline never needs pull-based recovery
  }
}

void HostCollective::finish_op(std::uint32_t seq, sim::SimTime started,
                               obs::LatencyHistogram& hist) {
  pending_.erase(pending_.begin(), pending_.upper_bound(seq));
  ++seq_;
  ++ops_completed_;
  hist.observe(nin_.driver().host().cpu().engine().now() - started);
}

bool HostCollective::barrier() {
  core::Cpu& cpu = nin_.driver().host().cpu();
  sim::SimTime t0 = cpu.engine().now();
  std::uint32_t seq = seq_;
  if (spec_.size() <= 1) {
    ++ops_completed_;
    barrier_lat_.observe(0);
    return true;
  }
  if (spec_.algorithm == Algorithm::Tree) {
    while (!have_all_children(seq)) recv_one();
    if (my_rank_ == spec_.root_rank) {
      for (int r = 0; r < spec_.size(); ++r) {
        if (r != my_rank_) send_to(r, MsgKind::Release);
      }
    } else {
      send_to(spec_.parent_of(my_rank_), MsgKind::Arrive);
      while (!state(seq).released) recv_one();
    }
  } else {
    int rounds = spec_.dissem_rounds();
    for (int r = 0; r < rounds; ++r) {
      send_to(spec_.dissem_to(my_rank_, r), MsgKind::DissemRound, r);
      while (((state(seq).rounds >> r) & 1) == 0) recv_one();
    }
  }
  finish_op(seq, t0, barrier_lat_);
  return true;
}

bool HostCollective::bcast(std::span<std::uint8_t> data) {
  core::Cpu& cpu = nin_.driver().host().cpu();
  sim::SimTime t0 = cpu.engine().now();
  std::uint32_t seq = seq_;
  if (spec_.size() <= 1) {
    ++ops_completed_;
    bcast_lat_.observe(0);
    return true;
  }
  if (my_rank_ == spec_.root_rank) {
    // n-1 unicast datagrams, each one a fresh VME copy of the payload.
    for (int r = 0; r < spec_.size(); ++r) {
      if (r != my_rank_) send_to(r, MsgKind::BcastData, 0, 0, 0, data);
    }
    for (;;) {
      SeqState& s = state(seq);
      bool all = true;
      for (int r = 0; r < spec_.size() && all; ++r) {
        if (r != my_rank_ && !mask_test(s.rank_mask, r)) all = false;
      }
      if (all) break;
      recv_one();
    }
  } else {
    while (!state(seq).bcast_valid) recv_one();
    SeqState& s = state(seq);
    std::size_t n = std::min(data.size(), s.bcast_data.size());
    std::copy_n(s.bcast_data.begin(), n, data.begin());
    send_to(spec_.root_rank, MsgKind::BcastAck);
  }
  finish_op(seq, t0, bcast_lat_);
  return true;
}

bool HostCollective::reduce(ReduceOp op, std::uint64_t contribution, std::uint64_t* result) {
  core::Cpu& cpu = nin_.driver().host().cpu();
  sim::SimTime t0 = cpu.engine().now();
  std::uint32_t seq = seq_;
  if (spec_.size() <= 1) {
    ++ops_completed_;
    reduce_lat_.observe(0);
    if (result != nullptr) *result = contribution;
    return true;
  }
  while (!have_all_children(seq)) recv_one();
  std::uint64_t total = contribution;
  {
    SeqState& s = state(seq);
    if (s.partial_valid) total = combine(op, total, s.partial);
  }
  if (my_rank_ == spec_.root_rank) {
    for (int r = 0; r < spec_.size(); ++r) {
      if (r != my_rank_) {
        send_to(r, MsgKind::ReduceResult, 0, total, static_cast<std::uint8_t>(op));
      }
    }
    if (result != nullptr) *result = total;
  } else {
    send_to(spec_.parent_of(my_rank_), MsgKind::ReduceUp, 0, total,
            static_cast<std::uint8_t>(op));
    while (!state(seq).released) recv_one();
    if (result != nullptr) *result = state(seq).result;
  }
  finish_op(seq, t0, reduce_lat_);
  return true;
}

}  // namespace nectar::coll
