#include "obs/timeseries.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>
#include <tuple>

namespace nectar::obs {

namespace {

const char* kind_name(SnapshotEntry::Kind k) {
  switch (k) {
    case SnapshotEntry::Kind::Counter: return "counter";
    case SnapshotEntry::Kind::Gauge: return "gauge";
    case SnapshotEntry::Kind::Probe: return "probe";
    case SnapshotEntry::Kind::Histogram: return "histogram";
  }
  return "?";
}

}  // namespace

Sampler::Sampler(MetricsRegistry& registry, Options options)
    : registry_(registry), options_(std::move(options)) {
  if (options_.max_samples == 0) {
    throw std::invalid_argument("Sampler: max_samples must be >= 1");
  }
}

bool Sampler::excluded(const MetricKey& key) const {
  const std::string qualified = key.component + "." + key.name;
  for (const std::string& pat : options_.exclude) {
    if (qualified.find(pat) != std::string::npos) return true;
  }
  if (!options_.include.empty()) {
    for (const std::string& pat : options_.include) {
      if (qualified.find(pat) != std::string::npos) return false;
    }
    return true;
  }
  return false;
}

void Sampler::sample(sim::SimTime t) {
  if (!ticks_.empty() && t < ticks_.back()) {
    throw std::logic_error("Sampler: sample times must be non-decreasing");
  }
  const std::size_t tick = total_samples_;  // global index of this tick
  ticks_.push_back(t);
  ++total_samples_;

  Snapshot snap = registry_.snapshot();
  for (const SnapshotEntry& e : snap.entries()) {
    if (excluded(e.key)) continue;
    if (e.kind == SnapshotEntry::Kind::Histogram) {
      record(SeriesKey{e.key, "count"}, e.kind, static_cast<std::int64_t>(e.count), tick);
      record(SeriesKey{e.key, "sum"}, e.kind, e.sum, tick);
    } else {
      record(SeriesKey{e.key, ""}, e.kind, e.value, tick);
    }
  }
  while (ticks_.size() > options_.max_samples) evict_oldest();
}

void Sampler::record(const SeriesKey& key, SnapshotEntry::Kind kind, std::int64_t value,
                     std::size_t tick) {
  auto it = series_.find(key);
  if (it == series_.end()) {
    Series s;
    s.kind = kind;
    s.start = tick;
    s.first = value;
    s.last = value;
    s.last_tick = tick;
    series_.emplace(key, std::move(s));
    return;
  }
  Series& s = it->second;
  // A probe that unregistered and came back leaves a gap; hold the last
  // value flat across it so every series stays tick-aligned.
  for (std::size_t missed = s.last_tick + 1; missed < tick; ++missed) s.deltas.push_back(0);
  s.deltas.push_back(value - s.last);
  s.last = value;
  s.last_tick = tick;
}

void Sampler::evict_oldest() {
  const std::size_t g = dropped_;  // global index of the tick being folded
  ticks_.pop_front();
  ++dropped_;
  for (auto it = series_.begin(); it != series_.end();) {
    Series& s = it->second;
    if (s.start > g) {
      ++it;
      continue;
    }
    if (s.deltas.empty()) {
      // Single retained value, and it just aged out.
      it = series_.erase(it);
      continue;
    }
    s.first += s.deltas.front();
    s.deltas.pop_front();
    ++s.start;
    ++it;
  }
}

void Sampler::mark(sim::SimTime t, std::string kind, std::string label, sim::SimTime end) {
  marks_.push_back(Mark{t, end, std::move(kind), std::move(label)});
}

json::Value Sampler::artifact(const std::string& name) const {
  json::Value doc = json::Value::object();
  doc.set("schema", "nectar-timeseries");
  doc.set("version", std::int64_t{1});
  doc.set("name", name);
  doc.set("interval_ns", options_.interval);
  doc.set("samples", static_cast<std::int64_t>(total_samples_));
  doc.set("dropped", static_cast<std::int64_t>(dropped_));
  json::Value ticks = json::Value::array();
  for (sim::SimTime t : ticks_) ticks.push(t);
  doc.set("t_ns", std::move(ticks));

  json::Value series = json::Value::array();
  for (const auto& [key, s] : series_) {  // std::map: key-sorted, deterministic
    json::Value v = json::Value::object();
    v.set("node", std::int64_t{key.key.node});
    v.set("component", key.key.component);
    v.set("name", key.key.name);
    if (!key.field.empty()) v.set("field", key.field);
    v.set("kind", kind_name(s.kind));
    // Index into t_ns of this series' first value; reconstruct with
    // v[i] = first + sum(deltas[0..i-1]).
    v.set("start", static_cast<std::int64_t>(s.start - dropped_));
    v.set("first", s.first);
    json::Value deltas = json::Value::array();
    for (std::int64_t d : s.deltas) deltas.push(d);
    v.set("deltas", std::move(deltas));
    series.push(std::move(v));
  }
  doc.set("series", std::move(series));

  std::vector<Mark> sorted = marks_;
  std::sort(sorted.begin(), sorted.end(), [](const Mark& a, const Mark& b) {
    return std::tie(a.t, a.kind, a.label, a.end) < std::tie(b.t, b.kind, b.label, b.end);
  });
  json::Value marks = json::Value::array();
  for (const Mark& m : sorted) {
    json::Value v = json::Value::object();
    v.set("t_ns", m.t);
    if (m.end >= 0) v.set("end_ns", m.end);
    v.set("kind", m.kind);
    v.set("label", m.label);
    marks.push(std::move(v));
  }
  doc.set("marks", std::move(marks));
  return doc;
}

bool Sampler::write(const std::string& path, const std::string& name) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << artifact(name).dump(2) << '\n';
  return out.good();
}

}  // namespace nectar::obs
