#pragma once

// Declarative scenario configuration: a tiny INI-style format (no external
// dependencies) that scenario_runner and tests load scenarios from.
//
//   # comment (';' works too)
//   [scenario]
//   seed = 1
//   duration = 2s          # durations take ns/us/ms/s suffixes
//
//   [workload]             # sections may repeat: one per workload / fault
//   protocol = rmp
//   rate = 200/s
//
//   [fault]
//   at = 500ms
//   kind = link_drop
//   target = node3.link
//
// Keys and section names are case-sensitive; values keep inner whitespace
// but are trimmed at the ends. Parse errors throw std::runtime_error with a
// line number.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace nectar::scenario {

/// One `[name]` block: an ordered bag of key=value pairs.
struct Section {
  std::string name;
  std::map<std::string, std::string> values;

  bool has(const std::string& key) const { return values.count(key) != 0; }
  /// Typed getters: `fallback` when the key is absent; malformed values throw.
  std::string get(const std::string& key, const std::string& fallback = "") const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;
  /// Duration with unit suffix: "250ns", "10us", "5ms", "2s" (bare numbers
  /// are nanoseconds).
  sim::SimTime get_time(const std::string& key, sim::SimTime fallback) const;
};

/// Parse a duration literal ("500ms"); throws on malformed input.
sim::SimTime parse_time(std::string_view text);

class Config {
 public:
  /// Keys before any [section] header land in an implicit "" section.
  static Config parse_string(std::string_view text);
  /// Throws std::runtime_error when the file cannot be read.
  static Config parse_file(const std::string& path);

  const std::vector<Section>& sections() const { return sections_; }
  /// First section with `name`; nullptr if absent.
  const Section* find(std::string_view name) const;
  /// All sections with `name`, in file order (repeated-section idiom).
  std::vector<const Section*> all(std::string_view name) const;

 private:
  std::vector<Section> sections_;
};

}  // namespace nectar::scenario
