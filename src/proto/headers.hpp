#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>

namespace nectar::proto {

// --- byte-order helpers (network order = big-endian) -------------------------

inline void put8(std::span<std::uint8_t> b, std::size_t off, std::uint8_t v) { b[off] = v; }
inline void put16(std::span<std::uint8_t> b, std::size_t off, std::uint16_t v) {
  b[off] = static_cast<std::uint8_t>(v >> 8);
  b[off + 1] = static_cast<std::uint8_t>(v);
}
inline void put32(std::span<std::uint8_t> b, std::size_t off, std::uint32_t v) {
  b[off] = static_cast<std::uint8_t>(v >> 24);
  b[off + 1] = static_cast<std::uint8_t>(v >> 16);
  b[off + 2] = static_cast<std::uint8_t>(v >> 8);
  b[off + 3] = static_cast<std::uint8_t>(v);
}
inline std::uint8_t get8(std::span<const std::uint8_t> b, std::size_t off) { return b[off]; }
inline std::uint16_t get16(std::span<const std::uint8_t> b, std::size_t off) {
  return static_cast<std::uint16_t>(b[off] << 8 | b[off + 1]);
}
inline std::uint32_t get32(std::span<const std::uint8_t> b, std::size_t off) {
  return static_cast<std::uint32_t>(b[off]) << 24 | static_cast<std::uint32_t>(b[off + 1]) << 16 |
         static_cast<std::uint32_t>(b[off + 2]) << 8 | b[off + 3];
}

/// Native-order variants for request blocks in *shared memory* (host-CAB
/// control structures use the machine representation, matching
/// CabMemory::read32/write32; network headers use the big-endian put/get
/// above).
inline void put32n(std::span<std::uint8_t> b, std::size_t off, std::uint32_t v) {
  std::memcpy(b.data() + off, &v, 4);
}
inline std::uint32_t get32n(std::span<const std::uint8_t> b, std::size_t off) {
  std::uint32_t v;
  std::memcpy(&v, b.data() + off, 4);
  return v;
}

// --- datalink ---------------------------------------------------------------------

/// Packet types multiplexed on the Nectar datalink.
enum class PacketType : std::uint8_t {
  Ip = 1,             ///< TCP/IP suite (§4.1-4.2)
  NectarDatagram = 2, ///< Nectar-specific datagram protocol (§4)
  Rmp = 3,            ///< Nectar reliable message protocol (§4, §6.2)
  ReqResp = 4,        ///< Nectar request-response protocol (§4)
  NetDev = 5,         ///< raw packets for the network-device usage level (§5.1)
  Coll = 6,           ///< CAB-resident collective protocols (src/coll)
};

/// Set in the length field's high bit when a 16-byte causal-trace stamp
/// (obs/span.hpp) follows the datalink header on the wire. The bit is free:
/// payloads are capped at Datalink::kMaxPayload (16 KiB), so even with the
/// stamp the length stays well below 0x8000. The type byte carries the full
/// 8-bit packet type untouched.
constexpr std::uint16_t kDatalinkTraceFlag = 0x8000;

/// Datalink header: 4 bytes on the wire, in front of every packet.
struct DatalinkHeader {
  PacketType type = PacketType::Ip;
  std::uint8_t src_node = 0;
  std::uint16_t length = 0;  ///< payload bytes following this header
  bool traced = false;       ///< trace stamp present between header and payload

  static constexpr std::size_t kSize = 4;
  void serialize(std::span<std::uint8_t> out) const;
  static DatalinkHeader parse(std::span<const std::uint8_t> in);
};

// --- IP (§4.1) -------------------------------------------------------------------

using IpAddr = std::uint32_t;

/// Nectar address plan for the simulation: node n lives at 10.0.0.n.
constexpr IpAddr ip_of_node(int node) {
  return (10u << 24) | static_cast<std::uint32_t>(node & 0xFF);
}
constexpr int node_of_ip(IpAddr a) { return static_cast<int>(a & 0xFF); }
std::string ip_to_string(IpAddr a);

enum IpProto : std::uint8_t {
  kProtoIcmp = 1,
  kProtoTcp = 6,
  kProtoUdp = 17,
};

/// IPv4 header (20 bytes, no options — the CAB stack never emits options).
struct IpHeader {
  std::uint8_t tos = 0;
  std::uint16_t total_len = 0;  ///< header + payload
  std::uint16_t id = 0;
  bool dont_fragment = false;
  bool more_fragments = false;
  std::uint16_t frag_offset = 0;  ///< in 8-byte units
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  std::uint16_t checksum = 0;
  IpAddr src = 0;
  IpAddr dst = 0;

  static constexpr std::size_t kSize = 20;
  /// Serialize with a freshly computed header checksum.
  void serialize(std::span<std::uint8_t> out) const;
  static IpHeader parse(std::span<const std::uint8_t> in);
  /// Verify the embedded header checksum.
  static bool checksum_ok(std::span<const std::uint8_t> hdr);
};

// --- ICMP (§4.1) --------------------------------------------------------------------

enum IcmpType : std::uint8_t {
  kIcmpEchoReply = 0,
  kIcmpUnreachable = 3,
  kIcmpTimeExceeded = 11,
  kIcmpEchoRequest = 8,
};

struct IcmpHeader {
  std::uint8_t type = 0;
  std::uint8_t code = 0;
  std::uint16_t checksum = 0;
  std::uint16_t id = 0;
  std::uint16_t seq = 0;

  static constexpr std::size_t kSize = 8;
  void serialize(std::span<std::uint8_t> out) const;
  static IcmpHeader parse(std::span<const std::uint8_t> in);
};

// --- UDP (§4.1) ----------------------------------------------------------------------

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  ///< header + payload
  std::uint16_t checksum = 0;

  static constexpr std::size_t kSize = 8;
  void serialize(std::span<std::uint8_t> out) const;
  static UdpHeader parse(std::span<const std::uint8_t> in);
};

// --- TCP (§4.2) -----------------------------------------------------------------------

constexpr std::uint8_t kTcpFin = 0x01;
constexpr std::uint8_t kTcpSyn = 0x02;
constexpr std::uint8_t kTcpRst = 0x04;
constexpr std::uint8_t kTcpPsh = 0x08;
constexpr std::uint8_t kTcpAck = 0x10;

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 0;
  std::uint16_t checksum = 0;
  std::uint16_t urgent = 0;

  static constexpr std::size_t kSize = 20;
  void serialize(std::span<std::uint8_t> out) const;
  static TcpHeader parse(std::span<const std::uint8_t> in);
  bool has(std::uint8_t flag) const { return (flags & flag) != 0; }
};

/// TCP/UDP pseudo-header for checksumming (RFC 793 / 768).
struct PseudoHeader {
  IpAddr src = 0;
  IpAddr dst = 0;
  std::uint8_t protocol = 0;
  std::uint16_t length = 0;

  static constexpr std::size_t kSize = 12;
  void serialize(std::span<std::uint8_t> out) const;
};

// --- Nectar-specific transport headers (§4) ----------------------------------------------

/// Common header for the Nectar datagram / RMP / request-response protocols:
/// they address *mailboxes*, not ports (§3.3: "Network-wide addressing of
/// mailboxes enables host processes or CAB threads to send messages to
/// remote mailboxes via transport protocols").
struct NectarHeader {
  std::uint32_t dst_mailbox = 0;
  std::uint32_t src_mailbox = 0;  ///< reply mailbox (0 = none)
  std::uint8_t src_node = 0;
  std::uint8_t flags = 0;     ///< protocol-specific (RMP: DATA/ACK, RR: REQ/RSP)
  std::uint16_t seq = 0;      ///< RMP sequence / RR transaction id
  std::uint16_t length = 0;   ///< payload bytes

  static constexpr std::size_t kSize = 14;
  void serialize(std::span<std::uint8_t> out) const;
  static NectarHeader parse(std::span<const std::uint8_t> in);
};

}  // namespace nectar::proto
