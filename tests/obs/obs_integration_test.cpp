// End-to-end observability smoke tests over a 2-node CAB system: a datagram
// exchange must leave causally ordered events on the tracer and identical
// runs must serialize byte-identically (the diffability contract).

#include <gtest/gtest.h>

#include <string>

#include "net/system.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace nectar {
namespace {

struct RunResult {
  std::string trace_json;
  std::string metrics_json;
};

/// One 64-byte datagram from node 0 to a mailbox on node 1, fully traced.
RunResult run_datagram_exchange() {
  net::NectarSystem sys(2);
  sys.tracer().set_enabled(true);
  core::Mailbox& sink = sys.runtime(1).create_mailbox("sink");
  bool delivered = false;
  sys.runtime(1).fork_system("recv", [&] {
    core::Message m = sink.begin_get();
    sink.end_get(m);
    delivered = true;
  });
  sys.runtime(0).fork_system("send", [&] {
    core::Mailbox& scratch = sys.runtime(0).create_mailbox("scratch");
    core::Message m = scratch.begin_put(64);
    sys.stack(0).datagram.send(sink.address(), m);
  });
  sys.engine().run();
  EXPECT_TRUE(delivered);
  return {sys.tracer().chrome_json(), sys.metrics().snapshot().to_json()};
}

sim::SimTime first_ts(const obs::Tracer& t, std::string_view name) {
  const obs::Tracer::Event* e = t.find(name);
  return e == nullptr ? -1 : e->ts;
}

TEST(ObsIntegration, DatagramEventsAppearInCausalOrder) {
  net::NectarSystem sys(2);
  sys.tracer().set_enabled(true);
  core::Mailbox& sink = sys.runtime(1).create_mailbox("sink");
  sys.runtime(1).fork_system("recv", [&] {
    core::Message m = sink.begin_get();
    sink.end_get(m);
  });
  sys.runtime(0).fork_system("send", [&] {
    core::Mailbox& scratch = sys.runtime(0).create_mailbox("scratch");
    core::Message m = scratch.begin_put(64);
    sys.stack(0).datagram.send(sink.address(), m);
  });
  sys.engine().run();

  const obs::Tracer& t = sys.tracer();
  sim::SimTime send = first_ts(t, "datagram.send");
  sim::SimTime dl_send = first_ts(t, "dl.send");
  sim::SimTime tx = first_ts(t, "link.tx");
  sim::SimTime dl_recv = first_ts(t, "dl.recv");
  sim::SimTime deliver = first_ts(t, "datagram.deliver");

  // Every stage of the path left an event...
  ASSERT_GE(send, 0);
  ASSERT_GE(dl_send, 0);
  ASSERT_GE(tx, 0);
  ASSERT_GE(dl_recv, 0);
  ASSERT_GE(deliver, 0);
  // ...and in causal order: protocol send -> datalink -> wire -> receiving
  // datalink -> delivery into the destination mailbox.
  EXPECT_LE(send, dl_send);
  EXPECT_LE(dl_send, tx);
  EXPECT_LT(tx, dl_recv);
  EXPECT_LT(dl_recv, deliver);

  // The sender and receiver sides report on different tracks (different
  // Chrome pids), which is what makes the swimlane view readable.
  const obs::Tracer::Event* e_send = t.find("datagram.send");
  const obs::Tracer::Event* e_deliver = t.find("datagram.deliver");
  ASSERT_NE(e_send, nullptr);
  ASSERT_NE(e_deliver, nullptr);
  EXPECT_NE(t.tracks()[static_cast<std::size_t>(e_send->track)].pid,
            t.tracks()[static_cast<std::size_t>(e_deliver->track)].pid);

  // The registry saw the same exchange.
  obs::Snapshot snap = sys.metrics().snapshot();
  EXPECT_EQ(snap.value_of(0, "datagram", "datagrams_sent"), 1);
  EXPECT_EQ(snap.value_of(1, "datagram", "datagrams_delivered"), 1);
  EXPECT_GE(snap.value_of(0, "link", "cab0.out.frames_sent", -1), 1);
}

TEST(ObsIntegration, IdenticalRunsSerializeByteIdentically) {
  RunResult a = run_datagram_exchange();
  RunResult b = run_datagram_exchange();
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  // Non-trivial documents, not vacuous equality.
  EXPECT_GT(a.trace_json.size(), 200u);
  obs::json::Value doc = obs::json::Value::parse(a.metrics_json);
  EXPECT_GT(doc.find("metrics")->size(), 10u);
}

TEST(ObsIntegration, ScalarStatsStillMatchLegacyAccessors) {
  // The registry reads the same counters the modules expose directly — the
  // migration must not fork the numbers.
  net::NectarSystem sys(2);
  core::Mailbox& sink = sys.runtime(1).create_mailbox("sink");
  sys.runtime(1).fork_system("recv", [&] {
    core::Message m = sink.begin_get();
    sink.end_get(m);
  });
  sys.runtime(0).fork_system("send", [&] {
    core::Mailbox& scratch = sys.runtime(0).create_mailbox("scratch");
    core::Message m = scratch.begin_put(64);
    sys.stack(0).datagram.send(sink.address(), m);
  });
  sys.engine().run();
  obs::Snapshot snap = sys.metrics().snapshot();
  EXPECT_EQ(snap.value_of(0, "datagram", "datagrams_sent"),
            static_cast<std::int64_t>(sys.stack(0).datagram.datagrams_sent()));
  EXPECT_EQ(snap.value_of(0, "cab.cpu", "context_switches"),
            static_cast<std::int64_t>(sys.runtime(0).cpu().context_switches()));
}

}  // namespace
}  // namespace nectar
