#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>

#include "core/heap.hpp"
#include "hw/memory.hpp"

namespace nectar::obs {
class Registration;
}

namespace nectar::core {

class Cpu;
class Thread;
class Mailbox;

/// Network-wide mailbox address (paper §3.3): any host process or CAB thread
/// anywhere in the Nectar network can name a mailbox by (node, index).
struct MailboxAddr {
  std::int32_t node = -1;   ///< CAB node id
  std::uint32_t index = 0;  ///< per-CAB mailbox index
  bool operator==(const MailboxAddr&) const = default;
};

/// A message under construction or consumption. The payload bytes live in
/// real CAB data memory at [data, data+len); `block` tracks the underlying
/// allocation so adjust operations can shrink the visible range without
/// copying (§3.3).
struct Message {
  hw::CabAddr data = 0;
  std::uint32_t len = 0;
  hw::CabAddr block = 0;
  std::uint32_t block_len = 0;
  bool from_cache = false;
  Mailbox* cache_owner = nullptr;

  bool valid() const { return block != 0 || from_cache; }
};

/// Mailbox (paper §3.3): a queue of messages with a network-wide address.
///
/// The two-phase interface lets messages be produced and consumed *in place*
/// in CAB memory with no copying: Begin_Put allocates and returns the data
/// area, End_Put publishes it; Begin_Get returns the next message in place,
/// End_Get releases it. Enqueue moves a message between mailboxes by
/// pointer manipulation only. A reader upcall may be attached, converting a
/// cross-thread hand-off into a local procedure call.
///
/// Blocking variants are for threads; interrupt handlers use the *_try
/// forms (§3.3: "Interrupt handlers use non-blocking versions").
class Mailbox {
 public:
  /// Size of the per-mailbox cached small buffer (§3.3).
  static constexpr std::uint32_t kSmallBufSize = 128;

  using Upcall = std::function<void(Mailbox&)>;

  Mailbox(Cpu& home_cpu, BufferHeap& heap, std::string name, MailboxAddr addr);

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  // --- writer interface ----------------------------------------------------

  /// Reserve a `size`-byte data area; blocks while the heap is exhausted.
  /// Several puts may be outstanding at once.
  Message begin_put(std::uint32_t size);
  /// Non-blocking variant (interrupt handlers). nullopt when out of space.
  std::optional<Message> begin_put_try(std::uint32_t size);
  /// Publish a message: append to the queue, wake a reader, fire the upcall.
  void end_put(Message m);

  // --- reader interface ----------------------------------------------------

  /// Take the next message; blocks while the mailbox is empty. Multiple
  /// threads may consume concurrently from one mailbox.
  Message begin_get();
  std::optional<Message> begin_get_try();
  /// Release a consumed message's storage.
  void end_get(Message m);

  // --- zero-copy plumbing ---------------------------------------------------

  /// Publish a held message into `dst` without copying (§3.3 Enqueue). The
  /// message must have come from begin_put or begin_get.
  void enqueue(Message m, Mailbox& dst);

  /// Shrink the visible range in place: drop `n` bytes from the front/back
  /// (§3.3 "adjust the size of messages in place").
  static Message adjust_prefix(Message m, std::uint32_t n);
  static Message adjust_suffix(Message m, std::uint32_t n);

  // --- upcalls & notification ------------------------------------------------

  /// Attach a reader upcall, invoked (in the publisher's context) as a side
  /// effect of End_Put / Enqueue.
  void set_reader_upcall(Upcall up) { upcall_ = std::move(up); }
  bool has_upcall() const { return static_cast<bool>(upcall_); }

  /// Hook fired whenever a message is published (after waking readers);
  /// the host/CAB signaling layer uses this to signal host conditions.
  void set_notify_hook(std::function<void()> hook) { notify_hook_ = std::move(hook); }

  /// Hook fired whenever a reader takes a message (begin_get/begin_get_try);
  /// TCP uses this to learn that receive buffering has been consumed and a
  /// window update may be due. Must not block.
  void set_consume_hook(std::function<void()> hook) { consume_hook_ = std::move(hook); }

  // --- introspection -----------------------------------------------------------

  const std::string& name() const { return name_; }
  MailboxAddr address() const { return addr_; }
  std::size_t queued() const { return queue_.size(); }
  /// Total payload bytes currently published but not yet taken by a reader
  /// (TCP derives its advertised window from this).
  std::size_t queued_bytes() const { return queued_bytes_; }
  bool empty() const { return queue_.empty(); }
  Cpu& home_cpu() { return cpu_; }
  BufferHeap& heap() { return heap_; }

  std::uint64_t puts() const { return puts_; }
  std::uint64_t gets() const { return gets_; }
  std::uint64_t enqueues() const { return enqueues_; }
  std::uint64_t cache_hits() const { return cache_hits_; }

  /// Expose this mailbox's stats as probes under (node, "mailbox",
  /// "<name>.puts" / ".gets" / ".enqueues" / ".cache_hits" / ".queued").
  void register_metrics(obs::Registration& reg, int node) const;

 private:
  std::optional<Message> alloc_message(std::uint32_t size);
  void release_storage(const Message& m);
  void publish(Message m, Cpu& caller);
  void trace_op(Cpu& c, const char* op) const;

  Cpu& cpu_;  // home CPU: where the storage lives (the CAB)
  BufferHeap& heap_;
  std::string name_;
  MailboxAddr addr_;

  std::deque<Message> queue_;
  std::size_t queued_bytes_ = 0;
  std::deque<Thread*> readers_;  // threads blocked in begin_get

  hw::CabAddr cache_buf_ = 0;  // lazily allocated small-message cache
  bool cache_free_ = false;

  Upcall upcall_;
  std::function<void()> notify_hook_;
  std::function<void()> consume_hook_;

  std::uint64_t puts_ = 0;
  std::uint64_t gets_ = 0;
  std::uint64_t enqueues_ = 0;
  std::uint64_t cache_hits_ = 0;
};

}  // namespace nectar::core
