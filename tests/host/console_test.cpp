#include "host/console.hpp"

#include <gtest/gtest.h>

#include "host/node.hpp"

namespace nectar::host {
namespace {

struct Fixture {
  net::NectarSystem sys{1, /*with_vme=*/true};
  HostNode h{sys, 0};
  HostConsole console{h.driver};
};

TEST(Console, CabThreadPrintsThroughTheHost) {
  Fixture f;
  f.sys.runtime(0).fork_app("task", [&] {
    f.console.print_from_cab("hello from the CAB");
  });
  f.sys.net().run_until(sim::sec(1));
  ASSERT_EQ(f.console.lines().size(), 1u);
  EXPECT_EQ(f.console.lines()[0], "hello from the CAB");
}

TEST(Console, LinesArriveInOrderAndBuffersAreFreed) {
  Fixture f;
  std::size_t floor = f.sys.runtime(0).heap().bytes_in_use();
  f.sys.runtime(0).fork_app("task", [&] {
    for (int i = 0; i < 10; ++i) {
      f.console.print_from_cab("line " + std::to_string(i));
      f.sys.runtime(0).cpu().sleep_for(sim::usec(100));
    }
  });
  f.sys.net().run_until(sim::sec(1));
  ASSERT_EQ(f.console.lines().size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(f.console.lines()[static_cast<std::size_t>(i)], "line " + std::to_string(i));
  }
  // Every buffer came back through the completion opcode.
  EXPECT_LE(f.sys.runtime(0).heap().bytes_in_use(), floor + core::Mailbox::kSmallBufSize + 16);
}

TEST(Console, CustomSinkReceivesOutput) {
  Fixture f;
  std::string collected;
  f.console.set_sink([&](std::string s) { collected += s + "\n"; });
  f.sys.runtime(0).fork_app("task", [&] {
    f.console.print_from_cab("a");
    f.console.print_from_cab("b");
  });
  f.sys.net().run_until(sim::sec(1));
  EXPECT_EQ(collected, "a\nb\n");
  EXPECT_TRUE(f.console.lines().empty());  // sink bypasses the buffer
}

TEST(Console, LargeLineCrossesTheBusIntact) {
  Fixture f;
  std::string big;
  for (int i = 0; i < 3000; ++i) big.push_back(static_cast<char>('a' + i % 26));
  f.sys.runtime(0).fork_app("task", [&] { f.console.print_from_cab(big); });
  f.sys.net().run_until(sim::sec(1));
  ASSERT_EQ(f.console.lines().size(), 1u);
  EXPECT_EQ(f.console.lines()[0], big);
  EXPECT_EQ(f.console.bytes_printed(), big.size());
}

TEST(Console, PrintingCostsHostCpuOnlyWhenDelivering) {
  // The CAB pays to build the text; the host pays only the interrupt +
  // cross-bus read — there is no host polling anywhere.
  Fixture f;
  f.sys.runtime(0).fork_app("task", [&] {
    f.console.print_from_cab(std::string(1000, 'x'));
  });
  f.sys.net().run_until(sim::sec(1));
  ASSERT_EQ(f.console.lines().size(), 1u);
  // Host CPU: one interrupt (~15 us) + 250 VME words (~250 us) + posting the
  // completion. Far below a millisecond, and nothing after delivery.
  EXPECT_LT(f.h.host.cpu().busy_time(), sim::usec(600));
}

}  // namespace
}  // namespace nectar::host
