#pragma once

// Metrics registry for the Nectar reproduction.
//
// Every instrumented value in the system is keyed by (node, component, name)
// — e.g. (1, "tcp", "segments_sent") — and lives in exactly one registry
// (one per Network; standalone CabRuntimes fall back to a private one).
// Because the simulation is deterministic, a Snapshot taken at the same
// simulated point of two identical runs is byte-identical when serialized,
// which is what makes snapshots diffable across code changes.
//
// Two registration styles:
//  - owned cells (counter/gauge/histogram): the registry owns the storage,
//    callers hold a stable reference and push updates on the hot path;
//  - probes: a callback reads a module's existing plain counter at snapshot
//    time. This is how the legacy per-module `stats` members (proto::Tcp,
//    proto::Ip, core::Cpu, hw::VmeBus, ...) report through the registry
//    without changing their accessors or adding hot-path work. Probes are
//    registered through a Registration (RAII) so a module that dies before
//    the registry unhooks itself.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace nectar::obs {

struct MetricKey {
  int node = -1;
  std::string component;
  std::string name;
  auto operator<=>(const MetricKey&) const = default;
  std::string str() const {
    return "node" + std::to_string(node) + "/" + component + "/" + name;
  }
};

class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_ += n; }
  Counter& operator++() {
    ++v_;
    return *this;
  }
  std::uint64_t value() const { return v_; }

 private:
  std::uint64_t v_ = 0;
};

class Gauge {
 public:
  void set(std::int64_t v) { v_ = v; }
  void add(std::int64_t d) { v_ += d; }
  std::int64_t value() const { return v_; }

 private:
  std::int64_t v_ = 0;
};

/// Fixed-bucket histogram. `bounds` are inclusive upper bounds in ascending
/// order; one implicit overflow bucket catches everything above the last
/// bound. Bucket counts are non-cumulative.
class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t> bounds);

  void observe(std::int64_t v);

  std::uint64_t count() const { return count_; }
  std::int64_t sum() const { return sum_; }
  const std::vector<std::int64_t>& bounds() const { return bounds_; }
  /// i in [0, bounds().size()]: the last index is the overflow bucket.
  std::uint64_t bucket_count(std::size_t i) const { return buckets_.at(i); }
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

 private:
  std::vector<std::int64_t> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
};

struct SnapshotEntry {
  enum class Kind { Counter, Gauge, Histogram, Probe };

  MetricKey key;
  Kind kind = Kind::Counter;
  std::int64_t value = 0;                 // counter/gauge/probe
  std::uint64_t count = 0;                // histogram
  std::int64_t sum = 0;                   // histogram
  std::vector<std::int64_t> bounds;       // histogram
  std::vector<std::uint64_t> buckets;     // histogram

  bool operator==(const SnapshotEntry&) const = default;
};

/// A deterministic, diffable point-in-time view of a registry: entries are
/// sorted by key, and to_json() is byte-stable for a given set of values.
class Snapshot {
 public:
  explicit Snapshot(std::vector<SnapshotEntry> entries) : entries_(std::move(entries)) {}
  Snapshot() = default;

  const std::vector<SnapshotEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  const SnapshotEntry* find(int node, std::string_view component, std::string_view name) const;
  /// Value of a scalar metric (counter/gauge/probe); `fallback` if absent.
  std::int64_t value_of(int node, std::string_view component, std::string_view name,
                        std::int64_t fallback = 0) const;

  bool operator==(const Snapshot&) const = default;

  /// Scalar entries whose value changed vs `base` (new minus old); entries
  /// absent from `base` count from zero. Histograms diff count and sum.
  Snapshot delta(const Snapshot& base) const;

  std::string to_json(int indent = 2) const;

 private:
  std::vector<SnapshotEntry> entries_;
};

class Registration;

class MetricsRegistry {
 public:
  using Probe = std::function<std::int64_t()>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Owned cells: created on first use, returned thereafter. References stay
  /// valid for the registry's lifetime. Re-accessing an existing key with the
  /// same kind (and, for histograms, the same bounds) is a lookup; asking for
  /// a different kind under an existing key throws std::logic_error — a
  /// duplicate registration never silently clobbers a cell. (Probes instead
  /// de-duplicate with a "#2" suffix: they are additive read-only taps.)
  ///
  /// Registration (cell/probe creation) is mutex-guarded because shard
  /// worker threads register mid-run (e.g. a mailbox created by a fiber
  /// adds depth probes). Updates through the returned references are NOT
  /// locked: each cell belongs to one node, a node to one shard, so cells
  /// are single-writer by construction. cells_ is a std::map, so snapshots
  /// stay key-sorted and byte-deterministic regardless of which thread
  /// registered first.
  Counter& counter(int node, std::string component, std::string name);
  Gauge& gauge(int node, std::string component, std::string name);
  Histogram& histogram(int node, std::string component, std::string name,
                       std::vector<std::int64_t> bounds);

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mutex_);
    return cells_.size();
  }
  bool contains(int node, std::string_view component, std::string_view name) const;

  Snapshot snapshot() const;

 private:
  friend class Registration;

  struct Cell {
    SnapshotEntry::Kind kind = SnapshotEntry::Kind::Counter;
    Counter counter;
    Gauge gauge;
    std::unique_ptr<Histogram> histogram;
    Probe probe;
  };

  /// Key actually used after de-duplication ("name", "name#2", ...): a
  /// second registrant under the same key gets a deterministic suffix
  /// instead of clobbering the first.
  MetricKey unique_key(MetricKey key) const;  // caller holds mutex_
  MetricKey add_probe(MetricKey key, Probe fn);
  void remove(const MetricKey& key) {
    std::lock_guard<std::mutex> lk(mutex_);
    cells_.erase(key);
  }

  mutable std::mutex mutex_;
  std::map<MetricKey, Cell> cells_;
};

/// RAII group of probe registrations: destroying (or releasing) it removes
/// every probe it added, so modules can register callbacks that read their
/// own members without risking dangling reads after they are destroyed.
class Registration {
 public:
  Registration() = default;
  explicit Registration(MetricsRegistry& reg) : reg_(&reg) {}
  Registration(Registration&& o) noexcept : reg_(o.reg_), keys_(std::move(o.keys_)) {
    o.reg_ = nullptr;
    o.keys_.clear();
  }
  Registration& operator=(Registration&& o) noexcept {
    if (this != &o) {
      release();
      reg_ = o.reg_;
      keys_ = std::move(o.keys_);
      o.reg_ = nullptr;
      o.keys_.clear();
    }
    return *this;
  }
  ~Registration() { release(); }

  MetricsRegistry* registry() const { return reg_; }

  /// Register a probe; no-op when this Registration is empty (no registry).
  void probe(int node, std::string component, std::string name, MetricsRegistry::Probe fn);

  void release();

 private:
  MetricsRegistry* reg_ = nullptr;
  std::vector<MetricKey> keys_;
};

}  // namespace nectar::obs
