#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "core/mailbox.hpp"
#include "proto/datalink.hpp"
#include "proto/headers.hpp"

namespace nectar::nproto {

/// One protocol event recorded when event capture is on
/// (Rmp::set_record_events): retransmissions and sender window stalls.
struct RmpEvent {
  sim::SimTime t = 0;
  const char* kind = "";  // "retransmit" | "window_stall"
  int peer = 0;           // remote node
  std::uint16_t seq = 0;  // outstanding sequence number (0 for stalls)
};

/// Nectar reliable message protocol (paper §4): "a simple stop-and-wait
/// protocol". One message outstanding per destination node; the receiver
/// acknowledges each message; the sender retransmits on timeout. No software
/// checksum — it "relies on the CRC implemented by the CAB hardware" (§6.2),
/// which is why RMP reaches ~90 Mbit/s CAB-to-CAB where TCP pays the per-byte
/// checksum tax (Fig. 7).
class Rmp : public proto::DatalinkClient {
 public:
  /// Stop-and-wait retransmission interval (no RTT estimation in the paper's
  /// simple protocol).
  static constexpr sim::SimTime kRetransmitInterval = sim::msec(5);

  explicit Rmp(proto::Datalink& dl);

  Rmp(const Rmp&) = delete;
  Rmp& operator=(const Rmp&) = delete;

  core::CabRuntime& runtime() { return dl_.runtime(); }

  /// Small headers a layer above RMP may prepend per message (the session
  /// layer's channel frame header rides here). Bounded so Pending can hold
  /// the bytes inline — no allocation per message.
  static constexpr std::size_t kMaxPrefix = 16;

  /// Queue `data` for reliable delivery to the mailbox `dst`. Messages to
  /// one node are delivered exactly once, in order. The data area is
  /// released when acknowledged if `free_when_acked`. `on_acked` (optional,
  /// interrupt context) fires when the acknowledgment arrives.
  ///
  /// `prefix` (≤ kMaxPrefix bytes) is an upper-layer header prepended to the
  /// payload on the wire: the receiver's mailbox sees one contiguous
  /// [prefix][data] message. The bytes are copied into the send queue entry
  /// and re-composed through the HeaderBuf headroom path on every
  /// (re)transmission, so retries carry the same header without the caller
  /// staging it into CAB memory.
  void send(core::MailboxAddr dst, core::Message data, bool free_when_acked = true,
            std::function<void()> on_acked = {}, obs::TraceContext tctx = {},
            std::span<const std::uint8_t> prefix = {});

  /// Block the calling thread until every queued message to `node` has been
  /// acknowledged.
  void wait_acked(int node);

  /// Block until fewer than `n` messages are queued toward `node` — bulk
  /// senders pace themselves against CAB buffer memory with this.
  void wait_queue_below(int node, std::size_t n);

  /// Messages queued (including the outstanding one) toward `node`.
  std::size_t queued_to(int node) const;

  // --- DatalinkClient ----------------------------------------------------------

  std::size_t header_bytes() const override { return proto::NectarHeader::kSize; }
  core::Mailbox& input_mailbox() override { return input_; }
  void end_of_data(core::Message m, std::uint8_t src_node) override;

  // --- stats -----------------------------------------------------------------------

  std::uint64_t messages_sent() const { return sent_; }
  std::uint64_t messages_delivered() const { return delivered_; }
  std::uint64_t retransmissions() const { return retransmissions_; }
  std::uint64_t duplicates_dropped() const { return dups_; }
  std::uint64_t acks_sent() const { return acks_sent_; }

  // --- event timeline ---------------------------------------------------------

  /// Record retransmit/window-stall events (bounded at kEventCap). Costs host
  /// memory only, never simulated time; off by default.
  void set_record_events(bool on) { record_events_ = on; }
  bool record_events() const { return record_events_; }
  const std::vector<RmpEvent>& events() const { return events_; }
  static constexpr std::size_t kEventCap = 4096;

 private:
  static constexpr std::uint8_t kFlagData = 0;
  static constexpr std::uint8_t kFlagAck = 1;

  struct Pending {
    core::Message msg;
    std::uint32_t dst_index;  // destination mailbox on the remote node
    bool free_when_acked;
    std::function<void()> on_acked;
    obs::TraceContext ctx{};                       // causal trace the message belongs to
    std::array<std::uint8_t, kMaxPrefix> prefix{};  // upper-layer header bytes
    std::uint8_t prefix_len = 0;
  };
  struct SendChannel {
    std::uint16_t next_seq = 0;       // seq of the head-of-line message
    std::deque<Pending> queue;        // head is the outstanding message
    bool outstanding = false;         // head transmitted, awaiting ACK
    core::Cpu::TimerId timer = 0;
    bool timer_set = false;
    std::vector<core::Thread*> drain_waiters;
  };
  struct RecvChannel {
    std::uint16_t expected_seq = 0;
  };

  void transmit_head(int node);         // (re)send the outstanding message
  void handle_ack(int node, std::uint16_t seq);
  void on_timeout(int node);
  void send_ack(int node, std::uint16_t seq);
  void record_event(const char* kind, int peer, std::uint16_t seq);

  proto::Datalink& dl_;
  core::Mailbox& input_;
  std::map<int, SendChannel> send_channels_;
  std::map<int, RecvChannel> recv_channels_;

  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t dups_ = 0;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t dropped_no_mailbox_ = 0;
  bool record_events_ = false;
  std::vector<RmpEvent> events_;

  // Last member: probes read the counters above, so they must unhook first.
  obs::Registration metrics_reg_;
};

}  // namespace nectar::nproto
