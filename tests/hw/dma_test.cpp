#include "hw/dma.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hw/cab.hpp"
#include "hw/crc.hpp"
#include "sim/engine.hpp"

namespace nectar::hw {
namespace {

/// Loopback sink: connect a CAB's out link to its own in FIFO.
void loopback(CabBoard& cab) { cab.out_link().attach(&cab.in_fifo()); }

TEST(Dma, SendBuildsFrameFromHeaderAndMemory) {
  sim::Engine e;
  CabBoard cab(e, "cab0", 0);
  loopback(cab);
  cab.set_irq_handler(CabIrq::PacketArrival, [] {});

  std::vector<std::uint8_t> data{1, 2, 3, 4, 5, 6, 7, 8};
  cab.memory().write(kDataBase, data);
  bool sent = false;
  const std::uint8_t header[] = {0xAA, 0xBB};
  cab.dma().start_send({/*route*/}, header, kDataBase, data.size(), [&] { sent = true; }, 0);
  e.run();
  EXPECT_TRUE(sent);
  ASSERT_TRUE(cab.in_fifo().has_frame());
  const Frame& f = cab.in_fifo().front().frame;
  ASSERT_EQ(f.payload.size(), 10u);
  EXPECT_EQ(f.payload[0], 0xAA);
  EXPECT_EQ(f.payload[1], 0xBB);
  EXPECT_EQ(f.payload[2], 1);
  EXPECT_EQ(f.payload[9], 8);
  EXPECT_EQ(Crc32::compute(f.payload), f.crc);
}

TEST(Dma, RecvCopiesPayloadSkippingHeader) {
  sim::Engine e;
  CabBoard cab(e, "cab0", 0);
  loopback(cab);
  cab.set_irq_handler(CabIrq::PacketArrival, [] {});

  std::vector<std::uint8_t> data{9, 8, 7, 6};
  cab.memory().write(kDataBase, data);
  const std::uint8_t header[] = {0x55};
  cab.dma().start_send({}, header, kDataBase, data.size(), [] {}, 0);
  e.run();
  ASSERT_TRUE(cab.in_fifo().has_frame());

  bool done = false;
  CabAddr dst = kDataBase + 4096;
  cab.dma().start_recv(dst, /*skip=*/1, [&](FiberInFifo::ArrivedFrame af, bool crc_ok) {
    EXPECT_TRUE(crc_ok);
    EXPECT_EQ(af.frame.payload.size(), 5u);
    done = true;
  });
  e.run();
  EXPECT_TRUE(done);
  std::vector<std::uint8_t> out(4);
  cab.memory().read(dst, out);
  EXPECT_EQ(out, data);
  EXPECT_FALSE(cab.in_fifo().has_frame());
}

TEST(Dma, RecvDetectsCorruption) {
  sim::Engine e;
  CabBoard cab(e, "cab0", 0);
  loopback(cab);
  cab.set_irq_handler(CabIrq::PacketArrival, [] {});
  cab.out_link().set_corrupt_rate(1.0, 5);

  cab.memory().write(kDataBase, std::vector<std::uint8_t>{1, 2, 3, 4});
  cab.dma().start_send({}, {}, kDataBase, 4, [] {}, 0);
  e.run();
  bool crc_result = true;
  cab.dma().start_recv(kDataBase + 4096, 0,
                       [&](FiberInFifo::ArrivedFrame, bool ok) { crc_result = ok; });
  e.run();
  EXPECT_FALSE(crc_result);
  EXPECT_EQ(cab.dma().recv_crc_errors(), 1u);
}

TEST(Dma, ProgramMemoryIsNotDmaable) {
  sim::Engine e;
  CabBoard cab(e, "cab0", 0);
  loopback(cab);
  // Sending from program RAM must fault (paper §2.2: "DMA transfers are
  // supported for data memory only").
  EXPECT_THROW(cab.dma().start_send({}, {}, kProgramRamBase, 16, [] {}, 0), std::logic_error);
}

TEST(Dma, RecvRequiresFrame) {
  sim::Engine e;
  CabBoard cab(e, "cab0", 0);
  EXPECT_THROW(cab.dma().start_recv(kDataBase, 0, [](FiberInFifo::ArrivedFrame, bool) {}),
               std::logic_error);
}

TEST(Dma, DiscardDrainsWithoutStoring) {
  sim::Engine e;
  CabBoard cab(e, "cab0", 0);
  loopback(cab);
  cab.set_irq_handler(CabIrq::PacketArrival, [] {});
  cab.memory().write(kDataBase, std::vector<std::uint8_t>{1, 2, 3, 4});
  cab.dma().start_send({}, {}, kDataBase, 4, [] {}, 0);
  e.run();
  bool done = false;
  cab.dma().start_recv(DmaController::kDiscard, 0,
                       [&](FiberInFifo::ArrivedFrame, bool) { done = true; });
  e.run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(cab.in_fifo().has_frame());
}

TEST(Dma, VmeChannelsCopyBothWays) {
  sim::Engine e;
  VmeBus vme(e);
  CabBoard cab(e, "cab0", 0, &vme);

  std::vector<std::uint8_t> host_buf{10, 20, 30, 40, 50};
  bool in_done = false;
  cab.dma().start_vme_to_cab(host_buf, kDataBase + 64, [&] { in_done = true; });
  e.run();
  EXPECT_TRUE(in_done);
  std::vector<std::uint8_t> check(5);
  cab.memory().read(kDataBase + 64, check);
  EXPECT_EQ(check, host_buf);

  std::vector<std::uint8_t> host_out(5, 0);
  bool out_done = false;
  cab.dma().start_cab_to_vme(kDataBase + 64, host_out, [&] { out_done = true; });
  e.run();
  EXPECT_TRUE(out_done);
  EXPECT_EQ(host_out, host_buf);
  EXPECT_EQ(cab.dma().vme_transfers(), 2u);
  EXPECT_EQ(vme.dma_transfers(), 2u);
}

TEST(Dma, VmeWithoutBusThrows) {
  sim::Engine e;
  CabBoard cab(e, "cab0", 0, nullptr);
  std::vector<std::uint8_t> buf(4);
  EXPECT_THROW(cab.dma().start_vme_to_cab(buf, kDataBase, [] {}), std::logic_error);
}

TEST(CabBoardTest, UnhandledIrqFailsLoudly) {
  sim::Engine e;
  CabBoard cab(e, "cab0", 0);
  EXPECT_THROW(cab.raise_irq(CabIrq::HostDoorbell), std::logic_error);
}

TEST(CabBoardTest, ArrivalRaisesPacketIrq) {
  sim::Engine e;
  CabBoard cab(e, "cab0", 0);
  loopback(cab);
  int irqs = 0;
  cab.set_irq_handler(CabIrq::PacketArrival, [&] { ++irqs; });
  cab.memory().write(kDataBase, std::vector<std::uint8_t>{1});
  cab.dma().start_send({}, {}, kDataBase, 1, [] {}, 0);
  e.run();
  EXPECT_EQ(irqs, 1);
}

}  // namespace
}  // namespace nectar::hw
