#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "host/driver.hpp"

namespace nectar::host {

/// Host console / debugging facility (paper §3.2: the host signal queue
/// "can also be used by the CAB for other kinds of requests to the host,
/// such as invocation of host I/O and debugging facilities").
///
/// CAB threads print lines through the host: the text is built in CAB
/// memory, its address posted on the host signal queue; the host's driver
/// interrupt reads it across the bus into the sink, then posts a completion
/// back so the CAB frees the buffer — the full round trip of a 1990-style
/// cross-processor printf.
class HostConsole {
 public:
  static constexpr std::uint16_t kOpWrite = 50;      ///< CAB->host: param=addr, aux=len
  static constexpr std::uint16_t kOpWriteDone = 51;  ///< host->CAB: param=addr

  explicit HostConsole(CabDriver& driver);

  HostConsole(const HostConsole&) = delete;
  HostConsole& operator=(const HostConsole&) = delete;

  /// Where host-side output goes (defaults to collecting in `lines()`).
  void set_sink(std::function<void(std::string)> sink) { sink_ = std::move(sink); }

  /// CAB-side printf: call from a CAB thread. Blocks only for buffer space.
  void print_from_cab(const std::string& text);

  const std::vector<std::string>& lines() const { return lines_; }
  std::uint64_t bytes_printed() const { return bytes_; }

 private:
  CabDriver& driver_;
  core::Mailbox& buffers_;
  std::map<hw::CabAddr, core::Message> outstanding_;
  std::function<void(std::string)> sink_;
  std::vector<std::string> lines_;
  std::uint64_t bytes_ = 0;
};

}  // namespace nectar::host
