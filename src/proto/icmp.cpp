#include "proto/icmp.hpp"

#include <array>

#include "obs/profiler.hpp"
#include "proto/checksum.hpp"
#include "sim/costs.hpp"

namespace nectar::proto {

namespace costs = sim::costs;

Icmp::Icmp(Ip& ip)
    : ip_(ip),
      input_(ip.runtime().create_mailbox("icmp-input")),
      scratch_(ip.runtime().create_mailbox("icmp-scratch")) {
  ip_.register_protocol(kProtoIcmp, &input_);
  // §4.1: "ICMP is implemented as a mailbox upcall, while UDP and TCP each
  // have their own server threads."
  input_.set_reader_upcall([this](core::Mailbox& mb) { handle(mb); });
  // IP rejects datagrams for unregistered protocols through us.
  ip_.set_icmp_error_hook(
      [this](std::uint8_t code, core::Message offender) { send_unreachable(code, offender); });
}

void Icmp::handle(core::Mailbox& mb) {
  auto m = mb.begin_get_try();
  if (!m.has_value()) return;
  handle_message(*m);
}

void Icmp::handle_message(core::Message m) {
  core::Cpu& cpu = ip_.runtime().cpu();
  hw::CabMemory& mem = ip_.runtime().board().memory();
  obs::CostScope scope("icmp/input");
  cpu.charge(costs::kIcmpProcessing);

  if (m.len < IpHeader::kSize + IcmpHeader::kSize) {
    input_.end_get(m);
    return;
  }
  IpHeader iph = IpHeader::parse(mem.view(m.data, IpHeader::kSize));
  std::size_t icmp_len = m.len - IpHeader::kSize;
  auto icmp_bytes = mem.view(m.data + IpHeader::kSize, icmp_len);

  cpu.charge(checksum_cost(icmp_len));
  if (!InternetChecksum::verify(icmp_bytes)) {
    ++bad_checksum_;
    input_.end_get(m);
    return;
  }
  IcmpHeader h = IcmpHeader::parse(icmp_bytes);

  if (h.type == kIcmpEchoRequest) {
    ++echo_req_rx_;
    // Answer in place: rewrite type, refresh the checksum, and transmit the
    // same data area back — no copy, freed after the reply is on the wire.
    mem.write8(m.data + IpHeader::kSize, kIcmpEchoReply);
    mem.write8(m.data + IpHeader::kSize + 2, 0);
    mem.write8(m.data + IpHeader::kSize + 3, 0);
    cpu.charge(checksum_cost(icmp_len));
    std::uint16_t sum = InternetChecksum::compute(mem.view(m.data + IpHeader::kSize, icmp_len));
    mem.write8(m.data + IpHeader::kSize + 2, static_cast<std::uint8_t>(sum >> 8));
    mem.write8(m.data + IpHeader::kSize + 3, static_cast<std::uint8_t>(sum));

    Ip::OutputInfo info;
    info.dst = iph.src;
    info.protocol = kProtoIcmp;
    core::Message reply = core::Mailbox::adjust_prefix(m, IpHeader::kSize);
    ip_.output_msg(info, {}, reply, /*free_when_sent=*/true);
    ++echo_rep_tx_;
    return;
  }

  if (h.type == kIcmpEchoReply) {
    ++echo_rep_rx_;
    std::uint32_t key = static_cast<std::uint32_t>(h.id) << 16 | h.seq;
    auto it = pending_.find(key);
    if (it != pending_.end()) {
      Pending p = std::move(it->second);
      pending_.erase(it);
      if (p.cb) p.cb(h.seq, ip_.runtime().engine().now() - p.sent_at);
    }
    input_.end_get(m);
    return;
  }

  if (h.type == kIcmpUnreachable) {
    ++unreach_rx_;
    // Our 8-byte ICMP header already includes the type-3 "unused" word; the
    // quoted offending IP header follows it directly.
    constexpr std::size_t kQuoteOffset = IpHeader::kSize + IcmpHeader::kSize;
    if (m.len >= kQuoteOffset + IpHeader::kSize && unreachable_handler_) {
      IpHeader offending = IpHeader::parse(mem.view(m.data + kQuoteOffset, IpHeader::kSize));
      unreachable_handler_(h.code, offending);
    }
    input_.end_get(m);
    return;
  }

  // Time-exceeded and friends: account and drop.
  input_.end_get(m);
}

void Icmp::send_unreachable(std::uint8_t code, core::Message offender) {
  core::Cpu& cpu = ip_.runtime().cpu();
  hw::CabMemory& mem = ip_.runtime().board().memory();
  obs::CostScope scope("icmp/output");
  cpu.charge(costs::kIcmpProcessing);

  if (offender.len < IpHeader::kSize) {
    input_.end_get(offender);
    return;
  }
  IpHeader iph = IpHeader::parse(mem.view(offender.data, IpHeader::kSize));

  // Quote the offending IP header + first 8 payload bytes (RFC 792).
  std::size_t quote = std::min<std::size_t>(offender.len, IpHeader::kSize + 8);
  std::size_t total = IcmpHeader::kSize + quote;
  auto out = scratch_.begin_put_try(static_cast<std::uint32_t>(total));
  if (!out.has_value()) {
    input_.end_get(offender);
    return;  // no buffer: the error is expendable
  }
  IcmpHeader eh;
  eh.type = kIcmpUnreachable;
  eh.code = code;
  eh.id = 0;  // the id/seq words are the "unused" field of a type-3 message
  eh.seq = 0;
  std::array<std::uint8_t, IcmpHeader::kSize> hdr;
  eh.serialize(hdr);
  mem.write(out->data, hdr);
  // Copy the quoted bytes from the offender in place.
  std::vector<std::uint8_t> quoted(quote);
  mem.read(offender.data, quoted);
  cpu.charge(static_cast<sim::SimTime>(quote) * costs::kCabCopyPerByte);
  mem.write(out->data + IcmpHeader::kSize, quoted);
  input_.end_get(offender);

  cpu.charge(checksum_cost(total));
  std::uint16_t sum = InternetChecksum::compute(mem.view(out->data, total));
  mem.write8(out->data + 2, static_cast<std::uint8_t>(sum >> 8));
  mem.write8(out->data + 3, static_cast<std::uint8_t>(sum));

  ++unreach_tx_;
  Ip::OutputInfo info;
  info.dst = iph.src;
  info.protocol = kProtoIcmp;
  ip_.output_msg(info, {}, *out, /*free_when_sent=*/true);
}

void Icmp::ping(IpAddr dst, std::uint16_t id, std::uint16_t seq, std::size_t payload_len,
                EchoCallback on_reply) {
  core::Cpu& cpu = ip_.runtime().cpu();
  hw::CabMemory& mem = ip_.runtime().board().memory();
  obs::CostScope scope("icmp/output");
  cpu.charge(costs::kIcmpProcessing);

  std::size_t total = IcmpHeader::kSize + payload_len;
  core::Message m = scratch_.begin_put(static_cast<std::uint32_t>(total));

  IcmpHeader h;
  h.type = kIcmpEchoRequest;
  h.id = id;
  h.seq = seq;
  std::array<std::uint8_t, IcmpHeader::kSize> hdr;
  h.serialize(hdr);
  mem.write(m.data, hdr);
  for (std::size_t i = 0; i < payload_len; ++i) {
    mem.write8(m.data + IcmpHeader::kSize + static_cast<hw::CabAddr>(i),
               static_cast<std::uint8_t>(i));
  }
  cpu.charge(checksum_cost(total));
  std::uint16_t sum = InternetChecksum::compute(mem.view(m.data, total));
  mem.write8(m.data + 2, static_cast<std::uint8_t>(sum >> 8));
  mem.write8(m.data + 3, static_cast<std::uint8_t>(sum));

  pending_[static_cast<std::uint32_t>(id) << 16 | seq] =
      Pending{std::move(on_reply), ip_.runtime().engine().now()};

  Ip::OutputInfo info;
  info.dst = dst;
  info.protocol = kProtoIcmp;
  ip_.output_msg(info, {}, m, /*free_when_sent=*/true);
}

}  // namespace nectar::proto
