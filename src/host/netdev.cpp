#include "host/netdev.hpp"

#include <stdexcept>

#include "obs/pcap.hpp"

namespace nectar::host {

namespace costs = sim::costs;

NetDevice::NetDevice(nectarine::HostNectarine& nin, proto::Datalink& dl) : nin_(nin), dl_(dl) {
  out_pool_ = nin_.create_mailbox("netdev-out");
  in_pool_ = nin_.create_mailbox("netdev-in");
  dl_.register_client(proto::PacketType::NetDev, this);
  dl_.runtime().fork_system("netdev-server", [this] { server_loop(); });
}

void NetDevice::send_packet(int dst_node, std::span<const std::uint8_t> payload) {
  if (payload.size() > kMtu) throw std::invalid_argument("NetDevice: packet exceeds MTU");
  core::Cpu& cpu = nin_.driver().host().cpu();
  // Host protocol stack (IP + transport + socket layer, §5.1) and the
  // user-to-kernel copy — the costs the communication processor exists to
  // offload.
  cpu.charge(costs::kHostStackPerPacket);
  cpu.charge(static_cast<sim::SimTime>(payload.size()) * costs::kHostCopyPerByte);

  if (pcap_ != nullptr) pcap_->packet(dl_.runtime().engine().now(), payload);

  // "to send a packet the driver writes the packet into a free buffer in the
  // output pool and notifies the server."
  core::Message m = nin_.begin_put(out_pool_, static_cast<std::uint32_t>(4 + payload.size()));
  std::vector<std::uint8_t> hdr(4);
  proto::put32n(hdr, 0, static_cast<std::uint32_t>(dst_node));
  nin_.write_message(m, hdr);
  nin_.driver().copy_to_cab(payload, m.data + 4);
  nin_.end_put(out_pool_, m);
  ++tx_;
}

void NetDevice::server_loop() {
  core::CabRuntime& rt = dl_.runtime();
  hw::CabMemory& mem = rt.board().memory();
  for (;;) {
    core::Message m = out_pool_.mb->begin_get();
    if (m.len < 4) {
      out_pool_.mb->end_get(m);
      continue;
    }
    int dst = static_cast<int>(mem.read32(m.data));
    core::Message payload = core::Mailbox::adjust_prefix(m, 4);
    core::Mailbox* storage = out_pool_.mb;
    dl_.send(proto::PacketType::NetDev, dst, {}, payload.data, payload.len,
             [storage, payload] { storage->end_get(payload); });
  }
}

void NetDevice::end_of_data(core::Message m, std::uint8_t src_node) {
  (void)src_node;
  // "when a packet is received the server finds a free input buffer,
  // receives the packet into the buffer, and informs the driver" — the
  // buffer is already in the input pool; publishing notifies the host.
  ++rx_;
  if (pcap_ != nullptr) {
    core::CabRuntime& rt = dl_.runtime();
    pcap_->packet(rt.engine().now(), rt.board().memory().view(m.data, m.len));
  }
  in_pool_.mb->end_put(m);
}

void NetDevice::start_receiver(std::function<void(std::vector<std::uint8_t>)> handler) {
  nin_.driver().host().run_process("netdev-input", [this, handler = std::move(handler)] {
    core::Cpu& cpu = nin_.driver().host().cpu();
    for (;;) {
      core::Message m = nin_.begin_get_block(in_pool_);
      std::vector<std::uint8_t> bytes(m.len);
      nin_.read_message(m, bytes);
      nin_.end_get(in_pool_, m);
      // Kernel-to-user copy plus the host protocol stack on the way up.
      cpu.charge(costs::kHostStackPerPacket);
      cpu.charge(static_cast<sim::SimTime>(bytes.size()) * costs::kHostCopyPerByte);
      handler(std::move(bytes));
    }
  });
}

}  // namespace nectar::host
