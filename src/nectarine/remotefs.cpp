#include "nectarine/remotefs.hpp"

#include <algorithm>

namespace nectar::nectarine {

// --- FileServer ----------------------------------------------------------------

FileServer::FileServer(core::CabRuntime& rt, nproto::ReqResp& reqresp)
    : rt_(rt), reqresp_(reqresp), service_(rt.create_mailbox("file-server")) {
  rt_.fork_app("file-server", [this] { server_loop(); });
}

void FileServer::server_loop() {
  for (;;) {
    core::Message req = service_.begin_get();
    auto info = nproto::ReqResp::parse_request(rt_, req);
    core::Message args = nproto::ReqResp::payload_of(req);
    ++calls_;

    // Response buffer: status plus up to one I/O unit of payload.
    core::Message rsp_buf = service_.begin_put(FileServer::kMaxIo + 256);
    Marshaller::Encoder out(rt_, rsp_buf);

    try {
      Marshaller::Decoder in(rt_, args);
      std::uint32_t op = in.get_u32();
      switch (op) {
        case kOpLookup: {
          std::string name = in.get_string();
          auto it = by_name_.find(name);
          if (it == by_name_.end()) {
            out.put_u32(kNoEnt);
          } else {
            out.put_u32(kOk).put_u32(it->second);
          }
          break;
        }
        case kOpCreate: {
          std::string name = in.get_string();
          if (by_name_.count(name)) {
            out.put_u32(kExists);
            break;
          }
          std::uint32_t fh = next_handle_++;
          by_name_[name] = fh;
          by_handle_[fh] = File{name, {}};
          out.put_u32(kOk).put_u32(fh);
          break;
        }
        case kOpRead: {
          std::uint32_t fh = in.get_u32();
          std::uint32_t off = in.get_u32();
          std::uint32_t len = std::min(in.get_u32(), kMaxIo);
          auto it = by_handle_.find(fh);
          if (it == by_handle_.end()) {
            out.put_u32(kStale);
            break;
          }
          const auto& bytes = it->second.bytes;
          std::uint32_t avail =
              off < bytes.size() ? std::min<std::uint32_t>(
                                       len, static_cast<std::uint32_t>(bytes.size()) - off)
                                 : 0;
          out.put_u32(kOk).put_opaque(
              std::span<const std::uint8_t>(bytes.data() + off, avail));
          break;
        }
        case kOpWrite: {
          std::uint32_t fh = in.get_u32();
          std::uint32_t off = in.get_u32();
          std::vector<std::uint8_t> data = in.get_opaque();
          auto it = by_handle_.find(fh);
          if (it == by_handle_.end()) {
            out.put_u32(kStale);
            break;
          }
          auto& bytes = it->second.bytes;
          if (bytes.size() < off + data.size()) bytes.resize(off + data.size());
          std::copy(data.begin(), data.end(),
                    bytes.begin() + static_cast<std::ptrdiff_t>(off));
          out.put_u32(kOk).put_u32(static_cast<std::uint32_t>(data.size()));
          break;
        }
        case kOpRemove: {
          std::string name = in.get_string();
          auto it = by_name_.find(name);
          if (it == by_name_.end()) {
            out.put_u32(kNoEnt);
            break;
          }
          by_handle_.erase(it->second);
          by_name_.erase(it);
          out.put_u32(kOk);
          break;
        }
        case kOpGetattr: {
          std::uint32_t fh = in.get_u32();
          auto it = by_handle_.find(fh);
          if (it == by_handle_.end()) {
            out.put_u32(kStale);
          } else {
            out.put_u32(kOk).put_u32(static_cast<std::uint32_t>(it->second.bytes.size()));
          }
          break;
        }
        case kOpReaddir: {
          out.put_u32(kOk).put_u32(static_cast<std::uint32_t>(by_name_.size()));
          for (const auto& [name, fh] : by_name_) out.put_string(name);
          break;
        }
        default:
          out.put_u32(kBad);
          break;
      }
    } catch (const std::exception&) {
      out.put_u32(kBad);  // malformed arguments
    }
    service_.end_get(args);
    reqresp_.respond(info, out.finish());
  }
}

// --- FileClient -----------------------------------------------------------------

FileClient::FileClient(core::CabRuntime& rt, nproto::ReqResp& reqresp, core::MailboxAddr server)
    : rt_(rt), reqresp_(reqresp), server_(server), scratch_(rt.create_mailbox("fs-client")) {}

Marshaller::Encoder FileClient::start_call(std::uint32_t op, std::uint32_t arg_bytes) {
  core::Message m = scratch_.begin_put(arg_bytes + 64);
  Marshaller::Encoder enc(rt_, m);
  enc.put_u32(op);
  return enc;
}

FileClient::Status FileClient::lookup(const std::string& name, std::uint32_t* fh_out) {
  auto enc = start_call(FileServer::kOpLookup, Marshaller::string_size(name));
  enc.put_string(name);
  core::Message rsp = reqresp_.call(server_, enc.finish());
  Marshaller::Decoder dec(rt_, rsp);
  Status st{dec.get_u32()};
  if (st.ok() && fh_out != nullptr) *fh_out = dec.get_u32();
  scratch_.end_get(rsp);
  return st;
}

FileClient::Status FileClient::create(const std::string& name, std::uint32_t* fh_out) {
  auto enc = start_call(FileServer::kOpCreate, Marshaller::string_size(name));
  enc.put_string(name);
  core::Message rsp = reqresp_.call(server_, enc.finish());
  Marshaller::Decoder dec(rt_, rsp);
  Status st{dec.get_u32()};
  if (st.ok() && fh_out != nullptr) *fh_out = dec.get_u32();
  scratch_.end_get(rsp);
  return st;
}

FileClient::Status FileClient::remove(const std::string& name) {
  auto enc = start_call(FileServer::kOpRemove, Marshaller::string_size(name));
  enc.put_string(name);
  core::Message rsp = reqresp_.call(server_, enc.finish());
  Marshaller::Decoder dec(rt_, rsp);
  Status st{dec.get_u32()};
  scratch_.end_get(rsp);
  return st;
}

FileClient::Status FileClient::getattr(std::uint32_t fh, std::uint32_t* size_out) {
  auto enc = start_call(FileServer::kOpGetattr, 16);
  enc.put_u32(fh);
  core::Message rsp = reqresp_.call(server_, enc.finish());
  Marshaller::Decoder dec(rt_, rsp);
  Status st{dec.get_u32()};
  if (st.ok() && size_out != nullptr) *size_out = dec.get_u32();
  scratch_.end_get(rsp);
  return st;
}

FileClient::Status FileClient::read(std::uint32_t fh, std::uint32_t offset, std::uint32_t len,
                                    std::vector<std::uint8_t>* out) {
  auto enc = start_call(FileServer::kOpRead, 32);
  enc.put_u32(fh).put_u32(offset).put_u32(len);
  core::Message rsp = reqresp_.call(server_, enc.finish());
  Marshaller::Decoder dec(rt_, rsp);
  Status st{dec.get_u32()};
  if (st.ok() && out != nullptr) *out = dec.get_opaque();
  scratch_.end_get(rsp);
  return st;
}

FileClient::Status FileClient::write(std::uint32_t fh, std::uint32_t offset,
                                     std::span<const std::uint8_t> data,
                                     std::uint32_t* written_out) {
  auto enc = start_call(FileServer::kOpWrite,
                        32 + Marshaller::opaque_size(data.size()));
  enc.put_u32(fh).put_u32(offset).put_opaque(data);
  core::Message rsp = reqresp_.call(server_, enc.finish());
  Marshaller::Decoder dec(rt_, rsp);
  Status st{dec.get_u32()};
  if (st.ok() && written_out != nullptr) *written_out = dec.get_u32();
  scratch_.end_get(rsp);
  return st;
}

FileClient::Status FileClient::readdir(std::vector<std::string>* names_out) {
  auto enc = start_call(FileServer::kOpReaddir, 8);
  core::Message rsp = reqresp_.call(server_, enc.finish());
  Marshaller::Decoder dec(rt_, rsp);
  Status st{dec.get_u32()};
  if (st.ok() && names_out != nullptr) {
    std::uint32_t n = dec.get_u32();
    names_out->clear();
    for (std::uint32_t i = 0; i < n; ++i) names_out->push_back(dec.get_string());
  }
  scratch_.end_get(rsp);
  return st;
}

FileClient::Status FileClient::write_file(const std::string& name,
                                          std::span<const std::uint8_t> data) {
  std::uint32_t fh = 0;
  Status st = lookup(name, &fh);
  if (st.code == FileServer::kNoEnt) st = create(name, &fh);
  if (!st.ok()) return st;
  std::uint32_t off = 0;
  while (off < data.size()) {
    std::uint32_t chunk =
        std::min<std::uint32_t>(FileServer::kMaxIo, static_cast<std::uint32_t>(data.size()) - off);
    std::uint32_t written = 0;
    st = write(fh, off, data.subspan(off, chunk), &written);
    if (!st.ok()) return st;
    off += written;
  }
  return Status{FileServer::kOk};
}

FileClient::Status FileClient::read_file(const std::string& name,
                                         std::vector<std::uint8_t>* out) {
  std::uint32_t fh = 0;
  Status st = lookup(name, &fh);
  if (!st.ok()) return st;
  std::uint32_t size = 0;
  st = getattr(fh, &size);
  if (!st.ok()) return st;
  out->clear();
  std::uint32_t off = 0;
  while (off < size) {
    std::vector<std::uint8_t> chunk;
    st = read(fh, off, FileServer::kMaxIo, &chunk);
    if (!st.ok()) return st;
    if (chunk.empty()) break;
    out->insert(out->end(), chunk.begin(), chunk.end());
    off += static_cast<std::uint32_t>(chunk.size());
  }
  return Status{FileServer::kOk};
}

}  // namespace nectar::nectarine
