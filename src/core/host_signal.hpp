#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "hw/memory.hpp"

namespace nectar::core {

class Cpu;
class BufferHeap;

/// A queued signal element (paper §3.2: "fixed-size elements that consist of
/// an opcode and a parameter"; we carry an auxiliary word for the RPC sync).
struct SignalElement {
  std::uint16_t opcode = 0;
  std::uint32_t param = 0;
  std::uint32_t aux = 0;
};

/// Opcode the CAB places in the host signal queue when a host condition is
/// signaled; the host driver wakes the waiting processes.
constexpr std::uint16_t kOpHostCondSignal = 1;

/// Host-CAB signaling (paper §3.2).
///
/// * Host condition variables: poll words in CAB memory. Signal increments
///   the poll value; Wait (host side) either polls the word over VME or
///   blocks in the CAB device driver until the CAB interrupts the host.
/// * Host signal queue (CAB -> host): drained by the driver's interrupt
///   handler.
/// * CAB signal queue (host -> CAB): drained at interrupt level on the CAB
///   (doorbell), dispatching registered opcode handlers — this is also the
///   transport for the simple host-to-CAB RPC facility.
class HostSignaling {
 public:
  using HostCondId = std::uint32_t;

  HostSignaling(Cpu& cab_cpu, hw::CabMemory& memory, BufferHeap& heap);

  // --- host condition variables -------------------------------------------

  /// Allocate a host condition; its poll word lives in CAB data memory.
  HostCondId alloc_condition();
  void free_condition(HostCondId id);
  hw::CabAddr poll_addr(HostCondId id) const;

  /// Signal from CAB context: increment the poll word, post to the host
  /// signal queue, and interrupt the host.
  void signal(HostCondId id);

  /// Signal from the host side: the caller (host driver) has already charged
  /// the VME write; this updates the poll word and notifies local waiters
  /// through the same host-notify hook.
  void signal_from_host(HostCondId id);

  /// Current poll value (hosts read the word through the driver which
  /// charges VME time; this is the raw accessor).
  std::uint32_t poll_value(HostCondId id) const;

  // --- host signal queue (CAB -> host) --------------------------------------

  /// Invoked whenever the CAB wants the host's attention ("the host is
  /// interrupted"); the host driver installs its interrupt entry here.
  void set_host_interrupt(std::function<void()> fn) { host_interrupt_ = std::move(fn); }
  std::optional<SignalElement> pop_host_signal();
  std::size_t host_queue_depth() const { return host_queue_.size(); }

  /// Post an arbitrary request to the host (§3.2: "this queue can also be
  /// used by the CAB for other kinds of requests to the host, such as
  /// invocation of host I/O and debugging facilities").
  void post_to_host(SignalElement e);

  // --- CAB signal queue (host -> CAB) ----------------------------------------

  /// Register the handler for an opcode; it runs at interrupt level on the
  /// CAB when the host rings the doorbell.
  void register_opcode(std::uint16_t opcode, std::function<void(SignalElement)> handler);

  /// Host side: enqueue a request and ring the CAB's doorbell. The caller
  /// (host driver) charges the VME traffic.
  void post_to_cab(SignalElement e);

  /// Drain the CAB signal queue, dispatching handlers. The runtime wires
  /// this to the doorbell interrupt.
  void drain_cab_queue();

  std::uint64_t signals_sent() const { return signals_sent_; }
  std::uint64_t cab_requests() const { return cab_requests_; }

 private:
  Cpu& cab_cpu_;
  hw::CabMemory& memory_;
  BufferHeap& heap_;

  std::map<HostCondId, hw::CabAddr> conditions_;
  HostCondId next_cond_ = 1;

  std::deque<SignalElement> host_queue_;
  std::function<void()> host_interrupt_;

  std::deque<SignalElement> cab_queue_;
  std::map<std::uint16_t, std::function<void(SignalElement)>> cab_handlers_;

  std::uint64_t signals_sent_ = 0;
  std::uint64_t cab_requests_ = 0;
};

}  // namespace nectar::core
