#include "hw/vme.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace nectar::hw {
namespace {

TEST(VmeBus, ProgrammedAccessCostsOneMicrosecondPerWord) {
  sim::Engine e;
  VmeBus bus(e);
  EXPECT_EQ(bus.programmed_access(1), sim::usec(1));
  EXPECT_EQ(bus.programmed_access(4), sim::usec(5));  // queued behind the first
  EXPECT_EQ(bus.words_transferred(), 5u);
}

TEST(VmeBus, ProgrammedBytesRoundUpToWords) {
  sim::Engine e;
  VmeBus bus(e);
  // 5 bytes = 2 word transfers.
  EXPECT_EQ(bus.programmed_bytes(5), sim::usec(2));
}

TEST(VmeBus, DmaRunsAtThirtyMbit) {
  sim::Engine e;
  VmeBus bus(e);
  bool done = false;
  sim::SimTime done_at = -1;
  bus.dma_transfer(8192, [&] {
    done = true;
    done_at = e.now();
  });
  e.run();
  EXPECT_TRUE(done);
  // 8192 bytes at 30 Mbit/s = ~2184 us (+ setup).
  sim::SimTime expect = sim::costs::kVmeDmaSetup + sim::transmit_time(8192, 30e6);
  EXPECT_EQ(done_at, expect);
}

TEST(VmeBus, BusContentionSerializesDmaAndProgrammedIo) {
  sim::Engine e;
  VmeBus bus(e);
  sim::SimTime dma_done = -1;
  bus.dma_transfer(1000, [&] { dma_done = e.now(); });
  // A programmed access issued while the DMA occupies the bus waits.
  sim::SimTime pio_done = bus.programmed_access(1);
  EXPECT_GT(pio_done, sim::usec(1));
  e.run();
  EXPECT_EQ(pio_done, dma_done + sim::usec(1));
}

TEST(VmeBus, BackToBackDmasQueue) {
  sim::Engine e;
  VmeBus bus(e);
  sim::SimTime first = -1, second = -1;
  bus.dma_transfer(1000, [&] { first = e.now(); });
  bus.dma_transfer(1000, [&] { second = e.now(); });
  e.run();
  sim::SimTime one = sim::costs::kVmeDmaSetup + sim::transmit_time(1000, 30e6);
  EXPECT_EQ(first, one);
  EXPECT_EQ(second, 2 * one);
  EXPECT_EQ(bus.dma_transfers(), 2u);
  EXPECT_EQ(bus.dma_bytes(), 2000u);
}

TEST(VmeBus, ThroughputCeilingIsThirtyMbit) {
  // The paper's host-to-host ceiling comes from this number; sanity-check
  // that a 1 MB transfer takes ~0.27 s of bus time.
  sim::Engine e;
  VmeBus bus(e);
  sim::SimTime done_at = -1;
  bus.dma_transfer(1 << 20, [&] { done_at = e.now(); });
  e.run();
  double mbits = (1 << 20) * 8.0 / 1e6;
  double seconds = static_cast<double>(done_at) / sim::kSecond;
  EXPECT_NEAR(mbits / seconds, 30.0, 0.5);
}

}  // namespace
}  // namespace nectar::hw
