#include "sim/fiber.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nectar::sim {
namespace {

TEST(Fiber, RunsBodyOnResume) {
  bool ran = false;
  Fiber f([&] { ran = true; });
  EXPECT_FALSE(f.started());
  f.resume();
  EXPECT_TRUE(ran);
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, SuspendReturnsControlToResumer) {
  std::vector<int> order;
  Fiber f([&] {
    order.push_back(1);
    Fiber::suspend();
    order.push_back(3);
  });
  f.resume();
  order.push_back(2);
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Fiber, CurrentTracksExecution) {
  EXPECT_EQ(Fiber::current(), nullptr);
  Fiber* inside = nullptr;
  Fiber f([&] { inside = Fiber::current(); });
  f.resume();
  EXPECT_EQ(inside, &f);
  EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, ManySuspendResumeCycles) {
  int counter = 0;
  Fiber f([&] {
    for (int i = 0; i < 1000; ++i) {
      ++counter;
      Fiber::suspend();
    }
  });
  for (int i = 1; i <= 1000; ++i) {
    f.resume();
    EXPECT_EQ(counter, i);
  }
  f.resume();  // let the loop exit
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, TwoFibersInterleave) {
  std::vector<std::string> log;
  Fiber a([&] {
    log.push_back("a1");
    Fiber::suspend();
    log.push_back("a2");
  });
  Fiber b([&] {
    log.push_back("b1");
    Fiber::suspend();
    log.push_back("b2");
  });
  a.resume();
  b.resume();
  a.resume();
  b.resume();
  EXPECT_EQ(log, (std::vector<std::string>{"a1", "b1", "a2", "b2"}));
}

TEST(Fiber, LocalStateSurvivesSuspension) {
  int out = 0;
  Fiber f([&] {
    int local = 10;
    Fiber::suspend();
    local += 32;
    out = local;
  });
  f.resume();
  f.resume();
  EXPECT_EQ(out, 42);
}

TEST(Fiber, NameIsPreserved) {
  Fiber f([] {}, "protocol-input");
  EXPECT_EQ(f.name(), "protocol-input");
}

TEST(Fiber, DestroyUnstartedAndUnfinishedFibersIsSafe) {
  {
    Fiber f([] {});
  }  // never started
  {
    Fiber f([] { Fiber::suspend(); });
    f.resume();
  }  // suspended, destroyed without finishing
  SUCCEED();
}

}  // namespace
}  // namespace nectar::sim
