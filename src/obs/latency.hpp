#pragma once

// Log-bucketed latency histogram for SLO-style tail reporting (p50/p90/p99/
// p999). Fixed geometric bucket layout — 8 sub-buckets per power of two from
// 256 ns up to ~2.3 simulated minutes (~9% relative resolution) — so two
// histograms are always mergeable and a quantile is a deterministic function
// of the recorded counts: the same run serializes byte-identically, which
// keeps scenario reports diffable like every other obs artifact.
//
// This complements obs::Histogram (caller-chosen linear bounds, used for
// size distributions): latencies span five orders of magnitude, where fixed
// linear bounds either blur the tail or cost hundreds of buckets.

#include <array>
#include <cstdint>

#include "obs/json.hpp"
#include "sim/time.hpp"

namespace nectar::obs {

class LatencyHistogram {
 public:
  static constexpr int kSubBits = 3;                     ///< 8 sub-buckets per octave
  static constexpr int kSub = 1 << kSubBits;
  static constexpr int kMinOctave = 8;                   ///< first bound 2^8 = 256 ns
  static constexpr int kMaxOctave = 37;                  ///< ~137 s
  static constexpr int kBuckets = (kMaxOctave - kMinOctave) * kSub + 2;  // +under/overflow

  void observe(sim::SimTime v);

  std::uint64_t count() const { return count_; }
  std::int64_t sum() const { return sum_; }
  sim::SimTime min() const { return count_ ? min_ : 0; }
  sim::SimTime max() const { return max_; }
  double mean() const { return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0; }

  /// Latency (ns) at quantile `q` in [0, 1]: log-linear interpolation inside
  /// the covering bucket. 0 when empty.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p90() const { return quantile(0.90); }
  double p99() const { return quantile(0.99); }
  double p999() const { return quantile(0.999); }

  void merge(const LatencyHistogram& o);

  /// {"count", "sum_ns", "min_ns", "max_ns", "mean_us", "p50_us", "p90_us",
  ///  "p99_us", "p999_us"} — the summary embedded in scenario reports.
  json::Value to_json() const;

  /// Inclusive upper bound (ns) of bucket `i` (tests / exporters).
  static std::int64_t bucket_bound(int i);
  std::uint64_t bucket_count(int i) const { return buckets_.at(static_cast<std::size_t>(i)); }

 private:
  static int bucket_index(std::int64_t v);

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  sim::SimTime min_ = 0;
  sim::SimTime max_ = 0;
};

}  // namespace nectar::obs
