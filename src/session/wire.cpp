#include "session/wire.hpp"

#include <stdexcept>

#include "proto/headers.hpp"

namespace nectar::session {

const char* frame_type_name(FrameType t) {
  switch (t) {
    case FrameType::Open: return "OPEN";
    case FrameType::OpenAck: return "OPEN_ACK";
    case FrameType::OpenNak: return "OPEN_NAK";
    case FrameType::Close: return "CLOSE";
    case FrameType::CloseAck: return "CLOSE_ACK";
    case FrameType::Data: return "DATA";
    case FrameType::Credit: return "CREDIT";
    case FrameType::Reset: return "RESET";
  }
  return "?";
}

void FrameHeader::serialize(std::span<std::uint8_t> out) const {
  if (out.size() < kSize) throw std::length_error("session::FrameHeader: buffer too small");
  proto::put16(out, 0, channel);
  out[2] = generation;
  out[3] = static_cast<std::uint8_t>(type);
  proto::put16(out, 4, seq);
  proto::put16(out, 6, credit);
  proto::put16(out, 8, length);
}

FrameHeader FrameHeader::parse(std::span<const std::uint8_t> in) {
  if (in.size() < kSize) throw std::length_error("session::FrameHeader: truncated frame");
  FrameHeader h;
  h.channel = proto::get16(in, 0);
  h.generation = in[2];
  std::uint8_t t = in[3];
  if (t < static_cast<std::uint8_t>(FrameType::Open) ||
      t > static_cast<std::uint8_t>(FrameType::Reset)) {
    throw std::invalid_argument("session::FrameHeader: unknown frame type " + std::to_string(t));
  }
  h.type = static_cast<FrameType>(t);
  h.seq = proto::get16(in, 4);
  h.credit = proto::get16(in, 6);
  h.length = proto::get16(in, 8);
  return h;
}

std::string FrameHeader::describe() const {
  std::string s = frame_type_name(type);
  s += " ch" + std::to_string(channel) + "#" + std::to_string(generation);
  s += " seq=" + std::to_string(seq);
  s += " credit=" + std::to_string(credit);
  s += " len=" + std::to_string(length);
  return s;
}

}  // namespace nectar::session
