#include "sim/fiber.hpp"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <exception>

// TSan cannot follow swapcontext on its own: without annotations every
// fiber switch looks like one thread magically jumping stacks, and shadow
// state from one fiber's frames bleeds into the next. The fiber API
// (__tsan_create_fiber / __tsan_switch_to_fiber) tells it each Fiber is a
// separate logical execution context.
#if defined(__SANITIZE_THREAD__)
#define NECTAR_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define NECTAR_TSAN_FIBERS 1
#endif
#endif

#ifdef NECTAR_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>
#endif

namespace nectar::sim {

namespace {
/// The fiber currently executing on this OS thread (nullptr = main context).
thread_local Fiber* g_current = nullptr;
/// Handshake slot for makecontext, which cannot carry a pointer portably.
thread_local Fiber* g_starting = nullptr;
#ifdef NECTAR_TSAN_FIBERS
/// TSan handle of the main context that last resumed a fiber on this
/// thread; suspend/finish switch TSan back to it before swapcontext does.
thread_local void* g_tsan_return = nullptr;
#endif
}  // namespace

Fiber::Fiber(std::function<void()> body, std::string name, std::size_t stack_size)
    : body_(std::move(body)), name_(std::move(name)), stack_(stack_size) {}

Fiber::~Fiber() {
  // Destroying a suspended-but-unfinished fiber abandons its stack frame;
  // that is fine for simulation teardown (no RAII cleanup runs on it), and
  // runtime code only destroys fibers it knows are finished or parked.
#ifdef NECTAR_TSAN_FIBERS
  if (tsan_fiber_ != nullptr) __tsan_destroy_fiber(tsan_fiber_);
#endif
}

void Fiber::trampoline() {
  Fiber* self = g_starting;
  g_starting = nullptr;
  try {
    self->body_();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fatal: uncaught exception in fiber '%s': %s\n",
                 self->name_.c_str(), e.what());
    std::abort();
  } catch (...) {
    std::fprintf(stderr, "fatal: uncaught exception in fiber '%s'\n", self->name_.c_str());
    std::abort();
  }
  self->finished_ = true;
#ifdef NECTAR_TSAN_FIBERS
  __tsan_switch_to_fiber(g_tsan_return, 0);
#endif
  // Fall back to the resumer; uc_link handles the final switch.
}

void Fiber::resume() {
  assert(g_current == nullptr && "resume() must be called from the main context");
  assert(!finished_ && "cannot resume a finished fiber");
  g_current = this;
  if (!started_) {
    started_ = true;
    getcontext(&context_);
    context_.uc_stack.ss_sp = stack_.data();
    context_.uc_stack.ss_size = stack_.size();
    context_.uc_link = &return_context_;
    g_starting = this;
    makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
  }
#ifdef NECTAR_TSAN_FIBERS
  if (tsan_fiber_ == nullptr) tsan_fiber_ = __tsan_create_fiber(0);
  g_tsan_return = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
  swapcontext(&return_context_, &context_);
  g_current = nullptr;
}

void Fiber::suspend() {
  Fiber* self = g_current;
  assert(self != nullptr && "suspend() called outside any fiber");
  g_current = nullptr;
#ifdef NECTAR_TSAN_FIBERS
  __tsan_switch_to_fiber(g_tsan_return, 0);
#endif
  swapcontext(&self->context_, &self->return_context_);
  // Resumed again.
  g_current = self;
}

Fiber* Fiber::current() { return g_current; }

}  // namespace nectar::sim
