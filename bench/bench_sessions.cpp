// Virtual-channel session layer at scale (docs/SESSIONS.md): the paper's
// "thousands of mailboxes per CAB" claim stretched to a full fabric. Two
// phases, both pure functions of the seed, committed as BENCH_sessions.json:
//
//   scale  8-node fat-tree, 10'500 logical channels per node multiplexed
//          over 6 RMP trunk connections (admission caps each trunk at 1'700
//          inbound channels, so ~300 opens per node are refused loudly). A
//          churn storm closes/reopens channels mid-traffic, then a CAB crash
//          at 220ms kills node 1: every trunk toward it must fail its
//          channels with attribution instead of hanging. The bench exits
//          non-zero unless >= 10'000 channels per node actually opened,
//          admission refused some, the crash surfaced as trunk failures, and
//          delivery stayed lossless modulo the crash window.
//
//   hol    4-node star, both probe channels sharing ONE trunk. Channel 0's
//          inbound credit is frozen for 60ms mid-run; per-channel flow
//          control must confine the stall to channel 0 — the sibling's p99
//          has to stay within 25% of a stall-free baseline run, on the same
//          trunk the victim is wedged on.
//
// Everything reported is simulated time only, so the committed JSON must
// regenerate byte-for-byte (CI runs the bench twice and cmp's, then diffs
// against BENCH_sessions.json via tools/bench_diff).

#include <cmath>
#include <map>

#include "common.hpp"
#include "obs/json.hpp"
#include "scenario/engine.hpp"
#include "scenario/sessions.hpp"

namespace nectar::bench {
namespace {

constexpr const char* kScaleConfig = R"(
[scenario]
name = sessions-scale
seed = 1990
duration = 300ms

[topology]
kind = fat_tree
nodes = 8
hub_ports = 16
spines = 4

[sessions]
enabled = true
trunks = 6
channels = 10500
max_channels = 1700
rate = 2000
size = 64
warmup = 60ms
aggregation = 1ms
churn_rate = 1000
churn_start = 120ms
churn_duration = 60ms
fail_timeout = 15ms

[fault]
kind = cab_crash
target = node1.cab
at = 220ms
)";

constexpr const char* kHolConfig = R"(
[scenario]
name = sessions-hol
seed = 1990
duration = 250ms

[topology]
kind = star
nodes = 4

[sessions]
enabled = true
trunks = 1
channels = 8
rate = 1200
size = 32
warmup = 20ms
initial_credit = 2
probe_channels = 2
)";

/// RunReport rows as a name -> (value, unit) map, via the JSON the report
/// already serializes (RunReport keeps its rows private by design).
std::map<std::string, std::pair<double, std::string>> rows_of(const obs::RunReport& rep) {
  std::map<std::string, std::pair<double, std::string>> out;
  obs::json::Value doc = obs::json::Value::parse(rep.to_json_string());
  const obs::json::Value* results = doc.find("results");
  if (results != nullptr) {
    for (std::size_t i = 0; i < results->size(); ++i) {
      const obs::json::Value& r = results->at(i);
      out[r.find("name")->as_string()] = {r.find("value")->as_double(),
                                          r.find("unit")->as_string()};
    }
  }
  return out;
}

double need(const std::map<std::string, std::pair<double, std::string>>& rows,
            const std::string& name, int* rc) {
  auto it = rows.find(name);
  if (it == rows.end()) {
    std::fprintf(stderr, "error: scenario report lacks row %s\n", name.c_str());
    *rc = 1;
    return 0.0;
  }
  return it->second.first;
}

int run_scale(const BenchOptions&, obs::RunReport& report) {
  scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::from_config(scenario::Config::parse_string(kScaleConfig));
  const int nodes = spec.topology.nodes;
  const int trunks = spec.sessions.trunks;
  scenario::Scenario sc(spec);
  sc.run();
  auto rows = rows_of(sc.report());

  int rc = 0;
  double opened = need(rows, "session.opened", &rc);
  double refused = need(rows, "session.refused", &rc);
  double failed = need(rows, "session.failed", &rc);
  double trunk_failures = need(rows, "session.trunk_failures", &rc);
  double proto_errors = need(rows, "session.proto_errors", &rc);
  double sent = need(rows, "session.data.sent", &rc);
  double delivered = need(rows, "session.data.delivered", &rc);
  double shed = need(rows, "session.data.shed", &rc);
  double churn = need(rows, "session.churn.cycles", &rc);
  double frames_per_msg = need(rows, "session.trunk.frames_per_msg", &rc);
  double per_node = opened / nodes;

  std::printf("%7.0f channels opened (%c%.0f/node over %d trunks), %.0f refused\n", opened,
              per_node >= 10000 ? ' ' : '!', per_node, trunks, refused);
  std::printf("%7.0f msgs sent, %.0f delivered, %.0f shed; %.1f frames/trunk msg\n", sent,
              delivered, shed, frames_per_msg);
  std::printf("%7.0f churn cycles; crash: %.0f trunks failed, %.0f channels failed\n", churn,
              trunk_failures, failed);

  // The headline claims, gated:
  if (per_node < 10000) {
    std::fprintf(stderr, "error: only %.0f channels per node opened (want >= 10000)\n",
                 per_node);
    rc = 1;
  }
  if (trunks > 8) {
    std::fprintf(stderr, "error: %d trunks per node (the claim is <= 8)\n", trunks);
    rc = 1;
  }
  if (refused <= 0) {
    std::fprintf(stderr, "error: admission control never refused an open\n");
    rc = 1;
  }
  if (trunk_failures <= 0 || failed <= 0) {
    std::fprintf(stderr, "error: the CAB crash surfaced no trunk/channel failures\n");
    rc = 1;
  }
  if (proto_errors != 0) {
    std::fprintf(stderr, "error: %.0f protocol errors under churn\n", proto_errors);
    rc = 1;
  }
  if (churn <= 0) {
    std::fprintf(stderr, "error: the churn storm never cycled a channel\n");
    rc = 1;
  }
  // Backpressure is shed, never loss: only the crash window may strand sent
  // messages (in flight toward, or out of, the dead node).
  if (delivered < 0.9 * sent) {
    std::fprintf(stderr, "error: delivered %.0f of %.0f sent (want >= 90%%)\n", delivered,
                 sent);
    rc = 1;
  }

  report.add("sessions.scale.nodes", nodes, "count");
  report.add("sessions.scale.trunks_per_node", trunks, "count");
  report.add("sessions.scale.channels_per_node", per_node, "count");
  for (const char* k :
       {"session.opened", "session.refused", "session.closed", "session.failed",
        "session.trunk_failures", "session.credit_stalls", "session.gen_mismatch_drops",
        "session.proto_errors", "session.frames.sent", "session.frames.delivered",
        "session.trunk.frames_per_msg", "session.data.sent", "session.data.delivered",
        "session.data.shed", "session.data.p50", "session.data.p99", "session.open.p99",
        "session.churn.cycles"}) {
    auto it = rows.find(k);
    if (it == rows.end()) continue;
    report.add("sessions.scale." + std::string(k).substr(8), it->second.first,
               it->second.second);
  }
  return rc;
}

int run_hol(const BenchOptions&, obs::RunReport& report) {
  auto run_once = [&](bool stalled) {
    scenario::ScenarioSpec spec =
        scenario::ScenarioSpec::from_config(scenario::Config::parse_string(kHolConfig));
    if (stalled) {
      spec.sessions.stall_at = sim::msec(80);
      spec.sessions.stall_duration = sim::msec(60);
      spec.sessions.stall_channels = 1;
    }
    scenario::Scenario sc(spec);
    sc.run();
    return rows_of(sc.report());
  };
  auto clean = run_once(false);
  auto stall = run_once(true);

  int rc = 0;
  double baseline_p99 = need(clean, "session.probe1.p99", &rc);
  double victim_p99 = need(stall, "session.probe0.p99", &rc);
  double sibling_p99 = need(stall, "session.probe1.p99", &rc);
  double stalls = need(stall, "session.credit_stalls", &rc);
  double ratio = baseline_p99 > 0 ? sibling_p99 / baseline_p99 : 0.0;

  std::printf("victim p99 %.0fus under a 60ms freeze; sibling p99 %.1fus vs %.1fus "
              "stall-free (%.2fx), same trunk\n",
              victim_p99, sibling_p99, baseline_p99, ratio);

  if (stalls <= 0) {
    std::fprintf(stderr, "error: the credit freeze never stalled the victim\n");
    rc = 1;
  }
  if (victim_p99 < 10'000.0) {
    std::fprintf(stderr, "error: victim p99 %.0fus does not reflect the 60ms stall\n",
                 victim_p99);
    rc = 1;
  }
  if (ratio < 1.0 / 1.25 || ratio > 1.25) {
    std::fprintf(stderr,
                 "error: sibling p99 moved %.2fx under the stall (want within 1.25x) — "
                 "head-of-line blocking leaked across channels\n",
                 ratio);
    rc = 1;
  }

  report.add("sessions.hol.victim_p99_us", victim_p99, "us");
  report.add("sessions.hol.sibling_p99_us", sibling_p99, "us");
  report.add("sessions.hol.baseline_p99_us", baseline_p99, "us");
  report.add("sessions.hol.sibling_over_baseline", ratio, "ratio");
  report.add("sessions.hol.credit_stalls", stalls, "count");
  return rc;
}

int run(const BenchOptions& options) {
  print_header("virtual-channel session layer: 10k channels/node, no cross-channel HOL");

  obs::RunReport report("sessions");
  report.param("scale_topology", "fat_tree");
  report.param("scale_nodes", 8);
  report.param("scale_channels", 10500);
  report.param("scale_trunks", 6);
  report.param("hol_topology", "star");
  report.param("hol_trunks", 1);

  std::printf("--- scale: churn storm + CAB crash over 6 trunks/node ---\n");
  int rc = run_scale(options, report);
  std::printf("\n--- head-of-line isolation: frozen channel on a shared trunk ---\n");
  rc |= run_hol(options, report);

  finish_report(options, report);
  return rc;
}

}  // namespace
}  // namespace nectar::bench

int main(int argc, char** argv) {
  return nectar::bench::run(nectar::bench::parse_options(argc, argv));
}
