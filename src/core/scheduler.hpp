#pragma once

#include <cstddef>
#include <deque>
#include <map>

namespace nectar::core {

class Thread;

/// Ready queue: highest priority first, FIFO within a priority level
/// (paper §3.1: preemptive, priority-based scheduling).
class RunQueue {
 public:
  void push(Thread* t);
  /// Re-admit a preempted thread at the head of its priority level so it
  /// continues before its round-robin peers.
  void push_front(Thread* t);
  Thread* pop_best();
  Thread* peek_best() const;
  bool remove(Thread* t);
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

 private:
  // Key is -priority so begin() is the best level.
  std::map<int, std::deque<Thread*>> levels_;
  std::size_t size_ = 0;
};

}  // namespace nectar::core
