#include "hw/crc.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace nectar::hw {
namespace {

std::vector<std::uint8_t> bytes(const std::string& s) { return {s.begin(), s.end()}; }

TEST(Crc32, KnownVector) {
  // CRC-32/IEEE of "123456789" is 0xCBF43926 (standard check value).
  auto data = bytes("123456789");
  EXPECT_EQ(Crc32::compute(data), 0xCBF43926u);
}

TEST(Crc32, EmptyInput) {
  std::vector<std::uint8_t> empty;
  EXPECT_EQ(Crc32::compute(empty), 0u);
}

TEST(Crc32, StreamingMatchesOneShot) {
  auto data = bytes("the quick brown fox jumps over the lazy dog");
  Crc32 c;
  c.update(std::span<const std::uint8_t>(data).subspan(0, 10));
  c.update(std::span<const std::uint8_t>(data).subspan(10));
  EXPECT_EQ(c.value(), Crc32::compute(data));
}

TEST(Crc32, DetectsSingleBitFlip) {
  auto data = bytes("important packet payload");
  std::uint32_t good = Crc32::compute(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 0x01;
    EXPECT_NE(Crc32::compute(data), good) << "flip at byte " << i;
    data[i] ^= 0x01;
  }
}

TEST(Crc32, DetectsByteSwap) {
  auto a = bytes("AB");
  auto b = bytes("BA");
  EXPECT_NE(Crc32::compute(a), Crc32::compute(b));
}

TEST(Crc32, ResetClearsState) {
  auto data = bytes("payload");
  Crc32 c;
  c.update(data);
  c.reset();
  c.update(data);
  EXPECT_EQ(c.value(), Crc32::compute(data));
}

}  // namespace
}  // namespace nectar::hw
