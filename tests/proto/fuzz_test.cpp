// Adversarial-input robustness: a hostile node blasts malformed frames at a
// victim running the full stack. Nothing may crash, wedge a server thread,
// or leak a buffer — malformed input is dropped and accounted.

#include <gtest/gtest.h>

#include "net/system.hpp"
#include "sim/random.hpp"

namespace nectar::proto {
namespace {

/// Heap bytes legitimately resident at idle (mailbox small-buffer caches).
std::size_t idle_floor(core::CabRuntime& rt) {
  return rt.mailbox_count() * core::Mailbox::kSmallBufSize + 256;
}

struct Fixture {
  net::NectarSystem sys{2};
  sim::Random rng{20260707};

  /// Send a raw datalink frame of `type` with the given protocol-header
  /// bytes and `payload_len` random payload bytes from node 0 to node 1.
  void blast(PacketType type, std::vector<std::uint8_t> header, std::size_t payload_len) {
    core::CabRuntime& rt = sys.runtime(0);
    hw::CabAddr buf = payload_len > 0 ? rt.heap().alloc(payload_len) : hw::kDataBase;
    if (payload_len > 0) {
      std::vector<std::uint8_t> junk(payload_len);
      for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_below(256));
      rt.board().memory().write(buf, junk);
    }
    sys.net().datalink(0).send(type, 1, std::move(header), buf, payload_len);
    // (the buffer is intentionally leaked on the *sender* — the victim's
    // accounting is what this test watches)
  }

  std::vector<std::uint8_t> random_bytes(std::size_t n) {
    std::vector<std::uint8_t> v(n);
    for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_below(256));
    return v;
  }

  void run_attack(std::function<void()> attack) {
    sys.runtime(0).fork_system("attacker", std::move(attack));
    sys.net().run_until(sim::sec(2));
  }
};

TEST(Fuzz, UnknownPacketTypesAreDropped) {
  Fixture f;
  f.run_attack([&] {
    for (int i = 0; i < 20; ++i) {
      f.blast(static_cast<PacketType>(200 + i % 50), f.random_bytes(8), 64);
    }
  });
  EXPECT_EQ(f.sys.net().datalink(1).dropped_no_client(), 20u);
  EXPECT_LE(f.sys.runtime(1).heap().bytes_in_use(), idle_floor(f.sys.runtime(1)));
}

TEST(Fuzz, GarbageIpHeadersAreDropped) {
  Fixture f;
  f.run_attack([&] {
    for (int i = 0; i < 30; ++i) {
      // Random 20-byte "IP headers": essentially all fail the checksum or
      // the version/length sanity checks at start-of-data.
      f.blast(PacketType::Ip, f.random_bytes(IpHeader::kSize), 40);
    }
  });
  EXPECT_EQ(f.sys.stack(1).ip.dropped_bad_header(), 30u);
  EXPECT_EQ(f.sys.stack(1).ip.datagrams_delivered(), 0u);
  EXPECT_LE(f.sys.runtime(1).heap().bytes_in_use(), idle_floor(f.sys.runtime(1)));
}

TEST(Fuzz, TruncatedIpHeadersAreDropped) {
  Fixture f;
  f.run_attack([&] {
    for (std::size_t n = 0; n < IpHeader::kSize; n += 3) {
      f.blast(PacketType::Ip, f.random_bytes(n), 0);
    }
  });
  EXPECT_EQ(f.sys.stack(1).ip.datagrams_delivered(), 0u);
  EXPECT_LE(f.sys.runtime(1).heap().bytes_in_use(), idle_floor(f.sys.runtime(1)));
}

TEST(Fuzz, RandomNectarHeadersDoNotWedgeProtocols) {
  Fixture f;
  f.run_attack([&] {
    for (int i = 0; i < 25; ++i) {
      f.blast(PacketType::NectarDatagram, f.random_bytes(NectarHeader::kSize), 32);
      f.blast(PacketType::Rmp, f.random_bytes(NectarHeader::kSize), 32);
      f.blast(PacketType::ReqResp, f.random_bytes(NectarHeader::kSize), 32);
    }
    // Truncated protocol headers too.
    for (std::size_t n = 0; n < NectarHeader::kSize; n += 5) {
      f.blast(PacketType::NectarDatagram, f.random_bytes(n), 0);
      f.blast(PacketType::Rmp, f.random_bytes(n), 0);
    }
  });
  // The victim's protocols are still alive: a legitimate datagram after the
  // storm gets through.
  core::Mailbox& inbox = f.sys.runtime(1).create_mailbox("after");
  bool delivered = false;
  f.sys.runtime(0).fork_system("legit", [&] {
    core::Mailbox& s = f.sys.runtime(0).create_mailbox("s");
    core::Message m = s.begin_put(16);
    f.sys.stack(0).datagram.send(inbox.address(), m);
  });
  f.sys.runtime(1).fork_system("rx", [&] {
    core::Message m = inbox.begin_get();
    inbox.end_get(m);
    delivered = true;
  });
  f.sys.net().run_until(sim::sec(4));
  EXPECT_TRUE(delivered);
}

TEST(Fuzz, RandomTcpSegmentsAreRejected) {
  Fixture f;
  f.run_attack([&] {
    for (int i = 0; i < 30; ++i) {
      // A valid-enough IP header carrying protocol 6 with random TCP bytes:
      // the software checksum (or the connection lookup + RST path) rejects.
      IpHeader iph;
      iph.total_len = static_cast<std::uint16_t>(IpHeader::kSize + TcpHeader::kSize + 16);
      iph.protocol = kProtoTcp;
      iph.src = ip_of_node(0);
      iph.dst = ip_of_node(1);
      std::vector<std::uint8_t> hdr(IpHeader::kSize + TcpHeader::kSize);
      iph.serialize(hdr);
      auto tcp_junk = f.random_bytes(TcpHeader::kSize);
      tcp_junk[12] = 5 << 4;  // keep the data-offset parseable
      std::copy(tcp_junk.begin(), tcp_junk.end(), hdr.begin() + IpHeader::kSize);
      f.blast(PacketType::Ip, hdr, 16);
    }
  });
  // No connection materialized; the stack answered with RSTs or dropped on
  // checksum; nothing leaked.
  EXPECT_EQ(f.sys.stack(1).tcp.segments_received(), 30u);
  EXPECT_GT(f.sys.stack(1).tcp.bad_checksums() + f.sys.stack(1).tcp.resets_sent(), 0u);
  EXPECT_LE(f.sys.runtime(1).heap().bytes_in_use(), idle_floor(f.sys.runtime(1)));
}

TEST(Fuzz, LengthFieldLiesAreCaught) {
  Fixture f;
  f.run_attack([&] {
    for (int i = 0; i < 10; ++i) {
      // IP header claims more bytes than the frame carries (and vice versa).
      IpHeader iph;
      iph.total_len = 9999;
      iph.protocol = kProtoUdp;
      iph.src = ip_of_node(0);
      iph.dst = ip_of_node(1);
      std::vector<std::uint8_t> hdr(IpHeader::kSize);
      iph.serialize(hdr);
      f.blast(PacketType::Ip, hdr, 8);

      iph.total_len = IpHeader::kSize;  // claims empty, carries 64
      std::vector<std::uint8_t> hdr2(IpHeader::kSize);
      iph.serialize(hdr2);
      f.blast(PacketType::Ip, hdr2, 64);
    }
  });
  EXPECT_EQ(f.sys.stack(1).ip.dropped_bad_header(), 20u);
  EXPECT_LE(f.sys.runtime(1).heap().bytes_in_use(), idle_floor(f.sys.runtime(1)));
}

}  // namespace
}  // namespace nectar::proto
