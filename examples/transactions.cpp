// transactions: a miniature Camelot (paper §5.3).
//
// "Communication is a major bottleneck in the Camelot distributed
// transaction system, so experiments are being planned to offload Camelot's
// distributed locking and commit protocols to the CAB."
//
// Node 0's CAB hosts a lock server and a tiny record store; worker tasks on
// the other CABs run read-modify-write "transactions" against shared
// records under exclusive locks. Run it with locking on (default) and off
// (argv[1] = "race") to watch lost updates appear when the lock manager is
// bypassed.
//
//   $ ./transactions          # serialized: final balance is exact
//   $ ./transactions race     # unlocked: lost updates likely

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "nectarine/lockmgr.hpp"
#include "net/system.hpp"

using namespace nectar;

namespace {

/// A record store on node 0's CAB: READ(name) -> u32, WRITE(name, u32).
class RecordStore {
 public:
  static constexpr std::uint32_t kOpRead = 1;
  static constexpr std::uint32_t kOpWrite = 2;

  RecordStore(core::CabRuntime& rt, nproto::ReqResp& rr) : rt_(rt), rr_(rr),
        svc_(rt.create_mailbox("record-store")) {
    rt_.fork_system("record-store", [this] { loop(); });
  }
  core::MailboxAddr address() const { return svc_.address(); }

 private:
  void loop() {
    hw::CabMemory& mem = rt_.board().memory();
    for (;;) {
      core::Message req = svc_.begin_get();
      auto info = nproto::ReqResp::parse_request(rt_, req);
      core::Message p = nproto::ReqResp::payload_of(req);
      std::uint32_t result = 0;
      if (p.len >= 8) {
        std::uint32_t op = mem.read32(p.data);
        std::uint32_t value = mem.read32(p.data + 4);
        std::vector<std::uint8_t> nb(p.len - 8);
        mem.read(p.data + 8, nb);
        std::string name(nb.begin(), nb.end());
        if (op == kOpWrite) records_[name] = value;
        result = records_[name];
      }
      svc_.end_get(p);
      core::Message rsp = svc_.begin_put(4);
      mem.write32(rsp.data, result);
      rr_.respond(info, rsp);
    }
  }

  core::CabRuntime& rt_;
  nproto::ReqResp& rr_;
  core::Mailbox& svc_;
  std::map<std::string, std::uint32_t> records_;
};

std::uint32_t store_call(core::CabRuntime& rt, nproto::ReqResp& rr, core::MailboxAddr store,
                         std::uint32_t op, const std::string& name, std::uint32_t value) {
  hw::CabMemory& mem = rt.board().memory();
  core::Mailbox& scratch = rt.create_mailbox("txn-scratch");
  core::Message req = scratch.begin_put(static_cast<std::uint32_t>(8 + name.size()));
  mem.write32(req.data, op);
  mem.write32(req.data + 4, value);
  mem.write(req.data + 8, std::span<const std::uint8_t>(
                              reinterpret_cast<const std::uint8_t*>(name.data()), name.size()));
  core::Message rsp = rr.call(store, req);
  std::uint32_t out = rsp.len >= 4 ? mem.read32(rsp.data) : 0;
  scratch.end_get(rsp);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool use_locks = !(argc > 1 && std::string(argv[1]) == "race");
  constexpr int kWorkers = 3;
  constexpr int kTxnsEach = 20;

  net::NectarSystem sys(kWorkers + 1);
  nectarine::LockServer locks(sys.runtime(0), sys.stack(0).reqresp, sys.stack(0).rmp);
  RecordStore store(sys.runtime(0), sys.stack(0).reqresp);

  std::printf("mini-Camelot: %d workers x %d transactions on record \"balance\" (%s)\n\n",
              kWorkers, kTxnsEach, use_locks ? "with CAB lock manager" : "UNLOCKED — racy");

  for (int w = 1; w <= kWorkers; ++w) {
    sys.runtime(w).fork_app("worker", [&sys, &locks, &store, w, use_locks] {
      core::CabRuntime& rt = sys.runtime(w);
      nproto::ReqResp& rr = sys.stack(w).reqresp;
      nectarine::LockClient lock(rt, rr, locks.address(), static_cast<std::uint32_t>(w));
      for (int i = 0; i < kTxnsEach; ++i) {
        if (use_locks) lock.acquire("balance", nectarine::LockServer::Mode::Exclusive);
        // The read-modify-write critical section, deliberately spread over
        // several network round trips so races have room to happen.
        std::uint32_t v = store_call(rt, rr, store.address(), RecordStore::kOpRead, "balance", 0);
        rt.cpu().charge(sim::usec(50));  // "business logic"
        store_call(rt, rr, store.address(), RecordStore::kOpWrite, "balance", v + 1);
        if (use_locks) lock.release("balance");
      }
    });
  }
  sys.net().run_until(sim::sec(60));

  std::uint32_t final_balance = 0;
  sys.runtime(0).fork_app("audit", [&] {
    final_balance =
        store_call(sys.runtime(0), sys.stack(0).reqresp, store.address(), RecordStore::kOpRead,
                   "balance", 0);
  });
  sys.net().run_until(sim::sec(61));

  int expected = kWorkers * kTxnsEach;
  std::printf("expected balance : %d\n", expected);
  std::printf("final balance    : %u\n", final_balance);
  std::printf("lock grants      : %llu (queued waits: %llu)\n",
              static_cast<unsigned long long>(locks.grants()),
              static_cast<unsigned long long>(locks.queued_waits()));
  if (static_cast<int>(final_balance) == expected) {
    std::printf("\nserializable: no lost updates.\n");
  } else {
    std::printf("\nLOST UPDATES: %d increments vanished in the race.\n",
                expected - static_cast<int>(final_balance));
  }
  return 0;
}
