// Tail-trace bench: causal tracing with tail-latency attribution on a
// two-leaf/two-spine fat tree under a mid-run fault burst. An open-loop UDP
// aggregate and closed-loop TCP users share the fabric; at 400 ms a spine
// uplink goes dark for 150 ms (probes mark the paths dead, the control plane
// fails traffic over) and a loss burst chews on a leaf link. Head-sampled
// messages carry a 16-byte trace stamp through every layer, and the
// CriticalPathAnalyzer decomposes the resulting per-flow p99 tail into its
// stage classes: queueing vs protocol vs retransmit wait vs reroute wait.
//
// There is no paper figure for this; it is the acceptance experiment for the
// causal-tracing subsystem (docs/OBSERVABILITY.md). The run is
// deterministic: the committed BENCH_tailtrace.json must reproduce
// byte-for-byte from `bench_tailtrace --json`.

#include "common.hpp"
#include "obs/causal.hpp"
#include "scenario/engine.hpp"

namespace nectar::bench {
namespace {

constexpr const char* kConfig = R"(
[scenario]
name = tailtrace
seed = 1990
duration = 1s

[topology]
kind = fat_tree
nodes = 12
hub_ports = 8
spines = 2

[routing]
enabled = true
paths = 2
probe_interval = 25ms
probe_timeout = 5ms
dead_after = 3
recover_after = 2

# Every fourth message rides with a trace stamp: enough tail coverage for
# stable attribution, cheap enough that the stamp bytes do not distort the
# aggregate (16 B on 512 B payloads, 1/4 of messages).
[tracing]
enabled = true
sample = 0.25
top_k = 5
max_traces = 100000

# ~2 Mbit/s per flow of open-loop UDP across the spines: the traffic whose
# tail the blackout and the failover window shape.
[workload]
name = udp-open
proto = udp
mode = open
users = 4
rate = 125
size = 512
stride = 6

# Closed-loop TCP users riding the same fabric: their retransmit timers turn
# blackout loss into retransmit-wait tail time.
[workload]
name = tcp-closed
proto = tcp
mode = closed
users = 1
think = 2ms
size = 1024
stride = 6

# Leaf 0's uplink to spine 0 goes dark for 150 ms: long enough for probe
# loss to mark the spine-0 paths dead and fail flows over to spine 1.
[fault]
kind = hub_blackout
target = hub0.port6
at = 400ms
duration = 150ms

# And a loss burst on a leaf link while the reroute is in flight.
[fault]
kind = link_drop_burst
target = node2.link
at = 420ms
count = 40
)";

int run(const BenchOptions& options) {
  scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::from_config(scenario::Config::parse_string(kConfig));
  scenario::Scenario sc(std::move(spec));
  if (!options.trace_path.empty()) sc.net().tracer().set_enabled(true);
  start_profile(options, sc.net().profiler());
  std::printf("tailtrace: %d nodes, %zu workloads, %zu faults, %.0f ms simulated, sample %.2f\n",
              sc.spec().topology.nodes, sc.spec().workloads.size(), sc.spec().faults.size(),
              sim::to_msec(sc.spec().duration), sc.spec().tracing.sample);
  sc.run();

  const obs::CausalTracer& ct = *sc.causal_tracer();
  obs::CriticalPathAnalyzer cpa(ct);
  std::string violation = cpa.verify();
  if (!violation.empty()) {
    std::fprintf(stderr, "FAIL: cut-point invariant violated: %s\n", violation.c_str());
    return 1;
  }

  std::printf("\ntraces: %llu started, %llu finished, %llu sampled out\n",
              static_cast<unsigned long long>(ct.started()),
              static_cast<unsigned long long>(ct.finished_count()),
              static_cast<unsigned long long>(ct.sampled_out()));

  // Print the per-flow tail decomposition from the artifact the analyzer
  // renders (the same numbers land in the report's tailtrace.* rows).
  double retx_plus_reroute = 0.0;
  obs::json::Value art = cpa.artifact(static_cast<std::size_t>(sc.spec().tracing.top_k));
  for (const obs::json::Value& f : art.find("flows")->items()) {
    std::printf("\nflow %-12s p99 %8.1f us over %lld finished, tail of %lld:\n",
                f.find("flow")->as_string().c_str(), f.find("e2e_p99_us")->as_double(),
                static_cast<long long>(f.find("finished")->as_int()),
                static_cast<long long>(f.find("tail_count")->as_int()));
    for (const auto& [cls, row] : f.find("tail")->members()) {
      double us = row.find("us")->as_double();
      if (cls == "retransmit" || cls == "reroute") retx_plus_reroute += us;
      if (us <= 0.0) continue;
      std::printf("  %-14s %10.1f us  %5.1f%%\n", cls.c_str(), us,
                  100.0 * row.find("share")->as_double());
    }
  }

  obs::RunReport report = sc.report();
  finish_report(options, report);
  finish_trace(options.trace_path, sc.net().tracer());
  finish_profile(options, sc.net().profiler());

  if (ct.finished_count() == 0) {
    std::fprintf(stderr, "FAIL: no traces finished\n");
    return 1;
  }
  // The fault burst must actually show up in the tail: some tail time
  // attributed to waiting out loss (retransmit) or a reroute window.
  if (retx_plus_reroute <= 0.0) {
    std::fprintf(stderr, "FAIL: fault burst left no retransmit/reroute tail time\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace nectar::bench

int main(int argc, char** argv) {
  return nectar::bench::run(nectar::bench::parse_options(argc, argv));
}
