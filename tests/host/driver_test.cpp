#include "host/driver.hpp"

#include <gtest/gtest.h>

#include "host/node.hpp"
#include "net/system.hpp"

namespace nectar::host {
namespace {

struct Fixture {
  net::NectarSystem sys{2, /*with_vme=*/true};
  HostNode h0{sys, 0};
  HostNode h1{sys, 1};
};

TEST(Driver, ProgrammedIoReadsAndWritesCabMemory) {
  Fixture f;
  std::uint32_t got = 0;
  f.h0.host.run_process("p", [&] {
    f.h0.driver.write32(hw::kDataBase + 64, 0xFEEDFACE);
    got = f.h0.driver.read32(hw::kDataBase + 64);
  });
  f.sys.engine().run();
  EXPECT_EQ(got, 0xFEEDFACEu);
  EXPECT_GE(f.sys.net().vme(0)->words_transferred(), 2u);
}

TEST(Driver, ProgrammedIoCostsAMicrosecondPerWord) {
  Fixture f;
  sim::SimTime elapsed = -1;
  f.h0.host.run_process("p", [&] {
    sim::SimTime t0 = f.sys.engine().now();
    for (int i = 0; i < 100; ++i) f.h0.driver.write32(hw::kDataBase, 1);
    elapsed = f.sys.engine().now() - t0;
  });
  f.sys.engine().run();
  EXPECT_GE(elapsed, sim::usec(100));  // the paper's ~1 us per access
  EXPECT_LT(elapsed, sim::usec(200));
}

TEST(Driver, DmaMovesBulkDataBothWays) {
  Fixture f;
  std::vector<std::uint8_t> out(4096);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = static_cast<std::uint8_t>(i * 7);
  std::vector<std::uint8_t> back(4096, 0);
  f.h0.host.run_process("p", [&] {
    f.h0.driver.dma_to_cab(out, hw::kDataBase + 8192);
    f.h0.driver.dma_from_cab(hw::kDataBase + 8192, back);
  });
  f.sys.engine().run();
  EXPECT_EQ(back, out);
  EXPECT_EQ(f.sys.net().vme(0)->dma_transfers(), 2u);
}

TEST(Driver, HostConditionPollWait) {
  Fixture f;
  auto cond = f.sys.runtime(0).signals().alloc_condition();
  sim::SimTime woke_at = -1;
  f.h0.host.run_process("waiter", [&] {
    std::uint32_t v = f.h0.driver.wait_poll(cond, 0);
    woke_at = f.sys.engine().now();
    EXPECT_EQ(v, 1u);
  });
  // A CAB thread signals after 300 us.
  f.sys.runtime(0).fork_system("signaler", [&] {
    f.sys.runtime(0).cpu().sleep_until(sim::usec(300));
    f.sys.runtime(0).signals().signal(cond);
  });
  f.sys.engine().run();
  EXPECT_GE(woke_at, sim::usec(300));
  EXPECT_LT(woke_at, sim::usec(370));  // wake + signal charges + a few poll accesses
}

TEST(Driver, HostConditionBlockingWaitUsesInterrupt) {
  Fixture f;
  auto cond = f.sys.runtime(0).signals().alloc_condition();
  sim::SimTime woke_at = -1;
  f.h0.host.run_process("waiter", [&] {
    std::uint32_t v = f.h0.driver.wait_blocking(cond, 0);
    woke_at = f.sys.engine().now();
    EXPECT_EQ(v, 1u);
  });
  f.sys.runtime(0).fork_system("signaler", [&] {
    f.sys.runtime(0).cpu().sleep_until(sim::msec(2));
    f.sys.runtime(0).signals().signal(cond);
  });
  f.sys.engine().run();
  EXPECT_GE(woke_at, sim::msec(2));
  EXPECT_GE(f.h0.driver.host_interrupts(), 1u);
}

TEST(Driver, BlockingWaitDoesNotBurnHostCpu) {
  // While blocked in the driver the host CPU is free (no poll loop).
  Fixture f;
  auto cond = f.sys.runtime(0).signals().alloc_condition();
  f.h0.host.run_process("waiter", [&] { f.h0.driver.wait_blocking(cond, 0); });
  f.sys.runtime(0).fork_system("signaler", [&] {
    f.sys.runtime(0).cpu().sleep_until(sim::msec(10));
    f.sys.runtime(0).signals().signal(cond);
  });
  f.sys.engine().run();
  // Host CPU busy time is a tiny fraction of the 10 ms wait.
  EXPECT_LT(f.h0.host.cpu().busy_time(), sim::msec(1));
}

TEST(Driver, PollWaitBurnsHostCpuOnTheBus) {
  // The contrast case for the test above (§3.2: "polling ... wastes host
  // CPU cycles").
  Fixture f;
  auto cond = f.sys.runtime(0).signals().alloc_condition();
  f.h0.host.run_process("waiter", [&] { f.h0.driver.wait_poll(cond, 0); });
  f.sys.runtime(0).fork_system("signaler", [&] {
    f.sys.runtime(0).cpu().sleep_until(sim::msec(10));
    f.sys.runtime(0).signals().signal(cond);
  });
  f.sys.engine().run();
  EXPECT_GT(f.h0.host.cpu().busy_time(), sim::msec(5));
}

TEST(Driver, SignalFromHostWakesLocalBlockedProcess) {
  Fixture f;
  auto cond = f.sys.runtime(0).signals().alloc_condition();
  bool woke = false;
  f.h0.host.run_process("waiter", [&] {
    f.h0.driver.wait_blocking(cond, 0);
    woke = true;
  });
  f.h0.host.run_process("signaler", [&] {
    f.h0.host.cpu().sleep_until(sim::msec(1));
    f.h0.driver.signal(cond);
  });
  f.sys.engine().run();
  EXPECT_TRUE(woke);
}

TEST(Driver, HostToCabRpcReturnsValue) {
  Fixture f;
  // Register a doubling opcode on the CAB.
  f.sys.runtime(0).signals().register_opcode(77, [&](core::SignalElement e) {
    f.sys.runtime(0).host_syncs().write(e.aux & 0xFFFF, e.param * 2);
  });
  std::uint32_t result = 0;
  f.h0.host.run_process("caller", [&] { result = f.h0.driver.call_cab(77, 21); });
  f.sys.engine().run();
  EXPECT_EQ(result, 42u);
}

TEST(Driver, RpcRoundTripIsTensOfMicroseconds) {
  Fixture f;
  f.sys.runtime(0).signals().register_opcode(78, [&](core::SignalElement e) {
    f.sys.runtime(0).host_syncs().write(e.aux & 0xFFFF, 1);
  });
  sim::SimTime elapsed = -1;
  f.h0.host.run_process("caller", [&] {
    sim::SimTime t0 = f.sys.engine().now();
    f.h0.driver.call_cab(78, 0);
    elapsed = f.sys.engine().now() - t0;
  });
  f.sys.engine().run();
  EXPECT_GT(elapsed, sim::usec(5));
  EXPECT_LT(elapsed, sim::usec(100));
}

}  // namespace
}  // namespace nectar::host
