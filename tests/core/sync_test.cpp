#include "core/sync.hpp"

#include <gtest/gtest.h>

#include "core/cpu.hpp"
#include "core/priorities.hpp"

namespace nectar::core {
namespace {

TEST(Sync, WriteThenReadReturnsValue) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  SyncPool pool("p");
  std::uint32_t got = 0;
  cpu.fork("t", kSystemPriority, [&] {
    auto id = pool.alloc();
    pool.write(id, 42);
    got = pool.read(id);
  });
  e.run();
  EXPECT_EQ(got, 42u);
  EXPECT_EQ(pool.live(), 0u);  // read frees
}

TEST(Sync, ReadBlocksUntilWritten) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  SyncPool pool("p");
  SyncPool::SyncId id = 0;
  std::uint32_t got = 0;
  sim::SimTime read_at = -1;
  cpu.fork("reader", kSystemPriority, [&] {
    id = pool.alloc();
    got = pool.read(id);  // blocks
    read_at = e.now();
  });
  cpu.fork("writer", kAppPriority, [&] {
    cpu.sleep_until(sim::usec(300));
    pool.write(id, 7);
  });
  e.run();
  EXPECT_EQ(got, 7u);
  EXPECT_GE(read_at, sim::usec(300));
}

TEST(Sync, WriteFromInterruptWakesReader) {
  // The paper's use case: a transport protocol returns a status value to a
  // waiting sender.
  sim::Engine e;
  Cpu cpu(e, "cpu");
  SyncPool pool("p");
  SyncPool::SyncId id = 0;
  std::uint32_t got = 0;
  cpu.fork("sender", kSystemPriority, [&] {
    id = pool.alloc();
    got = pool.read(id);
  });
  e.schedule_at(sim::usec(100), [&] { cpu.post_interrupt([&] { pool.write(id, 0xC0DEu); }); });
  e.run();
  EXPECT_EQ(got, 0xC0DEu);
}

TEST(Sync, CancelBeforeWriteFreesOnWrite) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  SyncPool pool("p");
  cpu.fork("t", kSystemPriority, [&] {
    auto id = pool.alloc();
    pool.cancel(id);
    EXPECT_EQ(pool.live(), 1u);  // canceled, not yet freed (§3.4)
    pool.write(id, 5);           // write frees it
    EXPECT_EQ(pool.live(), 0u);
  });
  e.run();
}

TEST(Sync, CancelAfterWriteFreesImmediately) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  SyncPool pool("p");
  cpu.fork("t", kSystemPriority, [&] {
    auto id = pool.alloc();
    pool.write(id, 5);
    pool.cancel(id);
    EXPECT_EQ(pool.live(), 0u);
  });
  e.run();
}

TEST(Sync, ReadTryPollsWithoutBlocking) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  SyncPool pool("p");
  cpu.fork("t", kSystemPriority, [&] {
    auto id = pool.alloc();
    std::uint32_t v = 0;
    EXPECT_FALSE(pool.read_try(id, &v));
    pool.write(id, 99);
    EXPECT_TRUE(pool.read_try(id, &v));
    EXPECT_EQ(v, 99u);
    EXPECT_EQ(pool.live(), 0u);
  });
  e.run();
}

TEST(Sync, DoubleWriteThrows) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  SyncPool pool("p");
  cpu.fork("t", kSystemPriority, [&] {
    auto id = pool.alloc();
    pool.write(id, 1);
    EXPECT_THROW(pool.write(id, 2), std::logic_error);
  });
  e.run();
}

TEST(Sync, UseAfterFreeThrows) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  SyncPool pool("p");
  cpu.fork("t", kSystemPriority, [&] {
    auto id = pool.alloc();
    pool.write(id, 1);
    (void)pool.read(id);
    EXPECT_THROW(pool.write(id, 2), std::logic_error);
    EXPECT_THROW((void)pool.read(id), std::logic_error);
  });
  e.run();
}

TEST(Sync, SeparatePoolsHaveIndependentIds) {
  sim::Engine e;
  Cpu cpu(e, "cpu");
  SyncPool host_pool("host"), cab_pool("cab");
  cpu.fork("t", kSystemPriority, [&] {
    auto h = host_pool.alloc();
    auto c = cab_pool.alloc();
    host_pool.write(h, 1);
    cab_pool.write(c, 2);
    EXPECT_EQ(host_pool.read(h), 1u);
    EXPECT_EQ(cab_pool.read(c), 2u);
  });
  e.run();
}

}  // namespace
}  // namespace nectar::core
