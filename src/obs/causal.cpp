#include "obs/causal.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "obs/json.hpp"
#include "obs/report.hpp"
#include "sim/engine.hpp"

namespace nectar::obs {

CausalTracer* CausalTracer::active_ = nullptr;

namespace {

constexpr std::uint64_t tag_key(int node, std::uint64_t addr) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node)) << 40) | addr;
}

/// Fixed emission order for attribution classes (deterministic artifacts).
constexpr const char* kClasses[] = {"queueing", "serialization", "switching",
                                    "dma",      "mailbox",       "proto",
                                    "retransmit", "reroute",     "app"};

}  // namespace

CausalTracer::CausalTracer(sim::Engine& engine, std::uint64_t seed, Options opt)
    : engine_(engine), seed_(seed), opt_(opt), sample_rng_(seed) {}

CausalTracer::~CausalTracer() {
  if (active_ == this) active_ = nullptr;
}

void CausalTracer::activate() { active_ = this; }

void CausalTracer::deactivate() {
  if (active_ == this) active_ = nullptr;
}

TraceContext CausalTracer::maybe_start(const std::string& flow, int src, int dst,
                                       std::uint64_t seq) {
  if (!sample_rng_.chance(opt_.sample)) {
    ++sampled_out_;
    return {};
  }
  if (traces_.size() >= opt_.max_traces) {
    ++capped_;
    return {};
  }
  auto t = std::make_unique<Trace>();
  t->id = next_id_++;
  t->flow = flow;
  t->src = src;
  t->dst = dst;
  t->seq = seq;
  t->start = engine_.now();
  Trace* raw = t.get();
  traces_.push_back(std::move(t));
  by_id_.emplace(raw->id, raw);
  ++started_;
  return TraceContext{raw->id, 0, 0};
}

CausalTracer::Trace* CausalTracer::find(const TraceContext& ctx) {
  if (!ctx.valid()) return nullptr;
  auto it = by_id_.find(ctx.trace_id);
  if (it == by_id_.end()) return nullptr;
  Trace* t = it->second;
  if (t->finished || t->overflowed) return nullptr;
  return t;
}

void CausalTracer::close_open_stage(Trace& t) {
  if (!t.stages.empty() && t.stages.back().end < 0) t.stages.back().end = engine_.now();
}

void CausalTracer::stage(const TraceContext& ctx, const char* label, std::string where) {
  Trace* t = find(ctx);
  if (t == nullptr) return;
  if (t->stages.size() >= opt_.max_stages) {
    t->overflowed = true;
    ++overflowed_;
    return;
  }
  close_open_stage(*t);
  StageRecord s;
  s.label = label;
  s.where = std::move(where);
  s.start = engine_.now();
  s.end = -1;
  s.span_id = ++t->next_span;
  s.hop = ctx.hop;
  t->stages.push_back(std::move(s));
}

void CausalTracer::annotate(const TraceContext& ctx, const char* label) {
  Trace* t = find(ctx);
  if (t == nullptr) return;
  t->notes.push_back({label, engine_.now()});
}

void CausalTracer::finish(const TraceContext& ctx) {
  Trace* t = find(ctx);
  if (t == nullptr) return;
  close_open_stage(*t);
  t->end = engine_.now();
  t->finished = true;
  ++finished_;
  for (std::uint64_t k : t->tag_keys) {
    auto it = tags_.find(k);
    if (it != tags_.end() && it->second.trace_id == t->id) tags_.erase(it);
  }
  t->tag_keys.clear();
}

// --- rx ambient ---------------------------------------------------------------

CausalTracer::RxScope::RxScope(const TraceContext& ctx) : t_(active_) {
  if (t_ != nullptr) {
    saved_ = t_->rx_ambient_;
    t_->rx_ambient_ = ctx;
  }
}

CausalTracer::RxScope::~RxScope() {
  if (t_ != nullptr) t_->rx_ambient_ = saved_;
}

// --- address tags -------------------------------------------------------------

void CausalTracer::erase_tags_overlapping(std::uint64_t key, std::size_t len) {
  if (tags_.empty() || len == 0) return;
  // Predecessor may extend into [key, key+len).
  auto it = tags_.lower_bound(key);
  if (it != tags_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.len > key) tags_.erase(prev);
  }
  while (true) {
    it = tags_.lower_bound(key);
    if (it == tags_.end() || it->first >= key + len) break;
    tags_.erase(it);
  }
}

void CausalTracer::tag(int node, std::uint64_t addr, std::size_t len, const TraceContext& ctx) {
  std::uint64_t key = tag_key(node, addr);
  erase_tags_overlapping(key, len);
  if (!ctx.valid()) return;
  Trace* t = find(ctx);
  if (t == nullptr) return;
  tags_[key] = {len, ctx.trace_id};
  t->tag_keys.push_back(key);
}

TraceContext CausalTracer::lookup(int node, std::uint64_t addr) const {
  if (tags_.empty()) return {};
  std::uint64_t key = tag_key(node, addr);
  auto it = tags_.upper_bound(key);
  if (it == tags_.begin()) return {};
  --it;
  if (key >= it->first + it->second.len) return {};
  auto tit = by_id_.find(it->second.trace_id);
  if (tit == by_id_.end()) return {};
  const Trace* t = tit->second;
  if (t->finished || t->overflowed) return {};
  std::uint8_t hop = t->stages.empty() ? 0 : t->stages.back().hop;
  std::uint32_t span = t->stages.empty() ? 0 : t->stages.back().span_id;
  return TraceContext{t->id, span, hop};
}

void CausalTracer::note_reroute(int node, int dst, sim::SimTime t0, sim::SimTime t1) {
  windows_.push_back({node, dst, t0, t1});
}

// --- CriticalPathAnalyzer -----------------------------------------------------

std::string CriticalPathAnalyzer::verify() const {
  for (const auto& tp : tracer_.traces()) {
    const CausalTracer::Trace& t = *tp;
    if (!t.finished || t.overflowed) continue;
    std::string id = "trace " + std::to_string(t.id) + " (" + t.flow + ")";
    if (t.stages.empty()) return id + ": finished with no stages";
    if (t.stages.front().start != t.start) return id + ": first stage does not start at trace start";
    sim::SimTime sum = 0;
    for (std::size_t i = 0; i < t.stages.size(); ++i) {
      const StageRecord& s = t.stages[i];
      if (s.end < s.start) return id + ": stage " + s.label + " has negative duration";
      if (i > 0 && s.start != t.stages[i - 1].end) {
        return id + ": gap/overlap between " + t.stages[i - 1].label + " and " + s.label;
      }
      sum += s.duration();
    }
    if (t.stages.back().end != t.end) return id + ": last stage does not end at trace end";
    if (sum != t.e2e()) return id + ": stage durations do not sum to end-to-end latency";
  }
  return {};
}

const char* CriticalPathAnalyzer::classify(const CausalTracer::Trace& t,
                                           const StageRecord& s) const {
  const std::string& l = s.label;
  if (l == "hub.queue" || l == "rx.fifo" || l == "link.queue") return "queueing";
  if (l == "hub.fwd") return "switching";
  if (l == "link.tx") return "serialization";
  if (l == "tx.dma" || l == "rx.dma" || l == "vme.dma") return "dma";
  if (l == "mbox.wait") return "mailbox";
  if (l == "tx.app") return "app";
  if (l == "loss.wait") {
    for (const auto& w : tracer_.reroute_windows()) {
      if (w.node == t.src && w.dst == t.dst && s.start < w.t1 && s.end > w.t0) return "reroute";
    }
    return "retransmit";
  }
  return "proto";
}

std::map<std::string, CriticalPathAnalyzer::FlowGroup> CriticalPathAnalyzer::group_flows() const {
  std::map<std::string, FlowGroup> flows;
  for (const auto& tp : tracer_.traces()) {
    if (!tp->finished || tp->overflowed) continue;
    flows[tp->flow].finished.push_back(tp.get());
  }
  for (auto& [name, g] : flows) {
    std::sort(g.finished.begin(), g.finished.end(),
              [](const CausalTracer::Trace* a, const CausalTracer::Trace* b) {
                if (a->e2e() != b->e2e()) return a->e2e() < b->e2e();
                return a->id < b->id;
              });
    std::size_t n = g.finished.size();
    g.p99 = g.finished[(n - 1) * 99 / 100]->e2e();
  }
  return flows;
}

json::Value CriticalPathAnalyzer::artifact(std::size_t top_k) const {
  json::Value doc = json::Value::object();
  doc.set("schema", "nectar-tailtrace");
  doc.set("version", 1);
  doc.set("seed", tracer_.seed());
  doc.set("sample", tracer_.sample_rate());

  json::Value counts = json::Value::object();
  counts.set("started", tracer_.started());
  counts.set("finished", tracer_.finished_count());
  counts.set("unfinished", tracer_.started() - tracer_.finished_count() - tracer_.overflowed());
  counts.set("overflowed", tracer_.overflowed());
  doc.set("traces", std::move(counts));

  json::Value flows = json::Value::array();
  for (const auto& [name, g] : group_flows()) {
    json::Value f = json::Value::object();
    f.set("flow", name);
    f.set("finished", static_cast<std::uint64_t>(g.finished.size()));
    f.set("e2e_p99_us", sim::to_usec(g.p99));

    // Aggregate class attribution over the tail set (e2e >= p99).
    std::map<std::string, sim::SimTime> by_class;
    sim::SimTime tail_total = 0;
    std::size_t tail_count = 0;
    for (const CausalTracer::Trace* t : g.finished) {
      if (t->e2e() < g.p99) continue;
      ++tail_count;
      tail_total += t->e2e();
      for (const StageRecord& s : t->stages) by_class[classify(*t, s)] += s.duration();
    }
    f.set("tail_count", static_cast<std::uint64_t>(tail_count));
    json::Value tail = json::Value::object();
    for (const char* cls : kClasses) {
      auto it = by_class.find(cls);
      sim::SimTime v = it == by_class.end() ? 0 : it->second;
      json::Value e = json::Value::object();
      e.set("us", sim::to_usec(v));
      e.set("share", tail_total > 0 ? static_cast<double>(v) / static_cast<double>(tail_total)
                                    : 0.0);
      tail.set(cls, std::move(e));
    }
    f.set("tail", std::move(tail));

    json::Value slowest = json::Value::array();
    std::size_t n = g.finished.size();
    for (std::size_t i = 0; i < top_k && i < n; ++i) {
      const CausalTracer::Trace* t = g.finished[n - 1 - i];
      json::Value tv = json::Value::object();
      tv.set("trace_id", t->id);
      tv.set("src", t->src);
      tv.set("dst", t->dst);
      tv.set("seq", t->seq);
      tv.set("start_us", sim::to_usec(t->start));
      tv.set("e2e_us", sim::to_usec(t->e2e()));
      tv.set("hops", static_cast<std::int64_t>(t->stages.empty() ? 0 : t->stages.back().hop));
      json::Value stages = json::Value::array();
      for (const StageRecord& s : t->stages) {
        json::Value sv = json::Value::object();
        sv.set("label", s.label);
        if (!s.where.empty()) sv.set("where", s.where);
        sv.set("class", classify(*t, s));
        sv.set("start_us", sim::to_usec(s.start));
        sv.set("dur_us", sim::to_usec(s.duration()));
        sv.set("hop", static_cast<std::int64_t>(s.hop));
        stages.push(std::move(sv));
      }
      tv.set("stages", std::move(stages));
      if (!t->notes.empty()) {
        json::Value notes = json::Value::array();
        for (const auto& nte : t->notes) {
          json::Value nv = json::Value::object();
          nv.set("label", nte.label);
          nv.set("t_us", sim::to_usec(nte.t));
          notes.push(std::move(nv));
        }
        tv.set("notes", std::move(notes));
      }
      slowest.push(std::move(tv));
    }
    f.set("slowest", std::move(slowest));
    flows.push(std::move(f));
  }
  doc.set("flows", std::move(flows));
  return doc;
}

void CriticalPathAnalyzer::report_into(RunReport& r) const {
  std::string violation = verify();
  if (!violation.empty()) {
    throw std::logic_error("CriticalPathAnalyzer: span-tree invariant violated: " + violation);
  }
  r.add("tailtrace.traces.started", static_cast<double>(tracer_.started()), "count");
  r.add("tailtrace.traces.finished", static_cast<double>(tracer_.finished_count()), "count");
  r.add("tailtrace.traces.unfinished",
        static_cast<double>(tracer_.started() - tracer_.finished_count() - tracer_.overflowed()),
        "count");

  // Global tail attribution: union of every flow's tail set.
  std::map<std::string, sim::SimTime> by_class;
  sim::SimTime tail_total = 0;
  for (const auto& [name, g] : group_flows()) {
    for (const CausalTracer::Trace* t : g.finished) {
      if (t->e2e() < g.p99) continue;
      tail_total += t->e2e();
      for (const StageRecord& s : t->stages) by_class[classify(*t, s)] += s.duration();
    }
  }
  for (const char* cls : kClasses) {
    auto it = by_class.find(cls);
    sim::SimTime v = it == by_class.end() ? 0 : it->second;
    r.add(std::string("tailtrace.tail.") + cls + "_us", sim::to_usec(v), "us");
    r.add(std::string("tailtrace.tail.") + cls + "_share",
          tail_total > 0 ? static_cast<double>(v) / static_cast<double>(tail_total) : 0.0,
          "ratio");
  }
}

}  // namespace nectar::obs
