#include "proto/headers.hpp"

#include <stdexcept>

#include "proto/checksum.hpp"

namespace nectar::proto {

namespace {
void need(std::span<const std::uint8_t> b, std::size_t n, const char* what) {
  if (b.size() < n) throw std::invalid_argument(std::string(what) + ": buffer too short");
}
void need_out(std::span<std::uint8_t> b, std::size_t n, const char* what) {
  if (b.size() < n) throw std::invalid_argument(std::string(what) + ": buffer too short");
}
}  // namespace

std::string ip_to_string(IpAddr a) {
  return std::to_string(a >> 24) + "." + std::to_string((a >> 16) & 0xFF) + "." +
         std::to_string((a >> 8) & 0xFF) + "." + std::to_string(a & 0xFF);
}

// --- datalink -----------------------------------------------------------------

void DatalinkHeader::serialize(std::span<std::uint8_t> out) const {
  need_out(out, kSize, "DatalinkHeader");
  put8(out, 0, static_cast<std::uint8_t>(type));
  put8(out, 1, src_node);
  put16(out, 2, static_cast<std::uint16_t>(length | (traced ? kDatalinkTraceFlag : 0)));
}

DatalinkHeader DatalinkHeader::parse(std::span<const std::uint8_t> in) {
  need(in, kSize, "DatalinkHeader");
  DatalinkHeader h;
  h.type = static_cast<PacketType>(get8(in, 0));
  h.src_node = get8(in, 1);
  std::uint16_t l = get16(in, 2);
  h.traced = (l & kDatalinkTraceFlag) != 0;
  h.length = l & static_cast<std::uint16_t>(~kDatalinkTraceFlag);
  return h;
}

// --- IP ----------------------------------------------------------------------------

void IpHeader::serialize(std::span<std::uint8_t> out) const {
  need_out(out, kSize, "IpHeader");
  put8(out, 0, 0x45);  // version 4, IHL 5
  put8(out, 1, tos);
  put16(out, 2, total_len);
  put16(out, 4, id);
  std::uint16_t ff = frag_offset & 0x1FFF;
  if (dont_fragment) ff |= 0x4000;
  if (more_fragments) ff |= 0x2000;
  put16(out, 6, ff);
  put8(out, 8, ttl);
  put8(out, 9, protocol);
  put16(out, 10, 0);  // checksum placeholder
  put32(out, 12, src);
  put32(out, 16, dst);
  std::uint16_t sum = InternetChecksum::compute(out.first(kSize));
  put16(out, 10, sum);
}

IpHeader IpHeader::parse(std::span<const std::uint8_t> in) {
  need(in, kSize, "IpHeader");
  if ((get8(in, 0) >> 4) != 4) throw std::invalid_argument("IpHeader: not IPv4");
  if ((get8(in, 0) & 0x0F) != 5) throw std::invalid_argument("IpHeader: options unsupported");
  IpHeader h;
  h.tos = get8(in, 1);
  h.total_len = get16(in, 2);
  h.id = get16(in, 4);
  std::uint16_t ff = get16(in, 6);
  h.dont_fragment = (ff & 0x4000) != 0;
  h.more_fragments = (ff & 0x2000) != 0;
  h.frag_offset = ff & 0x1FFF;
  h.ttl = get8(in, 8);
  h.protocol = get8(in, 9);
  h.checksum = get16(in, 10);
  h.src = get32(in, 12);
  h.dst = get32(in, 16);
  return h;
}

bool IpHeader::checksum_ok(std::span<const std::uint8_t> hdr) {
  if (hdr.size() < kSize) return false;
  return InternetChecksum::verify(hdr.first(kSize));
}

// --- ICMP -----------------------------------------------------------------------------

void IcmpHeader::serialize(std::span<std::uint8_t> out) const {
  need_out(out, kSize, "IcmpHeader");
  put8(out, 0, type);
  put8(out, 1, code);
  put16(out, 2, checksum);
  put16(out, 4, id);
  put16(out, 6, seq);
}

IcmpHeader IcmpHeader::parse(std::span<const std::uint8_t> in) {
  need(in, kSize, "IcmpHeader");
  IcmpHeader h;
  h.type = get8(in, 0);
  h.code = get8(in, 1);
  h.checksum = get16(in, 2);
  h.id = get16(in, 4);
  h.seq = get16(in, 6);
  return h;
}

// --- UDP ------------------------------------------------------------------------------

void UdpHeader::serialize(std::span<std::uint8_t> out) const {
  need_out(out, kSize, "UdpHeader");
  put16(out, 0, src_port);
  put16(out, 2, dst_port);
  put16(out, 4, length);
  put16(out, 6, checksum);
}

UdpHeader UdpHeader::parse(std::span<const std::uint8_t> in) {
  need(in, kSize, "UdpHeader");
  UdpHeader h;
  h.src_port = get16(in, 0);
  h.dst_port = get16(in, 2);
  h.length = get16(in, 4);
  h.checksum = get16(in, 6);
  return h;
}

// --- TCP --------------------------------------------------------------------------------

void TcpHeader::serialize(std::span<std::uint8_t> out) const {
  need_out(out, kSize, "TcpHeader");
  put16(out, 0, src_port);
  put16(out, 2, dst_port);
  put32(out, 4, seq);
  put32(out, 8, ack);
  put8(out, 12, 5 << 4);  // data offset 5 words, no options
  put8(out, 13, flags);
  put16(out, 14, window);
  put16(out, 16, checksum);
  put16(out, 18, urgent);
}

TcpHeader TcpHeader::parse(std::span<const std::uint8_t> in) {
  need(in, kSize, "TcpHeader");
  if ((get8(in, 12) >> 4) != 5) throw std::invalid_argument("TcpHeader: options unsupported");
  TcpHeader h;
  h.src_port = get16(in, 0);
  h.dst_port = get16(in, 2);
  h.seq = get32(in, 4);
  h.ack = get32(in, 8);
  h.flags = get8(in, 13);
  h.window = get16(in, 14);
  h.checksum = get16(in, 16);
  h.urgent = get16(in, 18);
  return h;
}

void PseudoHeader::serialize(std::span<std::uint8_t> out) const {
  need_out(out, kSize, "PseudoHeader");
  put32(out, 0, src);
  put32(out, 4, dst);
  put8(out, 8, 0);
  put8(out, 9, protocol);
  put16(out, 10, length);
}

// --- Nectar transport header -------------------------------------------------------------

void NectarHeader::serialize(std::span<std::uint8_t> out) const {
  need_out(out, kSize, "NectarHeader");
  put32(out, 0, dst_mailbox);
  put32(out, 4, src_mailbox);
  put8(out, 8, src_node);
  put8(out, 9, flags);
  put16(out, 10, seq);
  put16(out, 12, length);
}

NectarHeader NectarHeader::parse(std::span<const std::uint8_t> in) {
  need(in, kSize, "NectarHeader");
  NectarHeader h;
  h.dst_mailbox = get32(in, 0);
  h.src_mailbox = get32(in, 4);
  h.src_node = get8(in, 8);
  h.flags = get8(in, 9);
  h.seq = get16(in, 10);
  h.length = get16(in, 12);
  return h;
}

}  // namespace nectar::proto
