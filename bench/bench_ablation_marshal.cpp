// Ablation (paper §5.3): offloading presentation-layer marshaling to the
// CAB. "Research is under way to use the CAB to offload presentation layer
// functionality, such as the marshaling and unmarshaling of data required by
// remote procedure call systems."
//
// The same batch of RPC argument records is prepared two ways:
//   host-marshal : the host process encodes every record, then moves the
//                  encoded bytes across the VME bus;
//   CAB-marshal  : the host moves the raw records across and a CAB task
//                  encodes them (slower CPU, but not the *host's* CPU).
// The win the paper is after is the freed host CPU, not wall-clock.

#include "common.hpp"

#include "nectarine/marshal.hpp"

namespace nectar::bench {
namespace {

constexpr int kRecords = 200;
constexpr std::size_t kRecordBytes = 512;

struct Result {
  double host_cpu_ms;
  double elapsed_ms;
};

Result host_marshals() {
  net::NectarSystem sys(1, /*with_vme=*/true);
  host::HostNode h(sys, 0);
  sim::SimTime t_end = 0;
  h.host.run_process("rpc-client", [&] {
    auto out = h.nin.create_mailbox("encoded");
    std::vector<std::uint8_t> record(kRecordBytes, 0x3D);
    for (int i = 0; i < kRecords; ++i) {
      // Presentation layer on the host: per-byte encode cost...
      h.host.cpu().charge(static_cast<sim::SimTime>(kRecordBytes + 16) *
                          nectarine::Marshaller::kCostPerByte);
      // ...then the encoded bytes cross the bus.
      core::Message m = h.nin.begin_put(out, kRecordBytes + 16);
      h.nin.write_message(m, record);
      h.nin.end_put(out, m);
      core::Message g = h.nin.begin_get_poll(out);  // drained (stand-in for tx)
      h.nin.end_get(out, g);
    }
    t_end = sys.engine().now();
  });
  sys.engine().run();
  return {sim::to_msec(h.host.cpu().busy_time()), sim::to_msec(t_end)};
}

Result cab_marshals() {
  net::NectarSystem sys(1, /*with_vme=*/true);
  host::HostNode h(sys, 0);
  core::CabRuntime& rt = sys.runtime(0);
  core::Mailbox& raw = rt.create_mailbox("raw");
  core::Mailbox& done = rt.create_mailbox("done");

  // CAB task: unpack raw records and marshal them in place (§5.3).
  rt.fork_app("marshaler", [&] {
    for (int i = 0; i < kRecords; ++i) {
      core::Message m = raw.begin_get();
      core::Message enc_buf = done.begin_put(kRecordBytes + 64);
      nectarine::Marshaller::Encoder enc(rt, enc_buf);
      std::vector<std::uint8_t> bytes(m.len);
      rt.board().memory().read(m.data, bytes);
      enc.put_opaque(bytes);
      raw.end_get(m);
      core::Message out = enc.finish();
      done.end_put(out);
      core::Message g = done.begin_get();  // drained (stand-in for tx)
      done.end_get(g);
    }
  });

  sim::SimTime t_end = 0;
  h.host.run_process("rpc-client", [&] {
    auto raw_h = h.nin.attach(raw);
    std::vector<std::uint8_t> record(kRecordBytes, 0x3D);
    for (int i = 0; i < kRecords; ++i) {
      core::Message m = h.nin.begin_put(raw_h, kRecordBytes);
      h.nin.write_message(m, record);
      h.nin.end_put(raw_h, m);
    }
    t_end = sys.engine().now();
  });
  sys.engine().run();
  return {sim::to_msec(h.host.cpu().busy_time()), sim::to_msec(sys.engine().now())};
}

}  // namespace
}  // namespace nectar::bench

int main(int argc, char** argv) {
  using namespace nectar::bench;
  BenchOptions opts = parse_options(argc, argv);
  print_header("Ablation: presentation-layer marshaling offload (paper §5.3)");

  Result host_side = host_marshals();
  Result cab_side = cab_marshals();
  std::printf("%d records x %zu bytes, marshal cost %.0f ns/byte\n\n", kRecords, kRecordBytes,
              static_cast<double>(nectar::nectarine::Marshaller::kCostPerByte));
  std::printf("%-28s %14s %14s\n", "", "host CPU (ms)", "elapsed (ms)");
  std::printf("%-28s %14.2f %14.2f\n", "marshal on the host", host_side.host_cpu_ms,
              host_side.elapsed_ms);
  std::printf("%-28s %14.2f %14.2f\n", "marshal on the CAB", cab_side.host_cpu_ms,
              cab_side.elapsed_ms);
  std::printf("\n  -> offloading frees %.2f ms of host CPU (%.0f%%) — the host only\n"
              "     moves raw bytes; the presentation layer runs on the CAB.\n",
              host_side.host_cpu_ms - cab_side.host_cpu_ms,
              100.0 * (host_side.host_cpu_ms - cab_side.host_cpu_ms) / host_side.host_cpu_ms);
  nectar::obs::RunReport report("ablation-marshal");
  report.add("host_marshal_host_cpu", host_side.host_cpu_ms, "ms");
  report.add("host_marshal_elapsed", host_side.elapsed_ms, "ms");
  report.add("cab_marshal_host_cpu", cab_side.host_cpu_ms, "ms");
  report.add("cab_marshal_elapsed", cab_side.elapsed_ms, "ms");
  finish_report(opts, report);
  return 0;
}
