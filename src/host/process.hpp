#pragma once

#include <string>

#include "core/cpu.hpp"
#include "core/priorities.hpp"
#include "sim/costs.hpp"
#include "sim/engine.hpp"

namespace nectar::host {

/// A workstation host (Sun-4 class in the paper's testbed). Host "processes"
/// are threads on the host CPU; the host side of the Nectar software —
/// the CAB device driver, Nectarine, the socket emulation — runs here and
/// reaches CAB memory only across the VME bus.
class Host {
 public:
  Host(sim::Engine& engine, std::string name)
      : name_(std::move(name)),
        cpu_(engine, name_ + ".cpu", sim::costs::kHostContextSwitch) {}

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  const std::string& name() const { return name_; }
  core::Cpu& cpu() { return cpu_; }

  /// Start a user process.
  core::Thread* run_process(std::string pname, std::function<void()> body) {
    return cpu_.fork(std::move(pname), core::kHostProcessPriority, std::move(body));
  }

 private:
  std::string name_;
  core::Cpu cpu_;
};

}  // namespace nectar::host
