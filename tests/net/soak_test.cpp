// Soak / resource-leak tests: sustained mixed traffic must leave every CAB's
// buffer heap back at its idle footprint — a leaked message anywhere in the
// protocol stack (unfreed send buffer, dropped-but-not-released packet,
// orphaned reassembly fragment) shows up here as residual heap bytes.

#include <gtest/gtest.h>

#include <string>

#include "net/system.hpp"

namespace nectar::net {
namespace {

/// Heap bytes in use that are legitimate at idle: per-mailbox small-buffer
/// caches (128 B each) and host-condition words. Everything else is a leak.
std::size_t idle_floor(core::CabRuntime& rt) {
  return rt.mailbox_count() * core::Mailbox::kSmallBufSize + 256;
}

core::Message stage(core::Mailbox& mb, core::CabRuntime& rt, std::size_t n) {
  core::Message m = mb.begin_put(static_cast<std::uint32_t>(n));
  rt.board().memory().fill(m.data, n, 0x6B);
  return m;
}

TEST(Soak, RmpStreamLeavesNoResidue) {
  NectarSystem sys(2);
  core::Mailbox& sink = sys.runtime(1).create_mailbox("sink");
  constexpr int kN = 300;
  sys.runtime(1).fork_system("rx", [&] {
    for (int i = 0; i < kN; ++i) {
      core::Message m = sink.begin_get();
      sink.end_get(m);
    }
  });
  sys.runtime(0).fork_system("tx", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("s");
    for (int i = 0; i < kN; ++i) {
      sys.stack(0).rmp.wait_queue_below(1, 8);
      sys.stack(0).rmp.send(sink.address(), stage(s, sys.runtime(0), 1000 + (i % 5) * 700));
    }
    sys.stack(0).rmp.wait_acked(1);
  });
  sys.engine().run();
  EXPECT_LE(sys.runtime(0).heap().bytes_in_use(), idle_floor(sys.runtime(0)));
  EXPECT_LE(sys.runtime(1).heap().bytes_in_use(), idle_floor(sys.runtime(1)));
}

TEST(Soak, RmpUnderHeavyLossLeavesNoResidue) {
  NectarSystem sys(2);
  sys.net().cab(0).out_link().set_drop_rate(0.3, 7);
  sys.net().cab(1).out_link().set_drop_rate(0.3, 8);
  core::Mailbox& sink = sys.runtime(1).create_mailbox("sink");
  constexpr int kN = 60;
  sys.runtime(1).fork_system("rx", [&] {
    for (int i = 0; i < kN; ++i) {
      core::Message m = sink.begin_get();
      sink.end_get(m);
    }
  });
  sys.runtime(0).fork_system("tx", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("s");
    for (int i = 0; i < kN; ++i) {
      sys.stack(0).rmp.wait_queue_below(1, 4);
      sys.stack(0).rmp.send(sink.address(), stage(s, sys.runtime(0), 2048));
    }
    sys.stack(0).rmp.wait_acked(1);
  });
  sys.net().run_until(sim::sec(60));
  EXPECT_LE(sys.runtime(0).heap().bytes_in_use(), idle_floor(sys.runtime(0)));
  EXPECT_LE(sys.runtime(1).heap().bytes_in_use(), idle_floor(sys.runtime(1)));
}

TEST(Soak, TcpTransferAndCloseLeavesNoResidue) {
  NectarSystem sys(2);
  std::string data(50000, 's');
  std::size_t got = 0;
  proto::TcpConnection* server = nullptr;
  proto::TcpConnection* client = nullptr;
  sys.runtime(1).fork_app("server", [&] {
    server = sys.stack(1).tcp.listen(80);
    sys.stack(1).tcp.wait_established(server);
    for (;;) {
      core::Message m = server->receive_mailbox().begin_get();
      std::uint32_t n = m.len;
      server->receive_mailbox().end_get(m);
      if (n == 0) break;  // FIN
      got += n;
    }
    sys.stack(1).tcp.close(server);
  });
  sys.runtime(0).fork_app("client", [&] {
    sys.runtime(0).cpu().sleep_for(sim::usec(100));
    client = sys.stack(0).tcp.connect(5000, proto::ip_of_node(1), 80);
    ASSERT_TRUE(sys.stack(0).tcp.wait_established(client));
    core::Mailbox& s = sys.runtime(0).create_mailbox("tx");
    for (std::size_t off = 0; off < data.size(); off += 5000) {
      sys.stack(0).tcp.wait_send_window(client, 64 * 1024);
      sys.stack(0).tcp.send(client, stage(s, sys.runtime(0), 5000));
    }
    sys.stack(0).tcp.wait_drained(client);
    sys.stack(0).tcp.close(client);
  });
  sys.net().run_until(sim::sec(30));
  EXPECT_EQ(got, data.size());
  EXPECT_EQ(server->state(), proto::TcpConnection::State::Closed);
  EXPECT_EQ(client->state(), proto::TcpConnection::State::Closed);
  EXPECT_LE(sys.runtime(0).heap().bytes_in_use(), idle_floor(sys.runtime(0)));
  EXPECT_LE(sys.runtime(1).heap().bytes_in_use(), idle_floor(sys.runtime(1)));
}

TEST(Soak, UdpBlastToUnboundPortLeavesNoResidue) {
  // Every datagram is rejected with an ICMP error; both the offender and
  // the error buffers must be reclaimed on both sides.
  NectarSystem sys(2);
  sys.runtime(0).fork_system("tx", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("s");
    for (int i = 0; i < 50; ++i) {
      sys.stack(0).udp.send(1000, proto::ip_of_node(1), 4242, stage(s, sys.runtime(0), 512));
      sys.runtime(0).cpu().sleep_for(sim::usec(300));
    }
  });
  sys.engine().run();
  EXPECT_EQ(sys.stack(1).udp.dropped_no_port(), 50u);
  EXPECT_EQ(sys.stack(1).icmp.unreachables_sent(), 50u);
  EXPECT_LE(sys.runtime(0).heap().bytes_in_use(), idle_floor(sys.runtime(0)));
  EXPECT_LE(sys.runtime(1).heap().bytes_in_use(), idle_floor(sys.runtime(1)));
}

TEST(Soak, ReassemblyTimeoutsReclaimFragments) {
  NectarSystem sys(2, false, {}, /*mtu=*/1500);
  sys.net().cab(0).out_link().set_drop_rate(0.5, 31);
  sys.runtime(0).fork_system("tx", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("s");
    for (int i = 0; i < 20; ++i) {
      core::Message m = stage(s, sys.runtime(0), 6000);  // 5 fragments each
      proto::Ip::OutputInfo info;
      info.dst = proto::ip_of_node(1);
      info.protocol = 200;  // unregistered: complete ones are dropped anyway
      sys.stack(0).ip.output_msg(info, {}, m, true);
      sys.runtime(0).cpu().sleep_for(sim::msec(1));
    }
  });
  sys.net().run_until(sim::sec(10));  // past every reassembly timeout
  EXPECT_EQ(sys.stack(1).ip.reassembly_pending(), 0u);
  EXPECT_LE(sys.runtime(1).heap().bytes_in_use(), idle_floor(sys.runtime(1)));
}

}  // namespace
}  // namespace nectar::net
