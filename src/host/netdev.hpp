#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <vector>

#include "nectarine/nectarine.hpp"
#include "proto/datalink.hpp"

namespace nectar::obs {
class PcapWriter;
}

namespace nectar::host {

/// Usage level 1 (paper §5.1): the CAB as a conventional network device.
///
/// "To perform networking functions, the device driver cooperates with a
/// server thread on the CAB that is responsible for transmitting and
/// receiving packets over Nectar. The driver and the server share a pool of
/// buffers." All protocol processing stays on the *host* (modeled as a
/// per-packet host-stack cost plus the user/kernel copy), which is why this
/// mode measures 6.4 Mbit/s against the protocol engine's 24-28 (§6.3).
class NetDevice : public proto::DatalinkClient {
 public:
  static constexpr std::size_t kMtu = 1500;  ///< conventional-LAN framing

  NetDevice(nectarine::HostNectarine& nin, proto::Datalink& dl);

  NetDevice(const NetDevice&) = delete;
  NetDevice& operator=(const NetDevice&) = delete;

  /// Host-side transmit: runs the host protocol stack (charged), copies the
  /// packet into a free output-pool buffer on the CAB, and notifies the
  /// server thread.
  void send_packet(int dst_node, std::span<const std::uint8_t> payload);

  /// Start the host-side input handler process: received packets climb the
  /// host protocol stack (charged) and are handed to `handler`.
  void start_receiver(std::function<void(std::vector<std::uint8_t>)> handler);

  // --- DatalinkClient (CAB-side receive into the input pool) -----------------

  std::size_t header_bytes() const override { return 0; }
  core::Mailbox& input_mailbox() override { return *in_pool_.mb; }
  void end_of_data(core::Message m, std::uint8_t src_node) override;

  std::uint64_t packets_sent() const { return tx_; }
  std::uint64_t packets_received() const { return rx_; }

  /// Tap every packet crossing the VME boundary (host tx at driver entry,
  /// host rx as the CAB publishes into the input pool) into `pcap` as raw
  /// packet records. nullptr detaches.
  void attach_pcap(obs::PcapWriter* pcap) { pcap_ = pcap; }

 private:
  void server_loop();  // CAB server thread: drains the output pool

  nectarine::HostNectarine& nin_;
  proto::Datalink& dl_;
  nectarine::HostNectarine::HostMailbox out_pool_;
  nectarine::HostNectarine::HostMailbox in_pool_;
  std::uint64_t tx_ = 0;
  std::uint64_t rx_ = 0;
  obs::PcapWriter* pcap_ = nullptr;
};

}  // namespace nectar::host
