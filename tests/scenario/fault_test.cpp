#include "scenario/faults.hpp"

#include <gtest/gtest.h>

#include "net/system.hpp"

namespace nectar::scenario {
namespace {

/// Two CABs on one HUB with a paced datagram stream 0 -> 1. Datagrams have
/// no retransmission, so every frame a fault eats is a message that never
/// arrives — loss is directly observable.
struct Fixture {
  net::NectarSystem sys{2};
  core::Mailbox& sink;
  int delivered = 0;

  explicit Fixture(int messages, sim::SimTime gap = sim::msec(1))
      : sink(sys.runtime(1).create_mailbox("sink")) {
    sys.runtime(1).fork_system("count", [this] {
      for (;;) {
        core::Message m = sink.begin_get();
        ++delivered;
        sink.end_get(m);
      }
    });
    sys.runtime(0).fork_system("send", [this, messages, gap] {
      core::Mailbox& scratch = sys.runtime(0).create_mailbox("scratch");
      for (int i = 0; i < messages; ++i) {
        sys.stack(0).datagram.send(sink.address(), scratch.begin_put(64));
        sys.runtime(0).cpu().sleep_for(gap);
      }
    });
  }
};

TEST(FaultSchedulerTest, RejectsBadTargets) {
  net::NectarSystem sys(2);
  FaultScheduler fs(sys.net(), 1);
  FaultSpec f;
  f.kind = FaultKind::LinkDown;
  f.target = "node9.link";
  EXPECT_THROW(fs.schedule(f), std::invalid_argument);
  f.target = "node0.flux";
  EXPECT_THROW(fs.schedule(f), std::invalid_argument);
  f.target = "nowhere";
  EXPECT_THROW(fs.schedule(f), std::invalid_argument);
  f.kind = FaultKind::HubBlackout;
  f.target = "hub0.port99";
  EXPECT_THROW(fs.schedule(f), std::invalid_argument);
  f.kind = FaultKind::VmeStall;
  f.target = "node0.vme";  // this system has no VME buses
  f.duration = sim::msec(1);
  EXPECT_THROW(fs.schedule(f), std::invalid_argument);
  f.kind = FaultKind::LinkDrop;
  f.target = "node0.link";
  f.rate = 1.5;
  EXPECT_THROW(fs.schedule(f), std::invalid_argument);
  EXPECT_EQ(fs.faults_injected(), 0u);
}

TEST(FaultSchedulerTest, DropBurstEatsExactlyCountFrames) {
  Fixture fx(20);
  FaultScheduler fs(fx.sys.net(), 1);
  FaultSpec f;
  f.kind = FaultKind::LinkDropBurst;
  f.target = "node0.link";
  f.at = sim::msec(5);  // mid-stream
  f.count = 3;
  fs.schedule(f);
  fx.sys.engine().run_until(sim::msec(100));
  fs.finalize();
  EXPECT_EQ(fx.delivered, 17);
  EXPECT_EQ(fx.sys.net().cab(0).out_link().frames_dropped_faulted(), 3u);
  EXPECT_EQ(fs.records().at(0).attributed_drops, 3u);
  EXPECT_EQ(fs.total_attributed_drops(), 3u);
}

TEST(FaultSchedulerTest, LinkDownWindowThenRecovery) {
  Fixture fx(50);
  FaultScheduler fs(fx.sys.net(), 1);
  FaultSpec f;
  f.kind = FaultKind::LinkDown;
  f.target = "node0.link";
  f.at = sim::msec(10);
  f.duration = sim::msec(10);
  fs.schedule(f);
  fx.sys.engine().run_until(sim::msec(200));
  fs.finalize();
  // ~10 of the 50 messages fall in the window; the stream recovers after.
  EXPECT_LT(fx.delivered, 50);
  EXPECT_GE(fx.delivered, 35);
  EXPECT_FALSE(fx.sys.net().cab(0).out_link().is_down());
  const FaultRecord& r = fs.records().at(0);
  EXPECT_EQ(r.cleared_at, r.applied_at + sim::msec(10));
  EXPECT_EQ(r.attributed_drops,
            fx.sys.net().cab(0).out_link().frames_dropped_faulted());
  EXPECT_GT(r.attributed_drops, 0u);
}

TEST(FaultSchedulerTest, HubBlackoutDiscardsAtTheSwitch) {
  Fixture fx(50);
  FaultScheduler fs(fx.sys.net(), 1);
  FaultSpec f;
  f.kind = FaultKind::HubBlackout;
  f.target = "hub0.port1";  // the port feeding node 1's inbound fiber
  f.at = sim::msec(10);
  f.duration = sim::msec(10);
  fs.schedule(f);
  fx.sys.engine().run_until(sim::msec(200));
  fs.finalize();
  EXPECT_LT(fx.delivered, 50);
  EXPECT_GT(fx.sys.net().hub(0).blackout_drops(), 0u);
  EXPECT_FALSE(fx.sys.net().hub(0).port_blackout(1));
  EXPECT_EQ(fs.records().at(0).attributed_drops, fx.sys.net().hub(0).blackout_drops());
}

TEST(FaultSchedulerTest, CabCrashIsolatesBothDirectionsThenReboots) {
  Fixture fx(50);
  FaultScheduler fs(fx.sys.net(), 1);
  FaultSpec f;
  f.kind = FaultKind::CabCrash;
  f.target = "node1.cab";
  f.at = sim::msec(10);
  f.duration = sim::msec(10);
  fs.schedule(f);
  fx.sys.engine().run_until(sim::msec(200));
  fs.finalize();
  EXPECT_LT(fx.delivered, 50);   // traffic toward the dead board vanished
  EXPECT_GE(fx.delivered, 35);   // and resumed after the reboot
  EXPECT_FALSE(fx.sys.net().cab(1).out_link().is_down());
  EXPECT_FALSE(fx.sys.net().hub(0).port_blackout(1));
}

TEST(FaultSchedulerTest, VmeStallHoldsTheBus) {
  net::NectarSystem sys(2, /*with_vme=*/true);
  FaultScheduler fs(sys.net(), 1);
  FaultSpec f;
  f.kind = FaultKind::VmeStall;
  f.target = "node0.vme";
  f.at = sim::msec(1);
  f.duration = sim::msec(5);
  fs.schedule(f);
  sys.engine().run_until(sim::msec(20));
  fs.finalize();
  EXPECT_EQ(sys.net().vme(0)->stalls(), 1u);
  EXPECT_EQ(sys.net().vme(0)->stall_time(), sim::msec(5));
  EXPECT_EQ(fs.records().at(0).cleared_at, fs.records().at(0).applied_at + sim::msec(5));
}

TEST(FaultSchedulerTest, JitterIsSeededByMasterSeed) {
  auto applied_at = [](std::uint64_t master) {
    net::NectarSystem sys(2);
    FaultScheduler fs(sys.net(), master);
    FaultSpec f;
    f.kind = FaultKind::LinkDown;
    f.target = "node0.link";
    f.at = sim::msec(10);
    f.duration = sim::msec(1);
    f.jitter = sim::msec(50);
    std::size_t idx = fs.schedule(f);
    return fs.records().at(idx).applied_at;
  };
  sim::SimTime a1 = applied_at(7);
  sim::SimTime a2 = applied_at(7);
  sim::SimTime b = applied_at(8);
  EXPECT_EQ(a1, a2) << "same master seed must reproduce the fault time";
  EXPECT_NE(a1, b) << "different master seeds must decorrelate fault times";
  EXPECT_GE(a1, sim::msec(10));
  EXPECT_LT(a1, sim::msec(60));
}

}  // namespace
}  // namespace nectar::scenario
