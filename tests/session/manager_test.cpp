#include "session/manager.hpp"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "net/system.hpp"
#include "session/wire.hpp"

namespace nectar::session {
namespace {

/// Two managers over one NectarSystem, one RMP trunk wired between them.
struct Pair {
  net::NectarSystem sys;
  SessionManager a;
  SessionManager b;
  int ta = 0;  ///< a's trunk index toward b
  int tb = 0;  ///< b's trunk index toward a

  explicit Pair(SessionConfig cfg = {})
      : sys(2),
        a(sys.runtime(0), 0, &sys.stack(0).rmp, &sys.stack(0).tcp, cfg),
        b(sys.runtime(1), 1, &sys.stack(1).rmp, &sys.stack(1).tcp, cfg) {
    auto [x, y] = SessionManager::connect_rmp_pair(a, b);
    ta = x;
    tb = y;
  }
};

std::vector<std::uint8_t> bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(SessionManagerTest, OpenSendCloseRoundtrip) {
  Pair p;
  std::map<std::uint16_t, std::string> got;
  p.b.on_deliver = [&](int, std::uint16_t ch, std::uint8_t, std::span<const std::uint8_t> pl) {
    got[ch].append(pl.begin(), pl.end());
  };
  bool accepted = false, closed = false;
  p.a.on_open_result = [&](SessionManager::ChannelHandle, bool ok) { accepted = ok; };
  p.a.on_closed = [&](SessionManager::ChannelHandle) { closed = true; };
  SessionManager::ChannelHandle h = SessionManager::kNoHandle;
  p.sys.runtime(0).fork_system("app", [&] {
    h = p.a.open_channel(p.ta);
    ASSERT_NE(h, SessionManager::kNoHandle);
    // Staging is legal in Opening: data flows once the OPEN_ACK grants credit.
    EXPECT_EQ(p.a.try_send(h, bytes("hello ")), SendResult::Ok);
    EXPECT_EQ(p.a.try_send(h, bytes("world")), SendResult::Ok);
    p.a.close_channel(h);
  });
  p.sys.engine().run();
  EXPECT_TRUE(accepted);
  EXPECT_TRUE(closed);
  EXPECT_EQ(p.a.state(h), ChannelState::Closed);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got.begin()->second, "hello world");
  EXPECT_EQ(p.a.channels_opened(), 1u);
  EXPECT_EQ(p.a.channels_closed(), 1u);
  EXPECT_EQ(p.a.channels_failed(), 0u);
  // Two DATA frames delivered; the sender's total also counts the OPEN and
  // CLOSE control frames riding the same trunk.
  EXPECT_EQ(p.b.frames_delivered(), 2u);
  EXPECT_GE(p.a.frames_sent(), 4u);
}

// Satellite: interleaved small writes from N channels over ONE trunk
// connection must preserve per-channel byte ordering exactly.
TEST(SessionManagerTest, InterleavedChannelsPreservePerChannelOrder) {
  Pair p;
  constexpr int kChannels = 8;
  constexpr int kMsgs = 25;
  std::map<std::uint16_t, std::vector<std::string>> got;
  p.b.on_deliver = [&](int, std::uint16_t ch, std::uint8_t, std::span<const std::uint8_t> pl) {
    got[ch].emplace_back(pl.begin(), pl.end());
  };
  p.sys.runtime(0).fork_system("app", [&] {
    std::vector<SessionManager::ChannelHandle> hs;
    for (int c = 0; c < kChannels; ++c) hs.push_back(p.a.open_channel(p.ta));
    for (int m = 0; m < kMsgs; ++m) {
      for (int c = 0; c < kChannels; ++c) {
        std::string payload = "c" + std::to_string(c) + ".m" + std::to_string(m);
        // Retry through transient window stalls: the pumper drains while we
        // sleep, and every accepted byte must still arrive in per-channel
        // order.
        while (p.a.try_send(hs[static_cast<std::size_t>(c)], bytes(payload)) !=
               SendResult::Ok) {
          p.sys.runtime(0).cpu().sleep_for(sim::usec(200));
        }
      }
    }
  });
  p.sys.engine().run();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kChannels));
  int c = 0;
  for (auto& [ch, msgs] : got) {
    ASSERT_EQ(msgs.size(), static_cast<std::size_t>(kMsgs)) << "channel " << ch;
    for (int m = 0; m < kMsgs; ++m) {
      EXPECT_EQ(msgs[static_cast<std::size_t>(m)],
                "c" + std::to_string(c) + ".m" + std::to_string(m));
    }
    ++c;
  }
}

// Satellite: the send window surfaces as Backpressure (shed accounting),
// never silent loss — and the stall is observable in the stats.
TEST(SessionManagerTest, SendWindowBackpressureIsLoud) {
  SessionConfig cfg;
  cfg.send_window = 2;
  Pair p(cfg);
  int ok = 0, backpressure = 0;
  p.sys.runtime(0).fork_system("app", [&] {
    SessionManager::ChannelHandle h = p.a.open_channel(p.ta);
    // No yield between sends: the window must fill at exactly send_window.
    for (int i = 0; i < 5; ++i) {
      SendResult r = p.a.try_send(h, bytes("x"));
      if (r == SendResult::Ok) ++ok;
      if (r == SendResult::Backpressure) ++backpressure;
    }
  });
  p.sys.engine().run();
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(backpressure, 3);
}

TEST(SessionManagerTest, CreditStallDoesNotBlockSiblingChannels) {
  SessionConfig cfg;
  cfg.initial_credit = 4;
  cfg.send_window = 64;
  Pair p(cfg);
  constexpr int kMsgs = 30;
  std::map<std::uint16_t, int> delivered;
  sim::SimTime victim_last = 0, sibling_done = 0;
  p.b.on_deliver = [&](int, std::uint16_t ch, std::uint8_t, std::span<const std::uint8_t>) {
    ++delivered[ch];
    if (ch == 0) victim_last = p.sys.engine().now();
    if (ch == 1 && delivered[1] == kMsgs) sibling_done = p.sys.engine().now();
  };
  SessionManager::ChannelHandle hv = SessionManager::kNoHandle;
  p.sys.runtime(0).fork_system("app", [&] {
    hv = p.a.open_channel(p.ta);                               // wire id 0: the victim
    SessionManager::ChannelHandle hs = p.a.open_channel(p.ta);  // wire id 1: the sibling
    // Wait until both OPEN_ACKs returned — only then does the receiver have
    // an inbound channel 0 to freeze. Frozen before any data flows, the
    // victim exhausts its initial grant and stalls.
    while (p.a.state(hv) != ChannelState::Open || p.a.state(hs) != ChannelState::Open) {
      p.sys.runtime(0).cpu().sleep_for(sim::usec(100));
    }
    p.b.freeze_inbound_credit(p.tb, 0, true);
    for (int i = 0; i < kMsgs; ++i) {
      p.a.try_send(hv, bytes("v" + std::to_string(i)));
      while (p.a.try_send(hs, bytes("s" + std::to_string(i))) != SendResult::Ok) {
        p.sys.runtime(0).cpu().sleep_for(sim::usec(100));
      }
    }
  });
  p.sys.runtime(1).fork_system("unfreeze", [&] {
    p.sys.runtime(1).cpu().sleep_for(sim::msec(30));
    p.b.freeze_inbound_credit(p.tb, 0, false);
  });
  p.sys.engine().run();
  // The sibling finished every message while the victim was stalled at its
  // initial credit — a stalled channel starves alone, it never drags its
  // trunk neighbours.
  EXPECT_EQ(delivered[1], kMsgs);
  ASSERT_GT(sibling_done, 0);
  EXPECT_GT(p.a.credit_stalls(), 0u);
  // After the unfreeze the victim's staged backlog drains completely.
  EXPECT_EQ(delivered[0], kMsgs);
  EXPECT_GT(victim_last, sibling_done);
}

TEST(SessionManagerTest, StrictPriorityGoesFirstInTheBatch) {
  Pair p;
  std::vector<std::uint16_t> order;
  p.b.on_deliver = [&](int, std::uint16_t ch, std::uint8_t, std::span<const std::uint8_t>) {
    order.push_back(ch);
  };
  p.sys.runtime(0).fork_system("app", [&] {
    SessionManager::ChannelHandle lo = p.a.open_channel(p.ta, /*priority=*/2);
    SessionManager::ChannelHandle hi = p.a.open_channel(p.ta, /*priority=*/0);
    // Wait for both OPEN_ACKs so credit exists, then stage low before high
    // without yielding: the scheduler, not arrival order, decides.
    while (p.a.state(hi) != ChannelState::Open || p.a.state(lo) != ChannelState::Open) {
      p.sys.runtime(0).cpu().sleep_for(sim::usec(100));
    }
    for (int i = 0; i < 4; ++i) p.a.try_send(lo, bytes("l"));
    for (int i = 0; i < 4; ++i) p.a.try_send(hi, bytes("h"));
  });
  p.sys.engine().run();
  ASSERT_EQ(order.size(), 8u);
  // hi is wire id 1, lo is wire id 0: all of hi's frames ride ahead.
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(order[i], 1) << i;
  for (std::size_t i = 4; i < 8; ++i) EXPECT_EQ(order[i], 0) << i;
}

TEST(SessionManagerTest, EqualWeightChannelsShareTheTrunk) {
  SessionConfig cfg;
  cfg.send_window = 64;
  cfg.initial_credit = 64;
  cfg.max_batch = 512;  // several batches, so interleaving is observable
  Pair p(cfg);
  std::vector<std::uint16_t> order;
  p.b.on_deliver = [&](int, std::uint16_t ch, std::uint8_t, std::span<const std::uint8_t>) {
    order.push_back(ch);
  };
  constexpr int kMsgs = 24;
  p.sys.runtime(0).fork_system("app", [&] {
    SessionManager::ChannelHandle c0 = p.a.open_channel(p.ta);
    SessionManager::ChannelHandle c1 = p.a.open_channel(p.ta);
    while (p.a.state(c0) != ChannelState::Open || p.a.state(c1) != ChannelState::Open) {
      p.sys.runtime(0).cpu().sleep_for(sim::usec(100));
    }
    // Stage ALL of channel 0 first, then all of channel 1. Round-robin must
    // still interleave them rather than draining c0 FIFO-first.
    for (int i = 0; i < kMsgs; ++i) p.a.try_send(c0, bytes(std::string(40, 'a')));
    for (int i = 0; i < kMsgs; ++i) p.a.try_send(c1, bytes(std::string(40, 'b')));
  });
  p.sys.engine().run();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(2 * kMsgs));
  // c1's first delivery must not wait for c0's backlog to drain.
  std::size_t first_c1 = 0;
  while (first_c1 < order.size() && order[first_c1] != 1) ++first_c1;
  EXPECT_LT(first_c1, static_cast<std::size_t>(kMsgs)) << "DRR must interleave the channels";
}

TEST(SessionManagerTest, AdmissionControlRefusesLoudly) {
  SessionConfig cfg;
  cfg.max_channels = 3;
  Pair p(cfg);
  int accepted = 0, refused = 0;
  p.a.on_open_result = [&](SessionManager::ChannelHandle, bool ok) {
    ok ? ++accepted : ++refused;
  };
  std::vector<SessionManager::ChannelHandle> hs;
  p.sys.runtime(0).fork_system("app", [&] {
    for (int i = 0; i < 5; ++i) hs.push_back(p.a.open_channel(p.ta));
  });
  p.sys.engine().run();
  EXPECT_EQ(accepted, 3);
  EXPECT_EQ(refused, 2);
  EXPECT_EQ(p.a.channels_opened(), 3u);
  EXPECT_EQ(p.a.channels_refused(), 2u);
  EXPECT_EQ(p.a.state(hs[4]), ChannelState::Refused);
  // Refusal is attributable on the receiver: an admission event fired.
  bool saw = false;
  for (const SessionEvent& e : p.b.events()) saw = saw || e.kind == "admission_refused";
  EXPECT_TRUE(saw);
  // try_send on a refused channel fails loudly, not silently.
  p.sys.runtime(0).fork_system("late", [&] {
    EXPECT_EQ(p.a.try_send(hs[4], bytes("x")), SendResult::Failed);
  });
  p.sys.engine().run();
}

TEST(SessionManagerTest, ClosedIdsRecycleWithBumpedGeneration) {
  Pair p;
  std::uint16_t first_id = 0;
  std::uint8_t delivered_gen = 0;
  p.sys.runtime(0).fork_system("app", [&] {
    SessionManager::ChannelHandle h1 = p.a.open_channel(p.ta);
    first_id = p.a.wire_id(h1);
    p.a.close_channel(h1);
    while (p.a.state(h1) != ChannelState::Closed) {
      p.sys.runtime(0).cpu().sleep_for(sim::usec(200));
    }
    // The id comes back with a new generation; the peer accepts the new
    // incarnation and stamps deliveries with it.
    SessionManager::ChannelHandle h2 = p.a.open_channel(p.ta);
    EXPECT_EQ(p.a.wire_id(h2), first_id);
    while (p.a.state(h2) != ChannelState::Open) {
      p.sys.runtime(0).cpu().sleep_for(sim::usec(200));
    }
    EXPECT_EQ(p.a.try_send(h2, bytes("again")), SendResult::Ok);
    p.a.close_channel(h2);
  });
  std::string got;
  p.b.on_deliver = [&](int, std::uint16_t, std::uint8_t gen, std::span<const std::uint8_t> pl) {
    got.assign(pl.begin(), pl.end());
    delivered_gen = gen;
  };
  p.sys.engine().run();
  EXPECT_EQ(got, "again");
  EXPECT_NE(delivered_gen, 0) << "reused id must carry a bumped generation";
  EXPECT_EQ(p.a.channels_closed(), 2u);
}

TEST(SessionManagerTest, StaleGenerationFramesAreDropped) {
  Pair p;
  std::uint16_t id = 0;
  p.sys.runtime(0).fork_system("app", [&] {
    SessionManager::ChannelHandle h = p.a.open_channel(p.ta);
    id = p.a.wire_id(h);
    p.a.close_channel(h);
    while (p.a.state(h) != ChannelState::Closed) {
      p.sys.runtime(0).cpu().sleep_for(sim::usec(200));
    }
    // Reopen the same wire id (generation bumped) and then forge a DATA
    // frame from the dead generation 0 straight onto the trunk.
    SessionManager::ChannelHandle h2 = p.a.open_channel(p.ta);
    ASSERT_EQ(p.a.wire_id(h2), id);
    while (p.a.state(h2) != ChannelState::Open) {
      p.sys.runtime(0).cpu().sleep_for(sim::usec(200));
    }
    FrameHeader stale;
    stale.channel = id;
    stale.generation = 0;
    stale.type = FrameType::Data;
    stale.seq = 0;
    stale.length = 1;
    std::vector<std::uint8_t> wire(FrameHeader::kSize + 1);
    stale.serialize(wire);
    wire[FrameHeader::kSize] = 'z';
    core::Mailbox& s = p.sys.runtime(0).create_mailbox("forge");
    core::Message m = s.begin_put(static_cast<std::uint32_t>(wire.size()));
    p.sys.runtime(0).board().memory().write(m.data, wire);
    p.sys.stack(0).rmp.send(p.b.trunk_local_address(p.tb), m);
  });
  bool delivered_stale = false;
  p.b.on_deliver = [&](int, std::uint16_t, std::uint8_t gen, std::span<const std::uint8_t>) {
    delivered_stale = delivered_stale || gen == 0;
  };
  p.sys.engine().run();
  // The dead incarnation's frame is counted and dropped, never delivered to
  // the new channel.
  EXPECT_EQ(p.b.gen_mismatch_drops(), 1u);
  EXPECT_FALSE(delivered_stale);
}

TEST(SessionManagerTest, TrunkDeathFailsChannelsWithAttribution) {
  SessionConfig cfg;
  cfg.fail_timeout = sim::msec(10);
  Pair p(cfg);
  std::vector<std::string> reasons;
  p.a.on_channel_failed = [&](SessionManager::ChannelHandle, const std::string& why) {
    reasons.push_back(why);
  };
  p.sys.runtime(0).fork_system("app", [&] {
    SessionManager::ChannelHandle h1 = p.a.open_channel(p.ta);
    SessionManager::ChannelHandle h2 = p.a.open_channel(p.ta);
    while (p.a.state(h1) != ChannelState::Open || p.a.state(h2) != ChannelState::Open) {
      p.sys.runtime(0).cpu().sleep_for(sim::usec(200));
    }
    // Kill the reverse path: B's acks (RMP and session) stop arriving.
    p.sys.net().cab(1).out_link().set_down(true);
    p.a.try_send(h1, bytes("doomed"));
    p.a.try_send(h2, bytes("doomed too"));
  });
  // Bound the run: RMP keeps retransmitting into the dead link forever.
  p.sys.engine().run_until(sim::msec(200));
  EXPECT_EQ(p.a.channels_failed(), 2u);
  EXPECT_EQ(p.a.trunk_failures(), 1u);
  EXPECT_TRUE(p.a.trunk_failed(p.ta));
  ASSERT_EQ(reasons.size(), 2u);
  // The reason is attributable: it names the trunk, the peer and the cause.
  EXPECT_NE(reasons[0].find("node1"), std::string::npos) << reasons[0];
  EXPECT_NE(reasons[0].find("no acknowledgment progress"), std::string::npos) << reasons[0];
  bool saw = false;
  for (const SessionEvent& e : p.a.events()) saw = saw || e.kind == "trunk_failed";
  EXPECT_TRUE(saw);
  // Further opens and sends on the dead trunk fail immediately and loudly.
  bool post_checked = false;
  p.sys.runtime(0).fork_system("post", [&] {
    EXPECT_EQ(p.a.open_channel(p.ta), SessionManager::kNoHandle);
    post_checked = true;
  });
  p.sys.engine().run_until(sim::msec(210));
  EXPECT_TRUE(post_checked);
}

TEST(SessionManagerTest, TcpTrunkCarriesChannels) {
  net::NectarSystem sys(2);
  SessionConfig cfg;
  cfg.max_batch = 256;  // force multi-message framing across the byte stream
  SessionManager a(sys.runtime(0), 0, nullptr, &sys.stack(0).tcp, cfg);
  SessionManager b(sys.runtime(1), 1, nullptr, &sys.stack(1).tcp, cfg);
  std::map<std::uint16_t, std::string> got;
  b.on_deliver = [&](int, std::uint16_t ch, std::uint8_t, std::span<const std::uint8_t> pl) {
    got[ch].append(pl.begin(), pl.end());
  };
  constexpr int kMsgs = 40;
  sys.runtime(1).fork_system("server", [&] {
    proto::TcpListener* l = sys.stack(1).tcp.open_listener(9000);
    proto::TcpConnection* c = sys.stack(1).tcp.accept(l);
    b.add_tcp_trunk(c, 0);
  });
  sys.runtime(0).fork_system("client", [&] {
    proto::TcpConnection* c = sys.stack(0).tcp.connect(9001, proto::ip_of_node(1), 9000);
    sys.stack(0).tcp.wait_established(c);
    int t = a.add_tcp_trunk(c, 1);
    SessionManager::ChannelHandle h1 = a.open_channel(t);
    SessionManager::ChannelHandle h2 = a.open_channel(t);
    for (int i = 0; i < kMsgs; ++i) {
      while (a.try_send(h1, bytes("x" + std::to_string(i) + ";")) != SendResult::Ok) {
        sys.runtime(0).cpu().sleep_for(sim::usec(200));
      }
      while (a.try_send(h2, bytes("y" + std::to_string(i) + ";")) != SendResult::Ok) {
        sys.runtime(0).cpu().sleep_for(sim::usec(200));
      }
    }
    a.close_channel(h1);
    a.close_channel(h2);
  });
  sys.engine().run();
  ASSERT_EQ(got.size(), 2u);
  std::string want_x, want_y;
  for (int i = 0; i < kMsgs; ++i) {
    want_x += "x" + std::to_string(i) + ";";
    want_y += "y" + std::to_string(i) + ";";
  }
  EXPECT_EQ(got[0], want_x);
  EXPECT_EQ(got[1], want_y);
  EXPECT_EQ(a.channels_closed(), 2u);
}

}  // namespace
}  // namespace nectar::session
