#pragma once

// Cycle-attribution profiler: where do the simulated CPU cycles go?
//
// The cost model (sim/costs.hpp) charges every protocol action to a CPU via
// core::Cpu::begin_busy — the single point where busy time accrues. A
// Profiler attached to a Cpu records each of those charges under a key
//
//   <cpu>;<context>;<domain>;<sub-domain>...
//
// where <context> is the running thread's name ("irq" for interrupt
// context, "switch" for the context-switch cost the dispatcher charges) and
// the domain path is whatever CostScope instrumentation was active at the
// charge site ("tcp/output", "udp/checksum", "mailbox/begin_put", ...).
// Because attribution happens at the one accrual point, the totals obey an
// exact invariant: the sum of a CPU's folded-stack entries equals that CPU's
// busy_time() (tested by tests/obs/profiler_test.cpp).
//
// Output is the standard folded-stack format ("k1;k2;k3 <count>" per line,
// counts in nanoseconds) consumed by flamegraph.pl / speedscope / inferno,
// plus a JSON summary with per-thread busy totals, run-queue wait, mailbox
// queue-depth gauges, and bus-occupancy records (VME grants, CAB DMA).
//
// Cost model mirrors obs::Tracer: disabled (the default) every hook is a
// pointer/flag check and *zero* simulated time is ever charged — profiling
// cannot perturb measured results, so committed bench reports are unchanged
// whether or not a profile is taken.
//
// Domain stacks live per execution context (fiber), keyed opaquely: the
// execution substrate announces the running context via set_context(), so a
// charge that suspends mid-scope (charges are sliced) never sees another
// fiber's domains. The obs layer sits below sim in the link order, which is
// why the context is an opaque pointer installed from above rather than a
// direct sim::Fiber::current() call.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "sim/time.hpp"

namespace nectar::obs {

class Profiler {
 public:
  Profiler() = default;
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  bool enabled() const { return enabled_; }
  /// Enable/disable recording. Enabling clears any stale per-context domain
  /// stacks, so enable before the instrumented run starts.
  void set_enabled(bool on);

  // --- context plumbing (execution substrate only) ---------------------------

  /// Announce the execution context about to run (an opaque fiber pointer;
  /// nullptr = the engine's main context). core::Cpu calls this around every
  /// fiber resume; CostScope pushes onto the announced context's stack.
  static void set_context(const void* key);

  // --- attribution (called by core::Cpu::begin_busy) -------------------------

  /// Charge `ns` to (cpu, context, current domain stack).
  void record(const std::string& cpu, const std::string& context, sim::SimTime ns);

  // --- gauges / resources ----------------------------------------------------

  /// Sample a mailbox (or other queue) depth at a publish point.
  void sample_queue_depth(const std::string& key, std::size_t depth);

  /// A thread spent `ns` on the run queue before being dispatched.
  void add_queue_wait(const std::string& cpu, const std::string& thread, sim::SimTime ns);

  /// A shared resource (VME bus grant, CAB DMA channel) was occupied for
  /// `ns`. Reported separately from CPU attribution — bus time is not CPU
  /// time, and folding it in would break the busy-cycles invariant.
  void record_occupancy(const std::string& resource, const char* what, sim::SimTime ns);

  // --- results ---------------------------------------------------------------

  std::uint64_t samples() const { return samples_; }
  /// Total attributed ns (equals the sum of attached CPUs' busy_time()).
  sim::SimTime attributed_ns() const;
  /// Attributed ns for one CPU (prefix match on the folded key).
  sim::SimTime attributed_ns(const std::string& cpu) const;

  /// Totals by domain path alone (cpu and context stripped); charges outside
  /// any CostScope aggregate under "(unattributed)".
  std::map<std::string, sim::SimTime> domain_totals() const;

  /// Folded-stack text: one "key ns" line per stack, sorted by key —
  /// byte-deterministic, renderable by standard flamegraph tools.
  std::string folded() const;
  /// Returns false (writing nothing) if the file cannot be opened.
  bool write_folded(const std::string& path) const;

  /// Write folded() to `path` when this profiler is destroyed (RAII: the
  /// artifact survives a run that ends mid-transfer). An explicit
  /// write_folded to the same path beforehand is harmless — the flush just
  /// rewrites identical bytes.
  void set_autoflush(std::string path) { autoflush_ = std::move(path); }
  const std::string& autoflush_path() const { return autoflush_; }

  /// JSON summary: samples, per-CPU/per-context busy totals, run-queue
  /// wait, queue-depth gauges, resource occupancy. Deterministic.
  json::Value summary() const;

  /// Drop all recorded data (keeps the enabled state and autoflush path).
  void clear();

 private:
  struct QueueGauge {
    std::uint64_t samples = 0;
    std::size_t max = 0;
  };
  struct WaitStat {
    std::uint64_t count = 0;
    sim::SimTime total = 0;
  };
  struct OccStat {
    std::uint64_t count = 0;
    sim::SimTime total = 0;
  };

  bool enabled_ = false;
  std::string autoflush_;
  /// Serializes the mutators, which shard worker threads call concurrently
  /// under the parallel engine. All accumulation is commutative (+=, max)
  /// into sorted maps, so totals — and the rendered output — are identical
  /// no matter how the threads interleave. Readers (folded, summary, ...)
  /// run after the simulation has quiesced at a window barrier.
  std::mutex mutex_;
  std::uint64_t samples_ = 0;
  std::map<std::string, sim::SimTime> folded_;                       // full key -> ns
  std::map<std::string, std::map<std::string, sim::SimTime>> cpus_;  // cpu -> context -> ns
  std::map<std::string, QueueGauge> queue_depth_;
  std::map<std::string, std::map<std::string, WaitStat>> queue_wait_;  // cpu -> thread
  std::map<std::string, std::map<std::string, OccStat>> occupancy_;   // resource -> what
};

/// RAII cost-domain scope: while alive, charges on the current execution
/// context attribute under `domain` (nested scopes build a path). `domain`
/// must be a string literal / static string. Free when no profiler is
/// enabled anywhere in the process.
class CostScope {
 public:
  explicit CostScope(const char* domain);
  ~CostScope();

  CostScope(const CostScope&) = delete;
  CostScope& operator=(const CostScope&) = delete;

 private:
  const void* key_ = nullptr;
  bool pushed_ = false;
};

}  // namespace nectar::obs
