#include "core/runtime.hpp"

namespace nectar::core {

CabRuntime::CabRuntime(hw::CabBoard& board, sim::TraceRecorder* trace,
                       obs::MetricsRegistry* metrics, obs::Tracer* tracer)
    : board_(board),
      cpu_(board.engine(), board.name() + ".cpu"),
      heap_(board.memory()),
      signals_(cpu_, board.memory(), heap_),
      cab_syncs_(board.name() + ".cab-syncs"),
      host_syncs_(board.name() + ".host-syncs"),
      trace_(trace),
      own_metrics_(metrics == nullptr ? std::make_unique<obs::MetricsRegistry>() : nullptr),
      metrics_(metrics != nullptr ? metrics : own_metrics_.get()),
      tracer_(tracer),
      metrics_reg_(*metrics_) {
  cpu_.register_metrics(metrics_reg_, node_id(), "cab.cpu");
  if (tracer_ != nullptr) {
    int track = tracer_->track("node" + std::to_string(node_id()), "cab.cpu");
    cpu_.attach_tracer(tracer_, track);
  }
  // Start-of-packet interrupt: the input FIFO went non-empty (§4.1).
  board_.set_irq_handler(hw::CabIrq::PacketArrival, [this] {
    cpu_.post_interrupt([this] {
      if (packet_handler_) packet_handler_();
    });
  });
  // Host doorbell: drain the CAB signal queue at interrupt level (§3.2).
  board_.set_irq_handler(hw::CabIrq::HostDoorbell, [this] {
    cpu_.post_interrupt([this] { signals_.drain_cab_queue(); });
  });
  // DMA completion lines: the datalink layer passes completion lambdas to
  // the DMA controller directly, wrapping them in post_interrupt; these
  // default handlers exist so stray raises fail loudly in tests.
  board_.set_irq_handler(hw::CabIrq::DmaRecvDone, [] {});
  board_.set_irq_handler(hw::CabIrq::DmaSendDone, [] {});
  board_.set_irq_handler(hw::CabIrq::VmeDone, [] {});
}

Mailbox& CabRuntime::create_mailbox(std::string name) {
  std::uint32_t index = next_mailbox_++;
  MailboxAddr addr{board_.node_id(), index};
  auto mb = std::make_unique<Mailbox>(cpu_, heap_, std::move(name), addr);
  Mailbox& ref = *mb;
  ref.register_metrics(metrics_reg_, node_id());
  mailboxes_.emplace(index, std::move(mb));
  return ref;
}

Mailbox* CabRuntime::find_mailbox(std::uint32_t index) {
  auto it = mailboxes_.find(index);
  return it == mailboxes_.end() ? nullptr : it->second.get();
}

}  // namespace nectar::core
