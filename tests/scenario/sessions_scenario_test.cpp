#include <gtest/gtest.h>

#include <string>

#include "scenario/engine.hpp"

namespace nectar::scenario {
namespace {

double row(const obs::RunReport& rep, const std::string& name) {
  obs::json::Value doc = obs::json::Value::parse(rep.to_json_string());
  const obs::json::Value* results = doc.find("results");
  if (results != nullptr) {
    for (std::size_t i = 0; i < results->size(); ++i) {
      const obs::json::Value& r = results->at(i);
      if (r.find("name")->as_string() == name) return r.find("value")->as_double();
    }
  }
  ADD_FAILURE() << "report row missing: " << name;
  return -1.0;
}

ScenarioSpec base_spec(const std::string& extra = "") {
  ScenarioSpec spec = ScenarioSpec::from_config(Config::parse_string(R"(
[scenario]
name = sess
duration = 200ms

[topology]
kind = star
nodes = 4

[sessions]
enabled = true
trunks = 2
channels = 40
rate = 2000
size = 32
warmup = 20ms
)" + extra));
  return spec;
}

TEST(SessionsScenarioTest, ChannelsOpenFlowAndReport) {
  Scenario sc(base_spec());
  sc.run();
  ASSERT_NE(sc.sessions(), nullptr);
  obs::RunReport rep = sc.report();
  // Every node opened its full channel complement over 2 trunks.
  EXPECT_EQ(row(rep, "session.opened"), 4 * 40);
  EXPECT_EQ(row(rep, "session.refused"), 0);
  EXPECT_EQ(row(rep, "session.failed"), 0);
  EXPECT_EQ(row(rep, "session.trunk_failures"), 0);
  EXPECT_EQ(row(rep, "session.proto_errors"), 0);
  double sent = row(rep, "session.data.sent");
  double delivered = row(rep, "session.data.delivered");
  EXPECT_GT(sent, 0);
  EXPECT_GT(delivered, 0);
  // Backpressure is shed, never loss: everything delivered was sent, the
  // remainder is in-flight at the horizon, not lost.
  EXPECT_LE(delivered, sent);
  EXPECT_GE(delivered, sent * 0.9);
  // Round-robin over identical channels: Jain's index is essentially 1.
  EXPECT_GT(row(rep, "session.fairness"), 0.95);
  EXPECT_LE(row(rep, "session.fairness"), 1.0 + 1e-9);
  // Frame batching really multiplexes: more frames than trunk messages.
  EXPECT_GE(row(rep, "session.trunk.frames_per_msg"), 1.0);
  EXPECT_GT(row(rep, "session.open.count"), 0);
  EXPECT_GT(row(rep, "session.data.p99"), 0);
}

TEST(SessionsScenarioTest, ChurnStormIsDeterministic) {
  const std::string churn = R"(
churn_rate = 500
churn_start = 30ms
stall_at = 60ms
stall_duration = 20ms
stall_channels = 2
probe_channels = 2
)";
  auto run_once = [&](std::uint64_t seed) {
    ScenarioSpec spec = base_spec(churn);
    spec.seed = seed;
    Scenario sc(spec);
    sc.run();
    return sc.report().to_json_string();
  };
  std::string a = run_once(7);
  std::string b = run_once(7);
  EXPECT_EQ(a, b) << "churn + stall storm must be byte-deterministic";
  std::string c = run_once(8);
  EXPECT_NE(a, c) << "seed must decorrelate the churn stream";
}

TEST(SessionsScenarioTest, ChurnRecyclesIdsWithoutErrors) {
  ScenarioSpec spec = base_spec(R"(
churn_rate = 800
churn_start = 30ms
)");
  Scenario sc(spec);
  sc.run();
  obs::RunReport rep = sc.report();
  EXPECT_GT(row(rep, "session.churn.cycles"), 0);
  EXPECT_GT(row(rep, "session.closed"), 0);
  // Id reuse under live traffic must never corrupt the protocol state:
  // generation tags shield late frames, so no protocol errors surface.
  EXPECT_EQ(row(rep, "session.proto_errors"), 0);
  EXPECT_EQ(row(rep, "session.failed"), 0);
}

TEST(SessionsScenarioTest, StalledChannelDoesNotDragSiblingTail) {
  // One trunk, probe channel 0 frozen mid-run for 60ms: channel 0's tail
  // must absorb the stall while channel 1 (same trunk!) stays unaffected.
  const std::string stall = R"(
stall_at = 80ms
stall_duration = 60ms
stall_channels = 1
probe_channels = 2
)";
  ScenarioSpec stalled = base_spec(stall);
  // Re-parse with trunks=1 so both probes share one trunk, few channels so
  // the round-robin hits the victim often, and a tight initial credit so
  // those sends actually exhaust it while the freeze withholds refresh
  // grants — otherwise the stall never bites and the victim's tail is flat.
  stalled.sessions.trunks = 1;
  stalled.sessions.channels = 8;
  stalled.sessions.initial_credit = 2;
  ScenarioSpec clean = base_spec();
  clean.sessions.trunks = 1;
  clean.sessions.channels = 8;
  clean.sessions.initial_credit = 2;
  clean.sessions.probe_channels = 2;
  Scenario sc1(stalled);
  sc1.run();
  obs::RunReport r1 = sc1.report();
  Scenario sc0(clean);
  sc0.run();
  obs::RunReport r0 = sc0.report();
  EXPECT_GT(row(r1, "session.credit_stalls"), 0) << "the freeze must bite";
  double victim_p99 = row(r1, "session.probe0.p99");
  double sibling_p99 = row(r1, "session.probe1.p99");
  double baseline_p99 = row(r0, "session.probe1.p99");
  // The victim's p99 absorbs tens of milliseconds; the sibling's stays in
  // the same regime as the stall-free run.
  EXPECT_GT(victim_p99, 10'000.0);  // us
  EXPECT_LT(sibling_p99, baseline_p99 * 1.5 + 100.0);
}

TEST(SessionsScenarioTest, CabCrashFailsChannelsLoudly) {
  ScenarioSpec spec = base_spec(R"(
[fault]
kind = cab_crash
target = node1.cab
at = 100ms
)");
  Scenario sc(spec);
  sc.run();
  obs::RunReport rep = sc.report();
  // Node 1 is dead: every trunk toward it fails its channels with
  // attribution instead of hanging.
  EXPECT_GT(row(rep, "session.trunk_failures"), 0);
  EXPECT_GT(row(rep, "session.failed"), 0);
  bool saw = false;
  for (int i = 0; i < sc.nodes(); ++i) {
    for (const session::SessionEvent& e : sc.sessions()->manager(i).events()) {
      saw = saw || e.kind == "trunk_failed";
    }
  }
  EXPECT_TRUE(saw);
}

TEST(SessionsScenarioTest, DisabledSessionsAddNoRowsOrState) {
  ScenarioSpec spec = base_spec();
  spec.sessions.enabled = false;
  Scenario sc(spec);
  sc.run();
  EXPECT_EQ(sc.sessions(), nullptr);
  EXPECT_EQ(sc.report().to_json_string().find("session."), std::string::npos);
}

}  // namespace
}  // namespace nectar::scenario
