// Ablation (paper §3.1/§3.3): reader upcalls vs dedicated server threads,
// and host polling vs blocking in the driver (§3.2).
//
// "if a pair of threads uses a mailbox in a client-server style, the body of
// the server thread can instead be attached to the mailbox as a reader
// upcall; this effectively converts a cross-thread procedure call into a
// local one" — trading the concurrency of a thread for the absence of
// context switches.

#include "common.hpp"

namespace nectar::bench {
namespace {

constexpr int kRequests = 100;

/// Client-server over one mailbox: the server is a reader upcall.
double upcall_server_usec() {
  net::NectarSystem sys(1);
  sim::SimTime elapsed = 0;
  sys.runtime(0).fork_system("client", [&] {
    core::CabRuntime& rt = sys.runtime(0);
    core::Mailbox& req = rt.create_mailbox("requests");
    core::Mailbox& rsp = rt.create_mailbox("responses");
    req.set_reader_upcall([&rsp, &rt](core::Mailbox& mb) {
      auto m = mb.begin_get_try();
      if (!m.has_value()) return;
      rt.cpu().charge(sim::usec(5));  // "service" work
      mb.enqueue(*m, rsp);            // respond in place
    });
    sim::SimTime t0 = sys.engine().now();
    for (int i = 0; i < kRequests; ++i) {
      core::Message m = req.begin_put(32);
      req.end_put(m);  // upcall runs the server body right here
      core::Message r = rsp.begin_get();
      rsp.end_get(r);
    }
    elapsed = sys.engine().now() - t0;
  });
  sys.engine().run();
  return sim::to_usec(elapsed) / kRequests;
}

/// Same exchange with a dedicated server thread (context switches).
double thread_server_usec() {
  net::NectarSystem sys(1);
  sim::SimTime elapsed = 0;
  core::CabRuntime& rt = sys.runtime(0);
  core::Mailbox& req = rt.create_mailbox("requests");
  core::Mailbox& rsp = rt.create_mailbox("responses");
  rt.fork_system("server", [&] {
    for (int i = 0; i < kRequests; ++i) {
      core::Message m = req.begin_get();
      rt.cpu().charge(sim::usec(5));
      req.enqueue(m, rsp);
    }
  });
  rt.fork_system("client", [&] {
    sim::SimTime t0 = sys.engine().now();
    for (int i = 0; i < kRequests; ++i) {
      core::Message m = req.begin_put(32);
      req.end_put(m);
      core::Message r = rsp.begin_get();
      rsp.end_get(r);
    }
    elapsed = sys.engine().now() - t0;
  });
  sys.engine().run();
  return sim::to_usec(elapsed) / kRequests;
}

/// Host waiting for a CAB event: polling (no syscall) vs blocking (driver +
/// interrupt + context switch). Returns {latency_usec, host_cpu_usec}.
std::pair<double, double> host_wait(bool poll) {
  net::NectarSystem sys(1, /*with_vme=*/true);
  host::HostNode h(sys, 0);
  sim::SimTime woke = 0;
  auto cond = sys.runtime(0).signals().alloc_condition();
  constexpr sim::SimTime kSignalAt = sim::msec(2);
  h.host.run_process("waiter", [&] {
    if (poll) {
      h.driver.wait_poll(cond, 0);
    } else {
      h.driver.wait_blocking(cond, 0);
    }
    woke = sys.engine().now();
  });
  sys.runtime(0).fork_system("signaler", [&] {
    sys.runtime(0).cpu().sleep_until(kSignalAt);
    sys.runtime(0).signals().signal(cond);
  });
  sys.engine().run();
  return {sim::to_usec(woke - kSignalAt), sim::to_usec(h.host.cpu().busy_time())};
}

}  // namespace
}  // namespace nectar::bench

int main(int argc, char** argv) {
  using namespace nectar::bench;
  BenchOptions opts = parse_options(argc, argv);
  print_header("Ablation: upcalls vs threads; polling vs blocking (paper §3)");

  double up = upcall_server_usec();
  double th = thread_server_usec();
  std::printf("client-server request, upcall server      : %7.1f us/request\n", up);
  std::printf("client-server request, thread server      : %7.1f us/request\n", th);
  std::printf("  -> the upcall avoids two %g us context switches per request (§3.3)\n\n",
              nectar::sim::to_usec(nectar::sim::costs::kContextSwitch));

  auto [poll_lat, poll_cpu] = host_wait(true);
  auto [block_lat, block_cpu] = host_wait(false);
  std::printf("host wait for CAB event (signal after 2 ms of idle waiting):\n");
  std::printf("  polling : wake latency %6.1f us, host CPU burned %8.1f us\n", poll_lat, poll_cpu);
  std::printf("  blocking: wake latency %6.1f us, host CPU burned %8.1f us\n", block_lat,
              block_cpu);
  std::printf("  -> polling wakes faster but burns the host CPU on the VME bus;\n"
              "     blocking frees the CPU at the cost of interrupt + reschedule (§3.2).\n");
  nectar::obs::RunReport report("ablation-upcall");
  report.add("upcall_server", up, "us/request");
  report.add("thread_server", th, "us/request");
  report.add("poll_wake_latency", poll_lat, "us");
  report.add("poll_host_cpu", poll_cpu, "us");
  report.add("block_wake_latency", block_lat, "us");
  report.add("block_host_cpu", block_cpu, "us");
  finish_report(opts, report);
  return 0;
}
