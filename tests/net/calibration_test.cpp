// Calibration guards: the paper-reproduction numbers in EXPERIMENTS.md are
// regression-tested here with tolerance bands. If a change to the runtime,
// protocols, or cost model moves a headline result out of its band, this
// file fails before the benchmarks quietly drift away from the paper.

#include <gtest/gtest.h>

#include "host/node.hpp"

namespace nectar::net {
namespace {

// --- CAB-CAB datagram RTT: paper 179 us, calibrated 165.8 ------------------------

TEST(Calibration, CabToCabDatagramRtt) {
  NectarSystem sys(2);
  core::Mailbox& svc = sys.runtime(1).create_mailbox("echo");
  core::Mailbox& reply = sys.runtime(0).create_mailbox("reply");
  sim::SimTime rtt = -1;
  sys.runtime(1).fork_system("echo", [&] {
    core::Message m = svc.begin_get();
    auto info = sys.stack(1).datagram.last_sender(svc);
    sys.stack(1).datagram.send({info.src_node, info.src_mailbox}, m);
  });
  sys.runtime(0).fork_system("client", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("s");
    core::Message m = s.begin_put(64);
    sim::SimTime t0 = sys.engine().now();
    sys.stack(0).datagram.send(svc.address(), m, true, reply.address().index);
    core::Message r = reply.begin_get();
    rtt = sys.engine().now() - t0;
    reply.end_get(r);
  });
  sys.engine().run();
  // Paper: 179 us. Band: 140-210 us.
  EXPECT_GE(rtt, sim::usec(140));
  EXPECT_LE(rtt, sim::usec(210));
}

// --- host-host datagram RTT: paper 325 us, calibrated 342 --------------------------

TEST(Calibration, HostToHostDatagramRtt) {
  NectarSystem sys(2, /*with_vme=*/true);
  host::HostNode h0(sys, 0), h1(sys, 1);
  core::MailboxAddr svc{};
  bool ready = false;
  h1.host.run_process("echo", [&] {
    host::HostNectarPort port(h1.nin, h1.sockets, "echo");
    svc = port.address();
    ready = true;
    std::vector<std::uint8_t> buf(128);
    std::size_t n = port.recv(buf);
    core::MailboxAddr back{static_cast<std::int32_t>(proto::get32n(buf, 0)),
                           proto::get32n(buf, 4)};
    port.send_datagram(back, std::span<const std::uint8_t>(buf).first(n));
  });
  sys.net().run_until(sim::msec(1));
  ASSERT_TRUE(ready);
  sim::SimTime rtt = -1;
  h0.host.run_process("client", [&] {
    host::HostNectarPort port(h0.nin, h0.sockets, "cli");
    std::vector<std::uint8_t> msg(64, 0);
    proto::put32n(msg, 0, static_cast<std::uint32_t>(port.address().node));
    proto::put32n(msg, 4, port.address().index);
    std::vector<std::uint8_t> buf(128);
    sim::SimTime t0 = sys.engine().now();
    port.send_datagram(svc, msg);
    port.recv(buf);
    rtt = sys.engine().now() - t0;
  });
  sys.net().run_until(sim::sec(2));
  // Paper: 325 us. Band: 280-400 us.
  EXPECT_GE(rtt, sim::usec(280));
  EXPECT_LE(rtt, sim::usec(400));
}

// --- RMP CAB-CAB throughput at 8 KB: paper ~90, calibrated 86.8 --------------------

TEST(Calibration, RmpThroughputAt8K) {
  NectarSystem sys(2);
  core::Mailbox& sink = sys.runtime(1).create_mailbox("sink");
  constexpr int kN = 100;
  sim::SimTime t0 = -1, t1 = -1;
  sys.runtime(1).fork_system("rx", [&] {
    for (int i = 0; i < kN; ++i) {
      core::Message m = sink.begin_get();
      if (t0 < 0) t0 = sys.engine().now();
      sink.end_get(m);
    }
    t1 = sys.engine().now();
  });
  sys.runtime(0).fork_system("tx", [&] {
    core::Mailbox& s = sys.runtime(0).create_mailbox("s");
    for (int i = 0; i < kN; ++i) {
      sys.stack(0).rmp.wait_queue_below(1, 16);
      core::Message m = s.begin_put(8192);
      sys.stack(0).rmp.send(sink.address(), m);
    }
  });
  sys.engine().run();
  double mbit = (kN - 1) * 8192 * 8.0 / (static_cast<double>(t1 - t0) / sim::kSecond) / 1e6;
  // Paper: ~90 Mbit/s of 100. Band: 80-95.
  EXPECT_GE(mbit, 80.0);
  EXPECT_LE(mbit, 95.0);
}

// --- host-host RMP throughput at 8 KB: paper ~28 (VME-capped) ------------------------

TEST(Calibration, HostRmpThroughputIsVmeCapped) {
  NectarSystem sys(2, /*with_vme=*/true);
  host::HostNode h0(sys, 0), h1(sys, 1);
  core::MailboxAddr dst{};
  bool ready = false;
  constexpr int kN = 40;
  sim::SimTime t0 = -1, t1 = -1;
  h1.host.run_process("rx", [&] {
    host::HostNectarPort port(h1.nin, h1.sockets, "sink");
    dst = port.address();
    ready = true;
    std::vector<std::uint8_t> buf(8192);
    for (int i = 0; i < kN; ++i) {
      port.recv(buf);
      if (t0 < 0) t0 = sys.engine().now();
    }
    t1 = sys.engine().now();
  });
  sys.net().run_until(sim::msec(1));
  ASSERT_TRUE(ready);
  h0.host.run_process("tx", [&] {
    host::HostNectarPort port(h0.nin, h0.sockets, "src");
    std::vector<std::uint8_t> data(8192, 0x42);
    for (int i = 0; i < kN; ++i) {
      while (sys.stack(0).rmp.queued_to(1) >= 8) h0.host.cpu().sleep_for(sim::usec(200));
      port.send_reliable(dst, data);
    }
  });
  sys.net().run_until(sim::sec(30));
  double mbit = (kN - 1) * 8192 * 8.0 / (static_cast<double>(t1 - t0) / sim::kSecond) / 1e6;
  // Paper: ~28 Mbit/s against the ~30 Mbit/s VME. Band: 24-30.
  EXPECT_GE(mbit, 24.0);
  EXPECT_LE(mbit, 30.0);
}

// --- the TCP-vs-RMP checksum gap (Fig. 7's central claim) ----------------------------

TEST(Calibration, ChecksumGapSeparatesTcpFromRmp) {
  auto tcp_8k = [](bool cksum) {
    proto::TcpConfig cfg;
    cfg.software_checksum = cksum;
    NectarSystem sys(2, false, cfg);
    constexpr int kN = 60;
    sim::SimTime t0 = -1, t1 = -1;
    sys.runtime(1).fork_app("server", [&] {
      proto::TcpConnection* c = sys.stack(1).tcp.listen(80);
      sys.stack(1).tcp.wait_established(c);
      std::uint64_t got = 0;
      while (got < static_cast<std::uint64_t>(kN) * 8192) {
        core::Message m = c->receive_mailbox().begin_get();
        if (t0 < 0) t0 = sys.engine().now();
        got += m.len;
        c->receive_mailbox().end_get(m);
      }
      t1 = sys.engine().now();
    });
    sys.runtime(0).fork_app("client", [&] {
      sys.runtime(0).cpu().sleep_for(sim::usec(100));
      proto::TcpConnection* c = sys.stack(0).tcp.connect(5000, proto::ip_of_node(1), 80);
      sys.stack(0).tcp.wait_established(c);
      core::Mailbox& s = sys.runtime(0).create_mailbox("tx");
      for (int i = 0; i < kN; ++i) {
        sys.stack(0).tcp.wait_send_window(c, 128 * 1024);
        core::Message m = s.begin_put(8192);
        sys.stack(0).tcp.send(c, m);
      }
    });
    sys.engine().run();
    return kN * 8192 * 8.0 / (static_cast<double>(t1 - t0) / sim::kSecond) / 1e6;
  };
  double with = tcp_8k(true);
  double without = tcp_8k(false);
  // Calibrated: ~45 vs ~99. The gap factor stays near 2x.
  EXPECT_GE(with, 38.0);
  EXPECT_LE(with, 55.0);
  EXPECT_GE(without / with, 1.7);
}

}  // namespace
}  // namespace nectar::net
