#include "obs/causal.hpp"

#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "sim/engine.hpp"

namespace nectar::obs {
namespace {

TEST(TraceStamp, EncodeDecodeRoundTrip) {
  std::uint8_t buf[kTraceStampBytes];
  TraceContext in;
  in.trace_id = 0x0123456789ABCDEFull;
  in.parent_span = 0xDEADBEEF;
  in.hop = 7;
  encode_stamp(buf, in);

  TraceContext out;
  ASSERT_TRUE(decode_stamp(buf, out));
  EXPECT_EQ(out.trace_id, in.trace_id);
  EXPECT_EQ(out.parent_span, in.parent_span);
  EXPECT_EQ(out.hop, in.hop);
}

TEST(TraceStamp, DecodeRejectsShortAndCorruptInput) {
  std::uint8_t buf[kTraceStampBytes];
  TraceContext in;
  in.trace_id = 42;
  encode_stamp(buf, in);

  TraceContext out;
  EXPECT_FALSE(decode_stamp(std::span<const std::uint8_t>(buf, kTraceStampBytes - 1), out));
  buf[0] ^= 0xFF;  // break the magic
  EXPECT_FALSE(decode_stamp(buf, out));
}

TEST(CausalTracer, InactiveByDefaultAndScopedActivation) {
  EXPECT_EQ(CausalTracer::active(), nullptr);
  sim::Engine e;
  {
    CausalTracer t(e, 1);
    EXPECT_EQ(CausalTracer::active(), nullptr);  // construction does not activate
    t.activate();
    EXPECT_EQ(CausalTracer::active(), &t);
  }
  // Destruction deactivates.
  EXPECT_EQ(CausalTracer::active(), nullptr);
}

TEST(CausalTracer, SamplingIsSeededAndDeterministic) {
  sim::Engine e;
  auto run = [&e](std::uint64_t seed) {
    CausalTracer::Options opt;
    opt.sample = 0.5;
    CausalTracer t(e, seed, opt);
    std::vector<bool> picks;
    for (int i = 0; i < 64; ++i) picks.push_back(t.maybe_start("f", 0, 1, i).valid());
    return picks;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(CausalTracer, SampleZeroAndOne) {
  sim::Engine e;
  CausalTracer::Options none;
  none.sample = 0.0;
  CausalTracer t0(e, 1, none);
  for (int i = 0; i < 32; ++i) EXPECT_FALSE(t0.maybe_start("f", 0, 1, i).valid());
  EXPECT_EQ(t0.sampled_out(), 32u);

  CausalTracer::Options all;
  all.sample = 1.0;
  CausalTracer t1(e, 1, all);
  for (int i = 0; i < 32; ++i) EXPECT_TRUE(t1.maybe_start("f", 0, 1, i).valid());
  EXPECT_EQ(t1.started(), 32u);
}

TEST(CausalTracer, MaxTracesCapsStarts) {
  sim::Engine e;
  CausalTracer::Options opt;
  opt.sample = 1.0;
  opt.max_traces = 3;
  CausalTracer t(e, 1, opt);
  for (int i = 0; i < 5; ++i) t.maybe_start("f", 0, 1, i);
  EXPECT_EQ(t.started(), 3u);
  EXPECT_EQ(t.capped(), 2u);
}

// The heart of the design: consecutive stage() calls tile [start, end], so
// the per-stage durations sum exactly to the end-to-end latency.
TEST(CausalTracer, CutPointStagesTileTheTraceExactly) {
  sim::Engine e;
  CausalTracer::Options opt;
  opt.sample = 1.0;
  CausalTracer t(e, 1, opt);

  TraceContext ctx;
  e.schedule_at(1000, [&] {
    ctx = t.maybe_start("flow", 0, 1, 0);
    t.stage(ctx, "tx.app", "node0");
  });
  e.schedule_at(1400, [&] { t.stage(ctx, "tx.udp", "node0"); });
  e.schedule_at(2650, [&] { t.stage(ctx, "link.tx"); });
  e.schedule_at(4000, [&] { t.stage(ctx, "rx.udp", "node1"); });
  e.schedule_at(4100, [&] { t.finish(ctx); });
  e.run();

  ASSERT_EQ(t.traces().size(), 1u);
  const CausalTracer::Trace& tr = *t.traces()[0];
  EXPECT_TRUE(tr.finished);
  EXPECT_EQ(tr.e2e(), 3100);
  ASSERT_EQ(tr.stages.size(), 4u);
  sim::SimTime sum = 0;
  for (const StageRecord& s : tr.stages) sum += s.duration();
  EXPECT_EQ(sum, tr.e2e());
  EXPECT_EQ(tr.stages[0].label, "tx.app");
  EXPECT_EQ(tr.stages[0].duration(), 400);
  EXPECT_EQ(tr.stages[1].duration(), 1250);
  EXPECT_EQ(tr.stages[2].duration(), 1350);
  EXPECT_EQ(tr.stages[3].duration(), 100);

  CriticalPathAnalyzer cpa(t);
  EXPECT_EQ(cpa.verify(), "");
}

TEST(CausalTracer, StagesAfterFinishAreIgnored) {
  sim::Engine e;
  CausalTracer::Options opt;
  opt.sample = 1.0;
  CausalTracer t(e, 1, opt);
  TraceContext ctx = t.maybe_start("f", 0, 1, 0);
  t.stage(ctx, "tx.app");
  t.finish(ctx);
  t.stage(ctx, "late");
  t.annotate(ctx, "late.note");
  ASSERT_EQ(t.traces().size(), 1u);
  EXPECT_EQ(t.traces()[0]->stages.size(), 1u);
  EXPECT_TRUE(t.traces()[0]->notes.empty());
  // Invalid contexts are always no-ops.
  t.stage({}, "nothing");
  t.finish({});
}

TEST(CausalTracer, StageOverflowDiscardsTrace) {
  sim::Engine e;
  CausalTracer::Options opt;
  opt.sample = 1.0;
  opt.max_stages = 4;
  CausalTracer t(e, 1, opt);
  TraceContext ctx = t.maybe_start("f", 0, 1, 0);
  for (int i = 0; i < 10; ++i) t.stage(ctx, "s");
  t.finish(ctx);
  EXPECT_EQ(t.overflowed(), 1u);
  EXPECT_EQ(t.finished_count(), 0u);
  // Overflowed traces are excluded from verification and the artifact.
  CriticalPathAnalyzer cpa(t);
  EXPECT_EQ(cpa.verify(), "");
}

TEST(CausalTracer, AddressTagsLookupByContainment) {
  sim::Engine e;
  CausalTracer::Options opt;
  opt.sample = 1.0;
  CausalTracer t(e, 1, opt);
  TraceContext ctx = t.maybe_start("f", 0, 1, 0);

  t.tag(2, 0x1000, 64, ctx);
  EXPECT_EQ(t.lookup(2, 0x1000).trace_id, ctx.trace_id);
  EXPECT_EQ(t.lookup(2, 0x103F).trace_id, ctx.trace_id);  // last byte
  EXPECT_FALSE(t.lookup(2, 0x1040).valid());              // one past the end
  EXPECT_FALSE(t.lookup(2, 0x0FFF).valid());              // before the range
  EXPECT_FALSE(t.lookup(3, 0x1000).valid());              // other node
}

TEST(CausalTracer, OverlappingTagOverwritesAndInvalidClears) {
  sim::Engine e;
  CausalTracer::Options opt;
  opt.sample = 1.0;
  CausalTracer t(e, 1, opt);
  TraceContext a = t.maybe_start("f", 0, 1, 0);
  TraceContext b = t.maybe_start("f", 0, 1, 1);

  // b's buffer recycles part of a's range: a's stale tag must not survive.
  t.tag(0, 0x2000, 128, a);
  t.tag(0, 0x2040, 64, b);
  EXPECT_EQ(t.lookup(0, 0x2050).trace_id, b.trace_id);
  EXPECT_FALSE(t.lookup(0, 0x2000).valid());  // a's tag was erased wholesale

  // An invalid context clears without installing.
  t.tag(0, 0x2040, 64, {});
  EXPECT_FALSE(t.lookup(0, 0x2050).valid());
}

TEST(CausalTracer, RxScopePublishesAndRestores) {
  sim::Engine e;
  CausalTracer::Options opt;
  opt.sample = 1.0;
  CausalTracer t(e, 1, opt);
  t.activate();
  TraceContext outer = t.maybe_start("f", 0, 1, 0);
  TraceContext inner = t.maybe_start("f", 0, 1, 1);
  EXPECT_FALSE(t.rx_context().valid());
  {
    CausalTracer::RxScope s1(outer);
    EXPECT_EQ(t.rx_context().trace_id, outer.trace_id);
    {
      CausalTracer::RxScope s2(inner);
      EXPECT_EQ(t.rx_context().trace_id, inner.trace_id);
    }
    EXPECT_EQ(t.rx_context().trace_id, outer.trace_id);
  }
  EXPECT_FALSE(t.rx_context().valid());
  t.deactivate();
}

TEST(CriticalPathAnalyzer, ClassifiesLossWaitByRerouteWindow) {
  sim::Engine e;
  CausalTracer::Options opt;
  opt.sample = 1.0;
  CausalTracer t(e, 1, opt);

  // Two identical traces 0 -> 1 with a loss.wait stage over [1000, 5000];
  // a reroute window is noted for (0, 1) only, so the matching trace's
  // loss.wait reclassifies from retransmit to reroute.
  TraceContext a, b;
  e.schedule_at(500, [&] {
    a = t.maybe_start("f", 0, 1, 0);
    t.stage(a, "tx.app", "node0");
    b = t.maybe_start("g", 0, 2, 0);
    t.stage(b, "tx.app", "node0");
  });
  e.schedule_at(1000, [&] {
    t.stage(a, "loss.wait", "node0");
    t.stage(b, "loss.wait", "node0");
  });
  e.schedule_at(5000, [&] {
    t.stage(a, "rx.udp", "node1");
    t.stage(b, "rx.udp", "node2");
  });
  e.schedule_at(5100, [&] {
    t.finish(a);
    t.finish(b);
  });
  e.run();
  t.note_reroute(0, 1, 2000, 4000);  // overlaps a's loss.wait; dst matches a only

  CriticalPathAnalyzer cpa(t);
  const CausalTracer::Trace& ta = *t.traces()[0];
  const CausalTracer::Trace& tb = *t.traces()[1];
  EXPECT_STREQ(cpa.classify(ta, ta.stages[1]), "reroute");
  EXPECT_STREQ(cpa.classify(tb, tb.stages[1]), "retransmit");
}

TEST(CriticalPathAnalyzer, ArtifactIsDeterministicAndWellFormed) {
  sim::Engine e;
  auto build = [&e](CausalTracer& t) {
    TraceContext c1, c2;
    e.schedule_at(100, [&] {
      c1 = t.maybe_start("f", 0, 1, 0);
      t.stage(c1, "tx.app", "node0");
      c2 = t.maybe_start("f", 0, 1, 1);
      t.stage(c2, "tx.app", "node0");
    });
    e.schedule_at(700, [&] {
      t.stage(c1, "rx.udp", "node1");
      t.stage(c2, "rx.udp", "node1");
    });
    e.schedule_at(800, [&] { t.finish(c1); });
    e.schedule_at(2000, [&] { t.finish(c2); });
    e.run();
  };
  CausalTracer::Options opt;
  opt.sample = 1.0;
  CausalTracer t(e, 9, opt);
  build(t);

  json::Value art = CriticalPathAnalyzer(t).artifact(10);
  EXPECT_EQ(art.find("schema")->as_string(), "nectar-tailtrace");
  EXPECT_EQ(art.find("version")->as_int(), 1);
  const json::Value* flows = art.find("flows");
  ASSERT_NE(flows, nullptr);
  ASSERT_EQ(flows->size(), 1u);
  const json::Value& f = flows->at(0);
  EXPECT_EQ(f.find("flow")->as_string(), "f");
  EXPECT_EQ(f.find("finished")->as_int(), 2);
  // Slowest-first ordering: the 1900ns trace leads.
  const json::Value& slow = f.find("slowest")->at(0);
  EXPECT_DOUBLE_EQ(slow.find("e2e_us")->as_double(), 1.9);
  // Same inputs, same bytes.
  EXPECT_EQ(art.dump(2), CriticalPathAnalyzer(t).artifact(10).dump(2));

  // report_into emits the aggregate rows without throwing.
  RunReport rep("causal-test");
  CriticalPathAnalyzer(t).report_into(rep);
  json::Value doc = json::Value::parse(rep.to_json_string());
  bool found = false;
  for (const json::Value& row : doc.find("results")->items()) {
    if (row.find("name")->as_string() == "tailtrace.traces.finished") {
      EXPECT_DOUBLE_EQ(row.find("value")->as_double(), 2.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace nectar::obs
