#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/scheduler.hpp"
#include "core/thread.hpp"
#include "sim/costs.hpp"
#include "sim/engine.hpp"
#include "sim/fiber.hpp"

namespace nectar::obs {
class Tracer;
class Registration;
class Profiler;
}

namespace nectar::core {

/// A simulated processor (the CAB's SPARC, or a host CPU) executing threads
/// with the paper's runtime semantics:
///
///  - CPU work is modeled by `charge(ns)`: the running context occupies the
///    CPU for that long. Interrupts and preemption are delivered at charge
///    boundaries (charges are small, matching the paper's interrupt-latency
///    requirement of "a few tens of microseconds", §3.1).
///  - Interrupt handlers run in a dedicated interrupt context with priority
///    over all threads; they may charge time but must not block. Further
///    interrupts queue until the current handler finishes (the paper did not
///    use nested interrupts, §3.1).
///  - Scheduling is preemptive and priority-based; a context switch costs
///    20 us on the CAB (§3.1: SPARC register-window save/restore).
///
/// The whole simulation is single-OS-threaded; "concurrency" between CPUs is
/// interleaving on the event queue, which makes every run deterministic.
class Cpu {
 public:
  /// Interrupt handlers and timer callbacks are small-buffer callables: the
  /// hardware completion paths post them per packet, so they must not heap-
  /// allocate for ordinary captures.
  using IrqHandler = sim::InplaceAction;
  using TimerId = std::uint64_t;

  Cpu(sim::Engine& engine, std::string name,
      sim::SimTime context_switch_cost = sim::costs::kContextSwitch);
  ~Cpu();

  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  sim::Engine& engine() { return engine_; }
  const std::string& name() const { return name_; }

  /// The Cpu whose execution context (thread or interrupt) is currently
  /// running, or nullptr outside any context. Runtime primitives use this to
  /// charge costs to whichever processor invoked them (a CAB SPARC or a host
  /// CPU operating on shared CAB memory).
  static Cpu* current();

  // --- thread management --------------------------------------------------

  /// Create a thread; it becomes runnable immediately. The Cpu owns it.
  Thread* fork(std::string name, int priority, std::function<void()> body);

  /// Block until `t` finishes. Must be called from a thread on this Cpu.
  void join(Thread* t);

  /// The thread currently owning the CPU (nullptr in interrupt context or
  /// when idle).
  Thread* current_thread() const { return current_; }

  /// True while executing in the interrupt context.
  bool in_interrupt() const { return irq_active_; }

  // --- called from the running context (thread or interrupt) ---------------

  /// Consume `ns` of CPU time.
  void charge(sim::SimTime ns);

  /// Stall until absolute simulated time `t` (e.g. the hardware FIFO
  /// delivering header bytes still in flight). No-op if `t` is in the past.
  void charge_until(sim::SimTime t);

  /// Voluntarily offer the CPU to an equal-or-higher-priority ready thread.
  void yield();

  /// Block the current thread (its waker holds it in some wait queue).
  /// Must not be called from interrupt context.
  void block();

  /// Atomically re-enable interrupts (one level) and block. Callers hold the
  /// interrupt mask while inspecting state shared with interrupt handlers
  /// (paper §3.1); this is the sleep half of that critical-section pattern.
  /// Returns with the mask re-acquired.
  void block_unmasked();

  /// Make a blocked thread runnable. Callable from anywhere (interrupt
  /// context, another CPU's thread, or plain engine callbacks).
  void wake(Thread* t);

  /// Block the current thread until simulated time `t` / for `ns`.
  void sleep_until(sim::SimTime t);
  void sleep_for(sim::SimTime ns) { sleep_until(engine_.now() + ns); }

  // --- interrupts ----------------------------------------------------------

  /// Queue `handler` to run in interrupt context (hardware completion paths
  /// call this). Delivered at the next charge boundary, or immediately if
  /// the CPU is idle.
  void post_interrupt(IrqHandler handler);

  /// Mask / unmask interrupt delivery (paper §3.1: critical sections shared
  /// with interrupt handlers are protected by masking). Nests.
  void disable_interrupts();
  void enable_interrupts();
  bool interrupts_enabled() const { return irq_disable_depth_ == 0; }

  /// One-shot timer: at time `t`, run `fn` in interrupt context.
  TimerId set_timer(sim::SimTime t, sim::InplaceAction fn);
  void cancel_timer(TimerId id);

  // --- stats ---------------------------------------------------------------

  std::uint64_t context_switches() const { return context_switches_; }
  std::uint64_t interrupts_taken() const { return interrupts_taken_; }
  sim::SimTime busy_time() const { return busy_time_; }
  std::size_t threads_alive() const;
  sim::SimTime context_switch_cost() const { return switch_cost_; }

  // --- observability ---------------------------------------------------------

  /// Emit scheduler events (thread occupancy spans, preemptions, interrupt
  /// service spans) onto `track` of `tracer`. nullptr detaches.
  void attach_tracer(obs::Tracer* tracer, int track);
  obs::Tracer* tracer() const { return tracer_; }
  int trace_track() const { return trace_track_; }

  /// Attribute every busy interval (charges, context-switch costs) to
  /// `profiler` under (cpu name, running context, CostScope domain stack).
  /// Also enables run-queue wait accounting. nullptr detaches. Like the
  /// tracer, an attached-but-disabled profiler costs one flag check and
  /// never charges simulated time.
  void attach_profiler(obs::Profiler* profiler) { profiler_ = profiler; }
  obs::Profiler* profiler() const { return profiler_; }

  /// Expose this CPU's stats through a metrics registry as probes under
  /// (node, component): context_switches, interrupts_taken, busy_ns,
  /// threads_alive. Component distinguishes CAB SPARCs ("cab.cpu") from
  /// host processors ("host.cpu").
  void register_metrics(obs::Registration& reg, int node, const std::string& component) const;

 private:
  friend class Thread;

  void kick();
  void dispatch();
  void irq_loop();
  void resume_fiber(sim::Fiber& f);
  void begin_busy(sim::SimTime ns);
  bool profiling() const;
  const std::string& busy_context() const;
  void thread_trampoline(Thread* t, const std::function<void()>& body);
  void trace_thread_in(Thread* t);
  void trace_thread_out();
  void trace_instant(const char* label);

  sim::Engine& engine_;
  std::string name_;
  sim::SimTime switch_cost_;

  std::vector<std::unique_ptr<Thread>> threads_;
  RunQueue run_queue_;
  Thread* current_ = nullptr;       // thread owning the CPU (may be mid-charge)
  Thread* switch_target_ = nullptr; // context switch in progress toward this

  std::unique_ptr<sim::Fiber> irq_fiber_;
  bool irq_active_ = false;         // interrupt context is live (running or mid-charge)
  std::deque<IrqHandler> irq_queue_;
  int irq_disable_depth_ = 0;

  sim::SimTime busy_until_ = 0;
  bool dispatch_scheduled_ = false;

  struct Timer {
    sim::Engine::EventId event = 0;
    sim::InplaceAction fn;  // moved out (and the entry erased) when it fires
  };
  std::uint64_t next_timer_ = 1;
  std::map<TimerId, Timer> timers_;

  std::uint64_t context_switches_ = 0;
  std::uint64_t interrupts_taken_ = 0;
  sim::SimTime busy_time_ = 0;

  obs::Tracer* tracer_ = nullptr;
  int trace_track_ = -1;
  bool thread_span_open_ = false;  // a thread-occupancy span is open on the track

  obs::Profiler* profiler_ = nullptr;
};

/// RAII interrupt mask.
class InterruptGuard {
 public:
  explicit InterruptGuard(Cpu& cpu) : cpu_(cpu) { cpu_.disable_interrupts(); }
  ~InterruptGuard() { cpu_.enable_interrupts(); }
  InterruptGuard(const InterruptGuard&) = delete;
  InterruptGuard& operator=(const InterruptGuard&) = delete;

 private:
  Cpu& cpu_;
};

}  // namespace nectar::core
