// ping: ICMP echo across the simulated Nectar, in the familiar format.
//
// Exercises the full TCP/IP receive path of §4.1 — datalink start-of-data
// upcall, IP header check at interrupt time, zero-copy Enqueue into the ICMP
// input mailbox, and the ICMP responder running entirely as a mailbox upcall
// (no thread is scheduled on the echoing node).
//
//   $ ./ping [count] [payload_bytes]

#include <cstdio>
#include <cstdlib>

#include "net/system.hpp"

using namespace nectar;

int main(int argc, char** argv) {
  int count = argc > 1 ? std::atoi(argv[1]) : 5;
  std::size_t payload = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 56;

  net::NectarSystem sys(2);
  std::printf("PING 10.0.0.1 from 10.0.0.0: %zu data bytes (simulated clock)\n", payload);

  double total_rtt = 0;
  int received = 0;
  sys.runtime(0).fork_app("ping", [&] {
    for (int i = 1; i <= count; ++i) {
      bool done = false;
      sys.stack(0).icmp.ping(
          proto::ip_of_node(1), 0x1234, static_cast<std::uint16_t>(i), payload,
          [&, i](std::uint16_t seq, sim::SimTime rtt) {
            std::printf("%zu bytes from 10.0.0.1: icmp_seq=%u time=%.1f us\n", payload, seq,
                        sim::to_usec(rtt));
            total_rtt += sim::to_usec(rtt);
            ++received;
            done = true;
            (void)i;
          });
      // Wait for the reply (or a 100 ms timeout) before the next probe.
      sim::SimTime deadline = sys.engine().now() + sim::msec(100);
      while (!done && sys.engine().now() < deadline) {
        sys.runtime(0).cpu().sleep_for(sim::usec(100));
      }
      if (!done) std::printf("icmp_seq=%d timed out\n", i);
      sys.runtime(0).cpu().sleep_for(sim::msec(1));
    }
  });
  sys.engine().run();

  std::printf("\n--- 10.0.0.1 ping statistics ---\n");
  std::printf("%d packets transmitted, %d received, %.0f%% packet loss\n", count, received,
              100.0 * (count - received) / count);
  if (received > 0) std::printf("round-trip avg = %.1f us\n", total_rtt / received);
  return received == count ? 0 : 1;
}
