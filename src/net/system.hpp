#pragma once

#include <memory>
#include <vector>

#include "net/topology.hpp"
#include "nproto/datagram.hpp"
#include "nproto/reqresp.hpp"
#include "nproto/rmp.hpp"
#include "proto/icmp.hpp"
#include "proto/ip.hpp"
#include "proto/tcp.hpp"
#include "proto/udp.hpp"

namespace nectar::net {

/// The full transport stack running on one CAB: the TCP/IP suite plus the
/// Nectar-specific datagram / reliable-message / request-response protocols
/// (paper §4) on top of the datalink.
struct NodeStack {
  proto::Ip ip;
  proto::Icmp icmp;
  proto::Udp udp;
  proto::Tcp tcp;
  nproto::DatagramProtocol datagram;
  nproto::Rmp rmp;
  nproto::ReqResp reqresp;

  NodeStack(Network& net, int node, const proto::TcpConfig& tcp_config = {},
            std::size_t mtu = proto::Ip::kDefaultMtu)
      : ip(net.datalink(node), proto::ip_of_node(node), mtu),
        icmp(ip),
        udp(ip),
        tcp(ip, tcp_config),
        datagram(net.datalink(node)),
        rmp(net.datalink(node)),
        reqresp(net.datalink(node)) {
    udp.set_icmp(&icmp);
  }
};

/// Convenience assembly for tests/benchmarks/examples: `n` CABs on a single
/// 16x16 HUB (the common Nectar installation), full stacks, routes
/// installed.
class NectarSystem {
 public:
  explicit NectarSystem(int num_cabs, bool with_vme = false,
                        const proto::TcpConfig& tcp_config = {},
                        std::size_t mtu = proto::Ip::kDefaultMtu);

  Network& net() { return net_; }
  sim::Engine& engine() { return net_.engine(); }
  NodeStack& stack(int node) { return *stacks_.at(static_cast<std::size_t>(node)); }
  core::CabRuntime& runtime(int node) { return net_.runtime(node); }
  obs::MetricsRegistry& metrics() { return net_.metrics(); }
  obs::Tracer& tracer() { return net_.tracer(); }
  obs::Profiler& profiler() { return net_.profiler(); }

 private:
  Network net_;
  std::vector<std::unique_ptr<NodeStack>> stacks_;
};

}  // namespace nectar::net
