// ping: ICMP echo across the simulated Nectar, in the familiar format.
//
// Exercises the full TCP/IP receive path of §4.1 — datalink start-of-data
// upcall, IP header check at interrupt time, zero-copy Enqueue into the ICMP
// input mailbox, and the ICMP responder running entirely as a mailbox upcall
// (no thread is scheduled on the echoing node).
//
//   $ ./ping [count] [payload_bytes] [--trace out.json]
//
// With --trace, a Chrome trace-event timeline of the run (CAB CPU scheduling,
// link transmissions, protocol marks) is written; open it in chrome://tracing
// or https://ui.perfetto.dev.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/system.hpp"
#include "obs/tracer.hpp"

using namespace nectar;

int main(int argc, char** argv) {
  std::string trace_path;
  int pos_args[2] = {5, 56};
  int npos = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (npos < 2) {
      pos_args[npos++] = std::atoi(argv[i]);
    }
  }
  int count = pos_args[0];
  std::size_t payload = static_cast<std::size_t>(pos_args[1]);

  net::NectarSystem sys(2);
  if (!trace_path.empty()) sys.tracer().set_enabled(true);
  std::printf("PING 10.0.0.1 from 10.0.0.0: %zu data bytes (simulated clock)\n", payload);

  double total_rtt = 0;
  int received = 0;
  sys.runtime(0).fork_app("ping", [&] {
    for (int i = 1; i <= count; ++i) {
      bool done = false;
      sys.stack(0).icmp.ping(
          proto::ip_of_node(1), 0x1234, static_cast<std::uint16_t>(i), payload,
          [&, i](std::uint16_t seq, sim::SimTime rtt) {
            std::printf("%zu bytes from 10.0.0.1: icmp_seq=%u time=%.1f us\n", payload, seq,
                        sim::to_usec(rtt));
            total_rtt += sim::to_usec(rtt);
            ++received;
            done = true;
            (void)i;
          });
      // Wait for the reply (or a 100 ms timeout) before the next probe.
      sim::SimTime deadline = sys.engine().now() + sim::msec(100);
      while (!done && sys.engine().now() < deadline) {
        sys.runtime(0).cpu().sleep_for(sim::usec(100));
      }
      if (!done) std::printf("icmp_seq=%d timed out\n", i);
      sys.runtime(0).cpu().sleep_for(sim::msec(1));
    }
  });
  sys.engine().run();

  std::printf("\n--- 10.0.0.1 ping statistics ---\n");
  std::printf("%d packets transmitted, %d received, %.0f%% packet loss\n", count, received,
              100.0 * (count - received) / count);
  if (received > 0) std::printf("round-trip avg = %.1f us\n", total_rtt / received);
  if (!trace_path.empty()) {
    if (!sys.tracer().write_chrome(trace_path)) {
      std::fprintf(stderr, "error: cannot write trace to %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu events)\n", trace_path.c_str(), sys.tracer().events().size());
  }
  return received == count ? 0 : 1;
}
