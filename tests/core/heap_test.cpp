#include "core/heap.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "hw/memory.hpp"
#include "sim/random.hpp"

namespace nectar::core {
namespace {

TEST(Heap, AllocReturnsDataRegionAddresses) {
  hw::CabMemory mem;
  BufferHeap heap(mem);
  hw::CabAddr a = heap.alloc(100);
  ASSERT_NE(a, 0u);
  EXPECT_TRUE(hw::CabMemory::in_data_region(a, 100));
  EXPECT_EQ(heap.size_of(a), 104u);  // rounded to 8
}

TEST(Heap, DistinctAllocationsDoNotOverlap) {
  hw::CabMemory mem;
  BufferHeap heap(mem);
  hw::CabAddr a = heap.alloc(64);
  hw::CabAddr b = heap.alloc(64);
  ASSERT_NE(a, 0u);
  ASSERT_NE(b, 0u);
  EXPECT_TRUE(b >= a + 64 || a >= b + 64);
}

TEST(Heap, FreeMakesSpaceReusable) {
  hw::CabMemory mem;
  BufferHeap heap(mem);
  std::size_t before = heap.bytes_free();
  hw::CabAddr a = heap.alloc(1000);
  EXPECT_LT(heap.bytes_free(), before);
  heap.free(a);
  EXPECT_EQ(heap.bytes_free(), before);
}

TEST(Heap, ExhaustionReturnsZeroNotCrash) {
  hw::CabMemory mem;
  BufferHeap heap(mem, hw::kDataBase, 4096);
  hw::CabAddr a = heap.alloc(4000);
  ASSERT_NE(a, 0u);
  EXPECT_EQ(heap.alloc(200), 0u);
  EXPECT_EQ(heap.failed_allocs(), 1u);
  heap.free(a);
  EXPECT_NE(heap.alloc(200), 0u);
}

TEST(Heap, CoalescingPreventsFragmentationDeath) {
  hw::CabMemory mem;
  BufferHeap heap(mem, hw::kDataBase, 64 * 1024);
  std::vector<hw::CabAddr> blocks;
  for (int i = 0; i < 64; ++i) blocks.push_back(heap.alloc(1024 - 16));
  for (hw::CabAddr b : blocks) heap.free(b);
  // After freeing everything, one large allocation must succeed.
  EXPECT_EQ(heap.free_blocks(), 1u);
  EXPECT_NE(heap.alloc(60 * 1024), 0u);
}

TEST(Heap, DoubleFreeThrows) {
  hw::CabMemory mem;
  BufferHeap heap(mem);
  hw::CabAddr a = heap.alloc(10);
  heap.free(a);
  EXPECT_THROW(heap.free(a), std::logic_error);
}

TEST(Heap, FreeUnknownAddressThrows) {
  hw::CabMemory mem;
  BufferHeap heap(mem);
  EXPECT_THROW(heap.free(hw::kDataBase + 12345), std::logic_error);
}

TEST(Heap, MustLiveInDataRegion) {
  hw::CabMemory mem;
  EXPECT_THROW(BufferHeap(mem, hw::kProgramRamBase, 4096), std::invalid_argument);
}

TEST(Heap, RandomizedAllocFreeStress) {
  // Property: accounting stays consistent and blocks never overlap under a
  // random alloc/free workload.
  hw::CabMemory mem;
  BufferHeap heap(mem, hw::kDataBase, 256 * 1024);
  sim::Random rng(2024);
  std::vector<std::pair<hw::CabAddr, std::size_t>> live;
  for (int step = 0; step < 3000; ++step) {
    if (live.empty() || rng.chance(0.55)) {
      std::size_t len = 8 + rng.next_below(4000);
      hw::CabAddr a = heap.alloc(len);
      if (a != 0) {
        std::size_t got = heap.size_of(a);
        for (auto& [addr, sz] : live) {
          ASSERT_TRUE(a + got <= addr || addr + sz <= a)
              << "overlap at step " << step;
        }
        live.emplace_back(a, got);
      }
    } else {
      std::size_t idx = rng.next_below(live.size());
      heap.free(live[idx].first);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
  }
  std::size_t in_use = 0;
  for (auto& [addr, sz] : live) in_use += sz;
  EXPECT_EQ(heap.bytes_in_use(), in_use);
  for (auto& [addr, sz] : live) heap.free(addr);
  EXPECT_EQ(heap.bytes_free(), heap.capacity());
  EXPECT_EQ(heap.free_blocks(), 1u);
}

}  // namespace
}  // namespace nectar::core
