#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/engine.hpp"

namespace nectar::sim {
namespace {

/// Deterministic LCG so churn patterns are identical run to run.
std::uint32_t next_rand(std::uint32_t& s) {
  s = s * 1664525u + 1013904223u;
  return s;
}

TEST(EnginePool, CancelChurnStressFiresExactlySurvivors) {
  Engine e;
  std::uint32_t seed = 12345;
  std::vector<int> fired;
  std::vector<int> expected;
  int label = 0;
  // Many rounds of: schedule a batch, cancel a pseudo-random half of it.
  // Everything that survives must fire, in (time, insertion) order, and
  // nothing that was cancelled may fire.
  for (int round = 0; round < 50; ++round) {
    std::vector<Engine::EventId> ids;
    std::vector<int> labels;
    for (int i = 0; i < 40; ++i) {
      SimTime t = e.now() + 1 + (next_rand(seed) % 100);
      int l = label++;
      ids.push_back(e.schedule_at(t, [&fired, l] { fired.push_back(l); }));
      labels.push_back(l);
    }
    std::vector<std::pair<SimTime, int>> survivors;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (next_rand(seed) % 2 == 0) {
        EXPECT_TRUE(e.cancel(ids[i]));
        EXPECT_FALSE(e.cancel(ids[i]));  // second cancel is a stale handle
      } else {
        expected.push_back(labels[i]);
      }
    }
    e.run();
  }
  // Survivors fire; order within a round follows (time, insertion). Sorting
  // per round is implicitly checked by comparing sets per round boundary:
  // every survivor fired exactly once.
  std::vector<int> fired_sorted = fired;
  std::sort(fired_sorted.begin(), fired_sorted.end());
  std::vector<int> expected_sorted = expected;
  std::sort(expected_sorted.begin(), expected_sorted.end());
  EXPECT_EQ(fired_sorted, expected_sorted);
  EXPECT_TRUE(e.empty());
}

TEST(EnginePool, SlabBoundedByPeakConcurrencyAndRecycled) {
  Engine e;
  // 10 waves of 100 concurrent events: the slab should grow to roughly the
  // peak concurrency (100), not the total event count (1000).
  for (int wave = 0; wave < 10; ++wave) {
    for (int i = 0; i < 100; ++i) {
      e.schedule_at(e.now() + 1 + i, [] {});
    }
    e.run();
  }
  EXPECT_LE(e.pool_slots(), 128u);
  EXPECT_GE(e.pool_reuses(), 800u);  // later waves ran entirely on recycled slots
  EXPECT_EQ(e.pool_free(), e.pool_slots());  // all slots back on the free list
}

TEST(EnginePool, RecycledSlotRejectsStaleHandle) {
  Engine e;
  int fired = 0;
  Engine::EventId a = e.schedule_at(10, [&] { ++fired; });
  ASSERT_TRUE(e.cancel(a));
  // B reuses A's slot (single free slot); A's handle must not cancel B.
  Engine::EventId b = e.schedule_at(20, [&] { ++fired; });
  EXPECT_FALSE(e.cancel(a));
  e.run();
  EXPECT_EQ(fired, 1);
  // After firing, B's handle is stale too.
  EXPECT_FALSE(e.cancel(b));
}

TEST(EnginePool, ChurnIsInvisibleToSurvivingEvents) {
  // The same payload scenario, with and without heavy interleaved
  // schedule+cancel churn, must fire the same events at the same times.
  auto run_scenario = [](bool churn) {
    Engine e;
    std::vector<std::pair<SimTime, int>> fired;
    for (int i = 0; i < 20; ++i) {
      e.schedule_at(10 * (i + 1), [&fired, i, &e] { fired.emplace_back(e.now(), i); });
      if (churn) {
        std::vector<Engine::EventId> junk;
        for (int j = 0; j < 7; ++j) junk.push_back(e.schedule_at(1000000 + j, [] {}));
        for (Engine::EventId id : junk) e.cancel(id);
      }
    }
    e.run();
    return std::make_pair(fired, e.now());
  };
  auto plain = run_scenario(false);
  auto churned = run_scenario(true);
  EXPECT_EQ(plain.first, churned.first);
  EXPECT_EQ(plain.second, churned.second);
}

TEST(EnginePool, StatsDistinguishInlineFromHeapActions) {
  Engine e;
  std::uint64_t before = e.heap_actions();
  int sink = 0;
  e.schedule_at(1, [&sink] { ++sink; });  // one pointer capture: stays inline
  EXPECT_EQ(e.heap_actions(), before);
  std::array<char, 128> big{};  // exceeds the inline capture budget
  e.schedule_at(2, [big, &sink] { sink += big[0]; });
  EXPECT_EQ(e.heap_actions(), before + 1);
  e.run();
  EXPECT_EQ(sink, 1);
}

}  // namespace
}  // namespace nectar::sim
