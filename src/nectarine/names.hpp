#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "nproto/reqresp.hpp"

namespace nectar::nectarine {

/// Distributed name service: maps service names to network-wide mailbox
/// addresses (§3.3: "Network-wide addressing of mailboxes enables host
/// processes or CAB threads to send messages to remote mailboxes ... In this
/// way, remote services can be invoked from anywhere in the Nectar
/// network"). The paper passes addresses around by hand; real deployments
/// (and the Mach network-IPC server sketched in §5.2) need a rendezvous
/// point — one CAB runs the registry, everyone else registers and looks up
/// through the request-response protocol.
class NameServer {
 public:
  static constexpr std::uint32_t kOpRegister = 1;  // (name, node, index)
  static constexpr std::uint32_t kOpLookup = 2;    // (name) -> node, index
  static constexpr std::uint32_t kOpUnregister = 3;

  static constexpr std::uint32_t kOk = 0;
  static constexpr std::uint32_t kNotFound = 1;
  static constexpr std::uint32_t kConflict = 2;
  static constexpr std::uint32_t kBad = 3;

  NameServer(core::CabRuntime& rt, nproto::ReqResp& reqresp);

  NameServer(const NameServer&) = delete;
  NameServer& operator=(const NameServer&) = delete;

  core::MailboxAddr address() const { return service_.address(); }
  std::size_t entries() const { return names_.size(); }

 private:
  void server_loop();

  core::CabRuntime& rt_;
  nproto::ReqResp& reqresp_;
  core::Mailbox& service_;
  std::map<std::string, core::MailboxAddr> names_;
};

/// CAB-side client of the name service.
class NameClient {
 public:
  NameClient(core::CabRuntime& rt, nproto::ReqResp& reqresp, core::MailboxAddr server);

  /// Register `addr` under `name`. Fails with kConflict if taken by a
  /// different address (re-registering the same address is idempotent).
  std::uint32_t register_name(const std::string& name, core::MailboxAddr addr);

  /// Look `name` up; returns kOk and fills `out` when found.
  std::uint32_t lookup(const std::string& name, core::MailboxAddr* out);

  /// Blocking lookup: retries until the name appears (services race their
  /// clients at startup; this is the rendezvous).
  core::MailboxAddr wait_for(const std::string& name,
                             sim::SimTime poll_interval = sim::usec(500));

  std::uint32_t unregister_name(const std::string& name);

 private:
  std::uint32_t call(std::uint32_t op, const std::string& name, core::MailboxAddr addr,
                     core::MailboxAddr* out);

  core::CabRuntime& rt_;
  nproto::ReqResp& reqresp_;
  core::MailboxAddr server_;
  core::Mailbox& scratch_;
};

}  // namespace nectar::nectarine
