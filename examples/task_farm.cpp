// task_farm: the paper's §5.3 "application-level communication engine".
//
// "Common paradigms for parallel processing, such as divide-and-conquer and
// task-queue models, have been implemented on Nectar, using one or more CABs
// to divide the labor and gather the results" — the pattern behind Noodles,
// COSMOS, and Paradigm in the paper.
//
// A host process farms a numeric integration out to worker tasks started *on
// the CABs* through Nectarine's remote task creation; each worker computes
// (charging its CAB's CPU) and ships its partial sum home via the reliable
// message protocol. The host aggregates and reports speedup vs one worker.
//
//   $ ./task_farm [workers (1..15)]

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "host/node.hpp"

using namespace nectar;

namespace {

/// The "science": integrate f(x) = 4/(1+x^2) over [0,1) (= pi) by midpoint
/// rule over a slice of the interval, charging simulated CPU per step.
double integrate_slice(core::Cpu& cpu, int slice, int slices, int steps_total) {
  int lo = slice * steps_total / slices;
  int hi = (slice + 1) * steps_total / slices;
  double sum = 0;
  for (int i = lo; i < hi; ++i) {
    double x = (i + 0.5) / steps_total;
    sum += 4.0 / (1.0 + x * x) / steps_total;
    if ((i & 1023) == 0) cpu.charge(sim::usec(400));  // ~0.4 us of work per step
  }
  return sum;
}

constexpr int kSteps = 64 * 1024;

sim::SimTime run_farm(int workers, double* result_out) {
  net::NectarSystem sys(workers + 1, /*with_vme=*/true);
  host::HostNode boss(sys, 0);
  std::vector<std::unique_ptr<host::HostNode>> nodes;
  for (int w = 1; w <= workers; ++w) nodes.push_back(std::make_unique<host::HostNode>(sys, w));

  // Results flow into one mailbox on the boss's CAB.
  auto results = boss.nin.create_mailbox("results");
  core::MailboxAddr results_addr = results.mb->address();

  // Register the worker task on every worker CAB. The argument packs the
  // slice index; each worker sends back an 8-byte double via RMP.
  for (int w = 1; w <= workers; ++w) {
    auto& stack = sys.stack(w);
    auto& rt = sys.runtime(w);
    nodes[static_cast<std::size_t>(w - 1)]->services.register_task(
        "integrate", [&rt, &stack, results_addr, workers](std::uint32_t slice) {
          double part = integrate_slice(rt.cpu(), static_cast<int>(slice), workers, kSteps);
          core::Mailbox& scratch = rt.create_mailbox("part");
          core::Message m = scratch.begin_put(8);
          std::uint8_t bytes[8];
          std::memcpy(bytes, &part, 8);
          rt.board().memory().write(m.data, bytes);
          stack.rmp.send(results_addr, m);
        });
  }

  sim::SimTime elapsed = 0;
  boss.host.run_process("boss", [&] {
    sim::SimTime t0 = sys.engine().now();
    for (int w = 1; w <= workers; ++w) {
      bool ok = boss.nin.start_remote_task(
          boss.services, nodes[static_cast<std::size_t>(w - 1)]->services.service_address(),
          "integrate", static_cast<std::uint32_t>(w - 1));
      if (!ok) std::printf("failed to start worker %d\n", w);
    }
    double total = 0;
    for (int w = 0; w < workers; ++w) {
      core::Message m = boss.nin.begin_get_block(results);
      std::uint8_t bytes[8];
      boss.nin.read_message(m, bytes);
      double part;
      std::memcpy(&part, bytes, 8);
      total += part;
      boss.nin.end_get(results, m);
    }
    elapsed = sys.engine().now() - t0;
    *result_out = total;
  });
  sys.engine().run();
  return elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  int max_workers = argc > 1 ? std::atoi(argv[1]) : 8;
  if (max_workers < 1) max_workers = 1;
  if (max_workers > 15) max_workers = 15;

  std::printf("task farm: integrating pi over %d steps on CAB workers (§5.3)\n\n", kSteps);
  std::printf("%8s %14s %10s %12s\n", "workers", "elapsed (ms)", "speedup", "result");

  double base = 0;
  for (int w = 1; w <= max_workers; w *= 2) {
    double result = 0;
    sim::SimTime t = run_farm(w, &result);
    double ms = sim::to_msec(t);
    if (w == 1) base = ms;
    std::printf("%8d %14.2f %9.2fx %12.6f\n", w, ms, base / ms, result);
  }
  std::printf("\n(speedup saturates as the per-worker compute shrinks toward the\n"
              "fixed cost of task start + result return — Amdahl on a simulated LAN)\n");
  return 0;
}
