#pragma once

// Collective group membership and topology helpers. A group is a fixed,
// ordered member list (rank = index) every member installs identically at
// setup time, plus an epoch: after a member failure the group is declared
// failed (loudly, with the culprit named) and can be re-armed under a new
// epoch — messages from the old epoch are dropped on arrival, so a crashed
// epoch can never corrupt its successor.

#include <cstdint>
#include <string>
#include <vector>

#include "coll/wire.hpp"
#include "hw/mcast.hpp"
#include "sim/time.hpp"

namespace nectar::coll {

/// Barrier algorithm selector.
enum class Algorithm : std::uint8_t {
  Tree,           ///< fanout-ary arrive/release tree rooted at root_rank
  Dissemination,  ///< butterfly: ceil(log2 n) rounds of pairwise notifications
};
Algorithm parse_algorithm(const std::string& name);  // "tree" | "dissemination"
const char* algorithm_name(Algorithm a);

struct GroupSpec {
  std::uint16_t id = 0;
  std::uint16_t epoch = 1;
  /// CAB node ids; a member's rank is its index here. Identical on every
  /// member (ranks are part of the protocol, not a local convention).
  std::vector<int> members;
  int root_rank = 0;
  Algorithm algorithm = Algorithm::Tree;
  int fanout = 2;  ///< tree arity (arrive/reduce combining width)
  /// Give up and fail the group (loud, attributable error) after this long
  /// in one collective op.
  sim::SimTime timeout = 50'000'000;  // 50 ms
  /// Retransmit cadence while an op is outstanding (loss recovery).
  sim::SimTime retransmit = 2'000'000;  // 2 ms
  /// Distribution tree for root multicasts (Release / ReduceResult /
  /// BcastData), from net::Network::mcast_ref(root node, members). When
  /// invalid the engine falls back to unicasting the fan-out — correct but
  /// without the HUB replication offload.
  hw::McastRef mcast;

  int size() const { return static_cast<int>(members.size()); }
  int rank_of(int node) const {
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (members[i] == node) return static_cast<int>(i);
    }
    return -1;
  }

  // --- tree shape (virtual ranks rotate the tree onto root_rank) ----------

  int vrank(int rank) const { return (rank - root_rank + size()) % size(); }
  int actual(int v) const { return (v + root_rank) % size(); }
  /// Parent rank in the arrive/reduce tree, or -1 for the root.
  int parent_of(int rank) const {
    int v = vrank(rank);
    return v == 0 ? -1 : actual((v - 1) / fanout);
  }
  /// Child ranks in the arrive/reduce tree (at most `fanout`).
  std::vector<int> children_of(int rank) const {
    std::vector<int> out;
    int v = vrank(rank);
    for (int c = fanout * v + 1; c <= fanout * v + fanout && c < size(); ++c) {
      out.push_back(actual(c));
    }
    return out;
  }

  // --- dissemination shape -------------------------------------------------

  /// Rounds of the dissemination barrier: ceil(log2(size)).
  int dissem_rounds() const {
    int r = 0;
    for (int span = 1; span < size(); span <<= 1) ++r;
    return r;
  }
  int dissem_to(int rank, int round) const { return (rank + (1 << round)) % size(); }
  int dissem_from(int rank, int round) const {
    return (rank - (1 << round) % size() + size()) % size();
  }
};

}  // namespace nectar::coll
