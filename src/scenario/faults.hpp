#pragma once

// Fault scheduler: arms time-targeted fault events — link loss/corruption
// windows, hard link-down windows, scripted drop bursts, HUB output-port
// blackouts, VME bus stalls, CAB crash-and-reboot — against named network
// elements. All randomness (window jitter, the links' drop/corrupt streams)
// derives from one master seed, so a fault schedule is exactly reproducible
// and two master seeds give decorrelated fault timings.
//
// Element naming grammar (see docs/SCENARIOS.md):
//   node<i>.link   the CAB's outbound fiber      (link_* kinds)
//   node<i>.vme    the node's VME backplane      (vme_stall)
//   node<i>.cab    the whole board               (cab_crash)
//   hub<h>.port<p> one crossbar output port      (hub_blackout)

#include <cstdint>
#include <string>
#include <vector>

#include "net/topology.hpp"
#include "sim/random.hpp"

namespace nectar::scenario {

enum class FaultKind {
  LinkDrop,      ///< random frame loss at `rate` for `duration`
  LinkCorrupt,   ///< random frame corruption at `rate` for `duration`
  LinkDown,      ///< hard down: every frame lost for `duration`
  LinkDropBurst, ///< scripted: exactly the next `count` frames are dropped
  HubBlackout,   ///< crossbar output port discards everything for `duration`
  VmeStall,      ///< the backplane is held by a rogue board for `duration`
  CabCrash,      ///< board off the network (out-link down + feed port dark),
                 ///< rebooted after `duration`
};

struct FaultSpec {
  FaultKind kind = FaultKind::LinkDrop;
  std::string target;            ///< element name (grammar above)
  sim::SimTime at = 0;           ///< nominal injection time
  sim::SimTime duration = 0;     ///< window length (0: until end of run)
  sim::SimTime jitter = 0;       ///< uniform [0, jitter) added to `at`, from the master seed
  double rate = 1.0;             ///< LinkDrop / LinkCorrupt probability
  std::uint64_t count = 1;       ///< LinkDropBurst frames

  static FaultKind parse_kind(const std::string& name);
  std::string describe() const;  ///< "link_drop(node3.link, rate=0.5)" for reports/logs
};

/// One injected fault's lifecycle, for loss attribution in reports.
struct FaultRecord {
  FaultSpec spec;
  sim::SimTime applied_at = 0;   ///< at + derived jitter
  sim::SimTime cleared_at = -1;  ///< -1 while the window is open
  std::uint64_t drops_before = 0;
  std::uint64_t attributed_drops = 0;  ///< target element's drop delta over the window
};

class FaultScheduler {
 public:
  FaultScheduler(net::Network& net, std::uint64_t master_seed);

  FaultScheduler(const FaultScheduler&) = delete;
  FaultScheduler& operator=(const FaultScheduler&) = delete;

  /// Validate `spec` (target must resolve) and arm its events on the
  /// engine. Returns the fault's index into records().
  std::size_t schedule(const FaultSpec& spec);

  /// Close still-open windows' attribution at end of run (does not clear
  /// the fault). Call once after the simulation stops.
  void finalize();

  const std::vector<FaultRecord>& records() const { return records_; }
  std::size_t faults_injected() const { return records_.size(); }
  std::uint64_t total_attributed_drops() const;

  /// Network-wide frames lost so far: link drops (random + faulted) plus
  /// HUB blackout discards and route errors.
  std::uint64_t network_drops() const;

 private:
  struct Target {
    hw::FiberLink* link = nullptr;   // node<i>.link and cab crash out-link
    hw::VmeBus* vme = nullptr;
    hw::Hub* hub = nullptr;
    int port = -1;                   // hub blackout / crash feed port
    /// The shard engine that owns the element. Apply/clear events are armed
    /// here so a fault mutates its target from the thread that simulates it.
    sim::Engine* engine = nullptr;
  };

  Target resolve(const FaultSpec& spec) const;
  /// Frames lost so far at fault `idx`'s target element (link drops and/or
  /// HUB blackout discards) — the basis for attribution deltas.
  std::uint64_t target_drops(std::size_t idx) const;
  void apply(std::size_t idx);
  void clear(std::size_t idx);

  net::Network& net_;
  std::uint64_t master_seed_;
  std::vector<FaultRecord> records_;
  std::vector<Target> targets_;
};

}  // namespace nectar::scenario
