// Packet capture: pcap file structure, RawIp datalink stripping, and a
// golden-file test — a deterministic 3-packet UDP exchange must produce a
// byte-exact capture (committed as golden_udp3.pcap; regenerate with
// NECTAR_REGEN_GOLDEN=1 after an intentional format or cost-model change).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "net/system.hpp"
#include "obs/pcap.hpp"

namespace nectar::obs {
namespace {

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(f),
                                   std::istreambuf_iterator<char>());
}

std::uint32_t u32le(const std::vector<std::uint8_t>& b, std::size_t off) {
  return static_cast<std::uint32_t>(b[off]) | static_cast<std::uint32_t>(b[off + 1]) << 8 |
         static_cast<std::uint32_t>(b[off + 2]) << 16 |
         static_cast<std::uint32_t>(b[off + 3]) << 24;
}

std::uint16_t u16le(const std::vector<std::uint8_t>& b, std::size_t off) {
  return static_cast<std::uint16_t>(b[off] | b[off + 1] << 8);
}

/// A temp file in the test's working directory, removed on destruction.
struct TempFile {
  explicit TempFile(std::string p) : path(std::move(p)) {}
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

TEST(PcapTest, GlobalHeaderRawIp) {
  TempFile tmp("pcap_header_rawip.pcap");
  { PcapWriter w(tmp.path, PcapWriter::Format::RawIp); ASSERT_TRUE(w.ok()); }
  std::vector<std::uint8_t> b = read_file(tmp.path);
  ASSERT_EQ(b.size(), 24u);  // global header only
  EXPECT_EQ(u32le(b, 0), 0xA1B23C4Du);  // nanosecond magic
  EXPECT_EQ(u16le(b, 4), 2u);           // version 2.4
  EXPECT_EQ(u16le(b, 6), 4u);
  EXPECT_EQ(u32le(b, 16), 65535u);  // snaplen
  EXPECT_EQ(u32le(b, 20), 101u);    // LINKTYPE_RAW
}

TEST(PcapTest, GlobalHeaderDatalink) {
  TempFile tmp("pcap_header_dl.pcap");
  { PcapWriter w(tmp.path, PcapWriter::Format::DatalinkFrame); ASSERT_TRUE(w.ok()); }
  std::vector<std::uint8_t> b = read_file(tmp.path);
  ASSERT_EQ(b.size(), 24u);
  EXPECT_EQ(u32le(b, 20), 147u);  // LINKTYPE_USER0
}

TEST(PcapTest, RawIpStripsDatalinkHeaderAndStampsSimTime) {
  TempFile tmp("pcap_strip.pcap");
  // Datalink frame: [type=1 (IP), src=3, len=0x0004 BE] + 4 payload bytes.
  const std::vector<std::uint8_t> f = {1, 3, 0, 4, 0xDE, 0xAD, 0xBE, 0xEF};
  {
    PcapWriter w(tmp.path, PcapWriter::Format::RawIp);
    w.frame(3 * sim::kSecond + 42, f);
    EXPECT_EQ(w.packets_written(), 1u);
    EXPECT_EQ(w.frames_skipped(), 0u);
  }
  std::vector<std::uint8_t> b = read_file(tmp.path);
  ASSERT_EQ(b.size(), 24u + 16u + 4u);  // header + record header + stripped payload
  EXPECT_EQ(u32le(b, 24), 3u);   // ts seconds
  EXPECT_EQ(u32le(b, 28), 42u);  // ts nanoseconds (ns-resolution magic)
  EXPECT_EQ(u32le(b, 32), 4u);   // incl_len: datalink header stripped
  EXPECT_EQ(u32le(b, 36), 4u);   // orig_len
  EXPECT_EQ(b[40], 0xDE);
  EXPECT_EQ(b[43], 0xEF);
}

TEST(PcapTest, RawIpSkipsNonIpAndRunts) {
  TempFile tmp("pcap_skip.pcap");
  PcapWriter w(tmp.path, PcapWriter::Format::RawIp);
  const std::vector<std::uint8_t> rmp = {2, 0, 0, 1, 0xAA};  // type 2: not IP
  const std::vector<std::uint8_t> runt = {1, 0};             // shorter than the header
  w.frame(0, rmp);
  w.frame(0, runt);
  EXPECT_EQ(w.packets_written(), 0u);
  EXPECT_EQ(w.frames_skipped(), 2u);
}

TEST(PcapTest, DatalinkFormatRecordsVerbatim) {
  TempFile tmp("pcap_verbatim.pcap");
  const std::vector<std::uint8_t> f = {2, 7, 0, 1, 0x55};  // non-IP: still recorded
  {
    PcapWriter w(tmp.path, PcapWriter::Format::DatalinkFrame);
    w.frame(5, f);
    EXPECT_EQ(w.packets_written(), 1u);
  }
  std::vector<std::uint8_t> b = read_file(tmp.path);
  ASSERT_EQ(b.size(), 24u + 16u + f.size());
  EXPECT_EQ(u32le(b, 32), f.size());
  EXPECT_EQ(b[40], 2u);
}

// --- golden capture -----------------------------------------------------------

/// Three UDP datagrams node0 -> node1 (64, 128, 256 bytes, paced 200 us
/// apart), captured RawIp on node0's transmit link. UDP sends no ACKs, so
/// the capture holds exactly the three IP packets.
void run_golden_exchange(const std::string& pcap_path, std::uint64_t* written,
                         std::uint64_t* skipped) {
  net::NectarSystem sys(2);
  PcapWriter w(pcap_path, PcapWriter::Format::RawIp);
  ASSERT_TRUE(w.ok());
  sys.net().cab(0).out_link().attach_pcap(&w);

  core::Mailbox& rx = sys.runtime(1).create_mailbox("sink");
  sys.stack(1).udp.bind(7, &rx);
  sys.runtime(1).fork_system("server", [&] {
    for (;;) {
      core::Message m = rx.begin_get();
      rx.end_get(m);
    }
  });
  sys.runtime(0).fork_app("client", [&] {
    core::Mailbox& scratch = sys.runtime(0).create_mailbox("scratch");
    for (std::uint32_t size : {64u, 128u, 256u}) {
      core::Message m = scratch.begin_put(size);
      sys.stack(0).udp.send(9000, proto::ip_of_node(1), 7, m);
      sys.runtime(0).cpu().sleep_for(sim::usec(200));
    }
  });
  sys.engine().run();
  *written = w.packets_written();
  *skipped = w.frames_skipped();
}

TEST(PcapTest, GoldenUdpExchange) {
  const std::string golden = std::string(NECTAR_TEST_SRCDIR) + "/obs/golden_udp3.pcap";
  TempFile tmp("pcap_golden_run.pcap");
  std::uint64_t written = 0, skipped = 0;
  run_golden_exchange(tmp.path, &written, &skipped);
  EXPECT_EQ(written, 3u);

  std::vector<std::uint8_t> got = read_file(tmp.path);
  ASSERT_GT(got.size(), 24u + 3 * 16u);

  if (std::getenv("NECTAR_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << golden;
    out.write(reinterpret_cast<const char*>(got.data()),
              static_cast<std::streamsize>(got.size()));
    GTEST_SKIP() << "regenerated " << golden;
  }

  std::vector<std::uint8_t> want = read_file(golden);
  ASSERT_FALSE(want.empty()) << "missing golden file " << golden
                             << " — run with NECTAR_REGEN_GOLDEN=1 to create it";
  // Byte-exact: same simulated run, same capture bytes, everywhere.
  EXPECT_EQ(got, want);
}

TEST(PcapTest, GoldenExchangeIsDeterministic) {
  TempFile a("pcap_det_a.pcap");
  TempFile b("pcap_det_b.pcap");
  std::uint64_t wa = 0, sa = 0, wb = 0, sb = 0;
  run_golden_exchange(a.path, &wa, &sa);
  run_golden_exchange(b.path, &wb, &sb);
  EXPECT_EQ(wa, wb);
  EXPECT_EQ(read_file(a.path), read_file(b.path));
}

}  // namespace
}  // namespace nectar::obs
