#include <gtest/gtest.h>

#include "route/manager.hpp"
#include "scenario/engine.hpp"

namespace nectar::route {
namespace {

// Failover end-to-end on a 2-leaf/2-spine fat tree: kill the spine uplink a
// live flow is routed over, and require the control plane to move the pair
// to the surviving spine within the configured detection window — without
// the transport noticing more than a latency blip.
//
// Worst-case detection+switch window for the config below:
//   (dead_after - 1) * probe_interval + probe_timeout = 2*4ms + 2ms = 10ms.
constexpr char kBase[] = R"(
[scenario]
name = failover
duration = 400ms

[topology]
kind = fat_tree
nodes = 8
hub_ports = 6
spines = 2

[routing]
enabled = true
paths = 2
probe_interval = 4ms
probe_timeout = 2ms
dead_after = 3
recover_after = 2
)";

scenario::ScenarioSpec spec_with(const std::string& extra, std::uint64_t seed) {
  scenario::ScenarioSpec spec =
      scenario::ScenarioSpec::from_config(scenario::Config::parse_string(kBase + extra));
  spec.seed = seed;
  return spec;
}

TEST(FailoverTest, LinkDownMidTcpFlowReroutesWithoutReset) {
  scenario::Scenario sc(spec_with(R"(
[workload]
name = tcp
proto = tcp
mode = closed
users = 2
think = 1ms
size = 512
stride = 4
)",
                                  5));
  ASSERT_NE(sc.routing(), nullptr);

  // Blackout the exact uplink pair (0 -> 4)'s installed path crosses (route
  // byte 0 is leaf0's output port), mid-flow and permanently.
  int before = sc.routing()->installed_path(0, 4);
  ASSERT_GE(before, 0);
  int dead_port = sc.routing()->paths().path(0, 4, before)[0];
  int other_port = dead_port == 4 ? 5 : 4;
  sc.net().engine().schedule_at(sim::msec(100), [&sc, dead_port] {
    sc.net().hub(0).set_port_blackout(dead_port, true);
  });
  sc.run();

  // The pair failed over to the surviving spine...
  int after = sc.routing()->installed_path(0, 4);
  EXPECT_NE(after, before) << "route to node 4 was never switched";
  EXPECT_NE(sc.routing()->paths().path(0, 4, after)[0], dead_port);
  EXPECT_EQ(sc.routing()->path_state(0, 4, before), PathState::Dead);
  EXPECT_GE(sc.routing()->failovers(), 1u);
  // ...within the configured detection window (generous margin for CPU
  // charges between the miss and the switch).
  EXPECT_GT(sc.routing()->reroute_latency().count(), 0u);
  EXPECT_LE(sc.routing()->reroute_latency().max(), sim::msec(15));

  // The TCP flows survived: traffic kept flowing and no connection errored.
  const auto& wl = *sc.workloads().at(0);
  EXPECT_EQ(wl.errors(), 0u) << "a connection reset during failover";
  EXPECT_GT(wl.delivered(), 0u);

  // Satellite: the loss is attributed to the blacked-out output port, and
  // only to it.
  EXPECT_GT(sc.net().hub(0).output_blackout_drops(dead_port), 0u);
  EXPECT_EQ(sc.net().hub(0).output_blackout_drops(other_port), 0u);
  EXPECT_EQ(sc.net().hub(0).blackout_drops(), sc.net().hub(0).output_blackout_drops(dead_port));
}

TEST(FailoverTest, HubBlackoutRecoversWithinProbeWindow) {
  // INI-scripted transient blackout of leaf0's spine-0 uplink: 100ms..160ms.
  // Paths over it must go Dead during the window and return to Up (with the
  // preferred route reverted) before the run ends.
  scenario::Scenario sc(spec_with(R"(
[workload]
name = udp
proto = udp
mode = open
users = 8
rate = 400
size = 256
stride = 4

[fault]
kind = hub_blackout
target = hub0.port4
at = 100ms
duration = 60ms
)",
                                  5));
  ASSERT_NE(sc.routing(), nullptr);
  sc.run();

  // Some cross-leaf pair is routed over spine 0 in at least one direction
  // (32 ordered pairs, seeded ECMP spread), so the fault must have bitten
  // and healed: dead paths detected, failed over, recovered, reverted.
  EXPECT_GE(sc.routing()->failovers(), 1u);
  EXPECT_GE(sc.routing()->reverts(), 1u);
  EXPECT_GT(sc.routing()->probe_timeouts(), 0u);
  // Every path is healthy again at the end of the run.
  for (int s = 0; s < sc.nodes(); ++s) {
    for (int d = 0; d < sc.nodes(); ++d) {
      if (s == d) continue;
      for (int p = 0; p < sc.routing()->paths().path_count(s, d); ++p) {
        EXPECT_EQ(sc.routing()->path_state(s, d, p), PathState::Up)
            << "path " << p << " of (" << s << "," << d << ") never recovered";
      }
    }
  }
  // Loss happened at the faulted port and is attributed there.
  EXPECT_GT(sc.net().hub(0).output_blackout_drops(4), 0u);
  EXPECT_EQ(sc.faults().records().at(0).attributed_drops,
            sc.net().hub(0).output_blackout_drops(4));
}

TEST(FailoverTest, RoutingDisabledLeavesDataPlaneUntouched) {
  // enabled=false must mean: no manager, no monitor threads, no route.*
  // rows — the exact report a pre-routing build produced.
  scenario::ScenarioSpec spec = scenario::ScenarioSpec::from_config(
      scenario::Config::parse_string(R"(
[scenario]
name = off
duration = 50ms

[topology]
kind = fat_tree
nodes = 8
hub_ports = 6
spines = 2

[workload]
name = udp
proto = udp
mode = open
users = 4
rate = 200
size = 128
stride = 4
)"));
  scenario::Scenario sc(spec);
  EXPECT_EQ(sc.routing(), nullptr);
  sc.run();
  std::string json = sc.report().to_json_string();
  EXPECT_EQ(json.find("route."), std::string::npos);
}

}  // namespace
}  // namespace nectar::route
