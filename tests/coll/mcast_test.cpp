#include "hw/mcast.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/system.hpp"
#include "proto/headerbuf.hpp"
#include "scenario/topology.hpp"

namespace nectar {
namespace {

std::vector<int> all_members(int n) {
  std::vector<int> m(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) m[static_cast<std::size_t>(i)] = i;
  return m;
}

TEST(McastTree, StarTopologyShapeAndInterning) {
  net::NectarSystem sys(4);
  const hw::McastRef& ref = sys.net().mcast_ref(0, {0, 1, 2, 3});
  ASSERT_TRUE(ref.valid());
  // One HUB: a single tree node, one CAB leaf per member except the source.
  ASSERT_EQ(ref.tree().nodes.size(), 1u);
  EXPECT_EQ(ref.node(0).edges.size(), 3u);
  EXPECT_EQ(ref.tree().leaves(), 3u);
  EXPECT_EQ(ref.node(0).depth, 1u);
  for (const hw::McastTree::Edge& e : ref.node(0).edges) EXPECT_LT(e.child, 0);

  // Interned by (src, sorted-unique members): member order and duplicates
  // do not fork a second tree.
  const hw::McastRef& again = sys.net().mcast_ref(0, {3, 1, 2, 0, 2});
  EXPECT_EQ(&again.tree(), &ref.tree());
  const hw::McastRef& other_src = sys.net().mcast_ref(1, {0, 1, 2, 3});
  EXPECT_NE(&other_src.tree(), &ref.tree());
}

TEST(McastTree, FatTreeSharesTrunkPrefixes) {
  net::Network net;
  scenario::TopologySpec ts;
  ts.kind = scenario::TopologyKind::FatTree;
  ts.nodes = 8;
  ts.hub_ports = 8;
  ts.spines = 2;
  scenario::build_topology(net, ts, 1);

  const hw::McastRef& ref = net.mcast_ref(0, all_members(8));
  ASSERT_TRUE(ref.valid());
  EXPECT_EQ(ref.tree().leaves(), 7u);
  // Tree property: each non-root tree node is entered by exactly one trunk
  // edge, so a shared trunk carries one replica no matter how many members
  // sit behind it.
  std::size_t trunk_edges = 0;
  for (const hw::McastTree::Node& node : ref.tree().nodes) {
    for (const hw::McastTree::Edge& e : node.edges) {
      if (e.child >= 0) ++trunk_edges;
    }
  }
  EXPECT_EQ(trunk_edges, ref.tree().nodes.size() - 1);
  EXPECT_GT(ref.tree().nodes.size(), 1u);  // members span multiple leaf HUBs
  EXPECT_GE(ref.node(0).depth, 2u);        // at least trunk hop + CAB hop deep
}

/// Minimal datalink client counting deliveries (PacketType::Coll slot is
/// taken by the engine in real use; tests use a private type).
class CountingClient : public proto::DatalinkClient {
 public:
  explicit CountingClient(core::CabRuntime& rt)
      : input_(rt.create_mailbox("mcast-count")) {}

  std::size_t header_bytes() const override { return 4; }
  core::Mailbox& input_mailbox() override { return input_; }
  void end_of_data(core::Message m, std::uint8_t src) override {
    ++received;
    last_src = src;
    input_.end_get(m);
  }

  core::Mailbox& input_;
  int received = 0;
  std::uint8_t last_src = 0xff;
};

constexpr proto::PacketType kTestType = static_cast<proto::PacketType>(201);

TEST(HubMcast, ReplicatesOncePerMemberAndCountsPerPort) {
  const int n = 4;
  net::NectarSystem sys(n);
  const hw::McastRef& ref = sys.net().mcast_ref(0, all_members(n));

  std::vector<std::unique_ptr<CountingClient>> clients;
  for (int i = 0; i < n; ++i) {
    clients.push_back(std::make_unique<CountingClient>(sys.runtime(i)));
    sys.net().datalink(i).register_client(kTestType, clients.back().get());
  }

  const int kSends = 3;
  sys.runtime(0).fork_system("mcast-send", [&] {
    for (int s = 0; s < kSends; ++s) {
      proto::HeaderBufLease hdr = proto::HeaderBufLease::acquire();
      std::span<std::uint8_t> h = hdr->push_front(4);
      std::fill(h.begin(), h.end(), std::uint8_t{0xAB});
      sys.net().datalink(0).send_mcast(kTestType, ref, std::move(hdr), 0, 0);
      sys.runtime(0).cpu().sleep_for(sim::usec(100));
    }
  });
  sys.engine().run();

  // Every member except the source got each frame exactly once, as unicast.
  EXPECT_EQ(clients[0]->received, 0);
  for (int i = 1; i < n; ++i) {
    EXPECT_EQ(clients[static_cast<std::size_t>(i)]->received, kSends) << "node " << i;
    EXPECT_EQ(clients[static_cast<std::size_t>(i)]->last_src, 0);
  }

  // Crossbar gauges (satellite: multicast replication observability): each
  // send reached the replication stage once and produced n-1 replicas, and
  // the per-port gauges attribute every replica to a member's port.
  hw::Hub& hub = sys.net().hub(0);
  EXPECT_EQ(hub.mcast_in(), static_cast<std::uint64_t>(kSends));
  EXPECT_EQ(hub.mcast_out(), static_cast<std::uint64_t>(kSends * (n - 1)));
  EXPECT_EQ(hub.route_errors(), 0u);
  std::uint64_t per_port = 0;
  for (int p = 0; p < hub.num_ports(); ++p) per_port += hub.output_mcast_frames(p);
  EXPECT_EQ(per_port, hub.mcast_out());
  EXPECT_EQ(hub.output_mcast_frames(0), 0u);  // nothing replicated back at the source
  for (int i = 1; i < n; ++i) {
    EXPECT_EQ(hub.output_mcast_frames(i), static_cast<std::uint64_t>(kSends));
  }
}

TEST(HubMcast, GaugesRegisteredAsProbes) {
  const int n = 3;
  net::NectarSystem sys(n);
  const hw::McastRef& ref = sys.net().mcast_ref(0, all_members(n));
  CountingClient c1(sys.runtime(1)), c2(sys.runtime(2));
  sys.net().datalink(1).register_client(kTestType, &c1);
  sys.net().datalink(2).register_client(kTestType, &c2);
  sys.net().register_substrate_metrics();

  sys.runtime(0).fork_system("send", [&] {
    proto::HeaderBufLease hdr = proto::HeaderBufLease::acquire();
    hdr->push_front(4);
    sys.net().datalink(0).send_mcast(kTestType, ref, std::move(hdr), 0, 0);
  });
  sys.engine().run();

  obs::Snapshot snap = sys.metrics().snapshot();
  EXPECT_EQ(snap.value_of(-1, "hub", "hub0.mcast_in"), 1);
  EXPECT_EQ(snap.value_of(-1, "hub", "hub0.mcast_out"), 2);
  EXPECT_EQ(snap.value_of(-1, "hub", "hub0.port1.mcast_frames"), 1);
  EXPECT_EQ(snap.value_of(-1, "hub", "hub0.port2.mcast_frames"), 1);
  EXPECT_EQ(snap.value_of(-1, "hub", "hub0.port0.mcast_frames"), 0);
}

}  // namespace
}  // namespace nectar
