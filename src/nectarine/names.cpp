#include "nectarine/names.hpp"

#include "nectarine/marshal.hpp"

namespace nectar::nectarine {

// --- NameServer -----------------------------------------------------------------

NameServer::NameServer(core::CabRuntime& rt, nproto::ReqResp& reqresp)
    : rt_(rt), reqresp_(reqresp), service_(rt.create_mailbox("name-server")) {
  rt_.fork_system("name-server", [this] { server_loop(); });
}

void NameServer::server_loop() {
  for (;;) {
    core::Message req = service_.begin_get();
    auto info = nproto::ReqResp::parse_request(rt_, req);
    core::Message args = nproto::ReqResp::payload_of(req);

    core::Message rsp_buf = service_.begin_put(128);
    Marshaller::Encoder out(rt_, rsp_buf);
    try {
      Marshaller::Decoder in(rt_, args);
      std::uint32_t op = in.get_u32();
      switch (op) {
        case kOpRegister: {
          std::string name = in.get_string();
          core::MailboxAddr addr{static_cast<std::int32_t>(in.get_u32()), in.get_u32()};
          auto it = names_.find(name);
          if (it != names_.end() && !(it->second == addr)) {
            out.put_u32(kConflict);
          } else {
            names_[name] = addr;
            out.put_u32(kOk);
          }
          break;
        }
        case kOpLookup: {
          std::string name = in.get_string();
          auto it = names_.find(name);
          if (it == names_.end()) {
            out.put_u32(kNotFound);
          } else {
            out.put_u32(kOk)
                .put_u32(static_cast<std::uint32_t>(it->second.node))
                .put_u32(it->second.index);
          }
          break;
        }
        case kOpUnregister: {
          std::string name = in.get_string();
          out.put_u32(names_.erase(name) > 0 ? kOk : kNotFound);
          break;
        }
        default:
          out.put_u32(kBad);
      }
    } catch (const std::exception&) {
      out.put_u32(kBad);
    }
    service_.end_get(args);
    reqresp_.respond(info, out.finish());
  }
}

// --- NameClient ------------------------------------------------------------------

NameClient::NameClient(core::CabRuntime& rt, nproto::ReqResp& reqresp, core::MailboxAddr server)
    : rt_(rt), reqresp_(reqresp), server_(server), scratch_(rt.create_mailbox("name-client")) {}

std::uint32_t NameClient::call(std::uint32_t op, const std::string& name, core::MailboxAddr addr,
                               core::MailboxAddr* out) {
  core::Message req = scratch_.begin_put(Marshaller::string_size(name) + 64);
  Marshaller::Encoder enc(rt_, req);
  enc.put_u32(op).put_string(name);
  if (op == NameServer::kOpRegister) {
    enc.put_u32(static_cast<std::uint32_t>(addr.node)).put_u32(addr.index);
  }
  core::Message rsp = reqresp_.call(server_, enc.finish());
  Marshaller::Decoder dec(rt_, rsp);
  std::uint32_t status = dec.get_u32();
  if (status == NameServer::kOk && op == NameServer::kOpLookup && out != nullptr) {
    out->node = static_cast<std::int32_t>(dec.get_u32());
    out->index = dec.get_u32();
  }
  scratch_.end_get(rsp);
  return status;
}

std::uint32_t NameClient::register_name(const std::string& name, core::MailboxAddr addr) {
  return call(NameServer::kOpRegister, name, addr, nullptr);
}

std::uint32_t NameClient::lookup(const std::string& name, core::MailboxAddr* out) {
  return call(NameServer::kOpLookup, name, {}, out);
}

std::uint32_t NameClient::unregister_name(const std::string& name) {
  return call(NameServer::kOpUnregister, name, {}, nullptr);
}

core::MailboxAddr NameClient::wait_for(const std::string& name, sim::SimTime poll_interval) {
  core::MailboxAddr addr{};
  while (lookup(name, &addr) != NameServer::kOk) {
    rt_.cpu().sleep_for(poll_interval);
  }
  return addr;
}

}  // namespace nectar::nectarine
