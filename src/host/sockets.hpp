#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "nectarine/nectarine.hpp"
#include "proto/tcp.hpp"
#include "proto/udp.hpp"

namespace nectar::host {

/// CAB-side socket/transport server (protocol-engine usage level, §5.2):
/// host processes cannot execute CAB code, so connection control (connect,
/// listen, close) and Nectar-protocol sends arrive as requests in mailboxes
/// serviced by CAB threads — the same pattern as TCP's send-request mailbox.
class SocketServer {
 public:
  // Request kinds for the control mailbox ([u32 sync][u32 kind][args...]).
  static constexpr std::uint32_t kConnect = 1;  // args: lport, raddr, rport
  static constexpr std::uint32_t kListen = 2;   // args: lport
  static constexpr std::uint32_t kWait = 3;     // args: conn id -> 1 established
  static constexpr std::uint32_t kClose = 4;    // args: conn id

  // Protocols for the send mailbox ([u32 proto][u32 node][u32 index]
  // [u32 src_mailbox][payload]). For kViaUdp the fields are reinterpreted:
  // node = destination IP address, index = (dst_port<<16)|src_port.
  static constexpr std::uint32_t kViaDatagram = 0;
  static constexpr std::uint32_t kViaRmp = 1;
  static constexpr std::uint32_t kViaUdp = 2;
  /// Request-response reply on behalf of a host-resident server: fields are
  /// node = client node, index = reply mailbox, src_mailbox = xid.
  static constexpr std::uint32_t kViaRespond = 3;

  SocketServer(core::CabRuntime& rt, proto::Tcp& tcp, nproto::DatagramProtocol& datagram,
               nproto::Rmp& rmp, proto::Udp* udp = nullptr, nproto::ReqResp* reqresp = nullptr);

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  core::Mailbox& control_mailbox() { return control_; }
  core::Mailbox& send_mailbox() { return send_; }

  std::uint64_t control_requests() const { return control_requests_; }
  std::uint64_t send_requests() const { return send_requests_; }

 private:
  void control_loop();
  void send_loop();

  core::CabRuntime& rt_;
  proto::Tcp& tcp_;
  nproto::DatagramProtocol& datagram_;
  nproto::Rmp& rmp_;
  proto::Udp* udp_;
  nproto::ReqResp* reqresp_;
  core::Mailbox& control_;
  core::Mailbox& send_;
  std::uint64_t control_requests_ = 0;
  std::uint64_t send_requests_ = 0;
};

/// Host-side Berkeley-socket-style stream over the CAB-resident TCP (§5.2:
/// "The familiar Berkeley socket interface is also being implemented at this
/// level ... an emulation library ... for applications that can be
/// re-linked").
class HostTcpSocket {
 public:
  HostTcpSocket(nectarine::HostNectarine& nin, SocketServer& server, proto::Tcp& tcp);

  /// Active open; blocks until established. Returns false on failure/reset.
  bool connect(std::uint16_t local_port, proto::IpAddr dst, std::uint16_t dst_port);
  /// Passive open; blocks until a peer connects.
  bool listen(std::uint16_t port);

  /// Stream send: data crosses the VME bus into the send-request mailbox
  /// (inline payload) and is transmitted by the CAB's TCP.
  void send(std::span<const std::uint8_t> data);

  /// Receive the next in-order chunk into `out`; returns bytes read, 0 on
  /// end-of-stream. `out` must be at least one MSS.
  std::size_t recv(std::span<std::uint8_t> out, bool poll = true);

  void close();
  std::uint32_t conn_id() const { return conn_id_; }

 private:
  std::uint32_t control(std::uint32_t kind, std::uint32_t a = 0, std::uint32_t b = 0,
                        std::uint32_t c = 0);

  nectarine::HostNectarine& nin_;
  SocketServer& server_;
  proto::Tcp& tcp_;
  std::uint32_t conn_id_ = 0;
  nectarine::HostNectarine::HostMailbox rx_{};
  nectarine::HostNectarine::HostMailbox send_req_{};
  bool rx_attached_ = false;
};

/// Host-side access to the Nectar-specific protocols (datagram / RMP),
/// §5.2's flexible-communication-model interface.
class HostNectarPort {
 public:
  HostNectarPort(nectarine::HostNectarine& nin, SocketServer& server, const std::string& name);

  /// This port's receive mailbox address (give it to peers).
  core::MailboxAddr address() const { return rx_.mb->address(); }

  /// Send to a remote mailbox via the unreliable datagram protocol.
  void send_datagram(core::MailboxAddr dst, std::span<const std::uint8_t> data);
  /// Send via the reliable message protocol.
  void send_reliable(core::MailboxAddr dst, std::span<const std::uint8_t> data);

  /// Receive the next message (poll- or block-waiting); returns its size.
  std::size_t recv(std::span<std::uint8_t> out, bool poll = true);

  // --- UDP through the protocol engine ---------------------------------------

  /// Bind this port's receive mailbox to a UDP port on the CAB stack.
  void bind_udp(proto::Udp& udp, std::uint16_t port);
  /// Send a UDP datagram (transmitted by the CAB's UDP, §4.1).
  void send_udp(proto::IpAddr dst, std::uint16_t dst_port, std::uint16_t src_port,
                std::span<const std::uint8_t> data);
  /// Receive a UDP datagram payload (IP+UDP headers stripped).
  std::size_t recv_udp(std::span<std::uint8_t> out, bool poll = true);

  // --- serving request-response RPCs from a host process ---------------------

  /// Requests delivered to this port (when it is a reqresp service mailbox)
  /// keep their protocol header; recv() returns header+payload and this
  /// parses the addressing info out of the received bytes.
  static nproto::ReqResp::RequestInfo parse_request(std::span<const std::uint8_t> raw);
  static constexpr std::size_t kRequestHeader = proto::NectarHeader::kSize;

  /// Send the RPC reply (executed by the CAB's send server on our behalf).
  void respond(const nproto::ReqResp::RequestInfo& info, std::span<const std::uint8_t> data);

 private:
  void send_via(std::uint32_t proto, core::MailboxAddr dst, std::span<const std::uint8_t> data,
                std::uint32_t src_field);

  nectarine::HostNectarine& nin_;
  SocketServer& server_;
  nectarine::HostNectarine::HostMailbox rx_;
  nectarine::HostNectarine::HostMailbox send_{};
};

}  // namespace nectar::host
