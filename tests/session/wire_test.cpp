#include "session/wire.hpp"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>

namespace nectar::session {
namespace {

TEST(SessionWireTest, HeaderRoundtripsAllFields) {
  FrameHeader h;
  h.channel = 0xbeef;
  h.generation = 0x7a;
  h.type = FrameType::Data;
  h.seq = 12345;
  h.credit = 678;
  h.length = 4321;
  std::array<std::uint8_t, FrameHeader::kSize> buf{};
  h.serialize(buf);
  FrameHeader g = FrameHeader::parse(buf);
  EXPECT_EQ(g.channel, h.channel);
  EXPECT_EQ(g.generation, h.generation);
  EXPECT_EQ(g.type, FrameType::Data);
  EXPECT_EQ(g.seq, h.seq);
  EXPECT_EQ(g.credit, h.credit);
  EXPECT_EQ(g.length, h.length);
}

TEST(SessionWireTest, EveryFrameTypeRoundtrips) {
  for (FrameType t : {FrameType::Open, FrameType::OpenAck, FrameType::OpenNak, FrameType::Close,
                      FrameType::CloseAck, FrameType::Data, FrameType::Credit,
                      FrameType::Reset}) {
    FrameHeader h;
    h.type = t;
    std::array<std::uint8_t, FrameHeader::kSize> buf{};
    h.serialize(buf);
    EXPECT_EQ(FrameHeader::parse(buf).type, t) << frame_type_name(t);
  }
}

TEST(SessionWireTest, ParseRejectsTruncationAndGarbage) {
  std::array<std::uint8_t, FrameHeader::kSize> buf{};
  FrameHeader h;
  h.type = FrameType::Open;
  h.serialize(buf);
  EXPECT_THROW(FrameHeader::parse(std::span<const std::uint8_t>(buf.data(), 9)),
               std::length_error);
  buf[3] = 0;  // type byte outside the enum
  EXPECT_THROW(FrameHeader::parse(buf), std::invalid_argument);
  buf[3] = 99;
  EXPECT_THROW(FrameHeader::parse(buf), std::invalid_argument);
}

TEST(SessionWireTest, OpenParamsPackPriorityAndWeight) {
  FrameHeader h;
  h.type = FrameType::Open;
  h.seq = FrameHeader::pack_open_params(3, 200);
  EXPECT_EQ(h.open_priority(), 3);
  EXPECT_EQ(h.open_weight(), 200);
}

TEST(SessionWireTest, DescribeNamesTheFrame) {
  FrameHeader h;
  h.channel = 7;
  h.type = FrameType::Credit;
  std::string d = h.describe();
  EXPECT_NE(d.find("CREDIT"), std::string::npos) << d;
  EXPECT_NE(d.find('7'), std::string::npos) << d;
}

}  // namespace
}  // namespace nectar::session
