#include "nectarine/cab_api.hpp"

#include "sim/costs.hpp"

namespace nectar::nectarine {

CabNectarine::CabNectarine(core::CabRuntime& rt, nproto::DatagramProtocol& datagram,
                           nproto::Rmp& rmp, nproto::ReqResp& reqresp)
    : rt_(rt),
      datagram_(datagram),
      rmp_(rmp),
      reqresp_(reqresp),
      scratch_(rt.create_mailbox("cab-nectarine")) {}

CabNectarine::MailboxRef CabNectarine::create_mailbox(const std::string& name) {
  return MailboxRef{&rt_.create_mailbox(name)};
}

CabNectarine::MailboxRef CabNectarine::attach(core::Mailbox& mb) { return MailboxRef{&mb}; }

core::Message CabNectarine::begin_put(MailboxRef& h, std::uint32_t size) {
  return h.mb->begin_put(size);
}

void CabNectarine::end_put(MailboxRef& h, core::Message m) { h.mb->end_put(m); }

core::Message CabNectarine::begin_get(MailboxRef& h) { return h.mb->begin_get(); }

void CabNectarine::end_get(MailboxRef& h, core::Message m) { h.mb->end_get(m); }

void CabNectarine::write_message(const core::Message& m, std::span<const std::uint8_t> data) {
  if (data.size() > m.len) throw std::invalid_argument("write_message: larger than message");
  // On-board copy: SPARC moves the bytes (no bus crossing).
  rt_.cpu().charge(static_cast<sim::SimTime>(data.size()) * sim::costs::kCabCopyPerByte);
  rt_.board().memory().write(m.data, data);
}

void CabNectarine::read_message(const core::Message& m, std::span<std::uint8_t> out) {
  if (out.size() > m.len) throw std::invalid_argument("read_message: larger than message");
  rt_.cpu().charge(static_cast<sim::SimTime>(out.size()) * sim::costs::kCabCopyPerByte);
  rt_.board().memory().read(m.data, out);
}

void CabNectarine::send_datagram(core::MailboxAddr dst, core::Message m,
                                 std::uint32_t reply_mailbox) {
  datagram_.send(dst, m, /*free_when_sent=*/true, reply_mailbox);
}

void CabNectarine::send_reliable(core::MailboxAddr dst, core::Message m) {
  rmp_.send(dst, m, /*free_when_acked=*/true);
}

bool CabNectarine::start_remote_task(core::MailboxAddr remote_service, const std::string& task,
                                     std::uint32_t arg) {
  hw::CabMemory& mem = rt_.board().memory();
  core::Message req = scratch_.begin_put(static_cast<std::uint32_t>(8 + task.size()));
  mem.write32(req.data, CabServices::kStartTask);
  mem.write32(req.data + 4, arg);
  mem.write(req.data + 8,
            std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(task.data()),
                                          task.size()));
  try {
    core::Message rsp = reqresp_.call(remote_service, req);
    bool ok = false;
    if (rsp.len == 2) {
      std::uint8_t st[2];
      mem.read(rsp.data, st);
      ok = st[0] == 'o' && st[1] == 'k';
    }
    scratch_.end_get(rsp);
    return ok;
  } catch (const std::runtime_error&) {
    return false;
  }
}

}  // namespace nectar::nectarine
