#include "hw/hub.hpp"

#include <algorithm>
#include <stdexcept>

namespace nectar::hw {

Hub::Hub(sim::Engine& engine, std::string name, int num_ports, double bits_per_sec,
         sim::SimTime setup)
    : engine_(engine), name_(std::move(name)), rate_(bits_per_sec), setup_(setup) {
  if (num_ports <= 0) throw std::invalid_argument("Hub: need at least one port");
  inputs_.reserve(static_cast<std::size_t>(num_ports));
  for (int i = 0; i < num_ports; ++i) inputs_.push_back(std::make_unique<InputPort>(*this, i));
  outputs_.resize(static_cast<std::size_t>(num_ports));
}

FrameSink* Hub::input(int port) {
  if (port < 0 || port >= num_ports()) throw std::out_of_range("Hub::input: bad port");
  return inputs_[static_cast<std::size_t>(port)].get();
}

void Hub::attach_output(int port, FrameSink* sink, sim::SimTime propagation) {
  if (port < 0 || port >= num_ports()) throw std::out_of_range("Hub::attach_output: bad port");
  OutputPort& out = outputs_[static_cast<std::size_t>(port)];
  out.sink = sink;
  out.propagation = propagation;
  sink->set_drain_notify([this, port] { on_output_drain(port); });
}

bool Hub::open_circuit(int in, int out) {
  if (in < 0 || in >= num_ports() || out < 0 || out >= num_ports()) {
    throw std::out_of_range("Hub::open_circuit: bad port");
  }
  OutputPort& o = outputs_[static_cast<std::size_t>(out)];
  if (o.reserved_by.has_value()) return false;
  o.reserved_by = in;
  return true;
}

void Hub::close_circuit(int in) {
  for (OutputPort& o : outputs_) {
    if (o.reserved_by == in) {
      o.reserved_by.reset();
      try_forward(static_cast<int>(&o - outputs_.data()));
    }
  }
}

std::optional<int> Hub::circuit_output(int in) const {
  for (std::size_t i = 0; i < outputs_.size(); ++i) {
    if (outputs_[i].reserved_by == in) return static_cast<int>(i);
  }
  return std::nullopt;
}

std::size_t Hub::output_queue_depth(int port) const {
  return outputs_.at(static_cast<std::size_t>(port)).queue.size();
}

std::size_t Hub::output_queue_highwater(int port) const {
  return outputs_.at(static_cast<std::size_t>(port)).highwater;
}

sim::SimTime Hub::output_busy_time(int port) const {
  return outputs_.at(static_cast<std::size_t>(port)).busy_time;
}

bool Hub::InputPort::offer(Frame&& f, sim::SimTime first, sim::SimTime last) {
  // HUB input stages always accept; contention is resolved at the output
  // port queues (virtual cut-through buffering).
  hub_.route_frame(index_, std::move(f), first, last);
  return true;
}

void Hub::route_frame(int in_port, Frame&& f, sim::SimTime first, sim::SimTime last) {
  int out;
  std::optional<int> circuit = circuit_output(in_port);
  if (f.remaining_hops() > 0) {
    out = f.next_port();
    ++f.hops_done;  // the HUB consumes one route byte (source routing)
  } else if (circuit.has_value()) {
    out = *circuit;  // established circuit: no route byte needed
  } else {
    ++route_errors_;
    return;  // undeliverable: route exhausted and no circuit
  }
  if (out < 0 || out >= num_ports() || outputs_[static_cast<std::size_t>(out)].sink == nullptr) {
    ++route_errors_;
    return;
  }
  OutputPort& o = outputs_[static_cast<std::size_t>(out)];
  o.queue.push_back({std::move(f), first, last, in_port});
  o.highwater = std::max(o.highwater, o.queue.size());
  try_forward(out);
}

void Hub::try_forward(int out_port) {
  OutputPort& o = outputs_[static_cast<std::size_t>(out_port)];
  if (o.transmitting || o.blocked.has_value() || o.queue.empty()) return;
  // An output reserved by a circuit only carries frames from that input;
  // frames from other inputs wait until the circuit closes.
  if (o.reserved_by.has_value() && o.queue.front().in_port != *o.reserved_by) return;

  QueuedFrame qf = std::move(o.queue.front());
  o.queue.pop_front();
  o.transmitting = true;

  sim::SimTime ttime =
      sim::transmit_time(static_cast<std::int64_t>(qf.frame.wire_bytes()), rate_);
  // Virtual cut-through: forwarding can start once the first byte has
  // arrived and passed the crossbar (setup_), or once the port frees.
  sim::SimTime start = std::max(engine_.now(), qf.first_in + setup_);
  // If the port was free, the frame streams through pipelined with its
  // arrival; otherwise it re-serializes from the HUB buffer.
  sim::SimTime out_first = start;
  sim::SimTime out_last = std::max(qf.last_in + setup_, start + ttime);

  ++frames_switched_;
  ++o.frames;
  bytes_switched_ += qf.frame.wire_bytes();
  o.busy_time += out_last - out_first;

  engine_.schedule_at(out_last, [this, out_port] {
    OutputPort& p = outputs_[static_cast<std::size_t>(out_port)];
    p.transmitting = false;
    try_forward(out_port);
  });

  o.delivering.push_back(
      Delivering{std::move(qf.frame), out_first + o.propagation, out_last + o.propagation});
  engine_.schedule_at(out_first, [this, out_port] { deliver_front(out_port); });
}

void Hub::deliver_front(int out_port) {
  OutputPort& p = outputs_[static_cast<std::size_t>(out_port)];
  Delivering d = std::move(p.delivering.front());
  p.delivering.pop_front();
  if (!p.sink->offer(std::move(d.frame), d.first, d.last)) {
    p.blocked.emplace(std::move(d.frame));
    p.blocked_span = d.last - d.first;
  }
}

void Hub::on_output_drain(int out_port) {
  OutputPort& o = outputs_[static_cast<std::size_t>(out_port)];
  if (o.blocked.has_value()) {
    Frame f = std::move(*o.blocked);
    o.blocked.reset();
    sim::SimTime first = engine_.now();
    sim::SimTime last = first + o.blocked_span;
    if (!o.sink->offer(std::move(f), first, last)) {
      o.blocked.emplace(std::move(f));
      return;
    }
  }
  try_forward(out_port);
}

}  // namespace nectar::hw
