#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace nectar::hw {

/// Physical address on the CAB (single flat physical address space, §3).
using CabAddr = std::uint32_t;

// Memory map (paper §2.2): the CAB memory is split into a program region
// (128 KB PROM + 512 KB RAM) and a data region (1 MB RAM). DMA is supported
// for the data region only.
constexpr CabAddr kPromBase = 0;
constexpr CabAddr kPromSize = 128 * 1024;
constexpr CabAddr kProgramRamBase = kPromBase + kPromSize;
constexpr CabAddr kProgramRamSize = 512 * 1024;
constexpr CabAddr kProgramEnd = kProgramRamBase + kProgramRamSize;
constexpr CabAddr kDataBase = 1u << 20;
constexpr CabAddr kDataSize = 1u << 20;
constexpr CabAddr kDataEnd = kDataBase + kDataSize;

/// Protection page size (paper §2.2: "access permissions ... with each
/// 1 Kbyte page").
constexpr CabAddr kPageSize = 1024;
constexpr CabAddr kNumPages = kDataEnd / kPageSize;

/// A fixed-size zero-initialized byte array whose pages are faulted in
/// lazily. A CAB carries 2 MB of simulated memory but a typical run touches
/// only a few KB of it; an anonymous mmap hands out guaranteed-zero pages on
/// first access instead of paying an eager memset over the whole region at
/// construction (which dominated NectarSystem setup cost).
class LazyZeroPages {
 public:
  explicit LazyZeroPages(std::size_t size);
  ~LazyZeroPages();
  LazyZeroPages(const LazyZeroPages&) = delete;
  LazyZeroPages& operator=(const LazyZeroPages&) = delete;

  std::uint8_t* data() { return data_; }
  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;  // mmap-backed (else heap fallback)
};

/// CAB on-board memory. Backed by a real byte array: every message the
/// simulation sends exists as real bytes here, so data integrity can be
/// asserted end to end.
class CabMemory {
 public:
  CabMemory();

  std::uint8_t read8(CabAddr a) const;
  void write8(CabAddr a, std::uint8_t v);
  std::uint32_t read32(CabAddr a) const;
  void write32(CabAddr a, std::uint32_t v);

  void read(CabAddr a, std::span<std::uint8_t> out) const;
  void write(CabAddr a, std::span<const std::uint8_t> in);
  void fill(CabAddr a, std::size_t len, std::uint8_t v);

  /// Direct view of a range (bounds-checked). The simulation's "shared
  /// memory" mapping of CAB memory into host address spaces is exactly this.
  std::span<std::uint8_t> view(CabAddr a, std::size_t len);
  std::span<const std::uint8_t> view(CabAddr a, std::size_t len) const;

  /// True if [a, a+len) lies entirely within the DMA-able data region.
  static bool in_data_region(CabAddr a, std::size_t len);
  static bool in_program_region(CabAddr a, std::size_t len);
  /// True if the range is PROM (writes fault).
  static bool in_prom(CabAddr a, std::size_t len);

 private:
  void check(CabAddr a, std::size_t len) const;
  LazyZeroPages bytes_;
};

/// Per-page memory protection with multiple protection domains (§2.2):
/// "Multiple protection domains are provided, each with its own set of access
/// permissions. Changing the protection domain is accomplished by reloading a
/// single register."
class ProtectionUnit {
 public:
  enum class Access : std::uint8_t { None = 0, Read = 1, ReadWrite = 2 };

  explicit ProtectionUnit(int num_domains = 8);

  int num_domains() const { return static_cast<int>(domains_.size()); }

  /// The "single register" that selects the active domain.
  void set_current_domain(int d);
  int current_domain() const { return current_; }

  void set_page(int domain, CabAddr page, Access a);
  void set_range(int domain, CabAddr addr, std::size_t len, Access a);

  /// Check an access from the active domain. Returns false on fault.
  bool check(CabAddr addr, std::size_t len, bool write) const;
  bool check_domain(int domain, CabAddr addr, std::size_t len, bool write) const;

  std::uint64_t faults() const { return faults_; }

 private:
  std::vector<std::vector<Access>> domains_;
  int current_ = 0;
  mutable std::uint64_t faults_ = 0;
};

}  // namespace nectar::hw
