#include "obs/metrics.hpp"

#include <gtest/gtest.h>

namespace nectar::obs {
namespace {

TEST(Metrics, CounterGaugeBasics) {
  MetricsRegistry reg;
  Counter& c = reg.counter(0, "tcp", "segments_sent");
  c.inc();
  c.inc(3);
  ++c;
  EXPECT_EQ(c.value(), 5u);
  // Same key returns the same cell.
  EXPECT_EQ(&reg.counter(0, "tcp", "segments_sent"), &c);

  Gauge& g = reg.gauge(1, "mailbox", "queued");
  g.set(7);
  g.add(-2);
  EXPECT_EQ(g.value(), 5);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_TRUE(reg.contains(0, "tcp", "segments_sent"));
  EXPECT_FALSE(reg.contains(9, "tcp", "segments_sent"));
}

TEST(Metrics, HistogramBucketBoundaries) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram(0, "datalink", "packet_bytes", {64, 256, 1024});
  // Bounds are inclusive upper bounds: 64 lands in bucket 0, 65 in bucket 1.
  h.observe(0);
  h.observe(64);
  h.observe(65);
  h.observe(256);
  h.observe(257);
  h.observe(1024);
  h.observe(1025);     // overflow bucket
  h.observe(1 << 20);  // overflow bucket
  EXPECT_EQ(h.count(), 8u);
  ASSERT_EQ(h.buckets().size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(h.bucket_count(0), 2u);   // 0, 64
  EXPECT_EQ(h.bucket_count(1), 2u);   // 65, 256
  EXPECT_EQ(h.bucket_count(2), 2u);   // 257, 1024
  EXPECT_EQ(h.bucket_count(3), 2u);   // 1025, 1M
  EXPECT_EQ(h.sum(), 0 + 64 + 65 + 256 + 257 + 1024 + 1025 + (1 << 20));
}

TEST(Metrics, SnapshotSortedAndDeterministic) {
  auto populate = [](MetricsRegistry& reg) {
    // Deliberately register out of key order.
    reg.counter(1, "zeta", "z").inc(2);
    reg.counter(0, "alpha", "a").inc(1);
    reg.gauge(0, "alpha", "b").set(-4);
    reg.histogram(0, "beta", "h", {10, 20}).observe(15);
  };
  MetricsRegistry r1, r2;
  populate(r1);
  populate(r2);

  Snapshot s1 = r1.snapshot();
  Snapshot s2 = r2.snapshot();
  EXPECT_EQ(s1, s2);
  // Byte-identical serialization is the diffability guarantee.
  EXPECT_EQ(s1.to_json(), s2.to_json());

  // Entries come out sorted by (node, component, name).
  ASSERT_EQ(s1.size(), 4u);
  EXPECT_EQ(s1.entries()[0].key.str(), "node0/alpha/a");
  EXPECT_EQ(s1.entries()[3].key.str(), "node1/zeta/z");
  EXPECT_EQ(s1.value_of(1, "zeta", "z"), 2);
  EXPECT_EQ(s1.value_of(0, "alpha", "b"), -4);
  EXPECT_EQ(s1.value_of(5, "none", "none", -1), -1);
}

TEST(Metrics, SnapshotDelta) {
  MetricsRegistry reg;
  Counter& c = reg.counter(0, "tcp", "segments_sent");
  c.inc(10);
  Snapshot base = reg.snapshot();
  c.inc(5);
  reg.counter(0, "tcp", "resets_sent").inc(1);  // new since base
  Snapshot now = reg.snapshot();
  Snapshot d = now.delta(base);
  EXPECT_EQ(d.value_of(0, "tcp", "segments_sent"), 5);
  EXPECT_EQ(d.value_of(0, "tcp", "resets_sent"), 1);
}

TEST(Metrics, ProbesReadLiveValuesAndUnregisterViaRaii) {
  MetricsRegistry reg;
  std::uint64_t plain_counter = 0;  // a module's existing stat member
  {
    Registration r(reg);
    r.probe(0, "cpu", "context_switches",
            [&] { return static_cast<std::int64_t>(plain_counter); });
    plain_counter = 42;
    EXPECT_EQ(reg.snapshot().value_of(0, "cpu", "context_switches"), 42);
    plain_counter = 43;
    EXPECT_EQ(reg.snapshot().value_of(0, "cpu", "context_switches"), 43);
  }
  // Registration destroyed: the probe is gone, no dangling read at snapshot.
  EXPECT_FALSE(reg.contains(0, "cpu", "context_switches"));
  EXPECT_EQ(reg.snapshot().size(), 0u);
}

TEST(Metrics, DuplicateKeysGetDeterministicSuffix) {
  MetricsRegistry reg;
  Registration r(reg);
  r.probe(0, "mailbox", "m.puts", [] { return 1; });
  r.probe(0, "mailbox", "m.puts", [] { return 2; });
  r.probe(0, "mailbox", "m.puts", [] { return 3; });
  Snapshot s = reg.snapshot();
  EXPECT_EQ(s.value_of(0, "mailbox", "m.puts"), 1);
  EXPECT_EQ(s.value_of(0, "mailbox", "m.puts#2"), 2);
  EXPECT_EQ(s.value_of(0, "mailbox", "m.puts#3"), 3);
}

TEST(Metrics, SameKindReRegistrationIsLookup) {
  MetricsRegistry reg;
  Counter& c = reg.counter(0, "tcp", "segments_sent");
  c.inc(4);
  // Re-asking for the same (key, kind) is a lookup, never a reset.
  EXPECT_EQ(&reg.counter(0, "tcp", "segments_sent"), &c);
  EXPECT_EQ(reg.counter(0, "tcp", "segments_sent").value(), 4u);
  Histogram& h = reg.histogram(0, "dl", "bytes", {10, 20});
  EXPECT_EQ(&reg.histogram(0, "dl", "bytes", {10, 20}), &h);
}

TEST(Metrics, KindConflictOnDuplicateNameThrows) {
  MetricsRegistry reg;
  reg.counter(0, "tcp", "segments_sent").inc();
  // A different-kind claim on a registered name is a wiring bug: fail loudly
  // instead of silently aliasing or overwriting the cell.
  EXPECT_THROW(reg.gauge(0, "tcp", "segments_sent"), std::logic_error);
  EXPECT_THROW(reg.histogram(0, "tcp", "segments_sent", {1, 2}), std::logic_error);
  reg.gauge(1, "mailbox", "queued");
  EXPECT_THROW(reg.counter(1, "mailbox", "queued"), std::logic_error);
  // The original cells are intact after the failed claims.
  EXPECT_EQ(reg.counter(0, "tcp", "segments_sent").value(), 1u);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(Metrics, HistogramBoundsConflictThrows) {
  MetricsRegistry reg;
  reg.histogram(0, "dl", "bytes", {64, 256});
  EXPECT_THROW(reg.histogram(0, "dl", "bytes", {64, 512}), std::logic_error);
}

TEST(Metrics, EmptyRegistrationIsInert) {
  Registration r;  // no registry attached
  r.probe(0, "x", "y", [] { return 0; });  // must not crash
  r.release();
}

}  // namespace
}  // namespace nectar::obs
