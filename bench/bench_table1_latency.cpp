// Table 1 (paper §6.1): round-trip latency in microseconds for the Nectar
// datagram, reliable message (RMP), and request-response protocols, plus
// UDP — between two host processes (Host-Host) and between two CAB threads
// (CAB-CAB). The paper reports datagram at 325 us host-host / 179 us CAB-CAB
// and an application-level RPC under 500 us.

#include "common.hpp"

namespace nectar::bench {
namespace {

constexpr int kRounds = 15;
constexpr std::size_t kMsgSize = 64;

// --- CAB-to-CAB round trips --------------------------------------------------

/// Echo server and ping-pong client as CAB threads; returns median RTT.
double cab_datagram_rtt() {
  net::NectarSystem sys(2);
  core::Mailbox& svc = sys.runtime(1).create_mailbox("echo");
  core::Mailbox& reply = sys.runtime(0).create_mailbox("reply");
  sys.runtime(1).fork_system("echo", [&] {
    for (int i = 0; i < kRounds; ++i) {
      core::Message m = svc.begin_get();
      auto info = sys.stack(1).datagram.last_sender(svc);
      sys.stack(1).datagram.send({info.src_node, info.src_mailbox}, m);
    }
  });
  std::vector<sim::SimTime> rtts;
  sys.runtime(0).fork_system("client", [&] {
    core::Mailbox& scratch = sys.runtime(0).create_mailbox("scratch");
    auto data = pattern(kMsgSize);
    for (int i = 0; i < kRounds; ++i) {
      sim::SimTime t0 = sys.engine().now();
      sys.stack(0).datagram.send(svc.address(), stage_message(scratch, sys.runtime(0), data),
                                 true, reply.address().index);
      core::Message r = reply.begin_get();
      rtts.push_back(sys.engine().now() - t0);
      reply.end_get(r);
    }
  });
  sys.engine().run();
  return median_usec(rtts);
}

double cab_rmp_rtt() {
  net::NectarSystem sys(2);
  core::Mailbox& svc = sys.runtime(1).create_mailbox("echo");
  core::Mailbox& reply = sys.runtime(0).create_mailbox("reply");
  core::MailboxAddr reply_addr = reply.address();
  sys.runtime(1).fork_system("echo", [&] {
    for (int i = 0; i < kRounds; ++i) {
      core::Message m = svc.begin_get();
      sys.stack(1).rmp.send(reply_addr, m);
    }
  });
  std::vector<sim::SimTime> rtts;
  sys.runtime(0).fork_system("client", [&] {
    core::Mailbox& scratch = sys.runtime(0).create_mailbox("scratch");
    auto data = pattern(kMsgSize);
    for (int i = 0; i < kRounds; ++i) {
      sim::SimTime t0 = sys.engine().now();
      sys.stack(0).rmp.send(svc.address(), stage_message(scratch, sys.runtime(0), data));
      core::Message r = reply.begin_get();
      rtts.push_back(sys.engine().now() - t0);
      reply.end_get(r);
    }
  });
  sys.engine().run();
  return median_usec(rtts);
}

double cab_reqresp_rtt() {
  net::NectarSystem sys(2);
  core::Mailbox& svc = sys.runtime(1).create_mailbox("service");
  sys.runtime(1).fork_system("server", [&] {
    for (int i = 0; i < kRounds; ++i) {
      core::Message req = svc.begin_get();
      auto info = nproto::ReqResp::parse_request(sys.runtime(1), req);
      core::Message payload = nproto::ReqResp::payload_of(req);
      sys.stack(1).reqresp.respond(info, payload);  // echo the payload back
    }
  });
  std::vector<sim::SimTime> rtts;
  sys.runtime(0).fork_system("client", [&] {
    core::Mailbox& scratch = sys.runtime(0).create_mailbox("scratch");
    auto data = pattern(kMsgSize);
    for (int i = 0; i < kRounds; ++i) {
      sim::SimTime t0 = sys.engine().now();
      core::Message rsp =
          sys.stack(0).reqresp.call(svc.address(), stage_message(scratch, sys.runtime(0), data));
      rtts.push_back(sys.engine().now() - t0);
      scratch.end_get(rsp);
    }
  });
  sys.engine().run();
  return median_usec(rtts);
}

double cab_udp_rtt() {
  net::NectarSystem sys(2);
  core::Mailbox& server_rx = sys.runtime(1).create_mailbox("udp-srv");
  core::Mailbox& client_rx = sys.runtime(0).create_mailbox("udp-cli");
  sys.stack(1).udp.bind(7, &server_rx);
  sys.stack(0).udp.bind(9000, &client_rx);
  sys.runtime(1).fork_system("echo", [&] {
    for (int i = 0; i < kRounds; ++i) {
      core::Message m = server_rx.begin_get();
      auto info = sys.stack(1).udp.info_of(m);
      core::Message payload = proto::Udp::payload_of(m);
      sys.stack(1).udp.send(7, info.src_addr, info.src_port, payload);
    }
  });
  std::vector<sim::SimTime> rtts;
  sys.runtime(0).fork_system("client", [&] {
    core::Mailbox& scratch = sys.runtime(0).create_mailbox("scratch");
    auto data = pattern(kMsgSize);
    for (int i = 0; i < kRounds; ++i) {
      sim::SimTime t0 = sys.engine().now();
      sys.stack(0).udp.send(9000, proto::ip_of_node(1), 7,
                            stage_message(scratch, sys.runtime(0), data));
      core::Message r = client_rx.begin_get();
      rtts.push_back(sys.engine().now() - t0);
      client_rx.end_get(r);
    }
  });
  sys.engine().run();
  return median_usec(rtts);
}

// --- Host-to-host round trips -----------------------------------------------------

struct HostPair {
  net::NectarSystem sys{2, /*with_vme=*/true};
  host::HostNode h0{sys, 0};
  host::HostNode h1{sys, 1};
};

double host_datagram_rtt(const std::string& trace_path = "") {
  HostPair p;
  if (!trace_path.empty()) p.sys.tracer().set_enabled(true);
  core::MailboxAddr svc_addr{};
  bool ready = false;
  p.h1.host.run_process("echo", [&] {
    host::HostNectarPort port(p.h1.nin, p.h1.sockets, "echo");
    svc_addr = port.address();
    ready = true;
    std::vector<std::uint8_t> buf(kMsgSize + 16);
    for (int i = 0; i < kRounds; ++i) {
      std::size_t n = port.recv(buf);
      core::MailboxAddr back{static_cast<std::int32_t>(proto::get32n(buf, 0)),
                             proto::get32n(buf, 4)};
      port.send_datagram(back, std::span<const std::uint8_t>(buf).first(n));
    }
  });
  p.sys.net().run_until(sim::msec(1));
  if (!ready) return -1;
  std::vector<sim::SimTime> rtts;
  p.h0.host.run_process("client", [&] {
    host::HostNectarPort port(p.h0.nin, p.h0.sockets, "client");
    std::vector<std::uint8_t> msg = pattern(kMsgSize);
    proto::put32n(msg, 0, static_cast<std::uint32_t>(port.address().node));
    proto::put32n(msg, 4, port.address().index);
    std::vector<std::uint8_t> buf(kMsgSize + 16);
    for (int i = 0; i < kRounds; ++i) {
      sim::SimTime t0 = p.sys.engine().now();
      port.send_datagram(svc_addr, msg);
      port.recv(buf);
      rtts.push_back(p.sys.engine().now() - t0);
    }
  });
  p.sys.net().run_until(sim::sec(5));
  finish_trace(trace_path, p.sys.tracer());
  return median_usec(rtts);
}

double host_rmp_rtt() {
  HostPair p;
  core::MailboxAddr svc_addr{};
  bool ready = false;
  p.h1.host.run_process("echo", [&] {
    host::HostNectarPort port(p.h1.nin, p.h1.sockets, "echo");
    svc_addr = port.address();
    ready = true;
    std::vector<std::uint8_t> buf(kMsgSize + 16);
    for (int i = 0; i < kRounds; ++i) {
      std::size_t n = port.recv(buf);
      core::MailboxAddr back{static_cast<std::int32_t>(proto::get32n(buf, 0)),
                             proto::get32n(buf, 4)};
      port.send_reliable(back, std::span<const std::uint8_t>(buf).first(n));
    }
  });
  p.sys.net().run_until(sim::msec(1));
  if (!ready) return -1;
  std::vector<sim::SimTime> rtts;
  p.h0.host.run_process("client", [&] {
    host::HostNectarPort port(p.h0.nin, p.h0.sockets, "client");
    std::vector<std::uint8_t> msg = pattern(kMsgSize);
    proto::put32n(msg, 0, static_cast<std::uint32_t>(port.address().node));
    proto::put32n(msg, 4, port.address().index);
    std::vector<std::uint8_t> buf(kMsgSize + 16);
    for (int i = 0; i < kRounds; ++i) {
      sim::SimTime t0 = p.sys.engine().now();
      port.send_reliable(svc_addr, msg);
      port.recv(buf);
      rtts.push_back(p.sys.engine().now() - t0);
    }
  });
  p.sys.net().run_until(sim::sec(5));
  return median_usec(rtts);
}

double host_reqresp_rtt() {
  // "RPC between application tasks executing on two Nectar hosts" (§6,
  // reported below 500 us): the client host calls through its CAB's
  // host-call service; the *server host process* receives the request from
  // the request-response service mailbox and replies.
  HostPair p;
  core::MailboxAddr svc_addr{};
  bool ready = false;
  p.h1.host.run_process("rpc-server", [&] {
    host::HostNectarPort port(p.h1.nin, p.h1.sockets, "rpc-svc");
    svc_addr = port.address();
    ready = true;
    std::vector<std::uint8_t> buf(kMsgSize + 64);
    for (int i = 0; i < kRounds; ++i) {
      std::size_t n = port.recv(buf);
      auto info = host::HostNectarPort::parse_request(
          std::span<const std::uint8_t>(buf).first(host::HostNectarPort::kRequestHeader));
      port.respond(info, std::span<const std::uint8_t>(buf).subspan(
                             host::HostNectarPort::kRequestHeader,
                             n - host::HostNectarPort::kRequestHeader));
    }
  });
  p.sys.net().run_until(sim::msec(1));
  if (!ready) return -1;
  std::vector<sim::SimTime> rtts;
  p.h0.host.run_process("client", [&] {
    auto req = pattern(kMsgSize);
    for (int i = 0; i < kRounds; ++i) {
      sim::SimTime t0 = p.sys.engine().now();
      p.h0.nin.host_call(p.h0.services, svc_addr, req);
      rtts.push_back(p.sys.engine().now() - t0);
    }
  });
  p.sys.net().run_until(sim::sec(5));
  return median_usec(rtts);
}

double host_udp_rtt() {
  HostPair p;
  bool ready = false;
  p.h1.host.run_process("echo", [&] {
    host::HostNectarPort port(p.h1.nin, p.h1.sockets, "udp-echo");
    port.bind_udp(p.sys.stack(1).udp, 7);
    ready = true;
    std::vector<std::uint8_t> buf(kMsgSize + 64);
    for (int i = 0; i < kRounds; ++i) {
      std::size_t n = port.recv_udp(buf);
      port.send_udp(proto::ip_of_node(0), 9000, 7, std::span<const std::uint8_t>(buf).first(n));
    }
  });
  p.sys.net().run_until(sim::msec(1));
  if (!ready) return -1;
  std::vector<sim::SimTime> rtts;
  p.h0.host.run_process("client", [&] {
    host::HostNectarPort port(p.h0.nin, p.h0.sockets, "udp-client");
    port.bind_udp(p.sys.stack(0).udp, 9000);
    auto msg = pattern(kMsgSize);
    std::vector<std::uint8_t> buf(kMsgSize + 64);
    for (int i = 0; i < kRounds; ++i) {
      sim::SimTime t0 = p.sys.engine().now();
      port.send_udp(proto::ip_of_node(1), 7, 9000, msg);
      port.recv_udp(buf);
      rtts.push_back(p.sys.engine().now() - t0);
    }
  });
  p.sys.net().run_until(sim::sec(5));
  return median_usec(rtts);
}

}  // namespace
}  // namespace nectar::bench

int main(int argc, char** argv) {
  using namespace nectar::bench;
  BenchOptions opts = parse_options(argc, argv);
  print_header("Table 1: round-trip latency (usec), 64-byte messages");

  struct Row {
    const char* name;
    double host_host;
    double cab_cab;
    const char* paper;
  };
  Row rows[] = {
      {"datagram", host_datagram_rtt(opts.trace_path), cab_datagram_rtt(), "325 / 179"},
      {"reliable message (RMP)", host_rmp_rtt(), cab_rmp_rtt(), "n/a (between dg and rr)"},
      {"request-response (RPC)", host_reqresp_rtt(), cab_reqresp_rtt(), "< 500 (RPC, host-host)"},
      {"UDP", host_udp_rtt(), cab_udp_rtt(), "n/a (slowest row)"},
  };

  std::printf("%-26s %12s %12s    %s\n", "protocol", "Host-Host", "CAB-CAB", "paper (us)");
  for (const Row& r : rows) {
    std::printf("%-26s %12.1f %12.1f    %s\n", r.name, r.host_host, r.cab_cab, r.paper);
  }
  std::printf("\nShape checks: datagram is the fastest row; every Nectar-specific\n"
              "protocol beats UDP; the host-host RPC stays under 500 us.\n");

  nectar::obs::RunReport report("table1-latency");
  report.param("message_bytes", std::int64_t{64});
  report.param("rounds", std::int64_t{kRounds});
  const char* slug[] = {"datagram", "rmp", "reqresp", "udp"};
  for (std::size_t i = 0; i < 4; ++i) {
    report.add(std::string(slug[i]) + "_host_host_rtt", rows[i].host_host, "us");
    report.add(std::string(slug[i]) + "_cab_cab_rtt", rows[i].cab_cab, "us");
  }
  finish_report(opts, report);
  return 0;
}
