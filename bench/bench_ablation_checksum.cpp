// Ablation (paper §6.2): where TCP's time goes. Sweeps the TCP software
// checksum on/off across message sizes and reports the per-message cost the
// checksum adds, plus the crossover where checksumming starts to dominate
// per-packet overhead. This isolates the single mechanism behind the
// Fig. 7 TCP-vs-RMP gap.

#include "common.hpp"

namespace nectar::bench {
namespace {

double tcp_transfer_usec_per_msg(std::size_t size, bool checksum, int n) {
  proto::TcpConfig cfg;
  cfg.software_checksum = checksum;
  net::NectarSystem sys(2, false, cfg);
  const std::uint64_t total = static_cast<std::uint64_t>(n) * size;
  sim::SimTime t0 = -1, t1 = -1;
  sys.runtime(1).fork_app("server", [&] {
    proto::TcpConnection* c = sys.stack(1).tcp.listen(80);
    sys.stack(1).tcp.wait_established(c);
    std::uint64_t got = 0;
    while (got < total) {
      core::Message m = c->receive_mailbox().begin_get();
      if (t0 < 0) t0 = sys.engine().now();
      got += m.len;
      c->receive_mailbox().end_get(m);
    }
    t1 = sys.engine().now();
  });
  sys.runtime(0).fork_app("client", [&] {
    sys.runtime(0).cpu().sleep_for(sim::usec(100));
    proto::TcpConnection* c = sys.stack(0).tcp.connect(5000, proto::ip_of_node(1), 80);
    sys.stack(0).tcp.wait_established(c);
    core::Mailbox& scratch = sys.runtime(0).create_mailbox("scratch");
    for (int i = 0; i < n; ++i) {
      sys.stack(0).tcp.wait_send_window(c, 128 * 1024);
      core::Message m = scratch.begin_put(static_cast<std::uint32_t>(size));
      sys.stack(0).tcp.send(c, m);
    }
  });
  sys.engine().run();
  if (t1 <= t0 || t0 < 0) return 0;
  return sim::to_usec(t1 - t0) / n;
}

}  // namespace
}  // namespace nectar::bench

int main(int argc, char** argv) {
  using namespace nectar::bench;
  BenchOptions opts = parse_options(argc, argv);
  print_header("Ablation: the cost of software checksums in TCP (paper §6.2)");

  nectar::obs::RunReport report("ablation-checksum");
  std::printf("%8s %14s %14s %12s %14s\n", "size", "with cksum", "w/o cksum", "delta us",
              "model 2x cksum");
  for (std::size_t size : {64, 256, 1024, 4096, 8192}) {
    int n = size <= 256 ? 400 : 150;
    double with = tcp_transfer_usec_per_msg(size, true, n);
    double without = tcp_transfer_usec_per_msg(size, false, n);
    // Both ends checksum every data segment: the model predicts the delta.
    double predicted = 2.0 * static_cast<double>(size + 52) *
                       static_cast<double>(nectar::sim::costs::kChecksumPerByte) / 1000.0;
    std::printf("%8zu %11.1f us %11.1f us %9.1f us %11.1f us\n", size, with, without,
                with - without, predicted);
    std::string sz = std::to_string(size);
    report.add("with_cksum_" + sz, with, "us/msg");
    report.add("without_cksum_" + sz, without, "us/msg");
    report.add("predicted_delta_" + sz, predicted, "us/msg");
  }
  std::printf(
      "\nThe measured delta tracks the model's two checksum passes per segment\n"
      "until pipelining hides part of the cost; this is the entire mechanism\n"
      "separating TCP/IP from RMP in Fig. 7 (\"mostly due to the cost of doing\n"
      "TCP checksums in software\", §6.2).\n");
  finish_report(opts, report);
  return 0;
}
