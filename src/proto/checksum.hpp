#pragma once

#include <cstdint>
#include <span>

namespace nectar::proto {

/// Internet checksum (RFC 1071): 16-bit one's-complement sum.
///
/// The *computation* is free C++; the *cost model* is separate — protocol
/// code charges `checksum_cost(bytes)` to the CPU when it checksums in
/// software (the paper's Fig. 7 shows this is what separates TCP/IP from the
/// Nectar-specific protocols, which rely on the hardware CRC instead).
class InternetChecksum {
 public:
  void update(std::span<const std::uint8_t> data);
  /// Final folded, complemented 16-bit checksum.
  std::uint16_t value() const;
  void reset() { sum_ = 0; odd_ = false; }

  static std::uint16_t compute(std::span<const std::uint8_t> data);
  /// Compute over two spans (header + payload), as a gathered send does.
  static std::uint16_t compute2(std::span<const std::uint8_t> a,
                                std::span<const std::uint8_t> b);
  /// True if `data` (which embeds its checksum field) verifies to 0.
  static bool verify(std::span<const std::uint8_t> data);

 private:
  std::uint32_t sum_ = 0;
  bool odd_ = false;  // a dangling odd byte from the previous update
};

/// CPU time to checksum `bytes` in software on the CAB (see costs.hpp).
std::int64_t checksum_cost(std::size_t bytes);

}  // namespace nectar::proto
