#include "route/manager.hpp"

#include <stdexcept>

#include "obs/causal.hpp"
#include "obs/profiler.hpp"

namespace nectar::route {

RouteManager::RouteManager(net::Network& net, RoutingConfig cfg)
    : net_(net), cfg_(cfg), metrics_reg_(net.metrics()) {
  protos_.resize(static_cast<std::size_t>(net.cab_count()), nullptr);
}

RouteManager::~RouteManager() = default;

void RouteManager::attach(int node, nproto::DatagramProtocol& dg) {
  protos_.at(static_cast<std::size_t>(node)) = &dg;
}

void RouteManager::start() {
  int n = net_.cab_count();
  for (int s = 0; s < n; ++s) {
    if (protos_[static_cast<std::size_t>(s)] == nullptr) {
      throw std::logic_error("RouteManager: node " + std::to_string(s) +
                             " has no attached datagram protocol");
    }
  }
  paths_ = std::make_unique<PathDb>(net_, cfg_.paths, cfg_.seed);

  // Replace each pair's single BFS route with its ECMP-preferred path.
  // Self routes (through the node's own HUB) are left alone.
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s != d) install(s, d, paths_->preferred(s, d));
    }
  }

  // Create every monitor before starting any: each creates its mailbox in
  // its constructor, so the address table is complete before a thread runs.
  monitors_.reserve(static_cast<std::size_t>(n));
  monitor_addrs_.reserve(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    monitors_.push_back(std::make_unique<HealthMonitor>(
        net_.runtime(s), *protos_[static_cast<std::size_t>(s)], *paths_, cfg_, *this));
    monitor_addrs_.push_back(monitors_.back()->address());
  }
  for (auto& m : monitors_) m->start(monitor_addrs_);

  metrics_reg_.probe(-1, "route", "failovers",
                     [this] { return static_cast<std::int64_t>(failovers_); });
  metrics_reg_.probe(-1, "route", "reverts",
                     [this] { return static_cast<std::int64_t>(reverts_); });
  metrics_reg_.probe(-1, "route", "no_path",
                     [this] { return static_cast<std::int64_t>(no_path_); });
  metrics_reg_.probe(-1, "route", "routes_installed",
                     [this] { return static_cast<std::int64_t>(routes_installed_); });
  metrics_reg_.probe(-1, "route", "probes_sent",
                     [this] { return static_cast<std::int64_t>(probes_sent()); });
  metrics_reg_.probe(-1, "route", "probe_timeouts",
                     [this] { return static_cast<std::int64_t>(probe_timeouts()); });
  metrics_reg_.probe(-1, "route", "probe_replies",
                     [this] { return static_cast<std::int64_t>(probe_replies()); });
}

void RouteManager::install(int src, int dst, int path) {
  net_.datalink(src).set_route(dst, paths_->path(src, dst, path));
  installed_[{src, dst}] = path;
  ++routes_installed_;
}

int RouteManager::pick_alive(int src, int dst) const {
  const HealthMonitor& mon = *monitors_.at(static_cast<std::size_t>(src));
  int pref = paths_->preferred(src, dst);
  if (mon.state(dst, pref) != PathState::Dead) return pref;
  for (int p = 0; p < paths_->path_count(src, dst); ++p) {
    if (p != pref && mon.state(dst, p) != PathState::Dead) return p;
  }
  return -1;
}

int RouteManager::installed_path(int src, int dst) const {
  auto it = installed_.find({src, dst});
  return it == installed_.end() ? -1 : it->second;
}

PathState RouteManager::path_state(int node, int dst, int path) const {
  return monitors_.at(static_cast<std::size_t>(node))->state(dst, path);
}

void RouteManager::on_path_dead(int node, int dst, int path, sim::SimTime first_miss_sent_at) {
  obs::CostScope scope("route/switch");
  auto it = installed_.find({node, dst});
  if (it == installed_.end() || it->second != path) return;  // path carried no traffic
  int alt = pick_alive(node, dst);
  if (alt < 0) {
    // Every path is dead. Keep the stale route installed (sends still work
    // if the fault heals under us) and record the outage.
    ++no_path_;
    record_event("no_path", node, dst, path);
    return;
  }
  install(node, dst, alt);
  ++failovers_;
  record_event("failover", node, dst, alt);
  // Runs on node's prober thread at detection time, so this spans the whole
  // window the application saw: first missed probe send -> route switched.
  reroute_.observe(net_.engine().now() - first_miss_sent_at);
  if (auto* ct = obs::CausalTracer::active()) {
    // Loss stages of node->dst traces overlapping this window are attributed
    // to rerouting rather than generic retransmit wait.
    ct->note_reroute(node, dst, first_miss_sent_at, net_.engine().now());
  }
  net_.runtime(node).trace_mark("route.failover");
}

void RouteManager::on_path_recovered(int node, int dst, int path) {
  obs::CostScope scope("route/switch");
  auto it = installed_.find({node, dst});
  if (it == installed_.end() || it->second == path) return;
  if (monitors_.at(static_cast<std::size_t>(node))->state(dst, it->second) == PathState::Dead) {
    // Total outage healing: any alive path beats the dead one we kept.
    install(node, dst, path);
    ++failovers_;
    record_event("failover", node, dst, path);
    net_.runtime(node).trace_mark("route.failover");
    return;
  }
  if (cfg_.revert && path == paths_->preferred(node, dst)) {
    install(node, dst, path);
    ++reverts_;
    record_event("revert", node, dst, path);
    net_.runtime(node).trace_mark("route.revert");
  }
}

void RouteManager::record_event(const char* kind, int node, int dst, int path) {
  // Stamped with the deciding node's shard clock; the lock only guards the
  // vector (shard prober threads append concurrently when shards > 1).
  sim::SimTime t = net_.engine_of_node(node).now();
  std::lock_guard<std::mutex> lock(events_mu_);
  events_.push_back(RouteEvent{t, kind, node, dst, path});
}

std::vector<RouteManager::RouteEvent> RouteManager::events() const {
  std::lock_guard<std::mutex> lock(events_mu_);
  return events_;
}

std::uint64_t RouteManager::probes_sent() const {
  std::uint64_t n = 0;
  for (const auto& m : monitors_) n += m->probes_sent();
  return n;
}

std::uint64_t RouteManager::probe_timeouts() const {
  std::uint64_t n = 0;
  for (const auto& m : monitors_) n += m->probe_timeouts();
  return n;
}

std::uint64_t RouteManager::probe_replies() const {
  std::uint64_t n = 0;
  for (const auto& m : monitors_) n += m->probe_replies();
  return n;
}

void RouteManager::report_into(obs::RunReport& rep) const {
  rep.add("route.failovers", static_cast<double>(failovers_), "count");
  rep.add("route.reverts", static_cast<double>(reverts_), "count");
  rep.add("route.no_path", static_cast<double>(no_path_), "count");
  rep.add("route.routes_installed", static_cast<double>(routes_installed_), "count");
  rep.add("route.probes_sent", static_cast<double>(probes_sent()), "count");
  rep.add("route.probe_timeouts", static_cast<double>(probe_timeouts()), "count");
  rep.add("route.probe_replies", static_cast<double>(probe_replies()), "count");
  rep.add("route.reroute.count", static_cast<double>(reroute_.count()), "count");
  rep.add("route.reroute.p50", reroute_.p50() / sim::kMicrosecond, "us");
  rep.add("route.reroute.p99", reroute_.p99() / sim::kMicrosecond, "us");
  rep.add("route.reroute.max", sim::to_usec(reroute_.max()), "us");
}

}  // namespace nectar::route
