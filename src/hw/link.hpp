#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>

#include "hw/frame.hpp"
#include "sim/costs.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"

namespace nectar::obs {
class Tracer;
class Registration;
class PcapWriter;
}

namespace nectar::hw {

/// Unidirectional fiber-optic link segment (paper §2.1: 100 Mbit/s).
///
/// Serializes frames at the configured bit rate, adds propagation delay, and
/// delivers cut-through (the sink learns the first- and last-byte times).
/// Supports fault injection (corruption / drops) for the retransmission
/// tests. If the downstream sink back-pressures, the link stalls — the
/// low-level flow control of §2.1.
class FiberLink {
 public:
  /// Default base for name-derived fault-stream seeds (see set_fault_seed_base).
  static constexpr std::uint64_t kDefaultFaultSeedBase = 0x4E454354ull;  // "NECT"

  FiberLink(sim::Engine& engine, std::string name,
            double bits_per_sec = sim::costs::kFiberBitsPerSec,
            sim::SimTime propagation = sim::costs::kLinkPropagation);

  void attach(FrameSink* sink);

  /// Queue a frame for transmission. Transmission begins as soon as the link
  /// head is free. `on_sent` (optional) fires when the last byte has left the
  /// transmitter — the DMA send-complete interrupt hangs off this.
  void submit(Frame&& f, SendCallback on_sent = {});

  // Fault injection (deterministic, seeded). The single-argument forms
  // derive the stream seed from the fault seed base and the *link name*
  // (sim::derive_seed), so two links at the same rate never drop the same
  // frames in lockstep; pass an explicit seed to pin a stream for a test.
  void set_corrupt_rate(double p);
  void set_corrupt_rate(double p, std::uint64_t seed);
  void set_drop_rate(double p);
  void set_drop_rate(double p, std::uint64_t seed);

  /// Re-key the derived fault streams under a scenario master seed. Affects
  /// subsequent single-argument set_*_rate calls only.
  void set_fault_seed_base(std::uint64_t base) { fault_seed_base_ = base; }

  /// Hard down (element failure, not random loss): every frame submitted
  /// while down evaporates after serializing. Counted separately from the
  /// random-drop stream so reports can attribute loss to the fault.
  void set_down(bool down) { down_ = down; }
  bool is_down() const { return down_; }

  /// Arm a scripted burst: the next `n` frames submitted are dropped
  /// (deterministic loss patterns for retransmission tests). Cumulative with
  /// any already-armed count.
  void arm_drop_next(std::uint64_t n) { scripted_drops_armed_ += n; }

  const std::string& name() const { return name_; }
  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t frames_corrupted() const { return frames_corrupted_; }
  std::uint64_t frames_dropped() const { return frames_dropped_; }
  /// Subset of frames_dropped(): lost to set_down() / arm_drop_next() faults
  /// rather than the random-drop stream.
  std::uint64_t frames_dropped_faulted() const { return frames_dropped_faulted_; }
  /// Frames the downstream sink accepted. Conservation (audited by
  /// net::Network::register_audit): frames_sent == frames_delivered +
  /// frames_dropped + frames_in_flight at every instant. Corrupted frames
  /// deliver (the receiver's CRC rejects them), so they count here.
  std::uint64_t frames_delivered() const { return frames_delivered_; }
  /// Frames serialized but not yet accepted downstream: on the fiber plus
  /// one possibly held by back-pressure.
  std::uint64_t frames_in_flight() const {
    return in_flight_.size() + (blocked_.has_value() ? 1 : 0);
  }
  std::size_t queue_depth() const { return queue_.size(); }

  /// Emit "link.tx" serialization spans (plus drop/corrupt instants) onto
  /// `track` — the wire swimlane of a node's timeline.
  void attach_tracer(obs::Tracer* tracer, int track);

  /// Tap every frame entering this link into `pcap` (transmitter side: the
  /// capture sees frames before fault injection drops or corrupts them, at
  /// the time the first bit hits the fiber). nullptr detaches.
  void attach_pcap(obs::PcapWriter* pcap) { pcap_ = pcap; }
  obs::PcapWriter* pcap() const { return pcap_; }

  /// Probes under (node, "link"): "<name>.frames_sent" / ".bytes_sent" /
  /// ".frames_corrupted" / ".frames_dropped".
  void register_metrics(obs::Registration& reg, int node) const;

 private:
  void try_start();
  void on_head_sent();   // last byte left the transmitter
  void deliver_front();  // first byte reached the far end
  void deliver(Frame&& f, sim::SimTime first, sim::SimTime last);
  void on_drain();

  sim::Engine& engine_;
  std::string name_;
  double rate_;
  sim::SimTime propagation_;
  FrameSink* sink_ = nullptr;

  struct Pending {
    Frame frame;
    SendCallback on_sent;
  };
  std::deque<Pending> queue_;
  bool transmitting_ = false;
  SendCallback head_done_;             // completion of the transmitting frame
  // Frames between transmitter and far end, in first-byte order. Held here
  // (not in event captures) so delivery events stay pointer-sized.
  struct InFlight {
    Frame frame;
    sim::SimTime first;
    sim::SimTime last;
  };
  std::deque<InFlight> in_flight_;
  std::optional<Frame> blocked_;       // held by downstream back-pressure
  sim::SimTime blocked_span_ = 0;      // serialization span of the held frame

  double corrupt_rate_ = 0.0;
  double drop_rate_ = 0.0;
  sim::Random corrupt_rng_{42};
  sim::Random drop_rng_{43};
  std::uint64_t fault_seed_base_ = kDefaultFaultSeedBase;
  bool down_ = false;
  std::uint64_t scripted_drops_armed_ = 0;

  std::uint64_t frames_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t frames_corrupted_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t frames_dropped_faulted_ = 0;
  std::uint64_t frames_delivered_ = 0;

  obs::Tracer* tracer_ = nullptr;
  int trace_track_ = -1;
  obs::PcapWriter* pcap_ = nullptr;
};

}  // namespace nectar::hw
